// Package persist is the crash-safe persistence layer under the
// serving stack: a versioned, length-prefixed, CRC-checksummed record
// log with an append journal, atomic-rename snapshot rotation, and a
// recovery scanner that tolerates torn, truncated and bit-flipped
// tails.
//
// The design is crash-only: there is no clean-shutdown file format
// distinct from the crashed one. A process may die at any byte of any
// write; recovery reads the log front to back and truncates at the
// first record that fails validation, so the recovered state is always
// a *prefix of the committed record stream* — corruption degrades to a
// counted cold start for the lost suffix, never a panic, an error loop,
// or a wrong record.
//
// On-disk format (all integers little-endian):
//
//	file   := header record*
//	header := magic[8]            "MBSPLG01" (format version in the name)
//	record := length[4] crc[4] payload[length]
//
// crc is CRC-32C (Castagnoli) over the payload. A record is valid iff
// its length is sane (fits the remaining file, under MaxRecordBytes)
// and the checksum matches.
//
// Fsync discipline: the journal fsyncs after every append (a record
// acknowledged to the caller survives power loss); a snapshot is
// written to a temp file, fsynced, renamed over the snapshot name, and
// the directory fsynced — readers see either the old or the new
// snapshot, never a partial one. Snapshot rotation truncates the
// journal only *after* the rename lands, so a crash between the two
// leaves snapshot + full journal; re-applying journal records over the
// snapshot is idempotent for the key-value use above (later stores win,
// exactly as they did live).
//
// Writes optionally consult a *faultinject.Injector (the torn/short/
// flip filesystem modes) so tests and chaos harnesses can produce the
// exact on-disk images crashes produce, deterministically.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"mbsp/internal/faultinject"
)

// magic is the file header: format name plus version. Bump the trailing
// digits on any incompatible format change; recovery treats an unknown
// header as corruption (counted cold start), never as an error.
const magic = "MBSPLG01"

const headerSize = len(magic)
const recordHeaderSize = 8 // uint32 payload length + uint32 CRC-32C

// MaxRecordBytes bounds a single record: a length field above it is
// corruption by definition, not a large record.
const MaxRecordBytes = 1 << 30

// ErrRecordTooLarge is returned (wrapped, match with errors.Is) by
// Journal.Append and WriteSnapshot for a payload over MaxRecordBytes.
// Rejecting at write time matters twice over: recovery treats any length
// field above the bound as corruption and truncates the file there, so
// an oversized record would be written durably and then silently dropped
// on the next open — and past 4 GiB the uint32 length field itself would
// wrap, framing the tail of the payload as garbage "records". Neither
// failure can be diagnosed at recovery time; this error at append time
// can.
var ErrRecordTooLarge = errors.New("persist: record exceeds MaxRecordBytes")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrInjectedCrash is returned by appends after an injected torn write:
// the writer simulates the process dying mid-append, so every later
// write on the same handle fails too.
var ErrInjectedCrash = errors.New("persist: injected torn-write crash")

// Options configure writers. The zero value is production behavior.
type Options struct {
	// Inject corrupts writes with the deterministic filesystem fault
	// modes (torn, short, flip). nil injects nothing.
	Inject *faultinject.Injector
	// NoSync skips fsync calls (tests that measure logic, not
	// durability).
	NoSync bool
}

// fnv1a hashes a file's base name into the injection fingerprint, so
// the journal's and snapshot's fault streams are decorrelated.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// recordWriter frames and writes records, consulting the injector per
// record. It owns no buffering: a record is one Write call, cut exactly
// where the injector says a crash or short write would cut it.
type recordWriter struct {
	f      *os.File
	opts   Options
	fprint uint64
	seq    uint64
	failed bool
}

func (w *recordWriter) writeRecord(payload []byte) error {
	if w.failed {
		return ErrInjectedCrash
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrRecordTooLarge, len(payload), MaxRecordBytes)
	}
	buf := make([]byte, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	crc := crc32.Checksum(payload, crcTable)
	seq := w.seq
	w.seq++
	if bit := w.opts.Inject.FlipChecksumBit(w.fprint, seq); bit >= 0 {
		crc ^= 1 << uint(bit)
	}
	binary.LittleEndian.PutUint32(buf[4:8], crc)
	copy(buf[recordHeaderSize:], payload)
	if k := w.opts.Inject.TornWriteLen(w.fprint, seq, len(buf)); k < len(buf) {
		w.failed = true
		if _, err := w.f.Write(buf[:k]); err != nil {
			return err
		}
		return ErrInjectedCrash
	}
	if k := w.opts.Inject.ShortWriteLen(w.fprint, seq, len(buf)); k < len(buf) {
		_, err := w.f.Write(buf[:k])
		return err // nil: the lost tail goes unnoticed, exactly the hazard
	}
	_, err := w.f.Write(buf)
	return err
}

// ScanStats describes what recovery found in one file.
type ScanStats struct {
	// Records is the number of valid records recovered.
	Records int
	// CorruptRecords counts invalid records dropped at the tail. The
	// scanner stops at the first invalid record (everything after it is
	// untrusted), so this is 1 whenever the tail was corrupt — the
	// garbage suffix cannot be parsed into a record count.
	CorruptRecords int
	// TruncatedBytes is how many bytes after the last valid record were
	// discarded.
	TruncatedBytes int64
	// BadHeader reports that the file header itself was invalid: the
	// whole file was dropped (counted cold start).
	BadHeader bool
}

// Merge accumulates another file's stats into s.
func (s *ScanStats) Merge(o ScanStats) {
	s.Records += o.Records
	s.CorruptRecords += o.CorruptRecords
	s.TruncatedBytes += o.TruncatedBytes
	s.BadHeader = s.BadHeader || o.BadHeader
}

// RecoverFile scans path and returns every valid record, in write
// order. The file is repaired in place: everything after the last
// valid record (a torn append, a short write's gap, a flipped
// checksum, or trailing garbage) is truncated away, so a subsequent
// append continues from a consistent prefix of the committed stream. A
// missing file recovers to zero records. Only I/O errors are returned
// as errors — corruption is an expected input, reported via ScanStats.
func RecoverFile(path string) ([][]byte, ScanStats, error) {
	var stats ScanStats
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) {
		return nil, stats, nil
	}
	if err != nil {
		return nil, stats, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, stats, err
	}
	size := int64(len(data))
	if size < int64(headerSize) || string(data[:headerSize]) != magic {
		if size > 0 {
			stats.BadHeader = true
			stats.TruncatedBytes = size
			if err := truncateTo(f, 0); err != nil {
				return nil, stats, err
			}
		}
		return nil, stats, nil
	}
	var records [][]byte
	off := int64(headerSize)
	for {
		rest := size - off
		if rest == 0 {
			break
		}
		if rest < int64(recordHeaderSize) {
			stats.CorruptRecords++
			break
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > MaxRecordBytes || length > rest-int64(recordHeaderSize) {
			stats.CorruptRecords++
			break
		}
		payload := data[off+int64(recordHeaderSize) : off+int64(recordHeaderSize)+length]
		if crc32.Checksum(payload, crcTable) != crc {
			stats.CorruptRecords++
			break
		}
		records = append(records, append([]byte(nil), payload...))
		off += int64(recordHeaderSize) + length
	}
	stats.Records = len(records)
	if off < size {
		stats.TruncatedBytes = size - off
		if err := truncateTo(f, off); err != nil {
			return nil, stats, err
		}
	}
	return records, stats, nil
}

func truncateTo(f *os.File, off int64) error {
	if err := f.Truncate(off); err != nil {
		return err
	}
	return f.Sync()
}

// Journal is an append-only record log. Open it after RecoverFile has
// repaired the tail; every Append is fsynced before it returns.
type Journal struct {
	f       *os.File
	w       recordWriter
	path    string
	opts    Options
	bytes   int64
	records int64
}

// OpenJournal opens (creating if necessary) the journal at path for
// appending, writing the file header if the file is empty. The caller
// is expected to have run RecoverFile first so the tail is valid.
func OpenJournal(path string, opts Options) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	j := &Journal{
		f:    f,
		w:    recordWriter{f: f, opts: opts, fprint: fnv1a(filepath.Base(path))},
		path: path, opts: opts, bytes: size,
	}
	if size == 0 {
		if _, err := f.WriteString(magic); err != nil {
			f.Close()
			return nil, err
		}
		if err := j.sync(); err != nil {
			f.Close()
			return nil, err
		}
		j.bytes = int64(headerSize)
	}
	return j, nil
}

func (j *Journal) sync() error {
	if j.opts.NoSync {
		return nil
	}
	return j.f.Sync()
}

// Append writes one record and fsyncs: when Append returns nil the
// record survives power loss.
func (j *Journal) Append(payload []byte) error {
	if err := j.w.writeRecord(payload); err != nil {
		return err
	}
	if err := j.sync(); err != nil {
		return err
	}
	j.bytes += int64(recordHeaderSize + len(payload))
	j.records++
	return nil
}

// Size returns the journal's size in bytes (header included).
func (j *Journal) Size() int64 { return j.bytes }

// Records returns how many records this handle has appended.
func (j *Journal) Records() int64 { return j.records }

// Reset truncates the journal back to its header, dropping every
// record: called after the records have been rotated into a snapshot.
func (j *Journal) Reset() error {
	if err := j.f.Truncate(int64(headerSize)); err != nil {
		return err
	}
	if _, err := j.f.Seek(int64(headerSize), io.SeekStart); err != nil {
		return err
	}
	if err := j.sync(); err != nil {
		return err
	}
	j.bytes = int64(headerSize)
	j.records = 0
	j.w.failed = false
	return nil
}

// Close fsyncs and closes the journal.
func (j *Journal) Close() error {
	if err := j.sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// WriteSnapshot atomically replaces the snapshot at path with the given
// records: write to path+".tmp", fsync, rename over path, fsync the
// directory. A crash at any point leaves either the old or the new
// snapshot intact.
func WriteSnapshot(path string, payloads [][]byte, opts Options) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := recordWriter{f: f, opts: opts, fprint: fnv1a(filepath.Base(path))}
	if _, err := f.WriteString(magic); err != nil {
		f.Close()
		return err
	}
	for _, p := range payloads {
		if err := w.writeRecord(p); err != nil {
			f.Close()
			return err
		}
	}
	if !opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if opts.NoSync {
		return nil
	}
	return syncDir(filepath.Dir(path))
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Store is the directory layout the serving stack uses: a snapshot file
// plus an append journal. Recovery order is snapshot records then
// journal records; rotation compacts the journal into a fresh snapshot.
type Store struct {
	dir     string
	opts    Options
	journal *Journal
	snap    time.Time
}

const (
	snapshotName = "snapshot"
	journalName  = "journal"
)

// Recovery is what Open found on disk.
type Recovery struct {
	// Snapshot and Journal are the recovered records, in write order;
	// apply Snapshot first, then Journal (later records win).
	Snapshot, Journal [][]byte
	// Stats merges both files' scan results.
	Stats ScanStats
	// SnapshotTime is the snapshot file's mtime; zero when there is no
	// snapshot.
	SnapshotTime time.Time
}

// Open recovers the store in dir (creating it if necessary) and opens
// the journal for appending. Corrupt or torn files degrade to a valid
// prefix (possibly empty), reported in Recovery.Stats; only real I/O
// failures return an error.
func Open(dir string, opts Options) (*Store, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	// A stale snapshot temp file is a crashed rotation that never
	// renamed; the snapshot it was replacing is still the valid one.
	os.Remove(filepath.Join(dir, snapshotName+".tmp"))

	rec := &Recovery{}
	snapPath := filepath.Join(dir, snapshotName)
	snapRecords, snapStats, err := RecoverFile(snapPath)
	if err != nil {
		return nil, nil, err
	}
	rec.Snapshot = snapRecords
	rec.Stats.Merge(snapStats)
	if fi, err := os.Stat(snapPath); err == nil {
		rec.SnapshotTime = fi.ModTime()
	}

	jPath := filepath.Join(dir, journalName)
	jRecords, jStats, err := RecoverFile(jPath)
	if err != nil {
		return nil, nil, err
	}
	rec.Journal = jRecords
	rec.Stats.Merge(jStats)

	j, err := OpenJournal(jPath, opts)
	if err != nil {
		return nil, nil, err
	}
	return &Store{dir: dir, opts: opts, journal: j, snap: rec.SnapshotTime}, rec, nil
}

// Append journals one record durably.
func (s *Store) Append(payload []byte) error { return s.journal.Append(payload) }

// JournalRecords returns how many records this process has journaled
// since open or the last rotation.
func (s *Store) JournalRecords() int64 { return s.journal.Records() }

// JournalBytes returns the journal's current size in bytes.
func (s *Store) JournalBytes() int64 { return s.journal.Size() }

// SnapshotTime returns the mtime of the current snapshot (zero when
// none has been written).
func (s *Store) SnapshotTime() time.Time { return s.snap }

// Rotate atomically replaces the snapshot with the given records and
// then truncates the journal. A crash after the rename but before the
// truncate leaves snapshot + journal both populated; recovery applies
// the journal records over the snapshot, which is idempotent for
// keyed stores (later records win, as they did live).
func (s *Store) Rotate(payloads [][]byte) error {
	if err := WriteSnapshot(filepath.Join(s.dir, snapshotName), payloads, s.opts); err != nil {
		return err
	}
	s.snap = time.Now()
	return s.journal.Reset()
}

// Close closes the journal. It does not snapshot — callers decide
// whether a drain rotates (mbsp-served does) or dies crash-only.
func (s *Store) Close() error { return s.journal.Close() }
