package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mbsp/internal/faultinject"
)

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%03d: some payload bytes %d", i, i*i))
	}
	return out
}

// isPrefix reports whether got is a byte-exact prefix of want.
func isPrefix(got, want [][]byte) bool {
	if len(got) > len(want) {
		return false
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			return false
		}
	}
	return true
}

func appendAll(t *testing.T, path string, ps [][]byte) {
	t.Helper()
	j, err := OpenJournal(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalRoundTrip: append, recover, byte-identical records, clean
// stats.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	want := payloads(20)
	appendAll(t, path, want)
	got, stats, err := RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || !isPrefix(got, want) {
		t.Fatalf("recovered %d records, want %d identical", len(got), len(want))
	}
	if stats.CorruptRecords != 0 || stats.TruncatedBytes != 0 || stats.BadHeader {
		t.Fatalf("clean file reports corruption: %+v", stats)
	}
}

// TestMissingAndEmpty: a missing file and a header-only file both
// recover to zero records without error or corruption counts.
func TestMissingAndEmpty(t *testing.T) {
	dir := t.TempDir()
	got, stats, err := RecoverFile(filepath.Join(dir, "nope"))
	if err != nil || len(got) != 0 || stats != (ScanStats{}) {
		t.Fatalf("missing file: %v %v %+v", got, err, stats)
	}
	path := filepath.Join(dir, "journal")
	appendAll(t, path, nil) // creates header only
	got, stats, err = RecoverFile(path)
	if err != nil || len(got) != 0 || stats != (ScanStats{}) {
		t.Fatalf("header-only file: %v %v %+v", got, err, stats)
	}
}

// TestTornTailTruncatesAndRepairs: cutting the file mid-record loses
// exactly the torn record, counts it, repairs the file in place, and
// appends after recovery extend the valid prefix.
func TestTornTailTruncatesAndRepairs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	want := payloads(10)
	appendAll(t, path, want)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the last record.
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	got, stats, err := RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 || !isPrefix(got, want) {
		t.Fatalf("recovered %d records after torn tail, want 9", len(got))
	}
	if stats.CorruptRecords != 1 || stats.TruncatedBytes == 0 {
		t.Fatalf("torn tail not counted: %+v", stats)
	}
	// The file was repaired: appending then recovering again sees the
	// 9-record prefix plus the new record, with no corruption.
	appendAll(t, path, [][]byte{[]byte("after-recovery")})
	got, stats, err = RecoverFile(path)
	if err != nil || stats.CorruptRecords != 0 {
		t.Fatalf("post-repair recover: %v %+v", err, stats)
	}
	if len(got) != 10 || string(got[9]) != "after-recovery" {
		t.Fatalf("post-repair append lost: %d records", len(got))
	}
}

// TestBitFlipStopsScan: flipping one payload byte mid-file invalidates
// that record; recovery keeps the prefix before it and drops the rest
// (everything after an invalid record is untrusted).
func TestBitFlipStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	want := payloads(10)
	appendAll(t, path, want)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40 // lands in some middle record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats, err := RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !isPrefix(got, want) || len(got) >= 10 {
		t.Fatalf("recovered %d records after bit flip, want a strict prefix", len(got))
	}
	if stats.CorruptRecords != 1 || stats.TruncatedBytes == 0 {
		t.Fatalf("flip not counted: %+v", stats)
	}
}

// TestInsaneLengthField: a length field pointing past the file (or past
// MaxRecordBytes) is corruption, not an allocation attempt.
func TestInsaneLengthField(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	want := payloads(3)
	appendAll(t, path, want)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the first record's length with garbage.
	binary.LittleEndian.PutUint32(data[headerSize:], 0xfffffff0)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats, err := RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || stats.CorruptRecords != 1 {
		t.Fatalf("insane length recovered %d records, stats %+v", len(got), stats)
	}
}

// TestBadHeader: a file that is not a record log at all recovers to a
// counted cold start and is truncated so a journal can be started in
// its place.
func TestBadHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	if err := os.WriteFile(path, []byte("not a log at all, sorry"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats, err := RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || !stats.BadHeader || stats.TruncatedBytes == 0 {
		t.Fatalf("bad header not degraded: %d records, %+v", len(got), stats)
	}
	// The truncated file now opens as a fresh journal.
	appendAll(t, path, [][]byte{[]byte("fresh")})
	got, stats, err = RecoverFile(path)
	if err != nil || len(got) != 1 || stats.CorruptRecords != 0 {
		t.Fatalf("fresh journal after bad header: %d records, %v, %+v", len(got), err, stats)
	}
}

// TestStoreRotateAndRecover: the snapshot/journal lifecycle — append,
// rotate, append more, reopen: snapshot records come back first, then
// the post-rotation journal records.
func TestStoreRotateAndRecover(t *testing.T) {
	dir := t.TempDir()
	opts := Options{NoSync: true}
	s, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Snapshot) != 0 || len(rec.Journal) != 0 || !rec.SnapshotTime.IsZero() {
		t.Fatalf("fresh store recovered state: %+v", rec)
	}
	ps := payloads(6)
	for _, p := range ps[:4] {
		if err := s.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if s.JournalRecords() != 4 {
		t.Fatalf("journal records = %d", s.JournalRecords())
	}
	if err := s.Rotate(ps[:4]); err != nil {
		t.Fatal(err)
	}
	if s.JournalRecords() != 0 || s.SnapshotTime().IsZero() {
		t.Fatalf("rotation bookkeeping: records=%d snap=%v", s.JournalRecords(), s.SnapshotTime())
	}
	for _, p := range ps[4:] {
		if err := s.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !isPrefix(rec2.Snapshot, ps[:4]) || len(rec2.Snapshot) != 4 {
		t.Fatalf("snapshot records wrong: %d", len(rec2.Snapshot))
	}
	if len(rec2.Journal) != 2 || !bytes.Equal(rec2.Journal[0], ps[4]) {
		t.Fatalf("journal records wrong: %d", len(rec2.Journal))
	}
	if rec2.SnapshotTime.IsZero() {
		t.Fatal("snapshot time lost")
	}
	if rec2.Stats.CorruptRecords != 0 || rec2.Stats.Records != 6 {
		t.Fatalf("clean store reports corruption: %+v", rec2.Stats)
	}
}

// TestCrashBetweenSnapshotAndTruncate: a rotation that died after the
// rename but before the journal truncate recovers both files; applying
// journal over snapshot is idempotent, so nothing is lost or doubled
// at the caller (which keys records).
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	opts := Options{NoSync: true}
	s, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(3)
	for _, p := range ps {
		if err := s.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the crash: snapshot written, journal NOT reset.
	if err := WriteSnapshot(filepath.Join(dir, snapshotName), ps, opts); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Snapshot) != 3 || len(rec.Journal) != 3 {
		t.Fatalf("post-crash recovery: snapshot=%d journal=%d", len(rec.Snapshot), len(rec.Journal))
	}
}

// TestStaleSnapshotTmpRemoved: a crashed rotation's temp file is swept
// on open and never mistaken for a snapshot.
func TestStaleSnapshotTmpRemoved(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, snapshotName+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, rec, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if len(rec.Snapshot) != 0 || rec.Stats.BadHeader {
		t.Fatalf("stale tmp treated as state: %+v", rec.Stats)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale snapshot.tmp not removed")
	}
}

// TestInjectedFaultSweep is the acceptance property for the filesystem
// fault modes: for every mode (and all three at once) across many
// seeds, a journal written through the injector recovers to a
// byte-exact prefix of the committed records — never a panic, an
// error, or a non-prefix — and corruption on disk is counted.
func TestInjectedFaultSweep(t *testing.T) {
	modes := [][]faultinject.Mode{
		{faultinject.TornWrite},
		{faultinject.ShortWrite},
		{faultinject.ChecksumFlip},
		faultinject.FSModes(),
	}
	want := payloads(40)
	for _, ms := range modes {
		for seed := uint64(1); seed <= 12; seed++ {
			inj := faultinject.New(seed, 0.15, 0, ms...)
			path := filepath.Join(t.TempDir(), "journal")
			j, err := OpenJournal(path, Options{NoSync: true, Inject: inj})
			if err != nil {
				t.Fatal(err)
			}
			committed := 0 // appends acknowledged with err == nil
			sawCrash := false
			for _, p := range want {
				err := j.Append(p)
				switch {
				case err == nil:
					if sawCrash {
						t.Fatalf("%v seed %d: append succeeded after injected crash", ms, seed)
					}
					committed++
				case errors.Is(err, ErrInjectedCrash):
					sawCrash = true
				default:
					t.Fatalf("%v seed %d: unexpected append error %v", ms, seed, err)
				}
				if sawCrash {
					break
				}
			}
			j.Close()

			got, stats, err := RecoverFile(path)
			if err != nil {
				t.Fatalf("%v seed %d: recover error %v", ms, seed, err)
			}
			if !isPrefix(got, want) {
				t.Fatalf("%v seed %d: recovered records are not a prefix of the committed stream", ms, seed)
			}
			// Acknowledged-but-corrupted records (short writes, flips) may
			// be lost — that loss must be visible in the stats.
			if len(got) < committed && stats.CorruptRecords == 0 {
				t.Fatalf("%v seed %d: lost %d acknowledged records silently (stats %+v)",
					ms, seed, committed-len(got), stats)
			}
			// A second recovery of the repaired file is clean and agrees.
			again, stats2, err := RecoverFile(path)
			if err != nil || len(again) != len(got) || stats2.CorruptRecords != 0 {
				t.Fatalf("%v seed %d: repaired file not stable: %d vs %d records, %+v, %v",
					ms, seed, len(again), len(got), stats2, err)
			}
		}
	}
}

// TestInjectedSnapshot: snapshot writes through a hot flip injector
// produce a snapshot whose recovery is still a counted prefix.
func TestInjectedSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, snapshotName)
	want := payloads(10)
	inj := faultinject.New(3, 0.3, 0, faultinject.ChecksumFlip)
	if err := WriteSnapshot(path, want, Options{NoSync: true, Inject: inj}); err != nil {
		t.Fatal(err)
	}
	got, stats, err := RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !isPrefix(got, want) {
		t.Fatal("injected snapshot recovery is not a prefix")
	}
	if len(got) < len(want) && stats.CorruptRecords == 0 {
		t.Fatalf("silent snapshot loss: %d/%d records, %+v", len(got), len(want), stats)
	}
}

// TestDeterministicInjection: the same seed produces the same on-disk
// bytes, so chaos runs over the persistence layer are reproducible.
func TestDeterministicInjection(t *testing.T) {
	want := payloads(30)
	image := func() []byte {
		inj := faultinject.New(7, 0.2, 0, faultinject.FSModes()...)
		path := filepath.Join(t.TempDir(), "journal")
		j, err := OpenJournal(path, Options{NoSync: true, Inject: inj})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range want {
			if err := j.Append(p); err != nil {
				break
			}
		}
		j.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(image(), image()) {
		t.Fatal("same seed produced different on-disk images")
	}
}

// TestOversizedRecordRejected pins the write-time guard at both bounds
// that make oversized payloads dangerous: just past MaxRecordBytes
// (recovery would truncate the record as corruption, silently dropping
// durably-written data) and at 4 GiB (the uint32 length field itself
// would wrap, reframing the payload's tail as garbage records). Both
// must fail fast with ErrRecordTooLarge, write nothing, and leave the
// journal appendable. The payloads are never touched, so the huge
// allocations stay lazy zero pages.
func TestOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")
	j, err := OpenJournal(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	for _, size := range []int{MaxRecordBytes + 1, 4 << 30} {
		err := j.Append(make([]byte, size))
		if !errors.Is(err, ErrRecordTooLarge) {
			t.Fatalf("Append(%d bytes): got %v, want ErrRecordTooLarge", size, err)
		}
		if err := WriteSnapshot(filepath.Join(dir, "snap"), [][]byte{make([]byte, size)}, Options{NoSync: true}); !errors.Is(err, ErrRecordTooLarge) {
			t.Fatalf("WriteSnapshot(%d bytes): got %v, want ErrRecordTooLarge", size, err)
		}
	}
	// The journal must remain appendable after rejections: an oversized
	// payload is a caller error, not a writer failure.
	if err := j.Append(make([]byte, 8)); err != nil {
		t.Fatalf("append after rejections: %v", err)
	}
	if got := j.Records(); got != 1 {
		t.Fatalf("journal holds %d records, want 1 (rejected appends must write nothing)", got)
	}
	// The rejected WriteSnapshot must not have left a snapshot behind.
	if _, err := os.Stat(filepath.Join(dir, "snap")); !os.IsNotExist(err) {
		t.Fatalf("rejected snapshot left a file: %v", err)
	}
}
