// Package exact implements an exact solver for single-processor MBSP
// scheduling (the red-blue pebble game of Hong and Kung extended with
// compute costs and node weights, P=1): Dijkstra's algorithm over
// pebbling configurations. With one processor the synchronous (L=0) and
// asynchronous costs coincide with the plain sum of transition costs, so
// a shortest path in the configuration graph is the optimal schedule.
//
// The state space is 4^n, so this is only usable for small n (≤ ~14);
// its purpose is ground truth for testing the ILP scheduler and the
// two-stage baseline, and for the gadget lemmas.
package exact

import (
	"container/heap"
	"fmt"

	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
)

// MaxNodes bounds the DAG size accepted by the solver.
const MaxNodes = 20

// state is (redSet, blueSet, computedSet) encoded as bitmasks; the
// computed set is tracked only in no-recompute mode and stays 0
// otherwise.
type state struct {
	red      uint32
	blue     uint32
	computed uint32
}

// Result is the outcome of an exact solve.
type Result struct {
	Cost     float64
	States   int // states popped
	Schedule *mbsp.Schedule
}

type pqItem struct {
	st   state
	cost float64
}

type pq []pqItem

func (h pq) Len() int            { return len(h) }
func (h pq) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h pq) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pq) Push(x interface{}) { *h = append(*h, x.(pqItem)) }
func (h *pq) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type move struct {
	kind mbsp.OpKind
	node int
}

// Options tunes the exact solver.
type Options struct {
	// NoRecompute forbids computing a node twice (tracked via a third
	// bitmask, tripling the state space's base).
	NoRecompute bool
	// StateBudget aborts the search after this many popped states
	// (0: unlimited). The search space is up to 4^n (8^n with
	// NoRecompute), so a budget keeps callers responsive.
	StateBudget int
}

// Solve finds the minimum-cost single-processor pebbling of g with cache
// size r and communication cost factor gFac. It returns the optimal cost
// and a witness schedule.
func Solve(g *graph.DAG, r, gFac float64) (Result, error) {
	return SolveOpts(g, r, gFac, Options{})
}

// SolveOpts is Solve with options.
func SolveOpts(g *graph.DAG, r, gFac float64, opts Options) (Result, error) {
	n := g.N()
	if n > MaxNodes {
		return Result{}, fmt.Errorf("exact: DAG too large (n=%d > %d)", n, MaxNodes)
	}
	if g.MinCache() > r {
		return Result{}, fmt.Errorf("exact: cache too small (r=%g < r0=%g)", r, g.MinCache())
	}
	var srcMask, sinkMask uint32
	for v := 0; v < n; v++ {
		if g.IsSource(v) {
			srcMask |= 1 << v
		}
		if g.IsSink(v) {
			sinkMask |= 1 << v
		}
	}
	parentMask := make([]uint32, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Parents(v) {
			parentMask[v] |= 1 << u
		}
	}
	memOf := func(mask uint32) float64 {
		t := 0.0
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				t += g.Mem(v)
			}
		}
		return t
	}

	startState := state{red: 0, blue: srcMask}
	budget := opts.StateBudget
	dist := map[state]float64{startState: 0}
	prev := map[state]struct {
		st state
		mv move
	}{}
	h := &pq{{startState, 0}}
	popped := 0

	isGoal := func(st state) bool { return st.blue&sinkMask == sinkMask }

	relax := func(cur state, cost float64, next state, c float64, mv move) {
		nc := cost + c
		if d, ok := dist[next]; !ok || nc < d-1e-12 {
			dist[next] = nc
			prev[next] = struct {
				st state
				mv move
			}{cur, mv}
			heap.Push(h, pqItem{next, nc})
		}
	}

	var goal state
	found := false
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if d := dist[it.st]; it.cost > d+1e-12 {
			continue // stale
		}
		popped++
		if budget > 0 && popped > budget {
			return Result{}, fmt.Errorf("exact: state budget exhausted after %d states", popped)
		}
		if isGoal(it.st) {
			goal = it.st
			found = true
			break
		}
		cur := it.st
		curMem := memOf(cur.red)
		for v := 0; v < n; v++ {
			bit := uint32(1) << v
			// LOAD: blue and not red, fits.
			if cur.blue&bit != 0 && cur.red&bit == 0 && curMem+g.Mem(v) <= r+1e-12 {
				relax(cur, it.cost, state{cur.red | bit, cur.blue, cur.computed}, gFac*g.Mem(v), move{mbsp.OpLoad, v})
			}
			// SAVE: red and not blue.
			if cur.red&bit != 0 && cur.blue&bit == 0 {
				relax(cur, it.cost, state{cur.red, cur.blue | bit, cur.computed}, gFac*g.Mem(v), move{mbsp.OpSave, v})
			}
			// COMPUTE: non-source, parents red, not red, fits, and (in
			// no-recompute mode) never computed before.
			if srcMask&bit == 0 && cur.red&bit == 0 &&
				cur.red&parentMask[v] == parentMask[v] && curMem+g.Mem(v) <= r+1e-12 &&
				(!opts.NoRecompute || cur.computed&bit == 0) {
				next := state{cur.red | bit, cur.blue, cur.computed}
				if opts.NoRecompute {
					next.computed |= bit
				}
				relax(cur, it.cost, next, g.Comp(v), move{mbsp.OpCompute, v})
			}
			// DELETE: red. Free, so only useful to make room; still a
			// plain edge in the graph search.
			if cur.red&bit != 0 {
				relax(cur, it.cost, state{cur.red &^ bit, cur.blue, cur.computed}, 0, move{mbsp.OpDelete, v})
			}
		}
	}
	if !found {
		return Result{}, fmt.Errorf("exact: no pebbling found (should be impossible with r >= r0)")
	}

	// Reconstruct the move sequence.
	var moves []move
	for st := goal; st != startState; {
		pr := prev[st]
		moves = append(moves, pr.mv)
		st = pr.st
	}
	for i, j := 0, len(moves)-1; i < j; i, j = i+1, j-1 {
		moves[i], moves[j] = moves[j], moves[i]
	}

	sched := buildSchedule(g, r, gFac, moves)
	return Result{Cost: dist[goal], States: popped, Schedule: sched}, nil
}

// buildSchedule converts a transition sequence into an MBSP schedule:
// maximal runs of compute/delete ops form the compute phase of a
// superstep, then saves, deletes, loads — re-cut so that phase order
// within each superstep is respected.
func buildSchedule(g *graph.DAG, r, gFac float64, moves []move) *mbsp.Schedule {
	arch := mbsp.Arch{P: 1, R: r, G: gFac, L: 0}
	s := mbsp.NewSchedule(g, arch)
	cur := s.AddSuperstep()
	// Phase order within a superstep: comp(+del) < save < del < load.
	// Start a new superstep whenever the op kind would move backwards.
	phase := 0 // 0 comp, 1 save, 2 del, 3 load
	for _, mv := range moves {
		var want int
		switch mv.kind {
		case mbsp.OpCompute:
			want = 0
		case mbsp.OpSave:
			want = 1
		case mbsp.OpDelete:
			if phase == 0 {
				want = 0 // deletes ride along in the compute phase
			} else {
				want = 2
			}
		case mbsp.OpLoad:
			want = 3
		}
		if want < phase {
			cur = s.AddSuperstep()
			phase = 0
			if mv.kind == mbsp.OpSave {
				phase = 1
			} else if mv.kind == mbsp.OpLoad {
				phase = 3
			}
		} else {
			phase = want
		}
		ps := &cur.Procs[0]
		switch mv.kind {
		case mbsp.OpCompute:
			ps.Comp = append(ps.Comp, mbsp.Op{Kind: mbsp.OpCompute, Node: mv.node})
		case mbsp.OpDelete:
			if phase == 0 {
				ps.Comp = append(ps.Comp, mbsp.Op{Kind: mbsp.OpDelete, Node: mv.node})
			} else {
				ps.Del = append(ps.Del, mv.node)
			}
		case mbsp.OpSave:
			ps.Save = append(ps.Save, mv.node)
		case mbsp.OpLoad:
			ps.Load = append(ps.Load, mv.node)
		}
	}
	return s
}
