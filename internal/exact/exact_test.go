package exact

import (
	"testing"

	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/memmgr"
	"mbsp/internal/twostage"

	bspsched "mbsp/internal/bsp"
)

func TestChainOptimal(t *testing.T) {
	g := graph.Chain(5) // source + 4 computes
	res, err := Solve(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// load source (1) + 4 computes + save sink (1) = 6.
	if res.Cost != 6 {
		t.Fatalf("cost=%g want 6", res.Cost)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := res.Schedule.SyncCost(); got != res.Cost {
		t.Fatalf("schedule cost %g != reported %g", got, res.Cost)
	}
}

func TestDiamondOptimal(t *testing.T) {
	g := graph.Diamond()
	res, err := Solve(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 5 {
		t.Fatalf("cost=%g want 5", res.Cost)
	}
}

func TestCacheTooSmall(t *testing.T) {
	g := graph.Diamond()
	if _, err := Solve(g, 1, 1); err == nil {
		t.Fatal("expected error for r < r0")
	}
}

func TestTooLarge(t *testing.T) {
	g := graph.Chain(MaxNodes + 1)
	if _, err := Solve(g, 100, 1); err == nil {
		t.Fatal("expected size error")
	}
}

func TestTightCacheForcesIO(t *testing.T) {
	// Two parallel chains from one source with r too small to hold both:
	// must spill or recompute; generous r avoids it.
	g := graph.New("x")
	s0 := g.AddNode(0, 1)
	a1 := g.AddNode(1, 1)
	a2 := g.AddNode(1, 1)
	b1 := g.AddNode(1, 1)
	sink := g.AddNode(1, 1)
	g.AddEdge(s0, a1)
	g.AddEdge(a1, a2)
	g.AddEdge(s0, b1)
	g.AddEdge(a2, sink)
	g.AddEdge(b1, sink)
	loose, err := Solve(g, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Solve(g, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Cost < loose.Cost {
		t.Fatalf("tight cache cheaper (%g) than loose (%g)?", tight.Cost, loose.Cost)
	}
	if err := tight.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecomputationBeatsIOWhenGHigh(t *testing.T) {
	// Zipper-like: recomputing a cheap chain should beat paying g per
	// load when g is large. Just verify the exact cost is below the
	// baseline's (which never recomputes).
	z := graph.NewZipperGadget(3, 2)
	g := z.DAG
	arch := mbsp.Arch{P: 1, R: 4, G: 8, L: 0}
	base, err := twostage.DFSClairvoyant().Run(g, arch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > base.SyncCost()+1e-9 {
		t.Fatalf("exact %g worse than baseline %g", res.Cost, base.SyncCost())
	}
	if res.Cost == base.SyncCost() {
		t.Logf("exact matched baseline at %g (no recomputation advantage here)", res.Cost)
	}
}

func TestBaselineNeverBelowExact(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := graph.RandomDAG("r", 8, 0.3, 3, 3, 2, seed)
		r := 1.5 * g.MinCache()
		ex, err := Solve(g, r, 2)
		if err != nil {
			t.Fatal(err)
		}
		arch := mbsp.Arch{P: 1, R: r, G: 2, L: 0}
		b := bspsched.DFS(g)
		base, err := twostage.Convert(b, arch, memmgr.Clairvoyant{})
		if err != nil {
			t.Fatal(err)
		}
		if base.SyncCost() < ex.Cost-1e-9 {
			t.Fatalf("seed %d: baseline %g below exact optimum %g", seed, base.SyncCost(), ex.Cost)
		}
	}
}
