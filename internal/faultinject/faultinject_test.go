package faultinject

import (
	"testing"
	"time"
)

// TestDecisionsArePureFunctions pins the reproducibility contract: every
// injection decision depends only on (seed, mode, fingerprint, sequence),
// so two injectors built alike agree on every decision, call after call.
func TestDecisionsArePureFunctions(t *testing.T) {
	a := New(42, 0.5, time.Millisecond)
	b := New(42, 0.5, time.Millisecond)
	for fp := uint64(1); fp < 4; fp++ {
		for seq := uint64(0); seq < 200; seq++ {
			if a.ForceColdFallback(fp, seq) != b.ForceColdFallback(fp, seq) {
				t.Fatalf("cold decision diverged at fp=%d seq=%d", fp, seq)
			}
			if a.SingularRefactor(fp, seq) != b.SingularRefactor(fp, seq) {
				t.Fatalf("singular decision diverged at fp=%d seq=%d", fp, seq)
			}
			if a.InjectedLatency(fp, seq) != b.InjectedLatency(fp, seq) {
				t.Fatalf("latency decision diverged at fp=%d seq=%d", fp, seq)
			}
			if a.CancelAt(fp, seq) != b.CancelAt(fp, seq) {
				t.Fatalf("cancel decision diverged at fp=%d seq=%d", fp, seq)
			}
			// Re-asking must not consume hidden state.
			if a.ForceColdFallback(fp, seq) != b.ForceColdFallback(fp, seq) {
				t.Fatalf("cold decision not idempotent at fp=%d seq=%d", fp, seq)
			}
		}
	}
}

// TestSeedAndModeIndependence checks that different seeds produce
// different fault patterns and that the per-mode salts decorrelate the
// modes: a decision stream for one mode must not be a copy of another's.
func TestSeedAndModeIndependence(t *testing.T) {
	a, b := New(1, 0.5, 0), New(2, 0.5, 0)
	sameSeed, sameMode := 0, 0
	const n = 512
	for seq := uint64(0); seq < n; seq++ {
		if a.ForceColdFallback(7, seq) == b.ForceColdFallback(7, seq) {
			sameSeed++
		}
		if a.ForceColdFallback(7, seq) == a.SingularRefactor(7, seq) {
			sameMode++
		}
	}
	// Independent fair-ish coins agree about half the time; identical
	// streams agree always. Anything under ~90% rules out duplication.
	if sameSeed > n*9/10 {
		t.Fatalf("seeds 1 and 2 agree on %d/%d cold decisions — seed ignored", sameSeed, n)
	}
	if sameMode > n*9/10 {
		t.Fatalf("cold and singular streams agree on %d/%d decisions — mode salt ignored", sameMode, n)
	}
}

// TestModeGating ensures a disabled mode never fires and an enabled one
// fires at roughly its configured rate.
func TestModeGating(t *testing.T) {
	inj := New(3, 0.5, 0, ColdFallback) // only cold fallbacks enabled
	hits := 0
	const n = 1000
	for seq := uint64(0); seq < n; seq++ {
		if inj.SingularRefactor(1, seq) || inj.CancelAt(1, seq) || inj.InjectedLatency(1, seq) != 0 {
			t.Fatalf("disabled mode fired at seq=%d", seq)
		}
		if inj.ForceColdFallback(1, seq) {
			hits++
		}
	}
	if hits < n/4 || hits > 3*n/4 {
		t.Fatalf("rate 0.5 produced %d/%d hits", hits, n)
	}
	if !inj.Enabled(ColdFallback) || inj.Enabled(SingularFactor) {
		t.Fatal("Enabled does not reflect the mode mask")
	}
}

// TestNilInjectorSafe pins the nil-receiver contract every call site
// relies on: a nil *Injector injects nothing and never panics.
func TestNilInjectorSafe(t *testing.T) {
	var inj *Injector
	if inj.ForceColdFallback(1, 1) || inj.SingularRefactor(1, 1) || inj.CancelAt(1, 1) {
		t.Fatal("nil injector injected a fault")
	}
	if inj.InjectedLatency(1, 1) != 0 {
		t.Fatal("nil injector injected latency")
	}
	if inj.Enabled(ColdFallback) {
		t.Fatal("nil injector reports a mode enabled")
	}
	if got := inj.String(); got != "faultinject(off)" {
		t.Fatalf("nil injector String() = %q", got)
	}
	if inj.Modes() != nil {
		t.Fatal("nil injector reports modes")
	}
}

// TestParseModes covers the CLI surface: names, lists, "all", the empty
// string, surrounding spaces, and rejection of unknown names.
func TestParseModes(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
		ok   bool
	}{
		{"", 7, true},
		{"all", 7, true},
		{"solver", 4, true},
		{"fs", 3, true},
		{"cold", 1, true},
		{"torn", 1, true},
		{"cold,singular", 2, true},
		{"short,flip", 2, true},
		{" latency , cancel ", 2, true},
		{"bogus", 0, false},
		{"cold,,cancel", 0, false},
	} {
		modes, err := ParseModes(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseModes(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && len(modes) != tc.want {
			t.Fatalf("ParseModes(%q) = %v, want %d modes", tc.in, modes, tc.want)
		}
	}
	// Round trip: every mode's name parses back to itself.
	for _, m := range AllModes() {
		modes, err := ParseModes(m.String())
		if err != nil || len(modes) != 1 || modes[0] != m {
			t.Fatalf("mode %v does not round-trip: %v, %v", m, modes, err)
		}
	}
}

// TestDefaultsAndClamping pins the constructor's normalization: zero rate
// and latency select the defaults, rates above 1 clamp, and no modes
// selects all modes.
func TestDefaultsAndClamping(t *testing.T) {
	inj := New(5, 0, 0)
	if got := len(inj.Modes()); got != len(AllModes()) {
		t.Fatalf("no-modes constructor enabled %d modes", got)
	}
	// rate > 1 clamps to 1: every decision fires.
	hot := New(5, 2, 0, ColdFallback)
	for seq := uint64(0); seq < 100; seq++ {
		if !hot.ForceColdFallback(1, seq) {
			t.Fatalf("rate 2 (clamped to 1) missed at seq=%d", seq)
		}
	}
	if d := New(5, 0.5, 0, NodeLatency).InjectedLatency(1, firstLatencyHit(t)); d != DefaultLatency {
		t.Fatalf("default latency = %v, want %v", d, DefaultLatency)
	}
}

// firstLatencyHit finds a sequence where the latency injector (seed 5,
// rate 0.5) fires, so the default-latency assertion has a hit to inspect.
func firstLatencyHit(t *testing.T) uint64 {
	t.Helper()
	inj := New(5, 0.5, 0, NodeLatency)
	for seq := uint64(0); seq < 1000; seq++ {
		if inj.InjectedLatency(1, seq) != 0 {
			return seq
		}
	}
	t.Fatal("latency injector never fired in 1000 draws at rate 0.5")
	return 0
}

// TestFilesystemDraws covers the fs-mode decision surface: draws are
// pure (same inputs, same outputs), bounded (a cut is always a strict
// prefix, a bit index always fits the 32-bit CRC), gated by the mode
// mask, and nil-safe.
func TestFilesystemDraws(t *testing.T) {
	inj := New(9, 0.5, 0, FSModes()...)
	tornHits, shortHits, flipHits := 0, 0, 0
	for seq := uint64(0); seq < 400; seq++ {
		const n = 100
		if k := inj.TornWriteLen(3, seq, n); k != inj.TornWriteLen(3, seq, n) {
			t.Fatalf("TornWriteLen not pure at seq=%d", seq)
		} else if k < 0 || k > n {
			t.Fatalf("TornWriteLen out of range: %d", k)
		} else if k < n {
			tornHits++
		}
		if k := inj.ShortWriteLen(3, seq, n); k < 0 || k > n {
			t.Fatalf("ShortWriteLen out of range: %d", k)
		} else if k < n {
			shortHits++
		}
		if b := inj.FlipChecksumBit(3, seq); b < -1 || b > 31 {
			t.Fatalf("FlipChecksumBit out of range: %d", b)
		} else if b >= 0 {
			flipHits++
		}
	}
	// At rate 0.5 over 400 draws each stream must fire many times; the
	// exact counts are pinned by determinism, the bound is just sanity.
	if tornHits < 50 || shortHits < 50 || flipHits < 50 {
		t.Fatalf("fs draws too rare: torn=%d short=%d flip=%d", tornHits, shortHits, flipHits)
	}

	// Gating: an injector without the mode never fires it.
	solverOnly := New(9, 1, 0, SolverModes()...)
	for seq := uint64(0); seq < 100; seq++ {
		if solverOnly.TornWriteLen(3, seq, 100) != 100 ||
			solverOnly.ShortWriteLen(3, seq, 100) != 100 ||
			solverOnly.FlipChecksumBit(3, seq) != -1 {
			t.Fatalf("solver-only injector fired an fs mode at seq=%d", seq)
		}
	}

	// Nil injector: full writes, no flips.
	var nilInj *Injector
	if nilInj.TornWriteLen(1, 1, 10) != 10 || nilInj.ShortWriteLen(1, 1, 10) != 10 ||
		nilInj.FlipChecksumBit(1, 1) != -1 {
		t.Fatal("nil injector injected an fs fault")
	}
}
