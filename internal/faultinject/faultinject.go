// Package faultinject is a seeded, deterministic fault-injection harness
// for the solver stack. An Injector makes pseudo-random but fully
// reproducible yes/no decisions ("inject a fault here?") keyed on the
// same (instance fingerprint, sequence number) machinery that drives the
// solver's EXPAND perturbation: every decision is a pure function of
// (Seed, fingerprint, sequence, mode), with no clock, global state, or
// shared RNG stream. Chaos runs with the same seed are therefore
// bitwise reproducible for any worker count — the property the
// portfolio's determinism matrices assert even under injection.
//
// Supported fault classes (Mode):
//
//   - ColdFallback: a warm dual re-solve is forced onto its cold-restart
//     path, as if the supplied basis were unusable;
//   - SingularFactor: refactorization of a warm basis is reported
//     singular, exercising the numerical-failure fallback;
//   - NodeLatency: a branch-and-bound node solve sleeps briefly before
//     solving, widening race windows and stressing wall-clock budgets;
//   - SpuriousCancel: the branch-and-bound engine is cancelled at a
//     deterministic wave boundary, as if the caller's context had fired.
//
// NodeLatency is timing-only (it never changes solver results); the
// other three change which code path runs, never the bytes a
// deterministic (node-limited) run produces.
package faultinject

import (
	"fmt"
	"strings"
	"time"
)

// Mode identifies one injectable fault class.
type Mode uint8

// Fault classes.
const (
	ColdFallback Mode = iota
	SingularFactor
	NodeLatency
	SpuriousCancel
	numModes
)

func (m Mode) String() string {
	switch m {
	case ColdFallback:
		return "cold"
	case SingularFactor:
		return "singular"
	case NodeLatency:
		return "latency"
	case SpuriousCancel:
		return "cancel"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// AllModes lists every fault class, in declaration order.
func AllModes() []Mode {
	return []Mode{ColdFallback, SingularFactor, NodeLatency, SpuriousCancel}
}

// ParseModes parses a comma-separated list of mode names ("cold",
// "singular", "latency", "cancel") or "all".
func ParseModes(s string) ([]Mode, error) {
	if strings.TrimSpace(s) == "" || s == "all" {
		return AllModes(), nil
	}
	var modes []Mode
	for _, tok := range strings.Split(s, ",") {
		switch strings.TrimSpace(tok) {
		case "cold":
			modes = append(modes, ColdFallback)
		case "singular":
			modes = append(modes, SingularFactor)
		case "latency":
			modes = append(modes, NodeLatency)
		case "cancel":
			modes = append(modes, SpuriousCancel)
		default:
			return nil, fmt.Errorf("faultinject: unknown mode %q (want cold, singular, latency, cancel, or all)", tok)
		}
	}
	return modes, nil
}

// DefaultRate is the per-decision injection probability used when a
// caller enables injection without choosing a rate. High enough that
// short chaos runs hit every enabled mode, low enough that forward
// progress survives.
const DefaultRate = 0.25

// DefaultLatency is the sleep injected per NodeLatency hit.
const DefaultLatency = 200 * time.Microsecond

// Injector makes deterministic fault decisions. The zero value injects
// nothing; a nil *Injector is valid and injects nothing, so callers may
// thread it unconditionally. Injector is immutable after New and safe
// for concurrent use.
type Injector struct {
	seed    uint64
	rate    float64
	latency time.Duration
	mask    uint8
}

// New returns an Injector that injects each of the given modes with
// probability rate per decision point. rate <= 0 selects DefaultRate;
// latency <= 0 selects DefaultLatency. No modes means all modes.
func New(seed uint64, rate float64, latency time.Duration, modes ...Mode) *Injector {
	if rate <= 0 {
		rate = DefaultRate
	}
	if rate > 1 {
		rate = 1
	}
	if latency <= 0 {
		latency = DefaultLatency
	}
	if len(modes) == 0 {
		modes = AllModes()
	}
	inj := &Injector{seed: seed, rate: rate, latency: latency}
	for _, m := range modes {
		if m < numModes {
			inj.mask |= 1 << m
		}
	}
	return inj
}

// Seed returns the injector's seed (0 for a nil injector).
func (inj *Injector) Seed() uint64 {
	if inj == nil {
		return 0
	}
	return inj.seed
}

// Enabled reports whether mode m is injected at all.
func (inj *Injector) Enabled(m Mode) bool {
	return inj != nil && m < numModes && inj.mask&(1<<m) != 0
}

// Modes returns the enabled modes, in declaration order.
func (inj *Injector) Modes() []Mode {
	var out []Mode
	for _, m := range AllModes() {
		if inj.Enabled(m) {
			out = append(out, m)
		}
	}
	return out
}

// String describes the injector for logs and certificates.
func (inj *Injector) String() string {
	if inj == nil {
		return "faultinject(off)"
	}
	names := make([]string, 0, numModes)
	for _, m := range inj.Modes() {
		names = append(names, m.String())
	}
	return fmt.Sprintf("faultinject(seed=%d rate=%g modes=%s)", inj.seed, inj.rate, strings.Join(names, ","))
}

// per-mode salts decorrelate the decision streams: a (fingerprint, seq)
// pair hitting under one mode says nothing about the others.
var modeSalt = [numModes]uint64{
	ColdFallback:   0xc01dfa11c01dfa11,
	SingularFactor: 0x516b1a4f4c704af3,
	NodeLatency:    0x1a7e9c19a7e9c19b,
	SpuriousCancel: 0x5ca9ce15ca9ce157,
}

// splitmix64 is the same finalizing mixer the EXPAND perturbation uses
// (lp/perturb.go): full-avalanche, so consecutive sequence numbers give
// uncorrelated decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hit is the single decision primitive: a pure function of
// (seed, mode, fingerprint, sequence) compared against the rate.
func (inj *Injector) hit(m Mode, fprint, seq uint64) bool {
	if !inj.Enabled(m) {
		return false
	}
	h := splitmix64(inj.seed ^ modeSalt[m] ^ splitmix64(fprint^(seq+1)*0x9e3779b97f4a7c15))
	// Top 53 bits to a uniform float in [0,1).
	return float64(h>>11)/(1<<53) < inj.rate
}

// ForceColdFallback reports whether the warm re-solve identified by
// (fprint, seq) must take its cold-restart path.
func (inj *Injector) ForceColdFallback(fprint, seq uint64) bool {
	return inj.hit(ColdFallback, fprint, seq)
}

// SingularRefactor reports whether refactorization of the warm basis for
// (fprint, seq) must be treated as singular.
func (inj *Injector) SingularRefactor(fprint, seq uint64) bool {
	return inj.hit(SingularFactor, fprint, seq)
}

// InjectedLatency returns the sleep to insert before solving the node
// identified by (fprint, seq); 0 when the node is not hit.
func (inj *Injector) InjectedLatency(fprint, seq uint64) time.Duration {
	if inj.hit(NodeLatency, fprint, seq) {
		return inj.latency
	}
	return 0
}

// CancelAt reports whether the search identified by fprint must observe
// a spurious cancellation at the wave boundary whose next creation
// sequence is seq.
func (inj *Injector) CancelAt(fprint, seq uint64) bool {
	return inj.hit(SpuriousCancel, fprint, seq)
}
