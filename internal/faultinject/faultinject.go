// Package faultinject is a seeded, deterministic fault-injection harness
// for the solver stack. An Injector makes pseudo-random but fully
// reproducible yes/no decisions ("inject a fault here?") keyed on the
// same (instance fingerprint, sequence number) machinery that drives the
// solver's EXPAND perturbation: every decision is a pure function of
// (Seed, fingerprint, sequence, mode), with no clock, global state, or
// shared RNG stream. Chaos runs with the same seed are therefore
// bitwise reproducible for any worker count — the property the
// portfolio's determinism matrices assert even under injection.
//
// Supported fault classes (Mode):
//
//   - ColdFallback: a warm dual re-solve is forced onto its cold-restart
//     path, as if the supplied basis were unusable;
//   - SingularFactor: refactorization of a warm basis is reported
//     singular, exercising the numerical-failure fallback;
//   - NodeLatency: a branch-and-bound node solve sleeps briefly before
//     solving, widening race windows and stressing wall-clock budgets;
//   - SpuriousCancel: the branch-and-bound engine is cancelled at a
//     deterministic wave boundary, as if the caller's context had fired.
//
// NodeLatency is timing-only (it never changes solver results); the
// other three change which code path runs, never the bytes a
// deterministic (node-limited) run produces.
//
// Filesystem fault classes, consumed by internal/persist's record log
// (a persist writer never consults the solver modes and vice versa, so
// one Injector can drive both):
//
//   - TornWrite: a record write is cut at a deterministic byte offset
//     mid-record and the writer then behaves as crashed (subsequent
//     writes fail), the on-disk image a kill -9 mid-append leaves;
//   - ShortWrite: a record write silently loses its tail bytes but the
//     writer keeps going, so later records land after the gap — the
//     lost-ack short write a non-checking caller would miss;
//   - ChecksumFlip: a single deterministic bit of the record's stored
//     CRC is flipped, the single-bit rot a checksum exists to catch.
//
// All three corrupt only what a crash or bit rot could corrupt: bytes
// at and after the injected record. The recovery scanner must degrade
// every such image to a valid prefix of the committed record stream.
package faultinject

import (
	"fmt"
	"strings"
	"time"
)

// Mode identifies one injectable fault class.
type Mode uint8

// Fault classes.
const (
	ColdFallback Mode = iota
	SingularFactor
	NodeLatency
	SpuriousCancel
	TornWrite
	ShortWrite
	ChecksumFlip
	numModes
)

func (m Mode) String() string {
	switch m {
	case ColdFallback:
		return "cold"
	case SingularFactor:
		return "singular"
	case NodeLatency:
		return "latency"
	case SpuriousCancel:
		return "cancel"
	case TornWrite:
		return "torn"
	case ShortWrite:
		return "short"
	case ChecksumFlip:
		return "flip"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// AllModes lists every fault class, in declaration order.
func AllModes() []Mode {
	return []Mode{ColdFallback, SingularFactor, NodeLatency, SpuriousCancel,
		TornWrite, ShortWrite, ChecksumFlip}
}

// SolverModes lists the fault classes consumed by the solver stack
// (everything but the filesystem modes).
func SolverModes() []Mode {
	return []Mode{ColdFallback, SingularFactor, NodeLatency, SpuriousCancel}
}

// FSModes lists the filesystem fault classes consumed by
// internal/persist.
func FSModes() []Mode {
	return []Mode{TornWrite, ShortWrite, ChecksumFlip}
}

// ParseModes parses a comma-separated list of mode names ("cold",
// "singular", "latency", "cancel", "torn", "short", "flip"), "all"
// (every class), "solver" (the solver classes) or "fs" (the filesystem
// classes).
func ParseModes(s string) ([]Mode, error) {
	if strings.TrimSpace(s) == "" || s == "all" {
		return AllModes(), nil
	}
	var modes []Mode
	for _, tok := range strings.Split(s, ",") {
		switch strings.TrimSpace(tok) {
		case "cold":
			modes = append(modes, ColdFallback)
		case "singular":
			modes = append(modes, SingularFactor)
		case "latency":
			modes = append(modes, NodeLatency)
		case "cancel":
			modes = append(modes, SpuriousCancel)
		case "torn":
			modes = append(modes, TornWrite)
		case "short":
			modes = append(modes, ShortWrite)
		case "flip":
			modes = append(modes, ChecksumFlip)
		case "solver":
			modes = append(modes, SolverModes()...)
		case "fs":
			modes = append(modes, FSModes()...)
		default:
			return nil, fmt.Errorf("faultinject: unknown mode %q (want cold, singular, latency, cancel, torn, short, flip, solver, fs, or all)", tok)
		}
	}
	return modes, nil
}

// DefaultRate is the per-decision injection probability used when a
// caller enables injection without choosing a rate. High enough that
// short chaos runs hit every enabled mode, low enough that forward
// progress survives.
const DefaultRate = 0.25

// DefaultLatency is the sleep injected per NodeLatency hit.
const DefaultLatency = 200 * time.Microsecond

// Injector makes deterministic fault decisions. The zero value injects
// nothing; a nil *Injector is valid and injects nothing, so callers may
// thread it unconditionally. Injector is immutable after New and safe
// for concurrent use.
type Injector struct {
	seed    uint64
	rate    float64
	latency time.Duration
	mask    uint8
}

// New returns an Injector that injects each of the given modes with
// probability rate per decision point. rate <= 0 selects DefaultRate;
// latency <= 0 selects DefaultLatency. No modes means all modes.
func New(seed uint64, rate float64, latency time.Duration, modes ...Mode) *Injector {
	if rate <= 0 {
		rate = DefaultRate
	}
	if rate > 1 {
		rate = 1
	}
	if latency <= 0 {
		latency = DefaultLatency
	}
	if len(modes) == 0 {
		modes = AllModes()
	}
	inj := &Injector{seed: seed, rate: rate, latency: latency}
	for _, m := range modes {
		if m < numModes {
			inj.mask |= 1 << m
		}
	}
	return inj
}

// Seed returns the injector's seed (0 for a nil injector).
func (inj *Injector) Seed() uint64 {
	if inj == nil {
		return 0
	}
	return inj.seed
}

// Enabled reports whether mode m is injected at all.
func (inj *Injector) Enabled(m Mode) bool {
	return inj != nil && m < numModes && inj.mask&(1<<m) != 0
}

// Modes returns the enabled modes, in declaration order.
func (inj *Injector) Modes() []Mode {
	var out []Mode
	for _, m := range AllModes() {
		if inj.Enabled(m) {
			out = append(out, m)
		}
	}
	return out
}

// String describes the injector for logs and certificates.
func (inj *Injector) String() string {
	if inj == nil {
		return "faultinject(off)"
	}
	names := make([]string, 0, numModes)
	for _, m := range inj.Modes() {
		names = append(names, m.String())
	}
	return fmt.Sprintf("faultinject(seed=%d rate=%g modes=%s)", inj.seed, inj.rate, strings.Join(names, ","))
}

// per-mode salts decorrelate the decision streams: a (fingerprint, seq)
// pair hitting under one mode says nothing about the others.
var modeSalt = [numModes]uint64{
	ColdFallback:   0xc01dfa11c01dfa11,
	SingularFactor: 0x516b1a4f4c704af3,
	NodeLatency:    0x1a7e9c19a7e9c19b,
	SpuriousCancel: 0x5ca9ce15ca9ce157,
	TornWrite:      0x70a9d217e0a9d217,
	ShortWrite:     0x5b0a7f175b0a7f17,
	ChecksumFlip:   0xc6ec5f11bc6ec5f1,
}

// splitmix64 is the same finalizing mixer the EXPAND perturbation uses
// (lp/perturb.go): full-avalanche, so consecutive sequence numbers give
// uncorrelated decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hit is the single decision primitive: a pure function of
// (seed, mode, fingerprint, sequence) compared against the rate.
func (inj *Injector) hit(m Mode, fprint, seq uint64) bool {
	hit, _ := inj.draw(m, fprint, seq)
	return hit
}

// draw extends hit with a deterministic secondary value for modes that
// need one (where to cut a torn write, which bit to flip): one more
// splitmix64 round over the decision hash, so the secondary stream is
// uncorrelated with the yes/no stream.
func (inj *Injector) draw(m Mode, fprint, seq uint64) (bool, uint64) {
	if !inj.Enabled(m) {
		return false, 0
	}
	h := splitmix64(inj.seed ^ modeSalt[m] ^ splitmix64(fprint^(seq+1)*0x9e3779b97f4a7c15))
	// Top 53 bits to a uniform float in [0,1).
	return float64(h>>11)/(1<<53) < inj.rate, splitmix64(h)
}

// ForceColdFallback reports whether the warm re-solve identified by
// (fprint, seq) must take its cold-restart path.
func (inj *Injector) ForceColdFallback(fprint, seq uint64) bool {
	return inj.hit(ColdFallback, fprint, seq)
}

// SingularRefactor reports whether refactorization of the warm basis for
// (fprint, seq) must be treated as singular.
func (inj *Injector) SingularRefactor(fprint, seq uint64) bool {
	return inj.hit(SingularFactor, fprint, seq)
}

// InjectedLatency returns the sleep to insert before solving the node
// identified by (fprint, seq); 0 when the node is not hit.
func (inj *Injector) InjectedLatency(fprint, seq uint64) time.Duration {
	if inj.hit(NodeLatency, fprint, seq) {
		return inj.latency
	}
	return 0
}

// CancelAt reports whether the search identified by fprint must observe
// a spurious cancellation at the wave boundary whose next creation
// sequence is seq.
func (inj *Injector) CancelAt(fprint, seq uint64) bool {
	return inj.hit(SpuriousCancel, fprint, seq)
}

// TornWriteLen returns how many of the n bytes of the record write
// identified by (fprint, seq) actually reach the file before the
// simulated crash: n when the write is not hit, otherwise a
// deterministic cut in [0, n-1]. A torn writer must treat a cut write
// as fatal (the process "died" mid-append).
func (inj *Injector) TornWriteLen(fprint, seq uint64, n int) int {
	if hit, v := inj.draw(TornWrite, fprint, seq); hit && n > 0 {
		return int(v % uint64(n))
	}
	return n
}

// ShortWriteLen returns how many of the n bytes of the record write
// identified by (fprint, seq) land on disk when the write's tail is
// silently lost: n when not hit, otherwise a deterministic prefix in
// [1, n-1]. Unlike TornWriteLen the writer carries on, so later
// records append after the gap. The cut is never 0 bytes: a write(2)
// that lands nothing returns an error the caller sees, and a zero-byte
// gap would leave the next record perfectly aligned — a hole in the
// stream rather than the invalid tail short writes actually produce.
func (inj *Injector) ShortWriteLen(fprint, seq uint64, n int) int {
	if hit, v := inj.draw(ShortWrite, fprint, seq); hit && n > 1 {
		return 1 + int(v%uint64(n-1))
	}
	return n
}

// FlipChecksumBit returns the bit index (0..31) of the stored CRC to
// flip for the record write identified by (fprint, seq), or -1 when
// the record is not hit.
func (inj *Injector) FlipChecksumBit(fprint, seq uint64) int {
	if hit, v := inj.draw(ChecksumFlip, fprint, seq); hit {
		return int(v % 32)
	}
	return -1
}
