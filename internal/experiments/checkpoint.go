// Per-cell experiment checkpointing: a crash-only journal of completed
// (instance, method) grid cells so a killed run resumes instead of
// recomputing. Built on internal/persist's checksummed record log — a
// kill -9 mid-append leaves a torn tail that recovery truncates away,
// costing exactly the cells that had not committed.
package experiments

import (
	"encoding/json"
	"fmt"
	"sync"

	"mbsp/internal/graph"
	"mbsp/internal/persist"
	"mbsp/internal/workloads"
)

// checkpointRecord is one completed grid cell. The key embeds the
// instance's structural fingerprint and every Config field that can
// change a cost, so a checkpoint taken under one configuration (or
// dataset revision) is silently inapplicable — not wrongly applied —
// under another.
type checkpointRecord struct {
	Key  string  `json:"key"`
	Cost float64 `json:"cost"`
}

// Checkpoint is a durable set of completed grid cells backed by an
// append journal. A nil *Checkpoint is valid and checkpoints nothing,
// so Run can thread it unconditionally. Safe for concurrent use by
// Run's workers.
type Checkpoint struct {
	mu      sync.Mutex
	journal *persist.Journal
	done    map[string]float64

	restored int64 // cells recovered from the file at Open
	corrupt  int64 // invalid or undecodable records dropped at Open
}

// OpenCheckpoint opens (creating if necessary) the checkpoint journal
// at path, recovering every completed cell it holds. Torn or corrupt
// tails are truncated and counted, never fatal: the cells they held
// simply recompute.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	payloads, stats, err := persist.RecoverFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: recovering checkpoint %s: %w", path, err)
	}
	c := &Checkpoint{done: make(map[string]float64, len(payloads)), corrupt: int64(stats.CorruptRecords)}
	for _, p := range payloads {
		var rec checkpointRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			c.corrupt++ // intact checksum, undecodable payload: format drift
			continue
		}
		c.done[rec.Key] = rec.Cost
		c.restored++
	}
	j, err := persist.OpenJournal(path, persist.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: opening checkpoint %s: %w", path, err)
	}
	c.journal = j
	return c, nil
}

// Lookup returns the recorded cost for a cell key, if the cell already
// completed under an identical configuration.
func (c *Checkpoint) Lookup(key string) (float64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cost, ok := c.done[key]
	return cost, ok
}

// Record durably commits one completed cell: when Record returns, the
// cell survives a kill -9. Append errors are returned so the caller can
// decide whether to press on without durability.
func (c *Checkpoint) Record(key string, cost float64) error {
	if c == nil {
		return nil
	}
	payload, err := json.Marshal(checkpointRecord{Key: key, Cost: cost})
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.journal.Append(payload); err != nil {
		return err
	}
	c.done[key] = cost
	return nil
}

// Restored returns how many cells the Open recovered; Corrupt how many
// invalid records it dropped.
func (c *Checkpoint) Restored() int64 {
	if c == nil {
		return 0
	}
	return c.restored
}

// Corrupt returns how many invalid records Open dropped.
func (c *Checkpoint) Corrupt() int64 {
	if c == nil {
		return 0
	}
	return c.corrupt
}

// Close closes the underlying journal.
func (c *Checkpoint) Close() error {
	if c == nil || c.journal == nil {
		return nil
	}
	return c.journal.Close()
}

// cellKey is the checkpoint identity of one grid cell: instance name +
// structural fingerprint, method, and the cost-relevant Config fields.
// Workers/MIPWorkers are deliberately absent — they never change
// results (deterministic collection / node accounting).
func cellKey(inst workloads.Instance, m Method, cfg Config) string {
	return fmt.Sprintf("%s#%016x/%s/p%d,r%g,g%g,L%g/%s/ilp%s,ls%d,seed%d",
		inst.Name, fingerprintOf(inst.DAG), m.Name,
		cfg.P, cfg.RFactor, cfg.G, cfg.L, cfg.Model,
		cfg.ILPTimeLimit, cfg.LocalSearchBudget, cfg.Seed)
}

func fingerprintOf(g *graph.DAG) uint64 {
	if g == nil {
		return 0
	}
	return g.Fingerprint()
}
