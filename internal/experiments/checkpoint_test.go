package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/workloads"
)

// countingMethod wraps a cheap deterministic method with an invocation
// counter, so tests can assert which cells actually recomputed.
func countingMethod(name string, calls *atomic.Int64) Method {
	base := Baseline()
	return Method{Name: name, Run: func(g *graph.DAG, arch mbsp.Arch, cfg Config) (*mbsp.Schedule, error) {
		calls.Add(1)
		return base.Run(g, arch, cfg)
	}}
}

// TestCheckpointResume: a full run journals every cell; a rerun with
// the same checkpoint file recomputes nothing and renders an identical
// table. A config change invalidates every key, so everything reruns.
func TestCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.ckpt")
	insts := workloads.Tiny()[:3]
	cfg := quickCfg()
	cfg.Workers = 2

	var calls atomic.Int64
	m := countingMethod("base", &calls)

	cp1, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = cp1
	t1, err := Run("chk", insts, cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp1.Close(); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(len(insts)) {
		t.Fatalf("first run computed %d cells, want %d", got, len(insts))
	}

	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Restored() != int64(len(insts)) || cp2.Corrupt() != 0 {
		t.Fatalf("restored=%d corrupt=%d, want %d/0", cp2.Restored(), cp2.Corrupt(), len(insts))
	}
	cfg.Checkpoint = cp2
	t2, err := Run("chk", insts, cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(len(insts)) {
		t.Fatalf("resumed run recomputed cells: %d total calls", got)
	}
	if !reflect.DeepEqual(t1.Rows, t2.Rows) {
		t.Fatalf("resumed table differs:\n%+v\nvs\n%+v", t1.Rows, t2.Rows)
	}

	// Different seed → different cell keys → every cell recomputes.
	cfg.Seed++
	if _, err := Run("chk", insts, cfg, m); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2*int64(len(insts)) {
		t.Fatalf("config change should invalidate the checkpoint: %d total calls", got)
	}
}

// TestCheckpointTornTailResumes: kill -9 mid-append leaves a torn tail;
// reopening drops exactly the torn cell (counted) and the rerun
// recomputes only what was lost, still matching the clean table.
func TestCheckpointTornTailResumes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.ckpt")
	insts := workloads.Tiny()[:3]
	cfg := quickCfg()

	var calls atomic.Int64
	m := countingMethod("base", &calls)

	cp1, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = cp1
	clean, err := Run("chk", insts, cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	cp1.Close()

	// Tear the last record mid-payload, as a crash during the final
	// append would.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Restored() != int64(len(insts)-1) || cp2.Corrupt() != 1 {
		t.Fatalf("after tear: restored=%d corrupt=%d, want %d/1",
			cp2.Restored(), cp2.Corrupt(), len(insts)-1)
	}
	calls.Store(0)
	cfg.Checkpoint = cp2
	resumed, err := Run("chk", insts, cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("want exactly the torn cell recomputed, got %d calls", got)
	}
	if !reflect.DeepEqual(clean.Rows, resumed.Rows) {
		t.Fatalf("post-crash table differs:\n%+v\nvs\n%+v", clean.Rows, resumed.Rows)
	}
}
