package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"mbsp/internal/dnc"
	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/workloads"
)

// Table1 reproduces the paper's Table 1 (and the "base" column of Figure
// 4): synchronous MBSP costs of the two-stage baseline vs the holistic
// ILP method on the tiny dataset at P=4, r=3·r0, g=1, L=10.
func Table1(insts []workloads.Instance, cfg Config) (*Table, error) {
	return Run("Table 1: baseline vs ILP (sync)", insts, cfg, Baseline(), ILPMethod())
}

// Table3 reproduces the paper's Table 3: the full baseline matrix — main
// baseline, our ILP, Cilk+LRU, the ILP-based BSP baseline, and our ILP
// warm-started from it.
func Table3(insts []workloads.Instance, cfg Config) (*Table, error) {
	return Run("Table 3: baseline matrix", insts, cfg,
		Baseline(), ILPMethod(), CilkLRUMethod(), BSPILPBaseline(), BSPILPPlusILP())
}

// Table4Variant names one column group of the paper's Table 4.
type Table4Variant struct {
	Label  string
	Mutate func(Config) Config
}

// Table4Variants returns the paper's alternative configurations:
// r=5·r0, r=r0, P=8, L=0, and the asynchronous cost model.
func Table4Variants() []Table4Variant {
	return []Table4Variant{
		{"r=5r0", func(c Config) Config { c.RFactor = 5; return c }},
		{"r=r0", func(c Config) Config { c.RFactor = 1; return c }},
		{"P=8", func(c Config) Config { c.P = 8; return c }},
		{"L=0", func(c Config) Config { c.L = 0; return c }},
		{"async", func(c Config) Config { c.L = 0; c.Model = mbsp.Async; return c }},
	}
}

// Table4 runs baseline/ILP for every variant; the result maps variant
// label to its table.
func Table4(insts []workloads.Instance, cfg Config) (map[string]*Table, error) {
	out := map[string]*Table{}
	for _, v := range Table4Variants() {
		t, err := Run("Table 4: "+v.Label, insts, v.Mutate(cfg), Baseline(), ILPMethod())
		if err != nil {
			return nil, err
		}
		out[v.Label] = t
	}
	return out, nil
}

// DNCMethod is the divide-and-conquer ILP used on the small dataset.
func DNCMethod(maxPart int, subLimit time.Duration) Method {
	return Method{Name: "dnc-ilp", Run: func(g *graph.DAG, arch mbsp.Arch, cfg Config) (*mbsp.Schedule, error) {
		s, _, err := dnc.Solve(g, arch, dnc.Options{
			Model:             cfg.Model,
			MaxPartSize:       maxPart,
			SubTimeLimit:      subLimit,
			MIPWorkers:        cfg.MIPWorkers,
			LocalSearchBudget: cfg.LocalSearchBudget / 4,
			Seed:              cfg.Seed,
		})
		return s, err
	}}
}

// Table2 reproduces the paper's Table 2: baseline vs divide-and-conquer
// ILP on the small dataset at r=5·r0.
func Table2(insts []workloads.Instance, cfg Config, maxPart int, subLimit time.Duration) (*Table, error) {
	cfg.RFactor = 5
	return Run("Table 2: baseline vs divide-and-conquer ILP", insts, cfg,
		Baseline(), DNCMethod(maxPart, subLimit))
}

// SingleProcessor runs the paper's P=1 red-blue-pebbling experiment:
// DFS+clairvoyant vs the ILP, on the tiny dataset.
func SingleProcessor(insts []workloads.Instance, cfg Config) (*Table, error) {
	cfg.P = 1
	return Run("P=1 pebbling: DFS+clairvoyant vs ILP", insts, cfg, Baseline(), ILPMethod())
}

// Figure4 computes the cost-reduction ratio distributions (ILP/base) for
// the base configuration and each Table 4 variant.
func Figure4(insts []workloads.Instance, cfg Config) ([]BoxSummary, error) {
	var out []BoxSummary
	base, err := Table1(insts, cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, Summarize("base", base.Ratio("ilp", "base")))
	variants, err := Table4(insts, cfg)
	if err != nil {
		return nil, err
	}
	for _, v := range Table4Variants() {
		out = append(out, Summarize(v.Label, variants[v.Label].Ratio("ilp", "base")))
	}
	return out, nil
}

// Render writes the table as aligned text with a geometric-mean footer
// for every non-first method relative to the first.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Name)
	fmt.Fprintf(w, "%-20s", "Instance")
	for _, m := range t.Methods {
		fmt.Fprintf(w, "%14s", m)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-20s", r.Instance)
		for _, c := range r.Costs {
			fmt.Fprintf(w, "%14.4g", c)
		}
		fmt.Fprintln(w)
	}
	if len(t.Methods) > 1 && len(t.Rows) > 0 {
		fmt.Fprintf(w, "%-20s%14s", "geomean ratio", "1.00")
		for _, m := range t.Methods[1:] {
			fmt.Fprintf(w, "%14.3f", GeoMean(t.Ratio(m, t.Methods[0])))
		}
		fmt.Fprintln(w)
	}
}

// RenderBoxes writes Figure 4's summaries as text.
func RenderBoxes(w io.Writer, boxes []BoxSummary) {
	fmt.Fprintf(w, "Figure 4: ILP/baseline cost-ratio distributions\n")
	fmt.Fprintf(w, "%-8s%8s%8s%8s%8s%8s%10s\n", "variant", "min", "q1", "median", "q3", "max", "geomean")
	for _, b := range boxes {
		fmt.Fprintf(w, "%-8s%8.3f%8.3f%8.3f%8.3f%8.3f%10.3f\n",
			b.Label, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.GeoMean)
	}
}

// WriteCSV emits the table in CSV form (as the paper's test suite does).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"instance"}, t.Methods...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := []string{r.Instance}
		for _, c := range r.Costs {
			rec = append(rec, strconv.FormatFloat(c, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
