// Package experiments reproduces the paper's evaluation (Section 7 /
// Appendix D): the baseline-vs-ILP comparisons of Tables 1 and 3, the
// parameter sweep of Table 4, the divide-and-conquer comparison of Table
// 2, the cost-ratio distributions of Figure 4, and the single-processor
// and no-recomputation side experiments.
//
// Budgets are configurable: the paper ran a commercial solver for 60
// minutes per instance on 64 cores, while the defaults here are tuned for
// second-scale runs with the bundled solver (see DESIGN.md).
package experiments

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mbsp/internal/bounds"
	"mbsp/internal/bsp"
	"mbsp/internal/graph"
	"mbsp/internal/ilpsched"
	"mbsp/internal/mbsp"
	"mbsp/internal/memmgr"
	"mbsp/internal/twostage"
	"mbsp/internal/workloads"
)

// Config carries the model and budget parameters of one experiment.
type Config struct {
	P       int
	RFactor float64 // r = RFactor · r0
	G       float64
	L       float64
	Model   mbsp.CostModel

	ILPTimeLimit      time.Duration // per instance
	LocalSearchBudget int
	Seed              int64

	// Workers bounds how many (instance, method) grid cells run
	// concurrently. 0 selects GOMAXPROCS; 1 is the sequential path.
	// Results are collected in grid order, so for deterministic methods
	// the rendered table is identical for any worker count.
	Workers int
	// MIPWorkers bounds the relaxation-solving worker pool inside each
	// ILP method's branch-and-bound trees; results are identical for any
	// value (deterministic node accounting in package mip). Default 1.
	MIPWorkers int

	// Checkpoint, when non-nil, makes grid runs resumable: every
	// completed (instance, method) cell is durably journaled, and cells
	// whose key — instance fingerprint, method, and the cost-relevant
	// Config fields — already completed are replayed instead of
	// recomputed, so a killed run resumed with the same checkpoint file
	// renders an identical table. nil disables checkpointing.
	Checkpoint *Checkpoint
}

// Base returns the paper's main configuration (P=4, r=3·r0, g=1, L=10,
// synchronous) with bench-friendly budgets.
func Base() Config {
	return Config{
		P: 4, RFactor: 3, G: 1, L: 10, Model: mbsp.Sync,
		ILPTimeLimit: 2 * time.Second, LocalSearchBudget: 2000, Seed: 1,
	}
}

// Arch builds the mbsp.Arch for an instance under this configuration.
func (c Config) Arch(g *graph.DAG) mbsp.Arch {
	return mbsp.Arch{P: c.P, R: c.RFactor * g.MinCache(), G: c.G, L: c.L}
}

// Row is one instance's results across methods, in method order.
type Row struct {
	Instance string
	Costs    []float64
}

// Table is a named set of rows with one column per method.
type Table struct {
	Name    string
	Methods []string
	Rows    []Row
}

// Ratio returns cost(numMethod)/cost(denMethod) per row.
func (t *Table) Ratio(numMethod, denMethod string) []float64 {
	ni, di := -1, -1
	for i, m := range t.Methods {
		if m == numMethod {
			ni = i
		}
		if m == denMethod {
			di = i
		}
	}
	if ni < 0 || di < 0 {
		panic(fmt.Sprintf("experiments: unknown methods %q/%q", numMethod, denMethod))
	}
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r.Costs[ni] / r.Costs[di]
	}
	return out
}

// GeoMean returns the geometric mean of xs.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Method is a named scheduler.
type Method struct {
	Name string
	Run  func(g *graph.DAG, arch mbsp.Arch, cfg Config) (*mbsp.Schedule, error)
}

// Baseline is the paper's main baseline: BSPg + clairvoyant (DFS +
// clairvoyant for P=1).
func Baseline() Method {
	return Method{Name: "base", Run: func(g *graph.DAG, arch mbsp.Arch, cfg Config) (*mbsp.Schedule, error) {
		if arch.P == 1 {
			return twostage.DFSClairvoyant().Run(g, arch)
		}
		return twostage.BSPgClairvoyant(arch.G, arch.L).Run(g, arch)
	}}
}

// ILPMethod is the holistic ILP scheduler warm-started from the main
// baseline.
func ILPMethod() Method {
	return Method{Name: "ilp", Run: func(g *graph.DAG, arch mbsp.Arch, cfg Config) (*mbsp.Schedule, error) {
		s, _, err := ilpsched.Solve(g, arch, ilpsched.Options{
			Model:             cfg.Model,
			TimeLimit:         cfg.ILPTimeLimit,
			MIPWorkers:        cfg.MIPWorkers,
			LocalSearchBudget: cfg.LocalSearchBudget,
			Seed:              cfg.Seed,
		})
		return s, err
	}}
}

// CilkLRUMethod is the application-oriented weak baseline.
func CilkLRUMethod() Method {
	return Method{Name: "cilk+lru", Run: func(g *graph.DAG, arch mbsp.Arch, cfg Config) (*mbsp.Schedule, error) {
		return twostage.CilkLRU(cfg.Seed).Run(g, arch)
	}}
}

// BSPILPBaseline is the stronger two-stage baseline: ILP-based BSP
// scheduling plus the clairvoyant policy.
func BSPILPBaseline() Method {
	return Method{Name: "bsp-ilp", Run: func(g *graph.DAG, arch mbsp.Arch, cfg Config) (*mbsp.Schedule, error) {
		b, err := bsp.ILP(g, arch.P, bsp.ILPOptions{
			G: arch.G, L: arch.L, TimeLimit: cfg.ILPTimeLimit, Workers: cfg.MIPWorkers,
		})
		if err != nil {
			return nil, err
		}
		return twostage.Convert(b, arch, memmgr.Clairvoyant{})
	}}
}

// BSPILPPlusILP warm-starts the holistic ILP from the stronger baseline.
func BSPILPPlusILP() Method {
	return Method{Name: "bsp-ilp+ilp", Run: func(g *graph.DAG, arch mbsp.Arch, cfg Config) (*mbsp.Schedule, error) {
		b, err := bsp.ILP(g, arch.P, bsp.ILPOptions{
			G: arch.G, L: arch.L, TimeLimit: cfg.ILPTimeLimit, Workers: cfg.MIPWorkers,
		})
		if err != nil {
			return nil, err
		}
		warm, err := twostage.Convert(b, arch, memmgr.Clairvoyant{})
		if err != nil {
			return nil, err
		}
		s, _, err := ilpsched.Solve(g, arch, ilpsched.Options{
			Model:             cfg.Model,
			WarmStart:         warm,
			TimeLimit:         cfg.ILPTimeLimit,
			MIPWorkers:        cfg.MIPWorkers,
			LocalSearchBudget: cfg.LocalSearchBudget,
			Seed:              cfg.Seed,
		})
		return s, err
	}}
}

// Run evaluates the methods on every instance and returns the table. The
// instances × methods grid is fanned out over cfg.Workers goroutines;
// results are collected in grid order (instance-major, method-minor), so
// the table — and, on failure, the reported error — match the sequential
// path cell for cell.
func Run(name string, insts []workloads.Instance, cfg Config, methods ...Method) (*Table, error) {
	t := &Table{Name: name}
	for _, m := range methods {
		t.Methods = append(t.Methods, m.Name)
	}
	nm := len(methods)
	cells := len(insts) * nm
	if cells == 0 {
		return t, nil
	}
	costs := make([]float64, cells)
	errs := make([]error, cells)

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cells {
		workers = cells
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	// Lowest failing cell index seen so far. Once a cell fails the table
	// is lost, so cells after it skip their solver work — but cells
	// before it still run, keeping the reported error the first in grid
	// order exactly as the sequential path would.
	firstFail := atomic.Int64{}
	firstFail.Store(int64(cells))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if int64(idx) > firstFail.Load() {
					continue
				}
				inst, m := insts[idx/nm], methods[idx%nm]
				key := cellKey(inst, m, cfg)
				if cost, ok := cfg.Checkpoint.Lookup(key); ok {
					costs[idx] = cost
					continue
				}
				costs[idx], errs[idx] = runCell(inst, m, cfg)
				if errs[idx] == nil {
					// Commit before moving on: when Record returns the cell
					// survives kill -9. A failed append only costs
					// resumability, so the run presses on.
					if cerr := cfg.Checkpoint.Record(key, costs[idx]); cerr != nil {
						fmt.Fprintf(os.Stderr, "experiments: checkpointing %s: %v\n", key, cerr)
					}
				}
				if errs[idx] != nil {
					for {
						cur := firstFail.Load()
						if int64(idx) >= cur || firstFail.CompareAndSwap(cur, int64(idx)) {
							break
						}
					}
				}
			}
		}()
	}
	for idx := 0; idx < cells; idx++ {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	for idx := 0; idx < cells; idx++ {
		if errs[idx] != nil {
			return nil, errs[idx]
		}
	}
	for i, inst := range insts {
		row := Row{Instance: inst.Name, Costs: costs[i*nm : (i+1)*nm : (i+1)*nm]}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// runCell evaluates one (instance, method) grid cell.
func runCell(inst workloads.Instance, m Method, cfg Config) (float64, error) {
	arch := cfg.Arch(inst.DAG)
	s, err := m.Run(inst.DAG, arch, cfg)
	if err != nil {
		return 0, fmt.Errorf("%s on %s: %w", m.Name, inst.Name, err)
	}
	if err := s.Validate(); err != nil {
		return 0, fmt.Errorf("%s on %s produced invalid schedule: %w", m.Name, inst.Name, err)
	}
	cost := s.Cost(cfg.Model)
	// Soundness net: no scheduler may beat the proven lower bound.
	lb := bounds.AsyncLB(inst.DAG, arch)
	if cfg.Model == mbsp.Sync {
		lb = bounds.SyncLB(inst.DAG, arch)
	}
	if cost < lb-1e-9 {
		return 0, fmt.Errorf("%s on %s reports cost %g below the lower bound %g",
			m.Name, inst.Name, cost, lb)
	}
	return cost, nil
}

// BoxSummary is the five-number summary used to render Figure 4.
type BoxSummary struct {
	Label                    string
	Min, Q1, Median, Q3, Max float64
	GeoMean                  float64
}

// Summarize computes a five-number summary of the ratios.
func Summarize(label string, ratios []float64) BoxSummary {
	xs := append([]float64(nil), ratios...)
	sort.Float64s(xs)
	q := func(f float64) float64 {
		if len(xs) == 1 {
			return xs[0]
		}
		pos := f * float64(len(xs)-1)
		lo := int(pos)
		hi := lo + 1
		if hi >= len(xs) {
			return xs[lo]
		}
		frac := pos - float64(lo)
		return xs[lo]*(1-frac) + xs[hi]*frac
	}
	return BoxSummary{
		Label: label, Min: xs[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75),
		Max: xs[len(xs)-1], GeoMean: GeoMean(ratios),
	}
}
