package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/workloads"
)

// TestParallelMatchesSequential asserts the acceptance property of the
// concurrent harness: for a fixed seed and deterministic methods, the
// parallel grid renders (text and CSV) byte-identically to the
// sequential path, for several worker counts.
func TestParallelMatchesSequential(t *testing.T) {
	insts := workloads.Tiny()
	render := func(workers int) []byte {
		cfg := Base()
		cfg.Workers = workers
		tab, err := Run("equivalence", insts, cfg, Baseline(), CilkLRUMethod())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		tab.Render(&buf)
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := render(1)
	for _, workers := range []int{2, 4, 8} {
		if got := render(workers); !bytes.Equal(want, got) {
			t.Fatalf("workers=%d table differs from sequential:\n%s\nvs\n%s", workers, want, got)
		}
	}
}

// TestParallelErrorMatchesSequential pins the error semantics: the
// parallel run must report the error of the first failing cell in grid
// order, exactly like the sequential loop did.
func TestParallelErrorMatchesSequential(t *testing.T) {
	insts := workloads.Tiny()[:4]
	failOn := insts[1].Name
	failing := Method{Name: "failing", Run: func(g *graph.DAG, arch mbsp.Arch, cfg Config) (*mbsp.Schedule, error) {
		if g.Name() == failOn || g.Name() == insts[2].Name {
			return nil, fmt.Errorf("boom on %s", g.Name())
		}
		return Baseline().Run(g, arch, cfg)
	}}
	var want error
	for _, workers := range []int{1, 8} {
		cfg := Base()
		cfg.Workers = workers
		_, err := Run("errors", insts, cfg, failing)
		if err == nil {
			t.Fatalf("workers=%d: expected an error", workers)
		}
		if want == nil {
			want = err
			continue
		}
		if err.Error() != want.Error() {
			t.Fatalf("workers=%d error %q differs from sequential %q", workers, err, want)
		}
	}
}
