package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"mbsp/internal/workloads"
)

// quickCfg keeps tests fast: tiny solver budgets.
func quickCfg() Config {
	c := Base()
	c.ILPTimeLimit = 200 * time.Millisecond
	c.LocalSearchBudget = 300
	return c
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean=%g want 2", g)
	}
	if g := GeoMean([]float64{0.5, 0.5}); math.Abs(g-0.5) > 1e-12 {
		t.Fatalf("geomean=%g want 0.5", g)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Fatal("empty geomean should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	b := Summarize("x", []float64{0.5, 0.7, 0.9, 1.0, 1.1})
	if b.Min != 0.5 || b.Max != 1.1 || b.Median != 0.9 {
		t.Fatalf("summary=%+v", b)
	}
	if b.Q1 < b.Min || b.Q3 > b.Max || b.Q1 > b.Median || b.Median > b.Q3 {
		t.Fatalf("quantiles disordered: %+v", b)
	}
}

func TestTable1ShapeOnSubset(t *testing.T) {
	insts := workloads.Tiny()[:4]
	tab, err := Table1(insts, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || len(tab.Methods) != 2 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Methods))
	}
	// The ILP column must never exceed the baseline (warm-started).
	for _, r := range tab.Rows {
		if r.Costs[1] > r.Costs[0]+1e-9 {
			t.Fatalf("%s: ilp %g > base %g", r.Instance, r.Costs[1], r.Costs[0])
		}
	}
	gm := GeoMean(tab.Ratio("ilp", "base"))
	if gm > 1.0+1e-12 {
		t.Fatalf("geomean ratio %g above 1", gm)
	}
}

func TestRenderAndCSV(t *testing.T) {
	insts := workloads.Tiny()[:2]
	tab, err := Table1(insts, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "geomean ratio") || !strings.Contains(out, insts[0].Name) {
		t.Fatalf("render output:\n%s", out)
	}
	buf.Reset()
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines=%d want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "instance,base,ilp") {
		t.Fatalf("csv header %q", lines[0])
	}
}

func TestTable4VariantsMutateConfig(t *testing.T) {
	cfg := Base()
	for _, v := range Table4Variants() {
		mut := v.Mutate(cfg)
		switch v.Label {
		case "r=5r0":
			if mut.RFactor != 5 {
				t.Fatal("r=5r0 variant wrong")
			}
		case "r=r0":
			if mut.RFactor != 1 {
				t.Fatal("r=r0 variant wrong")
			}
		case "P=8":
			if mut.P != 8 {
				t.Fatal("P=8 variant wrong")
			}
		case "L=0":
			if mut.L != 0 {
				t.Fatal("L=0 variant wrong")
			}
		case "async":
			if mut.L != 0 || mut.Model.String() != "async" {
				t.Fatal("async variant wrong")
			}
		}
	}
}

func TestSingleProcessorExperiment(t *testing.T) {
	insts := workloads.Tiny()[:2]
	tab, err := SingleProcessor(insts, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r.Costs[1] > r.Costs[0]+1e-9 {
			t.Fatalf("%s: P=1 ilp worse than baseline", r.Instance)
		}
	}
}

func TestTable2OnOneInstance(t *testing.T) {
	inst, err := workloads.ByName("spmv_N25")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Table2([]workloads.Instance{inst}, quickCfg(), 20, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatal("wrong row count")
	}
	ratio := tab.Rows[0].Costs[1] / tab.Rows[0].Costs[0]
	t.Logf("dnc/base = %.3f", ratio)
	if ratio > 2.5 {
		t.Fatalf("D&C wildly worse than baseline: %g", ratio)
	}
}

func TestRenderBoxes(t *testing.T) {
	var buf bytes.Buffer
	RenderBoxes(&buf, []BoxSummary{Summarize("base", []float64{0.8, 0.9, 1.0})})
	if !strings.Contains(buf.String(), "base") || !strings.Contains(buf.String(), "geomean") {
		t.Fatalf("box render:\n%s", buf.String())
	}
}
