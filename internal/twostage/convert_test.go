package twostage

import (
	"testing"

	"mbsp/internal/bsp"
	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/memmgr"
	"mbsp/internal/workloads"
)

func archFor(g *graph.DAG, p int, rFactor float64) mbsp.Arch {
	return mbsp.Arch{P: p, R: rFactor * g.MinCache(), G: 1, L: 10}
}

func TestConvertValidOnTinySetAllPipelines(t *testing.T) {
	for _, inst := range workloads.Tiny() {
		for _, rf := range []float64{1, 3, 5} {
			for _, pl := range []Pipeline{BSPgClairvoyant(1, 10), CilkLRU(7)} {
				arch := archFor(inst.DAG, 4, rf)
				s, err := pl.Run(inst.DAG, arch)
				if err != nil {
					t.Fatalf("%s %s rf=%g: %v", inst.Name, pl.Name, rf, err)
				}
				if err := s.Validate(); err != nil {
					t.Fatalf("%s %s rf=%g: invalid schedule: %v", inst.Name, pl.Name, rf, err)
				}
				if err := s.CheckComputesAll(); err != nil {
					t.Fatalf("%s %s rf=%g: %v", inst.Name, pl.Name, rf, err)
				}
			}
		}
	}
}

func TestConvertValidOnSmallSet(t *testing.T) {
	for _, inst := range workloads.Small() {
		arch := archFor(inst.DAG, 4, 5)
		s, err := BSPgClairvoyant(1, 10).Run(inst.DAG, arch)
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
	}
}

func TestConvertP1DFS(t *testing.T) {
	for _, inst := range workloads.Tiny() {
		arch := archFor(inst.DAG, 1, 3)
		s, err := DFSClairvoyant().Run(inst.DAG, arch)
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
	}
}

func TestConvertRejectsTooSmallCache(t *testing.T) {
	g := workloads.SpMV(6, 1)
	arch := mbsp.Arch{P: 2, R: g.MinCache() - 1, G: 1, L: 10}
	if _, err := BSPgClairvoyant(1, 10).Run(g, arch); err != ErrCacheTooSmall {
		t.Fatalf("expected ErrCacheTooSmall, got %v", err)
	}
}

func TestConvertChainSingleProc(t *testing.T) {
	// A unit chain with generous cache: cost should be
	// load(source) + m computes + save(sink) + L per superstep (2 steps).
	m := 6
	g := graph.Chain(m + 1)
	arch := mbsp.Arch{P: 1, R: 100, G: 1, L: 0}
	b := bsp.DFS(g)
	s, err := Convert(b, arch, memmgr.Clairvoyant{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Load 1 + computes m + save 1.
	want := 1.0 + float64(m) + 1.0
	if got := s.SyncCost(); got != want {
		t.Fatalf("cost=%g want %g\n%s", got, want, s)
	}
}

func TestConvertTightCacheForcesReloads(t *testing.T) {
	// Theorem 4.1 gadget with r=d+2 forces the converted optimal-BSP
	// schedule into Θ(d·m) loads, while a loose cache avoids them.
	gd := graph.NewTwoStageGapGadget(4, 8)
	g := gd.DAG
	// Stage-1: one chain per processor (the BSP optimum shape).
	b := bsp.NewSchedule(g, 2)
	for i, v := range gd.V {
		b.Assign(v, 0, i/1000) // all in superstep 0
	}
	for i, u := range gd.U {
		b.Assign(u, 1, i/1000)
	}
	tight := mbsp.Arch{P: 2, R: float64(gd.D) + 2, G: 1, L: 0}
	loose := mbsp.Arch{P: 2, R: 4 * float64(gd.D+2), G: 1, L: 0}
	st, err := Convert(b, tight, memmgr.Clairvoyant{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	sl, err := Convert(b, loose, memmgr.Clairvoyant{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sl.Validate(); err != nil {
		t.Fatal(err)
	}
	_, _, loadsTight, _ := st.Ops()
	_, _, loadsLoose, _ := sl.Ops()
	if loadsTight <= 2*loadsLoose {
		t.Fatalf("tight cache loads=%d not far above loose loads=%d", loadsTight, loadsLoose)
	}
	if st.SyncCost() <= sl.SyncCost() {
		t.Fatalf("tight cost %g not above loose cost %g", st.SyncCost(), sl.SyncCost())
	}
}

func TestClairvoyantNotWorseThanLRUOnAverage(t *testing.T) {
	// Clairvoyant should win (or tie) the total across the tiny set for
	// the same stage-1 schedules.
	var cl, lru float64
	for _, inst := range workloads.Tiny() {
		arch := archFor(inst.DAG, 4, 3)
		b, berr := bsp.BSPg(inst.DAG, arch.P, bsp.BSPgOptions{G: arch.G, L: arch.L})
		if berr != nil {
			t.Fatal(berr)
		}
		sc, err := Convert(b, arch, memmgr.Clairvoyant{})
		if err != nil {
			t.Fatal(err)
		}
		sl, err := Convert(b, arch, memmgr.LRU{})
		if err != nil {
			t.Fatal(err)
		}
		cl += sc.SyncCost()
		lru += sl.SyncCost()
	}
	if cl > lru {
		t.Fatalf("clairvoyant total %g worse than LRU total %g", cl, lru)
	}
}

func TestConvertAsyncCostComputable(t *testing.T) {
	for _, inst := range workloads.Tiny()[:4] {
		arch := mbsp.Arch{P: 4, R: 3 * inst.DAG.MinCache(), G: 1, L: 0}
		s, err := BSPgClairvoyant(1, 0).Run(inst.DAG, arch)
		if err != nil {
			t.Fatal(err)
		}
		if s.AsyncCost() <= 0 {
			t.Fatalf("%s: async cost %g", inst.Name, s.AsyncCost())
		}
		if s.AsyncCost() > s.SyncCost()+1e-9 {
			t.Fatalf("%s: async %g > sync %g with L=0", inst.Name, s.AsyncCost(), s.SyncCost())
		}
	}
}

func TestLargerCacheNeverIncreasesBaselineLoads(t *testing.T) {
	for _, inst := range workloads.Tiny() {
		b, berr := bsp.BSPg(inst.DAG, 4, bsp.BSPgOptions{G: 1, L: 10})
		if berr != nil {
			t.Fatal(berr)
		}
		var prevLoads = 1 << 30
		for _, rf := range []float64{1, 2, 3, 5, 10} {
			arch := archFor(inst.DAG, 4, rf)
			s, err := Convert(b, arch, memmgr.Clairvoyant{})
			if err != nil {
				t.Fatal(err)
			}
			_, _, loads, _ := s.Ops()
			if loads > prevLoads {
				// Clairvoyant is a heuristic under weights, so allow a
				// small wobble but catch gross regressions.
				if float64(loads) > 1.2*float64(prevLoads) {
					t.Fatalf("%s: loads grew sharply with larger cache (rf=%g): %d > %d",
						inst.Name, rf, loads, prevLoads)
				}
			}
			prevLoads = loads
		}
	}
}
