package twostage

import (
	"fmt"

	"mbsp/internal/bsp"
	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/memmgr"
)

// Pipeline names a complete two-stage baseline: a stage-1 scheduler plus
// an eviction policy.
type Pipeline struct {
	Name   string
	Stage1 func(g *graph.DAG, p int) (*bsp.Schedule, error)
	Policy memmgr.Policy
}

// Run executes the pipeline on g for the given architecture.
func (pl Pipeline) Run(g *graph.DAG, arch mbsp.Arch) (*mbsp.Schedule, error) {
	b, err := pl.Stage1(g, arch.P)
	if err != nil {
		return nil, fmt.Errorf("twostage: stage-1 scheduler %s: %w", pl.Name, err)
	}
	return Convert(b, arch, pl.Policy)
}

// BSPgClairvoyant is the paper's main baseline: the BSPg greedy scheduler
// combined with the clairvoyant eviction policy.
func BSPgClairvoyant(g1, l float64) Pipeline {
	return Pipeline{
		Name: "BSPg+clairvoyant",
		Stage1: func(g *graph.DAG, p int) (*bsp.Schedule, error) {
			return bsp.BSPg(g, p, bsp.BSPgOptions{G: g1, L: l})
		},
		Policy: memmgr.Clairvoyant{},
	}
}

// CilkLRU is the paper's "application-oriented" baseline: a Cilk-style
// work-stealing scheduler combined with LRU eviction.
func CilkLRU(seed int64) Pipeline {
	return Pipeline{
		Name: "Cilk+LRU",
		Stage1: func(g *graph.DAG, p int) (*bsp.Schedule, error) {
			return bsp.Cilk(g, p, seed)
		},
		Policy: memmgr.LRU{},
	}
}

// DFSClairvoyant is the single-processor baseline (red-blue pebbling with
// compute costs): a depth-first order plus clairvoyant eviction.
func DFSClairvoyant() Pipeline {
	return Pipeline{
		Name: "DFS+clairvoyant",
		Stage1: func(g *graph.DAG, p int) (*bsp.Schedule, error) {
			return bsp.DFS(g), nil
		},
		Policy: memmgr.Clairvoyant{},
	}
}
