package twostage

import (
	"testing"
	"testing/quick"

	"mbsp/internal/bounds"
	"mbsp/internal/bsp"
	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/memmgr"
)

// Property: over random DAGs, processor counts, cache factors and both
// eviction policies, the conversion always yields a valid schedule that
// computes every node and never beats the lower bound.
func TestConvertPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := seed
		abs := func(x int64) int64 {
			if x < 0 {
				return -x
			}
			return x
		}
		g := graph.RandomLayered("p", 2+int(abs(rng)%3), 3+int(abs(rng/7)%4), 0.4, 4, 4, seed)
		p := 1 + int(abs(rng/13)%4)
		rf := 1.0 + float64(abs(rng/17)%3)
		arch := mbsp.Arch{P: p, R: rf * g.MinCache(), G: 1 + float64(abs(rng/19)%3), L: float64(abs(rng/23) % 11)}
		var b *bsp.Schedule
		if p == 1 {
			b = bsp.DFS(g)
		} else {
			var berr error
			b, berr = bsp.BSPg(g, p, bsp.BSPgOptions{G: arch.G, L: arch.L})
			if berr != nil {
				return false
			}
		}
		for _, pol := range []memmgr.Policy{memmgr.Clairvoyant{}, memmgr.LRU{}} {
			s, err := Convert(b, arch, pol)
			if err != nil {
				return false
			}
			if s.Validate() != nil || s.CheckComputesAll() != nil {
				return false
			}
			if s.SyncCost() < bounds.SyncLB(g, arch)-1e-9 {
				return false
			}
			if s.AsyncCost() > s.SyncCost()+1e-9 && arch.L == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: converting the same BSP schedule with a larger cache never
// increases the number of supersteps drastically (segments only grow).
func TestConvertMonotoneSegments(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := graph.RandomLayered("p", 3, 4, 0.4, 4, 4, seed)
		b, berr := bsp.BSPg(g, 2, bsp.BSPgOptions{G: 1, L: 10})
		if berr != nil {
			t.Fatal(berr)
		}
		var prevSteps = 1 << 30
		for _, rf := range []float64{1, 2, 4, 8} {
			arch := mbsp.Arch{P: 2, R: rf * g.MinCache(), G: 1, L: 10}
			s, err := Convert(b, arch, memmgr.Clairvoyant{})
			if err != nil {
				t.Fatal(err)
			}
			if s.NumSupersteps() > prevSteps+1 {
				t.Fatalf("seed %d rf=%g: supersteps grew from %d to %d with a larger cache",
					seed, rf, prevSteps, s.NumSupersteps())
			}
			prevSteps = s.NumSupersteps()
		}
	}
}
