// Package twostage implements the paper's two-stage baseline: a stage-1
// BSP schedule (computed without memory constraints) is converted into a
// valid MBSP schedule by splitting compute phases into maximal segments
// that need no intervening I/O, and driving loads/evictions with a cache
// management policy (clairvoyant or LRU).
//
// The conversion follows Section 4 of the paper: new MBSP supersteps are
// formed by splitting each BSP compute phase into maximally long segments
// of compute steps that can still be executed without a new I/O
// operation; values computed for another processor (or for the terminal
// configuration) are saved in the superstep where they are produced;
// values with no remaining use are evicted automatically; when space is
// needed the policy selects a victim, saving it first if it is still live
// and not yet in slow memory.
package twostage

import (
	"errors"
	"fmt"

	"mbsp/internal/bsp"
	"mbsp/internal/mbsp"
	"mbsp/internal/memmgr"
)

// ErrCacheTooSmall is returned when the architecture's fast memory cannot
// hold some node together with its parents (r < r0).
var ErrCacheTooSmall = errors.New("twostage: fast memory smaller than r0, no valid schedule exists")

// Convert turns a valid BSP schedule into a valid MBSP schedule on arch
// using the given eviction policy.
func Convert(b *bsp.Schedule, arch mbsp.Arch, policy memmgr.Policy) (*mbsp.Schedule, error) {
	return ConvertExtra(b, arch, policy, nil)
}

// ConvertExtra is Convert with additional nodes that must end up in slow
// memory (saved when produced), used by the divide-and-conquer scheduler
// for values consumed by later subproblems.
func ConvertExtra(b *bsp.Schedule, arch mbsp.Arch, policy memmgr.Policy, extraSave []int) (*mbsp.Schedule, error) {
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("twostage: invalid stage-1 schedule: %w", err)
	}
	if arch.P < b.P {
		return nil, fmt.Errorf("twostage: architecture has %d processors, schedule uses %d", arch.P, b.P)
	}
	g := b.Graph
	if g.MinCache() > arch.R {
		return nil, ErrCacheTooSmall
	}

	c := &converter{b: b, arch: arch, policy: policy, out: mbsp.NewSchedule(g, arch)}
	c.init(extraSave)
	if err := c.run(); err != nil {
		return nil, err
	}
	return c.out, nil
}

type procState struct {
	seq    []int         // full compute sequence (concatenated BSP supersteps)
	head   int           // next index into seq
	uses   map[int][]int // value -> positions in seq consuming it
	usePtr map[int]int   // value -> index into uses[v] of next unconsumed use
	res    map[int]bool  // resident values (red pebbles)
	memUse float64
	last   map[int]int // value -> logical time of last activity
	clock  int
}

type converter struct {
	b      *bsp.Schedule
	arch   mbsp.Arch
	policy memmgr.Policy
	out    *mbsp.Schedule

	procs    []*procState
	blue     map[int]bool
	needSave []bool
}

func (c *converter) init(extraSave []int) {
	g := c.b.Graph
	order := c.b.ComputeOrder()
	c.procs = make([]*procState, c.arch.P)
	for p := 0; p < c.arch.P; p++ {
		ps := &procState{
			uses:   make(map[int][]int),
			usePtr: make(map[int]int),
			res:    make(map[int]bool),
			last:   make(map[int]int),
		}
		if p < c.b.P {
			for s := 0; s < c.b.NumSteps; s++ {
				ps.seq = append(ps.seq, order[p][s]...)
			}
		}
		for i, v := range ps.seq {
			for _, u := range g.Parents(v) {
				ps.uses[u] = append(ps.uses[u], i)
			}
		}
		c.procs[p] = ps
	}
	c.blue = make(map[int]bool)
	for _, v := range g.Sources() {
		c.blue[v] = true
	}
	c.needSave = make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if g.IsSource(v) {
			continue
		}
		if g.IsSink(v) {
			c.needSave[v] = true
			continue
		}
		for _, w := range g.Children(v) {
			if c.b.Proc[w] != c.b.Proc[v] {
				c.needSave[v] = true
				break
			}
		}
	}
	for _, v := range extraSave {
		if !g.IsSource(v) {
			c.needSave[v] = true
		}
	}
}

// remUses returns the number of future consumptions of v on p.
func (ps *procState) remUses(v int) int { return len(ps.uses[v]) - ps.usePtr[v] }

// nextUse returns the next consumption position of v on p, or
// memmgr.NoUse.
func (ps *procState) nextUse(v int) int {
	if ps.usePtr[v] < len(ps.uses[v]) {
		return ps.uses[v][ps.usePtr[v]]
	}
	return memmgr.NoUse
}

// run drives superstep rounds until every processor exhausts its
// sequence.
func (c *converter) run() error {
	g := c.b.Graph
	for {
		doneAll := true
		for _, ps := range c.procs {
			if ps.head < len(ps.seq) {
				doneAll = false
			}
		}
		if doneAll {
			break
		}

		step := c.out.AddSuperstep()
		progress := false

		// Phase 1: compute on every processor (maximal segments).
		computedNow := make([][]int, c.arch.P)
		for p, ps := range c.procs {
			sp := &step.Procs[p]
			for ps.head < len(ps.seq) {
				v := ps.seq[ps.head]
				okParents := true
				for _, u := range g.Parents(v) {
					if !ps.res[u] {
						okParents = false
						break
					}
				}
				if !okParents {
					break
				}
				if !c.makeRoomComp(p, sp, g.Mem(v), g.Parents(v)) {
					break
				}
				sp.Comp = append(sp.Comp, mbsp.Op{Kind: mbsp.OpCompute, Node: v})
				ps.res[v] = true
				ps.memUse += g.Mem(v)
				ps.clock++
				ps.last[v] = ps.clock
				computedNow[p] = append(computedNow[p], v)
				// Consume parents; auto-evict values that just died.
				for _, u := range g.Parents(v) {
					ps.usePtr[u]++
					ps.clock++
					ps.last[u] = ps.clock
				}
				for _, u := range g.Parents(v) {
					if ps.res[u] && ps.remUses(u) == 0 && (c.blue[u] || !c.needSave[u]) {
						sp.Comp = append(sp.Comp, mbsp.Op{Kind: mbsp.OpDelete, Node: u})
						delete(ps.res, u)
						ps.memUse -= g.Mem(u)
					}
				}
				ps.head++
				progress = true
			}
		}

		// Phase 2: production saves — every value computed this superstep
		// that is needed by another processor or terminally.
		for p := range c.procs {
			sp := &step.Procs[p]
			for _, v := range computedNow[p] {
				if c.needSave[v] && !c.blue[v] {
					sp.Save = append(sp.Save, v)
				}
			}
		}
		for p := range c.procs {
			for _, v := range step.Procs[p].Save {
				c.blue[v] = true
			}
		}

		// Phase 3+4: per-processor eviction and load planning for the
		// next segment.
		for p, ps := range c.procs {
			sp := &step.Procs[p]
			// Dead freshly-computed values can go now that they are
			// saved.
			for _, v := range computedNow[p] {
				if ps.res[v] && ps.remUses(v) == 0 && c.blue[v] {
					sp.Del = append(sp.Del, v)
					delete(ps.res, v)
					ps.memUse -= g.Mem(v)
				}
			}
			if ps.head >= len(ps.seq) {
				continue
			}
			loaded := c.planLoads(p, sp)
			if loaded {
				progress = true
			}
		}

		if !progress {
			return fmt.Errorf("twostage: no progress in superstep %d (stage-1 schedule inconsistent?)", len(c.out.Steps)-1)
		}
	}
	c.trimEmptySupersteps()
	return nil
}

// makeRoomComp frees space during a compute phase: only values that are
// already in slow memory or dead-and-unneeded may be deleted here (a save
// is not possible mid-compute-phase). pinned values are never evicted.
func (c *converter) makeRoomComp(p int, sp *mbsp.ProcStep, need float64, pinned []int) bool {
	ps := c.procs[p]
	g := c.b.Graph
	isPinned := func(v int) bool {
		for _, u := range pinned {
			if u == v {
				return true
			}
		}
		return false
	}
	for ps.memUse+need > c.arch.R+1e-9 {
		var cands []memmgr.Info
		for v := range ps.res {
			if isPinned(v) {
				continue
			}
			if c.blue[v] || (ps.remUses(v) == 0 && !c.needSave[v]) {
				cands = append(cands, memmgr.Info{
					Node: v, Mem: g.Mem(v), NextUse: ps.nextUse(v), LastUse: ps.last[v], Saved: c.blue[v],
				})
			}
		}
		if len(cands) == 0 {
			return false
		}
		victim := cands[c.policy.Pick(cands)]
		sp.Comp = append(sp.Comp, mbsp.Op{Kind: mbsp.OpDelete, Node: victim.Node})
		delete(ps.res, victim.Node)
		ps.memUse -= g.Mem(victim.Node)
	}
	return true
}

// makeRoomComm frees space during the communication phase: any non-pinned
// resident value may be evicted; live values not yet in slow memory are
// saved first (save-before-evict).
func (c *converter) makeRoomComm(p int, sp *mbsp.ProcStep, need float64, pinned map[int]bool) bool {
	ps := c.procs[p]
	g := c.b.Graph
	for ps.memUse+need > c.arch.R+1e-9 {
		var cands []memmgr.Info
		for v := range ps.res {
			if pinned[v] {
				continue
			}
			cands = append(cands, memmgr.Info{
				Node: v, Mem: g.Mem(v), NextUse: ps.nextUse(v), LastUse: ps.last[v], Saved: c.blue[v],
			})
		}
		if len(cands) == 0 {
			return false
		}
		victim := cands[c.policy.Pick(cands)]
		if !c.blue[victim.Node] && (ps.remUses(victim.Node) > 0 || c.needSave[victim.Node]) {
			sp.Save = append(sp.Save, victim.Node)
			c.blue[victim.Node] = true
		}
		sp.Del = append(sp.Del, victim.Node)
		delete(ps.res, victim.Node)
		ps.memUse -= g.Mem(victim.Node)
	}
	return true
}

// planLoads plans the load phase so the next compute segment can start:
// it guarantees the parents of the next node (plus room for its output),
// then opportunistically prefetches parents of subsequent nodes while
// everything fits without evicting pinned values. Only values already in
// slow memory can be loaded; if the next node's parents are not all
// available yet (another processor has not produced them), nothing is
// guaranteed and the processor idles this superstep.
func (c *converter) planLoads(p int, sp *mbsp.ProcStep) bool {
	ps := c.procs[p]
	g := c.b.Graph
	v0 := ps.seq[ps.head]
	// Availability check for the mandatory loads.
	var missing []int
	for _, u := range g.Parents(v0) {
		if !ps.res[u] {
			if !c.blue[u] {
				return false // produced later by another processor; idle
			}
			missing = append(missing, u)
		}
	}
	pinned := map[int]bool{}
	for _, u := range g.Parents(v0) {
		pinned[u] = true
	}
	var needMem float64
	for _, u := range missing {
		needMem += g.Mem(u)
	}
	// Reserve room for v0's output too, so the next compute phase cannot
	// stall on space.
	if !c.makeRoomComm(p, sp, needMem+g.Mem(v0), pinned) {
		return false
	}
	loadedAny := false
	planned := map[int]bool{}
	for _, u := range missing {
		sp.Load = append(sp.Load, u)
		ps.res[u] = true
		ps.memUse += g.Mem(u)
		ps.clock++
		ps.last[u] = ps.clock
		planned[u] = true
		loadedAny = true
	}
	// Opportunistic prefetch for subsequent nodes: stop at the first node
	// whose extra parents do not fit (without any further eviction) or
	// are not yet available.
	budget := c.arch.R - ps.memUse - g.Mem(v0)
	for i := ps.head + 1; i < len(ps.seq); i++ {
		w := ps.seq[i]
		var extra []int
		var extraMem float64
		ok := true
		for _, u := range g.Parents(w) {
			if ps.res[u] || planned[u] {
				continue
			}
			if !c.blue[u] {
				ok = false
				break
			}
			extra = append(extra, u)
			extraMem += g.Mem(u)
		}
		if !ok || extraMem+g.Mem(w) > budget+1e-9 {
			break
		}
		for _, u := range extra {
			sp.Load = append(sp.Load, u)
			ps.res[u] = true
			ps.memUse += g.Mem(u)
			ps.clock++
			ps.last[u] = ps.clock
			planned[u] = true
			loadedAny = true
		}
		budget -= extraMem + g.Mem(w)
	}
	return loadedAny
}

// trimEmptySupersteps removes supersteps in which no processor does
// anything (possible when a processor idles waiting for data).
func (c *converter) trimEmptySupersteps() {
	var kept []mbsp.Superstep
	for i := range c.out.Steps {
		empty := true
		for p := range c.out.Steps[i].Procs {
			if !c.out.Steps[i].Procs[p].Empty() {
				empty = false
				break
			}
		}
		if !empty {
			kept = append(kept, c.out.Steps[i])
		}
	}
	c.out.Steps = kept
}
