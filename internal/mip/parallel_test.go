package mip

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"mbsp/internal/lp"
)

// solveSnapshot captures the full observable outcome of a solve —
// status, exact solution bits, bound and every counter — so two runs can
// be compared byte-for-byte.
func solveSnapshot(res Result) string {
	s := fmt.Sprintf("status=%v obj=%x bound=%x nodes=%d lps=%d iters=%d warm=%d cold=%d pert=%d clean=%d x=",
		res.Status, math.Float64bits(res.Obj), math.Float64bits(res.Bound),
		res.Nodes, res.LPs, res.SimplexIters, res.WarmLPs, res.ColdLPs,
		res.PerturbedLPs, res.CleanupIters)
	for _, v := range res.X {
		s += fmt.Sprintf("%x,", math.Float64bits(v))
	}
	return s
}

// randomMixedModel builds the larger mixed binary/continuous family with
// equality rows (the shape that stresses the dual simplex).
func randomMixedModel(rng *rand.Rand) *Model {
	n := 10 + rng.Intn(15)
	m := NewModel()
	for j := 0; j < n; j++ {
		if rng.Float64() < 0.7 {
			m.AddBinary("b", float64(rng.Intn(21)-10))
		} else {
			m.AddVar("c", 0, float64(1+rng.Intn(5)), float64(rng.Intn(11)-5))
		}
	}
	rows := 3 + rng.Intn(8)
	for i := 0; i < rows; i++ {
		var coefs []lp.Coef
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.4 {
				v := float64(rng.Intn(9) - 4)
				if v != 0 {
					coefs = append(coefs, lp.Coef{Var: j, Val: v})
				}
			}
		}
		if len(coefs) == 0 {
			continue
		}
		rhs := float64(rng.Intn(13) - 3)
		switch rng.Intn(4) {
		case 0:
			m.AddRow(coefs, lp.EQ, rhs)
		case 1:
			m.AddRow(coefs, lp.GE, rhs)
		default:
			m.AddRow(coefs, lp.LE, rhs)
		}
	}
	return m
}

// TestParallelDeterminismMatrix is the mip half of the parallel
// determinism matrix (the registry-partitioning half lives in
// internal/partition): on random MILPs — small binaries and the larger
// mixed family, run both to completion and under a truncating node limit
// — Workers ∈ {1, 2, 8} × GOMAXPROCS ∈ {1, 4} must produce identical
// incumbents, costs and node accounting, bit for bit. Run with -race
// (scripts/verify.sh does).
func TestParallelDeterminismMatrix(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	type fixture struct {
		name      string
		m         *Model
		nodeLimit int
		noPerturb bool
	}
	var fixtures []fixture
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fixtures = append(fixtures, fixture{
			name: fmt.Sprintf("binary-%d", seed), m: randomBinaryModel(rng),
		})
	}
	for seed := int64(100); seed < 108; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fixtures = append(fixtures,
			fixture{name: fmt.Sprintf("mixed-%d", seed), m: randomMixedModel(rng)},
			// The same model under a budget that truncates mid-tree: the
			// creation-sequence accounting, not luck, must decide which
			// nodes are in.
			fixture{name: fmt.Sprintf("mixed-%d-limit", seed), m: randomMixedModel(rng), nodeLimit: 25},
		)
	}
	// The matrix above runs with EXPAND perturbation on (the default), so
	// it already proves the perturbed path is worker-count independent; a
	// NoPerturb leg proves the unperturbed path stayed deterministic too.
	for seed := int64(100); seed < 104; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fixtures = append(fixtures, fixture{
			name: fmt.Sprintf("mixed-%d-noperturb", seed), m: randomMixedModel(rng), noPerturb: true,
		})
	}

	for _, fx := range fixtures {
		var want string
		for _, procs := range []int{1, 4} {
			runtime.GOMAXPROCS(procs)
			for _, workers := range []int{1, 2, 4, 8} {
				res := fx.m.Solve(Options{
					TimeLimit: time.Minute,
					NodeLimit: fx.nodeLimit,
					Workers:   workers,
					NoPerturb: fx.noPerturb,
				})
				got := solveSnapshot(res)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("%s: diverged at GOMAXPROCS=%d Workers=%d\nfirst: %s\nthis:  %s",
						fx.name, procs, workers, want, got)
				}
			}
		}
	}
}

// TestParallelSharedSealedIncumbent: a sealed shared incumbent is part of
// the deterministic contract — pruning against a frozen external bound
// must not reintroduce worker-count dependence.
func TestParallelSharedSealedIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := randomMixedModel(rng)
	base := m.Solve(Options{TimeLimit: time.Minute})
	if base.Status != Optimal {
		t.Skipf("fixture not solved to optimality: %v", base.Status)
	}
	inc := NewIncumbent()
	inc.Offer(base.Obj + 3)
	inc.Seal()
	var want string
	for _, workers := range []int{1, 2, 8} {
		res := m.Solve(Options{
			TimeLimit: time.Minute, NodeLimit: 40,
			Workers: workers, SharedIncumbent: inc,
		})
		got := solveSnapshot(res)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("Workers=%d diverged under sealed shared incumbent\nfirst: %s\nthis:  %s", workers, want, got)
		}
	}
}

// TestParallelMatchesBruteForce: correctness of the parallel path itself —
// Workers=8 must still match exhaustive enumeration on random binary
// programs.
func TestParallelMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := randomBinaryModel(rng)
		want, feasible := bruteForceBinary(m, m.NumVars())
		res := m.Solve(Options{TimeLimit: 5 * time.Second, Workers: 8})
		if !feasible {
			if res.Status != Infeasible {
				t.Fatalf("seed %d: want infeasible, got %v", seed, res.Status)
			}
			continue
		}
		if res.Status != Optimal || math.Abs(res.Obj-want) > 1e-6 {
			t.Fatalf("seed %d: status=%v obj=%g want %g", seed, res.Status, res.Obj, want)
		}
	}
}

// TestWorkersOptionBounds: degenerate Workers values must not break the
// search (0 and negatives mean serial; huge values are capped).
func TestWorkersOptionBounds(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 1 << 20} {
		m := NewModel()
		a := m.AddBinary("a", -4)
		b := m.AddBinary("b", -5)
		c := m.AddBinary("c", -3)
		m.AddLE(4, lp.Coef{Var: a, Val: 2}, lp.Coef{Var: b, Val: 3}, lp.Coef{Var: c, Val: 1})
		res := m.Solve(Options{Workers: workers})
		if res.Status != Optimal || math.Abs(res.Obj+8) > 1e-6 {
			t.Fatalf("Workers=%d: %+v", workers, res)
		}
	}
}
