package mip

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mbsp/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 4a+5b+3c st 2a+3b+c ≤ 4 over binaries → a=1,c=1 (or a=0,b=1,c=1):
	// values 7 vs 8; check: a+c uses 3 ≤ 4 → 7; b+c uses 4 → 8. Optimum 8.
	m := NewModel()
	a := m.AddBinary("a", -4)
	b := m.AddBinary("b", -5)
	c := m.AddBinary("c", -3)
	m.AddLE(4, lp.Coef{Var: a, Val: 2}, lp.Coef{Var: b, Val: 3}, lp.Coef{Var: c, Val: 1})
	res := m.Solve(Options{})
	if res.Status != Optimal {
		t.Fatalf("status=%v", res.Status)
	}
	if math.Abs(res.Obj+8) > 1e-6 {
		t.Fatalf("obj=%g want −8 (x=%v)", res.Obj, res.X)
	}
}

func TestIntegerRounding(t *testing.T) {
	// min x st 2x ≥ 5, x integer → x=3.
	m := NewModel()
	x := m.AddInt("x", 0, 10, 1)
	m.AddGE(5, lp.Coef{Var: x, Val: 2})
	res := m.Solve(Options{})
	if res.Status != Optimal || math.Abs(res.Obj-3) > 1e-6 {
		t.Fatalf("res=%+v", res)
	}
}

func TestInfeasibleMIP(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x", 1)
	y := m.AddBinary("y", 1)
	m.AddGE(3, lp.Coef{Var: x, Val: 1}, lp.Coef{Var: y, Val: 1})
	if res := m.Solve(Options{}); res.Status != Infeasible {
		t.Fatalf("status=%v", res.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min 3x + y st x + y ≥ 2.5, x binary, y ≥ 0 continuous.
	// x=1,y=1.5 → 4.5; x=0,y=2.5 → 2.5. Optimum 2.5.
	m := NewModel()
	x := m.AddBinary("x", 3)
	y := m.AddVar("y", 0, lp.Inf, 1)
	m.AddGE(2.5, lp.Coef{Var: x, Val: 1}, lp.Coef{Var: y, Val: 1})
	res := m.Solve(Options{})
	if res.Status != Optimal || math.Abs(res.Obj-2.5) > 1e-6 {
		t.Fatalf("res obj=%g status=%v", res.Obj, res.Status)
	}
}

func TestWarmStartAccepted(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x", -1)
	y := m.AddBinary("y", -1)
	m.AddLE(1, lp.Coef{Var: x, Val: 1}, lp.Coef{Var: y, Val: 1})
	// Warm start with the suboptimal all-zeros solution.
	res := m.Solve(Options{WarmStart: []float64{0, 0}})
	if res.Status != Optimal || math.Abs(res.Obj+1) > 1e-6 {
		t.Fatalf("res=%+v", res)
	}
}

func TestWarmStartRespectedUnderZeroBudget(t *testing.T) {
	// With an immediate timeout the solver must still return the warm
	// start.
	m := NewModel()
	x := m.AddBinary("x", -1)
	_ = x
	res := m.Solve(Options{WarmStart: []float64{0}, TimeLimit: time.Nanosecond})
	if res.Status != Feasible || res.Obj != 0 {
		t.Fatalf("res=%+v", res)
	}
}

func TestWarmStartRejectedIfInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x", 1)
	m.AddGE(1, lp.Coef{Var: x, Val: 1})
	var msgs []string
	res := m.Solve(Options{
		WarmStart: []float64{0}, // violates the row
		Logf:      func(f string, a ...interface{}) { msgs = append(msgs, f) },
	})
	if res.Status != Optimal || math.Abs(res.Obj-1) > 1e-6 {
		t.Fatalf("res=%+v", res)
	}
	found := false
	for _, s := range msgs {
		if s == "warm start rejected: %v" {
			found = true
		}
	}
	if !found {
		t.Fatal("expected rejection log")
	}
}

func TestCheckFeasible(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x", 1)
	m.AddLE(0, lp.Coef{Var: x, Val: 1})
	if err := m.CheckFeasible([]float64{0}, 1e-9); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckFeasible([]float64{1}, 1e-9); err == nil {
		t.Fatal("expected row violation")
	}
	if err := m.CheckFeasible([]float64{0.5}, 1e-9); err == nil {
		t.Fatal("expected integrality violation")
	}
	if err := m.CheckFeasible([]float64{0, 0}, 1e-9); err == nil {
		t.Fatal("expected length mismatch")
	}
}

func TestAssignmentProblem(t *testing.T) {
	// 3×3 assignment with known optimum.
	cost := [3][3]float64{{4, 1, 3}, {2, 0, 5}, {3, 2, 2}}
	m := NewModel()
	var v [3][3]int
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			v[i][j] = m.AddBinary("x", cost[i][j])
		}
	}
	for i := 0; i < 3; i++ {
		var rowC, colC []lp.Coef
		for j := 0; j < 3; j++ {
			rowC = append(rowC, lp.Coef{Var: v[i][j], Val: 1})
			colC = append(colC, lp.Coef{Var: v[j][i], Val: 1})
		}
		m.AddRow(rowC, lp.EQ, 1)
		m.AddRow(colC, lp.EQ, 1)
	}
	res := m.Solve(Options{})
	// Optimum: (0,1)=1? costs: choose 1 + 2 + 2 = 5 via (0,1),(1,0),(2,2).
	if res.Status != Optimal || math.Abs(res.Obj-5) > 1e-6 {
		t.Fatalf("obj=%g status=%v", res.Obj, res.Status)
	}
}

// Brute force reference for random small binary MIPs.
func bruteForceBinary(m *Model, n int) (float64, bool) {
	best := math.Inf(1)
	found := false
	x := make([]float64, n)
	for mask := 0; mask < 1<<n; mask++ {
		for j := 0; j < n; j++ {
			x[j] = float64((mask >> j) & 1)
		}
		if m.CheckFeasible(x, 1e-9) == nil {
			if obj := m.ObjValue(x); obj < best {
				best = obj
				found = true
			}
		}
	}
	return best, found
}

// Property: B&B matches brute force on random binary programs.
func TestRandomBinaryProgramsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		m := NewModel()
		for j := 0; j < n; j++ {
			m.AddBinary("b", float64(rng.Intn(21)-10))
		}
		rows := 1 + rng.Intn(5)
		for i := 0; i < rows; i++ {
			var coefs []lp.Coef
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.5 {
					v := float64(rng.Intn(9) - 4)
					if v != 0 {
						coefs = append(coefs, lp.Coef{Var: j, Val: v})
					}
				}
			}
			if len(coefs) == 0 {
				continue
			}
			rhs := float64(rng.Intn(9) - 2)
			if rng.Float64() < 0.5 {
				m.AddRow(coefs, lp.LE, rhs)
			} else {
				m.AddRow(coefs, lp.GE, rhs)
			}
		}
		want, feasible := bruteForceBinary(m, n)
		res := m.Solve(Options{TimeLimit: 5 * time.Second})
		if !feasible {
			return res.Status == Infeasible
		}
		return res.Status == Optimal && math.Abs(res.Obj-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundReported(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x", -1)
	y := m.AddBinary("y", -1)
	m.AddLE(1, lp.Coef{Var: x, Val: 1}, lp.Coef{Var: y, Val: 1})
	res := m.Solve(Options{})
	if res.Status != Optimal {
		t.Fatalf("status=%v", res.Status)
	}
	if res.Bound > res.Obj+1e-9 {
		t.Fatalf("bound %g above obj %g", res.Bound, res.Obj)
	}
}

func TestStatusStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Feasible.String() != "feasible" ||
		Infeasible.String() != "infeasible" || NoSolution.String() != "no-solution" {
		t.Fatal("status strings")
	}
}

func TestNodeLimitReturnsFeasible(t *testing.T) {
	// A model where the warm start survives a 1-node search.
	m := NewModel()
	var coefs []lp.Coef
	ws := make([]float64, 12)
	for j := 0; j < 12; j++ {
		m.AddBinary("b", -1)
		coefs = append(coefs, lp.Coef{Var: j, Val: 1})
	}
	m.AddRow(coefs, lp.LE, 6)
	res := m.Solve(Options{WarmStart: ws, NodeLimit: 1})
	if res.Status != Feasible && res.Status != Optimal {
		t.Fatalf("status=%v", res.Status)
	}
	if res.Obj > 0 {
		t.Fatalf("obj=%g", res.Obj)
	}
}

func TestGeneralIntegerBranching(t *testing.T) {
	// max 3x+2y st x+y ≤ 7, 2x+y ≤ 10, integers → x=3,y=4: 17.
	m := NewModel()
	x := m.AddInt("x", 0, 10, -3)
	y := m.AddInt("y", 0, 10, -2)
	m.AddLE(7, lp.Coef{Var: x, Val: 1}, lp.Coef{Var: y, Val: 1})
	m.AddLE(10, lp.Coef{Var: x, Val: 2}, lp.Coef{Var: y, Val: 1})
	res := m.Solve(Options{})
	if res.Status != Optimal || math.Abs(res.Obj+17) > 1e-6 {
		t.Fatalf("res=%+v", res)
	}
}

func TestFixVar(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x", -1)
	m.FixVar(x, 0)
	res := m.Solve(Options{})
	if res.Status != Optimal || res.Obj != 0 {
		t.Fatalf("res=%+v", res)
	}
}
