package mip

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mbsp/internal/lp"
)

// randomBinaryModel builds a random binary program (the same family the
// brute-force property test uses).
func randomBinaryModel(rng *rand.Rand) *Model {
	n := 2 + rng.Intn(8)
	m := NewModel()
	for j := 0; j < n; j++ {
		m.AddBinary("b", float64(rng.Intn(21)-10))
	}
	rows := 1 + rng.Intn(5)
	for i := 0; i < rows; i++ {
		var coefs []lp.Coef
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				v := float64(rng.Intn(9) - 4)
				if v != 0 {
					coefs = append(coefs, lp.Coef{Var: j, Val: v})
				}
			}
		}
		if len(coefs) == 0 {
			continue
		}
		rhs := float64(rng.Intn(9) - 2)
		if rng.Float64() < 0.5 {
			m.AddRow(coefs, lp.LE, rhs)
		} else {
			m.AddRow(coefs, lp.GE, rhs)
		}
	}
	return m
}

// TestWarmMatchesColdAndReference: the warm-started tree search, the
// cold-start ablation, and the dense reference path must agree on status
// and optimal objective for random binary programs.
func TestWarmMatchesColdAndReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomBinaryModel(rng)
		warm := m.Solve(Options{TimeLimit: 5 * time.Second})
		cold := m.Solve(Options{TimeLimit: 5 * time.Second, ColdStart: true})
		ref := m.Solve(Options{TimeLimit: 5 * time.Second, ReferenceLP: true})
		if warm.Status != cold.Status || warm.Status != ref.Status {
			t.Logf("seed %d: warm=%v cold=%v ref=%v", seed, warm.Status, cold.Status, ref.Status)
			return false
		}
		if warm.Status != Optimal {
			return true
		}
		if math.Abs(warm.Obj-cold.Obj) > 1e-9 || math.Abs(warm.Obj-ref.Obj) > 1e-9 {
			t.Logf("seed %d: warm obj=%g cold obj=%g ref obj=%g", seed, warm.Obj, cold.Obj, ref.Obj)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestWarmMatchesColdLarger widens the cross-check to larger mixed
// binary/continuous models with equality rows — the shape that stresses
// the dual simplex (phase-1 bases, degenerate pivots, bound flips).
func TestWarmMatchesColdLarger(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(15)
		m := NewModel()
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.7 {
				m.AddBinary("b", float64(rng.Intn(21)-10))
			} else {
				m.AddVar("c", 0, float64(1+rng.Intn(5)), float64(rng.Intn(11)-5))
			}
		}
		rows := 3 + rng.Intn(8)
		for i := 0; i < rows; i++ {
			var coefs []lp.Coef
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.4 {
					v := float64(rng.Intn(9) - 4)
					if v != 0 {
						coefs = append(coefs, lp.Coef{Var: j, Val: v})
					}
				}
			}
			if len(coefs) == 0 {
				continue
			}
			rhs := float64(rng.Intn(13) - 3)
			switch rng.Intn(4) {
			case 0:
				m.AddRow(coefs, lp.EQ, rhs)
			case 1:
				m.AddRow(coefs, lp.GE, rhs)
			default:
				m.AddRow(coefs, lp.LE, rhs)
			}
		}
		warm := m.Solve(Options{TimeLimit: 20 * time.Second})
		cold := m.Solve(Options{TimeLimit: 20 * time.Second, ColdStart: true})
		if warm.Status != cold.Status {
			t.Fatalf("seed %d: warm=%v cold=%v", seed, warm.Status, cold.Status)
		}
		if warm.Status == Optimal && math.Abs(warm.Obj-cold.Obj) > 1e-6 {
			t.Fatalf("seed %d: warm obj=%g cold obj=%g", seed, warm.Obj, cold.Obj)
		}
	}
}

// TestWarmSolvesDominate: on a tree deep enough to branch, most node
// relaxations must take the dual re-solve path, and the warm tree must
// need fewer total simplex iterations than the cold ablation.
func TestWarmSolvesDominate(t *testing.T) {
	// A knapsack-like model with a genuinely fractional relaxation.
	m := NewModel()
	var coefs []lp.Coef
	weights := []float64{3, 5, 7, 11, 13, 17, 19, 23}
	for j, w := range weights {
		m.AddBinary("b", -w-float64(j%3))
		coefs = append(coefs, lp.Coef{Var: j, Val: w})
	}
	m.AddRow(coefs, lp.LE, 37)
	warm := m.Solve(Options{})
	cold := m.Solve(Options{ColdStart: true})
	if warm.Status != Optimal || cold.Status != Optimal {
		t.Fatalf("warm=%v cold=%v", warm.Status, cold.Status)
	}
	if math.Abs(warm.Obj-cold.Obj) > 1e-9 {
		t.Fatalf("objectives differ: warm=%g cold=%g", warm.Obj, cold.Obj)
	}
	if warm.WarmLPs == 0 {
		t.Fatal("no node took the dual re-solve path")
	}
	if warm.WarmLPs < warm.ColdLPs {
		t.Fatalf("warm path minority: %d warm vs %d cold", warm.WarmLPs, warm.ColdLPs)
	}
	if warm.SimplexIters >= cold.SimplexIters {
		t.Fatalf("warm start saved nothing: %d iters warm vs %d cold", warm.SimplexIters, cold.SimplexIters)
	}
	t.Logf("simplex iters: warm=%d cold=%d (%.1fx), nodes=%d, warm/cold LPs=%d/%d",
		warm.SimplexIters, cold.SimplexIters,
		float64(cold.SimplexIters)/float64(warm.SimplexIters), warm.Nodes, warm.WarmLPs, warm.ColdLPs)
}

func TestIncumbentMonotoneAndSealed(t *testing.T) {
	inc := NewIncumbent()
	if !math.IsInf(inc.Get(), 1) {
		t.Fatalf("fresh incumbent = %g", inc.Get())
	}
	if !inc.Offer(10) || inc.Get() != 10 {
		t.Fatalf("offer 10: %g", inc.Get())
	}
	if inc.Offer(12) {
		t.Fatal("worse offer accepted")
	}
	if !inc.Offer(7) || inc.Get() != 7 {
		t.Fatalf("offer 7: %g", inc.Get())
	}
	inc.Seal()
	if inc.Offer(1) || inc.Get() != 7 {
		t.Fatalf("sealed incumbent moved: %g", inc.Get())
	}
	if !inc.Sealed() {
		t.Fatal("Sealed() false after Seal")
	}
	// Nil receivers are inert.
	var nilInc *Incumbent
	if !math.IsInf(nilInc.Get(), 1) || nilInc.Offer(1) {
		t.Fatal("nil incumbent misbehaves")
	}
	nilInc.Seal()
}

func TestIncumbentConcurrentOffers(t *testing.T) {
	inc := NewIncumbent()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 100; i >= 0; i-- {
				inc.Offer(float64(i + g))
			}
		}(g)
	}
	wg.Wait()
	if inc.Get() != 0 {
		t.Fatalf("want 0 after concurrent offers, got %g", inc.Get())
	}
}

// TestSharedIncumbentPrunes: a shared bound at the optimum makes the tree
// collapse immediately — and the outcome is NoSolution, not Infeasible.
func TestSharedIncumbentPrunes(t *testing.T) {
	build := func() *Model {
		m := NewModel()
		var coefs []lp.Coef
		weights := []float64{3, 5, 7, 11, 13, 17, 19, 23}
		for j, w := range weights {
			m.AddBinary("b", -w-float64(j%3))
			coefs = append(coefs, lp.Coef{Var: j, Val: w})
		}
		m.AddRow(coefs, lp.LE, 37)
		return m
	}
	free := build().Solve(Options{})
	if free.Status != Optimal {
		t.Fatalf("baseline: %+v", free)
	}
	// A concurrent solver published a bound this model cannot beat: the
	// losing candidate must cut off early with NoSolution, not explore
	// the tree and not claim infeasibility.
	inc := NewIncumbent()
	inc.Offer(free.Obj - 2)
	pruned := build().Solve(Options{SharedIncumbent: inc})
	if pruned.Status != NoSolution {
		t.Fatalf("status=%v want no-solution", pruned.Status)
	}
	if pruned.Nodes >= free.Nodes {
		t.Fatalf("shared bound saved nothing: %d vs %d nodes", pruned.Nodes, free.Nodes)
	}
}

// TestSharedIncumbentKeepsStrictImprovements: a shared bound worse than
// the optimum must not cost us the optimum.
func TestSharedIncumbentKeepsStrictImprovements(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a", -4)
	b := m.AddBinary("b", -5)
	c := m.AddBinary("c", -3)
	m.AddLE(4, lp.Coef{Var: a, Val: 2}, lp.Coef{Var: b, Val: 3}, lp.Coef{Var: c, Val: 1})
	inc := NewIncumbent()
	inc.Offer(-7.5)
	res := m.Solve(Options{SharedIncumbent: inc})
	if res.X == nil || math.Abs(res.Obj+8) > 1e-6 {
		t.Fatalf("lost the optimum under a weaker shared bound: %+v", res)
	}
}

// TestOnIncumbentCallback: every strictly improving incumbent is
// reported, in improving order, ending at the optimum.
func TestOnIncumbentCallback(t *testing.T) {
	m := NewModel()
	var coefs []lp.Coef
	for j := 0; j < 10; j++ {
		m.AddBinary("b", -1-float64(j)/10)
		coefs = append(coefs, lp.Coef{Var: j, Val: 1})
	}
	m.AddRow(coefs, lp.LE, 5)
	var objs []float64
	res := m.Solve(Options{OnIncumbent: func(x []float64, obj float64) {
		if len(x) != m.NumVars() {
			t.Fatalf("callback x has %d entries", len(x))
		}
		objs = append(objs, obj)
	}})
	if res.Status != Optimal {
		t.Fatalf("status=%v", res.Status)
	}
	if len(objs) == 0 {
		t.Fatal("no incumbent callbacks")
	}
	for i := 1; i < len(objs); i++ {
		if objs[i] >= objs[i-1] {
			t.Fatalf("callbacks not strictly improving: %v", objs)
		}
	}
	if math.Abs(objs[len(objs)-1]-res.Obj) > 1e-9 {
		t.Fatalf("last callback %g != final obj %g", objs[len(objs)-1], res.Obj)
	}
}
