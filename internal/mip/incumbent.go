package mip

import (
	"math"
	"sync/atomic"
)

// Incumbent is a monotone, concurrency-safe upper bound on a shared
// minimization objective. Concurrent solvers working on the same
// objective (the scheduler portfolio) publish every feasible solution
// cost with Offer and read the best known bound with Get; branch-and-bound
// then prunes any subtree whose LP relaxation cannot beat the bound, so a
// losing solver cuts off as soon as some other solver has already done
// better.
//
// The bound only ever decreases, so pruning against it removes only
// provably non-improving subtrees. Seal freezes the current value:
// subsequent Offers are ignored. The portfolio seals the incumbent in
// node-limited deterministic mode, where live (timing-dependent) updates
// would perturb the deterministic node accounting — see DESIGN.md.
type Incumbent struct {
	bits   atomic.Uint64 // math.Float64bits of the current bound
	sealed atomic.Bool
}

// NewIncumbent returns an incumbent initialized to +Inf (no bound known).
func NewIncumbent() *Incumbent {
	inc := &Incumbent{}
	inc.bits.Store(math.Float64bits(math.Inf(1)))
	return inc
}

// Get returns the current bound; +Inf when no solution has been offered.
// A nil incumbent reads as +Inf, so callers can pass it through
// unconditionally.
func (inc *Incumbent) Get() float64 {
	if inc == nil {
		return math.Inf(1)
	}
	return math.Float64frombits(inc.bits.Load())
}

// Offer lowers the bound to v if v improves it; reports whether it did.
// Offers against a nil or sealed incumbent are ignored.
func (inc *Incumbent) Offer(v float64) bool {
	if inc == nil || inc.sealed.Load() || math.IsNaN(v) {
		return false
	}
	for {
		cur := inc.bits.Load()
		if v >= math.Float64frombits(cur) {
			return false
		}
		if inc.bits.CompareAndSwap(cur, math.Float64bits(v)) {
			return true
		}
	}
}

// Seal freezes the bound at its current value; later Offers are no-ops.
func (inc *Incumbent) Seal() {
	if inc != nil {
		inc.sealed.Store(true)
	}
}

// Sealed reports whether Seal has been called.
func (inc *Incumbent) Sealed() bool {
	return inc != nil && inc.sealed.Load()
}
