package mip

import (
	"container/heap"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mbsp/internal/lp"
)

// This file implements the branch-and-bound search as a deterministic
// parallel engine: a shared best-bound work queue feeds synchronous waves
// of node relaxations to a bounded worker pool, and a serial commit step
// applies the results in a fixed order. The reported solution and every
// counter in Result are byte-identical for any Options.Workers value —
// see DESIGN.md ("Deterministic parallel branch and bound") for the full
// argument. The short version:
//
//   - every node receives a sequence number at creation, in a fixed child
//     order (the dive-preferred child first), so the identity of the k-th
//     node ever created is independent of execution interleaving;
//   - the global node budget is charged against that creation sequence: a
//     child whose sequence reaches Options.NodeLimit is never enqueued,
//     so the admitted tree is the same for any worker count;
//   - each wave deterministically pops the best (bound, sequence) open
//     nodes, solves their LP relaxations concurrently — each relaxation
//     is a pure function of (matrix, parent basis, bounds, seq): every
//     worker owns a private lp.Instance, and the sparse LU core makes a
//     warm solve from a basis snapshot bit-identical whether it reuses
//     the worker's live factorization or replays the snapshot's recipe
//     (see lp/sparse.go), so which worker last touched which basis is
//     invisible — and then commits the results serially in pop order:
//     pruning tests, incumbent updates and child creation all happen at
//     deterministic points;
//   - incumbent ties break by node sequence, so even equal-cost optima
//     resolve identically.
//
// Wall-clock limits (TimeLimit, Cancel, LP deadlines) remain the one
// nondeterministic cut: runs that need byte-identical results must let a
// node limit bind instead, exactly as before.

// waveSize is the number of nodes popped per wave. It is a fixed
// constant, NOT derived from Options.Workers: the logical search schedule
// (which nodes are solved in which wave) must be identical for every
// worker count, with Workers only deciding how many of a wave's
// relaxations solve concurrently. Larger waves expose more parallelism
// but commit later against a staler incumbent, re-solving nodes a
// one-node wave would already have pruned.
const waveSize = 8

// MaxWorkers is the largest effective Options.Workers value: the engine
// never solves more concurrent relaxations than one wave holds. Callers
// splitting a machine between several solver trees (e.g. the portfolio's
// auto budget) should clamp to it — workers beyond the wave width sit
// idle.
const MaxWorkers = waveSize

// bbNode is one open node of the tree. Bounds are delta-encoded: a node
// stores only its own branching decision plus a parent pointer, and a
// worker materializes the full bound vectors by walking the ancestor
// chain (every branch tightens, so ancestry application order is
// irrelevant). This keeps the best-bound queue small — a node is ~100
// bytes plus a basis snapshot shared with its sibling — where full bound
// copies would cost 2·n floats per open node.
type bbNode struct {
	parent *bbNode
	// basis is the parent relaxation's optimal basis; the node's LP
	// differs from the parent's by one bound and dual-reoptimizes from
	// it. Nil for the root (and for children of nodes whose basis could
	// not be captured), which cold-start.
	basis *lp.Basis
	// bound is the parent relaxation's objective: a lower bound on every
	// solution in this subtree, and the best-bound queue's sort key.
	bound     float64
	branchVal float64
	seq       int64 // creation sequence number; root = 0
	branchVar int32
	toUpper   bool // true: ub[branchVar] ← branchVal (down child)
}

// openHeap is the shared best-bound work queue: a min-heap on
// (bound, seq). Sequence numbers are unique, so the pop order is a total
// order — no heap tie can introduce nondeterminism.
type openHeap []*bbNode

func (h openHeap) Len() int { return len(h) }
func (h openHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].seq < h[j].seq
}
func (h openHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *openHeap) Push(x interface{}) { *h = append(*h, x.(*bbNode)) }
func (h *openHeap) Pop() interface{} {
	old := *h
	n := len(old)
	nd := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return nd
}

// bbSlot pairs a popped node with its relaxation result for the commit
// step.
type bbSlot struct {
	nd  *bbNode
	res lp.Result
	// panicked records that the relaxation solve panicked; panicVal is the
	// recovered value for the log. The commit step treats such a node like
	// an LP iteration-limit failure: no bound, no children, result demoted.
	panicked bool
	panicVal interface{}
}

// bbEngine holds the search state shared between the wave loop and the
// serial commit step.
type bbEngine struct {
	m    *Model
	opts *Options
	res  *Result

	open    openHeap
	nextSeq int64
	batch   []bbSlot

	// workers is the effective worker count; insts/lb/ub are the
	// per-worker LP instances and bound-materialization buffers.
	workers int
	insts   []*lp.Instance
	lb, ub  [][]float64

	deadline  time.Time
	logf      func(string, ...interface{})
	rootBound float64
	rootDone  bool
	bestSeq   int64 // sequence of the incumbent's node (−1: warm start)
	truncated bool  // some child fell past the node budget
	sharedCut bool  // some subtree was pruned only by the shared bound
	aborted   bool  // wall clock or cancellation cut the search
}

func newEngine(m *Model, opts *Options, res *Result, deadline time.Time, logf func(string, ...interface{})) *bbEngine {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > waveSize {
		workers = waveSize
	}
	// The former dense core shrank the pool on large models to cap the
	// two-dense-m×m-matrix workspaces; LU workspace is O(nnz of the
	// factors), so the full requested pool is affordable at any model size
	// and the cap is gone.
	e := &bbEngine{
		m: m, opts: opts, res: res,
		workers:  workers,
		insts:    make([]*lp.Instance, workers),
		lb:       make([][]float64, workers),
		ub:       make([][]float64, workers),
		deadline: deadline, logf: logf,
		rootBound: math.Inf(-1),
		bestSeq:   -1,
	}
	// Worker 0 (the calling goroutine) always solves; the other slots are
	// created lazily on first dispatch — warm-started trees frequently
	// commit only a handful of nodes, and early waves are narrower than
	// the pool, so eagerly paying workers×Prepare would waste O(nnz) per
	// idle slot on every small sub-ILP. Worker identity is scheduling
	// noise, so lazy creation cannot affect results.
	e.prepareWorker(0)
	return e
}

// prepareWorker materializes worker w's private LP instance and bound
// buffers. Each worker touches only its own slot, so concurrent calls
// from different wave goroutines are race-free.
func (e *bbEngine) prepareWorker(w int) {
	if e.insts[w] != nil {
		return
	}
	n := e.m.NumVars()
	e.insts[w] = lp.Prepare(e.m.prob)
	e.lb[w] = make([]float64, n)
	e.ub[w] = make([]float64, n)
}

// run executes the wave loop until the queue drains or a wall-clock
// limit aborts the search.
func (e *bbEngine) run() {
	root := &bbNode{bound: math.Inf(-1)}
	if e.opts.NodeLimit < 1 {
		e.truncated = true
		return
	}
	e.open = openHeap{root}
	e.nextSeq = 1
	for len(e.open) > 0 {
		if cancelled(e.opts.Cancel) || time.Now().After(e.deadline) {
			e.aborted = true
			return
		}
		// Injected spurious cancellation, keyed on (instance fingerprint,
		// next creation sequence): wave boundaries and sequence numbers are
		// deterministic under node limits, so the same chaos run cancels at
		// the same boundary for any worker count.
		if e.opts.Inject.CancelAt(e.insts[0].Fingerprint(), uint64(e.nextSeq)) {
			e.res.InjectedFaults++
			e.aborted = true
			return
		}
		n := min(len(e.open), waveSize)
		e.batch = e.batch[:0]
		for i := 0; i < n; i++ {
			e.batch = append(e.batch, bbSlot{nd: heap.Pop(&e.open).(*bbNode)})
		}
		e.solveWave()
		for i := range e.batch {
			e.commit(&e.batch[i])
		}
	}
}

// solveWave solves the batch relaxations, spreading them over the worker
// pool when it pays. Which worker solves which node is scheduling noise:
// every relaxation result is a pure function of the node, so the commit
// step sees identical inputs regardless.
func (e *bbEngine) solveWave() {
	n := len(e.batch)
	k := min(e.workers, n)
	if k <= 1 {
		for i := range e.batch {
			e.solveNode(0, &e.batch[i])
		}
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	wg.Add(k - 1)
	for w := 1; w < k; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				e.solveNode(w, &e.batch[i])
			}
		}(w)
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			break
		}
		e.solveNode(0, &e.batch[i])
	}
	wg.Wait()
}

// solveNode materializes the node's bounds from its ancestor chain and
// solves the relaxation on worker w's private instance.
func (e *bbEngine) solveNode(w int, s *bbSlot) {
	// Panic containment: solveNode runs on wave worker goroutines, where
	// an escaping panic kills the whole process. Recover here and let the
	// serial commit step demote the node to a failed relaxation.
	defer func() {
		if r := recover(); r != nil {
			s.panicked = true
			s.panicVal = r
			s.res = lp.Result{Status: lp.IterLimit}
		}
	}()
	e.prepareWorker(w)
	lb, ub := e.lb[w], e.ub[w]
	copy(lb, e.m.prob.Lb)
	copy(ub, e.m.prob.Ub)
	for nd := s.nd; nd.parent != nil; nd = nd.parent {
		j := int(nd.branchVar)
		if nd.toUpper {
			if nd.branchVal < ub[j] {
				ub[j] = nd.branchVal
			}
		} else {
			if nd.branchVal > lb[j] {
				lb[j] = nd.branchVal
			}
		}
	}
	lpOpts := lp.Options{
		MaxIters: e.opts.LPMaxIters, Deadline: e.deadline,
		Cancel: e.opts.Cancel,
		// EXPAND perturbation keyed to the node's creation sequence: the
		// shifts are a pure function of (matrix, seq), so the relaxation
		// result stays a pure function of the node and the determinism
		// argument above is untouched, while sibling relaxations do not
		// share one unlucky shift pattern.
		Perturb: !e.opts.NoPerturb, PerturbSeq: uint64(s.nd.seq),
	}
	if e.opts.Inject != nil {
		lpOpts.Inject = e.opts.Inject
		// Injected latency: a deterministic subset of nodes sleeps before
		// solving. Timing-only — the relaxation result is unchanged — so
		// node-limited determinism is preserved; only wall-clock limits
		// observe the difference.
		if d := e.opts.Inject.InjectedLatency(e.insts[w].Fingerprint(), uint64(s.nd.seq)); d > 0 {
			time.Sleep(d)
		}
	}
	switch {
	case e.opts.ReferenceLP:
		relax := &lp.Problem{Obj: e.m.prob.Obj, Lb: lb, Ub: ub, Rows: e.m.prob.Rows}
		s.res = lp.SolveDense(relax, lpOpts)
	case s.nd.basis == nil || e.opts.ColdStart:
		s.res = e.insts[w].Solve(lb, ub, lpOpts)
	default:
		s.res = e.insts[w].SolveFrom(s.nd.basis, lb, ub, lpOpts)
		if s.res.Status == lp.IterLimit && !s.res.ColdRestart &&
			!cancelled(e.opts.Cancel) && !time.Now().After(e.deadline) {
			// The warm re-solve failed numerically (stalled primal after
			// the dual handoff — SolveFrom's internal fallbacks cover the
			// other cases) without being aborted by a wall-clock limit:
			// retry cold once before the commit step marks the node failed.
			prev := s.res.Iters
			s.res = e.insts[w].Solve(lb, ub, lpOpts)
			s.res.ColdRestart = true
			s.res.Iters += prev
		}
	}
}

// commit applies one solved node: counters, the pruning test against the
// incumbents, and either an incumbent update or two children. Commits run
// serially in wave pop order, so every decision lands at the same point
// of the search for any worker count.
func (e *bbEngine) commit(s *bbSlot) {
	res, lpRes := e.res, &s.res
	res.Nodes++
	res.LPs++
	res.SimplexIters += lpRes.Iters
	res.CleanupIters += lpRes.CleanupIters
	if lpRes.Perturbed {
		res.PerturbedLPs++
	}
	if lpRes.Injected {
		res.InjectedFaults++
	}
	if s.panicked {
		// The relaxation solve panicked (recovered in solveNode): treat the
		// node as a failed relaxation — no bound, no children — and demote
		// the result exactly as for an LP iteration-limit node.
		e.logf("node %d: panic recovered: %v", res.Nodes, s.panicVal)
		res.Panics++
		res.ColdLPs++
		s.nd.basis = nil
		e.truncated = true
		return
	}
	switch {
	case e.opts.ReferenceLP, s.nd.basis == nil, e.opts.ColdStart, lpRes.ColdRestart:
		res.ColdLPs++
	default:
		res.WarmLPs++
	}
	// The node's basis (its parent's snapshot) was consumed by solveNode
	// and by the warm/cold classification above; open descendants keep the
	// whole ancestor chain alive through the parent pointers used for
	// bound materialization, so dropping the reference here keeps live
	// snapshots frontier-bounded — a sibling still holding the same
	// snapshot keeps it reachable.
	s.nd.basis = nil
	if !e.rootDone {
		e.rootDone = true
		if lpRes.Status == lp.Optimal {
			e.rootBound = lpRes.Obj
		}
	}
	switch lpRes.Status {
	case lp.Infeasible:
		return
	case lp.Unbounded:
		// Integer restriction of an unbounded relaxation: give up on
		// bounding; treat as no-prune and branch on nothing — the model
		// author should bound the objective. The subtree stays unexplored,
		// so the search must not claim optimality or infeasibility.
		e.logf("node %d: unbounded relaxation", res.Nodes)
		e.truncated = true
		return
	case lp.IterLimit:
		// The relaxation exhausted its pivot budget (Options.LPMaxIters,
		// or an abort surfacing as IterLimit): the node has no valid bound
		// and gets no children, leaving its subtree unexplored — like a
		// budget-dropped child, this demotes Optimal to Feasible and
		// Infeasible to NoSolution. Deterministic whenever the contract
		// applies: under node-limited runs the LP result is a pure
		// function of the node, so every worker count commits the same
		// statuses in the same order.
		e.logf("node %d: LP iteration limit", res.Nodes)
		e.truncated = true
		return
	}
	cutoff := res.Obj
	if v := e.opts.SharedIncumbent.Get(); v < cutoff {
		cutoff = v
	}
	if lpRes.Obj >= cutoff-e.opts.AbsGap {
		if lpRes.Obj < res.Obj-e.opts.AbsGap {
			e.sharedCut = true // own incumbent alone would not have pruned
		}
		return // pruned: provably not improving on the best known bound
	}
	// Find most fractional integer variable.
	branch := -1
	worst := e.opts.Eps
	for j := range e.m.integer {
		if !e.m.integer[j] {
			continue
		}
		f := math.Abs(lpRes.X[j] - math.Round(lpRes.X[j]))
		if f > worst {
			worst = f
			branch = j
		}
	}
	if branch < 0 {
		// Integral: candidate incumbent. Ties break by node sequence so
		// equal-cost optima resolve identically for any worker count.
		x := append([]float64(nil), lpRes.X...)
		for j := range e.m.integer {
			if e.m.integer[j] {
				x[j] = math.Round(x[j])
			}
		}
		obj := e.m.ObjValue(x)
		improved := obj < res.Obj-1e-12
		tie := !improved && res.X != nil &&
			math.Abs(obj-res.Obj) <= 1e-12 && s.nd.seq < e.bestSeq
		if !improved && !tie {
			return
		}
		res.Obj = obj
		res.X = x
		res.Status = Feasible
		e.bestSeq = s.nd.seq
		if improved {
			e.logf("incumbent: obj=%g after %d nodes (node seq %d)", obj, res.Nodes, s.nd.seq)
			if e.opts.OnIncumbent != nil {
				e.opts.OnIncumbent(x, obj)
			}
		}
		return
	}
	v := lpRes.X[branch]
	floor, ceil := math.Floor(v), math.Ceil(v)
	down := &bbNode{
		parent: s.nd, basis: lpRes.Basis, bound: lpRes.Obj,
		branchVar: int32(branch), branchVal: floor, toUpper: true,
	}
	up := &bbNode{
		parent: s.nd, basis: lpRes.Basis, bound: lpRes.Obj,
		branchVar: int32(branch), branchVal: ceil, toUpper: false,
	}
	// Fixed child order: the dive-preferred child (nearer integer) takes
	// the smaller sequence number and therefore pops first among equal
	// bounds.
	first, second := up, down
	if v-floor < ceil-v {
		first, second = down, up
	}
	e.push(first)
	e.push(second)
}

// push assigns the next creation sequence number and enqueues the node —
// unless the sequence falls past the node budget, in which case the child
// is charged and dropped. The budget binds on creation order, which is
// independent of worker scheduling, so the admitted tree is deterministic.
func (e *bbEngine) push(nd *bbNode) {
	nd.seq = e.nextSeq
	e.nextSeq++
	if nd.seq >= int64(e.opts.NodeLimit) {
		e.truncated = true
		return
	}
	heap.Push(&e.open, nd)
}
