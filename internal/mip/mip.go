// Package mip implements a mixed-integer linear programming solver: a
// model builder over package lp plus LP-relaxation branch-and-bound with
// best-bound node selection, most-fractional branching, warm-start
// incumbents and time limits. It stands in for the commercial MILP
// solver used by the paper (see DESIGN.md).
//
// The search re-solves LPs warm: the constraint matrix is prepared once
// (lp.Prepare), every node carries its parent's optimal basis, and child
// relaxations — which differ from the parent by a single variable bound
// — are dual-reoptimized with lp.SolveFrom in a handful of iterations
// instead of a cold phase-1 start. An optional shared Incumbent lets
// concurrent solves of the same objective prune each other's trees.
//
// The tree search itself is parallel: Options.Workers goroutines solve
// node relaxations pulled from a shared best-bound work queue, with
// deterministic node accounting (creation-sequence budgets, serial wave
// commits, sequence tie-breaking) making the reported solution and every
// Result counter byte-identical for any worker count — see search.go and
// DESIGN.md.
package mip

import (
	"fmt"
	"math"
	"time"

	"mbsp/internal/faultinject"
	"mbsp/internal/lp"
)

// Model is a MILP: an LP plus integrality markers.
type Model struct {
	prob    *lp.Problem
	integer []bool
	names   []string
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{prob: lp.NewProblem(0)}
}

// AddVar adds a continuous variable with bounds [lo, hi] and objective
// coefficient obj; returns its index.
func (m *Model) AddVar(name string, lo, hi, obj float64) int {
	m.prob.Obj = append(m.prob.Obj, obj)
	m.prob.Lb = append(m.prob.Lb, lo)
	m.prob.Ub = append(m.prob.Ub, hi)
	m.integer = append(m.integer, false)
	m.names = append(m.names, name)
	return len(m.integer) - 1
}

// AddBinary adds a {0,1} variable.
func (m *Model) AddBinary(name string, obj float64) int {
	j := m.AddVar(name, 0, 1, obj)
	m.integer[j] = true
	return j
}

// AddInt adds a general integer variable.
func (m *Model) AddInt(name string, lo, hi, obj float64) int {
	j := m.AddVar(name, lo, hi, obj)
	m.integer[j] = true
	return j
}

// SetObj overwrites the objective coefficient of variable j.
func (m *Model) SetObj(j int, obj float64) { m.prob.Obj[j] = obj }

// AddRow appends the constraint Σ coefs ◦ rhs and returns its index.
func (m *Model) AddRow(coefs []lp.Coef, sense lp.Sense, rhs float64) int {
	return m.prob.AddRow(coefs, sense, rhs)
}

// AddLE is shorthand for AddRow(coefs, LE, rhs).
func (m *Model) AddLE(rhs float64, coefs ...lp.Coef) int { return m.AddRow(coefs, lp.LE, rhs) }

// AddGE is shorthand for AddRow(coefs, GE, rhs).
func (m *Model) AddGE(rhs float64, coefs ...lp.Coef) int { return m.AddRow(coefs, lp.GE, rhs) }

// AddEQ is shorthand for AddRow(coefs, EQ, rhs).
func (m *Model) AddEQ(rhs float64, coefs ...lp.Coef) int { return m.AddRow(coefs, lp.EQ, rhs) }

// FixVar clamps variable j to a single value.
func (m *Model) FixVar(j int, v float64) {
	m.prob.Lb[j] = v
	m.prob.Ub[j] = v
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.integer) }

// NumRows returns the number of constraints.
func (m *Model) NumRows() int { return len(m.prob.Rows) }

// Name returns the name of variable j.
func (m *Model) Name(j int) string { return m.names[j] }

// ObjValue evaluates the model objective at x.
func (m *Model) ObjValue(x []float64) float64 {
	obj := 0.0
	for j, c := range m.prob.Obj {
		obj += c * x[j]
	}
	return obj
}

// CheckFeasible verifies that x satisfies all rows, bounds and
// integrality within tol; returns a descriptive error otherwise.
func (m *Model) CheckFeasible(x []float64, tol float64) error {
	if len(x) != m.NumVars() {
		return fmt.Errorf("mip: solution has %d values, model has %d variables", len(x), m.NumVars())
	}
	for j := range x {
		if x[j] < m.prob.Lb[j]-tol || x[j] > m.prob.Ub[j]+tol {
			return fmt.Errorf("mip: variable %s=%g outside [%g,%g]", m.names[j], x[j], m.prob.Lb[j], m.prob.Ub[j])
		}
		if m.integer[j] && math.Abs(x[j]-math.Round(x[j])) > tol {
			return fmt.Errorf("mip: variable %s=%g not integral", m.names[j], x[j])
		}
	}
	for i, row := range m.prob.Rows {
		lhs := 0.0
		for _, c := range row.Coefs {
			lhs += c.Val * x[c.Var]
		}
		switch row.Sense {
		case lp.LE:
			if lhs > row.RHS+tol {
				return fmt.Errorf("mip: row %d violated: %g > %g", i, lhs, row.RHS)
			}
		case lp.GE:
			if lhs < row.RHS-tol {
				return fmt.Errorf("mip: row %d violated: %g < %g", i, lhs, row.RHS)
			}
		case lp.EQ:
			if math.Abs(lhs-row.RHS) > tol {
				return fmt.Errorf("mip: row %d violated: %g != %g", i, lhs, row.RHS)
			}
		}
	}
	return nil
}

// Status of a MIP solve.
type Status int8

// Solve outcomes.
const (
	// Optimal: search completed, incumbent proven optimal.
	Optimal Status = iota
	// Feasible: a solution was found but the search hit a limit.
	Feasible
	// Infeasible: no feasible solution exists.
	Infeasible
	// NoSolution: limits hit before any solution was found.
	NoSolution
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case NoSolution:
		return "no-solution"
	}
	return fmt.Sprintf("Status(%d)", int8(s))
}

// Result of a MIP solve. Every counter is deterministic: for a fixed
// model and options, runs with any Options.Workers value report the same
// Nodes, LPs, iteration split and solution bytes (wall-clock limits
// aside — see Options).
type Result struct {
	Status Status
	Obj    float64
	X      []float64
	Bound  float64 // global dual (lower) bound on the optimum
	// Nodes counts tree nodes whose relaxation was solved and committed;
	// the node *budget* (Options.NodeLimit) is charged against creation
	// sequence numbers instead, so the two can differ once the limit
	// truncates the tree.
	Nodes int
	LPs   int
	// SimplexIters is the total simplex iteration count across every LP
	// solved in the tree — the headline metric of the warm-start
	// optimization (BENCH_solver.json tracks it).
	SimplexIters int
	// WarmLPs counts node relaxations dual-reoptimized from the parent
	// basis; ColdLPs counts cold solves (the root, nodes without a
	// usable parent basis, and warm solves that fell back).
	WarmLPs, ColdLPs int
	// PerturbedLPs counts node relaxations solved under EXPAND bound
	// perturbation (all of them unless Options.NoPerturb); CleanupIters is
	// the share of SimplexIters spent removing the shifts and Harris
	// tolerance residuals at the end of those solves.
	PerturbedLPs int
	CleanupIters int
	// InjectedFaults counts faults that Options.Inject actually fired
	// during this solve: LP solves forced onto fallback paths plus
	// injected spurious cancellations. Deterministic under node-limited
	// runs, like every other counter.
	InjectedFaults int
	// Panics counts panics the search recovered from (per-node relaxation
	// solves and the engine loop). A panicking node is treated as a failed
	// relaxation: its subtree stays unexplored and the result is demoted
	// exactly as for an LP iteration-limit node.
	Panics int
}

// DefaultMaxModelRows is the shared default row ceiling above which the
// scheduling front ends (internal/ilpsched, internal/bsp) skip the tree
// search and keep the warm-start schedule. The trail: 2600 while warm
// dual re-solves routinely stalled (fixed by the Harris/BFRT ratio tests
// and EXPAND perturbation), then 3000 while the basis inverse was a
// dense m×m matrix and O(rows²) per simplex iteration made ≳3400-row
// roots unfinishable in interactive budgets. The sparse LU core removed
// that wall: per-iteration cost is O(nnz of the factors), and the
// scheduling bases factor with low fill (see BENCH_solver.json's "lu"
// leg). Measured on the registry workloads: the 4856-row spmv_N7 P=4
// holistic model — formerly skipped — now builds, factors with ~1.15×
// fill, and explores a node-limited tree in seconds per node (ilpsched
// TestLargeModelEntersTreeSearch pins this), and the 9964-row pregel
// P=4 model factors the same way. The binding cost has moved from the
// LP core to the node budget callers are willing to spend — a root
// solve on a ~5000-row model is seconds, not unfinishable — so the
// default ceiling is 10000; beyond that, root relaxations genuinely
// outgrow interactive budgets even sparse.
const DefaultMaxModelRows = 10000

// Options controls the branch-and-bound search.
type Options struct {
	TimeLimit  time.Duration // default 10s
	NodeLimit  int           // default 200000
	Eps        float64       // integrality tolerance, default 1e-6
	WarmStart  []float64     // optional feasible solution used as incumbent
	Logf       func(format string, args ...interface{})
	AbsGap     float64         // stop when incumbent − bound ≤ AbsGap (default 1e-6)
	LPMaxIters int             // per-node LP iteration limit (0: lp default)
	Cancel     <-chan struct{} // stop the search when closed, keeping the incumbent

	// Workers bounds the goroutines concurrently solving node relaxations
	// (default 1: the search runs entirely on the calling goroutine). The
	// engine's deterministic node accounting makes the result — solution
	// bytes, status, bound, and every counter — identical for any value,
	// so callers can size the pool purely for throughput; see DESIGN.md.
	// The effective pool is capped by the wave width. As before,
	// wall-clock limits
	// (TimeLimit, Cancel) cut nondeterministically: runs that must be
	// reproducible should let NodeLimit bind instead.
	Workers int

	// SharedIncumbent, when non-nil, supplies an externally updated upper
	// bound on the same objective: pruning tests against
	// min(own incumbent, SharedIncumbent.Get()), so a bound published by
	// a concurrent solver cuts this tree too. The solver never writes to
	// it — publishing is the caller's decision (see OnIncumbent).
	// Live updates arrive at timing-dependent points, so node-limited
	// runs that need byte-identical results must pass a sealed incumbent.
	SharedIncumbent *Incumbent
	// OnIncumbent, when non-nil, is called synchronously on the solve
	// goroutine with every strictly improving incumbent the tree search
	// finds (after integrality rounding). Callers use it to validate and
	// publish bounds to a SharedIncumbent mid-search.
	OnIncumbent func(x []float64, obj float64)
	// ColdStart disables dual re-solves from the parent basis, cold
	// starting every node as the pre-warm-start solver did (ablation and
	// cross-check baseline).
	ColdStart bool
	// ReferenceLP routes every node relaxation through the preserved
	// dense reference solver (lp.SolveDense); implies cold starts. Used
	// by the cross-check tests to pin the sparse/warm path against the
	// original solver stack.
	ReferenceLP bool
	// NoPerturb disables the deterministic EXPAND bound perturbation of
	// node relaxations (ablation and cross-check baseline). Perturbation
	// is on by default: it is what keeps the dual re-solves from stalling
	// on massively degenerate scheduling models, and it never changes
	// reported solutions — shifts are removed before an LP result is
	// returned.
	NoPerturb bool
	// Inject, when non-nil, enables the deterministic fault-injection
	// harness: forced cold fallbacks and simulated singular
	// refactorizations inside warm node re-solves (threaded to
	// lp.Options.Inject), injected per-node latency before relaxation
	// solves, and spurious cancellations at wave boundaries. Every
	// decision is a pure function of (instance fingerprint, node creation
	// sequence), so node-limited chaos runs stay byte-identical for any
	// Workers value; only the latency mode interacts with wall-clock
	// limits.
	Inject *faultinject.Injector

	// LUStats, when non-nil, accumulates the LP factorization counters
	// (refactorizations, eta pivots, hot reuses, FTRAN/BTRAN counts and
	// times) summed over every worker instance the search used. It is
	// observability plumbing, deliberately NOT part of Result: hot-reuse
	// and refactorization counts depend on which worker solved which node
	// — scheduling noise — while every Result field is byte-identical
	// across worker counts.
	LUStats *lp.FactorStats
}

// Solve runs branch and bound, minimizing the model objective. The
// search is the deterministic parallel engine of search.go: identical
// results for any Options.Workers value.
func (m *Model) Solve(opts Options) Result {
	if opts.TimeLimit == 0 {
		opts.TimeLimit = 10 * time.Second
	}
	if opts.NodeLimit == 0 {
		opts.NodeLimit = 200000
	}
	if opts.Eps == 0 {
		opts.Eps = 1e-6
	}
	if opts.AbsGap == 0 {
		opts.AbsGap = 1e-6
	}
	deadline := time.Now().Add(opts.TimeLimit)
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	res := Result{Status: NoSolution, Obj: math.Inf(1), Bound: math.Inf(-1)}
	if opts.WarmStart != nil {
		if err := m.CheckFeasible(opts.WarmStart, 1e-6); err == nil {
			res.X = append([]float64(nil), opts.WarmStart...)
			res.Obj = m.ObjValue(res.X)
			res.Status = Feasible
			logf("warm start accepted: obj=%g", res.Obj)
		} else {
			logf("warm start rejected: %v", err)
		}
	}

	e := newEngine(m, &opts, &res, deadline, logf)
	if opts.LUStats != nil {
		// Deferred so every return path (abort, infeasible, optimal)
		// reports; lazily-created worker slots may be nil.
		defer func() {
			for _, inst := range e.insts {
				if inst != nil {
					opts.LUStats.Add(inst.Stats())
				}
			}
		}()
	}
	func() {
		// Panic containment: a panic escaping the serial wave loop (heap,
		// commit, bound materialization) is converted into an aborted
		// search that keeps the validated best-so-far incumbent instead of
		// unwinding through the caller. Panics inside concurrent node
		// solves are recovered per node in solveNode, which runs on worker
		// goroutines where an escape would be fatal to the process.
		defer func() {
			if r := recover(); r != nil {
				logf("branch-and-bound engine panic recovered: %v", r)
				res.Panics++
				e.aborted = true
			}
		}()
		e.run()
	}()

	if e.aborted {
		// Wall clock or cancellation cut the search: best-so-far
		// semantics, as before.
		if res.X != nil {
			res.Status = Feasible
		}
		res.Bound = e.rootBound
		return res
	}
	if res.X == nil {
		if e.sharedCut || e.truncated {
			// Either every remaining subtree was dominated by a bound some
			// other solver published — this search has no solution of its
			// own — or the node budget truncated the tree; in neither case
			// is the model proven infeasible.
			res.Status = NoSolution
			res.Bound = e.rootBound
			return res
		}
		res.Status = Infeasible
		res.Bound = math.Inf(1)
		return res
	}
	if e.sharedCut || e.truncated {
		// Completion proves "nothing beats the shared bound" (or the
		// budget bound the tree), not that the own incumbent is optimal.
		res.Status = Feasible
		res.Bound = e.rootBound
		return res
	}
	res.Status = Optimal
	res.Bound = res.Obj
	return res
}

// RowDef exposes row i for diagnostics.
func (m *Model) RowDef(i int) lp.RowDef { return m.prob.Rows[i] }

// cancelled reports whether the cancel channel is closed without blocking.
func cancelled(c <-chan struct{}) bool {
	if c == nil {
		return false
	}
	select {
	case <-c:
		return true
	default:
		return false
	}
}
