// Package memmgr implements the cache-management (memory-management)
// policies of the paper's two-stage baseline: the clairvoyant (Bélády)
// policy that evicts the resident value whose next use lies furthest in
// the future, and the least-recently-used (LRU) policy. Both operate on
// candidate descriptors supplied by the schedule converter, so the same
// policies serve any stage-1 scheduler.
package memmgr

import "math"

// NoUse marks a value with no further use on the processor.
const NoUse = math.MaxInt32

// Info describes one evictable resident value at eviction time.
type Info struct {
	Node    int
	Mem     float64 // μ(v)
	NextUse int     // position of next local use, NoUse if none
	LastUse int     // position of most recent activity (compute or use)
	Saved   bool    // value already has a blue pebble
}

// Policy selects an eviction victim among candidates. Pick returns an
// index into cands; cands is never empty.
type Policy interface {
	Name() string
	Pick(cands []Info) int
}

// Clairvoyant is Bélády's optimal offline policy generalized to weighted
// values: evict the value whose next use is furthest in the future
// (never-used-again values first); among equals, prefer the larger value
// (frees more space per eviction), then the smaller node id for
// determinism. For unit weights and a fixed compute sequence this is the
// optimal eviction rule; with general weights the problem is NP-hard
// (paper, Lemmas 5.1–5.2), so this remains the strong heuristic the paper
// uses.
type Clairvoyant struct{}

// Name implements Policy.
func (Clairvoyant) Name() string { return "clairvoyant" }

// Pick implements Policy.
func (Clairvoyant) Pick(cands []Info) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		a, b := cands[i], cands[best]
		switch {
		case a.NextUse != b.NextUse:
			if a.NextUse > b.NextUse {
				best = i
			}
		case a.Mem != b.Mem:
			if a.Mem > b.Mem {
				best = i
			}
		case a.Node < b.Node:
			best = i
		}
	}
	return best
}

// LRU evicts the value that was least recently active; ties broken by
// smaller node id.
type LRU struct{}

// Name implements Policy.
func (LRU) Name() string { return "lru" }

// Pick implements Policy.
func (LRU) Pick(cands []Info) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		a, b := cands[i], cands[best]
		if a.LastUse < b.LastUse || (a.LastUse == b.LastUse && a.Node < b.Node) {
			best = i
		}
	}
	return best
}
