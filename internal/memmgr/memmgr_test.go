package memmgr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClairvoyantPrefersFurthestUse(t *testing.T) {
	c := Clairvoyant{}
	cands := []Info{
		{Node: 0, Mem: 1, NextUse: 3},
		{Node: 1, Mem: 1, NextUse: 10},
		{Node: 2, Mem: 1, NextUse: 5},
	}
	if got := c.Pick(cands); got != 1 {
		t.Fatalf("picked %d, want 1", got)
	}
}

func TestClairvoyantPrefersDeadValues(t *testing.T) {
	c := Clairvoyant{}
	cands := []Info{
		{Node: 0, Mem: 5, NextUse: 100},
		{Node: 1, Mem: 1, NextUse: NoUse},
	}
	if got := c.Pick(cands); got != 1 {
		t.Fatalf("picked %d, want dead value", got)
	}
}

func TestClairvoyantTieBreaksByMem(t *testing.T) {
	c := Clairvoyant{}
	cands := []Info{
		{Node: 0, Mem: 2, NextUse: 7},
		{Node: 1, Mem: 4, NextUse: 7},
	}
	if got := c.Pick(cands); got != 1 {
		t.Fatalf("picked %d, want heavier value", got)
	}
}

func TestClairvoyantDeterministicTieBreak(t *testing.T) {
	c := Clairvoyant{}
	cands := []Info{
		{Node: 3, Mem: 2, NextUse: 7},
		{Node: 1, Mem: 2, NextUse: 7},
	}
	if got := c.Pick(cands); got != 1 {
		t.Fatalf("picked %d, want smaller id", got)
	}
}

func TestLRUPicksLeastRecent(t *testing.T) {
	l := LRU{}
	cands := []Info{
		{Node: 0, LastUse: 9},
		{Node: 1, LastUse: 2},
		{Node: 2, LastUse: 5},
	}
	if got := l.Pick(cands); got != 1 {
		t.Fatalf("picked %d, want 1", got)
	}
}

func TestLRUTieBreak(t *testing.T) {
	l := LRU{}
	cands := []Info{
		{Node: 7, LastUse: 2},
		{Node: 3, LastUse: 2},
	}
	if got := l.Pick(cands); got != 1 {
		t.Fatalf("picked %d, want node 3", got)
	}
}

// Property: both policies always return a valid index, and Clairvoyant's
// pick has maximal NextUse among candidates.
func TestPolicyProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		cands := make([]Info, n)
		for i := range cands {
			cands[i] = Info{
				Node:    rng.Intn(100),
				Mem:     float64(1 + rng.Intn(5)),
				NextUse: rng.Intn(50),
				LastUse: rng.Intn(50),
			}
		}
		ci := Clairvoyant{}.Pick(cands)
		li := LRU{}.Pick(cands)
		if ci < 0 || ci >= n || li < 0 || li >= n {
			return false
		}
		for _, c := range cands {
			if c.NextUse > cands[ci].NextUse {
				return false
			}
			if c.LastUse < cands[li].LastUse {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyNames(t *testing.T) {
	if (Clairvoyant{}).Name() != "clairvoyant" || (LRU{}).Name() != "lru" {
		t.Fatal("policy names")
	}
}
