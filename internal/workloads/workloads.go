// Package workloads generates the computational-DAG benchmark families
// used in the paper's experiments (originating from the dataset of Papp,
// Anegg, Karanasiou, Yzelman, SPAA 2024): fine-grained SpMV, conjugate
// gradient (CG), iterated SpMV ("exp"), k-nearest-neighbour (kNN), and
// coarse-grained representations of BiCGSTAB, k-means, Pregel, PageRank
// and sparse-NN inference.
//
// The original dataset is distributed as files; we regenerate the same
// computation structures from scratch. All generators are deterministic
// for fixed parameters. Compute weights ω reflect the operation type;
// memory weights μ default to 1 and the registry assigns uniform random
// weights in {1..5} exactly as the paper does.
package workloads

import (
	"fmt"
	"math/rand"

	"mbsp/internal/graph"
)

// sparsePattern returns a deterministic sparse matrix pattern on n rows:
// for each row a diagonal entry plus extra entries with average density
// controlled by extra (expected additional nonzeros per row), band-limited
// to keep the DAG local.
func sparsePattern(n, extra int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	pat := make([][]int, n)
	for i := 0; i < n; i++ {
		cols := map[int]bool{i: true}
		for e := 0; e < extra; e++ {
			off := rng.Intn(2*3+1) - 3 // band of ±3
			j := i + off
			if j >= 0 && j < n {
				cols[j] = true
			}
		}
		for j := range cols {
			pat[i] = append(pat[i], j)
		}
		sortInts(pat[i])
	}
	return pat
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// addReduction adds a binary reduction tree over the given inputs and
// returns the root node. A single input is returned unchanged. Each
// reduction node has compute weight addW and memory weight 1.
func addReduction(g *graph.DAG, label string, inputs []int, addW float64) int {
	if len(inputs) == 0 {
		panic("workloads: empty reduction")
	}
	level := append([]int(nil), inputs...)
	depth := 0
	for len(level) > 1 {
		var next []int
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			v := g.AddNodeLabeled(fmt.Sprintf("%s_add%d_%d", label, depth, i/2), addW, 1)
			g.AddEdge(level[i], v)
			g.AddEdge(level[i+1], v)
			next = append(next, v)
		}
		level = next
		depth++
	}
	return level[0]
}

// SpMV builds the fine-grained DAG of one sparse matrix–vector product
// y = A·x for an n-row matrix: one source per vector entry x_j, one
// multiply node per nonzero a_ij·x_j, and a binary add-reduction per row.
func SpMV(n int, seed int64) *graph.DAG {
	g := graph.New(fmt.Sprintf("spmv_N%d", n))
	pat := sparsePattern(n, 2, seed)
	x := make([]int, n)
	for j := 0; j < n; j++ {
		x[j] = g.AddNodeLabeled(fmt.Sprintf("x%d", j), 0, 1)
	}
	spmvRows(g, "y", pat, x)
	return g
}

// spmvRows adds multiply+reduce rows for pattern pat over input vector in
// and returns the output vector node ids.
func spmvRows(g *graph.DAG, label string, pat [][]int, in []int) []int {
	out := make([]int, len(pat))
	for i, cols := range pat {
		var mults []int
		for _, j := range cols {
			m := g.AddNodeLabeled(fmt.Sprintf("%s%d_mul%d", label, i, j), 1, 1)
			g.AddEdge(in[j], m)
			mults = append(mults, m)
		}
		out[i] = addReduction(g, fmt.Sprintf("%s%d", label, i), mults, 1)
	}
	return out
}

// IteratedSpMV builds the "exp" family: k chained SpMV applications
// x^{t+1} = A·x^t with the same pattern every iteration.
func IteratedSpMV(n, k int, seed int64) *graph.DAG {
	g := graph.New(fmt.Sprintf("exp_N%d_K%d", n, k))
	pat := sparsePattern(n, 1, seed)
	vec := make([]int, n)
	for j := 0; j < n; j++ {
		vec[j] = g.AddNodeLabeled(fmt.Sprintf("x0_%d", j), 0, 1)
	}
	for t := 1; t <= k; t++ {
		vec = spmvRows(g, fmt.Sprintf("x%d_", t), pat, vec)
	}
	return g
}

// CG builds a fine-grained conjugate-gradient DAG: k iterations on an
// n-dimensional system. Each iteration performs q = A·p, α =
// (r·r)/(p·q), x += α·p, r −= α·q, β = (r'·r')/(r·r), p = r + β·p, with
// element-wise nodes and dot-product reductions.
func CG(n, k int, seed int64) *graph.DAG {
	g := graph.New(fmt.Sprintf("CG_N%d_K%d", n, k))
	pat := sparsePattern(n, 1, seed)
	x := make([]int, n)
	r := make([]int, n)
	p := make([]int, n)
	for j := 0; j < n; j++ {
		x[j] = g.AddNodeLabeled(fmt.Sprintf("x0_%d", j), 0, 1)
		r[j] = g.AddNodeLabeled(fmt.Sprintf("r0_%d", j), 0, 1)
		p[j] = g.AddNodeLabeled(fmt.Sprintf("p0_%d", j), 0, 1)
	}
	rr := dot(g, "rr0", r, r)
	for t := 1; t <= k; t++ {
		q := spmvRows(g, fmt.Sprintf("q%d_", t), pat, p)
		pq := dot(g, fmt.Sprintf("pq%d", t), p, q)
		alpha := g.AddNodeLabeled(fmt.Sprintf("alpha%d", t), 1, 1)
		g.AddEdge(rr, alpha)
		g.AddEdge(pq, alpha)
		newX := make([]int, n)
		newR := make([]int, n)
		for j := 0; j < n; j++ {
			newX[j] = g.AddNodeLabeled(fmt.Sprintf("x%d_%d", t, j), 1, 1)
			g.AddEdge(x[j], newX[j])
			g.AddEdge(p[j], newX[j])
			g.AddEdge(alpha, newX[j])
			newR[j] = g.AddNodeLabeled(fmt.Sprintf("r%d_%d", t, j), 1, 1)
			g.AddEdge(r[j], newR[j])
			g.AddEdge(q[j], newR[j])
			g.AddEdge(alpha, newR[j])
		}
		newRR := dot(g, fmt.Sprintf("rr%d", t), newR, newR)
		beta := g.AddNodeLabeled(fmt.Sprintf("beta%d", t), 1, 1)
		g.AddEdge(newRR, beta)
		g.AddEdge(rr, beta)
		newP := make([]int, n)
		for j := 0; j < n; j++ {
			newP[j] = g.AddNodeLabeled(fmt.Sprintf("p%d_%d", t, j), 1, 1)
			g.AddEdge(newR[j], newP[j])
			g.AddEdge(p[j], newP[j])
			g.AddEdge(beta, newP[j])
		}
		x, r, p, rr = newX, newR, newP, newRR
	}
	return g
}

// dot adds element-wise multiply nodes and a reduction over them.
func dot(g *graph.DAG, label string, a, b []int) int {
	var mults []int
	for j := range a {
		m := g.AddNodeLabeled(fmt.Sprintf("%s_m%d", label, j), 1, 1)
		g.AddEdge(a[j], m)
		if b[j] != a[j] {
			g.AddEdge(b[j], m)
		}
		mults = append(mults, m)
	}
	return addReduction(g, label, mults, 1)
}

// KNN builds a k-nearest-neighbour style DAG: n data-point sources and a
// query source; per iteration, a distance node per point (depending on
// the point, the query and the previous iteration's selection) and a
// min-reduction tournament; k selection rounds.
func KNN(n, k int, seed int64) *graph.DAG {
	g := graph.New(fmt.Sprintf("kNN_N%d_K%d", n, k))
	query := g.AddNodeLabeled("query", 0, 1)
	pts := make([]int, n)
	for i := 0; i < n; i++ {
		pts[i] = g.AddNodeLabeled(fmt.Sprintf("pt%d", i), 0, 1)
	}
	prevSel := -1
	for t := 0; t < k; t++ {
		var dists []int
		for i := 0; i < n; i++ {
			d := g.AddNodeLabeled(fmt.Sprintf("d%d_%d", t, i), 2, 1)
			g.AddEdge(pts[i], d)
			g.AddEdge(query, d)
			if prevSel >= 0 {
				g.AddEdge(prevSel, d)
			}
			dists = append(dists, d)
		}
		prevSel = addReduction(g, fmt.Sprintf("sel%d", t), dists, 1)
	}
	return g
}

// coarse helper: one coarse-grained operation node.
func coarseOp(g *graph.DAG, label string, w float64, parents ...int) int {
	v := g.AddNodeLabeled(label, w, 1)
	for _, p := range parents {
		if p >= 0 {
			g.AddEdge(p, v)
		}
	}
	return v
}

// BiCGSTAB builds a coarse-grained DAG of k iterations of the BiCGSTAB
// Krylov solver: each node is a whole vector operation (SpMV ω=8, dot
// ω=3, axpy ω=2, scalar ω=1).
func BiCGSTAB(k int) *graph.DAG {
	g := graph.New("bicgstab")
	b := g.AddNodeLabeled("b", 0, 1)
	x := g.AddNodeLabeled("x0", 0, 1)
	r := coarseOp(g, "r0", 8, b, x) // r0 = b - A x0
	rhat := coarseOp(g, "rhat", 1, r)
	p := coarseOp(g, "p0", 1, r)
	for t := 1; t <= k; t++ {
		v := coarseOp(g, fmt.Sprintf("v%d", t), 8, p)            // v = A p
		rhoR := coarseOp(g, fmt.Sprintf("rho%d", t), 3, rhat, r) // rho = (rhat, r)
		alpha := coarseOp(g, fmt.Sprintf("alpha%d", t), 3, rhoR, rhat, v)
		h := coarseOp(g, fmt.Sprintf("h%d", t), 2, x, alpha, p)
		sv := coarseOp(g, fmt.Sprintf("s%d", t), 2, r, alpha, v)
		tv := coarseOp(g, fmt.Sprintf("t%d", t), 8, sv) // t = A s
		omega := coarseOp(g, fmt.Sprintf("omega%d", t), 3, tv, sv)
		x = coarseOp(g, fmt.Sprintf("x%d", t), 2, h, omega, sv)
		newR := coarseOp(g, fmt.Sprintf("r%d", t), 2, sv, omega, tv)
		beta := coarseOp(g, fmt.Sprintf("beta%d", t), 1, rhoR, newR, rhat, alpha, omega)
		p = coarseOp(g, fmt.Sprintf("p%d", t), 2, newR, beta, p, omega, v)
		r = newR
	}
	return g
}

// KMeans builds a coarse-grained k-means DAG: iters rounds of per-cluster
// distance/assignment blocks followed by centroid updates and a
// convergence check that feeds the next round.
func KMeans(clusters, iters int) *graph.DAG {
	g := graph.New("k-means")
	data := g.AddNodeLabeled("data", 0, 1)
	cents := make([]int, clusters)
	for c := 0; c < clusters; c++ {
		cents[c] = g.AddNodeLabeled(fmt.Sprintf("c0_%d", c), 0, 1)
	}
	for t := 1; t <= iters; t++ {
		var assigns []int
		for c := 0; c < clusters; c++ {
			d := coarseOp(g, fmt.Sprintf("dist%d_%d", t, c), 4, data, cents[c])
			assigns = append(assigns, d)
		}
		asg := coarseOp(g, fmt.Sprintf("assign%d", t), 3, assigns...)
		newCents := make([]int, clusters)
		for c := 0; c < clusters; c++ {
			newCents[c] = coarseOp(g, fmt.Sprintf("c%d_%d", t, c), 4, asg, data, cents[c])
		}
		cents = newCents
		coarseOp(g, fmt.Sprintf("conv%d", t), 1, cents...)
	}
	return g
}

// Pregel builds a coarse-grained Pregel (vertex-centric BSP graph
// processing) DAG: parts graph partitions, rounds supersteps; each round
// has per-partition compute nodes, pairwise message-exchange nodes, and a
// global aggregator.
func Pregel(parts, rounds int) *graph.DAG {
	g := graph.New("pregel")
	state := make([]int, parts)
	for p := 0; p < parts; p++ {
		state[p] = g.AddNodeLabeled(fmt.Sprintf("part0_%d", p), 0, 1)
	}
	for t := 1; t <= rounds; t++ {
		comp := make([]int, parts)
		for p := 0; p < parts; p++ {
			comp[p] = coarseOp(g, fmt.Sprintf("compute%d_%d", t, p), 5, state[p])
		}
		msgs := make([]int, parts)
		for p := 0; p < parts; p++ {
			// Messages to p from ring neighbours.
			l := (p + parts - 1) % parts
			r := (p + 1) % parts
			msgs[p] = coarseOp(g, fmt.Sprintf("msgs%d_%d", t, p), 2, comp[l], comp[r], comp[p])
		}
		agg := coarseOp(g, fmt.Sprintf("agg%d", t), 1, comp...)
		for p := 0; p < parts; p++ {
			state[p] = coarseOp(g, fmt.Sprintf("part%d_%d", t, p), 1, msgs[p], agg)
		}
	}
	return g
}

// PageRank builds the coarse-grained simple_pagerank DAG: iters rounds of
// per-partition rank contributions, a dangling-mass aggregate, and rank
// updates.
func PageRank(parts, iters int) *graph.DAG {
	g := graph.New("simple_pagerank")
	ranks := make([]int, parts)
	for p := 0; p < parts; p++ {
		ranks[p] = g.AddNodeLabeled(fmt.Sprintf("rank0_%d", p), 0, 1)
	}
	for t := 1; t <= iters; t++ {
		contrib := make([]int, parts)
		for p := 0; p < parts; p++ {
			contrib[p] = coarseOp(g, fmt.Sprintf("contrib%d_%d", t, p), 4, ranks[p])
		}
		mass := coarseOp(g, fmt.Sprintf("mass%d", t), 2, contrib...)
		for p := 0; p < parts; p++ {
			l := (p + parts - 1) % parts
			r := (p + 1) % parts
			ranks[p] = coarseOp(g, fmt.Sprintf("rank%d_%d", t, p), 3,
				contrib[l], contrib[p], contrib[r], mass)
		}
	}
	return g
}

// SNNI builds the snni_graphchallenge-style sparse neural network
// inference DAG: layers of sparse matvec + bias + ReLU blocks over a
// partitioned activation vector.
func SNNI(parts, layers int, seed int64) *graph.DAG {
	g := graph.New("snni_graphchall.")
	rng := rand.New(rand.NewSource(seed))
	act := make([]int, parts)
	for p := 0; p < parts; p++ {
		act[p] = g.AddNodeLabeled(fmt.Sprintf("act0_%d", p), 0, 1)
	}
	for t := 1; t <= layers; t++ {
		next := make([]int, parts)
		for p := 0; p < parts; p++ {
			// Sparse layer: each output partition reads 2-3 input partitions.
			ins := []int{act[p]}
			for e := 0; e < 1+rng.Intn(2); e++ {
				ins = append(ins, act[rng.Intn(parts)])
			}
			mv := coarseOp(g, fmt.Sprintf("mv%d_%d", t, p), 6, ins...)
			next[p] = coarseOp(g, fmt.Sprintf("relu%d_%d", t, p), 1, mv)
		}
		act = next
	}
	return g
}
