package workloads

import (
	"fmt"
	"math/rand"

	"mbsp/internal/graph"
)

// Instance is a named benchmark DAG.
type Instance struct {
	Name string
	DAG  *graph.DAG
}

// AssignRandomMemWeights assigns uniform random memory weights from
// {lo..hi} to every node, deterministically from seed — the paper adds
// μ ∈ {1..5} this way because the source dataset has compute weights
// only.
func AssignRandomMemWeights(g *graph.DAG, lo, hi int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for v := 0; v < g.N(); v++ {
		g.SetMem(v, float64(lo+rng.Intn(hi-lo+1)))
	}
}

func finish(name string, g *graph.DAG, seed int64) Instance {
	g.SetName(name)
	AssignRandomMemWeights(g, 1, 5, seed)
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("workloads: instance %s invalid: %v", name, err))
	}
	return Instance{Name: name, DAG: g}
}

// Tiny returns the default "tiny" dataset: the same 15 instance names and
// computation families as the paper's smallest dataset, at sizes our
// bundled branch-and-bound solver can explore within test/bench budgets
// (the paper used a commercial solver with 60-minute limits; see
// DESIGN.md for the substitution note).
func Tiny() []Instance {
	return []Instance{
		finish("bicgstab", BiCGSTAB(2), 101),
		finish("k-means", KMeans(3, 2), 102),
		finish("pregel", Pregel(3, 2), 103),
		finish("spmv_N6", SpMV(6, 6), 104),
		finish("spmv_N7", SpMV(7, 7), 105),
		finish("spmv_N10", SpMV(10, 10), 106),
		finish("CG_N2_K2", CG(2, 2, 22), 107),
		finish("CG_N3_K1", CG(3, 1, 31), 108),
		finish("CG_N4_K1", CG(4, 1, 41), 109),
		finish("exp_N4_K2", IteratedSpMV(4, 2, 42), 110),
		finish("exp_N5_K3", IteratedSpMV(5, 3, 53), 111),
		finish("exp_N6_K4", IteratedSpMV(6, 4, 64), 112),
		finish("kNN_N4_K3", KNN(4, 3, 43), 113),
		finish("kNN_N5_K3", KNN(5, 3, 53), 114),
		finish("kNN_N6_K4", KNN(6, 4, 64), 115),
	}
}

// Small returns the default "small" dataset: the 10 instance names of the
// paper's second dataset (two smallest per family plus the two
// coarse-grained graphs), again at solver-friendly sizes.
func Small() []Instance {
	return []Instance{
		finish("simple_pagerank", PageRank(6, 5), 201),
		finish("snni_graphchall.", SNNI(6, 6, 7), 202),
		finish("spmv_N25", SpMV(25, 25), 203),
		finish("spmv_N35", SpMV(35, 35), 204),
		finish("CG_N5_K4", CG(5, 4, 54), 205),
		finish("CG_N7_K2", CG(7, 2, 72), 206),
		finish("exp_N10_K8", IteratedSpMV(10, 8, 108), 207),
		finish("exp_N15_K4", IteratedSpMV(15, 4, 154), 208),
		finish("kNN_N10_K8", KNN(10, 8, 108), 209),
		finish("kNN_N15_K4", KNN(15, 4, 154), 210),
	}
}

// PaperTiny returns the tiny dataset scaled up to the paper's node counts
// (roughly 40–80 nodes per instance). Intended for long offline runs.
func PaperTiny() []Instance {
	return []Instance{
		finish("bicgstab", BiCGSTAB(5), 101),
		finish("k-means", KMeans(5, 4), 102),
		finish("pregel", Pregel(5, 4), 103),
		finish("spmv_N12", SpMV(12, 6), 104),
		finish("spmv_N14", SpMV(14, 7), 105),
		finish("spmv_N16", SpMV(16, 10), 106),
		finish("CG_N4_K2", CG(4, 2, 22), 107),
		finish("CG_N5_K2", CG(5, 2, 31), 108),
		finish("CG_N6_K2", CG(6, 2, 41), 109),
		finish("exp_N6_K4", IteratedSpMV(6, 4, 42), 110),
		finish("exp_N7_K5", IteratedSpMV(7, 5, 53), 111),
		finish("exp_N8_K5", IteratedSpMV(8, 5, 64), 112),
		finish("kNN_N6_K5", KNN(6, 5, 43), 113),
		finish("kNN_N7_K5", KNN(7, 5, 53), 114),
		finish("kNN_N8_K6", KNN(8, 6, 64), 115),
	}
}

// PaperSmall returns the small dataset scaled up to the paper's node
// counts (roughly 264–464 nodes per instance).
func PaperSmall() []Instance {
	return []Instance{
		finish("simple_pagerank", PageRank(10, 9), 201),
		finish("snni_graphchall.", SNNI(10, 10, 7), 202),
		finish("spmv_N60", SpMV(60, 25), 203),
		finish("spmv_N90", SpMV(90, 35), 204),
		finish("CG_N8_K5", CG(8, 5, 54), 205),
		finish("CG_N12_K3", CG(12, 3, 72), 206),
		finish("exp_N16_K10", IteratedSpMV(16, 10, 108), 207),
		finish("exp_N24_K6", IteratedSpMV(24, 6, 154), 208),
		finish("kNN_N16_K10", KNN(16, 10, 108), 209),
		finish("kNN_N24_K6", KNN(24, 6, 154), 210),
	}
}

// ByName returns the named instance from any of the datasets, or an
// error listing known names.
func ByName(name string) (Instance, error) {
	var names []string
	for _, set := range [][]Instance{Tiny(), Small(), PaperTiny(), PaperSmall()} {
		for _, inst := range set {
			if inst.Name == name {
				return inst, nil
			}
			names = append(names, inst.Name)
		}
	}
	return Instance{}, fmt.Errorf("workloads: unknown instance %q (known: %v)", name, names)
}
