package workloads

import (
	"testing"

	"mbsp/internal/graph"
)

func TestAllTinyInstancesValid(t *testing.T) {
	for _, inst := range Tiny() {
		if err := inst.DAG.Validate(); err != nil {
			t.Errorf("%s: %v", inst.Name, err)
		}
		if inst.DAG.N() < 10 {
			t.Errorf("%s: suspiciously small (n=%d)", inst.Name, inst.DAG.N())
		}
		if len(inst.DAG.Sources()) == 0 || len(inst.DAG.Sinks()) == 0 {
			t.Errorf("%s: missing sources or sinks", inst.Name)
		}
	}
}

func TestAllSmallInstancesValid(t *testing.T) {
	for _, inst := range Small() {
		if err := inst.DAG.Validate(); err != nil {
			t.Errorf("%s: %v", inst.Name, err)
		}
		if inst.DAG.N() < 30 {
			t.Errorf("%s: expected larger instance, n=%d", inst.Name, inst.DAG.N())
		}
	}
}

func TestPaperDatasetsValidAndLarger(t *testing.T) {
	tiny, paper := Tiny(), PaperTiny()
	var tinyN, paperN int
	for _, i := range tiny {
		tinyN += i.DAG.N()
	}
	for _, i := range paper {
		if err := i.DAG.Validate(); err != nil {
			t.Errorf("%s: %v", i.Name, err)
		}
		paperN += i.DAG.N()
	}
	if paperN <= tinyN {
		t.Errorf("paper-tiny total nodes %d not larger than tiny %d", paperN, tinyN)
	}
	for _, i := range PaperSmall() {
		if err := i.DAG.Validate(); err != nil {
			t.Errorf("%s: %v", i.Name, err)
		}
	}
}

func TestDatasetsAreDeterministic(t *testing.T) {
	a, b := Tiny(), Tiny()
	for i := range a {
		if a[i].DAG.N() != b[i].DAG.N() || a[i].DAG.M() != b[i].DAG.M() {
			t.Fatalf("%s: nondeterministic structure", a[i].Name)
		}
		for v := 0; v < a[i].DAG.N(); v++ {
			if a[i].DAG.Mem(v) != b[i].DAG.Mem(v) || a[i].DAG.Comp(v) != b[i].DAG.Comp(v) {
				t.Fatalf("%s: nondeterministic weights at node %d", a[i].Name, v)
			}
		}
	}
}

func TestMemWeightsInRange(t *testing.T) {
	for _, inst := range Tiny() {
		for v := 0; v < inst.DAG.N(); v++ {
			m := inst.DAG.Mem(v)
			if m < 1 || m > 5 || m != float64(int(m)) {
				t.Fatalf("%s node %d: μ=%g not in {1..5}", inst.Name, v, m)
			}
		}
	}
}

func TestSpMVStructure(t *testing.T) {
	g := SpMV(6, 1)
	// 6 sources (x), then mults and adds.
	if got := len(g.Sources()); got != 6 {
		t.Fatalf("sources=%d want 6", got)
	}
	// Each sink is a row result; 6 rows.
	if got := len(g.Sinks()); got != 6 {
		t.Fatalf("sinks=%d want 6", got)
	}
	// Multiply nodes have exactly one parent (the x entry).
	muls := 0
	for v := 0; v < g.N(); v++ {
		if g.InDegree(v) == 1 && !g.IsSource(v) {
			muls++
		}
	}
	if muls == 0 {
		t.Fatal("no multiply nodes found")
	}
}

func TestIteratedSpMVDepth(t *testing.T) {
	g := IteratedSpMV(4, 3, 1)
	lv, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	maxLv := 0
	for _, l := range lv {
		if l > maxLv {
			maxLv = l
		}
	}
	// At least one multiply + one add level per iteration.
	if maxLv < 3 {
		t.Fatalf("iterated SpMV too shallow: depth=%d", maxLv)
	}
}

func TestCGHasDotReductionsAndIterationChain(t *testing.T) {
	g := CG(3, 2, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// CG iterations serialize through alpha/beta scalars, so the DAG must
	// be deep: at least 6 levels per iteration.
	lv, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	maxLv := 0
	for _, l := range lv {
		if l > maxLv {
			maxLv = l
		}
	}
	if maxLv < 8 {
		t.Fatalf("CG depth=%d, expected a deep iteration chain", maxLv)
	}
}

func TestKNNSelectionDependsOnPreviousRound(t *testing.T) {
	g := KNN(4, 2, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Round-2 distance nodes have 3 parents (point, query, previous selection).
	found := false
	for v := 0; v < g.N(); v++ {
		if g.Label(v) == "d1_0" {
			found = true
			if g.InDegree(v) != 3 {
				t.Fatalf("d1_0 in-degree=%d want 3", g.InDegree(v))
			}
		}
	}
	if !found {
		t.Fatal("d1_0 not found")
	}
}

func TestCoarseGrainedShapes(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.DAG
	}{
		{"bicgstab", BiCGSTAB(3)},
		{"kmeans", KMeans(4, 3)},
		{"pregel", Pregel(4, 3)},
		{"pagerank", PageRank(4, 3)},
		{"snni", SNNI(4, 4, 1)},
	} {
		if err := tc.g.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if tc.g.N() < 10 || tc.g.M() < tc.g.N()-1 {
			t.Errorf("%s: degenerate shape n=%d m=%d", tc.name, tc.g.N(), tc.g.M())
		}
	}
}

func TestByName(t *testing.T) {
	inst, err := ByName("spmv_N6")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Name != "spmv_N6" {
		t.Fatalf("got %q", inst.Name)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestInstanceSizes(t *testing.T) {
	// Log sizes so dataset scale drift is visible in -v output.
	for _, inst := range Tiny() {
		t.Logf("tiny %-12s n=%3d m=%3d r0=%g", inst.Name, inst.DAG.N(), inst.DAG.M(), inst.DAG.MinCache())
	}
	for _, inst := range Small() {
		t.Logf("small %-16s n=%3d m=%3d", inst.Name, inst.DAG.N(), inst.DAG.M())
	}
}
