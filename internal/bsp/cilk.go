package bsp

import (
	"container/heap"
	"math/rand"

	"mbsp/internal/graph"
)

// Cilk simulates a Cilk-style randomized work-stealing execution of the
// DAG on p workers and converts the resulting node→worker assignment to a
// BSP schedule. Each worker owns a deque: finishing a node pushes newly
// enabled children to the bottom; an idle worker pops from its own
// bottom, or steals from the top of a random victim. The simulation is
// deterministic for a fixed seed.
//
// Returns ErrDeadlock (or graph.ErrCyclic for a cyclic input) instead of
// a schedule when the simulated execution stalls.
func Cilk(g *graph.DAG, p int, seed int64) (*Schedule, error) {
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	proc := make([]int, n)
	for v := range proc {
		proc[v] = -1
	}
	remaining := make([]int, n) // non-source parents not yet finished
	compNodes := 0
	for v := 0; v < n; v++ {
		if g.IsSource(v) {
			continue
		}
		compNodes++
		for _, u := range g.Parents(v) {
			if !g.IsSource(u) {
				remaining[v]++
			}
		}
	}
	deque := make([][]int, p)
	// Initially enabled nodes are dealt round-robin, as if spawned by a
	// root task.
	w := 0
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, v := range order {
		if !g.IsSource(v) && remaining[v] == 0 {
			deque[w] = append(deque[w], v)
			w = (w + 1) % p
		}
	}

	pq := &eventHeap{}
	busy := make([]bool, p)
	done := 0

	// tryStart gives the worker a node: its own deque bottom first, then
	// steal attempts from random victims' tops.
	tryStart := func(worker int, now float64) {
		if busy[worker] {
			return
		}
		v := -1
		if len(deque[worker]) > 0 {
			v = deque[worker][len(deque[worker])-1]
			deque[worker] = deque[worker][:len(deque[worker])-1]
		} else {
			for trial := 0; trial < 2*p && v < 0; trial++ {
				victim := rng.Intn(p)
				if victim != worker && len(deque[victim]) > 0 {
					v = deque[victim][0]
					deque[victim] = deque[victim][1:]
				}
			}
			if v < 0 {
				for victim := 0; victim < p && v < 0; victim++ {
					if len(deque[victim]) > 0 {
						v = deque[victim][0]
						deque[victim] = deque[victim][1:]
					}
				}
			}
		}
		if v < 0 {
			return
		}
		proc[v] = worker
		busy[worker] = true
		heap.Push(pq, event{t: now + g.Comp(v), w: worker, node: v})
	}

	for q := 0; q < p; q++ {
		tryStart(q, 0)
	}
	for done < compNodes {
		if pq.Len() == 0 {
			return nil, ErrDeadlock
		}
		ev := heap.Pop(pq).(event)
		busy[ev.w] = false
		done++
		for _, c := range g.Children(ev.node) {
			remaining[c]--
			if remaining[c] == 0 {
				deque[ev.w] = append(deque[ev.w], c)
			}
		}
		// Finished worker continues, then idle workers try to steal the
		// newly exposed work.
		tryStart(ev.w, ev.t)
		for q := 0; q < p; q++ {
			tryStart(q, ev.t)
		}
	}
	return FromAssignment(g, p, proc)
}

type event struct {
	t    float64
	w    int
	node int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	return h[i].t < h[j].t || (h[i].t == h[j].t && h[i].w < h[j].w)
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
