package bsp

import "testing"
import "mbsp/internal/workloads"

func TestBSPgDeterministic(t *testing.T) {
	for _, inst := range workloads.Tiny() {
		a := mustSched(t)(BSPg(inst.DAG, 4, BSPgOptions{G: 1, L: 10}))
		b := mustSched(t)(BSPg(inst.DAG, 4, BSPgOptions{G: 1, L: 10}))
		for v := 0; v < inst.DAG.N(); v++ {
			if a.Proc[v] != b.Proc[v] || a.Step[v] != b.Step[v] {
				t.Fatalf("%s: BSPg nondeterministic at node %d", inst.Name, v)
			}
		}
	}
}
