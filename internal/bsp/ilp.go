package bsp

import (
	"time"

	"mbsp/internal/faultinject"
	"mbsp/internal/graph"
	"mbsp/internal/lp"
	"mbsp/internal/mip"
)

// ILPOptions configures the ILP-based BSP scheduler (the paper's stronger
// stage-1 baseline, "similar to [36]").
type ILPOptions struct {
	G, L      float64
	Steps     int           // superstep horizon; 0 derives it from the BSPg warm start
	TimeLimit time.Duration // default 10s
	NodeLimit int           // default 3000
	// Workers bounds the goroutines solving branch-and-bound node
	// relaxations concurrently (mip.Options.Workers); the schedule is
	// identical for any value. Default 1.
	Workers int
	// MaxModelRows falls back to the BSPg schedule when the model would
	// exceed this many rows. Default mip.DefaultMaxModelRows.
	MaxModelRows int
	// Inject threads the deterministic fault-injection harness into the
	// branch-and-bound tree (mip.Options.Inject).
	Inject *faultinject.Injector
}

// ILP formulates BSP scheduling (no memory constraints) as an integer
// program and solves it with branch and bound, warm-started from BSPg.
// Binary x[v][p][s] assigns non-source node v to processor p in superstep
// s; precedence requires a parent to be finished on the same processor by
// the same superstep or anywhere strictly earlier. The objective is
//
//	Σ_s maxwork_s + g·(total communicated volume) + L·(used supersteps),
//
// a volume-based relaxation of the h-relation cost that keeps the model
// linear and compact. Falls back to the BSPg schedule when limits bind;
// errors only when the BSPg warm start itself fails.
func ILP(g *graph.DAG, p int, opts ILPOptions) (*Schedule, error) {
	warm, err := BSPg(g, p, BSPgOptions{G: opts.G, L: opts.L})
	if err != nil {
		return nil, err
	}
	if opts.TimeLimit == 0 {
		opts.TimeLimit = 10 * time.Second
	}
	if opts.NodeLimit == 0 {
		opts.NodeLimit = 3000
	}
	if opts.MaxModelRows == 0 {
		opts.MaxModelRows = mip.DefaultMaxModelRows
	}
	S := opts.Steps
	if S == 0 {
		S = warm.NumSteps + 1
	}
	if warm.NumSteps > S {
		return warm, nil // cannot encode the warm start; stay with it
	}

	n := g.N()
	m := mip.NewModel()
	// x[v][p][s]
	x := make([][][]int, n)
	for v := 0; v < n; v++ {
		if g.IsSource(v) {
			continue
		}
		x[v] = make([][]int, p)
		for q := 0; q < p; q++ {
			x[v][q] = make([]int, S)
			for s := 0; s < S; s++ {
				x[v][q][s] = m.AddBinary("x", 0)
			}
		}
	}
	// Every non-source node assigned exactly once.
	for v := 0; v < n; v++ {
		if g.IsSource(v) {
			continue
		}
		var coefs []lp.Coef
		for q := 0; q < p; q++ {
			for s := 0; s < S; s++ {
				coefs = append(coefs, lp.Coef{Var: x[v][q][s], Val: 1})
			}
		}
		m.AddRow(coefs, lp.EQ, 1)
	}
	// Precedence.
	for v := 0; v < n; v++ {
		if g.IsSource(v) {
			continue
		}
		for _, u := range g.Parents(v) {
			if g.IsSource(u) {
				continue
			}
			for q := 0; q < p; q++ {
				for s := 0; s < S; s++ {
					// x[v][q][s] ≤ Σ_{s'≤s} x[u][q][s'] + Σ_{q'} Σ_{s'<s} x[u][q'][s']
					coefs := []lp.Coef{{Var: x[v][q][s], Val: 1}}
					for sp := 0; sp <= s; sp++ {
						coefs = append(coefs, lp.Coef{Var: x[u][q][sp], Val: -1})
					}
					for qp := 0; qp < p; qp++ {
						if qp == q {
							continue
						}
						for sp := 0; sp < s; sp++ {
							coefs = append(coefs, lp.Coef{Var: x[u][qp][sp], Val: -1})
						}
					}
					m.AddRow(coefs, lp.LE, 0)
				}
			}
		}
	}
	// Work: maxwork_s ≥ Σ_v ω(v)·x[v][q][s].
	maxwork := make([]int, S)
	for s := 0; s < S; s++ {
		maxwork[s] = m.AddVar("maxwork", 0, lp.Inf, 1)
		for q := 0; q < p; q++ {
			coefs := []lp.Coef{{Var: maxwork[s], Val: 1}}
			for v := 0; v < n; v++ {
				if !g.IsSource(v) {
					coefs = append(coefs, lp.Coef{Var: x[v][q][s], Val: -g.Comp(v)})
				}
			}
			m.AddRow(coefs, lp.GE, 0)
		}
	}
	// Communication: d[u][q] = 1 when u is needed on processor q but
	// computed elsewhere; objective pays g·μ(u) per such destination.
	y := make([][]int, n) // y[u][q] = Σ_s x[u][q][s]
	for u := 0; u < n; u++ {
		if g.IsSource(u) {
			continue
		}
		y[u] = make([]int, p)
		hasCross := false
		for _, w := range g.Children(u) {
			if !g.IsSource(w) {
				hasCross = true
			}
		}
		if !hasCross {
			continue
		}
		for q := 0; q < p; q++ {
			d := m.AddBinary("d", opts.G*g.Mem(u))
			y[u][q] = d
			for _, w := range g.Children(u) {
				if g.IsSource(w) {
					continue
				}
				// d ≥ (w on q) − (u on q):
				coefs := []lp.Coef{{Var: d, Val: 1}}
				for s := 0; s < S; s++ {
					coefs = append(coefs, lp.Coef{Var: x[w][q][s], Val: -1})
					coefs = append(coefs, lp.Coef{Var: x[u][q][s], Val: 1})
				}
				m.AddRow(coefs, lp.GE, 0)
			}
		}
	}
	// Superstep usage for the L term.
	for s := 0; s < S; s++ {
		used := m.AddBinary("used", opts.L)
		for q := 0; q < p; q++ {
			for v := 0; v < n; v++ {
				if !g.IsSource(v) {
					m.AddLE(0, lp.Coef{Var: x[v][q][s], Val: 1}, lp.Coef{Var: used, Val: -1})
				}
			}
		}
	}

	if m.NumRows() > opts.MaxModelRows {
		return warm, nil
	}

	// Warm start from BSPg.
	ws := make([]float64, m.NumVars())
	for v := 0; v < n; v++ {
		if g.IsSource(v) {
			continue
		}
		ws[x[v][warm.Proc[v]][warm.Step[v]]] = 1
	}
	// Continuous/indicator warm values: recompute minimal feasible.
	for s := 0; s < S; s++ {
		var mw float64
		for q := 0; q < p; q++ {
			var w float64
			for v := 0; v < n; v++ {
				if !g.IsSource(v) && warm.Proc[v] == q && warm.Step[v] == s {
					w += g.Comp(v)
				}
			}
			if w > mw {
				mw = w
			}
		}
		ws[maxwork[s]] = mw
	}
	for u := 0; u < n; u++ {
		if g.IsSource(u) || y[u] == nil {
			continue
		}
		for q := 0; q < p; q++ {
			if y[u][q] == 0 {
				continue
			}
			needed := false
			for _, w := range g.Children(u) {
				if !g.IsSource(w) && warm.Proc[w] == q {
					needed = true
				}
			}
			if needed && warm.Proc[u] != q {
				ws[y[u][q]] = 1
			}
		}
	}
	// "used" indicators: set from warm schedule. Their variable indices
	// are the trailing binaries; recompute by scanning names.
	for j := 0; j < m.NumVars(); j++ {
		if m.Name(j) == "used" {
			ws[j] = 0
		}
	}
	usedIdx := make([]int, 0, S)
	for j := 0; j < m.NumVars(); j++ {
		if m.Name(j) == "used" {
			usedIdx = append(usedIdx, j)
		}
	}
	for s := 0; s < S && s < len(usedIdx); s++ {
		for v := 0; v < n; v++ {
			if !g.IsSource(v) && warm.Step[v] == s {
				ws[usedIdx[s]] = 1
				break
			}
		}
	}

	res := m.Solve(mip.Options{
		TimeLimit: opts.TimeLimit, NodeLimit: opts.NodeLimit,
		WarmStart: ws, Workers: opts.Workers, Inject: opts.Inject,
	})
	if res.X == nil {
		return warm, nil
	}
	order, err := g.TopoOrder()
	if err != nil {
		return warm, nil // graph validated above; keep the warm fallback
	}
	out := NewSchedule(g, p)
	for _, v := range order {
		if g.IsSource(v) {
			continue
		}
		for q := 0; q < p; q++ {
			for s := 0; s < S; s++ {
				if res.X[x[v][q][s]] > 0.5 {
					out.Assign(v, q, s)
				}
			}
		}
	}
	// Compress away empty supersteps.
	out, err = compress(out)
	if err != nil || out.Validate() != nil {
		return warm, nil
	}
	return out, nil
}

// compress renumbers supersteps to remove empty ones.
func compress(s *Schedule) (*Schedule, error) {
	usedSteps := map[int]bool{}
	for v := 0; v < s.Graph.N(); v++ {
		if s.Step[v] >= 0 {
			usedSteps[s.Step[v]] = true
		}
	}
	remap := map[int]int{}
	next := 0
	for t := 0; t < s.NumSteps; t++ {
		if usedSteps[t] {
			remap[t] = next
			next++
		}
	}
	order, err := s.Graph.TopoOrder()
	if err != nil {
		return nil, err
	}
	out := NewSchedule(s.Graph, s.P)
	for _, v := range order {
		if s.Proc[v] >= 0 {
			out.Assign(v, s.Proc[v], remap[s.Step[v]])
		}
	}
	return out, nil
}
