package bsp

import (
	"math"
	"sort"

	"mbsp/internal/graph"
)

// BSPgOptions tunes the greedy scheduler. The zero value is replaced by
// sensible defaults.
type BSPgOptions struct {
	// G and L are the BSP parameters used when scoring communication
	// against work.
	G float64
	L float64
	// ImbalanceRatio ends a superstep once the least-loaded processor
	// has at least this fraction of the most-loaded one and no
	// communication-free node is available. Default 0.7.
	ImbalanceRatio float64
	// MaxStepWork caps a superstep's per-processor work at this multiple
	// of the mean node weight times ceil(n/P). Default 2.0.
	MaxStepWork float64
}

func (o BSPgOptions) withDefaults() BSPgOptions {
	if o.ImbalanceRatio == 0 {
		o.ImbalanceRatio = 0.7
	}
	if o.MaxStepWork == 0 {
		o.MaxStepWork = 2.0
	}
	return o
}

// BSPg is a greedy BSP list scheduler in the spirit of the BSPg heuristic
// of Papp et al. (SPAA 2024): it grows supersteps one at a time,
// repeatedly assigning the ready node with the highest bottom-level
// priority to the processor where it causes the least communication,
// tie-broken by load balance; a superstep closes when the ready pool dries
// up (all remaining ready nodes would need a value computed on another
// processor in the current superstep) or the work quota is met.
//
// Returns ErrNoProgress (or graph.ErrCyclic for a cyclic input) instead
// of a schedule when the greedy loop cannot place every node.
func BSPg(g *graph.DAG, p int, opts BSPgOptions) (*Schedule, error) {
	opts = opts.withDefaults()
	s := NewSchedule(g, p)
	bl, err := g.BottomLevels()
	if err != nil {
		return nil, err
	}
	n := g.N()

	// unscheduledParents counts non-source parents not yet scheduled.
	unscheduledParents := make([]int, n)
	compNodes := 0
	for v := 0; v < n; v++ {
		if g.IsSource(v) {
			continue
		}
		compNodes++
		for _, u := range g.Parents(v) {
			if !g.IsSource(u) {
				unscheduledParents[v]++
			}
		}
	}
	// ready: unscheduled nodes with all non-source parents scheduled in a
	// *previous* superstep or on the candidate processor in the current
	// one. We track plain readiness (parents scheduled anywhere) and
	// filter per processor at pick time.
	ready := make(map[int]bool)
	for v := 0; v < n; v++ {
		if !g.IsSource(v) && unscheduledParents[v] == 0 {
			ready[v] = true
		}
	}

	scheduled := 0
	step := 0
	// Per-processor work quota per superstep: generous — superstep
	// closure is driven mostly by cross-processor dependencies — but it
	// stops one processor from hoarding an entire level.
	levels := 0
	lvls, err := g.Levels()
	if err != nil {
		return nil, err
	}
	for _, l := range lvls {
		levels = max(levels, l)
	}
	quota := opts.MaxStepWork * g.TotalComp() / float64(p) / float64(max(1, levels/2))
	if quota <= 0 {
		quota = math.Inf(1)
	}
	for scheduled < compNodes {
		load := make([]float64, p)
		stepOf := make(map[int]int) // node -> proc, for nodes placed this superstep
		progress := true
		for progress {
			progress = false
			// Candidate selection: among ready nodes, pick highest
			// bottom-level node assignable to some processor. Iterate in
			// sorted order — map order would make the scheduler
			// nondeterministic.
			readyList := make([]int, 0, len(ready))
			for v := range ready {
				readyList = append(readyList, v)
			}
			sort.Ints(readyList)
			bestNode, bestProc := -1, -1
			bestScore := math.Inf(-1)
			for _, v := range readyList {
				for _, q := range procLoadOrder(load) {
					if load[q]+g.Comp(v) > quota && load[q] > 0 {
						continue
					}
					ok := true
					affinity := 0.0
					for _, u := range g.Parents(v) {
						if g.IsSource(u) {
							continue
						}
						if qq, here := stepOf[u]; here {
							if qq != q {
								ok = false // cross-proc dependence inside this superstep
								break
							}
							affinity += opts.G * g.Mem(u)
						} else if s.Proc[u] == q {
							affinity += opts.G * g.Mem(u)
						}
					}
					if !ok {
						continue
					}
					// Score: priority first, then communication affinity,
					// then lighter load.
					score := bl[v] + affinity - 1e-3*load[q]
					if score > bestScore {
						bestScore = score
						bestNode, bestProc = v, q
					}
					break // only consider the least-loaded feasible proc per node
				}
			}
			if bestNode < 0 {
				break
			}
			// Balance cut-off: if the superstep is already well balanced
			// and the best candidate would pile onto the busiest
			// processor, close the superstep instead.
			minLoad, maxLoad := math.Inf(1), 0.0
			for _, l := range load {
				minLoad = min(minLoad, l)
				maxLoad = max(maxLoad, l)
			}
			if maxLoad > 0 && minLoad >= opts.ImbalanceRatio*maxLoad &&
				load[bestProc]+g.Comp(bestNode) > quota {
				break
			}
			s.Assign(bestNode, bestProc, step)
			stepOf[bestNode] = bestProc
			load[bestProc] += g.Comp(bestNode)
			delete(ready, bestNode)
			scheduled++
			for _, w := range g.Children(bestNode) {
				unscheduledParents[w]--
				if unscheduledParents[w] == 0 {
					ready[w] = true
				}
			}
			progress = true
		}
		step++
		if step > 4*n+4 {
			return nil, ErrNoProgress
		}
	}
	return s, nil
}
