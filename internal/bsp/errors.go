package bsp

import "errors"

// Typed scheduler failures. These used to be panics; they are now part
// of the scheduler interface so the portfolio can classify a stage-1
// failure, race past it, and still return an anytime result.
var (
	// ErrNoProgress is returned by BSPg when the greedy loop exceeds its
	// superstep budget without scheduling every node — the symptom of an
	// inconsistent ready set (e.g. a cyclic input graph).
	ErrNoProgress = errors.New("bsp: BSPg failed to make progress")

	// ErrDeadlock is returned by Cilk when the simulated work-stealing
	// execution stalls with unfinished nodes and no pending events.
	ErrDeadlock = errors.New("bsp: cilk simulation deadlock")
)
