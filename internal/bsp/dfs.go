package bsp

import "mbsp/internal/graph"

// DFSOrder returns a depth-first topological compute order of the
// non-source nodes: the traversal descends into an enabled child
// immediately after finishing its last parent, which keeps values hot in
// cache for the subsequent memory-management stage.
func DFSOrder(g *graph.DAG) []int {
	n := g.N()
	remaining := make([]int, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Parents(v) {
			if !g.IsSource(u) {
				remaining[v]++
			}
		}
	}
	seen := make([]bool, n)
	var stack, order []int
	for i := n - 1; i >= 0; i-- {
		if !g.IsSource(i) && remaining[i] == 0 {
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		order = append(order, v)
		for _, c := range g.Children(v) {
			remaining[c]--
			if remaining[c] == 0 && !seen[c] {
				stack = append(stack, c)
			}
		}
	}
	return order
}

// DFS builds the single-processor depth-first BSP schedule used as the
// stage-1 baseline for P=1 (red-blue pebbling with compute costs). The
// whole schedule is one superstep; the compute order within it is
// DFSOrder. Note ComputeOrder re-sorts topologically, which preserves a
// valid order; converters that want the exact DFS sequence should use
// DFSOrder directly.
func DFS(g *graph.DAG) *Schedule {
	s := NewSchedule(g, 1)
	for _, v := range DFSOrder(g) {
		s.Assign(v, 0, 0)
	}
	return s
}
