package bsp

import (
	"testing"

	"mbsp/internal/graph"
	"mbsp/internal/workloads"
)

// mustSched adapts the error-returning schedulers for tests that treat
// any scheduler failure as fatal.
func mustSched(t *testing.T) func(*Schedule, error) *Schedule {
	return func(s *Schedule, err error) *Schedule {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

func TestBSPgValidOnTinySet(t *testing.T) {
	for _, inst := range workloads.Tiny() {
		for _, p := range []int{1, 2, 4, 8} {
			s := mustSched(t)(BSPg(inst.DAG, p, BSPgOptions{G: 1, L: 10}))
			if err := s.Validate(); err != nil {
				t.Errorf("%s P=%d: %v", inst.Name, p, err)
			}
			if err := s.CheckOrder(); err != nil {
				t.Errorf("%s P=%d: %v", inst.Name, p, err)
			}
		}
	}
}

func TestBSPgUsesMultipleProcessors(t *testing.T) {
	// A wide DAG should engage more than one processor.
	g := workloads.SpMV(10, 1)
	s := mustSched(t)(BSPg(g, 4, BSPgOptions{G: 1, L: 10}))
	used := map[int]bool{}
	for v := 0; v < g.N(); v++ {
		if s.Proc[v] >= 0 {
			used[s.Proc[v]] = true
		}
	}
	if len(used) < 2 {
		t.Fatalf("BSPg used only %d processors on a wide DAG", len(used))
	}
}

func TestBSPgBeatsSerialOnParallelWork(t *testing.T) {
	g := workloads.SpMV(10, 1)
	s4 := mustSched(t)(BSPg(g, 4, BSPgOptions{G: 1, L: 1}))
	s1 := mustSched(t)(BSPg(g, 1, BSPgOptions{G: 1, L: 1}))
	if s4.Cost(1, 1) >= s1.Cost(1, 1) {
		t.Fatalf("P=4 cost %g not below P=1 cost %g", s4.Cost(1, 1), s1.Cost(1, 1))
	}
}

func TestCilkValidAndDeterministic(t *testing.T) {
	for _, inst := range workloads.Tiny()[:5] {
		a := mustSched(t)(Cilk(inst.DAG, 4, 7))
		b := mustSched(t)(Cilk(inst.DAG, 4, 7))
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if err := a.CheckOrder(); err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		for v := 0; v < inst.DAG.N(); v++ {
			if a.Proc[v] != b.Proc[v] || a.Step[v] != b.Step[v] {
				t.Fatalf("%s: nondeterministic for fixed seed", inst.Name)
			}
		}
	}
}

func TestDFSOrderIsTopological(t *testing.T) {
	for _, inst := range workloads.Tiny() {
		g := inst.DAG
		order := DFSOrder(g)
		pos := make(map[int]int)
		for i, v := range order {
			pos[v] = i
		}
		count := 0
		for v := 0; v < g.N(); v++ {
			if g.IsSource(v) {
				continue
			}
			count++
			for _, u := range g.Parents(v) {
				if g.IsSource(u) {
					continue
				}
				if pos[u] >= pos[v] {
					t.Fatalf("%s: DFS order violates edge (%d,%d)", inst.Name, u, v)
				}
			}
		}
		if len(order) != count {
			t.Fatalf("%s: DFS order covers %d of %d nodes", inst.Name, len(order), count)
		}
	}
}

func TestDFSDescendsIntoChains(t *testing.T) {
	// On a chain, DFS computes it straight through.
	g := graph.Chain(6)
	order := DFSOrder(g)
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1]+1 {
			t.Fatalf("DFS order on chain: %v", order)
		}
	}
}

func TestDFSScheduleSingleSuperstep(t *testing.T) {
	g := workloads.SpMV(6, 1)
	s := DFS(g)
	if s.NumSteps != 1 {
		t.Fatalf("DFS schedule has %d supersteps", s.NumSteps)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsCrossProcSameStep(t *testing.T) {
	g := graph.Chain(3) // 0 -> 1 -> 2; node 0 is a source
	s := NewSchedule(g, 2)
	s.Assign(1, 0, 0)
	s.Assign(2, 1, 0) // depends on node 1, other proc, same superstep
	if err := s.Validate(); err == nil {
		t.Fatal("expected cross-processor violation")
	}
}

func TestValidateRejectsUnassigned(t *testing.T) {
	g := graph.Chain(3)
	s := NewSchedule(g, 2)
	s.Assign(1, 0, 0)
	if err := s.Validate(); err == nil {
		t.Fatal("expected unassigned error")
	}
}

func TestFromAssignmentEarliestSteps(t *testing.T) {
	// 0 (source) -> 1 -> 2 -> 3, procs alternate: each cross edge bumps
	// the superstep.
	g := graph.Chain(4)
	proc := []int{-1, 0, 1, 0}
	s := mustSched(t)(FromAssignment(g, 2, proc))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Step[1] != 0 || s.Step[2] != 1 || s.Step[3] != 2 {
		t.Fatalf("steps=%v", s.Step)
	}
}

func TestCostAccountsWorkAndComm(t *testing.T) {
	// Two nodes on different procs with a cross edge.
	g := graph.New("x")
	s0 := g.AddNode(0, 2)
	a := g.AddNode(3, 2)
	b := g.AddNode(5, 1)
	g.AddEdge(s0, a)
	g.AddEdge(a, b)
	sch := NewSchedule(g, 2)
	sch.Assign(a, 0, 0)
	sch.Assign(b, 1, 1)
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
	// Superstep -1 (source receive): h = μ(s0)=2 → g·2.
	// Superstep 0: work 3, send μ(a)=2 → g·2.
	// Superstep 1: work 5.
	gg, ll := 2.0, 10.0
	want := (gg*2 + ll) + (3 + gg*2 + ll) + (5 + ll)
	if got := sch.Cost(gg, ll); got != want {
		t.Fatalf("cost=%g want %g", got, want)
	}
}

func TestCostSkipsEmptySupersteps(t *testing.T) {
	g := graph.Chain(2)
	s := NewSchedule(g, 2)
	s.Assign(1, 0, 5) // artificially late superstep
	cost := s.Cost(1, 10)
	// Only two non-empty slots: the source receive and the work step.
	want := (1.0 + 10) + (1.0 + 10)
	if cost != want {
		t.Fatalf("cost=%g want %g", cost, want)
	}
}

func TestComputeOrderRespectsAssignmentOrder(t *testing.T) {
	// Two independent nodes on the same proc+step keep assignment order.
	g := graph.New("x")
	s0 := g.AddNode(0, 1)
	a := g.AddNode(1, 1)
	b := g.AddNode(1, 1)
	g.AddEdge(s0, a)
	g.AddEdge(s0, b)
	s := NewSchedule(g, 1)
	s.Assign(b, 0, 0)
	s.Assign(a, 0, 0)
	order := s.ComputeOrder()
	if order[0][0][0] != b || order[0][0][1] != a {
		t.Fatalf("order=%v", order[0][0])
	}
}

func TestILPBSPValidAndNotWorse(t *testing.T) {
	for _, inst := range workloads.Tiny()[:4] {
		g := inst.DAG
		warm := mustSched(t)(BSPg(g, 2, BSPgOptions{G: 1, L: 10}))
		s := mustSched(t)(ILP(g, 2, ILPOptions{G: 1, L: 10, TimeLimit: 2e9}))
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if err := s.CheckOrder(); err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		// The ILP's own objective is a different relaxation, but the
		// schedule should not be wildly worse in BSP cost terms.
		if s.Cost(1, 10) > 1.5*warm.Cost(1, 10) {
			t.Fatalf("%s: ILP BSP cost %g far above BSPg %g", inst.Name, s.Cost(1, 10), warm.Cost(1, 10))
		}
	}
}

func TestILPBSPFallsBackOnHugeModel(t *testing.T) {
	inst, err := workloads.ByName("spmv_N10")
	if err != nil {
		t.Fatal(err)
	}
	s := mustSched(t)(ILP(inst.DAG, 4, ILPOptions{G: 1, L: 10, MaxModelRows: 10}))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
