// Package bsp implements the first stage of the paper's two-stage
// baseline: classical BSP DAG scheduling without memory constraints.
// It provides the BSP schedule representation and cost model, the
// BSPg-style greedy list scheduler, a Cilk-style work-stealing scheduler,
// a single-processor DFS scheduler, and (in ilp.go) an ILP formulation of
// BSP scheduling used as the paper's stronger stage-1 baseline.
package bsp

import (
	"fmt"
	"sort"

	"mbsp/internal/graph"
)

// Schedule is a BSP schedule: every non-source node is assigned a
// processor and a superstep. Source nodes are inputs residing in slow
// memory; they carry Proc = Step = -1 (as in the paper's MBSP reading of
// BSP schedules, sources are loaded rather than computed).
type Schedule struct {
	Graph    *graph.DAG
	P        int
	Proc     []int // per node, -1 for sources
	Step     []int // per node, -1 for sources
	Pos      []int // assignment sequence number, orders nodes within (proc, step)
	NumSteps int
	nextPos  int
}

// NewSchedule allocates an unassigned BSP schedule shell.
func NewSchedule(g *graph.DAG, p int) *Schedule {
	s := &Schedule{Graph: g, P: p,
		Proc: make([]int, g.N()), Step: make([]int, g.N()), Pos: make([]int, g.N())}
	for v := range s.Proc {
		s.Proc[v] = -1
		s.Step[v] = -1
		s.Pos[v] = -1
	}
	return s
}

// Assign places node v on processor p in superstep step. Assignment
// order fixes the compute order within a (processor, superstep) pair, so
// schedulers must assign in an order consistent with the DAG.
func (s *Schedule) Assign(v, p, step int) {
	s.Proc[v] = p
	s.Step[v] = step
	s.Pos[v] = s.nextPos
	s.nextPos++
	if step+1 > s.NumSteps {
		s.NumSteps = step + 1
	}
}

// Validate checks BSP validity: every non-source node is assigned a
// processor in [0,P) and a superstep; for every edge (u,v) between
// non-source nodes, step(u) < step(v) when they sit on different
// processors and step(u) ≤ step(v) when on the same processor.
func (s *Schedule) Validate() error {
	g := s.Graph
	for v := 0; v < g.N(); v++ {
		if g.IsSource(v) {
			if s.Proc[v] != -1 || s.Step[v] != -1 {
				return fmt.Errorf("bsp: source node %d must be unassigned", v)
			}
			continue
		}
		if s.Proc[v] < 0 || s.Proc[v] >= s.P {
			return fmt.Errorf("bsp: node %d has processor %d out of range", v, s.Proc[v])
		}
		if s.Step[v] < 0 {
			return fmt.Errorf("bsp: node %d unassigned", v)
		}
		for _, u := range g.Parents(v) {
			if g.IsSource(u) {
				continue
			}
			switch {
			case s.Proc[u] == s.Proc[v]:
				if s.Step[u] > s.Step[v] {
					return fmt.Errorf("bsp: edge (%d,%d) violates same-proc order: steps %d > %d",
						u, v, s.Step[u], s.Step[v])
				}
			default:
				if s.Step[u] >= s.Step[v] {
					return fmt.Errorf("bsp: edge (%d,%d) crosses processors without a superstep boundary (steps %d, %d)",
						u, v, s.Step[u], s.Step[v])
				}
			}
		}
	}
	return nil
}

// ComputeOrder returns, for each (processor, superstep), the nodes
// computed there in the scheduler's assignment order (which schedulers
// keep consistent with the DAG). Index as order[p][s].
func (s *Schedule) ComputeOrder() [][][]int {
	order := make([][][]int, s.P)
	for p := range order {
		order[p] = make([][]int, s.NumSteps)
	}
	for v := 0; v < s.Graph.N(); v++ {
		if s.Graph.IsSource(v) || s.Proc[v] < 0 {
			continue
		}
		order[s.Proc[v]][s.Step[v]] = append(order[s.Proc[v]][s.Step[v]], v)
	}
	for p := range order {
		for t := range order[p] {
			bucket := order[p][t]
			sort.Slice(bucket, func(a, b int) bool { return s.Pos[bucket[a]] < s.Pos[bucket[b]] })
		}
	}
	return order
}

// CheckOrder verifies that the assignment order is topologically
// consistent within every (processor, superstep) bucket.
func (s *Schedule) CheckOrder() error {
	order := s.ComputeOrder()
	for p := range order {
		for t := range order[p] {
			seen := make(map[int]bool)
			for _, v := range order[p][t] {
				for _, u := range s.Graph.Parents(v) {
					if !s.Graph.IsSource(u) && s.Proc[u] == p && s.Step[u] == t && !seen[u] {
						return fmt.Errorf("bsp: node %d ordered before its parent %d in (proc %d, step %d)", v, u, p, t)
					}
				}
				seen[v] = true
			}
		}
	}
	return nil
}

// Cost evaluates the classical BSP cost of the schedule:
//
//	Σ_s [ max_p work(p,s) + g·h_s + L ]
//
// where h_s = max_p max(sent(p,s), recv(p,s)), with μ-weighted
// communication volumes. A value computed on p and consumed on q≠p is
// sent in the superstep where it is computed; source values consumed on a
// processor are received (from slow memory) in the superstep before their
// first use. Empty trailing supersteps contribute only their L.
func (s *Schedule) Cost(g1, l float64) float64 {
	g := s.Graph
	work := make([][]float64, s.P)
	sent := make([][]float64, s.P)
	recv := make([][]float64, s.P)
	numSteps := s.NumSteps + 1 // slot -1 shifted by one for source receives
	for p := 0; p < s.P; p++ {
		work[p] = make([]float64, numSteps)
		sent[p] = make([]float64, numSteps)
		recv[p] = make([]float64, numSteps)
	}
	step := func(v int) int { return s.Step[v] + 1 } // shift
	for v := 0; v < g.N(); v++ {
		if g.IsSource(v) {
			// Receivers get the value just before their earliest use.
			firstUse := make(map[int]int)
			for _, w := range g.Children(v) {
				p := s.Proc[w]
				if t, ok := firstUse[p]; !ok || step(w) < t {
					firstUse[p] = step(w)
				}
			}
			for p, t := range firstUse {
				recv[p][t-1] += g.Mem(v)
			}
			continue
		}
		work[s.Proc[v]][step(v)] += g.Comp(v)
		// Cross-processor consumers receive v; sender pays once per
		// distinct destination, in the superstep where v is computed.
		dests := make(map[int]bool)
		for _, w := range g.Children(v) {
			if s.Proc[w] != s.Proc[v] {
				dests[s.Proc[w]] = true
			}
		}
		for q := range dests {
			sent[s.Proc[v]][step(v)] += g.Mem(v)
			// Receiver gets it in the same communication phase.
			recv[q][step(v)] += g.Mem(v)
		}
	}
	total := 0.0
	for t := 0; t < numSteps; t++ {
		var maxWork, h float64
		for p := 0; p < s.P; p++ {
			maxWork = max(maxWork, work[p][t])
			h = max(h, max(sent[p][t], recv[p][t]))
		}
		if maxWork == 0 && h == 0 {
			continue
		}
		total += maxWork + g1*h + l
	}
	return total
}

// FromAssignment converts a bare node→processor assignment into a valid
// BSP schedule by computing the earliest superstep per node: a node
// starts a new superstep whenever it depends on a value computed on a
// different processor in the current superstep. Returns graph.ErrCyclic
// for a cyclic input graph.
func FromAssignment(g *graph.DAG, p int, proc []int) (*Schedule, error) {
	s := NewSchedule(g, p)
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, v := range order {
		if g.IsSource(v) {
			continue
		}
		step := 0
		for _, u := range g.Parents(v) {
			if g.IsSource(u) {
				continue
			}
			if proc[u] == proc[v] {
				step = max(step, s.Step[u])
			} else {
				step = max(step, s.Step[u]+1)
			}
		}
		s.Assign(v, proc[v], step)
	}
	return s, nil
}

// Summary returns a short description of the schedule for logs.
func (s *Schedule) Summary() string {
	return fmt.Sprintf("BSP(%s: P=%d, supersteps=%d)", s.Graph.Name(), s.P, s.NumSteps)
}

// procLoadOrder returns processors ordered by current load, then index —
// a deterministic helper for greedy schedulers.
func procLoadOrder(load []float64) []int {
	idx := make([]int, len(load))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if load[idx[a]] != load[idx[b]] {
			return load[idx[a]] < load[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}
