package mbsp

import (
	"fmt"
	"math"
)

// epsilon tolerance for floating-point memory accounting.
const memEps = 1e-9

// state tracks the pebbling configuration during validation or cost
// evaluation.
type state struct {
	red    []map[int]bool // per processor: nodes with a red pebble
	redUse []float64      // per processor: Σ μ over red set
	blue   map[int]bool   // shared blue pebbles
}

func newState(s *Schedule) *state {
	st := &state{
		red:    make([]map[int]bool, s.Arch.P),
		redUse: make([]float64, s.Arch.P),
		blue:   make(map[int]bool),
	}
	for p := 0; p < s.Arch.P; p++ {
		st.red[p] = make(map[int]bool)
	}
	for _, v := range s.Graph.Sources() {
		st.blue[v] = true
	}
	return st
}

// ValidationError describes where a schedule violates the model rules.
type ValidationError struct {
	Superstep int
	Proc      int
	Op        string
	Node      int
	Reason    string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("mbsp: invalid schedule: superstep %d, proc %d, %s(%d): %s",
		e.Superstep, e.Proc, e.Op, e.Node, e.Reason)
}

// Validate checks that the schedule is a valid MBSP schedule:
//
//   - every COMPUTE has all parents red on the same processor and the node
//     is not a source;
//   - every SAVE has the node red on the saving processor;
//   - every LOAD has the node blue (saved in this or an earlier superstep,
//     or a source);
//   - every DELETE removes an existing red pebble;
//   - the memory bound Σ μ ≤ r holds on every processor after every
//     transition;
//   - all sink nodes are blue at the end.
//
// Blue pebbles saved within a superstep become loadable in the same
// superstep's load phase (the save phases of all processors complete
// before any load phase, per the model's B ← ∪B_p union semantics).
func (s *Schedule) Validate() error {
	if err := s.Arch.Validate(); err != nil {
		return err
	}
	st := newState(s)
	for i := range s.Steps {
		if len(s.Steps[i].Procs) != s.Arch.P {
			return fmt.Errorf("mbsp: superstep %d has %d processor slots, want %d",
				i, len(s.Steps[i].Procs), s.Arch.P)
		}
		if err := st.applySuperstep(s, i, nil); err != nil {
			return err
		}
	}
	for _, v := range s.Graph.Sinks() {
		if !st.blue[v] {
			return fmt.Errorf("mbsp: invalid schedule: sink node %d has no blue pebble at the end", v)
		}
	}
	return nil
}

// phaseCosts collects per-processor phase costs of one superstep; used by
// both cost functions.
type phaseCosts struct {
	comp []float64
	save []float64
	load []float64
}

// applySuperstep simulates superstep i, optionally recording phase costs.
func (st *state) applySuperstep(s *Schedule, i int, pc *phaseCosts) error {
	g := s.Graph
	step := &s.Steps[i]
	fail := func(p int, op string, v int, reason string) error {
		return &ValidationError{Superstep: i, Proc: p, Op: op, Node: v, Reason: reason}
	}
	// Phase 1: compute (and interleaved deletes) on every processor.
	for p := range step.Procs {
		ps := &step.Procs[p]
		for _, op := range ps.Comp {
			v := op.Node
			if v < 0 || v >= g.N() {
				return fail(p, op.Kind.String(), v, "node out of range")
			}
			switch op.Kind {
			case OpCompute:
				if g.IsSource(v) {
					return fail(p, "compute", v, "source nodes cannot be computed")
				}
				for _, u := range g.Parents(v) {
					if !st.red[p][u] {
						return fail(p, "compute", v, fmt.Sprintf("parent %d has no red pebble on proc %d", u, p))
					}
				}
				if !st.red[p][v] {
					st.red[p][v] = true
					st.redUse[p] += g.Mem(v)
				}
				if pc != nil {
					pc.comp[p] += g.Comp(v)
				}
			case OpDelete:
				if !st.red[p][v] {
					return fail(p, "delete", v, "no red pebble to delete")
				}
				delete(st.red[p], v)
				st.redUse[p] -= g.Mem(v)
			default:
				return fail(p, op.Kind.String(), v, "only compute/delete allowed in the compute phase")
			}
			if st.redUse[p] > s.Arch.R+memEps {
				return fail(p, op.Kind.String(), v,
					fmt.Sprintf("memory bound exceeded: %.6g > r=%.6g", st.redUse[p], s.Arch.R))
			}
		}
	}
	// Phase 2: save on every processor; blue set updated after all saves.
	newBlue := make([]int, 0)
	for p := range step.Procs {
		ps := &step.Procs[p]
		for _, v := range ps.Save {
			if v < 0 || v >= g.N() {
				return fail(p, "save", v, "node out of range")
			}
			if !st.red[p][v] {
				return fail(p, "save", v, "no red pebble to save")
			}
			newBlue = append(newBlue, v)
			if pc != nil {
				pc.save[p] += s.Arch.G * g.Mem(v)
			}
		}
	}
	for _, v := range newBlue {
		st.blue[v] = true
	}
	// Phase 3: deletes.
	for p := range step.Procs {
		ps := &step.Procs[p]
		for _, v := range ps.Del {
			if v < 0 || v >= g.N() {
				return fail(p, "delete", v, "node out of range")
			}
			if !st.red[p][v] {
				return fail(p, "delete", v, "no red pebble to delete")
			}
			delete(st.red[p], v)
			st.redUse[p] -= g.Mem(v)
		}
	}
	// Phase 4: loads.
	for p := range step.Procs {
		ps := &step.Procs[p]
		for _, v := range ps.Load {
			if v < 0 || v >= g.N() {
				return fail(p, "load", v, "node out of range")
			}
			if !st.blue[v] {
				return fail(p, "load", v, "no blue pebble to load from")
			}
			if !st.red[p][v] {
				st.red[p][v] = true
				st.redUse[p] += g.Mem(v)
			}
			if st.redUse[p] > s.Arch.R+memEps {
				return fail(p, "load", v,
					fmt.Sprintf("memory bound exceeded: %.6g > r=%.6g", st.redUse[p], s.Arch.R))
			}
			if pc != nil {
				pc.load[p] += s.Arch.G * g.Mem(v)
			}
		}
	}
	return nil
}

// CheckComputesAll verifies that every non-source node is computed at
// least once somewhere in the schedule. Validate does not require this
// directly (it follows from sink blue pebbles and rule prerequisites),
// but it is a useful diagnostic for schedule builders.
func (s *Schedule) CheckComputesAll() error {
	computed := make([]bool, s.Graph.N())
	for i := range s.Steps {
		for p := range s.Steps[i].Procs {
			for _, op := range s.Steps[i].Procs[p].Comp {
				if op.Kind == OpCompute {
					computed[op.Node] = true
				}
			}
		}
	}
	for v := 0; v < s.Graph.N(); v++ {
		if !s.Graph.IsSource(v) && !computed[v] {
			return fmt.Errorf("mbsp: node %d is never computed", v)
		}
	}
	return nil
}

// MaxResidentMemory returns the maximum Σ μ over any processor's red set
// at any point of the schedule, useful for diagnostics. The schedule must
// be valid.
func (s *Schedule) MaxResidentMemory() float64 {
	st := newState(s)
	maxUse := 0.0
	record := func() {
		for p := range st.redUse {
			if st.redUse[p] > maxUse {
				maxUse = st.redUse[p]
			}
		}
	}
	for i := range s.Steps {
		if err := st.applySuperstep(s, i, nil); err != nil {
			return math.NaN()
		}
		record()
	}
	return maxUse
}

// FinalRedSets replays the schedule and returns, per processor, the nodes
// holding a red pebble after the last superstep. The schedule must be
// valid.
func (s *Schedule) FinalRedSets() ([][]int, error) {
	st := newState(s)
	for i := range s.Steps {
		if err := st.applySuperstep(s, i, nil); err != nil {
			return nil, err
		}
	}
	out := make([][]int, s.Arch.P)
	for p := 0; p < s.Arch.P; p++ {
		for v := range st.red[p] {
			out[p] = append(out[p], v)
		}
	}
	return out, nil
}
