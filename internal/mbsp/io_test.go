package mbsp

import (
	"bytes"
	"strings"
	"testing"

	"mbsp/internal/graph"
)

func TestScheduleRoundTrip(t *testing.T) {
	g := twoNodeDAG()
	s := handSchedule(g, Arch{P: 1, R: 10, G: 2, L: 5})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedule(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.SyncCost() != s.SyncCost() || got.AsyncCost() != s.AsyncCost() {
		t.Fatalf("round trip changed cost: %g/%g vs %g/%g",
			got.SyncCost(), got.AsyncCost(), s.SyncCost(), s.AsyncCost())
	}
	if got.NumSupersteps() != s.NumSupersteps() {
		t.Fatalf("supersteps %d vs %d", got.NumSupersteps(), s.NumSupersteps())
	}
}

func TestScheduleRoundTripMultiProc(t *testing.T) {
	g := graph.New("x")
	s0 := g.AddNode(0, 1)
	v := g.AddNode(1, 1)
	w := g.AddNode(1, 1)
	g.AddEdge(s0, v)
	g.AddEdge(v, w)
	a := Arch{P: 2, R: 10, G: 1, L: 0}
	s := NewSchedule(g, a)
	st0 := s.AddSuperstep()
	st0.Procs[0].Load = []int{s0}
	st1 := s.AddSuperstep()
	st1.Procs[0].Comp = []Op{{OpCompute, v}}
	st1.Procs[0].Save = []int{v}
	st1.Procs[0].Del = []int{s0}
	st1.Procs[1].Load = []int{v}
	st2 := s.AddSuperstep()
	st2.Procs[1].Comp = []Op{{OpCompute, w}, {OpDelete, v}}
	st2.Procs[1].Save = []int{w}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedule(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	c1, s1, l1, d1 := s.Ops()
	c2, s2, l2, d2 := got.Ops()
	if c1 != c2 || s1 != s2 || l1 != l2 || d1 != d2 {
		t.Fatalf("ops differ: (%d,%d,%d,%d) vs (%d,%d,%d,%d)", c1, s1, l1, d1, c2, s2, l2, d2)
	}
}

func TestReadScheduleRejectsMalformed(t *testing.T) {
	g := twoNodeDAG()
	cases := []string{
		"",
		"superstep",
		"mbsp-schedule 1 10 1 0\nc 1",
		"mbsp-schedule 1 10 1 0\nsuperstep\nc 1",
		"mbsp-schedule 1 10 1 0\nsuperstep\np 5\nc 1",
		"mbsp-schedule 1 10 1 0\nsuperstep\np 0\nz 1",
		"mbsp-schedule x 10 1 0",
	}
	for i, c := range cases {
		if _, err := ReadSchedule(strings.NewReader(c), g); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadScheduleValidates(t *testing.T) {
	g := twoNodeDAG()
	// Schedule computes node 1 without loading its parent: invalid.
	in := "mbsp-schedule 1 10 1 0\nsuperstep\np 0\nc 1\ns 1\n"
	if _, err := ReadSchedule(strings.NewReader(in), g); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestComputeStats(t *testing.T) {
	g := twoNodeDAG()
	a := Arch{P: 1, R: 10, G: 2, L: 5}
	s := handSchedule(g, a)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	st := s.ComputeStats()
	if st.Computes != 1 || st.Saves != 1 || st.Loads != 1 {
		t.Fatalf("stats=%+v", st)
	}
	if st.WorkPerProc[0] != 3 {
		t.Fatalf("work=%v", st.WorkPerProc)
	}
	// IO = g·(μ load + μ save) = 2·(1+2) = 6.
	if st.CommVolume != 6 {
		t.Fatalf("commvol=%g", st.CommVolume)
	}
	if st.Recomputed != 0 {
		t.Fatalf("recomputed=%d", st.Recomputed)
	}
	if st.PeakMemory != 3 {
		t.Fatalf("peak=%g", st.PeakMemory)
	}
	if !strings.Contains(st.String(), "supersteps=2") {
		t.Fatalf("stats string: %s", st)
	}
}

func TestStatsCountsRecomputation(t *testing.T) {
	g := graph.Chain(2) // source 0 -> node 1
	a := Arch{P: 1, R: 10, G: 1, L: 0}
	s := NewSchedule(g, a)
	st0 := s.AddSuperstep()
	st0.Procs[0].Load = []int{0}
	st1 := s.AddSuperstep()
	st1.Procs[0].Comp = []Op{{OpCompute, 1}, {OpDelete, 1}, {OpCompute, 1}}
	st1.Procs[0].Save = []int{1}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	st := s.ComputeStats()
	if st.Recomputed != 1 || st.Computes != 2 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestWorkImbalance(t *testing.T) {
	g := graph.New("x")
	s0 := g.AddNode(0, 1)
	a := g.AddNode(4, 1)
	b := g.AddNode(2, 1)
	g.AddEdge(s0, a)
	g.AddEdge(s0, b)
	arch := Arch{P: 2, R: 10, G: 1, L: 0}
	s := NewSchedule(g, arch)
	st0 := s.AddSuperstep()
	st0.Procs[0].Load = []int{s0}
	st0.Procs[1].Load = []int{s0}
	st1 := s.AddSuperstep()
	st1.Procs[0].Comp = []Op{{OpCompute, a}}
	st1.Procs[0].Save = []int{a}
	st1.Procs[1].Comp = []Op{{OpCompute, b}}
	st1.Procs[1].Save = []int{b}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := s.ComputeStats()
	// Work 4 vs 2: max/mean = 4/3.
	if stats.WorkImbalance < 1.33 || stats.WorkImbalance > 1.34 {
		t.Fatalf("imbalance=%g", stats.WorkImbalance)
	}
}
