package mbsp

import (
	"strings"
	"testing"

	"mbsp/internal/graph"
)

// twoNodeDAG: source s -> compute node c.
func twoNodeDAG() *graph.DAG {
	g := graph.New("two")
	s := g.AddNode(0, 1)
	c := g.AddNode(3, 2)
	g.AddEdge(s, c)
	return g
}

func arch1() Arch { return Arch{P: 1, R: 10, G: 1, L: 0} }

// handSchedule builds: load s; compute c; save c — a minimal valid
// schedule for twoNodeDAG on one processor, split into two supersteps
// (load in superstep 0's load phase, compute+save in superstep 1).
func handSchedule(g *graph.DAG, a Arch) *Schedule {
	s := NewSchedule(g, a)
	st0 := s.AddSuperstep()
	st0.Procs[0].Load = []int{0}
	st1 := s.AddSuperstep()
	st1.Procs[0].Comp = []Op{{OpCompute, 1}}
	st1.Procs[0].Save = []int{1}
	return s
}

func TestValidateMinimalSchedule(t *testing.T) {
	g := twoNodeDAG()
	s := handSchedule(g, arch1())
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckComputesAll(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncCostMinimalSchedule(t *testing.T) {
	g := twoNodeDAG()
	a := Arch{P: 1, R: 10, G: 2, L: 5}
	s := handSchedule(g, a)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Superstep 0: load μ=1 → g·1 = 2, plus L=5.
	// Superstep 1: comp 3 + save g·2=4, plus L=5.
	want := (2.0 + 5) + (3 + 4 + 5)
	if got := s.SyncCost(); got != want {
		t.Fatalf("SyncCost=%g want %g", got, want)
	}
	b := s.SyncCostBreakdown()
	if b.Total() != want || b.Compute != 3 || b.Load != 2 || b.Save != 4 || b.Sync != 10 {
		t.Fatalf("breakdown=%v", b)
	}
}

func TestAsyncCostMinimalSchedule(t *testing.T) {
	g := twoNodeDAG()
	a := Arch{P: 1, R: 10, G: 2, L: 5}
	s := handSchedule(g, a)
	// Async ignores L: load 2, compute 3, save 4 → 9.
	if got := s.AsyncCost(); got != 9 {
		t.Fatalf("AsyncCost=%g want 9", got)
	}
}

func TestAsyncLeqSyncWhenLZero(t *testing.T) {
	g := graph.RandomLayered("r", 4, 4, 0.4, 5, 3, 3)
	a := Arch{P: 2, R: 3 * g.MinCache(), G: 1, L: 0}
	s := serialSchedule(t, g, a)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.AsyncCost() > s.SyncCost()+1e-9 {
		t.Fatalf("async %g > sync %g with L=0", s.AsyncCost(), s.SyncCost())
	}
}

// serialSchedule builds a trivially valid schedule: proc 0 computes all
// nodes in topological order, loading parents and saving+evicting
// aggressively (one superstep per node). Slow but always valid when
// r >= r0.
func serialSchedule(t *testing.T, g *graph.DAG, a Arch) *Schedule {
	t.Helper()
	s := NewSchedule(g, a)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range order {
		if g.IsSource(v) {
			continue
		}
		// Superstep A: load parents.
		stA := s.AddSuperstep()
		stA.Procs[0].Load = append([]int(nil), g.Parents(v)...)
		// Superstep B: compute v, save it, evict everything.
		stB := s.AddSuperstep()
		stB.Procs[0].Comp = []Op{{OpCompute, v}}
		stB.Procs[0].Save = []int{v}
		stB.Procs[0].Del = append(append([]int(nil), g.Parents(v)...), v)
	}
	return s
}

func TestSerialScheduleValidOnRandomDAGs(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := graph.RandomDAG("r", 12, 0.3, 4, 5, 5, seed)
		a := Arch{P: 1, R: g.MinCache(), G: 1, L: 1}
		s := serialSchedule(t, g, a)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestValidateCatchesMissingParent(t *testing.T) {
	g := twoNodeDAG()
	s := NewSchedule(g, arch1())
	st := s.AddSuperstep()
	st.Procs[0].Comp = []Op{{OpCompute, 1}} // parent 0 never loaded
	err := s.Validate()
	if err == nil {
		t.Fatal("expected error")
	}
	ve, ok := err.(*ValidationError)
	if !ok || ve.Op != "compute" || ve.Node != 1 {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestValidateCatchesComputeOfSource(t *testing.T) {
	g := twoNodeDAG()
	s := NewSchedule(g, arch1())
	st := s.AddSuperstep()
	st.Procs[0].Comp = []Op{{OpCompute, 0}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "source") {
		t.Fatalf("expected source error, got %v", err)
	}
}

func TestValidateCatchesLoadWithoutBlue(t *testing.T) {
	g := twoNodeDAG()
	s := NewSchedule(g, arch1())
	st := s.AddSuperstep()
	st.Procs[0].Load = []int{1} // node 1 never saved
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "blue") {
		t.Fatalf("expected blue-pebble error, got %v", err)
	}
}

func TestValidateCatchesSaveWithoutRed(t *testing.T) {
	g := twoNodeDAG()
	s := NewSchedule(g, arch1())
	st := s.AddSuperstep()
	st.Procs[0].Save = []int{1}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "red") {
		t.Fatalf("expected red-pebble error, got %v", err)
	}
}

func TestValidateCatchesDeleteWithoutRed(t *testing.T) {
	g := twoNodeDAG()
	s := NewSchedule(g, arch1())
	st := s.AddSuperstep()
	st.Procs[0].Del = []int{0}
	if err := s.Validate(); err == nil {
		t.Fatal("expected error")
	}
}

func TestValidateCatchesMemoryOverflow(t *testing.T) {
	g := twoNodeDAG()
	a := Arch{P: 1, R: 0.5, G: 1, L: 0} // cannot even hold the source
	s := NewSchedule(g, a)
	st := s.AddSuperstep()
	st.Procs[0].Load = []int{0}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "memory bound") {
		t.Fatalf("expected memory error, got %v", err)
	}
}

func TestValidateRequiresSinkBlue(t *testing.T) {
	g := twoNodeDAG()
	s := NewSchedule(g, arch1())
	st := s.AddSuperstep()
	st.Procs[0].Load = []int{0}
	st2 := s.AddSuperstep()
	st2.Procs[0].Comp = []Op{{OpCompute, 1}}
	// no save of the sink
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "sink") {
		t.Fatalf("expected sink error, got %v", err)
	}
}

func TestSaveVisibleToLoadSameSuperstep(t *testing.T) {
	// Proc 0 computes and saves v; proc 1 loads v in the same superstep.
	g := graph.New("x")
	s0 := g.AddNode(0, 1)
	v := g.AddNode(1, 1)
	w := g.AddNode(1, 1)
	g.AddEdge(s0, v)
	g.AddEdge(v, w)
	a := Arch{P: 2, R: 10, G: 1, L: 0}
	s := NewSchedule(g, a)
	st0 := s.AddSuperstep()
	st0.Procs[0].Load = []int{s0}
	st1 := s.AddSuperstep()
	st1.Procs[0].Comp = []Op{{OpCompute, v}}
	st1.Procs[0].Save = []int{v}
	st1.Procs[1].Load = []int{v} // same superstep: must be legal
	st2 := s.AddSuperstep()
	st2.Procs[1].Comp = []Op{{OpCompute, w}}
	st2.Procs[1].Save = []int{w}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadBeforeSaveInEarlierSuperstepFails(t *testing.T) {
	// Proc 1 loads v in a superstep *before* v is saved: invalid.
	g := graph.New("x")
	s0 := g.AddNode(0, 1)
	v := g.AddNode(1, 1)
	g.AddEdge(s0, v)
	a := Arch{P: 2, R: 10, G: 1, L: 0}
	s := NewSchedule(g, a)
	st0 := s.AddSuperstep()
	st0.Procs[0].Load = []int{s0}
	st0.Procs[1].Load = []int{v}
	if err := s.Validate(); err == nil {
		t.Fatal("expected error: load before save")
	}
}

func TestAsyncGammaWait(t *testing.T) {
	// Two procs: proc 0 computes heavy v then saves; proc 1 loads v and
	// computes w. Proc 1's load must wait for Γ(v).
	g := graph.New("x")
	s0 := g.AddNode(0, 1)
	v := g.AddNode(10, 1)
	w := g.AddNode(1, 1)
	g.AddEdge(s0, v)
	g.AddEdge(v, w)
	a := Arch{P: 2, R: 10, G: 1, L: 0}
	s := NewSchedule(g, a)
	st0 := s.AddSuperstep()
	st0.Procs[0].Load = []int{s0}
	st1 := s.AddSuperstep()
	st1.Procs[0].Comp = []Op{{OpCompute, v}}
	st1.Procs[0].Save = []int{v}
	st1.Procs[1].Load = []int{v}
	st2 := s.AddSuperstep()
	st2.Procs[1].Comp = []Op{{OpCompute, w}}
	st2.Procs[1].Save = []int{w}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// γ(proc0): load 1 + comp 10 + save 1 = 12. Γ(v)=12.
	// γ(proc1): load of v waits until 12, +1 → 13; comp 1 → 14; save 1 → 15.
	if got := s.AsyncCost(); got != 15 {
		t.Fatalf("AsyncCost=%g want 15", got)
	}
	// Sync: step0: load 1; step1: comp 10 + save 1 + load 1; step2: comp 1 + save 1.
	if got := s.SyncCost(); got != 1+10+1+1+1+1 {
		t.Fatalf("SyncCost=%g want 15", got)
	}
}

func TestCloneDeep(t *testing.T) {
	g := twoNodeDAG()
	s := handSchedule(g, arch1())
	c := s.Clone()
	c.Steps[1].Procs[0].Comp[0].Node = 0
	if s.Steps[1].Procs[0].Comp[0].Node != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestOpsCount(t *testing.T) {
	g := twoNodeDAG()
	s := handSchedule(g, arch1())
	c, sv, ld, dl := s.Ops()
	if c != 1 || sv != 1 || ld != 1 || dl != 0 {
		t.Fatalf("ops=(%d,%d,%d,%d)", c, sv, ld, dl)
	}
}

func TestStringRendering(t *testing.T) {
	g := twoNodeDAG()
	s := handSchedule(g, arch1())
	out := s.String()
	if !strings.Contains(out, "compute(1)") || !strings.Contains(out, "load(0)") {
		t.Fatalf("String output missing ops:\n%s", out)
	}
}

func TestArchValidate(t *testing.T) {
	if err := (Arch{P: 0, R: 1}).Validate(); err == nil {
		t.Fatal("P=0 must be invalid")
	}
	if err := (Arch{P: 1, R: -1}).Validate(); err == nil {
		t.Fatal("negative r must be invalid")
	}
	if err := (Arch{P: 2, R: 5, G: 1, L: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelString(t *testing.T) {
	if Sync.String() != "sync" || Async.String() != "async" {
		t.Fatal("CostModel strings")
	}
}

func TestMaxResidentMemory(t *testing.T) {
	g := twoNodeDAG()
	s := handSchedule(g, arch1())
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// After superstep 1 both s (μ=1) and c (μ=2) are resident.
	if got := s.MaxResidentMemory(); got != 3 {
		t.Fatalf("MaxResidentMemory=%g want 3", got)
	}
}
