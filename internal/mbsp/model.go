// Package mbsp defines the MBSP scheduling model of the paper: a
// computational DAG executed by P processors, each with a private fast
// memory of capacity r (red pebbles) and a shared slow memory of unbounded
// capacity (blue pebbles), under the BSP parameters g (cost per
// transferred memory unit) and L (synchronization cost).
//
// A schedule is a sequence of supersteps; within a superstep every
// processor runs a pebbling sequence of the form
// Ψcomp ∘ Ψsave ∘ Ψdel ∘ Ψload. The blue-pebble set is shared: values
// saved by any processor in a superstep become visible to all processors
// from that superstep's load phase onward.
package mbsp

import (
	"fmt"
	"strings"

	"mbsp/internal/graph"
)

// Arch describes a computing architecture: P identical processors with
// fast memories of capacity R each, communication cost G per memory unit
// and synchronization cost L per superstep.
type Arch struct {
	P int
	R float64
	G float64
	L float64
}

// Validate checks basic sanity of the architecture parameters.
func (a Arch) Validate() error {
	if a.P < 1 {
		return fmt.Errorf("mbsp: need at least one processor, got P=%d", a.P)
	}
	if a.R < 0 || a.G < 0 || a.L < 0 {
		return fmt.Errorf("mbsp: negative architecture parameter (r=%g, g=%g, L=%g)", a.R, a.G, a.L)
	}
	return nil
}

func (a Arch) String() string {
	return fmt.Sprintf("Arch(P=%d, r=%g, g=%g, L=%g)", a.P, a.R, a.G, a.L)
}

// OpKind enumerates the transition rules of the model.
type OpKind uint8

const (
	// OpCompute places a red pebble on a non-source node whose parents
	// all carry a red pebble of the same processor. Cost ω(v).
	OpCompute OpKind = iota
	// OpSave copies a red-pebbled value to slow memory. Cost g·μ(v).
	OpSave
	// OpLoad copies a blue-pebbled value into fast memory. Cost g·μ(v).
	OpLoad
	// OpDelete removes a red pebble. Free.
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpSave:
		return "save"
	case OpLoad:
		return "load"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is a single transition applied to a node. The processor is implied by
// the ProcStep containing the op.
type Op struct {
	Kind OpKind
	Node int
}

// ProcStep is one processor's pebbling within one superstep, split into
// the four phases of the model. Comp may interleave compute and delete
// ops; Save, Del and Load hold node ids only.
type ProcStep struct {
	Comp []Op  // compute and delete ops, in execution order
	Save []int // values saved to slow memory
	Del  []int // red pebbles removed after the save phase
	Load []int // values loaded from slow memory
}

// Empty reports whether the processor performs no operation in this
// superstep.
func (ps *ProcStep) Empty() bool {
	return len(ps.Comp) == 0 && len(ps.Save) == 0 && len(ps.Del) == 0 && len(ps.Load) == 0
}

// Superstep holds one ProcStep per processor.
type Superstep struct {
	Procs []ProcStep
}

// Schedule is a full MBSP schedule for a DAG on an architecture.
type Schedule struct {
	Graph *graph.DAG
	Arch  Arch
	Steps []Superstep
}

// NewSchedule returns an empty schedule shell for g on arch.
func NewSchedule(g *graph.DAG, arch Arch) *Schedule {
	return &Schedule{Graph: g, Arch: arch}
}

// AddSuperstep appends an empty superstep and returns a pointer to it.
func (s *Schedule) AddSuperstep() *Superstep {
	s.Steps = append(s.Steps, Superstep{Procs: make([]ProcStep, s.Arch.P)})
	return &s.Steps[len(s.Steps)-1]
}

// NumSupersteps returns the number of supersteps.
func (s *Schedule) NumSupersteps() int { return len(s.Steps) }

// Ops returns the total number of operations in the schedule, by kind.
func (s *Schedule) Ops() (computes, saves, loads, deletes int) {
	for i := range s.Steps {
		for p := range s.Steps[i].Procs {
			ps := &s.Steps[i].Procs[p]
			for _, op := range ps.Comp {
				if op.Kind == OpCompute {
					computes++
				} else {
					deletes++
				}
			}
			saves += len(ps.Save)
			deletes += len(ps.Del)
			loads += len(ps.Load)
		}
	}
	return
}

// String renders a human-readable description of the schedule.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MBSP schedule for %s on %s: %d supersteps\n", s.Graph.Name(), s.Arch, len(s.Steps))
	for i := range s.Steps {
		fmt.Fprintf(&b, " superstep %d:\n", i)
		for p := range s.Steps[i].Procs {
			ps := &s.Steps[i].Procs[p]
			if ps.Empty() {
				continue
			}
			fmt.Fprintf(&b, "  proc %d:", p)
			for _, op := range ps.Comp {
				fmt.Fprintf(&b, " %s(%d)", op.Kind, op.Node)
			}
			for _, v := range ps.Save {
				fmt.Fprintf(&b, " save(%d)", v)
			}
			for _, v := range ps.Del {
				fmt.Fprintf(&b, " del(%d)", v)
			}
			for _, v := range ps.Load {
				fmt.Fprintf(&b, " load(%d)", v)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Clone returns a deep copy of the schedule (sharing the DAG).
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{Graph: s.Graph, Arch: s.Arch, Steps: make([]Superstep, len(s.Steps))}
	for i := range s.Steps {
		c.Steps[i].Procs = make([]ProcStep, len(s.Steps[i].Procs))
		for p := range s.Steps[i].Procs {
			src := &s.Steps[i].Procs[p]
			dst := &c.Steps[i].Procs[p]
			dst.Comp = append([]Op(nil), src.Comp...)
			dst.Save = append([]int(nil), src.Save...)
			dst.Del = append([]int(nil), src.Del...)
			dst.Load = append([]int(nil), src.Load...)
		}
	}
	return c
}
