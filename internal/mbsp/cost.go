package mbsp

import "fmt"

// SyncCost evaluates the synchronous (Multi-BSP style) cost of the
// schedule:
//
//	Σ over supersteps of [ max_p cost(Ψcomp_p) + max_p cost(Ψsave_p)
//	                       + max_p cost(Ψload_p) + L ].
//
// The schedule is assumed valid; call Validate first.
func (s *Schedule) SyncCost() float64 {
	total := 0.0
	for i := range s.Steps {
		var maxComp, maxSave, maxLoad float64
		for p := range s.Steps[i].Procs {
			ps := &s.Steps[i].Procs[p]
			var comp, save, load float64
			for _, op := range ps.Comp {
				if op.Kind == OpCompute {
					comp += s.Graph.Comp(op.Node)
				}
			}
			for _, v := range ps.Save {
				save += s.Arch.G * s.Graph.Mem(v)
			}
			for _, v := range ps.Load {
				load += s.Arch.G * s.Graph.Mem(v)
			}
			maxComp = max(maxComp, comp)
			maxSave = max(maxSave, save)
			maxLoad = max(maxLoad, load)
		}
		total += maxComp + maxSave + maxLoad + s.Arch.L
	}
	return total
}

// CostBreakdown summarizes where a schedule's synchronous cost comes
// from.
type CostBreakdown struct {
	Compute float64 // Σ max_p compute-phase cost
	Save    float64 // Σ max_p save-phase cost
	Load    float64 // Σ max_p load-phase cost
	Sync    float64 // L · number of supersteps
}

// Total returns the synchronous total of the breakdown.
func (c CostBreakdown) Total() float64 { return c.Compute + c.Save + c.Load + c.Sync }

func (c CostBreakdown) String() string {
	return fmt.Sprintf("cost{comp=%.4g save=%.4g load=%.4g sync=%.4g total=%.4g}",
		c.Compute, c.Save, c.Load, c.Sync, c.Total())
}

// SyncCostBreakdown computes the synchronous cost split by phase kind.
func (s *Schedule) SyncCostBreakdown() CostBreakdown {
	var b CostBreakdown
	for i := range s.Steps {
		var maxComp, maxSave, maxLoad float64
		for p := range s.Steps[i].Procs {
			ps := &s.Steps[i].Procs[p]
			var comp, save, load float64
			for _, op := range ps.Comp {
				if op.Kind == OpCompute {
					comp += s.Graph.Comp(op.Node)
				}
			}
			for _, v := range ps.Save {
				save += s.Arch.G * s.Graph.Mem(v)
			}
			for _, v := range ps.Load {
				load += s.Arch.G * s.Graph.Mem(v)
			}
			maxComp = max(maxComp, comp)
			maxSave = max(maxSave, save)
			maxLoad = max(maxLoad, load)
		}
		b.Compute += maxComp
		b.Save += maxSave
		b.Load += maxLoad
		b.Sync += s.Arch.L
	}
	return b
}

// AsyncCost evaluates the asynchronous cost (makespan) of the schedule.
// Each processor executes its own transition sequence back to back; a
// LOAD of node v additionally waits until Γ(v), the finishing time of the
// earliest SAVE of v within the first superstep that saves v. Source
// nodes are available in slow memory at time 0.
//
// The returned value is max_p γ(last transition on p). The schedule is
// assumed valid.
func (s *Schedule) AsyncCost() float64 {
	g := s.Graph
	gamma := make([]float64, s.Arch.P) // current finishing time per processor
	// Γ(v): time v first becomes available in slow memory.
	avail := make(map[int]float64, g.N())
	for _, v := range g.Sources() {
		avail[v] = 0
	}
	for i := range s.Steps {
		// Compute phases (deletes are free).
		for p := range s.Steps[i].Procs {
			ps := &s.Steps[i].Procs[p]
			for _, op := range ps.Comp {
				if op.Kind == OpCompute {
					gamma[p] += g.Comp(op.Node)
				}
			}
		}
		// Save phases: Γ(v) is set in the first superstep saving v, as
		// the minimum finish time over that superstep's saves of v.
		type savedAt struct {
			node int
			t    float64
		}
		var saves []savedAt
		for p := range s.Steps[i].Procs {
			ps := &s.Steps[i].Procs[p]
			for _, v := range ps.Save {
				gamma[p] += s.Arch.G * g.Mem(v)
				saves = append(saves, savedAt{v, gamma[p]})
			}
		}
		// Minimum finish time per node within this superstep only;
		// saves in later supersteps never lower Γ.
		minThis := make(map[int]float64)
		for _, sv := range saves {
			if t, ok := minThis[sv.node]; !ok || sv.t < t {
				minThis[sv.node] = sv.t
			}
		}
		for v, t := range minThis {
			if _, ok := avail[v]; !ok {
				avail[v] = t
			}
		}
		// Load phases.
		for p := range s.Steps[i].Procs {
			ps := &s.Steps[i].Procs[p]
			for _, v := range ps.Load {
				start := gamma[p]
				if t, ok := avail[v]; ok && t > start {
					start = t
				}
				gamma[p] = start + s.Arch.G*g.Mem(v)
			}
		}
	}
	best := 0.0
	for p := range gamma {
		best = max(best, gamma[p])
	}
	return best
}

// Cost evaluates the schedule under the given cost model.
func (s *Schedule) Cost(model CostModel) float64 {
	if model == Async {
		return s.AsyncCost()
	}
	return s.SyncCost()
}

// CostModel selects between the synchronous and asynchronous objective.
type CostModel uint8

const (
	// Sync is the superstep-structured (Multi-)BSP cost.
	Sync CostModel = iota
	// Async is the makespan-style cost with Γ-mediated load waits.
	Async
)

func (m CostModel) String() string {
	if m == Async {
		return "async"
	}
	return "sync"
}
