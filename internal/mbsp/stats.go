package mbsp

import (
	"fmt"
	"strings"
)

// Stats summarizes structural properties of a schedule, used by the CLI
// and by tests to reason about schedule quality beyond the scalar cost.
type Stats struct {
	Supersteps int
	Computes   int
	Saves      int
	Loads      int
	Deletes    int
	Recomputed int // nodes computed more than once (over all processors)

	WorkPerProc   []float64 // Σ ω per processor
	IOPerProc     []float64 // g·Σ μ over saves+loads per processor
	WorkImbalance float64   // max/mean work ratio (1 = perfectly balanced)

	CommVolume float64 // g-weighted total save+load volume
	PeakMemory float64 // max resident Σ μ on any processor
}

// ComputeStats gathers the statistics. The schedule must be valid.
func (s *Schedule) ComputeStats() Stats {
	st := Stats{
		Supersteps:  len(s.Steps),
		WorkPerProc: make([]float64, s.Arch.P),
		IOPerProc:   make([]float64, s.Arch.P),
	}
	computedBy := make(map[int]int)
	for i := range s.Steps {
		for p := range s.Steps[i].Procs {
			ps := &s.Steps[i].Procs[p]
			for _, op := range ps.Comp {
				if op.Kind == OpCompute {
					st.Computes++
					computedBy[op.Node]++
					st.WorkPerProc[p] += s.Graph.Comp(op.Node)
				} else {
					st.Deletes++
				}
			}
			st.Saves += len(ps.Save)
			st.Deletes += len(ps.Del)
			st.Loads += len(ps.Load)
			for _, v := range ps.Save {
				st.IOPerProc[p] += s.Arch.G * s.Graph.Mem(v)
			}
			for _, v := range ps.Load {
				st.IOPerProc[p] += s.Arch.G * s.Graph.Mem(v)
			}
		}
	}
	for _, c := range computedBy {
		if c > 1 {
			st.Recomputed++
		}
	}
	var total, maxWork float64
	for _, w := range st.WorkPerProc {
		total += w
		maxWork = max(maxWork, w)
	}
	if total > 0 {
		st.WorkImbalance = maxWork / (total / float64(s.Arch.P))
	}
	for p := range st.IOPerProc {
		st.CommVolume += st.IOPerProc[p]
	}
	st.PeakMemory = s.MaxResidentMemory()
	return st
}

func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "supersteps=%d computes=%d saves=%d loads=%d deletes=%d recomputed=%d\n",
		st.Supersteps, st.Computes, st.Saves, st.Loads, st.Deletes, st.Recomputed)
	fmt.Fprintf(&b, "work/proc=%v imbalance=%.3f commvol=%.4g peakmem=%.4g",
		st.WorkPerProc, st.WorkImbalance, st.CommVolume, st.PeakMemory)
	return b.String()
}
