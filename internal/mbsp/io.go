package mbsp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mbsp/internal/graph"
)

// The schedule text format is line based:
//
//	mbsp-schedule <P> <r> <g> <L>
//	superstep
//	p <proc>
//	c <node>      compute op (compute phase)
//	x <node>      delete op inside the compute phase
//	s <node>      save
//	d <node>      delete phase
//	l <node>      load
//
// Supersteps and processor blocks repeat; ops belong to the most recent
// `p` line. The DAG itself is serialized separately (graph.Write).

// WriteSchedule serializes a schedule (without its DAG).
func WriteSchedule(w io.Writer, s *Schedule) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "mbsp-schedule %d %g %g %g\n", s.Arch.P, s.Arch.R, s.Arch.G, s.Arch.L)
	for i := range s.Steps {
		fmt.Fprintln(bw, "superstep")
		for p := range s.Steps[i].Procs {
			ps := &s.Steps[i].Procs[p]
			if ps.Empty() {
				continue
			}
			fmt.Fprintf(bw, "p %d\n", p)
			for _, op := range ps.Comp {
				if op.Kind == OpCompute {
					fmt.Fprintf(bw, "c %d\n", op.Node)
				} else {
					fmt.Fprintf(bw, "x %d\n", op.Node)
				}
			}
			for _, v := range ps.Save {
				fmt.Fprintf(bw, "s %d\n", v)
			}
			for _, v := range ps.Del {
				fmt.Fprintf(bw, "d %d\n", v)
			}
			for _, v := range ps.Load {
				fmt.Fprintf(bw, "l %d\n", v)
			}
		}
	}
	return bw.Flush()
}

// ReadSchedule parses a schedule in the text format and attaches it to g.
// The schedule is validated before being returned.
func ReadSchedule(r io.Reader, g *graph.DAG) (*Schedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var s *Schedule
	var cur *Superstep
	proc := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "mbsp-schedule":
			if len(fields) != 5 {
				return nil, fmt.Errorf("mbsp: line %d: malformed header", line)
			}
			p, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("mbsp: line %d: bad P: %v", line, err)
			}
			rv, err1 := strconv.ParseFloat(fields[2], 64)
			gv, err2 := strconv.ParseFloat(fields[3], 64)
			lv, err3 := strconv.ParseFloat(fields[4], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("mbsp: line %d: bad architecture parameters", line)
			}
			s = NewSchedule(g, Arch{P: p, R: rv, G: gv, L: lv})
		case "superstep":
			if s == nil {
				return nil, fmt.Errorf("mbsp: line %d: superstep before header", line)
			}
			cur = s.AddSuperstep()
			proc = -1
		case "p":
			if cur == nil {
				return nil, fmt.Errorf("mbsp: line %d: proc before superstep", line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 || v >= s.Arch.P {
				return nil, fmt.Errorf("mbsp: line %d: bad processor id %q", line, fields[1])
			}
			proc = v
		case "c", "x", "s", "d", "l":
			if proc < 0 {
				return nil, fmt.Errorf("mbsp: line %d: op before processor", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("mbsp: line %d: malformed op", line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("mbsp: line %d: bad node id: %v", line, err)
			}
			ps := &cur.Procs[proc]
			switch fields[0] {
			case "c":
				ps.Comp = append(ps.Comp, Op{Kind: OpCompute, Node: v})
			case "x":
				ps.Comp = append(ps.Comp, Op{Kind: OpDelete, Node: v})
			case "s":
				ps.Save = append(ps.Save, v)
			case "d":
				ps.Del = append(ps.Del, v)
			case "l":
				ps.Load = append(ps.Load, v)
			}
		default:
			return nil, fmt.Errorf("mbsp: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("mbsp: empty schedule input")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
