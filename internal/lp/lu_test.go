package lp

import (
	"math"
	"math/rand"
	"testing"
)

// denseSolve solves A·x = b by Gauss elimination with partial pivoting —
// the reference for the LU triangular solves. A is row-major m×m.
func denseSolve(a []float64, b []float64, m int) []float64 {
	mat := append([]float64(nil), a...)
	x := append([]float64(nil), b...)
	piv := make([]int, m)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < m; k++ {
		best, bv := -1, 0.0
		for i := k; i < m; i++ {
			if v := math.Abs(mat[piv[i]*m+k]); v > bv {
				best, bv = i, v
			}
		}
		if best < 0 || bv < 1e-12 {
			return nil
		}
		piv[k], piv[best] = piv[best], piv[k]
		pr := piv[k]
		for i := k + 1; i < m; i++ {
			r := piv[i]
			f := mat[r*m+k] / mat[pr*m+k]
			if f == 0 {
				continue
			}
			for j := k; j < m; j++ {
				mat[r*m+j] -= f * mat[pr*m+j]
			}
			x[r] -= f * x[pr]
		}
	}
	out := make([]float64, m)
	for k := m - 1; k >= 0; k-- {
		r := piv[k]
		v := x[r]
		for j := k + 1; j < m; j++ {
			v -= mat[r*m+j] * out[j]
		}
		out[k] = v / mat[r*m+k]
	}
	return out
}

// randomSparseMatrix builds a random m×m matrix, ~density nonzeros per
// column plus a guaranteed diagonal (so it is almost surely nonsingular),
// returned both dense (row-major) and as a column-gather callback of the
// shape factor() takes.
func randomSparseMatrix(rng *rand.Rand, m int, density float64) ([]float64, func(int) ([]int32, []float64)) {
	dense := make([]float64, m*m)
	cols := make([][]int32, m)
	vals := make([][]float64, m)
	for c := 0; c < m; c++ {
		for r := 0; r < m; r++ {
			if r == c || rng.Float64() < density {
				v := float64(rng.Intn(19)-9) / 2
				if r == c && v == 0 {
					v = 1 + rng.Float64()
				}
				if v == 0 {
					continue
				}
				dense[r*m+c] += v
				cols[c] = append(cols[c], int32(r))
				vals[c] = append(vals[c], v)
			}
		}
	}
	return dense, func(pos int) ([]int32, []float64) { return cols[pos], vals[pos] }
}

// TestLUFactorSolveMatchesDense: factor random sparse matrices and check
// ftran (solve A·x=b) and btran (solve Aᵀ·y=c) against dense Gauss
// elimination.
func TestLUFactorSolveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(30)
		dense, col := randomSparseMatrix(rng, m, 0.15)
		f := newLUFactor(m)
		if !f.factor(col) {
			continue // random exact singularity: rare and legitimate
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = float64(rng.Intn(11) - 5)
		}
		ref := denseSolve(dense, b, m)
		if ref == nil {
			continue
		}
		x := make([]float64, m)
		f.ftran(append([]float64(nil), b...), x)
		for i := range x {
			if math.Abs(x[i]-ref[i]) > 1e-7*(1+math.Abs(ref[i])) {
				t.Fatalf("trial %d m=%d: ftran x[%d]=%g want %g", trial, m, i, x[i], ref[i])
			}
		}
		// Aᵀ solve: reference is dense solve of the transpose.
		denseT := make([]float64, m*m)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				denseT[j*m+i] = dense[i*m+j]
			}
		}
		refT := denseSolve(denseT, b, m)
		if refT == nil {
			continue
		}
		y := make([]float64, m)
		f.btran(append([]float64(nil), b...), y)
		for i := range y {
			if math.Abs(y[i]-refT[i]) > 1e-7*(1+math.Abs(refT[i])) {
				t.Fatalf("trial %d m=%d: btran y[%d]=%g want %g", trial, m, i, y[i], refT[i])
			}
		}
	}
}

// TestLUSingularDetected: a structurally singular basis (a zero column,
// or two identical columns) must be reported, not divided by.
func TestLUSingularDetected(t *testing.T) {
	// Zero column.
	f := newLUFactor(3)
	colsA := [][]int32{{0, 1}, {}, {1, 2}}
	valsA := [][]float64{{1, 2}, {}, {3, 4}}
	if f.factor(func(p int) ([]int32, []float64) { return colsA[p], valsA[p] }) {
		t.Fatal("factor accepted a zero column")
	}
	// Duplicate columns.
	f = newLUFactor(3)
	colsB := [][]int32{{0, 1}, {0, 1}, {2}}
	valsB := [][]float64{{1, 2}, {1, 2}, {1}}
	if f.factor(func(p int) ([]int32, []float64) { return colsB[p], valsB[p] }) {
		t.Fatal("factor accepted duplicate columns")
	}
}

// TestLUDuplicateRowEntriesAccumulate: a column callback may report the
// same row more than once (the CSC gather in sparse.go can); entries must
// sum, matching the dense refactorization this replaced.
func TestLUDuplicateRowEntriesAccumulate(t *testing.T) {
	// Column 0 reports row 0 twice: 2 + 3 = 5. Matrix [[5,0],[0,1]].
	cols := [][]int32{{0, 0}, {1}}
	vals := [][]float64{{2, 3}, {1}}
	f := newLUFactor(2)
	if !f.factor(func(p int) ([]int32, []float64) { return cols[p], vals[p] }) {
		t.Fatal("factor failed")
	}
	x := make([]float64, 2)
	f.ftran([]float64{10, 7}, x)
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-7) > 1e-12 {
		t.Fatalf("x=%v want [2 7]", x)
	}
	// An exact cancellation (2 + (−2)) is a zero column: singular.
	vals[0] = []float64{2, -2}
	f = newLUFactor(2)
	if f.factor(func(p int) ([]int32, []float64) { return cols[p], vals[p] }) {
		t.Fatal("factor accepted a column cancelled to zero")
	}
}

// TestLUEtaUpdateMatchesRefactor: replacing basis columns via the
// product-form eta file must solve the same systems as factoring the
// updated matrix from scratch.
func TestLUEtaUpdateMatchesRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		m := 2 + rng.Intn(20)
		_, col := randomSparseMatrix(rng, m, 0.2)
		f := newLUFactor(m)
		if !f.factor(col) {
			continue
		}
		// Current columns, for the from-scratch cross-check.
		cur := make([][]float64, m) // dense columns
		for c := 0; c < m; c++ {
			d := make([]float64, m)
			ind, val := col(c)
			for k, r := range ind {
				d[r] += val[k]
			}
			cur[c] = d
		}
		// Apply a few eta updates: replace position `leave` with a fresh
		// random column whose FTRAN image has an acceptable pivot.
		for upd := 0; upd < 4; upd++ {
			newCol := make([]float64, m)
			for i := range newCol {
				if rng.Float64() < 0.4 {
					newCol[i] = float64(rng.Intn(9) - 4)
				}
			}
			leave := rng.Intn(m)
			w := make([]float64, m)
			f.ftran(append([]float64(nil), newCol...), w)
			if math.Abs(w[leave]) < 1e-6 {
				continue // unacceptable pivot; the solver would reject it too
			}
			f.appendEta(leave, w)
			cur[leave] = newCol
		}
		if f.nEtas() == 0 {
			continue
		}
		// Cross-check against a from-scratch factorization of the updated
		// matrix.
		g := newLUFactor(m)
		ok := g.factor(func(pos int) ([]int32, []float64) {
			var ind []int32
			var val []float64
			for r, v := range cur[pos] {
				if v != 0 {
					ind = append(ind, int32(r))
					val = append(val, v)
				}
			}
			return ind, val
		})
		if !ok {
			continue
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = float64(rng.Intn(7) - 3)
		}
		x1 := make([]float64, m)
		x2 := make([]float64, m)
		f.ftran(append([]float64(nil), b...), x1)
		g.ftran(append([]float64(nil), b...), x2)
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-6*(1+math.Abs(x2[i])) {
				t.Fatalf("trial %d m=%d etas=%d: eta ftran x[%d]=%g scratch=%g", trial, m, f.nEtas(), i, x1[i], x2[i])
			}
		}
		y1 := make([]float64, m)
		y2 := make([]float64, m)
		f.btran(append([]float64(nil), b...), y1)
		g.btran(append([]float64(nil), b...), y2)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-6*(1+math.Abs(y2[i])) {
				t.Fatalf("trial %d m=%d etas=%d: eta btran y[%d]=%g scratch=%g", trial, m, f.nEtas(), i, y1[i], y2[i])
			}
		}
	}
}

// resultBits serializes every observable field of a Result, solution
// vector at full float bit precision, for exact-equality comparisons.
func resultBits(r Result) string {
	s := ""
	s += r.Status.String()
	s += "/"
	for _, v := range r.X {
		s += "." + uintToHex(math.Float64bits(v))
	}
	s += "/" + uintToHex(math.Float64bits(r.Obj))
	s += "/" + uintToHex(uint64(r.Iters))
	s += "/" + uintToHex(uint64(r.CleanupIters))
	return s
}

func uintToHex(u uint64) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		out[i] = digits[u&0xf]
		u >>= 4
	}
	return string(out)
}

// TestHotMatchesReplayBitwise is the determinism keystone of the LU
// core: re-solving from a basis snapshot must produce bit-identical
// results whether the instance still holds the live factorization that
// captured the snapshot (hot reuse), reconstructs it by replaying the
// snapshot's recipe on a fresh instance, or is forced to reconstruct via
// FreshFactor. Branch-and-bound's worker-count determinism rests on
// exactly this equivalence.
func TestHotMatchesReplayBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for trial := 0; trial < 120; trial++ {
		p := randomLP(rng)
		n := p.NumVars()
		inLive := Prepare(p)
		res := inLive.Solve(p.Lb, p.Ub, Options{})
		if res.Status != Optimal || res.Basis == nil {
			continue
		}
		lb := append([]float64(nil), p.Lb...)
		ub := append([]float64(nil), p.Ub...)
		j := rng.Intn(n)
		ub[j] = math.Floor(lb[j] + rng.Float64()*(ub[j]-lb[j]))
		for _, perturb := range []bool{false, true} {
			opts := Options{Perturb: perturb, PerturbSeq: uint64(trial)}
			// Hot: inLive's factorization is live for res.Basis.
			hot := inLive.SolveFrom(res.Basis, lb, ub, opts)
			hotStats := inLive.Stats()
			// Replay on a fresh instance (no live state at all).
			inFresh := Prepare(p)
			inFresh.Solve(p.Lb, p.Ub, Options{}) // unrelated state to overwrite
			replay := inFresh.SolveFrom(res.Basis, lb, ub, opts)
			// Forced reconstruction on a third instance.
			inForced := Prepare(p)
			forced := inForced.SolveFrom(res.Basis, lb, ub, Options{
				Perturb: perturb, PerturbSeq: uint64(trial), FreshFactor: true,
			})
			if hotStats.HotSolves < 1 {
				t.Fatalf("trial %d perturb=%v: hot path did not fire (stats %+v)", trial, perturb, hotStats)
			}
			hb, rb, fb := resultBits(hot), resultBits(replay), resultBits(forced)
			if hb != rb {
				t.Fatalf("trial %d perturb=%v: hot and replayed solves diverged\nhot:    %s\nreplay: %s", trial, perturb, hb, rb)
			}
			if hb != fb {
				t.Fatalf("trial %d perturb=%v: hot and FreshFactor solves diverged\nhot:    %s\nforced: %s", trial, perturb, hb, fb)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("only %d trials produced a usable basis; fixture degenerated", checked)
	}
}

// TestHotSolvesCounterFires pins the serial-dive hot path end to end
// via the FactorStats counter: a SolveFrom immediately after the solve
// that captured the basis must reuse the live factorization (no
// refactorization, no replay), and an interleaved solve that overwrites
// the live state must force the replay path instead.
func TestHotSolvesCounterFires(t *testing.T) {
	p := NewProblem(3)
	p.Obj = []float64{-4, -5, -3}
	for j := range p.Ub {
		p.Ub[j] = 1
	}
	p.AddRow([]Coef{{0, 2}, {1, 3}, {2, 1}}, LE, 4)
	in := Prepare(p)
	res := in.Solve(p.Lb, p.Ub, Options{})
	if res.Status != Optimal || res.Basis == nil {
		t.Fatalf("cold: %+v", res)
	}
	base := in.Stats()
	lb := append([]float64(nil), p.Lb...)
	ub := append([]float64(nil), p.Ub...)
	ub[1] = 0
	// Dive: basis is the live one → hot, no new refactorization needed
	// to start the solve.
	warm := in.SolveFrom(res.Basis, lb, ub, Options{})
	if warm.Status != Optimal {
		t.Fatalf("warm: %+v", warm)
	}
	st := in.Stats()
	if got := st.HotSolves - base.HotSolves; got != 1 {
		t.Fatalf("dive HotSolves=%d want 1 (stats %+v)", got, st)
	}
	if st.Replays != base.Replays {
		t.Fatalf("dive took the replay path (stats %+v)", st)
	}
	// Interleave a solve that overwrites the live factorization; the
	// old basis must now reconstruct (replay), not hot-reuse.
	if r := in.Solve(p.Lb, p.Ub, Options{}); r.Status != Optimal {
		t.Fatalf("interleaved: %+v", r)
	}
	base = in.Stats()
	warm2 := in.SolveFrom(warm.Basis, lb, ub, Options{})
	if warm2.Status != Optimal {
		t.Fatalf("warm2: %+v", warm2)
	}
	st = in.Stats()
	if st.HotSolves != base.HotSolves {
		t.Fatalf("stale basis hot-reused a mismatched factorization (stats %+v)", st)
	}
	// FreshFactor must bypass the hot path even when it would match.
	res3 := in.Solve(p.Lb, p.Ub, Options{})
	base = in.Stats()
	if r := in.SolveFrom(res3.Basis, lb, ub, Options{FreshFactor: true}); r.Status != Optimal {
		t.Fatalf("fresh: %+v", r)
	}
	st = in.Stats()
	if st.HotSolves != base.HotSolves {
		t.Fatalf("FreshFactor did not bypass the hot path (stats %+v)", st)
	}
}
