package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func solve(t *testing.T, p *Problem) Result {
	t.Helper()
	res := Solve(p, Options{})
	return res
}

func wantObj(t *testing.T, res Result, obj float64) {
	t.Helper()
	if res.Status != Optimal {
		t.Fatalf("status=%v", res.Status)
	}
	if math.Abs(res.Obj-obj) > 1e-6 {
		t.Fatalf("obj=%g want %g (x=%v)", res.Obj, obj, res.X)
	}
}

func TestTrivialBounds(t *testing.T) {
	// min x subject to 1 ≤ x ≤ 4.
	p := NewProblem(1)
	p.Obj[0] = 1
	p.Lb[0] = 1
	p.Ub[0] = 4
	wantObj(t, solve(t, p), 1)
}

func TestMaximizeViaNegation(t *testing.T) {
	// max x ⇔ min −x, x ≤ 4.
	p := NewProblem(1)
	p.Obj[0] = -1
	p.Ub[0] = 4
	wantObj(t, solve(t, p), -4)
}

func TestSimple2D(t *testing.T) {
	// min −x−2y s.t. x+y ≤ 4, x ≤ 2, y ≤ 3 → x=1? Optimal: y=3, x=1 → −7.
	p := NewProblem(2)
	p.Obj[0], p.Obj[1] = -1, -2
	p.Ub[0], p.Ub[1] = 2, 3
	p.AddRow([]Coef{{0, 1}, {1, 1}}, LE, 4)
	res := solve(t, p)
	wantObj(t, res, -7)
	if math.Abs(res.X[0]-1) > 1e-6 || math.Abs(res.X[1]-3) > 1e-6 {
		t.Fatalf("x=%v", res.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x+y s.t. x+y = 5, x,y ≥ 0 → 5.
	p := NewProblem(2)
	p.Obj[0], p.Obj[1] = 1, 1
	p.AddRow([]Coef{{0, 1}, {1, 1}}, EQ, 5)
	wantObj(t, solve(t, p), 5)
}

func TestGEConstraintNeedsPhase1(t *testing.T) {
	// min x s.t. x ≥ 3 (as row) → 3.
	p := NewProblem(1)
	p.Obj[0] = 1
	p.AddRow([]Coef{{0, 1}}, GE, 3)
	wantObj(t, solve(t, p), 3)
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.Ub[0] = 1
	p.AddRow([]Coef{{0, 1}}, GE, 2)
	if res := Solve(p, Options{}); res.Status != Infeasible {
		t.Fatalf("status=%v", res.Status)
	}
}

func TestInfeasibleBounds(t *testing.T) {
	p := NewProblem(1)
	p.Lb[0] = 3
	p.Ub[0] = 2
	if res := Solve(p, Options{}); res.Status != Infeasible {
		t.Fatalf("status=%v", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.Obj[0] = -1 // max x, no upper bound
	if res := Solve(p, Options{}); res.Status != Unbounded {
		t.Fatalf("status=%v", res.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x s.t. x ≥ −5 (x free otherwise) → −5.
	p := NewProblem(1)
	p.Obj[0] = 1
	p.Lb[0] = math.Inf(-1)
	p.AddRow([]Coef{{0, 1}}, GE, -5)
	wantObj(t, solve(t, p), -5)
}

func TestFreeVariableDecreases(t *testing.T) {
	// min x, x free, x+y = 0, 0 ≤ y ≤ 3 → x = −3.
	p := NewProblem(2)
	p.Obj[0] = 1
	p.Lb[0] = math.Inf(-1)
	p.Ub[1] = 3
	p.AddRow([]Coef{{0, 1}, {1, 1}}, EQ, 0)
	wantObj(t, solve(t, p), -3)
}

func TestDegenerateProblem(t *testing.T) {
	// Klee-Minty-ish small degenerate instance; just verify termination
	// and optimality.
	p := NewProblem(3)
	p.Obj[0], p.Obj[1], p.Obj[2] = -100, -10, -1
	p.AddRow([]Coef{{0, 1}}, LE, 1)
	p.AddRow([]Coef{{0, 20}, {1, 1}}, LE, 100)
	p.AddRow([]Coef{{0, 200}, {1, 20}, {2, 1}}, LE, 10000)
	res := solve(t, p)
	if res.Status != Optimal {
		t.Fatalf("status=%v", res.Status)
	}
	if res.Obj > -10000+1e-4 {
		t.Fatalf("obj=%g want −10000", res.Obj)
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 supplies (3, 5), 2 demands (4, 4); costs [[1 2][3 1]].
	// Optimal: x00=3, x10=1, x11=4 → 3+3+4 = 10.
	p := NewProblem(4) // x00 x01 x10 x11
	p.Obj = []float64{1, 2, 3, 1}
	p.AddRow([]Coef{{0, 1}, {1, 1}}, LE, 3)
	p.AddRow([]Coef{{2, 1}, {3, 1}}, LE, 5)
	p.AddRow([]Coef{{0, 1}, {2, 1}}, GE, 4)
	p.AddRow([]Coef{{1, 1}, {3, 1}}, GE, 4)
	wantObj(t, solve(t, p), 10)
}

func TestNegativeRHSRows(t *testing.T) {
	// min y s.t. −x − y ≤ −4, x ≤ 3 → y ≥ 1.
	p := NewProblem(2)
	p.Obj[1] = 1
	p.Ub[0] = 3
	p.AddRow([]Coef{{0, -1}, {1, -1}}, LE, -4)
	wantObj(t, solve(t, p), 1)
}

func TestFixedVariable(t *testing.T) {
	p := NewProblem(2)
	p.Obj[0], p.Obj[1] = 1, 1
	p.Lb[0], p.Ub[0] = 2, 2 // fixed
	p.AddRow([]Coef{{0, 1}, {1, 1}}, GE, 5)
	wantObj(t, solve(t, p), 5) // x=2, y=3
}

func TestLPRelaxationOfKnapsack(t *testing.T) {
	// max 4a+5b+3c st 2a+3b+c ≤ 4, binaries relaxed → fractional optimum.
	p := NewProblem(3)
	p.Obj = []float64{-4, -5, -3}
	for j := range p.Ub {
		p.Ub[j] = 1
	}
	p.AddRow([]Coef{{0, 2}, {1, 3}, {2, 1}}, LE, 4)
	res := solve(t, p)
	// a=1, c=1, b=1/3 → 4+3+5/3 = 8.6667.
	wantObj(t, res, -(4 + 3 + 5.0/3.0))
}

// Property: on random feasible LPs with known interior point, the solver
// returns a solution satisfying all constraints within tolerance and with
// objective no worse than the known point's.
func TestRandomFeasibleLPs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		p := NewProblem(n)
		x0 := make([]float64, n) // known feasible point
		for j := 0; j < n; j++ {
			p.Obj[j] = float64(rng.Intn(11) - 5)
			p.Ub[j] = float64(1 + rng.Intn(10))
			x0[j] = rng.Float64() * p.Ub[j]
		}
		for i := 0; i < m; i++ {
			var coefs []Coef
			lhs := 0.0
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.6 {
					v := float64(rng.Intn(7) - 3)
					if v != 0 {
						coefs = append(coefs, Coef{j, v})
						lhs += v * x0[j]
					}
				}
			}
			if len(coefs) == 0 {
				continue
			}
			if rng.Float64() < 0.5 {
				p.AddRow(coefs, LE, lhs+rng.Float64()*3)
			} else {
				p.AddRow(coefs, GE, lhs-rng.Float64()*3)
			}
		}
		res := Solve(p, Options{})
		if res.Status != Optimal {
			return false // feasible and bounded (bounded box) ⇒ must be optimal
		}
		// Check feasibility of returned point.
		for j := 0; j < n; j++ {
			if res.X[j] < p.Lb[j]-1e-6 || res.X[j] > p.Ub[j]+1e-6 {
				return false
			}
		}
		for _, row := range p.Rows {
			lhs := 0.0
			for _, c := range row.Coefs {
				lhs += c.Val * res.X[c.Var]
			}
			switch row.Sense {
			case LE:
				if lhs > row.RHS+1e-5 {
					return false
				}
			case GE:
				if lhs < row.RHS-1e-5 {
					return false
				}
			case EQ:
				if math.Abs(lhs-row.RHS) > 1e-5 {
					return false
				}
			}
		}
		// Objective at least as good as the known feasible point.
		ref := 0.0
		for j := 0; j < n; j++ {
			ref += p.Obj[j] * x0[j]
		}
		return res.Obj <= ref+1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration-limit" {
		t.Fatal("status strings")
	}
}

func TestDeadlineAborts(t *testing.T) {
	// A problem big enough to take a few iterations; an already-expired
	// deadline must abort with IterLimit.
	p := NewProblem(50)
	for j := 0; j < 50; j++ {
		p.Obj[j] = -1
		p.Ub[j] = 10
	}
	for i := 0; i < 40; i++ {
		var coefs []Coef
		for j := 0; j < 50; j += 2 {
			coefs = append(coefs, Coef{j, 1})
		}
		p.AddRow(coefs, LE, float64(50+i))
	}
	res := Solve(p, Options{Deadline: time.Now().Add(-time.Second)})
	if res.Status != IterLimit {
		t.Fatalf("status=%v want iteration-limit", res.Status)
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicate rows should not confuse the solver.
	p := NewProblem(2)
	p.Obj[0], p.Obj[1] = -1, -1
	p.Ub[0], p.Ub[1] = 5, 5
	for i := 0; i < 4; i++ {
		p.AddRow([]Coef{{0, 1}, {1, 1}}, LE, 6)
	}
	wantObj(t, solve(t, p), -6)
}

func TestZeroCoefficientsIgnored(t *testing.T) {
	p := NewProblem(1)
	p.Obj[0] = 1
	p.AddRow([]Coef{{0, 0}}, GE, 0) // vacuous
	p.AddRow([]Coef{{0, 1}}, GE, 2)
	wantObj(t, solve(t, p), 2)
}

func TestEmptyProblem(t *testing.T) {
	p := NewProblem(0)
	res := Solve(p, Options{})
	if res.Status != Optimal || res.Obj != 0 {
		t.Fatalf("empty problem: %+v", res)
	}
}

func TestTightEqualityChain(t *testing.T) {
	// x0 = 1, x_{i} = x_{i-1} forces all equal; minimize Σ x.
	n := 8
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.Obj[j] = 1
		p.Ub[j] = 10
	}
	p.AddRow([]Coef{{0, 1}}, EQ, 1)
	for j := 1; j < n; j++ {
		p.AddRow([]Coef{{j, 1}, {j - 1, -1}}, EQ, 0)
	}
	wantObj(t, solve(t, p), float64(n))
}
