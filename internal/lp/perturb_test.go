package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPerturbShiftsRemoved is the contract test for EXPAND clean-up:
// a perturbed solve must report exactly the same answer as an
// unperturbed one — same status, same objective, and a point that lies
// within the TRUE bounds, with no shift residue. If finish() ever
// forgot to restore a bound or a cost, random instances here would
// leak a ~1e-14 displacement and the bound check would trip.
func TestPerturbShiftsRemoved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomLP(rng)
		plain := Solve(p, Options{})
		pert := Solve(p, Options{Perturb: true, PerturbSeq: uint64(seed)})
		if plain.Status != pert.Status {
			t.Logf("seed %d: plain=%v perturbed=%v", seed, plain.Status, pert.Status)
			return false
		}
		if plain.Status != Optimal {
			return true
		}
		if !pert.Perturbed {
			t.Logf("seed %d: Result.Perturbed not set", seed)
			return false
		}
		if math.Abs(plain.Obj-pert.Obj) > 1e-9*(1+math.Abs(plain.Obj)) {
			t.Logf("seed %d: plain obj=%g perturbed obj=%g", seed, plain.Obj, pert.Obj)
			return false
		}
		for j := range pert.X {
			if pert.X[j] < p.Lb[j]-1e-9 || pert.X[j] > p.Ub[j]+1e-9 {
				t.Logf("seed %d: x[%d]=%g outside true bounds [%g,%g] — shift residue",
					seed, j, pert.X[j], p.Lb[j], p.Ub[j])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestPerturbDeterministic: the shifts are a pure function of
// (fingerprint, PerturbSeq), so repeating a perturbed solve must give a
// byte-identical result — same iterate path, same iteration count, same
// X vector bit for bit. This is the lp-level half of the mip package's
// byte-identical-for-any-worker-count contract.
func TestPerturbDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		p := randomLP(rng)
		opts := Options{Perturb: true, PerturbSeq: uint64(trial * 13)}
		a := Solve(p, opts)
		b := Solve(p, opts)
		if a.Status != b.Status || a.Iters != b.Iters || a.Obj != b.Obj {
			t.Fatalf("trial %d: repeat solve diverged: (%v,%d,%g) vs (%v,%d,%g)",
				trial, a.Status, a.Iters, a.Obj, b.Status, b.Iters, b.Obj)
		}
		for j := range a.X {
			if math.Float64bits(a.X[j]) != math.Float64bits(b.X[j]) {
				t.Fatalf("trial %d: x[%d] differs bitwise: %v vs %v", trial, j, a.X[j], b.X[j])
			}
		}
	}
}

// TestPerturbSeqInvariance: different perturbation seeds may walk
// different pivot paths but must land on the same optimal value —
// PerturbSeq is a tie-breaking device, not a model change.
func TestPerturbSeqInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		p := randomLP(rng)
		base := Solve(p, Options{})
		if base.Status != Optimal {
			continue
		}
		for _, seq := range []uint64{0, 1, 2, 1 << 40, ^uint64(0)} {
			r := Solve(p, Options{Perturb: true, PerturbSeq: seq})
			if r.Status != Optimal {
				t.Fatalf("trial %d seq %d: status %v (base Optimal)", trial, seq, r.Status)
			}
			if math.Abs(r.Obj-base.Obj) > 1e-9*(1+math.Abs(base.Obj)) {
				t.Fatalf("trial %d seq %d: obj=%g base=%g", trial, seq, r.Obj, base.Obj)
			}
		}
	}
}

// TestPerturbUnitRange pins the EXPAND shift recipe: units live in
// [1/2, 1) so no bound ever receives a near-zero (tie-preserving) shift,
// and the mapping is seed-sensitive.
func TestPerturbUnitRange(t *testing.T) {
	distinct := map[float64]bool{}
	for seed := uint64(0); seed < 16; seed++ {
		for k := uint64(0); k < 64; k++ {
			u := perturbUnit(seed, k)
			if u < 0.5 || u >= 1 {
				t.Fatalf("perturbUnit(%d,%d)=%g outside [0.5,1)", seed, k, u)
			}
			distinct[u] = true
		}
	}
	if len(distinct) < 1000 {
		t.Fatalf("perturbUnit collapsed: only %d distinct values in 1024 draws", len(distinct))
	}
}

// TestFingerprintStability: the instance fingerprint must be a pure
// function of the assembled matrix — identical problems hash equal,
// a one-coefficient change hashes different.
func TestFingerprintStability(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomLP(rng)
	a := Prepare(p)
	b := Prepare(p)
	if a.fprint != b.fprint {
		t.Fatalf("same problem, different fingerprints: %x vs %x", a.fprint, b.fprint)
	}
	q := randomLP(rng)
	c := Prepare(q)
	if a.fprint == c.fprint {
		t.Fatalf("different problems share fingerprint %x", a.fprint)
	}
}
