package lp

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzSolveFrom is the property harness for the warm-start hot path: on
// a random bounded LP, solve cold, apply a chain of random bound changes
// — tightenings, relaxations and box moves, not just the branching
// tightenings the hand-written cross-checks exercise — and dual-
// reoptimize each step from the previous basis. Every warm result must
// agree with the preserved dense cold-start solver on status and (for
// optima) objective. This is where bound-flipping ratio-test edge cases
// live: a stale basis whose nonbasic columns were snapped to moved
// bounds, repaired boxes that un-cross, rows that flip between binding
// and slack.
//
// `go test` runs the seed corpus below; `go test -fuzz FuzzSolveFrom
// ./internal/lp` explores further.
func FuzzSolveFrom(f *testing.F) {
	for seed := int64(0); seed < 48; seed++ {
		f.Add(seed, uint16(uint64(seed*2654435761)&0xffff))
	}
	f.Fuzz(func(t *testing.T, seed int64, mutations uint16) {
		rng := rand.New(rand.NewSource(seed))
		p := randomLP(rng)
		n := p.NumVars()
		in := Prepare(p)
		// A second instance of the same problem replays every warm solve
		// from the basis snapshot alone: SolveFrom must be a pure function
		// of (matrix, basis, bounds, options), so the replica — whose
		// live factorization history is completely different — must
		// reproduce each result bit for bit. This is the LU replay-recipe
		// chain under fuzz: each step's basis carries the previous steps'
		// eta script.
		rep := Prepare(p)
		lb := append([]float64(nil), p.Lb...)
		ub := append([]float64(nil), p.Ub...)
		res := in.Solve(lb, ub, Options{})
		if res.Status != Optimal {
			return
		}
		basis := res.Basis
		// Each pair of bits of the fuzzed word drives one mutation kind;
		// the rng supplies the magnitudes. Bounds stay finite and ordered,
		// so every chained LP remains bounded.
		for step := 0; step < 8 && basis != nil; step++ {
			j := rng.Intn(n)
			switch (mutations >> (2 * (step % 8))) & 3 {
			case 0: // branch-style tightening of the upper bound
				ub[j] = math.Floor(lb[j] + rng.Float64()*(ub[j]-lb[j]))
			case 1: // branch-style tightening of the lower bound
				lb[j] = math.Ceil(lb[j] + rng.Float64()*(ub[j]-lb[j]))
			case 2: // relaxation: widen the box again
				lb[j] = math.Max(0, lb[j]-float64(rng.Intn(4)))
				ub[j] += float64(rng.Intn(4))
			default: // box move: slide both bounds
				shift := float64(rng.Intn(5) - 2)
				lb[j] = math.Max(0, lb[j]+shift)
				ub[j] += shift
			}
			if lb[j] > ub[j] {
				lb[j], ub[j] = ub[j], lb[j]
			}
			warm := in.SolveFrom(basis, lb, ub, Options{})
			if echo := rep.SolveFrom(basis, lb, ub, Options{}); resultBits(echo) != resultBits(warm) {
				t.Fatalf("seed %d step %d: replayed solve diverged from live solve\nlive:   %s\nreplay: %s",
					seed, step, resultBits(warm), resultBits(echo))
			}
			cold := SolveDense(&Problem{Obj: p.Obj, Lb: lb, Ub: ub, Rows: p.Rows}, Options{})
			// The perturbed warm path must agree too: shifts are removed
			// before a result is reported, so EXPAND is invisible here.
			warmP := in.SolveFrom(basis, lb, ub, Options{Perturb: true, PerturbSeq: uint64(step + 1)})
			if warm.Status == IterLimit || cold.Status == IterLimit {
				return // budget artifacts are not a disagreement
			}
			if warmP.Status != IterLimit {
				if (warmP.Status == Optimal) != (cold.Status == Optimal) {
					t.Fatalf("seed %d step %d: perturbed warm=%v cold=%v (coldRestart=%v)",
						seed, step, warmP.Status, cold.Status, warmP.ColdRestart)
				}
				if warmP.Status == Optimal && cold.Status == Optimal &&
					math.Abs(warmP.Obj-cold.Obj) > 1e-9*(1+math.Abs(cold.Obj)) {
					t.Fatalf("seed %d step %d: perturbed warm obj=%g cold obj=%g",
						seed, step, warmP.Obj, cold.Obj)
				}
			}
			if warm.Status == Unbounded || cold.Status == Unbounded {
				// Box bounds keep the chain bounded; an unbounded verdict
				// would be its own bug, caught by the status comparison.
				if warm.Status != cold.Status {
					t.Fatalf("seed %d step %d: warm=%v cold=%v", seed, step, warm.Status, cold.Status)
				}
				return
			}
			if (warm.Status == Optimal) != (cold.Status == Optimal) {
				t.Fatalf("seed %d step %d: warm=%v cold=%v (coldRestart=%v)",
					seed, step, warm.Status, cold.Status, warm.ColdRestart)
			}
			if warm.Status != Optimal {
				return // both infeasible: the chain is dead
			}
			if math.Abs(warm.Obj-cold.Obj) > 1e-9*(1+math.Abs(cold.Obj)) {
				t.Fatalf("seed %d step %d: warm obj=%g cold obj=%g (coldRestart=%v)",
					seed, step, warm.Obj, cold.Obj, warm.ColdRestart)
			}
			basis = warm.Basis
		}
	})
}
