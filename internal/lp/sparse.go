package lp

import (
	"math"
	"sort"
	"time"
)

// Instance is a prepared LP: the rows assembled once into sparse
// column-major (CSC) storage, with bounds supplied per solve. It is the
// re-solve engine of branch-and-bound, where thousands of bound
// variations share one constraint matrix. An Instance owns a reusable
// solver workspace and is therefore NOT safe for concurrent use; separate
// goroutines must Prepare separate instances.
type Instance struct {
	m       int       // rows
	nStruct int       // structural variables
	obj     []float64 // length nStruct
	rhs     []float64 // length m

	// CSC over nStruct+m columns: structural columns then one slack per
	// row (slack j = nStruct+i has the single entry (i, 1)).
	colPtr []int32
	rowIdx []int32
	vals   []float64

	slackLb, slackUb []float64 // per row, fixed by the row sense

	// fprint is a content hash of the assembled instance, the per-matrix
	// half of the EXPAND perturbation seed (see perturb.go).
	fprint uint64

	ws *spx // lazily allocated, reused across sequential solves

	stats FactorStats // cumulative factorization counters (see Stats)
}

// FactorStats counts the factorization work an Instance has performed
// since Prepare. The counters are workspace-level bookkeeping: hot-path
// reuse and refactorization cadence depend on which solves ran on this
// instance, so they are deliberately NOT part of Result (whose fields
// must stay byte-identical across worker schedules) — callers aggregate
// them out of band (mip.Options.LUStats, the solver benchmark's LU leg).
type FactorStats struct {
	Refactors int64 // Markowitz factorizations (cold starts, reconstructions, cadence rebuilds)
	Replays   int64 // recipe reconstructions that re-applied a nonempty eta script
	HotSolves int64 // SolveFrom calls that reused the live factorization unchanged
	EtaPivots int64 // product-form updates appended across all solves
	Ftrans    int64 // sparse triangular FTRAN solves
	Btrans    int64 // sparse triangular BTRAN solves
	// FactorNanos and SolveNanos split the time spent inside the LU
	// kernel: factorizations vs triangular solves (the benchmark's "FTRAN
	// time share" reads SolveNanos against the whole solve wall clock).
	FactorNanos int64
	SolveNanos  int64
	// FillNnz and BasisNnz describe the most recent factorization:
	// nnz(L)+nnz(U) against nnz(B). Their ratio is the fill-in factor the
	// benchmark gates on.
	FillNnz  int64
	BasisNnz int64
}

// Add accumulates o into st (aggregation across worker instances).
func (st *FactorStats) Add(o FactorStats) {
	st.Refactors += o.Refactors
	st.Replays += o.Replays
	st.HotSolves += o.HotSolves
	st.EtaPivots += o.EtaPivots
	st.Ftrans += o.Ftrans
	st.Btrans += o.Btrans
	st.FactorNanos += o.FactorNanos
	st.SolveNanos += o.SolveNanos
	if o.FillNnz > 0 {
		st.FillNnz, st.BasisNnz = o.FillNnz, o.BasisNnz
	}
}

// Stats returns the instance's cumulative factorization counters.
func (in *Instance) Stats() FactorStats { return in.stats }

// Prepare assembles p's rows into an Instance. Subsequent bound changes
// are passed to Solve/SolveFrom; changes to p itself are not observed.
func Prepare(p *Problem) *Instance {
	m, n := len(p.Rows), p.NumVars()
	in := &Instance{
		m:       m,
		nStruct: n,
		obj:     append([]float64(nil), p.Obj...),
		rhs:     make([]float64, m),
		slackLb: make([]float64, m),
		slackUb: make([]float64, m),
	}
	nTot := n + m
	count := make([]int32, nTot)
	nnz := 0
	for _, row := range p.Rows {
		for _, c := range row.Coefs {
			if c.Val != 0 {
				count[c.Var]++
				nnz++
			}
		}
	}
	in.colPtr = make([]int32, nTot+1)
	for j := 0; j < n; j++ {
		in.colPtr[j+1] = in.colPtr[j] + count[j]
	}
	for i := 0; i < m; i++ { // slack columns: one entry each
		in.colPtr[n+i+1] = in.colPtr[n+i] + 1
	}
	in.rowIdx = make([]int32, nnz+m)
	in.vals = make([]float64, nnz+m)
	next := make([]int32, nTot)
	copy(next, in.colPtr[:nTot])
	for i, row := range p.Rows {
		in.rhs[i] = row.RHS
		for _, c := range row.Coefs {
			if c.Val == 0 {
				continue
			}
			k := next[c.Var]
			in.rowIdx[k] = int32(i)
			in.vals[k] = c.Val
			next[c.Var] = k + 1
		}
		k := next[n+i]
		in.rowIdx[k] = int32(i)
		in.vals[k] = 1
		switch row.Sense {
		case LE:
			in.slackLb[i], in.slackUb[i] = 0, Inf
		case GE:
			in.slackLb[i], in.slackUb[i] = math.Inf(-1), 0
		case EQ:
			in.slackLb[i], in.slackUb[i] = 0, 0
		}
	}
	in.fprint = in.fingerprint()
	return in
}

// Fingerprint returns the instance's content hash: the per-matrix half of
// the key under which the EXPAND perturbation and fault injection make
// their deterministic decisions.
func (in *Instance) Fingerprint() uint64 { return in.fprint }

// Solve cold-solves the instance under the given structural bounds:
// phase-1 artificial start, then primal simplex on the true objective.
func (in *Instance) Solve(lb, ub []float64, opts Options) Result {
	s := in.workspace(&opts)
	s.liveBasis = nil // the live factorization is about to be overwritten
	if !s.resetBounds(lb, ub) {
		return Result{Status: Infeasible}
	}
	s.coldStart()

	iters := 0
	if s.nArt > 0 {
		// Phase 1: minimize the sum of artificials.
		c1 := make([]float64, s.n)
		for j := s.nTot; j < s.n; j++ {
			c1[j] = 1
		}
		st, it := s.primal(c1, opts.MaxIters)
		iters += it
		if st == IterLimit {
			return s.result(IterLimit, iters, false)
		}
		sum := 0.0
		for j := s.nTot; j < s.n; j++ {
			sum += s.x[j]
		}
		if sum > 1e-6 {
			return Result{Status: Infeasible, Iters: iters}
		}
		// Freeze artificials at zero for phase 2.
		for j := s.nTot; j < s.n; j++ {
			s.ub[j] = 0
			s.x[j] = 0
		}
	}
	st, it := s.primal(s.obj2, opts.MaxIters-iters)
	iters += it
	if st == Optimal {
		st, it = s.finish(opts.MaxIters - iters)
		iters += it
		s.cleanupIters += it
	}
	return s.result(st, iters, false)
}

// SolveFrom reoptimizes from a previously returned basis after bound
// changes, using the bounded-variable dual simplex: the supplied basis
// stays dual feasible when only bounds moved (the branch-and-bound case),
// so a handful of dual pivots restore primal feasibility where a cold
// solve would replay phases 1 and 2 from scratch. When the basis is the
// instance's most recent one, the live factorization is reused; otherwise
// the basis inverse is refactorized from the snapshot. On numerical
// trouble or a stalled dual it transparently falls back to a cold solve
// (Result.ColdRestart reports this).
func (in *Instance) SolveFrom(basis *Basis, lb, ub []float64, opts Options) Result {
	if basis == nil || len(basis.basic) != in.m || len(basis.stat) != in.nStruct+in.m {
		res := in.Solve(lb, ub, opts)
		res.ColdRestart = true
		return res
	}
	if opts.Inject != nil && opts.Inject.ForceColdFallback(in.fprint, opts.PerturbSeq) {
		// Injected fault: pretend the supplied basis was unusable and take
		// the cold-restart path. Decided purely from (fprint, PerturbSeq),
		// so the same solve injects on every run and worker.
		res := in.Solve(lb, ub, opts)
		res.ColdRestart = true
		res.Injected = true
		return res
	}
	s := in.workspace(&opts)
	// Hot path: the supplied snapshot is the instance's most recent
	// capture and the live factorization still matches it — skip
	// reconstruction entirely. Results are unchanged either way: the live
	// state is bitwise equal to what reconstruct() would rebuild from the
	// snapshot's recipe, so hot reuse is purely a speed decision and the
	// relaxation stays a pure function of (matrix, basis, bounds, seq).
	hot := !opts.FreshFactor && basis == s.liveBasis && s.factorOK
	s.liveBasis = nil
	if !s.resetBounds(lb, ub) {
		return Result{Status: Infeasible}
	}
	s.installBasis(basis)
	if opts.Perturb {
		s.perturbCosts()
	}
	// Injected fault: treat refactorization of this basis as singular,
	// exercising the same numerical-failure fallback a real singular basis
	// would take.
	singular := opts.Inject != nil && opts.Inject.SingularRefactor(in.fprint, opts.PerturbSeq)
	if singular || (!hot && !s.reconstruct(basis)) {
		res := in.Solve(lb, ub, opts)
		res.ColdRestart = true
		res.Injected = singular
		return res
	}
	if hot {
		in.stats.HotSolves++
	}
	s.computeXB()

	// Dual reoptimization with a deliberately tight budget: a dual that
	// has not finished within ~m/4 iterations is almost always stalling,
	// and every additional iteration it burns comes on top of the cold
	// solve it will fall back to anyway — failing fast keeps the warm path
	// a strict win. With perturbation on (the default), warm re-solves on
	// the degenerate scheduling models were measured to finish well inside
	// this budget once the BFRT pivots at every crossing breakpoint; the
	// budget is the backstop for NoPerturb runs and pathological handoffs.
	dualBudget := 50 + s.m/4
	if opts.MaxIters < dualBudget {
		dualBudget = opts.MaxIters
	}
	st, it := s.dual(dualBudget)
	iters := it
	switch st {
	case Infeasible:
		// The perturbed feasible region contains the true one (bounds only
		// ever expand), so infeasibility on the working bounds is
		// infeasibility on the exact bounds too.
		return Result{Status: Infeasible, Iters: iters, Perturbed: s.didPerturb}
	case IterLimit:
		if s.aborted() {
			return s.result(IterLimit, iters, false)
		}
		res := in.Solve(lb, ub, opts)
		res.ColdRestart = true
		res.Iters += iters
		return res
	}
	// Primal cleanup: a no-op when the dual finished cleanly, and the
	// safety net when reduced costs drifted across the basis handoff.
	st, it = s.primal(s.obj2, opts.MaxIters-iters)
	iters += it
	if st == Optimal {
		st, it = s.finish(opts.MaxIters - iters)
		iters += it
		s.cleanupIters += it
		switch st {
		case Infeasible:
			return Result{Status: Infeasible, Iters: iters, Perturbed: s.didPerturb}
		case IterLimit:
			if s.aborted() {
				return s.result(IterLimit, iters, false)
			}
			// The clean-up stalled on this basis: cold-restart against the
			// exact bounds rather than report a point that still carries
			// shift residuals.
			res := in.Solve(lb, ub, opts)
			res.ColdRestart = true
			res.Iters += iters
			return res
		}
	}
	return s.result(st, iters, false)
}

// spx is the solver workspace: sparse simplex state reused across
// sequential solves of one Instance.
type spx struct {
	in   *Instance
	m    int // rows
	nTot int // structural + slack columns
	n    int // nTot + live artificials
	nArt int

	lb, ub []float64
	// lbTrue/ubTrue hold the exact caller bounds while lb/ub carry the
	// EXPAND-perturbed working bounds; finish() restores them. perturbed
	// is live state (shifts currently applied), didPerturb records that
	// the solve perturbed at all (reported as Result.Perturbed).
	lbTrue, ubTrue        []float64
	perturbed, didPerturb bool
	costPerturbed         bool
	cleanupIters          int
	obj2                  []float64 // phase-2 objective (structural costs, zeros elsewhere)
	x                     []float64
	stat                  []vstat
	basis                 []int
	lu                    *luFactor // sparse LU of the basis + product-form eta file

	artRow  []int32 // artificial j = nTot+k sits in row artRow[k]
	artSign []float64

	y, w, rho, resid []float64
	gamma            []float64 // Devex reference weights
	fscratch         []float64 // FTRAN/BTRAN right-hand-side scratch, length m
	xb               []float64 // computeXB solution scratch, length m

	// Dual ratio-test candidate scratch (Harris pass 2 re-reads what pass
	// 1 computed instead of re-scanning the columns).
	candJ   []int32
	candA   []float64 // |alpha| per candidate
	candR   []float64 // strict ratio per candidate
	candIdx []int     // candidate order scratch for the BFRT ratio sort
	acc     []float64 // accumulated flipped-column updates (dense m-vector)

	// Live-factorization identity and the replay recipe. The recipe is
	// the determinism device: the live factor state is always exactly
	// factor(anchor) followed by the eta script, each script eta
	// recomputed as the FTRAN of its entering column at replay time — so
	// a workspace that reconstructs a captured (anchor, script) recipe
	// reaches bit-for-bit the same factor state the live path holds, and
	// hot reuse (skipping reconstruction entirely) cannot change a single
	// bit of any subsequent result. See DESIGN.md ("Sparse LU core").
	liveBasis  *Basis     // snapshot matching the live factorization, if any
	factorOK   bool
	anchor     []int32    // basis at the factorization anchor; immutable once set
	script     []pivotRec // pivots applied since the anchor, in order
	replayable bool       // false when the anchor or script references artificial columns
	pivots     int        // eta updates since the last refactorization (= len(script))

	opts     *Options
	eps      float64
	deadline time.Time
	cancel   <-chan struct{}
	abortSet bool

	// Tolerances derived from Options.Eps in workspace(); see their uses
	// for the roles.
	pivotTol   float64 // unusable-pivot cutoff (was hard-coded 1e-12)
	alphaTol   float64 // dual ratio-test pivot eligibility (was 1e-9)
	primalBand float64 // Harris primal band: per-bound flex in ratio pass 1
	dualBand   float64 // Harris dual band: allowed dual-feasibility slack
	dualTol    float64 // primal-feasibility threshold of the dual's leaving row
}

// workspace returns the reusable solver state, (re)allocating on first
// use, and applies option defaults.
func (in *Instance) workspace(opts *Options) *spx {
	if opts.Eps == 0 {
		opts.Eps = defaultEps
	}
	if opts.MaxIters == 0 {
		opts.MaxIters = 50*(in.m+in.nStruct) + 1000
	}
	if opts.RefactorEvery == 0 {
		opts.RefactorEvery = defaultRefactorEvery
	}
	if in.ws == nil {
		m, nTot := in.m, in.nStruct+in.m
		total := nTot + m // artificials at most one per row
		in.ws = &spx{
			in: in, m: m, nTot: nTot,
			lb: make([]float64, total), ub: make([]float64, total),
			lbTrue: make([]float64, nTot), ubTrue: make([]float64, nTot),
			obj2: make([]float64, total), x: make([]float64, total),
			stat: make([]vstat, total), basis: make([]int, m),
			lu:     newLUFactor(m),
			artRow: make([]int32, 0, m), artSign: make([]float64, 0, m),
			y: make([]float64, m), w: make([]float64, m),
			rho: make([]float64, m), resid: make([]float64, m),
			fscratch: make([]float64, m), xb: make([]float64, m),
			gamma: make([]float64, total),
			candJ: make([]int32, 0, total), candA: make([]float64, 0, total),
			candR: make([]float64, 0, total), candIdx: make([]int, 0, total),
			acc: make([]float64, m),
		}
	}
	s := in.ws
	s.opts = opts
	s.eps = opts.Eps
	s.deadline = opts.Deadline
	s.cancel = opts.Cancel
	s.abortSet = false
	s.perturbed, s.didPerturb, s.costPerturbed = false, false, false
	s.cleanupIters = 0
	// Tolerances derive from Options.Eps instead of hard-coded absolute
	// constants, so a caller loosening or tightening Eps moves the whole
	// tolerance stack coherently. At the default Eps=1e-7 they reduce to
	// the former constants 1e-12 and 1e-9. Row/bound magnitudes enter
	// through the *relative* Harris bands (eps·max(1,|bound|) in the
	// primal, see boundScale) rather than by inflating the pivot cutoffs:
	// scaling cutoffs by the matrix norm was measured to misclassify
	// usable pivots on the scheduling models (max |coefficient| ≈ 1.3e3
	// would put alphaTol above genuine pivot magnitudes and stall the
	// dual).
	s.pivotTol = 1e-5 * opts.Eps
	s.alphaTol = 1e-2 * opts.Eps
	s.primalBand = 0 * opts.Eps
	s.dualBand = 0 * opts.Eps
	s.dualTol = opts.Eps
	// liveBasis, factorOK, the anchor/script recipe and the pivot count
	// survive between solves so that SolveFrom can reuse a still-live
	// factorization (the hot path). The refactorization cadence stays
	// deterministic because pivots always equals the live script length,
	// which a reconstructing workspace restores identically.
	return s
}

// resetBounds loads structural bounds from the caller and slack bounds
// from the instance; reports false if a structural bound pair is empty.
func (s *spx) resetBounds(lb, ub []float64) bool {
	in := s.in
	s.n = s.nTot
	s.nArt = 0
	s.artRow = s.artRow[:0]
	s.artSign = s.artSign[:0]
	copy(s.lb[:in.nStruct], lb)
	copy(s.ub[:in.nStruct], ub)
	copy(s.lb[in.nStruct:s.nTot], in.slackLb)
	copy(s.ub[in.nStruct:s.nTot], in.slackUb)
	for j := range s.obj2[:s.nTot] {
		s.obj2[j] = 0
	}
	copy(s.obj2[:in.nStruct], in.obj)
	for j := 0; j < in.nStruct; j++ {
		if s.lb[j] > s.ub[j]+s.eps {
			return false
		}
	}
	// Perturbation expands bounds outward, so it can never manufacture an
	// empty box; it runs after the feasibility check on the true bounds.
	if s.opts.Perturb {
		s.perturbBounds()
	}
	return true
}

// col returns the sparse pattern of column j (structural, slack or
// artificial).
func (s *spx) col(j int) ([]int32, []float64) {
	if j < s.nTot {
		a, b := s.in.colPtr[j], s.in.colPtr[j+1]
		return s.in.rowIdx[a:b], s.in.vals[a:b]
	}
	k := j - s.nTot
	return s.artRow[k : k+1], s.artSign[k : k+1]
}

// coldStart places every column nonbasic at its start value and builds
// the initial basis from slacks, adding artificials where a slack cannot
// absorb the row residual (the classical phase-1 start).
func (s *spx) coldStart() {
	in := s.in
	m := s.m
	for j := 0; j < s.nTot; j++ {
		s.x[j] = startValue(s.lb[j], s.ub[j])
		if s.x[j] == s.ub[j] && !math.IsInf(s.ub[j], 1) && s.x[j] != s.lb[j] {
			s.stat[j] = atUpper
		} else {
			s.stat[j] = atLower
		}
	}
	r := s.resid[:m]
	copy(r, in.rhs)
	for j := 0; j < s.nTot; j++ {
		if s.x[j] != 0 {
			idx, vals := s.col(j)
			for k, row := range idx {
				r[row] -= vals[k] * s.x[j]
			}
		}
	}
	for i := 0; i < m; i++ {
		sj := in.nStruct + i
		v := s.x[sj] + r[i]
		if v >= s.lb[sj]-s.eps && v <= s.ub[sj]+s.eps {
			s.x[sj] = clamp(v, s.lb[sj], s.ub[sj])
			s.basis[i] = sj
			s.stat[sj] = basic
			continue
		}
		resid := r[i] - (s.x[sj] - startValue(s.lb[sj], s.ub[sj]))
		s.x[sj] = startValue(s.lb[sj], s.ub[sj])
		sign := 1.0
		if resid < 0 {
			sign = -1
		}
		aj := s.n
		s.artRow = append(s.artRow, int32(i))
		s.artSign = append(s.artSign, sign)
		s.lb[aj] = 0
		s.ub[aj] = Inf
		s.obj2[aj] = 0
		s.stat[aj] = basic
		s.x[aj] = math.Abs(resid)
		s.n++
		s.nArt++
		s.basis[i] = aj
	}
	// The slack/artificial start basis is a ±1 diagonal: its Markowitz
	// factorization is trivial (m singleton pivots) and can never be
	// singular.
	s.refactor()
}

// installBasis loads statuses and the basic set from a snapshot and snaps
// every nonbasic column to its (possibly changed) bound.
func (s *spx) installBasis(b *Basis) {
	for i := 0; i < s.m; i++ {
		s.basis[i] = int(b.basic[i])
	}
	copy(s.stat[:s.nTot], b.stat)
	for j := 0; j < s.nTot; j++ {
		switch {
		case s.stat[j] == basic:
			// computeXB fills these.
		case s.lb[j] == s.ub[j]:
			s.stat[j] = atLower
			s.x[j] = s.lb[j]
		case s.stat[j] == atLower:
			if !math.IsInf(s.lb[j], -1) {
				s.x[j] = s.lb[j]
			} else if !math.IsInf(s.ub[j], 1) {
				s.stat[j] = atUpper
				s.x[j] = s.ub[j]
			} else {
				s.x[j] = 0 // free column parks at 0
			}
		default: // atUpper
			if !math.IsInf(s.ub[j], 1) {
				s.x[j] = s.ub[j]
			} else if !math.IsInf(s.lb[j], -1) {
				s.stat[j] = atLower
				s.x[j] = s.lb[j]
			} else {
				s.stat[j] = atLower
				s.x[j] = 0
			}
		}
	}
}

// factorize runs the sparse LU factorization over the basis columns
// given by basisOf (position → column index), with timing and counter
// bookkeeping. It does NOT touch the anchor/script recipe — refactor and
// reconstruct layer that on top.
func (s *spx) factorize(basisOf func(int) int) bool {
	t0 := time.Now()
	ok := s.lu.factor(func(p int) ([]int32, []float64) { return s.col(basisOf(p)) })
	st := &s.in.stats
	st.Refactors++
	st.FactorNanos += int64(time.Since(t0))
	if ok {
		st.FillNnz = int64(s.lu.nnzFactor)
		st.BasisNnz = int64(s.lu.nnzBasis)
	}
	s.factorOK = ok
	return ok
}

// refactor rebuilds the sparse LU factorization of the current basis
// matrix, making it the new replay anchor (empty script); reports false
// when the basis is singular.
func (s *spx) refactor() bool {
	m := s.m
	if m == 0 {
		s.factorOK = true
		s.pivots = 0
		s.script = s.script[:0]
		s.anchor = emptyAnchor
		s.replayable = true
		return true
	}
	if !s.factorize(func(p int) int { return s.basis[p] }) {
		return false
	}
	// Fresh anchor: a new slice every time, so captured recipes may alias
	// it without copying (it is never mutated again).
	anchor := make([]int32, m)
	art := false
	for i, b := range s.basis {
		anchor[i] = int32(b)
		if b >= s.nTot {
			art = true
		}
	}
	s.anchor = anchor
	s.replayable = !art
	s.script = s.script[:0]
	s.pivots = 0
	return true
}

var emptyAnchor = []int32{}

// reconstruct rebuilds the workspace factorization for a snapshot basis
// after installBasis. With a recipe it factorizes the snapshot's anchor
// and replays the eta script — each eta recomputed as the FTRAN of its
// entering column, which reproduces the capturing workspace's live
// factor state bit for bit (see the spx field comments). Without a
// recipe it factorizes the snapshot basis directly. Reports false on a
// singular basis (the caller falls back to a cold solve).
func (s *spx) reconstruct(b *Basis) bool {
	if b.anchor == nil {
		return s.refactor()
	}
	if !s.factorize(func(p int) int { return int(b.anchor[p]) }) {
		return false
	}
	m := s.m
	for _, rec := range b.script {
		s.ftran(int(rec.enter), s.w[:m])
		// No pivot-magnitude check on replay: the capturing workspace
		// already validated this exact (bitwise-identical) pivot.
		s.lu.appendEta(int(rec.leave), s.w[:m])
	}
	s.anchor = b.anchor // immutable; aliasing is safe
	s.script = append(s.script[:0], b.script...)
	s.replayable = true
	s.pivots = len(b.script)
	if len(b.script) > 0 {
		s.in.stats.Replays++
	}
	return true
}

// computeXB recomputes the basic values x_B = B⁻¹(b − N·x_N).
func (s *spx) computeXB() {
	m := s.m
	r := s.resid[:m]
	copy(r, s.in.rhs)
	for j := 0; j < s.n; j++ {
		if s.stat[j] != basic && s.x[j] != 0 {
			idx, vals := s.col(j)
			for k, row := range idx {
				r[row] -= vals[k] * s.x[j]
			}
		}
	}
	s.luFtran(r, s.xb)
	for i := 0; i < m; i++ {
		s.x[s.basis[i]] = s.xb[i]
	}
}

// luFtran solves B·w = b (b indexed by row, destroyed; w by basis
// position) against the live factorization, with stats bookkeeping.
func (s *spx) luFtran(b, w []float64) {
	t0 := time.Now()
	s.lu.ftran(b, w)
	s.in.stats.Ftrans++
	s.in.stats.SolveNanos += int64(time.Since(t0))
}

// luBtran solves Bᵀ·y = c (c indexed by basis position, destroyed; y by
// row) against the live factorization, with stats bookkeeping.
func (s *spx) luBtran(c, y []float64) {
	t0 := time.Now()
	s.lu.btran(c, y)
	s.in.stats.Btrans++
	s.in.stats.SolveNanos += int64(time.Since(t0))
}

// ftran computes w = B⁻¹·a_j.
func (s *spx) ftran(j int, w []float64) {
	m := s.m
	b := s.fscratch[:m]
	for i := range b {
		b[i] = 0
	}
	idx, vals := s.col(j)
	for k, row := range idx {
		b[row] += vals[k]
	}
	s.luFtran(b, w)
}

// ftranDense computes w = B⁻¹·a for a dense right-hand side a (a is the
// sparse accumulation of the BFRT's flipped columns; it is destroyed).
func (s *spx) ftranDense(a, w []float64) {
	s.luFtran(a, w)
}

// duals computes y = c_B·B⁻¹ for the objective c.
func (s *spx) duals(c []float64) {
	m := s.m
	b := s.fscratch[:m]
	for i := 0; i < m; i++ {
		b[i] = c[s.basis[i]]
	}
	s.luBtran(b, s.y[:m])
}

// btranRow computes y = (B⁻¹ row r)ᵀ = B⁻ᵀ·e_r — the leaving-row vector
// the dual ratio test and the Devex update read.
func (s *spx) btranRow(r int, y []float64) {
	m := s.m
	b := s.fscratch[:m]
	for i := range b {
		b[i] = 0
	}
	b[r] = 1
	s.luBtran(b, y)
}

// reducedCost returns c_j − y·a_j.
func (s *spx) reducedCost(c []float64, j int) float64 {
	d := c[j]
	idx, vals := s.col(j)
	for k, row := range idx {
		d -= s.y[row] * vals[k]
	}
	return d
}

// pivotUpdate appends a product-form eta to the live factorization after
// `enter` replaces the basic variable of position `leave`; w = B⁻¹·a_enter.
// The pivot is also recorded on the replay script so captured bases can
// reconstruct the exact factor state. Reports false when the pivot
// element is numerically unusable.
func (s *spx) pivotUpdate(enter, leave int, w []float64) bool {
	if math.Abs(w[leave]) < s.pivotTol {
		return false
	}
	s.lu.appendEta(leave, w)
	s.script = append(s.script, pivotRec{enter: int32(enter), leave: int32(leave)})
	if enter >= s.nTot {
		// An artificial column entered (phase 1): the script is not
		// replayable in another workspace, whose artificial layout is
		// rebuilt per solve.
		s.replayable = false
	}
	s.pivots++
	s.in.stats.EtaPivots++
	return true
}

// checkAbort reports whether the deadline passed or the cancel channel
// closed.
func (s *spx) checkAbort() bool {
	if s.abortSet {
		return true
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		s.abortSet = true
		return true
	}
	if s.cancel != nil {
		select {
		case <-s.cancel:
			s.abortSet = true
			return true
		default:
		}
	}
	return false
}

func (s *spx) aborted() bool { return s.abortSet }

// blandRecovery is the number of consecutive nondegenerate steps after
// which Bland-mode pricing reverts to Devex: Bland's rule is an
// anti-cycling device, not a pricing strategy, and once the solve escapes
// the degenerate plateau that triggered it, staying on Bland degrades
// every remaining iteration. The Devex reference weights are
// re-initialized on recovery (the old frame is stale after Bland pivots).
const blandRecovery = 8

// primal runs bounded-variable primal simplex iterations for objective c
// until optimal, unbounded, or the budget runs out. Pricing is Devex by
// default (Dantzig under Options.Pricing), with Bland's rule under
// prolonged degeneracy (reverting to Devex after a nondegenerate run).
// The ratio test is a Harris-style two-pass test: pass 1 finds the
// smallest step attainable when every bound may flex by its feasibility
// band, pass 2 takes the largest-magnitude pivot whose exact ratio fits
// under that limit — on degenerate vertices this trades a zero-length
// step on a tiny pivot for a (possibly still zero) step on a stable one,
// and combined with the EXPAND shifts it turns exact ties into strictly
// positive progress.
func (s *spx) primal(c []float64, maxIters int) (Status, int) {
	if maxIters <= 0 {
		return IterLimit, 0
	}
	m := s.m
	w := s.w[:m]
	devex := s.opts.Pricing == PricingDevex
	for j := 0; j < s.n; j++ {
		s.gamma[j] = 1
	}
	degenerate := 0
	nondegenRun := 0
	useBland := false
	for it := 0; it < maxIters; it++ {
		if it%64 == 0 && s.checkAbort() {
			return IterLimit, it
		}
		s.duals(c)
		// Pricing.
		enter := -1
		bestScore := 0.0
		var dir float64 // +1 entering increases, −1 decreases
		for j := 0; j < s.n; j++ {
			if s.stat[j] == basic || s.entryFixed(j) {
				continue
			}
			d := s.reducedCost(c, j)
			var viol, dd float64
			switch {
			case s.stat[j] == atLower && d < -s.eps:
				viol, dd = -d, 1
			case s.stat[j] == atLower && d > s.eps && math.IsInf(s.lb[j], -1):
				// Free column parked at 0 can also decrease.
				viol, dd = d, -1
			case s.stat[j] == atUpper && d > s.eps:
				viol, dd = d, -1
			default:
				continue
			}
			if useBland {
				enter, dir = j, dd
				break
			}
			score := viol
			if devex {
				score = viol * viol / s.gamma[j]
			}
			if score > bestScore {
				bestScore, enter, dir = score, j, dd
			}
		}
		if enter < 0 {
			return Optimal, it
		}
		s.ftran(enter, w)
		// Ratio test: entering moves by t·dir ≥ 0; basic i changes by
		// −dir·t·w[i]. tFlip is the bound-flip distance, measured from the
		// entering variable's current value, NOT as ub−lb: a column can be
		// parked strictly between its bounds (a semi-free column sitting at
		// 0, e.g. a ≥-row slack whose zero upper bound was perturbed away
		// from the parking spot), and bound-to-bound distance would let it
		// blow straight through the near bound.
		var tFlip float64
		if dir > 0 {
			tFlip = s.ub[enter] - s.x[enter]
		} else {
			tFlip = s.x[enter] - s.lb[enter]
		}
		tMax := tFlip
		leave := -1
		leaveToUpper := false
		if useBland {
			// Bland mode keeps the strict textbook single-pass test (its
			// anti-cycling argument needs exact minimal ratios; the slack
			// scales with the pivot tolerance, not a magic 1e-12).
			for i := 0; i < m; i++ {
				delta := -dir * w[i]
				if delta > s.eps { // basic increases toward ub
					bi := s.basis[i]
					if !math.IsInf(s.ub[bi], 1) {
						t := (s.ub[bi] - s.x[bi]) / delta
						if t < tMax-s.pivotTol {
							tMax, leave, leaveToUpper = t, i, true
						}
					}
				} else if delta < -s.eps { // basic decreases toward lb
					bi := s.basis[i]
					if !math.IsInf(s.lb[bi], -1) {
						t := (s.lb[bi] - s.x[bi]) / delta
						if t < tMax-s.pivotTol {
							tMax, leave, leaveToUpper = t, i, false
						}
					}
				}
			}
			if math.IsInf(tMax, 1) {
				return Unbounded, it
			}
		} else {
			// Harris pass 1: the smallest step when every blocking bound
			// may flex by its feasibility band eps·max(1,|bound|).
			tLim := tFlip
			for i := 0; i < m; i++ {
				delta := -dir * w[i]
				if delta > s.eps {
					bi := s.basis[i]
					if ub := s.ub[bi]; !math.IsInf(ub, 1) {
						if t := (ub - s.x[bi] + s.primalBand*boundScale(ub)) / delta; t < tLim {
							tLim = t
						}
					}
				} else if delta < -s.eps {
					bi := s.basis[i]
					if lb := s.lb[bi]; !math.IsInf(lb, -1) {
						if t := (lb - s.x[bi] - s.primalBand*boundScale(lb)) / delta; t < tLim {
							tLim = t
						}
					}
				}
			}
			if math.IsInf(tLim, 1) {
				return Unbounded, it
			}
			// Harris pass 2: among rows whose exact ratio fits under the
			// relaxed limit, take the largest-magnitude pivot. The row
			// that set tLim always qualifies (its exact ratio is below its
			// own relaxed one), so leave < 0 means no row blocks before
			// the bound-flip distance.
			bestPiv := 0.0
			for i := 0; i < m; i++ {
				delta := -dir * w[i]
				if delta > s.eps {
					bi := s.basis[i]
					if ub := s.ub[bi]; !math.IsInf(ub, 1) {
						if t := (ub - s.x[bi]) / delta; t <= tLim && delta > bestPiv {
							bestPiv, tMax, leave, leaveToUpper = delta, t, i, true
						}
					}
				} else if delta < -s.eps {
					bi := s.basis[i]
					if lb := s.lb[bi]; !math.IsInf(lb, -1) {
						if t := (lb - s.x[bi]) / delta; t <= tLim && -delta > bestPiv {
							bestPiv, tMax, leave, leaveToUpper = -delta, t, i, false
						}
					}
				}
			}
			if leave < 0 {
				tMax = tFlip
			}
			if math.IsInf(tMax, 1) {
				return Unbounded, it
			}
		}
		if leave >= 0 && math.Abs(w[leave]) < s.pivotTol {
			// Numerically unusable pivot. With a fresh factorization the
			// basis is genuinely stuck; otherwise rebuild and re-derive
			// the direction next iteration.
			if s.pivots == 0 {
				return IterLimit, it
			}
			if !s.refactor() {
				return IterLimit, it
			}
			s.computeXB()
			continue
		}
		if tMax < 0 {
			tMax = 0
		}
		if tMax < s.pivotTol {
			degenerate++
			nondegenRun = 0
			if degenerate > 3*m+50 {
				useBland = true
			}
		} else {
			degenerate = 0
			if useBland {
				// Bland recovery (the fallback used to be sticky): a run
				// of nondegenerate steps means the plateau is behind us —
				// return to Devex with a fresh reference frame.
				if nondegenRun++; nondegenRun >= blandRecovery {
					useBland = false
					nondegenRun = 0
					for j := 0; j < s.n; j++ {
						s.gamma[j] = 1
					}
				}
			}
		}
		// Apply the step.
		s.x[enter] += dir * tMax
		for i := 0; i < m; i++ {
			s.x[s.basis[i]] -= dir * tMax * w[i]
		}
		if leave < 0 {
			// Bound flip: entering switches bound, basis unchanged.
			if dir > 0 {
				s.stat[enter] = atUpper
				s.x[enter] = s.ub[enter]
			} else {
				s.stat[enter] = atLower
				s.x[enter] = s.lb[enter]
			}
			continue
		}
		lv := s.basis[leave]
		if leaveToUpper {
			s.stat[lv] = atUpper
			s.x[lv] = s.ub[lv]
		} else {
			s.stat[lv] = atLower
			s.x[lv] = s.lb[lv]
		}
		gammaEnter := s.gamma[enter]
		alphaE := w[leave]
		if devex && !useBland {
			s.btranRow(leave, s.rho[:m]) // pre-pivot row
		}
		s.stat[enter] = basic
		s.basis[leave] = enter
		if !s.pivotUpdate(enter, leave, w) {
			return IterLimit, it // excluded by the pre-pivot magnitude check
		}
		if devex && !useBland {
			// Devex reference-weight update from the pre-pivot row.
			s.gamma[lv] = math.Max(gammaEnter/(alphaE*alphaE), 1)
			ratio2 := gammaEnter / (alphaE * alphaE)
			maxGamma := 1.0
			for j := 0; j < s.n; j++ {
				if s.stat[j] == basic || j == lv || s.entryFixed(j) {
					continue
				}
				idx, vals := s.col(j)
				alpha := 0.0
				for k, row := range idx {
					alpha += s.rho[row] * vals[k]
				}
				if alpha != 0 {
					if cand := alpha * alpha * ratio2; cand > s.gamma[j] {
						s.gamma[j] = cand
					}
				}
				if s.gamma[j] > maxGamma {
					maxGamma = s.gamma[j]
				}
			}
			if maxGamma > 1e10 {
				for j := 0; j < s.n; j++ {
					s.gamma[j] = 1
				}
			}
		}
		if s.pivots >= s.opts.RefactorEvery {
			if !s.refactor() {
				return IterLimit, it
			}
			s.computeXB()
		}
	}
	return IterLimit, maxIters
}

// dual runs bounded-variable dual simplex iterations on the phase-2
// objective until primal feasibility is restored (Optimal), primal
// infeasibility is proven (Infeasible), or the budget runs out
// (IterLimit — the caller then falls back to a cold solve).
func (s *spx) dual(maxIters int) (Status, int) {
	if maxIters <= 0 {
		return IterLimit, 0
	}
	m := s.m
	w := s.w[:m]
	rho := s.rho[:m]
	for it := 0; it < maxIters; it++ {
		if it%64 == 0 && s.checkAbort() {
			return IterLimit, it
		}
		// Leaving row: the most primal-infeasible basic variable, measured
		// relative to the bound's magnitude. The relative test matters under
		// per-node perturbation: two seeds shift a bound b by amounts that
		// differ by up to perturbScaleFactor·eps·(1+|b|), so an absolute
		// test would chase sub-tolerance "violations" on large bounds after
		// every warm handoff; scaling by boundScale keeps those invisible.
		r := -1
		worst := s.dualTol
		below := false
		for i := 0; i < m; i++ {
			bi := s.basis[i]
			if v := (s.lb[bi] - s.x[bi]) / boundScale(s.lb[bi]); v > worst {
				worst, r, below = v, i, true
			}
			if v := (s.x[bi] - s.ub[bi]) / boundScale(s.ub[bi]); v > worst {
				worst, r, below = v, i, false
			}
		}
		if r < 0 {
			return Optimal, it
		}
		s.btranRow(r, rho)
		s.duals(s.obj2)
		// Entering scan: record every admissible nonbasic as a breakpoint
		// (column, |α|, strict ratio |d|/|α|) for the bound-flipping ratio
		// test below. An empty candidate set means no column can repair
		// row r at all.
		s.candJ, s.candA, s.candR = s.candJ[:0], s.candA[:0], s.candR[:0]
		for j := 0; j < s.n; j++ {
			if s.stat[j] == basic || s.entryFixed(j) {
				continue
			}
			idx, vals := s.col(j)
			alpha := 0.0
			for k, row := range idx {
				alpha += rho[row] * vals[k]
			}
			aAbs := math.Abs(alpha)
			if aAbs <= s.alphaTol {
				continue
			}
			free := math.IsInf(s.lb[j], -1) && math.IsInf(s.ub[j], 1)
			// Moving x_j by δ changes x_B[r] by −α·δ; we need it to
			// increase (below) or decrease (above), within j's one
			// admissible direction.
			if !free {
				if below {
					if s.stat[j] == atLower && alpha >= 0 {
						continue
					}
					if s.stat[j] == atUpper && alpha <= 0 {
						continue
					}
				} else {
					if s.stat[j] == atLower && alpha <= 0 {
						continue
					}
					if s.stat[j] == atUpper && alpha >= 0 {
						continue
					}
				}
			}
			d := math.Abs(s.reducedCost(s.obj2, j))
			s.candJ = append(s.candJ, int32(j))
			s.candA = append(s.candA, aAbs)
			s.candR = append(s.candR, d/aAbs)
		}
		// Bound-flipping ratio test (BFRT), Harris-banded. The previous
		// scheme picked ONE entering column per iteration and, when the
		// repair step overshot its box, flipped it and returned to the
		// outer loop without a basis change. On the scheduling models that
		// two-cycles forever: with every reduced cost at zero, the same
		// column is the min-ratio repair for two rows that it alternately
		// fixes and re-violates, and a flip changes no basis, prices, or
		// weights, so nothing ever breaks the tie — the degenerate-
		// scheduling stall. The BFRT instead walks ALL breakpoints of the
		// leaving row in ratio order inside the iteration: a candidate
		// whose box capacity |α|·span cannot absorb the remaining
		// infeasibility is flipped and the walk continues, and the
		// iteration ends in an actual pivot (or a fully repaired row), so
		// flip-only iterations — the raw material of the cycle — no longer
		// exist. Breakpoints within the Harris dual band of each other are
		// treated as one group and the largest-|α| group member that can
		// absorb the rest pivots, keeping pivots numerically sound.
		bi := s.basis[r]
		target := s.ub[bi]
		if below {
			target = s.lb[bi]
		}
		idx := s.candIdx[:0]
		for k := range s.candJ {
			idx = append(idx, k)
		}
		sort.SliceStable(idx, func(a, b int) bool { return s.candR[idx[a]] < s.candR[idx[b]] })
		s.candIdx = idx
		rem := math.Abs(s.x[bi] - target)
		remTol := s.dualTol * boundScale(target)
		for i := 0; i < m; i++ {
			s.acc[i] = 0
		}
		enter, nFlip := -1, 0
		for pos := 0; pos < len(idx) && enter < 0 && rem > remTol; {
			// Band group: breakpoints within dualBand of the smallest
			// unprocessed ratio are dual-feasibility-equivalent choices.
			lim := s.candR[idx[pos]] + s.dualBand
			end := pos
			for end < len(idx) && s.candR[idx[end]] <= lim {
				end++
			}
			for pos < end && enter < 0 && rem > remTol {
				pivotQ, flipQ := -1, -1
				pivotAlpha, flipCap := 0.0, 0.0
				for q := pos; q < end; q++ {
					k := idx[q]
					if k < 0 {
						continue // flipped earlier in this group
					}
					j := int(s.candJ[k])
					cap := s.candA[k] * (s.ub[j] - s.lb[j])
					// A candidate that can absorb the rest — even only up to
					// the repair tolerance — is the crossing breakpoint and
					// must PIVOT, not flip: a flip that zeroes the row
					// without a basis change leaves the column dual-
					// infeasible (no dual step crossed its ratio), and it
					// flips straight back next iteration, forever.
					if cap >= rem-remTol {
						if pivotQ < 0 || s.candA[k] > pivotAlpha {
							pivotQ, pivotAlpha = q, s.candA[k]
						}
					} else if flipQ < 0 || cap > flipCap {
						flipQ, flipCap = q, cap
					}
				}
				if pivotQ >= 0 {
					enter = int(s.candJ[idx[pivotQ]])
					break
				}
				if flipQ < 0 {
					break // group exhausted by flips; next band
				}
				// No group member absorbs the rest: flip the one with the
				// largest capacity and keep walking.
				k := idx[flipQ]
				j := int(s.candJ[k])
				span := s.ub[j] - s.lb[j]
				f := span
				if s.stat[j] == atUpper {
					f = -span
					s.stat[j] = atLower
					s.x[j] = s.lb[j]
				} else {
					s.stat[j] = atUpper
					s.x[j] = s.ub[j]
				}
				cidx, cvals := s.col(j)
				for t, row := range cidx {
					s.acc[row] += f * cvals[t]
				}
				rem -= flipCap
				nFlip++
				idx[flipQ] = -1
			}
			pos = end
		}
		if nFlip > 0 {
			// One combined FTRAN applies every flip to the basic values:
			// x_B -= B⁻¹·Σ f_j·A_j.
			s.ftranDense(s.acc, w)
			for i := 0; i < m; i++ {
				s.x[s.basis[i]] -= w[i]
			}
		}
		if enter < 0 {
			if rem > remTol {
				// Every breakpoint is exhausted and row r is still
				// infeasible: the dual is unbounded — the bound change made
				// the LP primally infeasible. (Applied flips are valid
				// bound-to-bound moves; the status discards the point.)
				return Infeasible, it
			}
			// The flips alone repaired the row; no basis change needed
			// (kept as a safety valve: the crossing-breakpoint rule above
			// makes this branch unreachable in practice).
			continue
		}
		s.ftran(enter, w)
		alphaE := w[r]
		if math.Abs(alphaE) < s.alphaTol {
			// Factorization drift: rebuild and retry the iteration. With
			// a fresh factorization the pivot is genuinely degenerate —
			// bail out to the cold path. (Flips stay applied: they are
			// consistent bound moves regardless of the factorization.)
			if s.pivots == 0 {
				return IterLimit, it
			}
			if !s.refactor() {
				return IterLimit, it
			}
			s.computeXB()
			continue
		}
		delta := (s.x[bi] - target) / alphaE
		s.x[enter] += delta
		for i := 0; i < m; i++ {
			s.x[s.basis[i]] -= delta * w[i]
		}
		s.x[bi] = target
		if below || s.lb[bi] == s.ub[bi] {
			s.stat[bi] = atLower
		} else {
			s.stat[bi] = atUpper
		}
		s.stat[enter] = basic
		s.basis[r] = enter
		if !s.pivotUpdate(enter, r, w) {
			if !s.refactor() {
				return IterLimit, it
			}
			s.computeXB()
			continue
		}
		if s.pivots >= s.opts.RefactorEvery {
			if !s.refactor() {
				return IterLimit, it
			}
			s.computeXB()
		}
	}
	return IterLimit, maxIters
}

// entryFixed reports whether column j has no usable span as an entering
// column: truly fixed by the caller (lb == ub), or fixed up to the tiny
// box the EXPAND perturbation opened around a fixed value. Perturbed
// boxes exist to give *basic* degenerate variables room for nonzero-length
// steps; entering a ~1e-9-wide box repairs nothing and burns the iteration
// budget, so pricing and the dual entering scan still treat those columns
// as fixed.
func (s *spx) entryFixed(j int) bool {
	if s.perturbed && j < s.nTot {
		return s.lbTrue[j] == s.ubTrue[j]
	}
	return s.lb[j] == s.ub[j]
}

// boundScale is the relative scaling of the Harris feasibility band for a
// bound b: bands are eps·max(1,|b|), so the flex a bound is allowed
// matches the relative feasibility test instead of being absolute.
func boundScale(b float64) float64 {
	if a := math.Abs(b); a > 1 {
		return a
	}
	return 1
}

// maxViolation returns the largest bound violation over the basic
// variables (nonbasics sit exactly on bounds by construction).
func (s *spx) maxViolation() float64 {
	worst := 0.0
	for i := 0; i < s.m; i++ {
		bi := s.basis[i]
		if v := s.lb[bi] - s.x[bi]; v > worst {
			worst = v
		}
		if v := s.x[bi] - s.ub[bi]; v > worst {
			worst = v
		}
	}
	return worst
}

// finish runs after a solve reaches optimality on the working bounds: it
// removes the EXPAND shifts (restore the exact bounds, snap nonbasics to
// the exact bounds, recompute basics from them) and then re-solves the
// residuals away — a dual pass repairs bound violations beyond the
// feasibility tolerance left by the shifts or the Harris bands, and a
// primal pass repairs any dual infeasibility the dual band allowed. The
// loop runs until the primal confirms optimality without pivoting (or a
// small round cap). The shifts are ~1e-2·Eps, so in the common case the
// restored basis is already feasible at the reporting tolerance and both
// passes confirm in zero pivots; the reported point has nonbasics exactly
// on the true bounds and basics solved exactly from them, bit-for-bit
// reproducible for a given (matrix, basis, bounds, PerturbSeq).
//
// On Infeasible/IterLimit from the clean-up passes the point is accepted
// as Optimal anyway when every bound violation is within the reporting
// tolerance — tolerance-skipped pivot columns must not flip an optimal
// node to infeasible over residual noise.
func (s *spx) finish(budget int) (Status, int) {
	if s.perturbed {
		copy(s.lb[:s.nTot], s.lbTrue)
		copy(s.ub[:s.nTot], s.ubTrue)
		s.perturbed = false
		for j := 0; j < s.nTot; j++ {
			switch s.stat[j] {
			case atLower:
				if !math.IsInf(s.lb[j], -1) {
					s.x[j] = s.lb[j]
				}
			case atUpper:
				if !math.IsInf(s.ub[j], 1) {
					s.x[j] = s.ub[j]
				}
			}
		}
		s.computeXB()
	}
	if s.costPerturbed {
		for j := range s.obj2[:s.nTot] {
			s.obj2[j] = 0
		}
		copy(s.obj2[:s.in.nStruct], s.in.obj)
		s.costPerturbed = false
	}
	total := 0
	for round := 0; round < 3; round++ {
		st, it := s.dual(budget - total)
		total += it
		if st == Infeasible || st == IterLimit {
			if s.aborted() || s.maxViolation() > s.eps {
				return st, total
			}
			// Residuals below the reporting tolerance: accept.
		}
		st, it = s.primal(s.obj2, budget-total)
		total += it
		if st != Optimal {
			return st, total
		}
		if it == 0 {
			return Optimal, total
		}
	}
	return Optimal, total
}

// result packages the current point, capturing the basis on optimality.
func (s *spx) result(st Status, iters int, coldRestart bool) Result {
	in := s.in
	res := Result{
		Status: st, Iters: iters, ColdRestart: coldRestart,
		Perturbed: s.didPerturb, CleanupIters: s.cleanupIters,
	}
	res.X = make([]float64, in.nStruct)
	copy(res.X, s.x[:in.nStruct])
	for j := 0; j < in.nStruct; j++ {
		res.Obj += in.obj[j] * res.X[j]
	}
	if st == Optimal {
		res.Basis = s.captureBasis()
	}
	return res
}

// captureBasis snapshots the final basis for SolveFrom. Basic artificials
// (always at zero after a successful phase 1) are swapped for their row's
// slack so the snapshot only references structural and slack columns;
// when the slack is itself basic elsewhere the basis is not capturable
// and nil is returned (the caller then cold-starts descendants).
//
// The snapshot carries the live factorization's replay recipe
// (anchor basis + eta script) whenever that recipe is expressible in
// matrix columns alone. When it is not — artificial columns in the
// anchor or script, or an artificial swap just now — the workspace
// re-anchors by refactorizing the swapped (clean) basis, which both
// restores a valid live factorization and gives the snapshot an
// empty-script recipe. Either way the captured recipe is a pure function
// of the solve's inputs, so descendants reconstruct identical factor
// bits on any workspace.
func (s *spx) captureBasis() *Basis {
	m := s.m
	swapped := false
	for i := 0; i < m; i++ {
		if s.basis[i] < s.nTot {
			continue
		}
		k := s.basis[i] - s.nTot
		sj := s.in.nStruct + int(s.artRow[k])
		if s.stat[sj] == basic {
			return nil
		}
		// The artificial sits at zero, so relabeling the row's slack as
		// basic keeps the same point.
		s.basis[i] = sj
		s.stat[sj] = basic
		swapped = true
	}
	b := &Basis{basic: make([]int32, m), stat: make([]vstat, s.nTot)}
	for i := 0; i < m; i++ {
		b.basic[i] = int32(s.basis[i])
	}
	copy(b.stat, s.stat[:s.nTot])
	if swapped || !s.replayable {
		if !s.refactor() {
			// Singular after the swap: hand out the snapshot without a
			// recipe (SolveFrom will fall back to a cold solve) and keep
			// the hot path off.
			s.liveBasis = nil
			return b
		}
	}
	b.anchor = s.anchor // immutable once created; aliasing is safe
	b.script = append([]pivotRec(nil), s.script...)
	s.liveBasis = b
	return b
}
