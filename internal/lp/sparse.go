package lp

import (
	"math"
	"time"
)

// Instance is a prepared LP: the rows assembled once into sparse
// column-major (CSC) storage, with bounds supplied per solve. It is the
// re-solve engine of branch-and-bound, where thousands of bound
// variations share one constraint matrix. An Instance owns a reusable
// solver workspace and is therefore NOT safe for concurrent use; separate
// goroutines must Prepare separate instances.
type Instance struct {
	m       int       // rows
	nStruct int       // structural variables
	obj     []float64 // length nStruct
	rhs     []float64 // length m

	// CSC over nStruct+m columns: structural columns then one slack per
	// row (slack j = nStruct+i has the single entry (i, 1)).
	colPtr []int32
	rowIdx []int32
	vals   []float64

	slackLb, slackUb []float64 // per row, fixed by the row sense

	ws *spx // lazily allocated, reused across sequential solves
}

// Prepare assembles p's rows into an Instance. Subsequent bound changes
// are passed to Solve/SolveFrom; changes to p itself are not observed.
func Prepare(p *Problem) *Instance {
	m, n := len(p.Rows), p.NumVars()
	in := &Instance{
		m:       m,
		nStruct: n,
		obj:     append([]float64(nil), p.Obj...),
		rhs:     make([]float64, m),
		slackLb: make([]float64, m),
		slackUb: make([]float64, m),
	}
	nTot := n + m
	count := make([]int32, nTot)
	nnz := 0
	for _, row := range p.Rows {
		for _, c := range row.Coefs {
			if c.Val != 0 {
				count[c.Var]++
				nnz++
			}
		}
	}
	in.colPtr = make([]int32, nTot+1)
	for j := 0; j < n; j++ {
		in.colPtr[j+1] = in.colPtr[j] + count[j]
	}
	for i := 0; i < m; i++ { // slack columns: one entry each
		in.colPtr[n+i+1] = in.colPtr[n+i] + 1
	}
	in.rowIdx = make([]int32, nnz+m)
	in.vals = make([]float64, nnz+m)
	next := make([]int32, nTot)
	copy(next, in.colPtr[:nTot])
	for i, row := range p.Rows {
		in.rhs[i] = row.RHS
		for _, c := range row.Coefs {
			if c.Val == 0 {
				continue
			}
			k := next[c.Var]
			in.rowIdx[k] = int32(i)
			in.vals[k] = c.Val
			next[c.Var] = k + 1
		}
		k := next[n+i]
		in.rowIdx[k] = int32(i)
		in.vals[k] = 1
		switch row.Sense {
		case LE:
			in.slackLb[i], in.slackUb[i] = 0, Inf
		case GE:
			in.slackLb[i], in.slackUb[i] = math.Inf(-1), 0
		case EQ:
			in.slackLb[i], in.slackUb[i] = 0, 0
		}
	}
	return in
}

// Solve cold-solves the instance under the given structural bounds:
// phase-1 artificial start, then primal simplex on the true objective.
func (in *Instance) Solve(lb, ub []float64, opts Options) Result {
	s := in.workspace(&opts)
	s.lastBasis = nil // binv is about to be overwritten
	if !s.resetBounds(lb, ub) {
		return Result{Status: Infeasible}
	}
	s.coldStart()

	iters := 0
	if s.nArt > 0 {
		// Phase 1: minimize the sum of artificials.
		c1 := make([]float64, s.n)
		for j := s.nTot; j < s.n; j++ {
			c1[j] = 1
		}
		st, it := s.primal(c1, opts.MaxIters)
		iters += it
		if st == IterLimit {
			return s.result(IterLimit, iters, false)
		}
		sum := 0.0
		for j := s.nTot; j < s.n; j++ {
			sum += s.x[j]
		}
		if sum > 1e-6 {
			return Result{Status: Infeasible, Iters: iters}
		}
		// Freeze artificials at zero for phase 2.
		for j := s.nTot; j < s.n; j++ {
			s.ub[j] = 0
			s.x[j] = 0
		}
	}
	st, it := s.primal(s.obj2, opts.MaxIters-iters)
	iters += it
	return s.result(st, iters, false)
}

// SolveFrom reoptimizes from a previously returned basis after bound
// changes, using the bounded-variable dual simplex: the supplied basis
// stays dual feasible when only bounds moved (the branch-and-bound case),
// so a handful of dual pivots restore primal feasibility where a cold
// solve would replay phases 1 and 2 from scratch. When the basis is the
// instance's most recent one, the live factorization is reused; otherwise
// the basis inverse is refactorized from the snapshot. On numerical
// trouble or a stalled dual it transparently falls back to a cold solve
// (Result.ColdRestart reports this).
func (in *Instance) SolveFrom(basis *Basis, lb, ub []float64, opts Options) Result {
	if basis == nil || len(basis.basic) != in.m || len(basis.stat) != in.nStruct+in.m {
		res := in.Solve(lb, ub, opts)
		res.ColdRestart = true
		return res
	}
	s := in.workspace(&opts)
	hot := !opts.FreshFactor && basis == s.lastBasis && s.factorOK
	s.lastBasis = nil
	if !s.resetBounds(lb, ub) {
		return Result{Status: Infeasible}
	}
	s.installBasis(basis)
	if !hot && !s.refactor() {
		res := in.Solve(lb, ub, opts)
		res.ColdRestart = true
		return res
	}
	s.computeXB()

	// Dual reoptimization with a deliberately tight budget. A successful
	// re-solve after a single bound change takes a handful of pivots; a
	// dual that has not finished within ~m/8 iterations is almost always
	// stalling on degeneracy, and every additional iteration it burns
	// comes on top of the cold solve it will fall back to anyway —
	// failing fast is what keeps the warm path a strict win.
	dualBudget := 50 + s.m/8
	if opts.MaxIters < dualBudget {
		dualBudget = opts.MaxIters
	}
	st, it := s.dual(dualBudget)
	iters := it
	switch st {
	case Infeasible:
		return Result{Status: Infeasible, Iters: iters}
	case IterLimit:
		if s.aborted() {
			return s.result(IterLimit, iters, false)
		}
		res := in.Solve(lb, ub, opts)
		res.ColdRestart = true
		res.Iters += iters
		return res
	}
	// Primal cleanup: a no-op when the dual finished cleanly, and the
	// safety net when reduced costs drifted across the basis handoff.
	st, it = s.primal(s.obj2, opts.MaxIters-iters)
	iters += it
	return s.result(st, iters, false)
}

// spx is the solver workspace: sparse simplex state reused across
// sequential solves of one Instance.
type spx struct {
	in   *Instance
	m    int // rows
	nTot int // structural + slack columns
	n    int // nTot + live artificials
	nArt int

	lb, ub []float64
	obj2   []float64 // phase-2 objective (structural costs, zeros elsewhere)
	x      []float64
	stat   []vstat
	basis  []int
	binv   []float64 // m×m, row-major: row i belongs to basis[i]

	artRow  []int32 // artificial j = nTot+k sits in row artRow[k]
	artSign []float64

	y, w, rho, resid []float64
	gamma            []float64 // Devex reference weights
	work             []float64 // refactorization scratch, m×m

	lastBasis *Basis // snapshot matching the live factorization, if any
	factorOK  bool
	pivots    int // since the last refactorization

	opts     *Options
	eps      float64
	deadline time.Time
	cancel   <-chan struct{}
	abortSet bool
}

// workspace returns the reusable solver state, (re)allocating on first
// use, and applies option defaults.
func (in *Instance) workspace(opts *Options) *spx {
	if opts.Eps == 0 {
		opts.Eps = defaultEps
	}
	if opts.MaxIters == 0 {
		opts.MaxIters = 50*(in.m+in.nStruct) + 1000
	}
	if opts.RefactorEvery == 0 {
		opts.RefactorEvery = defaultRefactorEvery
	}
	if in.ws == nil {
		m, nTot := in.m, in.nStruct+in.m
		total := nTot + m // artificials at most one per row
		in.ws = &spx{
			in: in, m: m, nTot: nTot,
			lb: make([]float64, total), ub: make([]float64, total),
			obj2: make([]float64, total), x: make([]float64, total),
			stat: make([]vstat, total), basis: make([]int, m),
			binv: make([]float64, m*m), work: make([]float64, m*m),
			artRow: make([]int32, 0, m), artSign: make([]float64, 0, m),
			y: make([]float64, m), w: make([]float64, m),
			rho: make([]float64, m), resid: make([]float64, m),
			gamma: make([]float64, total),
		}
	}
	s := in.ws
	s.opts = opts
	s.eps = opts.Eps
	s.deadline = opts.Deadline
	s.cancel = opts.Cancel
	s.abortSet = false
	// lastBasis, factorOK and the pivot count survive between solves so
	// that SolveFrom can reuse a still-live factorization (the hot path)
	// and the refactorization cadence tracks drift across short warm
	// solves.
	return s
}

// resetBounds loads structural bounds from the caller and slack bounds
// from the instance; reports false if a structural bound pair is empty.
func (s *spx) resetBounds(lb, ub []float64) bool {
	in := s.in
	s.n = s.nTot
	s.nArt = 0
	s.artRow = s.artRow[:0]
	s.artSign = s.artSign[:0]
	copy(s.lb[:in.nStruct], lb)
	copy(s.ub[:in.nStruct], ub)
	copy(s.lb[in.nStruct:s.nTot], in.slackLb)
	copy(s.ub[in.nStruct:s.nTot], in.slackUb)
	for j := range s.obj2[:s.nTot] {
		s.obj2[j] = 0
	}
	copy(s.obj2[:in.nStruct], in.obj)
	for j := 0; j < in.nStruct; j++ {
		if s.lb[j] > s.ub[j]+s.eps {
			return false
		}
	}
	return true
}

// col returns the sparse pattern of column j (structural, slack or
// artificial).
func (s *spx) col(j int) ([]int32, []float64) {
	if j < s.nTot {
		a, b := s.in.colPtr[j], s.in.colPtr[j+1]
		return s.in.rowIdx[a:b], s.in.vals[a:b]
	}
	k := j - s.nTot
	return s.artRow[k : k+1], s.artSign[k : k+1]
}

// coldStart places every column nonbasic at its start value and builds
// the initial basis from slacks, adding artificials where a slack cannot
// absorb the row residual (the classical phase-1 start).
func (s *spx) coldStart() {
	in := s.in
	m := s.m
	for j := 0; j < s.nTot; j++ {
		s.x[j] = startValue(s.lb[j], s.ub[j])
		if s.x[j] == s.ub[j] && !math.IsInf(s.ub[j], 1) && s.x[j] != s.lb[j] {
			s.stat[j] = atUpper
		} else {
			s.stat[j] = atLower
		}
	}
	r := s.resid[:m]
	copy(r, in.rhs)
	for j := 0; j < s.nTot; j++ {
		if s.x[j] != 0 {
			idx, vals := s.col(j)
			for k, row := range idx {
				r[row] -= vals[k] * s.x[j]
			}
		}
	}
	for k := range s.binv {
		s.binv[k] = 0
	}
	for i := 0; i < m; i++ {
		sj := in.nStruct + i
		v := s.x[sj] + r[i]
		if v >= s.lb[sj]-s.eps && v <= s.ub[sj]+s.eps {
			s.x[sj] = clamp(v, s.lb[sj], s.ub[sj])
			s.basis[i] = sj
			s.stat[sj] = basic
			s.binv[i*m+i] = 1
			continue
		}
		resid := r[i] - (s.x[sj] - startValue(s.lb[sj], s.ub[sj]))
		s.x[sj] = startValue(s.lb[sj], s.ub[sj])
		sign := 1.0
		if resid < 0 {
			sign = -1
		}
		aj := s.n
		s.artRow = append(s.artRow, int32(i))
		s.artSign = append(s.artSign, sign)
		s.lb[aj] = 0
		s.ub[aj] = Inf
		s.obj2[aj] = 0
		s.stat[aj] = basic
		s.x[aj] = math.Abs(resid)
		s.n++
		s.nArt++
		s.basis[i] = aj
		s.binv[i*m+i] = sign
	}
	s.factorOK = true
	s.pivots = 0
}

// installBasis loads statuses and the basic set from a snapshot and snaps
// every nonbasic column to its (possibly changed) bound.
func (s *spx) installBasis(b *Basis) {
	for i := 0; i < s.m; i++ {
		s.basis[i] = int(b.basic[i])
	}
	copy(s.stat[:s.nTot], b.stat)
	for j := 0; j < s.nTot; j++ {
		switch {
		case s.stat[j] == basic:
			// computeXB fills these.
		case s.lb[j] == s.ub[j]:
			s.stat[j] = atLower
			s.x[j] = s.lb[j]
		case s.stat[j] == atLower:
			if !math.IsInf(s.lb[j], -1) {
				s.x[j] = s.lb[j]
			} else if !math.IsInf(s.ub[j], 1) {
				s.stat[j] = atUpper
				s.x[j] = s.ub[j]
			} else {
				s.x[j] = 0 // free column parks at 0
			}
		default: // atUpper
			if !math.IsInf(s.ub[j], 1) {
				s.x[j] = s.ub[j]
			} else if !math.IsInf(s.lb[j], -1) {
				s.stat[j] = atLower
				s.x[j] = s.lb[j]
			} else {
				s.stat[j] = atLower
				s.x[j] = 0
			}
		}
	}
}

// refactor rebuilds binv as the explicit inverse of the current basis
// matrix by Gauss–Jordan elimination with partial pivoting; reports false
// when the basis is singular.
func (s *spx) refactor() bool {
	m := s.m
	if m == 0 {
		s.factorOK = true
		s.pivots = 0
		return true
	}
	work := s.work
	for k := range work {
		work[k] = 0
	}
	for i := 0; i < m; i++ { // column i of B = column of basis[i]
		idx, vals := s.col(s.basis[i])
		for k, row := range idx {
			work[int(row)*m+i] += vals[k]
		}
	}
	binv := s.binv
	for k := range binv {
		binv[k] = 0
	}
	for i := 0; i < m; i++ {
		binv[i*m+i] = 1
	}
	for k := 0; k < m; k++ {
		// Partial pivot: the largest |work[i][k]| among rows i ≥ k.
		p, best := -1, 1e-10
		for i := k; i < m; i++ {
			if a := math.Abs(work[i*m+k]); a > best {
				p, best = i, a
			}
		}
		if p < 0 {
			s.factorOK = false
			return false
		}
		if p != k {
			swapRows(work, m, p, k)
			swapRows(binv, m, p, k)
		}
		d := 1 / work[k*m+k]
		for c := 0; c < m; c++ {
			work[k*m+c] *= d
			binv[k*m+c] *= d
		}
		for i := 0; i < m; i++ {
			if i == k {
				continue
			}
			f := work[i*m+k]
			if f == 0 {
				continue
			}
			wr, br := work[k*m:k*m+m], binv[k*m:k*m+m]
			wi, bi := work[i*m:i*m+m], binv[i*m:i*m+m]
			for c := 0; c < m; c++ {
				wi[c] -= f * wr[c]
				bi[c] -= f * br[c]
			}
		}
	}
	s.factorOK = true
	s.pivots = 0
	return true
}

func swapRows(a []float64, m, i, j int) {
	ri, rj := a[i*m:i*m+m], a[j*m:j*m+m]
	for c := 0; c < m; c++ {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

// computeXB recomputes the basic values x_B = B⁻¹(b − N·x_N).
func (s *spx) computeXB() {
	m := s.m
	r := s.resid[:m]
	copy(r, s.in.rhs)
	for j := 0; j < s.n; j++ {
		if s.stat[j] != basic && s.x[j] != 0 {
			idx, vals := s.col(j)
			for k, row := range idx {
				r[row] -= vals[k] * s.x[j]
			}
		}
	}
	for i := 0; i < m; i++ {
		row := s.binv[i*m : i*m+m]
		v := 0.0
		for k := 0; k < m; k++ {
			v += row[k] * r[k]
		}
		s.x[s.basis[i]] = v
	}
}

// ftran computes w = B⁻¹·a_j.
func (s *spx) ftran(j int, w []float64) {
	m := s.m
	for i := range w[:m] {
		w[i] = 0
	}
	idx, vals := s.col(j)
	for k, row := range idx {
		v := vals[k]
		c := int(row)
		for i := 0; i < m; i++ {
			w[i] += s.binv[i*m+c] * v
		}
	}
}

// duals computes y = c_B·B⁻¹ for the objective c.
func (s *spx) duals(c []float64) {
	m := s.m
	y := s.y[:m]
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < m; i++ {
		cb := c[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.binv[i*m : i*m+m]
		for k := 0; k < m; k++ {
			y[k] += cb * row[k]
		}
	}
}

// reducedCost returns c_j − y·a_j.
func (s *spx) reducedCost(c []float64, j int) float64 {
	d := c[j]
	idx, vals := s.col(j)
	for k, row := range idx {
		d -= s.y[row] * vals[k]
	}
	return d
}

// pivotUpdate applies the standard product-form update to binv after
// `enter` replaces the basic variable of row `leave`; w = B⁻¹·a_enter.
// Reports false when the pivot element is numerically unusable.
func (s *spx) pivotUpdate(leave int, w []float64) bool {
	m := s.m
	piv := w[leave]
	if math.Abs(piv) < 1e-12 {
		return false
	}
	rowL := s.binv[leave*m : leave*m+m]
	inv := 1 / piv
	for k := 0; k < m; k++ {
		rowL[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == leave || w[i] == 0 {
			continue
		}
		f := w[i]
		ri := s.binv[i*m : i*m+m]
		for k := 0; k < m; k++ {
			ri[k] -= f * rowL[k]
		}
	}
	s.pivots++
	return true
}

// checkAbort reports whether the deadline passed or the cancel channel
// closed.
func (s *spx) checkAbort() bool {
	if s.abortSet {
		return true
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		s.abortSet = true
		return true
	}
	if s.cancel != nil {
		select {
		case <-s.cancel:
			s.abortSet = true
			return true
		default:
		}
	}
	return false
}

func (s *spx) aborted() bool { return s.abortSet }

// primal runs bounded-variable primal simplex iterations for objective c
// until optimal, unbounded, or the budget runs out. Pricing is Devex by
// default (Dantzig under Options.Pricing), with Bland's rule under
// prolonged degeneracy.
func (s *spx) primal(c []float64, maxIters int) (Status, int) {
	if maxIters <= 0 {
		return IterLimit, 0
	}
	m := s.m
	w := s.w[:m]
	devex := s.opts.Pricing == PricingDevex
	for j := 0; j < s.n; j++ {
		s.gamma[j] = 1
	}
	degenerate := 0
	useBland := false
	for it := 0; it < maxIters; it++ {
		if it%64 == 0 && s.checkAbort() {
			return IterLimit, it
		}
		s.duals(c)
		// Pricing.
		enter := -1
		bestScore := 0.0
		var dir float64 // +1 entering increases, −1 decreases
		for j := 0; j < s.n; j++ {
			if s.stat[j] == basic || s.lb[j] == s.ub[j] {
				continue
			}
			d := s.reducedCost(c, j)
			var viol, dd float64
			switch {
			case s.stat[j] == atLower && d < -s.eps:
				viol, dd = -d, 1
			case s.stat[j] == atLower && d > s.eps && math.IsInf(s.lb[j], -1):
				// Free column parked at 0 can also decrease.
				viol, dd = d, -1
			case s.stat[j] == atUpper && d > s.eps:
				viol, dd = d, -1
			default:
				continue
			}
			if useBland {
				enter, dir = j, dd
				break
			}
			score := viol
			if devex {
				score = viol * viol / s.gamma[j]
			}
			if score > bestScore {
				bestScore, enter, dir = score, j, dd
			}
		}
		if enter < 0 {
			return Optimal, it
		}
		s.ftran(enter, w)
		// Ratio test: entering moves by t·dir ≥ 0; basic i changes by
		// −dir·t·w[i].
		tMax := s.ub[enter] - s.lb[enter] // bound-flip distance
		leave := -1
		leaveToUpper := false
		for i := 0; i < m; i++ {
			delta := -dir * w[i]
			if delta > s.eps { // basic increases toward ub
				bi := s.basis[i]
				if !math.IsInf(s.ub[bi], 1) {
					t := (s.ub[bi] - s.x[bi]) / delta
					if t < tMax-1e-12 {
						tMax, leave, leaveToUpper = t, i, true
					}
				}
			} else if delta < -s.eps { // basic decreases toward lb
				bi := s.basis[i]
				if !math.IsInf(s.lb[bi], -1) {
					t := (s.lb[bi] - s.x[bi]) / delta
					if t < tMax-1e-12 {
						tMax, leave, leaveToUpper = t, i, false
					}
				}
			}
		}
		if math.IsInf(tMax, 1) {
			return Unbounded, it
		}
		if leave >= 0 && math.Abs(w[leave]) < 1e-12 {
			// Numerically unusable pivot. With a fresh factorization the
			// basis is genuinely stuck; otherwise rebuild and re-derive
			// the direction next iteration.
			if s.pivots == 0 {
				return IterLimit, it
			}
			if !s.refactor() {
				return IterLimit, it
			}
			s.computeXB()
			continue
		}
		if tMax < 0 {
			tMax = 0
		}
		if tMax < 1e-12 {
			degenerate++
			if degenerate > 3*m+50 {
				useBland = true
			}
		} else {
			degenerate = 0
		}
		// Apply the step.
		s.x[enter] += dir * tMax
		for i := 0; i < m; i++ {
			s.x[s.basis[i]] -= dir * tMax * w[i]
		}
		if leave < 0 {
			// Bound flip: entering switches bound, basis unchanged.
			if dir > 0 {
				s.stat[enter] = atUpper
				s.x[enter] = s.ub[enter]
			} else {
				s.stat[enter] = atLower
				s.x[enter] = s.lb[enter]
			}
			continue
		}
		lv := s.basis[leave]
		if leaveToUpper {
			s.stat[lv] = atUpper
			s.x[lv] = s.ub[lv]
		} else {
			s.stat[lv] = atLower
			s.x[lv] = s.lb[lv]
		}
		gammaEnter := s.gamma[enter]
		alphaE := w[leave]
		if devex && !useBland {
			copy(s.rho[:m], s.binv[leave*m:leave*m+m]) // pre-pivot row
		}
		s.stat[enter] = basic
		s.basis[leave] = enter
		if !s.pivotUpdate(leave, w) {
			return IterLimit, it // excluded by the pre-pivot magnitude check
		}
		if devex && !useBland {
			// Devex reference-weight update from the pre-pivot row.
			s.gamma[lv] = math.Max(gammaEnter/(alphaE*alphaE), 1)
			ratio2 := gammaEnter / (alphaE * alphaE)
			maxGamma := 1.0
			for j := 0; j < s.n; j++ {
				if s.stat[j] == basic || j == lv || s.lb[j] == s.ub[j] {
					continue
				}
				idx, vals := s.col(j)
				alpha := 0.0
				for k, row := range idx {
					alpha += s.rho[row] * vals[k]
				}
				if alpha != 0 {
					if cand := alpha * alpha * ratio2; cand > s.gamma[j] {
						s.gamma[j] = cand
					}
				}
				if s.gamma[j] > maxGamma {
					maxGamma = s.gamma[j]
				}
			}
			if maxGamma > 1e10 {
				for j := 0; j < s.n; j++ {
					s.gamma[j] = 1
				}
			}
		}
		if s.pivots >= s.opts.RefactorEvery {
			if !s.refactor() {
				return IterLimit, it
			}
			s.computeXB()
		}
	}
	return IterLimit, maxIters
}

// dual runs bounded-variable dual simplex iterations on the phase-2
// objective until primal feasibility is restored (Optimal), primal
// infeasibility is proven (Infeasible), or the budget runs out
// (IterLimit — the caller then falls back to a cold solve).
func (s *spx) dual(maxIters int) (Status, int) {
	m := s.m
	w := s.w[:m]
	rho := s.rho[:m]
	for it := 0; it < maxIters; it++ {
		if it%64 == 0 && s.checkAbort() {
			return IterLimit, it
		}
		// Leaving row: the most primal-infeasible basic variable.
		r := -1
		worst := s.eps
		below := false
		for i := 0; i < m; i++ {
			bi := s.basis[i]
			if v := s.lb[bi] - s.x[bi]; v > worst {
				worst, r, below = v, i, true
			}
			if v := s.x[bi] - s.ub[bi]; v > worst {
				worst, r, below = v, i, false
			}
		}
		if r < 0 {
			return Optimal, it
		}
		copy(rho, s.binv[r*m:r*m+m])
		s.duals(s.obj2)
		// Entering column: dual ratio test over eligible nonbasics.
		enter := -1
		bestRatio := math.Inf(1)
		bestAlpha := 0.0
		for j := 0; j < s.n; j++ {
			if s.stat[j] == basic || s.lb[j] == s.ub[j] {
				continue
			}
			idx, vals := s.col(j)
			alpha := 0.0
			for k, row := range idx {
				alpha += rho[row] * vals[k]
			}
			if math.Abs(alpha) <= 1e-9 {
				continue
			}
			free := math.IsInf(s.lb[j], -1) && math.IsInf(s.ub[j], 1)
			// Moving x_j by δ changes x_B[r] by −α·δ; we need it to
			// increase (below) or decrease (above), within j's one
			// admissible direction.
			if !free {
				if below {
					if s.stat[j] == atLower && alpha >= 0 {
						continue
					}
					if s.stat[j] == atUpper && alpha <= 0 {
						continue
					}
				} else {
					if s.stat[j] == atLower && alpha <= 0 {
						continue
					}
					if s.stat[j] == atUpper && alpha >= 0 {
						continue
					}
				}
			}
			d := s.reducedCost(s.obj2, j)
			ratio := math.Abs(d) / math.Abs(alpha)
			if ratio < bestRatio-1e-12 ||
				(ratio < bestRatio+1e-12 && math.Abs(alpha) > bestAlpha) {
				bestRatio, bestAlpha, enter = ratio, math.Abs(alpha), j
			}
		}
		if enter < 0 {
			// No column can repair row r: the bound change made the LP
			// primally infeasible.
			return Infeasible, it
		}
		s.ftran(enter, w)
		alphaE := w[r]
		if math.Abs(alphaE) < 1e-9 {
			// Factorization drift: rebuild and retry the iteration. With
			// a fresh factorization the pivot is genuinely degenerate —
			// bail out to the cold path.
			if s.pivots == 0 {
				return IterLimit, it
			}
			if !s.refactor() {
				return IterLimit, it
			}
			s.computeXB()
			continue
		}
		bi := s.basis[r]
		target := s.ub[bi]
		if below {
			target = s.lb[bi]
		}
		delta := (s.x[bi] - target) / alphaE
		// Bound-flipping ratio test (box-bounded dual simplex): when the
		// full repair step would carry the entering column past its other
		// bound, flip it there instead — no basis change — and let the
		// next iteration continue repairing the leftover infeasibility
		// with the remaining columns. Without this, entering columns overshoot
		// their boxes and each pivot manufactures fresh infeasibilities.
		if span := s.ub[enter] - s.lb[enter]; !math.IsInf(span, 1) && math.Abs(delta) > span+s.eps {
			flip := span
			if delta < 0 {
				flip = -span
			}
			for i := 0; i < m; i++ {
				s.x[s.basis[i]] -= flip * w[i]
			}
			if flip > 0 {
				s.stat[enter] = atUpper
				s.x[enter] = s.ub[enter]
			} else {
				s.stat[enter] = atLower
				s.x[enter] = s.lb[enter]
			}
			continue
		}
		s.x[enter] += delta
		for i := 0; i < m; i++ {
			s.x[s.basis[i]] -= delta * w[i]
		}
		s.x[bi] = target
		if below || s.lb[bi] == s.ub[bi] {
			s.stat[bi] = atLower
		} else {
			s.stat[bi] = atUpper
		}
		s.stat[enter] = basic
		s.basis[r] = enter
		if !s.pivotUpdate(r, w) {
			if !s.refactor() {
				return IterLimit, it
			}
			s.computeXB()
			continue
		}
		if s.pivots >= s.opts.RefactorEvery {
			if !s.refactor() {
				return IterLimit, it
			}
			s.computeXB()
		}
	}
	return IterLimit, maxIters
}

// result packages the current point, capturing the basis on optimality.
func (s *spx) result(st Status, iters int, coldRestart bool) Result {
	in := s.in
	res := Result{Status: st, Iters: iters, ColdRestart: coldRestart}
	res.X = make([]float64, in.nStruct)
	copy(res.X, s.x[:in.nStruct])
	for j := 0; j < in.nStruct; j++ {
		res.Obj += in.obj[j] * res.X[j]
	}
	if st == Optimal {
		res.Basis = s.captureBasis()
	}
	return res
}

// captureBasis snapshots the final basis for SolveFrom. Basic artificials
// (always at zero after a successful phase 1) are swapped for their row's
// slack so the snapshot only references structural and slack columns;
// when the slack is itself basic elsewhere the basis is not capturable
// and nil is returned (the caller then cold-starts descendants).
func (s *spx) captureBasis() *Basis {
	m := s.m
	for i := 0; i < m; i++ {
		if s.basis[i] < s.nTot {
			continue
		}
		k := s.basis[i] - s.nTot
		sj := s.in.nStruct + int(s.artRow[k])
		if s.stat[sj] == basic {
			return nil
		}
		// The artificial sits at zero, so relabeling the row's slack as
		// basic keeps the same point; a negative artificial sign negates
		// the corresponding row of the inverse.
		s.basis[i] = sj
		s.stat[sj] = basic
		if s.artSign[k] < 0 {
			row := s.binv[i*m : i*m+m]
			for c := range row {
				row[c] = -row[c]
			}
		}
	}
	b := &Basis{basic: make([]int32, m), stat: make([]vstat, s.nTot)}
	for i := 0; i < m; i++ {
		b.basic[i] = int32(s.basis[i])
	}
	copy(b.stat, s.stat[:s.nTot])
	s.lastBasis = b
	return b
}
