package lp

import "math"

// Deterministic EXPAND-style bound perturbation (Gill, Murray, Saunders,
// Wright): the working bounds of a solve are expanded outward by tiny
// pseudo-random amounts before the simplex runs, so that the ratio-test
// ties of a degenerate vertex — many basic variables sitting exactly on a
// bound — resolve into strictly positive (if tiny) steps instead of
// zero-length pivots that cycle. The shifts are a pure function of
// (instance fingerprint, Options.PerturbSeq, column index, bound side):
// no global state, no clock, no math/rand — the same solve always sees
// the same shifted bounds, which is what lets the deterministic parallel
// branch-and-bound of package mip thread a node sequence number through
// PerturbSeq and keep its byte-identical-for-any-worker-count contract.
//
// At optimality the shifts are removed again (spx.finish): nonbasic
// columns snap back to the exact bounds, basic values are recomputed, and
// a short dual/primal clean-up re-solve repairs the residual
// infeasibility, so callers only ever observe exact solutions.

// perturbScaleFactor sizes the shifts relative to Options.Eps: shifts of
// ~1% of the feasibility tolerance are large enough to separate exact
// ratio-test ties (which EXPAND needs) yet small enough that every
// perturbed iterate is feasible for the true bounds within tolerance and
// the clean-up re-solve finishes in a handful of pivots.
const perturbScaleFactor = 1e-2

// mix64 is the splitmix64 finalizer: a cheap, high-quality bijective
// mixer used both to derive per-solve seeds and per-column shifts.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// perturbUnit maps (seed, k) to a float in [1/2, 1): the classic EXPAND
// recipe keeps every shift within a factor two of the scale so no bound
// receives a degenerate (near-zero) shift that would fail to break ties.
func perturbUnit(seed, k uint64) float64 {
	u := mix64(seed ^ mix64(k))
	return 0.5 + 0.5*float64(u>>11)/(1<<53)
}

// fingerprint hashes the assembled instance (dimensions, sparsity
// pattern, coefficients, objective, right-hand sides and slack bounds)
// with FNV-1a so perturbation seeds are a pure function of the matrix:
// two Prepare calls over the same problem perturb identically, on any
// machine.
func (in *Instance) fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	word := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	word(uint64(in.m))
	word(uint64(in.nStruct))
	for _, v := range in.colPtr {
		word(uint64(uint32(v)))
	}
	for _, v := range in.rowIdx {
		word(uint64(uint32(v)))
	}
	for _, v := range in.vals {
		word(math.Float64bits(v))
	}
	for _, v := range in.obj {
		word(math.Float64bits(v))
	}
	for _, v := range in.rhs {
		word(math.Float64bits(v))
	}
	for _, v := range in.slackLb {
		word(math.Float64bits(v))
	}
	for _, v := range in.slackUb {
		word(math.Float64bits(v))
	}
	return h
}

// perturbBounds expands every finite working bound outward by a seeded
// tiny amount, saving the exact bounds for spx.finish. Fixed columns
// (lb == ub — branched binaries, equality-row slacks) become tiny boxes,
// which is exactly where the scheduling models' degeneracy lives.
func (s *spx) perturbBounds() {
	in := s.in
	seed := mix64(in.fprint ^ mix64(s.opts.PerturbSeq))
	scale := perturbScaleFactor * s.eps
	copy(s.lbTrue, s.lb[:s.nTot])
	copy(s.ubTrue, s.ub[:s.nTot])
	for j := 0; j < s.nTot; j++ {
		if !math.IsInf(s.lb[j], -1) {
			f := perturbUnit(seed, uint64(2*j))
			s.lb[j] -= scale * f * (1 + math.Abs(s.lb[j]))
		}
		if !math.IsInf(s.ub[j], 1) {
			f := perturbUnit(seed, uint64(2*j+1))
			s.ub[j] += scale * f * (1 + math.Abs(s.ub[j]))
		}
	}
	s.perturbed = true
	s.didPerturb = true
}

// perturbCosts shifts the phase-2 cost of every nonbasic bounded column
// by a tiny seeded amount in the direction that preserves the installed
// basis's dual feasibility: at-lower columns get a positive shift (their
// reduced cost d = c_j − y·A_j moves further ≥ 0), at-upper columns a
// negative one. This is the dual-simplex analog of the bound expansion
// above: warm re-solves in branch-and-bound stall not on primal
// degeneracy but on DUAL degeneracy — every reduced cost sits at zero, so
// every dual ratio ties at zero, every dual step has zero length, and the
// BFRT walks an arbitrary plateau. Distinct tiny reduced costs make the
// breakpoint order meaningful and every dual step strictly improving,
// which is what terminates the walk. finish() restores the exact costs
// and re-optimizes, so reported objectives never see the shifts.
func (s *spx) perturbCosts() {
	in := s.in
	seed := mix64(in.fprint ^ mix64(s.opts.PerturbSeq))
	scale := perturbScaleFactor * s.eps
	for j := 0; j < s.nTot; j++ {
		f := scale * perturbUnit(seed, uint64(2*s.nTot+j)) * (1 + math.Abs(s.obj2[j]))
		switch s.stat[j] {
		case atLower:
			if !math.IsInf(s.lb[j], -1) {
				s.obj2[j] += f
			}
		case atUpper:
			if !math.IsInf(s.ub[j], 1) {
				s.obj2[j] -= f
			}
		}
	}
	s.costPerturbed = true
	s.didPerturb = true
}
