package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomLP builds a feasible, bounded random LP (box-bounded variables,
// rows anchored at a known interior point), the same family the cold
// solver's property test uses.
func randomLP(rng *rand.Rand) *Problem {
	n := 2 + rng.Intn(6)
	m := 1 + rng.Intn(6)
	p := NewProblem(n)
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		p.Obj[j] = float64(rng.Intn(11) - 5)
		p.Ub[j] = float64(1 + rng.Intn(10))
		x0[j] = rng.Float64() * p.Ub[j]
	}
	for i := 0; i < m; i++ {
		var coefs []Coef
		lhs := 0.0
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.6 {
				v := float64(rng.Intn(7) - 3)
				if v != 0 {
					coefs = append(coefs, Coef{j, v})
					lhs += v * x0[j]
				}
			}
		}
		if len(coefs) == 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			p.AddRow(coefs, LE, lhs+rng.Float64()*3)
		case 1:
			p.AddRow(coefs, GE, lhs-rng.Float64()*3)
		default:
			p.AddRow(coefs, EQ, lhs)
		}
	}
	return p
}

// TestSparseMatchesDenseRandom cross-checks the sparse solver against the
// preserved dense reference on random LPs: same status, and objectives
// within 1e-9 when both are optimal.
func TestSparseMatchesDenseRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomLP(rng)
		sp := Solve(p, Options{})
		dn := SolveDense(p, Options{})
		if sp.Status != dn.Status {
			t.Logf("seed %d: sparse=%v dense=%v", seed, sp.Status, dn.Status)
			return false
		}
		// Perturbation must be invisible in results: same status, same
		// objective, no shift residue in the reported point.
		spP := Solve(p, Options{Perturb: true, PerturbSeq: uint64(seed)})
		if spP.Status != dn.Status {
			t.Logf("seed %d: perturbed sparse=%v dense=%v", seed, spP.Status, dn.Status)
			return false
		}
		if sp.Status != Optimal {
			return true
		}
		if math.Abs(sp.Obj-dn.Obj) > 1e-9*(1+math.Abs(dn.Obj)) {
			t.Logf("seed %d: sparse obj=%g dense obj=%g", seed, sp.Obj, dn.Obj)
			return false
		}
		if math.Abs(spP.Obj-dn.Obj) > 1e-9*(1+math.Abs(dn.Obj)) {
			t.Logf("seed %d: perturbed sparse obj=%g dense obj=%g", seed, spP.Obj, dn.Obj)
			return false
		}
		for j := range spP.X {
			if spP.X[j] < p.Lb[j]-1e-9 || spP.X[j] > p.Ub[j]+1e-9 {
				t.Logf("seed %d: perturbed x[%d]=%g outside true bounds [%g,%g]",
					seed, j, spP.X[j], p.Lb[j], p.Ub[j])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestSolveFromMatchesCold simulates branch-and-bound: solve cold, then
// repeatedly tighten a single bound and dual-reoptimize from the previous
// basis; every warm result must agree with an independent cold solve.
func TestSolveFromMatchesCold(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomLP(rng)
		in := Prepare(p)
		lb := append([]float64(nil), p.Lb...)
		ub := append([]float64(nil), p.Ub...)
		res := in.Solve(lb, ub, Options{})
		if res.Status != Optimal {
			return true
		}
		basis := res.Basis
		for step := 0; step < 6 && basis != nil; step++ {
			j := rng.Intn(p.NumVars())
			v := res.X[j]
			if rng.Intn(2) == 0 {
				ub[j] = math.Floor(v) // branch down
			} else {
				lb[j] = math.Ceil(v) // branch up
			}
			if lb[j] > ub[j] {
				lb[j], ub[j] = ub[j], lb[j]
			}
			warm := in.SolveFrom(basis, lb, ub, Options{})
			cold := SolveDense(&Problem{Obj: p.Obj, Lb: lb, Ub: ub, Rows: p.Rows}, Options{})
			if warm.Status == IterLimit || cold.Status == IterLimit {
				return true // budget artifacts are not a disagreement
			}
			if (warm.Status == Optimal) != (cold.Status == Optimal) {
				t.Logf("seed %d step %d: warm=%v cold=%v", seed, step, warm.Status, cold.Status)
				return false
			}
			if warm.Status != Optimal {
				return true // both infeasible/unbounded: done with this chain
			}
			if math.Abs(warm.Obj-cold.Obj) > 1e-9*(1+math.Abs(cold.Obj)) {
				t.Logf("seed %d step %d: warm obj=%g cold obj=%g (coldRestart=%v)",
					seed, step, warm.Obj, cold.Obj, warm.ColdRestart)
				return false
			}
			res, basis = warm, warm.Basis
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSolveFromHotPath pins the diving pattern: a SolveFrom immediately
// following the solve that produced the basis must succeed without a cold
// restart.
func TestSolveFromHotPath(t *testing.T) {
	// Knapsack relaxation: max 4a+5b+3c st 2a+3b+c ≤ 4 over [0,1]³.
	p := NewProblem(3)
	p.Obj = []float64{-4, -5, -3}
	for j := range p.Ub {
		p.Ub[j] = 1
	}
	p.AddRow([]Coef{{0, 2}, {1, 3}, {2, 1}}, LE, 4)
	in := Prepare(p)
	res := in.Solve(p.Lb, p.Ub, Options{})
	if res.Status != Optimal || res.Basis == nil {
		t.Fatalf("cold: %+v", res)
	}
	// b is fractional (1/3) at the optimum; branch it down to 0.
	lb := append([]float64(nil), p.Lb...)
	ub := append([]float64(nil), p.Ub...)
	ub[1] = 0
	warm := in.SolveFrom(res.Basis, lb, ub, Options{})
	if warm.Status != Optimal {
		t.Fatalf("warm: %+v", warm)
	}
	if warm.ColdRestart {
		t.Fatal("diving SolveFrom took the cold-restart path")
	}
	// a=1, c=1 → −7.
	if math.Abs(warm.Obj+7) > 1e-9 {
		t.Fatalf("warm obj=%g want −7", warm.Obj)
	}
	if warm.Iters >= res.Iters && res.Iters > 2 {
		t.Fatalf("warm solve took %d iters, cold took %d — no reuse benefit", warm.Iters, res.Iters)
	}
}

// TestSolveFromDetectsInfeasible: tightening a bound past the feasible
// region must be reported as Infeasible by the dual simplex.
func TestSolveFromDetectsInfeasible(t *testing.T) {
	// x + y ≥ 4 with x,y ≤ 3.
	p := NewProblem(2)
	p.Obj = []float64{1, 1}
	p.Ub[0], p.Ub[1] = 3, 3
	p.AddRow([]Coef{{0, 1}, {1, 1}}, GE, 4)
	in := Prepare(p)
	res := in.Solve(p.Lb, p.Ub, Options{})
	if res.Status != Optimal {
		t.Fatalf("cold: %+v", res)
	}
	lb := []float64{0, 0}
	ub := []float64{0, 3} // x fixed to 0 → y ≥ 4 > 3: infeasible
	warm := in.SolveFrom(res.Basis, lb, ub, Options{})
	if warm.Status != Infeasible {
		t.Fatalf("warm status=%v want infeasible", warm.Status)
	}
}

// TestPreparedReuse: one Instance must serve many independent bound sets
// without cross-talk.
func TestPreparedReuse(t *testing.T) {
	p := NewProblem(2)
	p.Obj = []float64{-1, -1}
	p.Ub[0], p.Ub[1] = 5, 5
	p.AddRow([]Coef{{0, 1}, {1, 1}}, LE, 6)
	in := Prepare(p)
	for i := 0; i < 4; i++ {
		ubv := float64(2 + i)
		res := in.Solve([]float64{0, 0}, []float64{ubv, 5}, Options{})
		want := -math.Min(ubv+5, 6)
		if res.Status != Optimal || math.Abs(res.Obj-want) > 1e-9 {
			t.Fatalf("i=%d: got %+v want obj %g", i, res, want)
		}
	}
}

// TestPricingAblation: Dantzig pricing must reach the same optimum as
// Devex on random LPs (it is the ablation baseline in the benchmarks).
func TestPricingAblation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomLP(rng)
		devex := Solve(p, Options{Pricing: PricingDevex})
		dantzig := Solve(p, Options{Pricing: PricingDantzig})
		if devex.Status != dantzig.Status {
			return false
		}
		if devex.Status != Optimal {
			return true
		}
		return math.Abs(devex.Obj-dantzig.Obj) <= 1e-9*(1+math.Abs(devex.Obj))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
