package lp

import "math"

// This file implements the sparse LU factorization that backs the
// simplex basis: Markowitz-style pivot selection with threshold partial
// pivoting, Suhl–Suhl-style sparse triangular FTRAN/BTRAN solves, and a
// product-form eta file for basis updates. It replaces the former dense
// m×m explicit inverse (kept in SolveDense as the cross-check oracle):
// per-iteration work drops from O(m²) to O(nnz of the factors), which is
// what lifts the row ceiling on the scheduling ILPs.
//
// Everything here is deterministic: pivot selection scans candidates in
// a fixed order with exact tie-breaks, and every solve applies float
// operations in a fixed order, so a factorization (and any FTRAN/BTRAN
// against it) is a bit-for-bit pure function of the basis columns and
// the eta history. sparse.go builds on that to make warm re-solves pure
// functions of (matrix, basis, bounds, seq) — see the replay-recipe
// comments there and DESIGN.md ("Sparse LU core").

// luThreshold is the threshold-partial-pivoting factor: a pivot must
// satisfy |a| ≥ luThreshold·(largest |entry| in its column). Smaller
// values trade worst-case stability (1.0 = exact partial pivoting) for
// Markowitz freedom to pick low-fill pivots; 0.05 was chosen by sweeping
// the degenerate-scheduling fixture (see ilpsched.TestDegenerateSchedul-
// ingModelStallCeiling), where it also gives the least-degenerate pivot
// paths of the sampled settings, and drift is bounded by the periodic
// refactorization plus the dense cross-check suite.
const luThreshold = 0.05

// luAbsPivot is the absolute singularity cutoff: a stage whose best
// eligible pivot is smaller than this declares the basis singular, the
// same constant the dense Gauss–Jordan refactorization used.
const luAbsPivot = 1e-10

// luScanLimit bounds the Markowitz search: after this many candidate
// columns have yielded at least one eligible pivot, the best seen wins.
// A zero-cost pivot (singleton row or column) short-circuits instantly.
// 32 buys a near-complete search on scheduling-ILP bases (most stages
// short-circuit on singletons anyway) and measurably less fill than
// tighter limits on the large registry models.
const luScanLimit = 32

// luEta is one product-form update: basis position `leave` was replaced
// by a column whose FTRAN image had value piv at position leave; the
// remaining nonzeros of that image live in the shared idx/val arrays.
type luFactor struct {
	m int

	// Stage permutations: stage k eliminated matrix row prow[k] and basis
	// position (column) pcol[k].
	prow, pcol []int32

	// L multipliers per stage (CSR-like): stage k recorded
	// row[lRow[t]] -= lVal[t]·row[prow[k]] for t in [lPtr[k], lPtr[k+1]).
	lPtr []int32
	lRow []int32
	lVal []float64

	// U rows in stage order: row k holds the retired pivot row, its
	// off-pivot entries at basis positions eliminated in later stages.
	uPtr []int32
	uCol []int32
	uVal []float64
	upiv []float64 // pivot value per stage

	// U by column (for BTRAN): entries of basis position c are
	// (stage, value) pairs, stages ascending.
	ucPtr   []int32
	ucStage []int32
	ucVal   []float64

	// Product-form eta file appended by appendEta.
	ePtr   []int32
	eIdx   []int32
	eVal   []float64
	eLeave []int32
	ePiv   []float64

	nnzFactor int // nnz(L) + nnz(U) + m pivots after factor()
	nnzBasis  int // nnz of the factored basis matrix

	// --- factorization workspace, reused across factor() calls ---
	rowInd  [][]int32   // active row patterns (basis positions, sorted)
	rowVal  [][]float64 // matching values
	colRows [][]int32   // alive rows holding a nonzero in each column

	bucketOf    []int32   // current column-count bucket per column (−1: dead)
	posInBucket []int32   // position inside that bucket
	buckets     [][]int32 // columns grouped by exact nonzero count

	acc      []float64 // dense per-column gather scratch
	touched  []int32
	elimRows []int32 // snapshot of the pivot column's rows
	mergeInd []int32 // row-merge output scratch
	mergeVal []float64
	zs       []float64 // BTRAN stage scratch
}

func newLUFactor(m int) *luFactor {
	f := &luFactor{
		m:           m,
		prow:        make([]int32, m),
		pcol:        make([]int32, m),
		lPtr:        make([]int32, m+1),
		uPtr:        make([]int32, m+1),
		upiv:        make([]float64, m),
		ucPtr:       make([]int32, m+1),
		ePtr:        make([]int32, 1),
		rowInd:      make([][]int32, m),
		rowVal:      make([][]float64, m),
		colRows:     make([][]int32, m),
		bucketOf:    make([]int32, m),
		posInBucket: make([]int32, m),
		buckets:     make([][]int32, m+1),
		acc:         make([]float64, m),
		touched:     make([]int32, 0, m),
		zs:          make([]float64, m),
	}
	return f
}

// resetEtas drops the eta file (after a fresh factorization).
func (f *luFactor) resetEtas() {
	f.ePtr = f.ePtr[:1]
	f.eIdx = f.eIdx[:0]
	f.eVal = f.eVal[:0]
	f.eLeave = f.eLeave[:0]
	f.ePiv = f.ePiv[:0]
}

// appendEta records the product-form update for a basis change at
// position leave with FTRAN image w (dense, by basis position). The
// caller has already validated the pivot magnitude.
func (f *luFactor) appendEta(leave int, w []float64) {
	for i, v := range w[:f.m] {
		if v != 0 && i != leave {
			f.eIdx = append(f.eIdx, int32(i))
			f.eVal = append(f.eVal, v)
		}
	}
	f.ePtr = append(f.ePtr, int32(len(f.eIdx)))
	f.eLeave = append(f.eLeave, int32(leave))
	f.ePiv = append(f.ePiv, w[leave])
}

// nEtas returns the number of product-form updates applied since the
// last factorization.
func (f *luFactor) nEtas() int { return len(f.eLeave) }

// value returns row i's entry at column position c (0 when absent) by
// binary search of the sorted row pattern.
func (f *luFactor) value(i int, c int32) float64 {
	ind := f.rowInd[i]
	lo, hi := 0, len(ind)
	for lo < hi {
		mid := (lo + hi) / 2
		if ind[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ind) && ind[lo] == c {
		return f.rowVal[i][lo]
	}
	return 0
}

// moveCol relocates column c to the bucket for newCount, maintaining the
// swap-delete position index. Bucket order is a deterministic function
// of the (deterministic) elimination history, which is all pivot
// selection needs.
func (f *luFactor) moveCol(c int32, newCount int) {
	old := f.bucketOf[c]
	if old == int32(newCount) {
		return
	}
	if old >= 0 {
		b := f.buckets[old]
		p := f.posInBucket[c]
		last := b[len(b)-1]
		b[p] = last
		f.posInBucket[last] = p
		f.buckets[old] = b[:len(b)-1]
	}
	f.bucketOf[c] = int32(newCount)
	f.posInBucket[c] = int32(len(f.buckets[newCount]))
	f.buckets[newCount] = append(f.buckets[newCount], c)
}

// dropCol removes column c from the bucket structure (it is being
// eliminated).
func (f *luFactor) dropCol(c int32) {
	old := f.bucketOf[c]
	if old < 0 {
		return
	}
	b := f.buckets[old]
	p := f.posInBucket[c]
	last := b[len(b)-1]
	b[p] = last
	f.posInBucket[last] = p
	f.buckets[old] = b[:len(b)-1]
	f.bucketOf[c] = -1
}

// removeRowFromCol deletes row i from colRows[c] (swap-delete; the list
// is unordered but its order is deterministic).
func (f *luFactor) removeRowFromCol(i int32, c int32) {
	list := f.colRows[c]
	for p, r := range list {
		if r == i {
			list[p] = list[len(list)-1]
			f.colRows[c] = list[:len(list)-1]
			return
		}
	}
}

// factor builds the LU decomposition of the m×m basis matrix whose
// column at position p is given by col(p) as parallel (row, value)
// slices (duplicate rows accumulate, matching the dense refactorization
// it replaces). Reports false when the basis is numerically singular.
// Any previous factorization and eta file are discarded.
func (f *luFactor) factor(col func(pos int) ([]int32, []float64)) bool {
	m := f.m
	f.resetEtas()
	f.lPtr = f.lPtr[:1]
	f.lPtr[0] = 0
	f.lRow = f.lRow[:0]
	f.lVal = f.lVal[:0]
	f.uPtr = f.uPtr[:1]
	f.uPtr[0] = 0
	f.uCol = f.uCol[:0]
	f.uVal = f.uVal[:0]
	if m == 0 {
		f.nnzFactor, f.nnzBasis = 0, 0
		return true
	}

	// Gather: accumulate each column densely, then scatter into row-major
	// active storage. Iterating columns in order keeps every row pattern
	// sorted by column position without an explicit sort.
	nnz := 0
	for p := 0; p < m; p++ {
		idx, vals := col(p)
		f.touched = f.touched[:0]
		for k, r := range idx {
			if f.acc[r] == 0 {
				f.touched = append(f.touched, r)
			}
			f.acc[r] += vals[k]
		}
		list := f.colRows[p][:0]
		for _, r := range f.touched {
			if f.acc[r] != 0 {
				list = append(list, r)
				nnz++
			}
			// leave acc[r] for the scatter pass below
		}
		// Sort the row list ascending for a canonical start state.
		insertionSortInt32(list)
		f.colRows[p] = list
		for _, r := range list {
			f.rowInd[r] = append(f.rowInd[r], int32(p))
			f.rowVal[r] = append(f.rowVal[r], f.acc[r])
		}
		for _, r := range f.touched {
			f.acc[r] = 0
		}
	}
	f.nnzBasis = nnz

	// Bucket initialization from exact column counts.
	for c := 0; c < m; c++ {
		cnt := len(f.colRows[c])
		f.bucketOf[c] = int32(cnt)
		f.posInBucket[c] = int32(len(f.buckets[cnt]))
		f.buckets[cnt] = append(f.buckets[cnt], int32(c))
	}

	ok := true
	for stage := 0; stage < m; stage++ {
		pr, pc, piv := f.selectPivot()
		if pr < 0 {
			ok = false
			break
		}
		f.eliminate(stage, pr, pc, piv)
	}
	if ok {
		f.buildUTranspose()
		f.nnzFactor = len(f.lVal) + len(f.uVal) + m
	}
	// Release row/column workspace for the next factorization.
	for i := 0; i < m; i++ {
		f.rowInd[i] = f.rowInd[i][:0]
		f.rowVal[i] = f.rowVal[i][:0]
		f.colRows[i] = f.colRows[i][:0]
	}
	for k := range f.buckets {
		f.buckets[k] = f.buckets[k][:0]
	}
	return ok
}

// selectPivot runs the bounded Markowitz search: columns are examined in
// increasing nonzero-count order (bucket order within a count), each
// contributing its threshold-eligible entries as candidates scored by
// (rowCount−1)·(colCount−1). Ties break on larger |pivot|, then smaller
// row index, then earlier scan order — all deterministic.
func (f *luFactor) selectPivot() (int32, int32, float64) {
	bestRow, bestCol := int32(-1), int32(-1)
	bestVal := 0.0
	bestCost := math.MaxInt64 - 1
	scanned := 0
	for cnt := 1; cnt <= f.m; cnt++ {
		for _, c := range f.buckets[cnt] {
			rows := f.colRows[c]
			colmax := 0.0
			for _, i := range rows {
				if a := math.Abs(f.value(int(i), c)); a > colmax {
					colmax = a
				}
			}
			if colmax < luAbsPivot {
				continue // numerically empty column; unusable this stage
			}
			eligible := false
			for _, i := range rows {
				v := f.value(int(i), c)
				a := math.Abs(v)
				if a < luThreshold*colmax || a < luAbsPivot {
					continue
				}
				eligible = true
				cost := (len(f.rowInd[i]) - 1) * (cnt - 1)
				if cost < bestCost ||
					(cost == bestCost && (a > math.Abs(bestVal) ||
						(a == math.Abs(bestVal) && i < bestRow))) {
					bestCost, bestRow, bestCol, bestVal = cost, i, c, v
				}
			}
			if eligible {
				scanned++
				if bestCost == 0 || scanned >= luScanLimit {
					return bestRow, bestCol, bestVal
				}
			}
		}
	}
	return bestRow, bestCol, bestVal
}

// eliminate retires pivot (row pr, column pc, value piv) as stage k:
// records the U row and L multipliers and updates the active matrix,
// column lists and buckets.
func (f *luFactor) eliminate(k int, pr, pc int32, piv float64) {
	f.prow[k] = pr
	f.pcol[k] = pc
	f.upiv[k] = piv
	f.dropCol(pc)

	// Retire the pivot row: remove it from every column list (its entries
	// all reference alive columns) and emit the U row.
	pInd, pVal := f.rowInd[pr], f.rowVal[pr]
	for t, c := range pInd {
		f.removeRowFromCol(pr, c)
		if c != pc {
			f.moveCol(c, len(f.colRows[c]))
			f.uCol = append(f.uCol, c)
			f.uVal = append(f.uVal, pVal[t])
		}
	}
	f.uPtr = append(f.uPtr, int32(len(f.uCol)))

	// Eliminate the pivot column from the remaining rows.
	f.elimRows = append(f.elimRows[:0], f.colRows[pc]...)
	for _, i := range f.elimRows {
		l := f.value(int(i), pc) / piv
		f.lRow = append(f.lRow, i)
		f.lVal = append(f.lVal, l)
		f.mergeRow(int(i), pInd, pVal, l, pc)
	}
	f.lPtr = append(f.lPtr, int32(len(f.lRow)))
	f.colRows[pc] = f.colRows[pc][:0]
	f.rowInd[pr] = f.rowInd[pr][:0]
	f.rowVal[pr] = f.rowVal[pr][:0]
}

// mergeRow applies row_i −= l·pivotRow, dropping the pivot column from
// the result and keeping column lists and buckets exact (fills append,
// exact cancellations delete).
func (f *luFactor) mergeRow(i int, pInd []int32, pVal []float64, l float64, pc int32) {
	aInd, aVal := f.rowInd[i], f.rowVal[i]
	out := f.mergeInd[:0]
	outV := f.mergeVal[:0]
	pa, pb := 0, 0
	for pa < len(aInd) || pb < len(pInd) {
		switch {
		case pb >= len(pInd) || (pa < len(aInd) && aInd[pa] < pInd[pb]):
			out = append(out, aInd[pa])
			outV = append(outV, aVal[pa])
			pa++
		case pa >= len(aInd) || pInd[pb] < aInd[pa]:
			c := pInd[pb]
			if c != pc { // fill-in
				v := -l * pVal[pb]
				if v != 0 {
					out = append(out, c)
					outV = append(outV, v)
					f.colRows[c] = append(f.colRows[c], int32(i))
					f.moveCol(c, len(f.colRows[c]))
				}
			}
			pb++
		default: // same column
			c := aInd[pa]
			if c != pc {
				v := aVal[pa] - l*pVal[pb]
				if v != 0 {
					out = append(out, c)
					outV = append(outV, v)
				} else { // exact cancellation
					f.removeRowFromCol(int32(i), c)
					f.moveCol(c, len(f.colRows[c]))
				}
			}
			pa++
			pb++
		}
	}
	// Swap the merged buffers into the row, keeping the old backing
	// arrays as the next merge scratch.
	f.rowInd[i], f.mergeInd = out, aInd[:0]
	f.rowVal[i], f.mergeVal = outV, aVal[:0]
}

// buildUTranspose assembles the column-wise view of U for BTRAN.
func (f *luFactor) buildUTranspose() {
	m := f.m
	for c := 0; c <= m; c++ {
		f.ucPtr[c] = 0
	}
	for _, c := range f.uCol {
		f.ucPtr[c+1]++
	}
	for c := 0; c < m; c++ {
		f.ucPtr[c+1] += f.ucPtr[c]
	}
	need := len(f.uCol)
	if cap(f.ucStage) < need {
		f.ucStage = make([]int32, need)
		f.ucVal = make([]float64, need)
	}
	f.ucStage = f.ucStage[:need]
	f.ucVal = f.ucVal[:need]
	// Fill using a moving per-column cursor (posInBucket doubles as the
	// cursor scratch — the buckets are spent once elimination finishes).
	cur := f.posInBucket[:m]
	for c := 0; c < m; c++ {
		cur[c] = f.ucPtr[c]
	}
	for k := 0; k < m; k++ {
		for t := f.uPtr[k]; t < f.uPtr[k+1]; t++ {
			c := f.uCol[t]
			f.ucStage[cur[c]] = int32(k)
			f.ucVal[cur[c]] = f.uVal[t]
			cur[c]++
		}
	}
}

// ftran solves B·w = b in place: b is the right-hand side indexed by
// matrix row (destroyed), w receives the solution indexed by basis
// position. The L pass skips stages whose pivot-row value is zero (the
// Suhl–Suhl sparse-RHS skip: simplex right-hand sides are a handful of
// nonzeros), and the eta file is applied oldest-first.
func (f *luFactor) ftran(b, w []float64) {
	m := f.m
	for k := 0; k < m; k++ {
		bk := b[f.prow[k]]
		if bk == 0 {
			continue
		}
		for t := f.lPtr[k]; t < f.lPtr[k+1]; t++ {
			b[f.lRow[t]] -= f.lVal[t] * bk
		}
	}
	for k := m - 1; k >= 0; k-- {
		v := b[f.prow[k]]
		for t := f.uPtr[k]; t < f.uPtr[k+1]; t++ {
			v -= f.uVal[t] * w[f.uCol[t]]
		}
		w[f.pcol[k]] = v / f.upiv[k]
	}
	ne := len(f.eLeave)
	for e := 0; e < ne; e++ {
		lv := f.eLeave[e]
		t := w[lv]
		if t == 0 {
			continue
		}
		t /= f.ePiv[e]
		for q := f.ePtr[e]; q < f.ePtr[e+1]; q++ {
			w[f.eIdx[q]] -= f.eVal[q] * t
		}
		w[lv] = t
	}
}

// btran solves Bᵀ·y = c in place: c is indexed by basis position
// (destroyed), y receives the solution indexed by matrix row. Eta
// transposes apply newest-first, then Uᵀ forward substitution and the
// reverse Lᵀ sweep.
func (f *luFactor) btran(c, y []float64) {
	m := f.m
	for e := len(f.eLeave) - 1; e >= 0; e-- {
		lv := f.eLeave[e]
		v := c[lv]
		for q := f.ePtr[e]; q < f.ePtr[e+1]; q++ {
			v -= f.eVal[q] * c[f.eIdx[q]]
		}
		c[lv] = v / f.ePiv[e]
	}
	zs := f.zs[:m]
	for k := 0; k < m; k++ {
		cpos := f.pcol[k]
		v := c[cpos]
		for q := f.ucPtr[cpos]; q < f.ucPtr[cpos+1]; q++ {
			v -= f.ucVal[q] * zs[f.ucStage[q]]
		}
		zs[k] = v / f.upiv[k]
	}
	for k := 0; k < m; k++ {
		y[f.prow[k]] = zs[k]
	}
	for k := m - 1; k >= 0; k-- {
		v := y[f.prow[k]]
		for t := f.lPtr[k]; t < f.lPtr[k+1]; t++ {
			v -= f.lVal[t] * y[f.lRow[t]]
		}
		y[f.prow[k]] = v
	}
}

// insertionSortInt32 sorts a short int32 slice ascending (column lists
// at gather time are near-sorted already).
func insertionSortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
