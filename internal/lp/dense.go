package lp

import (
	"math"
	"time"
)

// SolveDense minimizes the problem with the original dense-inverse primal
// simplex: phase-1 artificial start, explicit dense basis inverse updated
// in place on every pivot, Dantzig pricing with a Bland anti-cycling
// fallback. It is kept verbatim as the reference implementation: the
// cross-check tests assert that the sparse solver (Solve, SolveFrom)
// reproduces its objectives, and the solver benchmarks use it as the
// ablation baseline. New code should call Solve or Prepare/SolveFrom.
func SolveDense(p *Problem, opts Options) Result {
	if opts.Eps == 0 {
		opts.Eps = defaultEps
	}
	m := len(p.Rows)
	n := p.NumVars()
	if opts.MaxIters == 0 {
		opts.MaxIters = 50*(m+n) + 1000
	}
	s := &denseSimplex{m: m, nOrig: n, eps: opts.Eps, deadline: opts.Deadline, cancel: opts.Cancel}

	// Assemble columns: structural, then one slack per row, then
	// artificials added on demand.
	total := n + m
	s.cols = make([][]Coef, total, total+m)
	s.obj = make([]float64, total, total+m)
	s.lb = make([]float64, total, total+m)
	s.ub = make([]float64, total, total+m)
	copy(s.obj, p.Obj)
	copy(s.lb, p.Lb)
	copy(s.ub, p.Ub)
	for j := 0; j < n; j++ {
		if s.lb[j] > s.ub[j]+opts.Eps {
			return Result{Status: Infeasible}
		}
	}
	s.b = make([]float64, m)
	for i, row := range p.Rows {
		s.b[i] = row.RHS
		for _, c := range row.Coefs {
			if c.Val == 0 {
				continue
			}
			s.cols[c.Var] = append(s.cols[c.Var], Coef{Var: i, Val: c.Val})
		}
		sj := n + i
		s.cols[sj] = []Coef{{Var: i, Val: 1}}
		switch row.Sense {
		case LE:
			s.lb[sj], s.ub[sj] = 0, Inf
		case GE:
			s.lb[sj], s.ub[sj] = math.Inf(-1), 0
		case EQ:
			s.lb[sj], s.ub[sj] = 0, 0
		}
	}
	s.n = total

	// Nonbasic start: every column at its bound nearest zero (0 for free
	// variables).
	s.stat = make([]vstat, s.n, s.n+m)
	s.x = make([]float64, s.n, s.n+m)
	for j := 0; j < s.n; j++ {
		s.x[j] = startValue(s.lb[j], s.ub[j])
		if s.x[j] == s.ub[j] && !math.IsInf(s.ub[j], 1) && s.x[j] != s.lb[j] {
			s.stat[j] = atUpper
		} else {
			s.stat[j] = atLower
		}
	}

	// Residuals r = b − A·x determine which rows need an artificial.
	r := make([]float64, m)
	copy(r, s.b)
	for j := 0; j < s.n; j++ {
		if s.x[j] != 0 {
			for _, c := range s.cols[j] {
				r[c.Var] -= c.Val * s.x[j]
			}
		}
	}
	s.basis = make([]int, m)
	s.binv = make([][]float64, m)
	needPhase1 := false
	for i := 0; i < m; i++ {
		s.binv[i] = make([]float64, m)
		sj := n + i
		// Try absorbing the residual into the slack.
		v := s.x[sj] + r[i]
		if v >= s.lb[sj]-opts.Eps && v <= s.ub[sj]+opts.Eps {
			s.x[sj] = clamp(v, s.lb[sj], s.ub[sj])
			s.basis[i] = sj
			s.stat[sj] = basic
			s.binv[i][i] = 1
			continue
		}
		// Artificial column with sign matching the residual.
		resid := r[i] - (s.x[sj] - startValue(s.lb[sj], s.ub[sj])) // residual with slack at start value
		s.x[sj] = startValue(s.lb[sj], s.ub[sj])
		sign := 1.0
		if resid < 0 {
			sign = -1
		}
		aj := s.n
		s.cols = append(s.cols, []Coef{{Var: i, Val: sign}})
		s.obj = append(s.obj, 0)
		s.lb = append(s.lb, 0)
		s.ub = append(s.ub, Inf)
		s.stat = append(s.stat, basic)
		s.x = append(s.x, math.Abs(resid))
		s.n++
		s.basis[i] = aj
		s.binv[i][i] = sign
		needPhase1 = true
	}

	iters := 0
	if needPhase1 {
		// Phase 1: minimize sum of artificials.
		c1 := make([]float64, s.n)
		for j := total; j < s.n; j++ {
			c1[j] = 1
		}
		st, it := s.iterate(c1, opts.MaxIters)
		iters += it
		if st == IterLimit {
			return Result{Status: IterLimit, Iters: iters}
		}
		sum := 0.0
		for j := total; j < s.n; j++ {
			sum += s.x[j]
		}
		if sum > 1e-6 {
			return Result{Status: Infeasible, Iters: iters}
		}
		// Freeze artificials at zero for phase 2.
		for j := total; j < s.n; j++ {
			s.ub[j] = 0
			s.x[j] = 0
		}
	}

	c2 := make([]float64, s.n)
	copy(c2, s.obj)
	st, it := s.iterate(c2, opts.MaxIters-iters)
	iters += it
	res := Result{Status: st, Iters: iters}
	res.X = make([]float64, n)
	copy(res.X, s.x[:n])
	for j := 0; j < n; j++ {
		res.Obj += p.Obj[j] * res.X[j]
	}
	return res
}

type denseSimplex struct {
	m, n  int // rows, total columns (structural + slack + artificial)
	nOrig int
	cols  [][]Coef // column-wise matrix rows entries
	obj   []float64
	lb    []float64
	ub    []float64
	b     []float64

	binv     [][]float64 // m×m basis inverse
	basis    []int       // basic variable per row
	stat     []vstat
	x        []float64
	eps      float64
	deadline time.Time
	cancel   <-chan struct{}
}

// iterate runs primal simplex iterations for objective c until optimal,
// unbounded or the iteration budget runs out.
func (s *denseSimplex) iterate(c []float64, maxIters int) (Status, int) {
	if maxIters <= 0 {
		return IterLimit, 0
	}
	m := s.m
	y := make([]float64, m)
	w := make([]float64, m)
	degenerate := 0
	useBland := false
	checkDeadline := !s.deadline.IsZero()
	for it := 0; it < maxIters; it++ {
		if it%64 == 0 {
			if checkDeadline && time.Now().After(s.deadline) {
				return IterLimit, it
			}
			if s.cancel != nil {
				select {
				case <-s.cancel:
					return IterLimit, it
				default:
				}
			}
		}
		// Duals y = c_B · B⁻¹.
		for i := 0; i < m; i++ {
			y[i] = 0
		}
		for i := 0; i < m; i++ {
			cb := c[s.basis[i]]
			if cb == 0 {
				continue
			}
			row := s.binv[i]
			for k := 0; k < m; k++ {
				y[k] += cb * row[k]
			}
		}
		// Pricing.
		enter := -1
		bestViol := s.eps
		var dir float64 // +1 entering increases, −1 decreases
		for j := 0; j < s.n; j++ {
			if s.stat[j] == basic {
				continue
			}
			if s.lb[j] == s.ub[j] {
				continue // fixed
			}
			d := c[j]
			for _, cf := range s.cols[j] {
				d -= y[cf.Var] * cf.Val
			}
			var viol float64
			var dd float64
			switch {
			case s.stat[j] == atLower && d < -s.eps:
				viol, dd = -d, 1
			case s.stat[j] == atLower && d > s.eps && math.IsInf(s.lb[j], -1):
				// Free variable parked at 0 can also decrease.
				viol, dd = d, -1
			case s.stat[j] == atUpper && d > s.eps:
				viol, dd = d, -1
			default:
				continue
			}
			if useBland {
				enter, dir = j, dd
				break
			}
			if viol > bestViol {
				bestViol, enter, dir = viol, j, dd
			}
		}
		if enter < 0 {
			return Optimal, it
		}
		// Direction w = B⁻¹ A_enter.
		for i := 0; i < m; i++ {
			w[i] = 0
		}
		for _, cf := range s.cols[enter] {
			for i := 0; i < m; i++ {
				w[i] += s.binv[i][cf.Var] * cf.Val
			}
		}
		// Ratio test: entering moves by t·dir ≥ 0; basic i changes by
		// −dir·t·w[i].
		tMax := s.ub[enter] - s.lb[enter] // bound flip distance
		leave := -1
		leaveToUpper := false
		for i := 0; i < m; i++ {
			delta := -dir * w[i]
			if delta > s.eps { // basic increases toward ub
				bi := s.basis[i]
				if !math.IsInf(s.ub[bi], 1) {
					t := (s.ub[bi] - s.x[bi]) / delta
					if t < tMax-1e-12 {
						tMax, leave, leaveToUpper = t, i, true
					}
				}
			} else if delta < -s.eps { // basic decreases toward lb
				bi := s.basis[i]
				if !math.IsInf(s.lb[bi], -1) {
					t := (s.lb[bi] - s.x[bi]) / delta
					if t < tMax-1e-12 {
						tMax, leave, leaveToUpper = t, i, false
					}
				}
			}
		}
		if math.IsInf(tMax, 1) {
			return Unbounded, it
		}
		if tMax < 0 {
			tMax = 0
		}
		if tMax < 1e-12 {
			degenerate++
			if degenerate > 3*m+50 {
				useBland = true
			}
		} else {
			degenerate = 0
		}
		// Apply step.
		s.x[enter] += dir * tMax
		for i := 0; i < m; i++ {
			s.x[s.basis[i]] -= dir * tMax * w[i]
		}
		if leave < 0 {
			// Bound flip: entering just switches bound.
			if dir > 0 {
				s.stat[enter] = atUpper
				s.x[enter] = s.ub[enter]
			} else {
				s.stat[enter] = atLower
				s.x[enter] = s.lb[enter]
			}
			continue
		}
		// Basis change: leave row `leave`, variable s.basis[leave] goes
		// to a bound, enter becomes basic.
		lv := s.basis[leave]
		if leaveToUpper {
			s.stat[lv] = atUpper
			s.x[lv] = s.ub[lv]
		} else {
			s.stat[lv] = atLower
			s.x[lv] = s.lb[lv]
		}
		s.stat[enter] = basic
		s.basis[leave] = enter
		// Pivot B⁻¹: eliminate w in all rows except `leave`.
		piv := w[leave]
		if math.Abs(piv) < 1e-12 {
			return IterLimit, it // numerically stuck
		}
		rowL := s.binv[leave]
		inv := 1 / piv
		for k := 0; k < m; k++ {
			rowL[k] *= inv
		}
		for i := 0; i < m; i++ {
			if i == leave || w[i] == 0 {
				continue
			}
			f := w[i]
			ri := s.binv[i]
			for k := 0; k < m; k++ {
				ri[k] -= f * rowL[k]
			}
		}
	}
	return IterLimit, maxIters
}
