// Package lp implements a linear-programming solver: a bounded-variable
// simplex method over sparse column-major (CSC) constraint storage with
// Devex (approximate steepest-edge) pricing, a Dantzig/Bland fallback,
// and periodic basis refactorization.
//
// Two entry points serve the MILP branch-and-bound in package mip:
//
//   - Solve (or Instance.Solve) runs the cold primal simplex with a
//     phase-1 artificial start and returns, along with the optimum, an
//     opaque Basis snapshot;
//   - Instance.SolveFrom reoptimizes from a supplied Basis after bound
//     changes with the bounded-variable dual simplex — the hot path of
//     branch-and-bound, where a child node differs from its parent by a
//     single variable bound and typically re-solves in a handful of
//     iterations instead of a full cold start.
//
// Prepare assembles the sparse matrix once so that branch-and-bound can
// re-solve thousands of bound variations without re-reading the rows. The
// original dense-inverse solver is preserved as SolveDense and serves as
// the cross-check reference and ablation baseline. Only the Go standard
// library is used.
package lp

import (
	"fmt"
	"math"
	"time"
)

// Sense is a row sense.
type Sense int8

// Row senses.
const (
	LE Sense = iota // Σ a·x ≤ b
	GE              // Σ a·x ≥ b
	EQ              // Σ a·x = b
)

// Inf is the bound used for unbounded variables.
var Inf = math.Inf(1)

// Coef is one nonzero coefficient of a row.
type Coef struct {
	Var int
	Val float64
}

// Problem is a linear program: minimize Obj·x subject to rows and bounds.
type Problem struct {
	Obj  []float64 // length NumVars
	Lb   []float64
	Ub   []float64
	Rows []RowDef
}

// RowDef is one linear constraint.
type RowDef struct {
	Coefs []Coef
	Sense Sense
	RHS   float64
}

// NewProblem allocates a problem with n variables, default bounds [0, ∞)
// and zero objective.
func NewProblem(n int) *Problem {
	p := &Problem{
		Obj: make([]float64, n),
		Lb:  make([]float64, n),
		Ub:  make([]float64, n),
	}
	for i := range p.Ub {
		p.Ub[i] = Inf
	}
	return p
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.Obj) }

// AddRow appends a constraint and returns its index.
func (p *Problem) AddRow(coefs []Coef, sense Sense, rhs float64) int {
	p.Rows = append(p.Rows, RowDef{Coefs: coefs, Sense: sense, RHS: rhs})
	return len(p.Rows) - 1
}

// Status reports the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int8(s))
}

// Result holds the solution of an LP.
type Result struct {
	Status Status
	Obj    float64
	X      []float64 // length NumVars, valid for Optimal (and best-effort for IterLimit)
	Iters  int       // simplex iterations (primal + dual)
	// Basis is an opaque snapshot of the optimal basis, suitable for
	// SolveFrom. Nil unless Status == Optimal, and nil in the rare case
	// where the final basis cannot be expressed without artificial
	// columns (a redundant row whose artificial could not be swapped for
	// the row's slack).
	Basis *Basis
	// ColdRestart records that a SolveFrom call could not reuse the
	// supplied basis (singular after bound changes, or the dual simplex
	// stalled) and fell back to a cold solve.
	ColdRestart bool
	// Injected records that fault injection (Options.Inject) forced this
	// solve onto a fallback path it would not otherwise have taken.
	Injected bool
	// Perturbed records that Options.Perturb shifted the working bounds
	// during this solve; the shifts were removed before the result was
	// reported (see CleanupIters).
	Perturbed bool
	// CleanupIters is the number of simplex iterations (included in Iters)
	// the clean-up re-solve spent removing the EXPAND shifts and Harris
	// tolerance-band residuals at the end of the solve.
	CleanupIters int
}

// Pricing selects the primal pricing rule.
type Pricing int8

const (
	// PricingDevex is the default: approximate steepest-edge reference
	// weights, falling back to Bland's rule under prolonged degeneracy.
	PricingDevex Pricing = iota
	// PricingDantzig selects the classical most-negative-reduced-cost
	// rule (the dense reference solver's rule); kept for ablations.
	PricingDantzig
)

// Options tunes the solver. Zero values select defaults.
type Options struct {
	MaxIters int             // default 50·(m+n)
	Eps      float64         // feasibility/optimality tolerance, default 1e-7
	Deadline time.Time       // abort with IterLimit when exceeded (checked periodically)
	Cancel   <-chan struct{} // abort with IterLimit when closed (checked periodically)
	// Pricing selects the primal pricing rule (default Devex).
	Pricing Pricing
	// RefactorEvery rebuilds the basis inverse from scratch after this
	// many pivots to bound numerical drift (default 128).
	RefactorEvery int
	// FreshFactor forces SolveFrom to reconstruct the factorization from
	// the basis snapshot even when the snapshot matches the instance's
	// live factorization. Since the sparse LU core, reconstruction
	// replays the snapshot's recipe to the same bits the live state
	// holds, so results are identical either way and branch-and-bound no
	// longer needs the flag for determinism — it survives as the
	// hot-path ablation switch (and for tests pinning hot vs replayed
	// equality).
	FreshFactor bool
	// Perturb enables deterministic EXPAND-style bound perturbation: every
	// finite working bound is expanded outward by a tiny pseudo-random
	// amount derived from (instance fingerprint, PerturbSeq, column), which
	// breaks the ratio-test ties that make massively degenerate models
	// (the scheduling ILPs) stall. The shifts are removed at optimality by
	// a clean-up re-solve against the exact bounds, so reported solutions,
	// statuses and objectives are exact — and, being a pure function of
	// (matrix, basis, bounds, PerturbSeq), identical on every solve of the
	// same inputs regardless of worker scheduling.
	Perturb bool
	// PerturbSeq varies the perturbation between related solves of one
	// instance — branch-and-bound threads the node's creation sequence
	// number, so sibling relaxations do not share one unlucky shift
	// pattern while determinism for any worker count is preserved.
	PerturbSeq uint64
	// Inject, when non-nil, applies deterministic fault injection to warm
	// re-solves: a forced cold fallback or a simulated singular
	// refactorization, each decided as a pure function of (instance
	// fingerprint, PerturbSeq) so chaos runs are reproducible. See
	// internal/faultinject for the standard implementation.
	Inject FaultInjector
}

// FaultInjector is the narrow fault-injection hook SolveFrom consults.
// It is an interface so that lp does not depend on the injection policy;
// internal/faultinject.Injector implements it.
type FaultInjector interface {
	// ForceColdFallback forces the warm re-solve keyed by (fprint, seq)
	// onto its cold-restart path, as if the basis were unusable.
	ForceColdFallback(fprint, seq uint64) bool
	// SingularRefactor makes refactorization of the warm basis for
	// (fprint, seq) behave as if the basis matrix were singular.
	SingularRefactor(fprint, seq uint64) bool
}

const defaultEps = 1e-7
const defaultRefactorEvery = 128

// variable status markers
type vstat int8

const (
	atLower vstat = iota
	atUpper
	basic
)

// Basis is an opaque snapshot of a simplex basis: which variable is basic
// in each row and the bound status of every structural and slack column.
// It is returned by optimal solves and accepted by Instance.SolveFrom,
// which reconstructs the sparse LU factorization from the snapshot's
// replay recipe (or reuses the live factorization when the snapshot is
// the instance's most recent one — bit-identical either way, see
// sparse.go). A Basis is immutable and safe to share across goroutines.
type Basis struct {
	basic []int32 // length m: variable basic in each row (structural or slack)
	stat  []vstat // length n+m: status per column

	// Replay recipe: the factorization anchor (the basis that was
	// factorized from scratch) plus the eta script applied since. A
	// workspace reconstructs by factorizing anchor and re-running each
	// script pivot's FTRAN, reproducing the capturing workspace's factor
	// state bit for bit. anchor == nil means no recipe (reconstruct by
	// direct refactorization of basic — still deterministic, just never
	// bit-aliased with a live factorization).
	anchor []int32
	script []pivotRec
}

// pivotRec is one replayable basis change: column `enter` replaced the
// basic variable at position `leave`.
type pivotRec struct {
	enter, leave int32
}

// clone returns an independent copy (Basis handed to callers must not
// alias solver workspace). The recipe fields are immutable and may be
// shared.
func (b *Basis) clone() *Basis {
	return &Basis{
		basic:  append([]int32(nil), b.basic...),
		stat:   append([]vstat(nil), b.stat...),
		anchor: b.anchor,
		script: b.script,
	}
}

// Solve minimizes the problem with the sparse solver. It is shorthand for
// Prepare(p).Solve(p.Lb, p.Ub, opts); callers that re-solve the same rows
// under varying bounds should Prepare once and reuse the Instance.
func Solve(p *Problem, opts Options) Result {
	return Prepare(p).Solve(p.Lb, p.Ub, opts)
}

// startValue places a nonbasic column at the bound nearest zero (0 for
// free variables).
func startValue(l, u float64) float64 {
	switch {
	case l <= 0 && u >= 0:
		return 0
	case l > 0:
		return l
	default:
		return u
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
