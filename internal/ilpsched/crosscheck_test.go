package ilpsched

import (
	"bytes"
	"math"
	"testing"
	"time"

	"mbsp/internal/mbsp"
	"mbsp/internal/workloads"
)

// crossCheckOpts returns node-limited deterministic budgets shared by
// both stacks under comparison.
func crossCheckOpts() Options {
	return Options{
		Model:             mbsp.Sync,
		TimeLimit:         time.Minute, // generous: the node limit binds
		NodeLimit:         120,
		LocalSearchBudget: 200,
		Seed:              7,
		// Pin the pre-LU row ceiling: the reference stack routes every
		// relaxation through the dense O(m²)-per-iteration oracle, which
		// is exactly what the sparse LU core outgrows. Registry models
		// beyond the dense envelope are covered by the LU-only tests
		// (TestLargeModelEntersTreeSearch) instead of this comparison.
		MaxModelRows: 3000,
	}
}

func scheduleBytes(t *testing.T, s *mbsp.Schedule) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := mbsp.WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWarmStackMatchesReferenceOnRegistry is the solver-core cross-check:
// on every registry ILP workload, the warm-started sparse stack (dual
// re-solves from the parent basis, Devex pricing, refactorization) must
// return the same final cost (within 1e-9) and the same final schedule
// bytes as the original dense cold-start stack, while re-solving the tree
// in warm dual iterations. This pins the optimization as a pure
// performance change: same search, same answers, fewer iterations.
func TestWarmStackMatchesReferenceOnRegistry(t *testing.T) {
	insts := workloads.Tiny()
	if !testing.Short() {
		insts = append(insts, workloads.Small()...)
	}
	var warmIters, refIters int
	for _, inst := range insts {
		arch := mbsp.Arch{P: 4, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}

		warmOpts := crossCheckOpts()
		warm, warmStats, err := Solve(inst.DAG, arch, warmOpts)
		if err != nil {
			t.Fatalf("%s: warm stack: %v", inst.Name, err)
		}
		refOpts := crossCheckOpts()
		refOpts.LPColdStart = true
		refOpts.LPReference = true
		ref, refStats, err := Solve(inst.DAG, arch, refOpts)
		if err != nil {
			t.Fatalf("%s: reference stack: %v", inst.Name, err)
		}

		if math.Abs(warmStats.FinalCost-refStats.FinalCost) > 1e-9*(1+math.Abs(refStats.FinalCost)) {
			t.Fatalf("%s: warm cost %g != reference cost %g",
				inst.Name, warmStats.FinalCost, refStats.FinalCost)
		}
		if wb, rb := scheduleBytes(t, warm), scheduleBytes(t, ref); !bytes.Equal(wb, rb) {
			t.Fatalf("%s: schedules diverge between warm and reference stacks\nwarm (%s):\n%s\nreference (%s):\n%s",
				inst.Name, warmStats.Source, wb, refStats.Source, rb)
		}
		warmIters += warmStats.SimplexIters
		refIters += refStats.SimplexIters
		if warmStats.UsedILP && warmStats.ILPNodes > 2 && warmStats.WarmLPs == 0 {
			t.Fatalf("%s: tree search ran %d nodes without a single warm re-solve", inst.Name, warmStats.ILPNodes)
		}
	}
	if refIters > 0 {
		t.Logf("total simplex iterations across registry trees: warm=%d reference=%d (%.2fx)",
			warmIters, refIters, float64(refIters)/float64(math.Max(1, float64(warmIters))))
	}
	if warmIters > refIters {
		t.Fatalf("warm stack used more simplex iterations than the reference: %d vs %d", warmIters, refIters)
	}
}
