package ilpsched

import (
	"sort"

	"mbsp/internal/graph"
	"mbsp/internal/lp"
	"mbsp/internal/mbsp"
	"mbsp/internal/mip"
)

// ilpModel is the ILP representation of one MBSP scheduling instance with
// step merging (Section 6.1 / Appendix C.1). Index maps hold -1 where a
// variable is statically fixed and therefore never created (Appendix
// C.1.3): compute/save/hasblue variables of source nodes.
type ilpModel struct {
	g    *graph.DAG
	arch mbsp.Arch
	opts Options
	T    int
	m    *mip.Model
	bigM float64

	compute [][][]int // [p][v][t]; -1 for sources
	save    [][][]int // [p][v][t]; -1 for sources
	load    [][][]int // [p][v][t]
	hasred  [][][]int // [p][v][t], t in 0..T
	hasblue [][]int   // [v][t], t in 0..T; -1 for sources (constant 1)

	compstep [][]int // [p][t]
	commstep [][]int

	// Synchronous cost machinery.
	compphase, commphase []int
	compends, commends   []int
	compuntil, communtil [][]int // [p][t], continuous
	compinduced          []int
	comminduced          []int

	// Asynchronous cost machinery.
	finishtime [][]int // [p][t], continuous
	getsblue   []int   // [v], continuous; -1 for sources (constant 0)
	makespan   int
}

// buildModel assembles the full ILP for horizon T.
func buildModel(g *graph.DAG, arch mbsp.Arch, opts Options, T int) *ilpModel {
	im := &ilpModel{g: g, arch: arch, opts: opts, T: T, m: mip.NewModel()}
	P, n := arch.P, g.N()
	// bigM must dominate any finishing time or accumulated phase cost the
	// model can express. A processor's per-step cost is at most
	// Σω + 2gΣμ (compute everything, or save and load everything), and
	// there are T steps; Γ-waits only chain finishing times, so the same
	// bound covers them.
	var stepMax float64
	for v := 0; v < n; v++ {
		stepMax += g.Comp(v) + 2*arch.G*g.Mem(v)
	}
	im.bigM = float64(T+1) * stepMax
	if im.bigM < 1 {
		im.bigM = 1
	}

	newGrid := func() [][][]int {
		grid := make([][][]int, P)
		for p := range grid {
			grid[p] = make([][]int, n)
			for v := range grid[p] {
				grid[p][v] = make([]int, T+1)
				for t := range grid[p][v] {
					grid[p][v][t] = -1
				}
			}
		}
		return grid
	}
	im.compute, im.save, im.load, im.hasred = newGrid(), newGrid(), newGrid(), newGrid()
	im.hasblue = make([][]int, n)
	for v := range im.hasblue {
		im.hasblue[v] = make([]int, T+1)
		for t := range im.hasblue[v] {
			im.hasblue[v][t] = -1
		}
	}

	initialRed := make([]map[int]bool, P)
	for p := range initialRed {
		initialRed[p] = map[int]bool{}
		if p < len(opts.InitialRed) {
			for _, v := range opts.InitialRed[p] {
				initialRed[p][v] = true
			}
		}
	}

	// Variables.
	for p := 0; p < P; p++ {
		for v := 0; v < n; v++ {
			for t := 0; t < T; t++ {
				if !g.IsSource(v) {
					im.compute[p][v][t] = im.m.AddBinary("comp", 0)
					im.save[p][v][t] = im.m.AddBinary("save", 0)
				}
				im.load[p][v][t] = im.m.AddBinary("load", 0)
			}
			for t := 0; t <= T; t++ {
				if t == 0 {
					// Fixed initial state: create only when red.
					if initialRed[p][v] {
						j := im.m.AddBinary("hasred", 0)
						im.m.FixVar(j, 1)
						im.hasred[p][v][0] = j
					}
					continue
				}
				im.hasred[p][v][t] = im.m.AddBinary("hasred", 0)
			}
		}
	}
	for v := 0; v < n; v++ {
		if g.IsSource(v) {
			continue // hasblue ≡ 1
		}
		for t := 1; t <= T; t++ {
			im.hasblue[v][t] = im.m.AddBinary("hasblue", 0)
		}
		// hasblue[v][0] = 0: variable never created.
	}
	im.compstep = make([][]int, P)
	im.commstep = make([][]int, P)
	for p := 0; p < P; p++ {
		im.compstep[p] = make([]int, T)
		im.commstep[p] = make([]int, T)
		for t := 0; t < T; t++ {
			im.compstep[p][t] = im.m.AddBinary("compstep", 0)
			im.commstep[p][t] = im.m.AddBinary("commstep", 0)
		}
	}

	im.addCoreConstraints(initialRed)
	if opts.Model == mbsp.Async {
		im.addAsyncObjective()
	} else {
		im.addSyncObjective()
	}
	return im
}

// cf returns an lp.Coef referring to variable index j (which must be
// valid).
func cf(j int, v float64) lp.Coef { return lp.Coef{Var: j, Val: v} }

// addCoreConstraints emits constraints (1)–(10) of Figure 3 in their
// step-merged form, the red-pebble persistence links, and the optional
// compute-coverage rows.
func (im *ilpModel) addCoreConstraints(initialRed []map[int]bool) {
	g, m, T, P := im.g, im.m, im.T, im.arch.P
	n := g.N()
	for p := 0; p < P; p++ {
		for t := 0; t < T; t++ {
			for v := 0; v < n; v++ {
				// (1) load only from blue.
				if hb := im.hasblue[v][t]; !g.IsSource(v) {
					if hb >= 0 {
						m.AddLE(0, cf(im.load[p][v][t], 1), cf(hb, -1))
					} else {
						// hasblue[v][0] = 0 for non-sources: no load at step 0.
						m.FixVar(im.load[p][v][t], 0)
					}
				}
				// (2) save only from red.
				if sv := im.save[p][v][t]; sv >= 0 {
					if hr := im.hasred[p][v][t]; hr >= 0 {
						m.AddLE(0, cf(sv, 1), cf(hr, -1))
					} else {
						m.FixVar(sv, 0) // nothing red at step 0
					}
				}
				// (3) compute needs parents red — or computed this step
				// when step merging is on.
				if cp := im.compute[p][v][t]; cp >= 0 {
					for _, u := range g.Parents(v) {
						coefs := []lp.Coef{cf(cp, 1)}
						if hr := im.hasred[p][u][t]; hr >= 0 {
							coefs = append(coefs, cf(hr, -1))
						}
						if !g.IsSource(u) && !im.opts.NoStepMerging {
							coefs = append(coefs, cf(im.compute[p][u][t], -1))
						}
						if len(coefs) == 1 {
							m.FixVar(cp, 0) // parent impossible at t
						} else {
							m.AddLE(0, coefs...)
						}
					}
				}
			}
		}
		// (4) red persistence + acquisition links.
		for v := 0; v < n; v++ {
			for t := 1; t <= T; t++ {
				coefs := []lp.Coef{cf(im.hasred[p][v][t], 1)}
				if hr := im.hasred[p][v][t-1]; hr >= 0 {
					coefs = append(coefs, cf(hr, -1))
				}
				if cp := im.compute[p][v][t-1]; cp >= 0 {
					coefs = append(coefs, cf(cp, -1))
				}
				coefs = append(coefs, cf(im.load[p][v][t-1], -1))
				m.AddLE(0, coefs...)
				// Loaded values keep their pebble through the step
				// boundary (a load followed by an immediate delete is
				// pure waste, so this is a valid tightening). Computed
				// values may legitimately be dropped at the boundary:
				// a merged step can compute a chain u→v and keep only v.
				m.AddGE(0, cf(im.hasred[p][v][t], 1), cf(im.load[p][v][t-1], -1))
			}
		}
	}
	// (5) blue persistence: monotone, grown by saves.
	for v := 0; v < n; v++ {
		if g.IsSource(v) {
			continue
		}
		for t := 1; t <= T; t++ {
			coefs := []lp.Coef{cf(im.hasblue[v][t], 1)}
			if hb := im.hasblue[v][t-1]; hb >= 0 {
				coefs = append(coefs, cf(hb, -1))
			}
			for p := 0; p < P; p++ {
				coefs = append(coefs, cf(im.save[p][v][t-1], -1))
			}
			m.AddLE(0, coefs...)
			if hb := im.hasblue[v][t-1]; hb >= 0 {
				m.AddGE(0, cf(im.hasblue[v][t], 1), cf(hb, -1))
			}
		}
	}
	// (6) step typing.
	for p := 0; p < P; p++ {
		for t := 0; t < T; t++ {
			compCoefs := []lp.Coef{cf(im.compstep[p][t], -float64(n))}
			commCoefs := []lp.Coef{cf(im.commstep[p][t], -2*float64(n))}
			for v := 0; v < n; v++ {
				if cp := im.compute[p][v][t]; cp >= 0 {
					compCoefs = append(compCoefs, cf(cp, 1))
				}
				if sv := im.save[p][v][t]; sv >= 0 {
					commCoefs = append(commCoefs, cf(sv, 1))
				}
				commCoefs = append(commCoefs, cf(im.load[p][v][t], 1))
			}
			m.AddLE(0, compCoefs...)
			m.AddLE(0, commCoefs...)
			m.AddLE(1, cf(im.compstep[p][t], 1), cf(im.commstep[p][t], 1))
			// Base formulation: at most one operation per processor and
			// step (constraint (6) without merging).
			if im.opts.NoStepMerging {
				var one []lp.Coef
				for v := 0; v < n; v++ {
					if cp := im.compute[p][v][t]; cp >= 0 {
						one = append(one, cf(cp, 1))
					}
					if sv := im.save[p][v][t]; sv >= 0 {
						one = append(one, cf(sv, 1))
					}
					one = append(one, cf(im.load[p][v][t], 1))
				}
				m.AddRow(one, lp.LE, 1)
			}
		}
	}
	// (7) memory bound: resident values plus same-step computed outputs
	// must fit (conservative step-merged form; deletes take effect at
	// step boundaries).
	for p := 0; p < P; p++ {
		for t := 0; t <= T; t++ {
			var coefs []lp.Coef
			for v := 0; v < n; v++ {
				if hr := im.hasred[p][v][t]; hr >= 0 {
					coefs = append(coefs, cf(hr, g.Mem(v)))
				}
				if t < T {
					if cp := im.compute[p][v][t]; cp >= 0 {
						coefs = append(coefs, cf(cp, g.Mem(v)))
					}
				}
			}
			if len(coefs) > 0 {
				m.AddLE(im.arch.R, coefs...)
			}
		}
	}
	// (8)–(9) initial states are encoded by variable absence/fixing.
	_ = initialRed
	// (10) terminal blue pebbles.
	need := map[int]bool{}
	for _, v := range g.Sinks() {
		need[v] = true
	}
	for _, v := range im.opts.NeedBlue {
		need[v] = true
	}
	// Row order must not depend on map iteration order: the simplex breaks
	// pivot ties by index, so a permuted model solves along a different
	// (occasionally worse) path and perturbs the deterministic iteration
	// counts the bench gates pin.
	needList := make([]int, 0, len(need))
	for v := range need {
		needList = append(needList, v)
	}
	sort.Ints(needList)
	for _, v := range needList {
		if g.IsSource(v) {
			continue // sources are always blue
		}
		m.AddGE(1, cf(im.hasblue[v][T], 1))
	}
	// Compute coverage / no-recomputation.
	for v := 0; v < n; v++ {
		if g.IsSource(v) {
			continue
		}
		var coefs []lp.Coef
		for p := 0; p < P; p++ {
			for t := 0; t < T; t++ {
				coefs = append(coefs, cf(im.compute[p][v][t], 1))
			}
		}
		if im.opts.RequireComputeAll {
			m.AddRow(coefs, lp.GE, 1)
		}
		if im.opts.NoRecompute {
			m.AddRow(coefs, lp.LE, 1)
		}
	}
}

// addSyncObjective emits the superstep/phase machinery of Appendix C.1.2
// and the synchronous objective Σ_t compinduced_t + comminduced_t +
// L·commends_t.
func (im *ilpModel) addSyncObjective() {
	g, m, T, P := im.g, im.m, im.T, im.arch.P
	n := g.N()
	im.compphase = make([]int, T)
	im.commphase = make([]int, T)
	im.compends = make([]int, T)
	im.commends = make([]int, T)
	im.compinduced = make([]int, T)
	im.comminduced = make([]int, T)
	for t := 0; t < T; t++ {
		im.compphase[t] = im.m.AddBinary("compphase", 0)
		im.commphase[t] = im.m.AddBinary("commphase", 0)
		im.compends[t] = im.m.AddBinary("compends", 0)
		im.commends[t] = im.m.AddBinary("commends", im.arch.L)
		im.compinduced[t] = im.m.AddVar("compinduced", 0, lp.Inf, 1)
		im.comminduced[t] = im.m.AddVar("comminduced", 0, lp.Inf, 1)
	}
	im.compuntil = make([][]int, P)
	im.communtil = make([][]int, P)
	for p := 0; p < P; p++ {
		im.compuntil[p] = make([]int, T)
		im.communtil[p] = make([]int, T)
		for t := 0; t < T; t++ {
			im.compuntil[p][t] = im.m.AddVar("compuntil", 0, lp.Inf, 0)
			im.communtil[p][t] = im.m.AddVar("communtil", 0, lp.Inf, 0)
		}
	}
	for t := 0; t < T; t++ {
		// Global phase typing: a step is a compute step on some
		// processor only in a compute phase, etc.
		for p := 0; p < P; p++ {
			m.AddLE(0, cf(im.compstep[p][t], 1), cf(im.compphase[t], -1))
			m.AddLE(0, cf(im.commstep[p][t], 1), cf(im.commphase[t], -1))
		}
		m.AddLE(1, cf(im.compphase[t], 1), cf(im.commphase[t], 1))
		// Phase endpoints.
		m.AddLE(0, cf(im.compends[t], 1), cf(im.compphase[t], -1))
		m.AddLE(0, cf(im.commends[t], 1), cf(im.commphase[t], -1))
		if t+1 < T {
			// ends_t ≥ phase_t − phase_{t+1}
			m.AddGE(0, cf(im.compends[t], 1), cf(im.compphase[t], -1), cf(im.compphase[t+1], 1))
			m.AddGE(0, cf(im.commends[t], 1), cf(im.commphase[t], -1), cf(im.commphase[t+1], 1))
		} else {
			m.AddGE(0, cf(im.compends[t], 1), cf(im.compphase[t], -1))
			m.AddGE(0, cf(im.commends[t], 1), cf(im.commphase[t], -1))
		}
	}
	for p := 0; p < P; p++ {
		for t := 0; t < T; t++ {
			// compuntil accumulation with reset after a communication
			// phase ends.
			coefs := []lp.Coef{cf(im.compuntil[p][t], 1)}
			if t > 0 {
				coefs = append(coefs, cf(im.compuntil[p][t-1], -1))
				coefs = append(coefs, cf(im.commends[t], im.bigM))
			}
			for v := 0; v < n; v++ {
				if cp := im.compute[p][v][t]; cp >= 0 {
					coefs = append(coefs, cf(cp, -g.Comp(v)))
				}
			}
			m.AddRow(coefs, lp.GE, 0)
			// communtil accumulation with reset after a compute phase
			// ends.
			coefs = []lp.Coef{cf(im.communtil[p][t], 1)}
			if t > 0 {
				coefs = append(coefs, cf(im.communtil[p][t-1], -1))
				coefs = append(coefs, cf(im.compends[t], im.bigM))
			}
			for v := 0; v < n; v++ {
				if sv := im.save[p][v][t]; sv >= 0 {
					coefs = append(coefs, cf(sv, -im.arch.G*g.Mem(v)))
				}
				coefs = append(coefs, cf(im.load[p][v][t], -im.arch.G*g.Mem(v)))
			}
			m.AddRow(coefs, lp.GE, 0)
			// Induced costs at phase ends.
			m.AddRow([]lp.Coef{
				cf(im.compinduced[t], 1), cf(im.compuntil[p][t], -1), cf(im.compends[t], -im.bigM),
			}, lp.GE, -im.bigM)
			m.AddRow([]lp.Coef{
				cf(im.comminduced[t], 1), cf(im.communtil[p][t], -1), cf(im.commends[t], -im.bigM),
			}, lp.GE, -im.bigM)
		}
	}
}

// addAsyncObjective emits the finishing-time recursion of Appendix C.1.2
// and minimizes the makespan.
func (im *ilpModel) addAsyncObjective() {
	g, m, T, P := im.g, im.m, im.T, im.arch.P
	n := g.N()
	im.finishtime = make([][]int, P)
	for p := 0; p < P; p++ {
		im.finishtime[p] = make([]int, T)
		for t := 0; t < T; t++ {
			im.finishtime[p][t] = im.m.AddVar("finishtime", 0, lp.Inf, 0)
		}
	}
	im.getsblue = make([]int, n)
	for v := 0; v < n; v++ {
		im.getsblue[v] = -1
		if !g.IsSource(v) {
			im.getsblue[v] = im.m.AddVar("getsblue", 0, lp.Inf, 0)
		}
	}
	im.makespan = im.m.AddVar("makespan", 0, lp.Inf, 1)
	for p := 0; p < P; p++ {
		for t := 0; t < T; t++ {
			// finishtime_{p,t} ≥ finishtime_{p,t−1} + step cost.
			coefs := []lp.Coef{cf(im.finishtime[p][t], 1)}
			if t > 0 {
				coefs = append(coefs, cf(im.finishtime[p][t-1], -1))
			}
			for v := 0; v < n; v++ {
				if cp := im.compute[p][v][t]; cp >= 0 {
					coefs = append(coefs, cf(cp, -g.Comp(v)))
				}
				if sv := im.save[p][v][t]; sv >= 0 {
					coefs = append(coefs, cf(sv, -im.arch.G*g.Mem(v)))
				}
				coefs = append(coefs, cf(im.load[p][v][t], -im.arch.G*g.Mem(v)))
			}
			m.AddRow(coefs, lp.GE, 0)
			for v := 0; v < n; v++ {
				// getsblue_v ≥ finishtime_{p,t} − M(1 − save_{p,v,t})
				if sv := im.save[p][v][t]; sv >= 0 {
					m.AddRow([]lp.Coef{
						cf(im.getsblue[v], 1), cf(im.finishtime[p][t], -1), cf(sv, -im.bigM),
					}, lp.GE, -im.bigM)
				}
				// finishtime_{p,t} ≥ getsblue_v + g·Σ_u μ(u)·load_{p,u,t}
				//                    − M(1 − load_{p,v,t})
				if g.IsSource(v) {
					continue // available at time 0
				}
				coefs := []lp.Coef{
					cf(im.finishtime[p][t], 1), cf(im.getsblue[v], -1), cf(im.load[p][v][t], -im.bigM),
				}
				for u := 0; u < n; u++ {
					coefs = append(coefs, cf(im.load[p][u][t], -im.arch.G*g.Mem(u)))
				}
				m.AddRow(coefs, lp.GE, -im.bigM)
			}
		}
		m.AddGE(0, cf(im.makespan, 1), cf(im.finishtime[p][T-1], -1))
	}
}
