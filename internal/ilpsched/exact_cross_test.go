package ilpsched

import (
	"math"
	"testing"
	"time"

	"mbsp/internal/exact"
	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
)

// The exact optimum is a lower bound for every heuristic and for the ILP
// result; and the solver (which consults the exact pebbler for small P=1
// instances) must match it on micro DAGs.
func TestILPMatchesExactOnMicroDAGs(t *testing.T) {
	dags := []*graph.DAG{
		graph.Diamond(),
		graph.Chain(4),
	}
	tree := graph.New("tree")
	s0 := tree.AddNode(0, 1)
	l := tree.AddNode(2, 1)
	rn := tree.AddNode(1, 2)
	sink := tree.AddNode(1, 1)
	tree.AddEdge(s0, l)
	tree.AddEdge(s0, rn)
	tree.AddEdge(l, sink)
	tree.AddEdge(rn, sink)
	dags = append(dags, tree)

	for _, g := range dags {
		r := 2 * g.MinCache()
		ex, err := exact.Solve(g, r, 1)
		if err != nil {
			t.Fatal(err)
		}
		arch := mbsp.Arch{P: 1, R: r, G: 1, L: 0}
		s, stats, err := Solve(g, arch, Options{TimeLimit: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if s.SyncCost() < ex.Cost-1e-9 {
			t.Fatalf("%s: ILP cost %g below exact optimum %g — exact solver or validator broken",
				g.Name(), s.SyncCost(), ex.Cost)
		}
		if math.Abs(s.SyncCost()-ex.Cost) > 1e-9 {
			t.Errorf("%s: ILP cost %g != exact optimum %g (stats=%+v)",
				g.Name(), s.SyncCost(), ex.Cost, stats)
		}
	}
}

// The exact-pebbler backend must kick in and find recomputation-based
// optima that the tree search cannot reach in small budgets.
func TestExactBackendFindsRecomputation(t *testing.T) {
	z := graph.NewZipperGadget(2, 2)
	arch := mbsp.Arch{P: 1, R: 4, G: 6, L: 0}
	s, stats, err := Solve(z.DAG, arch, Options{TimeLimit: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Source != "exact-pebbler" {
		t.Fatalf("expected exact-pebbler source, got %q", stats.Source)
	}
	if s.SyncCost() >= stats.WarmCost {
		t.Fatalf("exact backend did not improve: %g vs warm %g", s.SyncCost(), stats.WarmCost)
	}
	// And NoRecompute must forbid exactly that gain.
	s2, _, err := Solve(z.DAG, arch, Options{TimeLimit: time.Second, NoRecompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if s2.SyncCost() <= s.SyncCost() {
		t.Fatalf("NoRecompute (%g) should cost more than recompute (%g)", s2.SyncCost(), s.SyncCost())
	}
}
