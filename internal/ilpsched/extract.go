package ilpsched

import (
	"fmt"
	"sort"

	"mbsp/internal/mbsp"
)

// extract converts an integral variable assignment into an MBSP schedule:
// one superstep per ILP time step first (computes in topological order,
// implicit deletes recovered from hasred drops), then a compaction pass
// merges adjacent supersteps whenever the merged schedule stays valid and
// does not cost more.
func (im *ilpModel) extract(x []float64) (*mbsp.Schedule, error) {
	g, T, P := im.g, im.T, im.arch.P
	n := g.N()
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	topoPos := make([]int, n)
	for i, v := range order {
		topoPos[v] = i
	}
	on := func(j int) bool { return j >= 0 && x[j] > 0.5 }

	s := mbsp.NewSchedule(g, im.arch)
	for t := 0; t < T; t++ {
		step := s.AddSuperstep()
		used := false
		for p := 0; p < P; p++ {
			ps := &step.Procs[p]
			var computes []int
			for v := 0; v < n; v++ {
				if on(im.compute[p][v][t]) {
					computes = append(computes, v)
				}
			}
			sort.Slice(computes, func(a, b int) bool { return topoPos[computes[a]] < topoPos[computes[b]] })
			for _, v := range computes {
				ps.Comp = append(ps.Comp, mbsp.Op{Kind: mbsp.OpCompute, Node: v})
			}
			// Transient pebbles: computed this step but dropped at the
			// boundary (a merged chain keeping only its tail). The
			// delete must follow the computes that consume the value,
			// so it goes at the end of the compute phase.
			for _, v := range computes {
				if !redAt(im, x, p, v, t+1) {
					ps.Comp = append(ps.Comp, mbsp.Op{Kind: mbsp.OpDelete, Node: v})
				}
			}
			for v := 0; v < n; v++ {
				if on(im.save[p][v][t]) {
					ps.Save = append(ps.Save, v)
				}
				if on(im.load[p][v][t]) && !redAt(im, x, p, v, t) {
					ps.Load = append(ps.Load, v)
				}
				// Implicit deletion: red at t, not red at t+1.
				if redAt(im, x, p, v, t) && !redAt(im, x, p, v, t+1) {
					ps.Del = append(ps.Del, v)
				}
			}
			if !ps.Empty() {
				used = true
			}
		}
		if !used {
			s.Steps = s.Steps[:len(s.Steps)-1]
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("ilpsched: extracted schedule invalid: %w", err)
	}
	compact(s, im.opts.Model)
	return s, nil
}

func redAt(im *ilpModel, x []float64, p, v, t int) bool {
	j := im.hasred[p][v][t]
	return j >= 0 && x[j] > 0.5
}

// compact greedily merges superstep i+1 into superstep i while the result
// stays valid and does not increase the cost. This recovers the paper's
// superstep structure (a compute phase followed by a communication phase)
// from the one-step-per-superstep extraction.
func compact(s *mbsp.Schedule, model mbsp.CostModel) {
	cost := s.Cost(model)
	for i := 0; i+1 < len(s.Steps); {
		trial := s.Clone()
		merge(trial, i)
		if trial.Validate() == nil {
			if c := trial.Cost(model); c <= cost+1e-9 {
				*s = *trial
				cost = c
				continue // try merging the next one into position i too
			}
		}
		i++
	}
}

// merge folds superstep i+1 into superstep i, preserving per-phase op
// order (comp then comp, save then save, ...).
func merge(s *mbsp.Schedule, i int) {
	a, b := &s.Steps[i], &s.Steps[i+1]
	for p := range a.Procs {
		a.Procs[p].Comp = append(a.Procs[p].Comp, b.Procs[p].Comp...)
		a.Procs[p].Save = append(a.Procs[p].Save, b.Procs[p].Save...)
		a.Procs[p].Del = append(a.Procs[p].Del, b.Procs[p].Del...)
		a.Procs[p].Load = append(a.Procs[p].Load, b.Procs[p].Load...)
	}
	s.Steps = append(s.Steps[:i+1], s.Steps[i+2:]...)
}
