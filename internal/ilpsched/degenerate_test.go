package ilpsched

import (
	"testing"
	"time"

	"mbsp/internal/mbsp"
	"mbsp/internal/workloads"
)

// TestDegenerateSchedulingModelStallCeiling pins the ROADMAP open item —
// dual-simplex stalls on the massively degenerate scheduling models — as
// a committed baseline. The P=1 k-means scheduling ILP is the grinding
// case: its relaxations are so degenerate that a large fraction of warm
// dual re-solves exhaust their pivot budget and fall back to cold solves,
// burning thousands of simplex iterations across a handful of nodes
// (measured at this budget: ~4.4k iterations over 20 nodes, 6 of 20
// relaxations falling back cold).
//
// The assertions are ceilings at ~1.6× the measured values: future
// anti-degeneracy work (Harris ratio test, bound perturbation) must
// *lower* them — and can then tighten the ceilings — while any change
// that silently worsens the stall fails here first. The node limit binds
// (the time limit is a generous backstop), so the counts are
// deterministic.
func TestDegenerateSchedulingModelStallCeiling(t *testing.T) {
	inst, err := workloads.ByName("k-means")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 1, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	_, stats, err := Solve(inst.DAG, arch, Options{
		Model:             mbsp.Sync,
		TimeLimit:         2 * time.Minute,
		NodeLimit:         20,
		LocalSearchBudget: 1,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.UsedILP {
		t.Fatalf("fixture no longer enters the tree search (rows=%d)", stats.ModelRows)
	}
	const (
		iterCeiling = 7000 // measured: 4359
		coldCeiling = 10   // measured: 6 of 20 relaxations fell back cold
	)
	if stats.SimplexIters > iterCeiling {
		t.Fatalf("degenerate stall worsened: %d simplex iterations over %d nodes (ceiling %d)",
			stats.SimplexIters, stats.ILPNodes, iterCeiling)
	}
	if stats.ColdLPs > coldCeiling {
		t.Fatalf("more warm re-solves stall out: %d cold fallbacks of %d nodes (ceiling %d)",
			stats.ColdLPs, stats.ILPNodes, coldCeiling)
	}
	if stats.WarmLPs <= stats.ColdLPs {
		t.Fatalf("warm re-solves no longer dominate: %d warm vs %d cold", stats.WarmLPs, stats.ColdLPs)
	}
	t.Logf("stall baseline: %d iters, %d nodes, warm/cold=%d/%d",
		stats.SimplexIters, stats.ILPNodes, stats.WarmLPs, stats.ColdLPs)
}
