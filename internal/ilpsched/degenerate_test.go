package ilpsched

import (
	"testing"
	"time"

	"mbsp/internal/mbsp"
	"mbsp/internal/workloads"
)

// TestDegenerateSchedulingModelStallCeiling pins the ROADMAP open item —
// dual-simplex stalls on the massively degenerate scheduling models — as
// a committed baseline. The P=1 k-means scheduling ILP is the grinding
// case: before the anti-degeneracy work its relaxations were so
// degenerate that warm dual re-solves exhausted their pivot budget and
// fell back to cold solves (measured then: 4359 iterations over 20
// nodes, 6 of 20 relaxations cold). The Harris/BFRT ratio tests plus
// deterministic EXPAND perturbation (internal/lp) brought the fixture to
// 1701 iterations with a single cold solve — the root, which is
// necessarily cold — and every warm re-solve finishing inside its dual
// budget.
//
// The assertions are ceilings modestly above the new measured values:
// any change that reintroduces the stall (flip cycling, dual-degenerate
// plateau wandering, sticky Bland) fails here first. The node limit
// binds (the time limit is a generous backstop), so the counts are
// deterministic.
func TestDegenerateSchedulingModelStallCeiling(t *testing.T) {
	inst, err := workloads.ByName("k-means")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 1, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	_, stats, err := Solve(inst.DAG, arch, Options{
		Model:             mbsp.Sync,
		TimeLimit:         2 * time.Minute,
		NodeLimit:         20,
		LocalSearchBudget: 1,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.UsedILP {
		t.Fatalf("fixture no longer enters the tree search (rows=%d)", stats.ModelRows)
	}
	const (
		iterCeiling = 2200 // measured: 1701 (was 4359 pre-Harris/EXPAND)
		coldCeiling = 2    // measured: 1 — only the root solves cold
	)
	if stats.SimplexIters > iterCeiling {
		t.Fatalf("degenerate stall worsened: %d simplex iterations over %d nodes (ceiling %d)",
			stats.SimplexIters, stats.ILPNodes, iterCeiling)
	}
	if stats.ColdLPs > coldCeiling {
		t.Fatalf("more warm re-solves stall out: %d cold fallbacks of %d nodes (ceiling %d)",
			stats.ColdLPs, stats.ILPNodes, coldCeiling)
	}
	if stats.WarmLPs <= stats.ColdLPs {
		t.Fatalf("warm re-solves no longer dominate: %d warm vs %d cold", stats.WarmLPs, stats.ColdLPs)
	}
	if stats.PerturbedLPs == 0 {
		t.Fatalf("no relaxation reported Perturbed: EXPAND perturbation is not reaching the tree search")
	}
	if stats.CleanupIters > stats.SimplexIters/10 {
		t.Fatalf("shift removal is no longer cheap: %d of %d iterations spent in clean-up",
			stats.CleanupIters, stats.SimplexIters)
	}
	t.Logf("stall baseline: %d iters (%d clean-up), %d nodes, warm/cold=%d/%d, perturbed=%d",
		stats.SimplexIters, stats.CleanupIters, stats.ILPNodes, stats.WarmLPs, stats.ColdLPs,
		stats.PerturbedLPs)
}
