// Package ilpsched implements the paper's core contribution: representing
// MBSP scheduling as an Integer Linear Program (Section 6 and Appendix C)
// and solving it holistically.
//
// The formulation uses binary variables compute/save/load per (processor,
// node, time step) and hasred/hasblue state variables, with the step
// merging optimization (several compute operations, or several I/O
// operations, may share an ILP time step), both the synchronous and the
// asynchronous cost function, an optional no-recomputation restriction,
// and boundary conditions for divide-and-conquer subproblems.
//
// The branch-and-bound engine of package mip replaces the paper's
// commercial solver. Exactly as in the paper, the solver is initialized
// with the two-stage baseline solution, so the returned schedule is never
// worse than the warm start. A holistic local-search primal heuristic
// (package refine) supplements the tree search on instances whose ILP
// models exceed what the bundled LP solver handles comfortably; DESIGN.md
// documents this substitution.
package ilpsched

import (
	"context"
	"time"

	"mbsp/internal/faultinject"
	"mbsp/internal/lp"
	"mbsp/internal/mbsp"
	"mbsp/internal/mip"
)

// Options configures the ILP scheduler.
type Options struct {
	// Context, when non-nil, cancels the tree search and the local-search
	// heuristic early. Solve still returns the best schedule found so far
	// (at minimum the warm start), never an error, on cancellation.
	Context context.Context
	// Model selects the synchronous or asynchronous objective.
	Model mbsp.CostModel
	// ExtraSteps is added to the warm start's step count to give the
	// solver slack for better solutions (Lemma 6.1 shows empty steps do
	// not certify optimality, so slack genuinely matters). Default 2.
	ExtraSteps int
	// Steps overrides the time horizon T entirely when > 0.
	Steps int
	// NoRecompute forbids computing a node more than once across all
	// processors and steps.
	NoRecompute bool
	// NoStepMerging switches to the paper's base formulation: every ILP
	// time step holds at most one operation per processor (constraint
	// (6) of Figure 3) and the compute rule requires parents red at the
	// step start (constraint (3) without the same-step term). The time
	// horizon grows accordingly; only small instances remain tractable.
	NoStepMerging bool
	// RequireComputeAll adds Σ compute ≥ 1 per non-source node. Valid
	// whenever every node has a path to a sink (true for all bundled
	// workloads); tightens the relaxation. Default true.
	RequireComputeAll bool
	// TimeLimit bounds the branch-and-bound search. Default 10s.
	TimeLimit time.Duration
	// NodeLimit bounds the search tree size. Default 5000.
	NodeLimit int
	// MaxModelRows skips the tree search (keeping warm start + local
	// search) when the ILP would have more rows than this. Since the
	// sparse LU core the ceiling is a node-budget guard, not an LP-core
	// one: registry-scale holistic models (thousands of rows) factor and
	// solve fine, but tree search on them still costs real time. Default
	// mip.DefaultMaxModelRows.
	MaxModelRows int
	// DisableLocalSearch turns off the local-search primal heuristic
	// (used by ablation benchmarks).
	DisableLocalSearch bool
	// LocalSearchBudget bounds local-search evaluations. Default 4000.
	LocalSearchBudget int
	// WarmStart seeds the solver with an existing MBSP schedule (the
	// paper initializes its solver with the two-stage baseline). When
	// nil, Solve builds the BSPg+clairvoyant baseline itself (DFS for
	// P=1).
	WarmStart *mbsp.Schedule
	// Incumbent, when non-nil, is a shared upper bound on the schedule
	// cost under Model (the portfolio-wide incumbent): Solve reads it to
	// prune the branch-and-bound tree and publishes every validated
	// improving schedule cost back to it. Costs are only comparable
	// across solvers of the same instance and model; the caller owns
	// that invariant.
	Incumbent *mip.Incumbent
	// Boundary conditions for divide-and-conquer subproblems.
	InitialRed [][]int // per processor, nodes red at step 0
	NeedBlue   []int   // nodes (besides sinks) that must be blue at the end
	// MIPWorkers bounds the goroutines solving branch-and-bound node
	// relaxations concurrently (mip.Options.Workers). The solver's
	// deterministic node accounting makes the schedule identical for any
	// value, so callers size it purely for throughput. Default 1.
	MIPWorkers int
	// LPColdStart disables the warm-started dual re-solves inside the
	// branch-and-bound tree (every node cold-starts); LPReference
	// additionally routes each relaxation through the preserved dense
	// reference solver. Both exist for the cross-check tests and the
	// solver ablation benchmarks.
	LPColdStart bool
	LPReference bool
	// NoPerturb disables the solver's deterministic EXPAND anti-degeneracy
	// perturbation (mip.Options.NoPerturb); exists for the degenerate-model
	// ablation benchmark.
	NoPerturb bool
	// Logf receives progress messages.
	Logf func(format string, args ...interface{})
	// Seed drives the local-search heuristic.
	Seed int64
	// Inject threads the deterministic fault-injection harness into the
	// branch-and-bound tree (mip.Options.Inject); nil disables injection.
	Inject *faultinject.Injector
	// LUStats, when non-nil, accumulates the LP factorization counters of
	// the tree search (mip.Options.LUStats): observability only, never
	// part of Stats (the counts depend on worker scheduling; Stats stays
	// byte-identical across MIPWorkers values).
	LUStats *lp.FactorStats
}

func (o Options) withDefaults() Options {
	if o.ExtraSteps == 0 {
		o.ExtraSteps = 2
	}
	if o.TimeLimit == 0 {
		o.TimeLimit = 10 * time.Second
	}
	if o.NodeLimit == 0 {
		o.NodeLimit = 5000
	}
	if o.MaxModelRows == 0 {
		o.MaxModelRows = mip.DefaultMaxModelRows
	}
	if o.LocalSearchBudget == 0 {
		o.LocalSearchBudget = 4000
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
	return o
}

// Stats reports what the solver did.
type Stats struct {
	ModelVars int
	ModelRows int
	Steps     int
	UsedILP   bool
	ILPStatus string
	ILPNodes  int
	ILPLPs    int
	// SimplexIters is the total simplex iteration count across the
	// branch-and-bound tree; WarmLPs/ColdLPs split the node relaxations
	// into dual re-solves from the parent basis and cold starts.
	SimplexIters     int
	WarmLPs, ColdLPs int
	// PerturbedLPs counts node relaxations solved under EXPAND
	// perturbation; CleanupIters is the (small) share of SimplexIters
	// spent removing the shifts at optimality.
	PerturbedLPs int
	CleanupIters int
	LocalMoves       int
	WarmCost         float64
	FinalCost        float64
	Source           string // "ilp", "local-search", "exact-pebbler", or "warm-start"
	SolveTime        time.Duration
	ProvedBound      float64
}
