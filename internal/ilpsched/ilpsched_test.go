package ilpsched

import (
	"testing"
	"time"

	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/twostage"
	"mbsp/internal/workloads"
)

// TestWarmStartEncodingFeasible is the keystone test of the ILP
// formulation: every two-stage baseline schedule, encoded as an ILP
// variable assignment, must satisfy all constraints of the model — for
// both cost models, several cache sizes and processor counts.
func TestWarmStartEncodingFeasible(t *testing.T) {
	for _, inst := range workloads.Tiny() {
		for _, model := range []mbsp.CostModel{mbsp.Sync, mbsp.Async} {
			for _, p := range []int{1, 2, 4} {
				for _, rf := range []float64{1, 3} {
					arch := mbsp.Arch{P: p, R: rf * inst.DAG.MinCache(), G: 1, L: 10}
					pl := twostage.BSPgClairvoyant(1, 10)
					if p == 1 {
						pl = twostage.DFSClairvoyant()
					}
					warm, err := pl.Run(inst.DAG, arch)
					if err != nil {
						t.Fatalf("%s: %v", inst.Name, err)
					}
					opts := Options{Model: model}.withDefaults()
					skel, err := buildSkeleton(warm, nil)
					if err != nil {
						t.Fatalf("%s: %v", inst.Name, err)
					}
					im := buildModel(inst.DAG, arch, opts, len(skel)+2)
					x := im.assignment(skel)
					if err := im.m.CheckFeasible(x, 1e-6); err != nil {
						t.Fatalf("%s (model=%v P=%d rf=%g): warm start infeasible: %v",
							inst.Name, model, p, rf, err)
					}
				}
			}
		}
	}
}

// TestWarmStartObjectiveMatchesCost checks that the encoded warm start's
// ILP objective is close to the schedule's exact cost (the merged
// formulation may deviate slightly: within a communication phase the ILP
// lumps save and load volumes, and a trailing compute phase carries no L).
func TestWarmStartObjectiveMatchesCost(t *testing.T) {
	inst, err := workloads.ByName("spmv_N6")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 2, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	warm, err := twostage.BSPgClairvoyant(1, 10).Run(inst.DAG, arch)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Model: mbsp.Sync}.withDefaults()
	skel, err := buildSkeleton(warm, nil)
	if err != nil {
		t.Fatal(err)
	}
	im := buildModel(inst.DAG, arch, opts, len(skel)+2)
	x := im.assignment(skel)
	if err := im.m.CheckFeasible(x, 1e-6); err != nil {
		t.Fatal(err)
	}
	obj := im.m.ObjValue(x)
	cost := warm.SyncCost()
	if obj > cost+1e-6 {
		t.Fatalf("ILP objective %g exceeds exact schedule cost %g", obj, cost)
	}
	if obj < 0.5*cost {
		t.Fatalf("ILP objective %g implausibly far below exact cost %g", obj, cost)
	}
}

func microArch(g *graph.DAG, p int) mbsp.Arch {
	return mbsp.Arch{P: p, R: 3 * g.MinCache(), G: 1, L: 0}
}

func TestSolveDiamondP1Optimal(t *testing.T) {
	g := graph.Diamond()
	arch := microArch(g, 1)
	s, stats, err := Solve(g, arch, Options{TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Optimum: load source (1) + compute a,b,t (3) + save t (1) = 5.
	if got := s.SyncCost(); got != 5 {
		t.Fatalf("cost=%g want 5 (stats=%+v)\n%s", got, stats, s)
	}
	if !stats.UsedILP {
		t.Fatal("tree search should run on this tiny model")
	}
}

func TestSolveNeverWorseThanWarmStart(t *testing.T) {
	for _, inst := range workloads.Tiny()[:6] {
		arch := mbsp.Arch{P: 4, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
		warm, err := twostage.BSPgClairvoyant(1, 10).Run(inst.DAG, arch)
		if err != nil {
			t.Fatal(err)
		}
		s, stats, err := Solve(inst.DAG, arch, Options{
			WarmStart:         warm,
			TimeLimit:         2 * time.Second,
			LocalSearchBudget: 300,
		})
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if s.SyncCost() > warm.SyncCost()+1e-9 {
			t.Fatalf("%s: ILP result %g worse than warm start %g (stats=%+v)",
				inst.Name, s.SyncCost(), warm.SyncCost(), stats)
		}
	}
}

func TestSolveChainRecomputationOpportunity(t *testing.T) {
	// Small instance where the holistic solver should at least match the
	// baseline exactly (chain has a unique sensible schedule).
	g := graph.Chain(5)
	arch := microArch(g, 1)
	s, _, err := Solve(g, arch, Options{TimeLimit: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + 4 + 1 // load, computes, save
	if got := s.SyncCost(); got != want {
		t.Fatalf("cost=%g want %g", got, want)
	}
}

func TestSolveNoRecompute(t *testing.T) {
	g := graph.Diamond()
	arch := microArch(g, 2)
	s, _, err := Solve(g, arch, Options{
		NoRecompute: true,
		TimeLimit:   3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for i := range s.Steps {
		for p := range s.Steps[i].Procs {
			for _, op := range s.Steps[i].Procs[p].Comp {
				if op.Kind == mbsp.OpCompute {
					counts[op.Node]++
				}
			}
		}
	}
	for v, c := range counts {
		if c > 1 {
			t.Fatalf("node %d computed %d times despite NoRecompute", v, c)
		}
	}
}

func TestSolveAsyncModel(t *testing.T) {
	g := graph.Diamond()
	arch := mbsp.Arch{P: 2, R: 3 * g.MinCache(), G: 1, L: 0}
	s, stats, err := Solve(g, arch, Options{Model: mbsp.Async, TimeLimit: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.FinalCost != s.AsyncCost() {
		t.Fatalf("stats cost %g != schedule async cost %g", stats.FinalCost, s.AsyncCost())
	}
}

func TestSolveSkipsHugeModels(t *testing.T) {
	inst, err := workloads.ByName("spmv_N10")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 4, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	_, stats, err := Solve(inst.DAG, arch, Options{
		TimeLimit:         time.Second,
		MaxModelRows:      100, // force skip
		LocalSearchBudget: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.UsedILP {
		t.Fatal("tree search should have been skipped")
	}
	if stats.ILPStatus != "skipped-model-too-large" {
		t.Fatalf("status=%q", stats.ILPStatus)
	}
}

// Lemma 6.1: with the minimal horizon the optimal restricted schedule may
// contain empty steps, yet a longer horizon admits a strictly cheaper
// schedule (recomputing a chain replaces an expensive load). We verify the
// monotone part computationally: allowing more steps never hurts, and on
// the zipper gadget with g >> d the solver with extra steps finds a
// schedule at least as cheap as with the tight horizon.
func TestZipperGadgetMoreStepsNeverWorse(t *testing.T) {
	z := graph.NewZipperGadget(3, 2)
	g := z.DAG
	arch := mbsp.Arch{P: 1, R: 4, G: 6, L: 0}
	warm, err := twostage.DFSClairvoyant().Run(g, arch)
	if err != nil {
		t.Fatal(err)
	}
	base := warm.SyncCost()
	var costs []float64
	for _, extra := range []int{1, 4} {
		s, _, err := Solve(g, arch, Options{
			WarmStart:  warm,
			ExtraSteps: extra,
			TimeLimit:  6 * time.Second,
			NodeLimit:  2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, s.SyncCost())
	}
	if costs[0] > base+1e-9 || costs[1] > base+1e-9 {
		t.Fatalf("solver worse than baseline: %v vs %g", costs, base)
	}
	if costs[1] > costs[0]+1e-9 {
		t.Fatalf("more steps hurt: T+4 cost %g > T+1 cost %g", costs[1], costs[0])
	}
}

// The base (non-merged) formulation must also accept its warm-start
// encoding and never lose to the baseline.
func TestNoStepMergingWarmStartFeasible(t *testing.T) {
	g := graph.Diamond()
	arch := mbsp.Arch{P: 1, R: 3 * g.MinCache(), G: 1, L: 0}
	warm, err := twostage.DFSClairvoyant().Run(g, arch)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NoStepMerging: true}.withDefaults()
	skel, err := buildSkeleton(warm, nil)
	if err != nil {
		t.Fatal(err)
	}
	skel = explodeSkeleton(skel, arch.P)
	im := buildModel(g, arch, opts, len(skel)+2)
	x := im.assignment(skel)
	if err := im.m.CheckFeasible(x, 1e-6); err != nil {
		t.Fatalf("non-merged warm start infeasible: %v", err)
	}
	// One op per (p, t) in the exploded assignment.
	for tt := 0; tt < im.T; tt++ {
		ops := 0
		for v := 0; v < g.N(); v++ {
			if j := im.compute[0][v][tt]; j >= 0 && x[j] > 0.5 {
				ops++
			}
			if j := im.save[0][v][tt]; j >= 0 && x[j] > 0.5 {
				ops++
			}
			if j := im.load[0][v][tt]; j >= 0 && x[j] > 0.5 {
				ops++
			}
		}
		if ops > 1 {
			t.Fatalf("step %d has %d ops despite NoStepMerging", tt, ops)
		}
	}
}

func TestNoStepMergingSolve(t *testing.T) {
	g := graph.Diamond()
	arch := mbsp.Arch{P: 1, R: 3 * g.MinCache(), G: 1, L: 0}
	s, stats, err := Solve(g, arch, Options{
		NoStepMerging: true,
		TimeLimit:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.SyncCost() > stats.WarmCost+1e-9 {
		t.Fatalf("non-merged solve %g worse than warm %g", s.SyncCost(), stats.WarmCost)
	}
}

// Property: warm-start encodings stay feasible on random layered DAGs
// across architectures — the formulation must accept any valid baseline
// schedule, not just the bundled benchmark shapes.
func TestWarmStartEncodingFeasibleRandom(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := graph.RandomLayered("p", 3, 3, 0.4, 4, 4, seed)
		p := 1 + int(seed%3)
		arch := mbsp.Arch{P: p, R: (1 + float64(seed%3)) * g.MinCache(), G: 2, L: 3}
		pl := twostage.BSPgClairvoyant(arch.G, arch.L)
		if p == 1 {
			pl = twostage.DFSClairvoyant()
		}
		warm, err := pl.Run(g, arch)
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range []mbsp.CostModel{mbsp.Sync, mbsp.Async} {
			opts := Options{Model: model}.withDefaults()
			skel, err := buildSkeleton(warm, nil)
			if err != nil {
				t.Fatal(err)
			}
			im := buildModel(g, arch, opts, len(skel)+2)
			x := im.assignment(skel)
			if err := im.m.CheckFeasible(x, 1e-6); err != nil {
				t.Fatalf("seed %d P=%d model=%v: %v", seed, p, model, err)
			}
		}
	}
}
