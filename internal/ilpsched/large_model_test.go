package ilpsched

import (
	"testing"
	"time"

	"mbsp/internal/lp"
	"mbsp/internal/mbsp"
	"mbsp/internal/mip"
	"mbsp/internal/workloads"
)

// TestLargeModelEntersTreeSearch pins the headline win of the sparse LU
// core: a registry scheduling model far beyond the former dense-inverse
// ceiling (DefaultMaxModelRows was 3000 while the basis inverse was a
// dense m×m matrix) builds, factors with low fill, solves its root
// relaxation and explores a node-limited tree — instead of being skipped
// as "model too large". The spmv_N7 P=4 holistic model has 4856 rows:
// inside today's 10000-row default, impossible under the dense core
// (its O(rows²)-per-iteration cost made ≳3400-row roots unfinishable).
func TestLargeModelEntersTreeSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("large-model solve (~20s) skipped in -short")
	}
	inst, err := workloads.ByName("spmv_N7")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 4, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	var lu lp.FactorStats
	s, stats, err := Solve(inst.DAG, arch, Options{
		Model:             mbsp.Sync,
		TimeLimit:         time.Minute,
		NodeLimit:         6,
		LocalSearchBudget: 1,
		Seed:              7,
		LUStats:           &lu,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ModelRows <= 3000 {
		t.Fatalf("fixture lost its point: model has %d rows, not beyond the old 3000-row dense ceiling", stats.ModelRows)
	}
	if stats.ModelRows > mip.DefaultMaxModelRows {
		t.Fatalf("model has %d rows > DefaultMaxModelRows %d; it would be skipped", stats.ModelRows, mip.DefaultMaxModelRows)
	}
	if !stats.UsedILP {
		t.Fatalf("tree search skipped (status %q) on a %d-row model inside the default ceiling", stats.ILPStatus, stats.ModelRows)
	}
	if stats.ILPNodes < 1 || stats.SimplexIters < 1 {
		t.Fatalf("tree search did no work: %d nodes, %d iters", stats.ILPNodes, stats.SimplexIters)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	if lu.Refactors < 1 || lu.Ftrans < 1 {
		t.Fatalf("LU counters did not move: %+v", lu)
	}
	// The whole point of the sparse core: factor storage stays within a
	// small multiple of the basis nonzeros (measured ~1.15×), nowhere
	// near the dense rows² (23.6M entries here).
	if lu.FillNnz > 4*lu.BasisNnz {
		t.Fatalf("excessive fill-in: %d factor nnz for %d basis nnz", lu.FillNnz, lu.BasisNnz)
	}
	t.Logf("rows=%d nodes=%d iters=%d refactors=%d etas=%d hot=%d fill=%d/%d",
		stats.ModelRows, stats.ILPNodes, stats.SimplexIters,
		lu.Refactors, lu.EtaPivots, lu.HotSolves, lu.FillNnz, lu.BasisNnz)
}
