package ilpsched

import (
	"fmt"
	"math"

	"mbsp/internal/mbsp"
)

// skelStep is one ILP time step derived from a warm-start schedule.
type skelStep struct {
	computes [][]int        // per processor
	saves    [][]int        // per processor
	loads    [][]int        // per processor
	redAfter []map[int]bool // per processor, red set at the next boundary
}

// buildSkeleton translates an MBSP schedule into a sequence of merged ILP
// time steps:
//
//   - each superstep's compute phase splits into segments such that a
//     segment's starting red set plus its computed outputs fit in cache
//     (matching the ILP's conservative merged memory rule); interleaved
//     deletes take effect at segment boundaries;
//   - saves form one comm step (with the del-phase deletes taking effect
//     at its boundary) and loads a second, so a value saved and loaded in
//     the same superstep is blue before the load's step, as constraint
//     (1) requires.
func buildSkeleton(s *mbsp.Schedule, initialRed [][]int) ([]skelStep, error) {
	g := s.Graph
	P := s.Arch.P
	red := make([]map[int]bool, P)
	for p := 0; p < P; p++ {
		red[p] = map[int]bool{}
		if p < len(initialRed) {
			for _, v := range initialRed[p] {
				red[p][v] = true
			}
		}
	}
	memOf := func(set map[int]bool) float64 {
		t := 0.0
		for v := range set {
			t += g.Mem(v)
		}
		return t
	}
	var steps []skelStep
	newStep := func() *skelStep {
		st := skelStep{
			computes: make([][]int, P), saves: make([][]int, P),
			loads: make([][]int, P), redAfter: make([]map[int]bool, P),
		}
		steps = append(steps, st)
		return &steps[len(steps)-1]
	}
	snapshot := func(st *skelStep) {
		for p := 0; p < P; p++ {
			cp := make(map[int]bool, len(red[p]))
			for v := range red[p] {
				cp[v] = true
			}
			st.redAfter[p] = cp
		}
	}

	copyOf := func(set map[int]bool) map[int]bool {
		cp := make(map[int]bool, len(set))
		for v := range set {
			cp[v] = true
		}
		return cp
	}
	for si := range s.Steps {
		// Compute phase: split each processor's op list into segments
		// whose segment-start red set plus computed outputs fit in r
		// (matching the merged memory rule); ops mutate red[p] in exact
		// order, and we snapshot the state after every segment.
		segComputes := make([][][]int, P)
		afterSeg := make([][]map[int]bool, P)
		maxSegs := 0
		for p := 0; p < P; p++ {
			ps := &s.Steps[si].Procs[p]
			var curComputes []int
			segStartMem := memOf(red[p])
			var curCompMem float64
			closeSeg := func() {
				segComputes[p] = append(segComputes[p], curComputes)
				afterSeg[p] = append(afterSeg[p], copyOf(red[p]))
				curComputes = nil
				segStartMem = memOf(red[p])
				curCompMem = 0
			}
			for _, op := range ps.Comp {
				switch op.Kind {
				case mbsp.OpCompute:
					// Conservative merged-memory test: the ILP counts a
					// computed node's μ on top of the full starting red
					// set.
					if segStartMem+curCompMem+g.Mem(op.Node) > s.Arch.R+1e-9 && len(curComputes) > 0 {
						closeSeg()
					}
					curComputes = append(curComputes, op.Node)
					curCompMem += g.Mem(op.Node)
					red[p][op.Node] = true
				case mbsp.OpDelete:
					delete(red[p], op.Node)
				}
			}
			if len(curComputes) > 0 {
				closeSeg()
			}
			if len(segComputes[p]) > maxSegs {
				maxSegs = len(segComputes[p])
			}
		}
		for k := 0; k < maxSegs; k++ {
			st := newStep()
			for p := 0; p < P; p++ {
				switch {
				case k < len(segComputes[p]):
					st.computes[p] = segComputes[p][k]
					st.redAfter[p] = afterSeg[p][k]
				case len(afterSeg[p]) > 0:
					st.redAfter[p] = afterSeg[p][len(afterSeg[p])-1]
				default:
					st.redAfter[p] = copyOf(red[p])
				}
			}
		}
		// Communication: saves (with del-phase deletions at the save
		// step's boundary), then loads; separate steps so that a value
		// saved in this superstep is blue before any load of it.
		anySave, anyLoad := false, false
		for p := 0; p < P; p++ {
			if len(s.Steps[si].Procs[p].Save) > 0 {
				anySave = true
			}
			if len(s.Steps[si].Procs[p].Load) > 0 {
				anyLoad = true
			}
		}
		if anySave {
			st := newStep()
			for p := 0; p < P; p++ {
				st.saves[p] = s.Steps[si].Procs[p].Save
				for _, d := range s.Steps[si].Procs[p].Del {
					delete(red[p], d)
				}
			}
			snapshot(st)
		} else {
			// Del-phase deletions fold into the next snapshot.
			for p := 0; p < P; p++ {
				for _, d := range s.Steps[si].Procs[p].Del {
					delete(red[p], d)
				}
			}
		}
		if anyLoad {
			st := newStep()
			for p := 0; p < P; p++ {
				st.loads[p] = s.Steps[si].Procs[p].Load
				for _, v := range s.Steps[si].Procs[p].Load {
					red[p][v] = true
				}
			}
			snapshot(st)
		}
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("ilpsched: warm-start schedule is empty")
	}
	return steps, nil
}

// assignment produces a full feasible variable assignment of the model
// from the skeleton. Steps beyond the skeleton are idle with frozen
// state.
func (im *ilpModel) assignment(steps []skelStep) []float64 {
	g, T, P := im.g, im.T, im.arch.P
	n := g.N()
	x := make([]float64, im.m.NumVars())
	set := func(j int, v float64) {
		if j >= 0 {
			x[j] = v
		}
	}

	// Core binaries and state.
	blue := make([]bool, n)
	for _, v := range g.Sources() {
		blue[v] = true
	}
	// hasred at t=0 is fixed by the model (InitialRed); set those that
	// exist.
	for p := 0; p < P; p++ {
		for v := 0; v < n; v++ {
			if im.hasred[p][v][0] >= 0 {
				x[im.hasred[p][v][0]] = 1
			}
		}
	}
	for t := 0; t < T; t++ {
		if t < len(steps) {
			st := &steps[t]
			for p := 0; p < P; p++ {
				for _, v := range st.computes[p] {
					set(im.compute[p][v][t], 1)
				}
				for _, v := range st.saves[p] {
					set(im.save[p][v][t], 1)
					blue[v] = true
				}
				for _, v := range st.loads[p] {
					set(im.load[p][v][t], 1)
				}
				if len(st.computes[p]) > 0 {
					set(im.compstep[p][t], 1)
				}
				if len(st.saves[p])+len(st.loads[p]) > 0 {
					set(im.commstep[p][t], 1)
				}
				for v := range st.redAfter[p] {
					set(im.hasred[p][v][t+1], 1)
				}
			}
		} else {
			// Idle: freeze state.
			last := &steps[len(steps)-1]
			for p := 0; p < P; p++ {
				for v := range last.redAfter[p] {
					set(im.hasred[p][v][t+1], 1)
				}
			}
		}
		for v := 0; v < n; v++ {
			if blue[v] && im.hasblue[v] != nil && im.hasblue[v][t+1] >= 0 {
				x[im.hasblue[v][t+1]] = 1
			}
		}
	}

	if im.opts.Model == mbsp.Async {
		im.assignAsync(x, steps)
	} else {
		im.assignSync(x, steps)
	}
	return x
}

func (im *ilpModel) stepCompCost(x []float64, p, t int) float64 {
	c := 0.0
	for v := 0; v < im.g.N(); v++ {
		if j := im.compute[p][v][t]; j >= 0 && x[j] > 0.5 {
			c += im.g.Comp(v)
		}
	}
	return c
}

func (im *ilpModel) stepCommCost(x []float64, p, t int) float64 {
	c := 0.0
	for v := 0; v < im.g.N(); v++ {
		if j := im.save[p][v][t]; j >= 0 && x[j] > 0.5 {
			c += im.arch.G * im.g.Mem(v)
		}
		if j := im.load[p][v][t]; j >= 0 && x[j] > 0.5 {
			c += im.arch.G * im.g.Mem(v)
		}
	}
	return c
}

func (im *ilpModel) assignSync(x []float64, steps []skelStep) {
	T, P := im.T, im.arch.P
	compPhase := make([]float64, T)
	commPhase := make([]float64, T)
	for t := 0; t < T; t++ {
		for p := 0; p < P; p++ {
			if x[im.compstep[p][t]] > 0.5 {
				compPhase[t] = 1
			}
			if x[im.commstep[p][t]] > 0.5 {
				commPhase[t] = 1
			}
		}
		x[im.compphase[t]] = compPhase[t]
		x[im.commphase[t]] = commPhase[t]
	}
	for t := 0; t < T; t++ {
		nextComp, nextComm := 0.0, 0.0
		if t+1 < T {
			nextComp, nextComm = compPhase[t+1], commPhase[t+1]
		}
		if compPhase[t] == 1 && nextComp == 0 {
			x[im.compends[t]] = 1
		}
		if commPhase[t] == 1 && nextComm == 0 {
			x[im.commends[t]] = 1
		}
	}
	for p := 0; p < P; p++ {
		for t := 0; t < T; t++ {
			x[im.compuntil[p][t]] = im.minCompuntil(x, p, t)
			x[im.communtil[p][t]] = im.minCommuntil(x, p, t)
		}
	}
	for t := 0; t < T; t++ {
		if x[im.compends[t]] > 0.5 {
			best := 0.0
			for p := 0; p < P; p++ {
				best = math.Max(best, x[im.compuntil[p][t]])
			}
			x[im.compinduced[t]] = best
		}
		if x[im.commends[t]] > 0.5 {
			best := 0.0
			for p := 0; p < P; p++ {
				best = math.Max(best, x[im.communtil[p][t]])
			}
			x[im.comminduced[t]] = best
		}
	}
}

// minCompuntil returns the minimal feasible value of compuntil[p][t]:
// max(0, compuntil[p][t−1] + Σ ω·compute − M·commends[t]).
func (im *ilpModel) minCompuntil(x []float64, p, t int) float64 {
	req := im.stepCompCost(x, p, t)
	if t > 0 {
		req += x[im.compuntil[p][t-1]]
		if x[im.commends[t]] > 0.5 {
			req -= im.bigM
		}
	}
	return math.Max(req, 0)
}

// minCommuntil is the communication-side counterpart of minCompuntil.
func (im *ilpModel) minCommuntil(x []float64, p, t int) float64 {
	req := im.stepCommCost(x, p, t)
	if t > 0 {
		req += x[im.communtil[p][t-1]]
		if x[im.compends[t]] > 0.5 {
			req -= im.bigM
		}
	}
	return math.Max(req, 0)
}

func (im *ilpModel) assignAsync(x []float64, steps []skelStep) {
	g, T, P := im.g, im.T, im.arch.P
	n := g.N()
	ft := make([]float64, P)
	gb := make([]float64, n)
	for t := 0; t < T; t++ {
		// Loads first compute their wait based on existing gb (loads and
		// saves never share a step by skeleton construction).
		for p := 0; p < P; p++ {
			step := ft[p] + im.stepCompCost(x, p, t) + im.stepCommCost(x, p, t)
			// Load waits: finish ≥ gb(v) + total load cost of the step.
			loadCost := 0.0
			for v := 0; v < n; v++ {
				if j := im.load[p][v][t]; j >= 0 && x[j] > 0.5 {
					loadCost += im.arch.G * g.Mem(v)
				}
			}
			for v := 0; v < n; v++ {
				if j := im.load[p][v][t]; j >= 0 && x[j] > 0.5 && !g.IsSource(v) {
					if gb[v]+loadCost > step {
						step = gb[v] + loadCost
					}
				}
			}
			ft[p] = step
			x[im.finishtime[p][t]] = ft[p]
		}
		for p := 0; p < P; p++ {
			for v := 0; v < n; v++ {
				if j := im.save[p][v][t]; j >= 0 && x[j] > 0.5 {
					if ft[p] > gb[v] {
						gb[v] = ft[p]
					}
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if im.getsblue[v] >= 0 {
			x[im.getsblue[v]] = gb[v]
		}
	}
	best := 0.0
	for p := 0; p < P; p++ {
		best = math.Max(best, ft[p])
	}
	x[im.makespan] = best
}

// explodeSkeleton rewrites a merged skeleton into the base formulation's
// one-op-per-processor-per-step shape: each original step becomes rounds
// in which every processor performs at most one of its operations;
// deletions (red-set drops) take effect at the original step's final
// round. Used when Options.NoStepMerging is set.
func explodeSkeleton(steps []skelStep, P int) []skelStep {
	copyOf := func(set map[int]bool) map[int]bool {
		cp := make(map[int]bool, len(set))
		for v := range set {
			cp[v] = true
		}
		return cp
	}
	// cur tracks the running red sets between emitted substeps.
	cur := make([]map[int]bool, P)
	for p := range cur {
		cur[p] = map[int]bool{}
	}
	if len(steps) > 0 {
		// Initial red state equals whatever the first step assumed; the
		// caller built the skeleton from the same InitialRed, and the
		// first step's redAfter minus its own effects is not recoverable
		// here, so start from empty and rely on the final-round override
		// per original step. Intermediate rounds only ever add values.
	}
	var out []skelStep
	for si := range steps {
		st := &steps[si]
		rounds := 0
		for p := 0; p < P; p++ {
			rounds = max(rounds, len(st.computes[p]))
			rounds = max(rounds, len(st.saves[p]))
			rounds = max(rounds, len(st.loads[p]))
		}
		if rounds == 0 {
			rounds = 1 // pure red-drop step
		}
		for k := 0; k < rounds; k++ {
			ns := skelStep{
				computes: make([][]int, P), saves: make([][]int, P),
				loads: make([][]int, P), redAfter: make([]map[int]bool, P),
			}
			for p := 0; p < P; p++ {
				if k < len(st.computes[p]) {
					c := st.computes[p][k]
					ns.computes[p] = []int{c}
					cur[p][c] = true
				}
				if k < len(st.saves[p]) {
					ns.saves[p] = []int{st.saves[p][k]}
				}
				if k < len(st.loads[p]) {
					l := st.loads[p][k]
					ns.loads[p] = []int{l}
					cur[p][l] = true
				}
				if k == rounds-1 {
					// Final round: adopt the authoritative state (this
					// applies the original step's deletions).
					cur[p] = copyOf(st.redAfter[p])
					ns.redAfter[p] = st.redAfter[p]
				} else {
					ns.redAfter[p] = copyOf(cur[p])
				}
			}
			out = append(out, ns)
		}
	}
	return out
}
