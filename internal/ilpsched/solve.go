package ilpsched

import (
	"fmt"
	"time"

	"mbsp/internal/exact"
	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/mip"
	"mbsp/internal/refine"
	"mbsp/internal/twostage"
)

// Solve finds an MBSP schedule for g on arch with the holistic ILP-based
// method: it builds the ILP of Section 6, warm-starts the branch-and-bound
// with the two-stage baseline (exactly as the paper seeds its solver), and
// runs a holistic local-search primal heuristic alongside. The returned
// schedule is always valid and never worse than the warm start under the
// selected cost model.
func Solve(g *graph.DAG, arch mbsp.Arch, opts Options) (*mbsp.Schedule, Stats, error) {
	opts = opts.withDefaults()
	start := time.Now()
	var stats Stats
	var done <-chan struct{}
	if opts.Context != nil {
		done = opts.Context.Done()
	}

	warm := opts.WarmStart
	if warm == nil {
		pl := twostage.BSPgClairvoyant(arch.G, arch.L)
		if arch.P == 1 {
			pl = twostage.DFSClairvoyant()
		}
		var err error
		warm, err = pl.Run(g, arch)
		if err != nil {
			return nil, stats, fmt.Errorf("ilpsched: building baseline warm start: %w", err)
		}
	}
	if err := warm.Validate(); err != nil {
		return nil, stats, fmt.Errorf("ilpsched: warm start invalid: %w", err)
	}
	best := warm
	bestCost := warm.Cost(opts.Model)
	stats.WarmCost = bestCost
	stats.Source = "warm-start"
	// Publish the baseline cost to the portfolio-wide incumbent: any
	// concurrent solver that cannot beat it may cut off immediately.
	opts.Incumbent.Offer(bestCost)

	// Build the ILP sized by the warm start plus slack.
	skel, err := buildSkeleton(warm, opts.InitialRed)
	if err != nil {
		return nil, stats, err
	}
	if opts.NoStepMerging {
		skel = explodeSkeleton(skel, arch.P)
	}
	T := len(skel) + opts.ExtraSteps
	if opts.Steps > 0 {
		T = opts.Steps
	}
	im := buildModel(g, arch, opts, T)
	stats.Steps = T
	stats.ModelVars = im.m.NumVars()
	stats.ModelRows = im.m.NumRows()

	if stats.ModelRows <= opts.MaxModelRows {
		x := im.assignment(skel)
		if err := im.m.CheckFeasible(x, 1e-6); err != nil {
			opts.Logf("ilpsched: warm-start encoding rejected (%v); solving cold", err)
			x = nil
		}
		stats.UsedILP = true
		res := im.m.Solve(mip.Options{
			TimeLimit:       opts.TimeLimit,
			NodeLimit:       opts.NodeLimit,
			WarmStart:       x,
			Logf:            opts.Logf,
			Cancel:          done,
			Workers:         opts.MIPWorkers,
			ColdStart:       opts.LPColdStart,
			ReferenceLP:     opts.LPReference,
			NoPerturb:       opts.NoPerturb,
			Inject:          opts.Inject,
			LUStats:         opts.LUStats,
			SharedIncumbent: opts.Incumbent,
			// Publish improving tree-search incumbents mid-search, but
			// only after extraction and validation: the shared bound must
			// carry real schedule costs, never raw model objectives.
			OnIncumbent: func(x []float64, obj float64) {
				if opts.Incumbent == nil {
					return
				}
				if sched, err := im.extract(x); err == nil && sched.Validate() == nil {
					opts.Incumbent.Offer(sched.Cost(opts.Model))
				}
			},
		})
		stats.ILPStatus = res.Status.String()
		stats.ILPNodes = res.Nodes
		stats.ILPLPs = res.LPs
		stats.SimplexIters = res.SimplexIters
		stats.WarmLPs = res.WarmLPs
		stats.ColdLPs = res.ColdLPs
		stats.PerturbedLPs = res.PerturbedLPs
		stats.CleanupIters = res.CleanupIters
		stats.ProvedBound = res.Bound
		if res.X != nil {
			if sched, err := im.extract(res.X); err == nil {
				if c := sched.Cost(opts.Model); c < bestCost {
					best, bestCost = sched, c
					stats.Source = "ilp"
				}
			} else {
				opts.Logf("ilpsched: extraction failed: %v", err)
			}
		}
	} else {
		stats.ILPStatus = "skipped-model-too-large"
		opts.Logf("ilpsched: model has %d rows (> %d), skipping tree search", stats.ModelRows, opts.MaxModelRows)
	}

	// Specialized exact backend: for single-processor instances small
	// enough for the configuration-space search (and without superstep
	// costs or subproblem boundary conditions), the red-blue pebbler
	// yields a provably optimal schedule — including recomputation
	// decisions the tree search rarely reaches.
	if arch.P == 1 && arch.L == 0 && g.N() <= exact.MaxNodes &&
		len(opts.InitialRed) == 0 && len(opts.NeedBlue) == 0 &&
		(opts.Context == nil || opts.Context.Err() == nil) {
		res, exErr := exact.SolveOpts(g, arch.R, arch.G, exact.Options{
			NoRecompute: opts.NoRecompute,
			StateBudget: 2_000_000,
		})
		if exErr == nil {
			if err := res.Schedule.Validate(); err == nil {
				if c := res.Schedule.Cost(opts.Model); c < bestCost {
					best, bestCost = res.Schedule, c
					stats.Source = "exact-pebbler"
				}
			}
		} else {
			opts.Logf("ilpsched: exact pebbler unavailable: %v", exErr)
		}
	}

	if !opts.DisableLocalSearch && arch.P > 1 && len(opts.InitialRed) == 0 {
		r := refine.Improve(best, refine.Options{
			Budget:    opts.LocalSearchBudget,
			Seed:      opts.Seed,
			Model:     opts.Model,
			ExtraSave: opts.NeedBlue,
			Cancel:    done,
		})
		stats.LocalMoves = r.Evals
		if r.Cost < bestCost-1e-9 {
			best, bestCost = r.Schedule, r.Cost
			stats.Source = "local-search"
		}
	}

	stats.FinalCost = bestCost
	stats.SolveTime = time.Since(start)
	if err := best.Validate(); err != nil {
		return nil, stats, fmt.Errorf("ilpsched: final schedule invalid: %w", err)
	}
	opts.Incumbent.Offer(bestCost)
	return best, stats, nil
}
