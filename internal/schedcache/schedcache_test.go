package schedcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGetAddHitMiss: basic store/load with counter accounting.
func TestGetAddHitMiss(t *testing.T) {
	c := New[string](Config{Entries: 8, Shards: 2})
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Add("a", "va")
	if v, ok := c.Get("a"); !ok || v != "va" {
		t.Fatalf("want va, got %q ok=%v", v, ok)
	}
	c.Add("a", "va2") // overwrite in place
	if v, _ := c.Get("a"); v != "va2" {
		t.Fatalf("overwrite lost: %q", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

// TestLRUEviction: a single-shard cache evicts in least-recently-used
// order, where Get refreshes recency.
func TestLRUEviction(t *testing.T) {
	c := New[int](Config{Entries: 3, Shards: 1})
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("c", 3)
	c.Get("a")    // a is now most recent; b is LRU
	c.Add("d", 4) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s unexpectedly evicted", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

// TestBoundedAcrossShards: the cache never holds more than its entry
// bound, whatever the key distribution.
func TestBoundedAcrossShards(t *testing.T) {
	const cap = 64
	c := New[int](Config{Entries: cap, Shards: 8})
	for i := 0; i < 10*cap; i++ {
		c.Add(fmt.Sprintf("key-%d", i), i)
	}
	if n := c.Len(); n > cap {
		t.Fatalf("cache holds %d entries, bound %d", n, cap)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("expected evictions under 10x overload")
	}
}

// TestDisabledStorage: Entries < 0 disables storage but keeps the
// single-flight machinery alive.
func TestDisabledStorage(t *testing.T) {
	c := New[int](Config{Entries: -1})
	c.Add("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored a value")
	}
	f, leader := c.Flight("a")
	if !leader {
		t.Fatal("expected leadership on fresh key")
	}
	c.Finish("a", f, 7, nil)
	if v, err := f.Result(); v != 7 || err != nil {
		t.Fatalf("flight result %v/%v", v, err)
	}
}

// TestSingleFlightCollapses: N concurrent requests for one key run the
// computation exactly once; every follower observes the leader's value.
func TestSingleFlightCollapses(t *testing.T) {
	c := New[int](Config{Entries: 8})
	const n = 32
	var computed atomic.Int32
	var wg, joined sync.WaitGroup
	joined.Add(n) // the leader finishes only after every request joined
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, ok := c.Get("k"); ok {
				t.Error("hit before any flight finished")
			}
			f, leader := c.Flight("k")
			joined.Done()
			if leader {
				joined.Wait()
				computed.Add(1)
				c.Finish("k", f, 42, nil)
			}
			<-f.Done()
			v, err := f.Result()
			if err != nil {
				t.Errorf("flight error: %v", err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if got := computed.Load(); got != 1 {
		t.Fatalf("computation ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("request %d got %d", i, v)
		}
	}
	// The finished flight landed in the cache; subsequent requests hit.
	if v, ok := c.Get("k"); !ok || v != 42 {
		t.Fatalf("finished flight not cached: %v %v", v, ok)
	}
	st := c.Stats()
	if st.Runs != 1 {
		t.Fatalf("want 1 run, got %d", st.Runs)
	}
	if st.Coalesced != n-1 {
		t.Fatalf("want %d coalesced followers, got %d", n-1, st.Coalesced)
	}
}

// TestFlightErrorNotCached: a failed flight propagates its error to all
// followers and leaves the cache empty, so the next request retries.
func TestFlightErrorNotCached(t *testing.T) {
	c := New[int](Config{Entries: 8})
	boom := errors.New("boom")
	f, leader := c.Flight("k")
	if !leader {
		t.Fatal("expected leadership")
	}
	follower, lead2 := c.Flight("k")
	if lead2 || follower != f {
		t.Fatal("second caller must follow the live flight")
	}
	c.Finish("k", f, 0, boom)
	<-f.Done()
	if _, err := f.Result(); !errors.Is(err, boom) {
		t.Fatalf("follower error %v", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed flight must not be cached")
	}
	if _, leader := c.Flight("k"); !leader {
		t.Fatal("key must be retryable after a failed flight")
	}
}

// TestConcurrentStress: hammer all operations from many goroutines; the
// race detector owns the assertions, the bound check closes it out.
func TestConcurrentStress(t *testing.T) {
	c := New[int](Config{Entries: 32, Shards: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%100)
				if _, ok := c.Get(key); !ok {
					f, leader := c.Flight(key)
					if leader {
						c.Finish(key, f, i, nil)
					} else {
						<-f.Done()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 32 {
		t.Fatalf("bound violated: %d entries", n)
	}
}

// TestOnStoreHook: the hook observes every Add (including the store a
// successful Finish performs) but never a Restore, and runs outside
// the shard lock (re-entrancy into the cache must not deadlock).
func TestOnStoreHook(t *testing.T) {
	c := New[int](Config{Entries: 8, Shards: 1})
	var mu sync.Mutex
	stored := map[string]int{}
	c.OnStore(func(key string, val int) {
		c.Get(key) // re-entrancy: must not deadlock on the shard lock
		mu.Lock()
		stored[key] = val
		mu.Unlock()
	})
	c.Add("a", 1)
	c.Restore("r", 2)
	f, leader := c.Flight("b")
	if !leader {
		t.Fatal("expected leadership")
	}
	c.Finish("b", f, 3, nil)
	fe, _ := c.Flight("e")
	c.Finish("e", fe, 9, errors.New("boom")) // failed flights store nothing
	fn, _ := c.Flight("n")
	c.FinishNoStore("n", fn, 4, nil) // NoStore stores nothing
	if len(stored) != 2 || stored["a"] != 1 || stored["b"] != 3 {
		t.Fatalf("hook observed %v, want a=1 b=3 only", stored)
	}
	if _, ok := c.Get("r"); !ok {
		t.Fatal("Restore did not insert")
	}
}

// TestOnStoreDisabledStorage: a disabled cache retains nothing, so the
// hook must see nothing either (nothing to persist).
func TestOnStoreDisabledStorage(t *testing.T) {
	c := New[int](Config{Entries: -1})
	calls := 0
	c.OnStore(func(string, int) { calls++ })
	c.Add("a", 1)
	if calls != 0 {
		t.Fatalf("hook fired %d times on a disabled cache", calls)
	}
}

// TestDumpOrder: Dump yields each shard least-recent first, so
// restoring a dump in order reproduces the recency order.
func TestDumpOrder(t *testing.T) {
	c := New[int](Config{Entries: 4, Shards: 1})
	for i, k := range []string{"a", "b", "c"} {
		c.Add(k, i)
	}
	c.Get("a") // recency now b < c < a
	dump := c.Dump()
	var keys []string
	for _, kv := range dump {
		keys = append(keys, kv.Key)
	}
	if fmt.Sprint(keys) != "[b c a]" {
		t.Fatalf("dump order %v, want [b c a]", keys)
	}
	// Restore into a fresh cache and overflow it: the LRU entry of the
	// restored order must be the one evicted.
	c2 := New[int](Config{Entries: 3, Shards: 1})
	for _, kv := range dump {
		c2.Restore(kv.Key, kv.Val)
	}
	c2.Add("d", 9)
	if _, ok := c2.Get("b"); ok {
		t.Fatal("restored recency lost: b should have been evicted first")
	}
	if _, ok := c2.Get("a"); !ok {
		t.Fatal("most-recent restored entry evicted")
	}
}

// TestEvictionUnderFlightStress is the eviction-under-flight
// interleaving the basic suite never exercises: a cache far smaller
// than its key space, hammered by concurrent leaders, followers,
// readers and direct stores, with a checker asserting the entry-count
// bound throughout. Every flight must Finish cleanly — including
// flights whose stored entry is evicted before, during, or immediately
// after Finish — and every follower must observe its leader's value.
// The race detector owns the memory-order assertions.
func TestEvictionUnderFlightStress(t *testing.T) {
	const (
		bound   = 8
		shards  = 2
		keys    = 100
		workers = 12
		iters   = 400
	)
	c := New[int](Config{Entries: bound, Shards: shards})
	var stop atomic.Bool
	checkerDone := make(chan struct{})
	go func() {
		defer close(checkerDone)
		for !stop.Load() {
			if n := c.Len(); n > bound {
				t.Errorf("entry bound exceeded mid-stress: %d > %d", n, bound)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", (w*37+i*11)%keys)
				switch i % 4 {
				case 0: // direct store, churning the LRU lists
					c.Add(key, w*iters+i)
				case 1:
					c.Get(key)
				default: // flight: leader finishes (sometimes without store)
					f, leader := c.Flight(key)
					if leader {
						// Churn the shard so this key's entry is evicted
						// while the flight is still live.
						for j := 0; j < 4; j++ {
							c.Add(fmt.Sprintf("evict-%d-%d-%d", w, i, j), j)
						}
						if i%8 == 2 {
							c.FinishNoStore(key, f, i, nil)
						} else {
							c.Finish(key, f, i, nil)
						}
					}
					<-f.Done()
					if _, err := f.Result(); err != nil {
						t.Errorf("flight for %s failed: %v", key, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	<-checkerDone
	if n := c.Len(); n > bound {
		t.Fatalf("entry bound exceeded after stress: %d > %d", n, bound)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("stress produced no evictions — the interleaving was not exercised")
	}
	if st.Runs == 0 || st.Entries > bound {
		t.Fatalf("implausible stats after stress: %+v", st)
	}
}
