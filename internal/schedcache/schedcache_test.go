package schedcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGetAddHitMiss: basic store/load with counter accounting.
func TestGetAddHitMiss(t *testing.T) {
	c := New[string](Config{Entries: 8, Shards: 2})
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Add("a", "va")
	if v, ok := c.Get("a"); !ok || v != "va" {
		t.Fatalf("want va, got %q ok=%v", v, ok)
	}
	c.Add("a", "va2") // overwrite in place
	if v, _ := c.Get("a"); v != "va2" {
		t.Fatalf("overwrite lost: %q", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

// TestLRUEviction: a single-shard cache evicts in least-recently-used
// order, where Get refreshes recency.
func TestLRUEviction(t *testing.T) {
	c := New[int](Config{Entries: 3, Shards: 1})
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("c", 3)
	c.Get("a")    // a is now most recent; b is LRU
	c.Add("d", 4) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s unexpectedly evicted", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

// TestBoundedAcrossShards: the cache never holds more than its entry
// bound, whatever the key distribution.
func TestBoundedAcrossShards(t *testing.T) {
	const cap = 64
	c := New[int](Config{Entries: cap, Shards: 8})
	for i := 0; i < 10*cap; i++ {
		c.Add(fmt.Sprintf("key-%d", i), i)
	}
	if n := c.Len(); n > cap {
		t.Fatalf("cache holds %d entries, bound %d", n, cap)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("expected evictions under 10x overload")
	}
}

// TestDisabledStorage: Entries < 0 disables storage but keeps the
// single-flight machinery alive.
func TestDisabledStorage(t *testing.T) {
	c := New[int](Config{Entries: -1})
	c.Add("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored a value")
	}
	f, leader := c.Flight("a")
	if !leader {
		t.Fatal("expected leadership on fresh key")
	}
	c.Finish("a", f, 7, nil)
	if v, err := f.Result(); v != 7 || err != nil {
		t.Fatalf("flight result %v/%v", v, err)
	}
}

// TestSingleFlightCollapses: N concurrent requests for one key run the
// computation exactly once; every follower observes the leader's value.
func TestSingleFlightCollapses(t *testing.T) {
	c := New[int](Config{Entries: 8})
	const n = 32
	var computed atomic.Int32
	var wg, joined sync.WaitGroup
	joined.Add(n) // the leader finishes only after every request joined
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, ok := c.Get("k"); ok {
				t.Error("hit before any flight finished")
			}
			f, leader := c.Flight("k")
			joined.Done()
			if leader {
				joined.Wait()
				computed.Add(1)
				c.Finish("k", f, 42, nil)
			}
			<-f.Done()
			v, err := f.Result()
			if err != nil {
				t.Errorf("flight error: %v", err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if got := computed.Load(); got != 1 {
		t.Fatalf("computation ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("request %d got %d", i, v)
		}
	}
	// The finished flight landed in the cache; subsequent requests hit.
	if v, ok := c.Get("k"); !ok || v != 42 {
		t.Fatalf("finished flight not cached: %v %v", v, ok)
	}
	st := c.Stats()
	if st.Runs != 1 {
		t.Fatalf("want 1 run, got %d", st.Runs)
	}
	if st.Coalesced != n-1 {
		t.Fatalf("want %d coalesced followers, got %d", n-1, st.Coalesced)
	}
}

// TestFlightErrorNotCached: a failed flight propagates its error to all
// followers and leaves the cache empty, so the next request retries.
func TestFlightErrorNotCached(t *testing.T) {
	c := New[int](Config{Entries: 8})
	boom := errors.New("boom")
	f, leader := c.Flight("k")
	if !leader {
		t.Fatal("expected leadership")
	}
	follower, lead2 := c.Flight("k")
	if lead2 || follower != f {
		t.Fatal("second caller must follow the live flight")
	}
	c.Finish("k", f, 0, boom)
	<-f.Done()
	if _, err := f.Result(); !errors.Is(err, boom) {
		t.Fatalf("follower error %v", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed flight must not be cached")
	}
	if _, leader := c.Flight("k"); !leader {
		t.Fatal("key must be retryable after a failed flight")
	}
}

// TestConcurrentStress: hammer all operations from many goroutines; the
// race detector owns the assertions, the bound check closes it out.
func TestConcurrentStress(t *testing.T) {
	c := New[int](Config{Entries: 32, Shards: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%100)
				if _, ok := c.Get(key); !ok {
					f, leader := c.Flight(key)
					if leader {
						c.Finish(key, f, i, nil)
					} else {
						<-f.Done()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 32 {
		t.Fatalf("bound violated: %d entries", n)
	}
}
