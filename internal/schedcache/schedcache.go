// Package schedcache is the schedule cache behind the scheduling
// service: a bounded, sharded LRU mapping a canonical request key —
// DAG fingerprint × exact digest × architecture (P, g, L, r) × the
// salient portfolio options — to a validated schedule plus its anytime
// certificate, with hit/miss/eviction counters and single-flight
// deduplication so N concurrent identical requests run the portfolio
// once.
//
// The cache is value-generic: it stores whatever the server builds for a
// key (in practice the marshaled wire response). Correctness of serving
// a stored value for a new request rests on the key construction, argued
// in DESIGN.md: the canonical fingerprint alone is relabeling-invariant,
// so two isomorphic but differently-numbered submissions must NOT share
// an entry (a schedule's ops name node ids); pairing it with the exact
// digest keys on ids too, and the remaining 128-bit collision risk is
// the usual hashing bet.
//
// Single-flight is exposed as a leader/follower primitive rather than a
// blocking GetOrCompute so the server can race a follower's wait against
// its per-request deadline: the flight keeps computing for the cache
// while the impatient request degrades to the anytime fallback.
package schedcache

import (
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count used when Config.Shards is 0. Sharding
// bounds lock contention under concurrent traffic; 16 keeps per-shard
// LRU lists useful at the default capacity.
const DefaultShards = 16

// DefaultEntries is the total entry bound used when Config.Entries is 0.
const DefaultEntries = 1024

// Config sizes a Cache.
type Config struct {
	// Entries bounds the total number of cached entries across all
	// shards. 0 selects DefaultEntries; negative disables storage (the
	// cache still deduplicates flights).
	Entries int
	// Shards is the shard count. 0 selects DefaultShards. Capacity is
	// split evenly; each shard evicts LRU-locally, so the global order is
	// approximate — the usual sharded-LRU trade.
	Shards int
}

// Cache is a bounded, sharded LRU with single-flight deduplication.
// The zero value is not usable; call New.
type Cache[V any] struct {
	shards   []shard[V]
	perShard int
	disabled bool
	// onStore observes every value stored via Add (and hence every
	// successful Finish): the journal-on-store hook of the persistence
	// layer. Set once via OnStore before the cache sees traffic.
	onStore func(key string, val V)

	mu      sync.Mutex
	flights map[string]*Flight[V]

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	coalesced atomic.Int64
	runs      atomic.Int64
}

type shard[V any] struct {
	mu      sync.Mutex
	entries map[string]*entry[V]
	// Intrusive doubly-linked LRU list; head.next is most recent.
	head entry[V]
}

type entry[V any] struct {
	key        string
	val        V
	prev, next *entry[V]
}

// New returns an empty cache sized by cfg.
func New[V any](cfg Config) *Cache[V] {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	entries := cfg.Entries
	if entries == 0 {
		entries = DefaultEntries
	}
	c := &Cache[V]{
		flights:  make(map[string]*Flight[V]),
		disabled: entries < 0,
	}
	if c.disabled {
		entries = 0
	}
	if cfg.Shards > entries && !c.disabled {
		cfg.Shards = entries // never allocate shards that can hold nothing
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	c.perShard = (entries + cfg.Shards - 1) / cfg.Shards
	c.shards = make([]shard[V], cfg.Shards)
	for i := range c.shards {
		s := &c.shards[i]
		s.entries = make(map[string]*entry[V])
		s.head.next = &s.head
		s.head.prev = &s.head
	}
	return c
}

// fnv1a hashes the key for shard selection.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (c *Cache[V]) shardFor(key string) *shard[V] {
	return &c.shards[fnv1a(key)%uint64(len(c.shards))]
}

// Get returns the cached value for key and bumps it to most-recent. The
// hit/miss counters record the outcome.
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	if c.disabled {
		c.misses.Add(1)
		return zero, false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return zero, false
	}
	s.unlink(e)
	s.pushFront(e)
	v := e.val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// OnStore installs the store hook: fn observes every (key, value) pair
// stored via Add — and hence every successful Finish — but not entries
// inserted with Restore. It is invoked outside the shard lock (it may
// fsync) and may run concurrently from multiple storers. Install it
// before the cache sees traffic.
func (c *Cache[V]) OnStore(fn func(key string, val V)) { c.onStore = fn }

// Add stores key→val as the most-recent entry of its shard, evicting the
// shard's least-recent entry if the shard is full. Re-adding an existing
// key overwrites it in place. The OnStore hook, if any, observes the
// store.
func (c *Cache[V]) Add(key string, val V) {
	if c.insert(key, val) && c.onStore != nil {
		c.onStore(key, val)
	}
}

// Restore inserts a recovered entry without notifying the OnStore hook:
// boot-time recovery must not re-journal what the journal just yielded.
func (c *Cache[V]) Restore(key string, val V) {
	c.insert(key, val)
}

// insert is the shared store path; it reports whether the value was
// actually retained (false when storage is disabled).
func (c *Cache[V]) insert(key string, val V) bool {
	if c.disabled {
		return false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		e.val = val
		s.unlink(e)
		s.pushFront(e)
		return true
	}
	if len(s.entries) >= c.perShard {
		lru := s.head.prev
		s.unlink(lru)
		delete(s.entries, lru.key)
		c.evictions.Add(1)
	}
	e := &entry[V]{key: key, val: val}
	s.entries[key] = e
	s.pushFront(e)
	return true
}

// KV is one cached entry, as yielded by Dump.
type KV[V any] struct {
	Key string
	Val V
}

// Dump returns the cache contents, least-recently-used first within
// each shard (so Restore-ing a dump in order reproduces each shard's
// recency). It is a point-in-time copy under per-shard locks; the
// snapshot-on-drain path calls it after traffic has stopped.
func (c *Cache[V]) Dump() []KV[V] {
	var out []KV[V]
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for e := s.head.prev; e != &s.head; e = e.prev {
			out = append(out, KV[V]{Key: e.key, Val: e.val})
		}
		s.mu.Unlock()
	}
	return out
}

// Len returns the current number of cached entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

func (s *shard[V]) unlink(e *entry[V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (s *shard[V]) pushFront(e *entry[V]) {
	e.next = s.head.next
	e.prev = &s.head
	s.head.next.prev = e
	s.head.next = e
}

// Flight is one in-flight computation for a key. Followers wait on Done;
// after it closes, Value/Err are immutable.
type Flight[V any] struct {
	done  chan struct{}
	value V
	err   error
}

// Done returns a channel closed when the flight's result is available.
func (f *Flight[V]) Done() <-chan struct{} { return f.done }

// Result returns the flight's outcome; it must only be called after Done
// is closed.
func (f *Flight[V]) Result() (V, error) { return f.value, f.err }

// Flight joins the single-flight group for key. The first caller becomes
// the leader (leader == true) and MUST eventually call Finish exactly
// once — typically from a goroutine that runs the computation — or every
// follower blocks forever. Followers (leader == false) share the
// leader's outcome via Done/Result. Flights are not cached: once
// finished, the next Flight call for the key starts a fresh one, so the
// caller should consult Get first and Add the finished value itself.
func (c *Cache[V]) Flight(key string) (f *Flight[V], leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[key]; ok {
		c.coalesced.Add(1)
		return f, false
	}
	f = &Flight[V]{done: make(chan struct{})}
	c.flights[key] = f
	c.runs.Add(1)
	return f, true
}

// Finish resolves the flight for key with the leader's outcome, waking
// every follower. On success (err == nil) the value is also stored in
// the cache.
func (c *Cache[V]) Finish(key string, f *Flight[V], val V, err error) {
	c.finish(key, f, val, err, true)
}

// FinishNoStore resolves the flight without storing the value: the
// waiters get it, future requests recompute. The server uses this for
// anytime results that are valid but not full-fidelity deterministic
// answers (degraded candidates, fallback rungs), which must never be
// replayed from the cache.
func (c *Cache[V]) FinishNoStore(key string, f *Flight[V], val V, err error) {
	c.finish(key, f, val, err, false)
}

func (c *Cache[V]) finish(key string, f *Flight[V], val V, err error, store bool) {
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	f.value, f.err = val, err
	if err == nil && store {
		c.Add(key, val)
	}
	close(f.done)
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	// Coalesced counts followers that joined an existing flight instead
	// of computing; Runs counts flights led (portfolio executions the
	// cache admitted).
	Coalesced int64 `json:"coalesced"`
	Runs      int64 `json:"runs"`
}

// Stats returns a snapshot of the cache counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Coalesced: c.coalesced.Load(),
		Runs:      c.runs.Load(),
	}
}
