package graph

import "testing"

func TestTwoStageGapGadgetStructure(t *testing.T) {
	d, m := 4, 6
	gd := NewTwoStageGapGadget(d, m)
	g := gd.DAG
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 2*d+2*m {
		t.Fatalf("n=%d want %d", g.N(), 2*d+2*m)
	}
	// All H nodes are sources.
	for _, h := range append(append([]int(nil), gd.H1...), gd.H2...) {
		if !g.IsSource(h) {
			t.Fatalf("group node %d is not a source", h)
		}
	}
	// Chain node i (1-based) has d group parents plus chain parent.
	for i := 1; i <= m; i++ {
		wantIn := d
		if i > 1 {
			wantIn++
		}
		if got := g.InDegree(gd.V[i-1]); got != wantIn {
			t.Fatalf("v_%d in-degree %d want %d", i, got, wantIn)
		}
		if got := g.InDegree(gd.U[i-1]); got != wantIn {
			t.Fatalf("u_%d in-degree %d want %d", i, got, wantIn)
		}
	}
	// Alternation: u_1 depends on H1, u_2 on H2.
	hasParent := func(v, p int) bool {
		for _, u := range g.Parents(v) {
			if u == p {
				return true
			}
		}
		return false
	}
	if !hasParent(gd.U[0], gd.H1[0]) || hasParent(gd.U[0], gd.H2[0]) {
		t.Fatal("u_1 should depend on H1 only")
	}
	if !hasParent(gd.U[1], gd.H2[0]) || hasParent(gd.U[1], gd.H1[0]) {
		t.Fatal("u_2 should depend on H2 only")
	}
	// r0 = d + 2 for unit weights (chain node + d group parents + chain parent).
	if got := g.MinCache(); got != float64(d+2) {
		t.Fatalf("MinCache=%g want %d", got, d+2)
	}
}

func TestZipperGadgetStructure(t *testing.T) {
	d, m := 4, 5
	z := NewZipperGadget(d, m)
	g := z.DAG
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 1+2*d+m+1 {
		t.Fatalf("n=%d want %d", g.N(), 1+2*d+m+1)
	}
	if !g.IsSource(z.W) {
		t.Fatal("w must be the source")
	}
	// Every non-w node has w as a parent.
	for v := 0; v < g.N(); v++ {
		if v == z.W {
			continue
		}
		found := false
		for _, u := range g.Parents(v) {
			if u == z.W {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d lacks edge from w", v)
		}
	}
	// v_0 depends on both chain ends; v_1 on U end; v_2 on UP end.
	deps := func(v int) map[int]bool {
		m := map[int]bool{}
		for _, u := range g.Parents(v) {
			m[u] = true
		}
		return m
	}
	if d0 := deps(z.V[0]); !d0[z.U[d-1]] || !d0[z.UP[d-1]] {
		t.Fatal("v_0 must depend on both chain ends")
	}
	if d1 := deps(z.V[1]); !d1[z.U[d-1]] || d1[z.UP[d-1]] {
		t.Fatal("v_1 must depend on u_d only")
	}
	if d2 := deps(z.V[2]); !d2[z.UP[d-1]] || d2[z.U[d-1]] {
		t.Fatal("v_2 must depend on u'_d only")
	}
}

func TestSyncGapGadgetStructure(t *testing.T) {
	p := 6
	gg := NewSyncGapGadget(p, 50)
	g := gg.DAG
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	pp := p / 2
	if g.N() != 1+2*pp*pp {
		t.Fatalf("n=%d want %d", g.N(), 1+2*pp*pp)
	}
	// Exactly one heavy node per chain pair per position diagonal.
	heavy := 0
	for v := 0; v < g.N(); v++ {
		if g.Comp(v) == 50 {
			heavy++
		}
	}
	if heavy != 2*pp {
		t.Fatalf("heavy nodes=%d want %d", heavy, 2*pp)
	}
	// Pair chains are cross-linked: u_{i,j} has u_{i,j-1} and v_{i,j-1} as parents.
	if g.InDegree(gg.U[0][1]) != 2 {
		t.Fatalf("u_{0,1} in-degree=%d want 2", g.InDegree(gg.U[0][1]))
	}
}

func TestSyncGapGadgetRejectsOddP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd P should panic")
		}
	}()
	NewSyncGapGadget(5, 10)
}

func TestAsyncGapGadgetStructure(t *testing.T) {
	z := 10.0
	gg := NewAsyncGapGadget(z)
	g := gg.DAG
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 {
		t.Fatalf("n=%d want 10", g.N())
	}
	if g.Comp(gg.U3) != 2*z || g.Comp(gg.V1) != 2*z || g.Comp(gg.W) != z-1 {
		t.Fatal("weights wrong")
	}
	if g.InDegree(gg.U3) != 2 || g.OutDegree(gg.V1) != 3 {
		t.Fatal("shape wrong")
	}
	if !g.IsSink(gg.W) || g.IsSource(gg.W) {
		t.Fatal("w must be non-source sink")
	}
}

func TestMemHardGadgetStructure(t *testing.T) {
	gg := NewMemHardGadget([]float64{3, 5, 2, 6})
	g := gg.DAG
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.InDegree(gg.C1) != 4 || g.InDegree(gg.C3) != 5 {
		t.Fatalf("c1 deg=%d c3 deg=%d", g.InDegree(gg.C1), g.InDegree(gg.C3))
	}
	if g.Mem(gg.VPrime) != 8 {
		t.Fatalf("v' weight=%g want 8", g.Mem(gg.VPrime))
	}
}
