package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyDAG(t *testing.T) {
	g := New("empty")
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty DAG has n=%d m=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("empty DAG invalid: %v", err)
	}
}

func TestAddNodeAndEdge(t *testing.T) {
	g := New("t")
	a := g.AddNode(2, 3)
	b := g.AddNode(4, 5)
	g.AddEdge(a, b)
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
	if g.Comp(a) != 2 || g.Mem(a) != 3 || g.Comp(b) != 4 || g.Mem(b) != 5 {
		t.Fatal("weights not stored")
	}
	if !reflect.DeepEqual(g.Children(a), []int{b}) {
		t.Fatalf("children(a)=%v", g.Children(a))
	}
	if !reflect.DeepEqual(g.Parents(b), []int{a}) {
		t.Fatalf("parents(b)=%v", g.Parents(b))
	}
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	g := New("t")
	a := g.AddNode(1, 1)
	b := g.AddNode(1, 1)
	g.AddEdge(a, b)
	g.AddEdge(a, b)
	if g.M() != 1 {
		t.Fatalf("duplicate edge counted: m=%d", g.M())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self loop did not panic")
		}
	}()
	g := New("t")
	a := g.AddNode(1, 1)
	g.AddEdge(a, a)
}

func TestTopoOrderChain(t *testing.T) {
	g := Chain(5)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("order=%v", order)
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New("cyc")
	a := g.AddNode(1, 1)
	b := g.AddNode(1, 1)
	c := g.AddNode(1, 1)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	// Manually inject a back edge bypassing the duplicate check.
	g.out[c] = append(g.out[c], a)
	g.in[a] = append(g.in[a], c)
	if _, err := g.TopoOrder(); err != ErrCyclic {
		t.Fatalf("expected ErrCyclic, got %v", err)
	}
	if err := g.Validate(); err != ErrCyclic {
		t.Fatalf("Validate: expected ErrCyclic, got %v", err)
	}
}

func TestSourcesSinks(t *testing.T) {
	g := Diamond()
	if !reflect.DeepEqual(g.Sources(), []int{0}) {
		t.Fatalf("sources=%v", g.Sources())
	}
	if !reflect.DeepEqual(g.Sinks(), []int{3}) {
		t.Fatalf("sinks=%v", g.Sinks())
	}
	if !g.IsSource(0) || g.IsSource(1) || !g.IsSink(3) || g.IsSink(0) {
		t.Fatal("IsSource/IsSink misclassified")
	}
}

func TestLevels(t *testing.T) {
	g := Diamond()
	lv, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lv, []int{0, 1, 1, 2}) {
		t.Fatalf("levels=%v", lv)
	}
}

func TestBottomLevelsAndCriticalPath(t *testing.T) {
	g := Diamond()
	bl, err := g.BottomLevels()
	if err != nil {
		t.Fatal(err)
	}
	// sink: 1; a,b: 2; source: 3
	if bl[3] != 1 || bl[1] != 2 || bl[2] != 2 || bl[0] != 3 {
		t.Fatalf("bottom levels=%v", bl)
	}
	if cp, err := g.CriticalPath(); err != nil || cp != 3 {
		t.Fatalf("critical path=%g err=%v", cp, err)
	}
}

func TestMinCache(t *testing.T) {
	g := New("t")
	a := g.AddNode(1, 2)
	b := g.AddNode(1, 3)
	c := g.AddNode(1, 4)
	g.AddEdge(a, c)
	g.AddEdge(b, c)
	// c needs μ(a)+μ(b)+μ(c) = 9
	if got := g.MinCache(); got != 9 {
		t.Fatalf("MinCache=%g, want 9", got)
	}
}

func TestMinCacheSourceOnly(t *testing.T) {
	g := New("t")
	g.AddNode(0, 7)
	if got := g.MinCache(); got != 7 {
		t.Fatalf("MinCache=%g, want 7", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Diamond()
	c := g.Clone()
	c.AddNode(1, 1)
	c.AddEdge(0, 4)
	c.SetComp(0, 42)
	if g.N() != 4 || g.Comp(0) != 1 {
		t.Fatal("clone mutated original")
	}
	if c.N() != 5 || c.Comp(0) != 42 {
		t.Fatal("clone not updated")
	}
}

func TestSubDAG(t *testing.T) {
	g := Diamond()
	sub, orig := g.SubDAG([]int{0, 1, 3})
	if sub.N() != 3 {
		t.Fatalf("sub n=%d", sub.N())
	}
	if !reflect.DeepEqual(orig, []int{0, 1, 3}) {
		t.Fatalf("orig=%v", orig)
	}
	// Edges kept: 0->1, 1->3 (as 0->1, 1->2 in sub).
	if sub.M() != 2 {
		t.Fatalf("sub m=%d", sub.M())
	}
}

func TestQuotientAndAcyclicPartition(t *testing.T) {
	g := Chain(4)
	part := []int{0, 0, 1, 1}
	q, cut := g.Quotient(part, 2)
	if q.N() != 2 || cut != 1 {
		t.Fatalf("quotient n=%d cut=%d", q.N(), cut)
	}
	if q.Comp(0) != 2 || q.Mem(1) != 2 {
		t.Fatalf("quotient weights comp0=%g mem1=%g", q.Comp(0), q.Mem(1))
	}
	if !g.IsAcyclicPartition(part, 2) {
		t.Fatal("chain split should be acyclic")
	}
	// Alternating partition of a chain is cyclic in the quotient.
	bad := []int{0, 1, 0, 1}
	if g.IsAcyclicPartition(bad, 2) {
		t.Fatal("alternating partition should be cyclic")
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := Diamond()
	anc := g.Ancestors(3)
	if !anc[0] || !anc[1] || !anc[2] || anc[3] {
		t.Fatalf("ancestors of sink=%v", anc)
	}
	des := g.Descendants(0)
	if !des[1] || !des[2] || !des[3] || des[0] {
		t.Fatalf("descendants of source=%v", des)
	}
}

func TestRoundTripIO(t *testing.T) {
	g := RandomLayered("rt", 4, 5, 0.4, 7, 5, 1)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip size mismatch: %v vs %v", h, g)
	}
	for v := 0; v < g.N(); v++ {
		if h.Comp(v) != g.Comp(v) || h.Mem(v) != g.Mem(v) {
			t.Fatalf("weights of %d differ", v)
		}
		if !reflect.DeepEqual(h.Children(v), g.Children(v)) {
			t.Fatalf("children of %d differ: %v vs %v", v, h.Children(v), g.Children(v))
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"node 0 1 1",
		"dag x 1 0\nnode 1 1 1",
		"dag x 2 1\nnode 0 1 1\nnode 1 1 1\nedge 0 5",
		"dag x 1 0\nfrobnicate",
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := DOT(&buf, Diamond()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "digraph") || !strings.Contains(s, "n0 -> n1") {
		t.Fatalf("unexpected DOT output:\n%s", s)
	}
}

func TestRandomLayeredReachability(t *testing.T) {
	g := RandomLayered("r", 5, 6, 0.3, 3, 5, 42)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	lv, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if !g.IsSource(v) && lv[v] == 0 {
			t.Fatalf("non-source node %d at level 0", v)
		}
	}
}

// Property: every topological order places parents before children.
func TestTopoOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(seed%20+20)%20
		g := RandomDAG("p", n, 0.3, 4, 5, 5, seed)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, g.N())
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Children(u) {
				if pos[u] >= pos[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: MinCache is attained at some node and never exceeded by any
// other node's closed in-neighbourhood weight.
func TestMinCacheProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomDAG("p", 15, 0.25, 5, 5, 5, seed)
		r0 := g.MinCache()
		attained := false
		for v := 0; v < g.N(); v++ {
			need := g.Mem(v)
			for _, u := range g.Parents(v) {
				need += g.Mem(u)
			}
			if need > r0 {
				return false
			}
			if need == r0 {
				attained = true
			}
		}
		return attained
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quotient preserves total weights for random acyclic-by-prefix
// partitions.
func TestQuotientWeightConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 30; it++ {
		g := RandomDAG("p", 20, 0.2, 4, 5, 5, int64(it))
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		k := 2 + rng.Intn(3)
		part := make([]int, g.N())
		for i, v := range order {
			part[v] = i * k / g.N()
		}
		q, _ := g.Quotient(part, k)
		if !almostEq(q.TotalComp(), g.TotalComp()) || !almostEq(q.TotalMem(), g.TotalMem()) {
			t.Fatalf("weight not conserved: %g vs %g", q.TotalComp(), g.TotalComp())
		}
		if !g.IsAcyclicPartition(part, k) {
			t.Fatal("prefix partition must be acyclic")
		}
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
