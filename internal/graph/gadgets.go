package graph

import "fmt"

// This file contains the example constructions used by the paper's proofs.
// They are exercised both by unit tests (which verify the structural
// claims) and by benchmark experiments E8–E10.

// TwoStageGapGadget is the construction of Theorem 4.1 (Figure 1): two
// groups H1, H2 of d source nodes and two chains of length m whose nodes
// alternately depend on all of H1 or all of H2. All node weights are 1.
//
// With P=2 processors, cache r = d+2, g = O(1) and L = 0, the optimal BSP
// schedule (one chain per processor) forces any cache policy into d·m
// loads, while the optimal MBSP schedule (children of H1 on one processor,
// children of H2 on the other, exchanging chain values through slow
// memory) needs only (2m+d)·g I/O — a Θ(n) gap.
type TwoStageGapGadget struct {
	DAG *DAG
	D   int   // group size
	M   int   // chain length
	H1  []int // first source group
	H2  []int // second source group
	V   []int // first chain v_1..v_m
	U   []int // second chain u_1..u_m
}

// NewTwoStageGapGadget builds the Theorem 4.1 construction with groups of
// size d and chains of length m.
func NewTwoStageGapGadget(d, m int) *TwoStageGapGadget {
	if d < 1 || m < 1 {
		panic("graph: TwoStageGapGadget requires d,m >= 1")
	}
	g := New(fmt.Sprintf("twostage_gap_d%d_m%d", d, m))
	gd := &TwoStageGapGadget{DAG: g, D: d, M: m}
	for i := 0; i < d; i++ {
		gd.H1 = append(gd.H1, g.AddNodeLabeled(fmt.Sprintf("h1_%d", i), 1, 1))
	}
	for i := 0; i < d; i++ {
		gd.H2 = append(gd.H2, g.AddNodeLabeled(fmt.Sprintf("h2_%d", i), 1, 1))
	}
	for i := 1; i <= m; i++ {
		v := g.AddNodeLabeled(fmt.Sprintf("v_%d", i), 1, 1)
		u := g.AddNodeLabeled(fmt.Sprintf("u_%d", i), 1, 1)
		gd.V = append(gd.V, v)
		gd.U = append(gd.U, u)
		if i > 1 {
			g.AddEdge(gd.V[i-2], v)
			g.AddEdge(gd.U[i-2], u)
		}
		// Odd i: u_i depends on all of H1, v_i on all of H2.
		// Even i: u_i depends on all of H2, v_i on all of H1.
		uGroup, vGroup := gd.H1, gd.H2
		if i%2 == 0 {
			uGroup, vGroup = gd.H2, gd.H1
		}
		for _, h := range uGroup {
			g.AddEdge(h, u)
		}
		for _, h := range vGroup {
			g.AddEdge(h, v)
		}
	}
	return gd
}

// ZipperGadget is the Lemma 6.1 construction: two chains (u_1..u_d) and
// (u'_1..u'_d), a chain (v_0..v_m) whose node v_i depends on u_d (odd i)
// or u'_d (even i), and a single source w with an edge to every other
// node. All weights are 1 and the intended cache size is r = 4.
//
// Its role: with an ILP time horizon of T0 steps, the optimal restricted
// schedule contains empty steps, yet allowing d-1 more steps admits a
// strictly cheaper schedule that recomputes a whole chain instead of
// loading a value — empty steps do not certify optimality.
type ZipperGadget struct {
	DAG   *DAG
	D, M  int
	W     int   // the universal source
	U, UP []int // the two recomputable chains
	V     []int // v_0..v_m
}

// NewZipperGadget builds the Lemma 6.1 construction.
func NewZipperGadget(d, m int) *ZipperGadget {
	if d < 2 || m < 1 {
		panic("graph: ZipperGadget requires d >= 2, m >= 1")
	}
	g := New(fmt.Sprintf("zipper_d%d_m%d", d, m))
	z := &ZipperGadget{DAG: g, D: d, M: m}
	z.W = g.AddNodeLabeled("w", 1, 1)
	for i := 1; i <= d; i++ {
		u := g.AddNodeLabeled(fmt.Sprintf("u_%d", i), 1, 1)
		up := g.AddNodeLabeled(fmt.Sprintf("u'_%d", i), 1, 1)
		z.U = append(z.U, u)
		z.UP = append(z.UP, up)
		g.AddEdge(z.W, u)
		g.AddEdge(z.W, up)
		if i > 1 {
			g.AddEdge(z.U[i-2], u)
			g.AddEdge(z.UP[i-2], up)
		}
	}
	for i := 0; i <= m; i++ {
		v := g.AddNodeLabeled(fmt.Sprintf("v_%d", i), 1, 1)
		z.V = append(z.V, v)
		g.AddEdge(z.W, v)
		if i == 0 {
			g.AddEdge(z.U[d-1], v)
			g.AddEdge(z.UP[d-1], v)
		} else {
			g.AddEdge(z.V[i-1], v)
			if i%2 == 1 {
				g.AddEdge(z.U[d-1], v)
			} else {
				g.AddEdge(z.UP[d-1], v)
			}
		}
	}
	return z
}

// SyncGapGadget is the Lemma 5.3 construction: P/2 pairs of processors,
// each pair owning a pair of chains u_{i,1..P'} and v_{i,1..P'} where the
// j-th element has compute weight Z when i == j and 1 otherwise. An
// asynchronous optimum ignores superstep alignment and costs Z + P' − 1,
// while the same schedule evaluated synchronously costs P'·Z; re-aligning
// the heavy nodes into one superstep recovers cost Z + 2P' − 2. The ratio
// approaches P/2 as Z grows.
type SyncGapGadget struct {
	DAG  *DAG
	P    int // number of processors (even)
	Z    float64
	S    int     // artificial source
	U, V [][]int // U[i][j], V[i][j] for pair i, position j (0-based)
}

// NewSyncGapGadget builds the Lemma 5.3 construction for P processors
// (even) and heavy weight Z.
func NewSyncGapGadget(p int, z float64) *SyncGapGadget {
	if p < 2 || p%2 != 0 {
		panic("graph: SyncGapGadget requires even P >= 2")
	}
	g := New(fmt.Sprintf("syncgap_P%d", p))
	gg := &SyncGapGadget{DAG: g, P: p, Z: z}
	gg.S = g.AddNodeLabeled("s", 0, 1)
	pp := p / 2
	for i := 0; i < pp; i++ {
		var us, vs []int
		for j := 0; j < pp; j++ {
			w := 1.0
			if i == j {
				w = z
			}
			u := g.AddNodeLabeled(fmt.Sprintf("u_%d_%d", i, j), w, 1)
			v := g.AddNodeLabeled(fmt.Sprintf("v_%d_%d", i, j), w, 1)
			us = append(us, u)
			vs = append(vs, v)
			if j == 0 {
				g.AddEdge(gg.S, u)
				g.AddEdge(gg.S, v)
			} else {
				g.AddEdge(us[j-1], u)
				g.AddEdge(us[j-1], v)
				g.AddEdge(vs[j-1], u)
				g.AddEdge(vs[j-1], v)
			}
		}
		gg.U = append(gg.U, us)
		gg.V = append(gg.V, vs)
	}
	return gg
}

// AsyncGapGadget is the Lemma 5.4 construction on P=5 processors: nodes
// u1,u2 (ω=Z−1) feeding u3,u4 (ω=2Z); v1 (ω=2Z) feeding v2,v3,v4 (ω=Z−1);
// an isolated node w (ω=Z−1); and an artificial source s feeding
// u1,u2,v1,w. The synchronous optimum places w and v1 in different
// supersteps (cost 4Z−2) but that choice is a 4/3 factor from the
// asynchronous optimum (3Z−1).
type AsyncGapGadget struct {
	DAG            *DAG
	Z              float64
	S              int
	U1, U2, U3, U4 int
	V1, V2, V3, V4 int
	W              int
}

// NewAsyncGapGadget builds the Lemma 5.4 construction with heavy weight Z.
func NewAsyncGapGadget(z float64) *AsyncGapGadget {
	g := New("asyncgap")
	gg := &AsyncGapGadget{DAG: g, Z: z}
	gg.S = g.AddNodeLabeled("s", 0, 1)
	gg.U1 = g.AddNodeLabeled("u1", z-1, 1)
	gg.U2 = g.AddNodeLabeled("u2", z-1, 1)
	gg.U3 = g.AddNodeLabeled("u3", 2*z, 1)
	gg.U4 = g.AddNodeLabeled("u4", 2*z, 1)
	gg.V1 = g.AddNodeLabeled("v1", 2*z, 1)
	gg.V2 = g.AddNodeLabeled("v2", z-1, 1)
	gg.V3 = g.AddNodeLabeled("v3", z-1, 1)
	gg.V4 = g.AddNodeLabeled("v4", z-1, 1)
	gg.W = g.AddNodeLabeled("w", z-1, 1)
	g.AddEdge(gg.S, gg.U1)
	g.AddEdge(gg.S, gg.U2)
	g.AddEdge(gg.S, gg.V1)
	g.AddEdge(gg.S, gg.W)
	g.AddEdge(gg.U1, gg.U3)
	g.AddEdge(gg.U1, gg.U4)
	g.AddEdge(gg.U2, gg.U3)
	g.AddEdge(gg.U2, gg.U4)
	g.AddEdge(gg.V1, gg.V2)
	g.AddEdge(gg.V1, gg.V3)
	g.AddEdge(gg.V1, gg.V4)
	return gg
}

// MemHardGadget is the Lemma 5.1 reduction skeleton: source values
// v_1..v_k with given memory weights plus v' with weight half the total;
// three computation nodes c1 (needs all v_i), c2 (needs v'), c3 (needs
// all v_i again). Used by tests to exercise the weighted eviction problem.
type MemHardGadget struct {
	DAG        *DAG
	Vs         []int
	VPrime     int
	C1, C2, C3 int
}

// NewMemHardGadget builds the Lemma 5.1 reduction for the given item
// weights. The cache bound of interest is the sum of the weights.
func NewMemHardGadget(weights []float64) *MemHardGadget {
	g := New("memhard")
	gg := &MemHardGadget{DAG: g}
	var total float64
	for i, w := range weights {
		gg.Vs = append(gg.Vs, g.AddNodeLabeled(fmt.Sprintf("v_%d", i), 0, w))
		total += w
	}
	gg.VPrime = g.AddNodeLabeled("v'", 0, total/2)
	gg.C1 = g.AddNodeLabeled("c1", 1, 0.001)
	gg.C2 = g.AddNodeLabeled("c2", 1, 0.001)
	gg.C3 = g.AddNodeLabeled("c3", 1, 0.001)
	for _, v := range gg.Vs {
		g.AddEdge(v, gg.C1)
		g.AddEdge(v, gg.C3)
	}
	g.AddEdge(gg.VPrime, gg.C2)
	g.AddEdge(gg.C1, gg.C2)
	g.AddEdge(gg.C2, gg.C3)
	return gg
}
