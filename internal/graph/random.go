package graph

import "math/rand"

// RandomLayered builds a random layered DAG with the given number of
// layers, width per layer, and edge probability between adjacent layers
// (plus a guaranteed parent for every non-source node, so every node is
// reachable from a source). Compute weights are uniform in {1..maxComp}
// and memory weights uniform in {1..maxMem}. The construction is
// deterministic for a fixed seed.
func RandomLayered(name string, layers, width int, p float64, maxComp, maxMem int, seed int64) *DAG {
	rng := rand.New(rand.NewSource(seed))
	g := New(name)
	prev := make([]int, 0, width)
	for l := 0; l < layers; l++ {
		cur := make([]int, 0, width)
		for i := 0; i < width; i++ {
			v := g.AddNode(float64(1+rng.Intn(maxComp)), float64(1+rng.Intn(maxMem)))
			cur = append(cur, v)
			if l > 0 {
				// Guarantee at least one parent.
				g.AddEdge(prev[rng.Intn(len(prev))], v)
				for _, u := range prev {
					if rng.Float64() < p {
						g.AddEdge(u, v)
					}
				}
			}
		}
		prev = cur
	}
	return g
}

// RandomDAG builds a random DAG on n nodes where each pair (i, j) with
// i < j is an edge with probability p, filtered so that in-degrees stay
// at most maxIn. Weights as in RandomLayered.
func RandomDAG(name string, n int, p float64, maxIn, maxComp, maxMem int, seed int64) *DAG {
	rng := rand.New(rand.NewSource(seed))
	g := New(name)
	for i := 0; i < n; i++ {
		g.AddNode(float64(1+rng.Intn(maxComp)), float64(1+rng.Intn(maxMem)))
	}
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if g.InDegree(j) >= maxIn {
				break
			}
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Chain builds a simple chain of n nodes with unit weights — a convenient
// fixture for tests.
func Chain(n int) *DAG {
	g := New("chain")
	prev := -1
	for i := 0; i < n; i++ {
		v := g.AddNode(1, 1)
		if prev >= 0 {
			g.AddEdge(prev, v)
		}
		prev = v
	}
	return g
}

// Diamond builds source -> a,b -> sink with unit weights.
func Diamond() *DAG {
	g := New("diamond")
	s := g.AddNode(1, 1)
	a := g.AddNode(1, 1)
	b := g.AddNode(1, 1)
	t := g.AddNode(1, 1)
	g.AddEdge(s, a)
	g.AddEdge(s, b)
	g.AddEdge(a, t)
	g.AddEdge(b, t)
	return g
}
