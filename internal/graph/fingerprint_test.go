package graph

import (
	"math/rand"
	"testing"
)

// permuted returns a structurally identical copy of g with node ids
// relabeled by perm (new id of old node v is perm[v]) and both node and
// edge insertion orders shuffled by rng.
func permuted(g *DAG, perm []int, rng *rand.Rand) *DAG {
	h := New(g.Name() + "/perm")
	inv := make([]int, g.N()) // inv[new] = old
	for old, nw := range perm {
		inv[nw] = old
	}
	for nw := 0; nw < g.N(); nw++ {
		old := inv[nw]
		h.AddNode(g.Comp(old), g.Mem(old))
	}
	type edge struct{ u, v int }
	var edges []edge
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Children(u) {
			edges = append(edges, edge{perm[u], perm[v]})
		}
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		h.AddEdge(e.u, e.v)
	}
	return h
}

// TestFingerprintRelabelInvariant: the canonical fingerprint must not
// move under node relabeling or edge reordering, while the exact digest
// must move under relabeling but not under edge reordering.
func TestFingerprintRelabelInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for seed := int64(0); seed < 8; seed++ {
		g := RandomLayered("fp", 4, 4, 0.5, 7, 5, seed)
		perm := rng.Perm(g.N())
		h := permuted(g, perm, rng)
		if got, want := h.Fingerprint(), g.Fingerprint(); got != want {
			t.Fatalf("seed %d: relabeled fingerprint %x != %x", seed, got, want)
		}
		// Identity permutation shuffles only edge insertion order: the
		// exact digest must survive that.
		id := make([]int, g.N())
		for i := range id {
			id[i] = i
		}
		same := permuted(g, id, rng)
		if same.ExactDigest() != g.ExactDigest() {
			t.Fatalf("seed %d: exact digest moved under edge reordering", seed)
		}
		if same.Fingerprint() != g.Fingerprint() {
			t.Fatalf("seed %d: fingerprint moved under edge reordering", seed)
		}
	}
}

// TestFingerprintSensitivity: changing a weight, adding an edge, or
// dropping a node must move both hashes; renaming the DAG or relabeling
// a node's text label must move neither.
func TestFingerprintSensitivity(t *testing.T) {
	g := RandomLayered("sens", 3, 4, 0.5, 7, 5, 3)
	fp, ed := g.Fingerprint(), g.ExactDigest()

	c := g.Clone()
	c.SetComp(2, c.Comp(2)+1)
	if c.Fingerprint() == fp || c.ExactDigest() == ed {
		t.Fatal("compute-weight change not reflected")
	}
	c = g.Clone()
	c.SetMem(5, c.Mem(5)+1)
	if c.Fingerprint() == fp || c.ExactDigest() == ed {
		t.Fatal("memory-weight change not reflected")
	}
	c = g.Clone()
	c.AddEdge(0, c.N()-1)
	if c.Fingerprint() == fp || c.ExactDigest() == ed {
		t.Fatal("edge addition not reflected")
	}
	c = g.Clone()
	c.AddNode(1, 1)
	if c.Fingerprint() == fp || c.ExactDigest() == ed {
		t.Fatal("node addition not reflected")
	}
	c = g.Clone()
	c.SetName("renamed")
	c.SetLabel(0, "relabeled")
	if c.Fingerprint() != fp || c.ExactDigest() != ed {
		t.Fatal("name/label must not influence the hashes")
	}
}

// TestFingerprintDeterministic: repeated evaluation on the same DAG is
// stable, and the two hashes agree between a DAG and its deep clone.
func TestFingerprintDeterministic(t *testing.T) {
	g := RandomDAG("det", 30, 0.2, 4, 7, 5, 11)
	if g.Fingerprint() != g.Fingerprint() || g.ExactDigest() != g.ExactDigest() {
		t.Fatal("hashes not stable across calls")
	}
	c := g.Clone()
	if c.Fingerprint() != g.Fingerprint() || c.ExactDigest() != g.ExactDigest() {
		t.Fatal("clone hashes differ")
	}
}

// TestFingerprintZeroWeightNormalization: ±0 weights hash identically.
func TestFingerprintZeroWeightNormalization(t *testing.T) {
	a, b := New("z"), New("z")
	a.AddNode(0, 1)
	b.AddNode(negZero(), 1)
	if a.Fingerprint() != b.Fingerprint() || a.ExactDigest() != b.ExactDigest() {
		t.Fatal("-0 and 0 weights must hash identically")
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}
