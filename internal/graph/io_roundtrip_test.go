package graph_test

// Round-trip property tests for the DAG wire format. The text format is
// now an untrusted network input path (the scheduling server accepts it
// as a request body), so this file pins two properties:
//
//  1. Read(Write(g)) preserves the canonical fingerprint and the exact
//     digest for every registry workload and for random DAGs — the
//     schedule cache keys on those hashes, so a lossy serialization
//     would silently poison it.
//  2. Malformed input is rejected with a typed error (*graph.ParseError,
//     or graph.ErrCyclic for cycles), never a panic.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"mbsp/internal/graph"
	"mbsp/internal/workloads"
)

func roundTrip(t *testing.T, g *graph.DAG) *graph.DAG {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.Write(&buf, g); err != nil {
		t.Fatalf("%s: Write: %v", g.Name(), err)
	}
	h, err := graph.Read(&buf)
	if err != nil {
		t.Fatalf("%s: Read(Write(g)): %v", g.Name(), err)
	}
	return h
}

// TestRoundTripPreservesFingerprintOnRegistry: every workload in every
// bundled dataset survives Write→Read with identical canonical
// fingerprint, exact digest, and size.
func TestRoundTripPreservesFingerprintOnRegistry(t *testing.T) {
	datasets := map[string][]workloads.Instance{
		"tiny":        workloads.Tiny(),
		"small":       workloads.Small(),
		"paper-tiny":  workloads.PaperTiny(),
		"paper-small": workloads.PaperSmall(),
	}
	for ds, insts := range datasets {
		for _, inst := range insts {
			h := roundTrip(t, inst.DAG)
			if h.N() != inst.DAG.N() || h.M() != inst.DAG.M() {
				t.Errorf("%s/%s: size changed: n=%d m=%d -> n=%d m=%d",
					ds, inst.Name, inst.DAG.N(), inst.DAG.M(), h.N(), h.M())
				continue
			}
			if got, want := h.Fingerprint(), inst.DAG.Fingerprint(); got != want {
				t.Errorf("%s/%s: fingerprint %x != %x", ds, inst.Name, got, want)
			}
			if got, want := h.ExactDigest(), inst.DAG.ExactDigest(); got != want {
				t.Errorf("%s/%s: exact digest %x != %x", ds, inst.Name, got, want)
			}
		}
	}
}

// TestRoundTripPreservesFingerprintRandom: the same property over a
// spread of random layered and Erdős–Rényi-style DAGs, including
// labeled nodes and zero weights.
func TestRoundTripPreservesFingerprintRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := graph.RandomLayered("rl", 3+int(seed%4), 2+int(seed%5), 0.4, 9, 5, seed)
		g.SetLabel(0, "in")
		g.SetMem(0, 0)
		h := roundTrip(t, g)
		if h.Fingerprint() != g.Fingerprint() || h.ExactDigest() != g.ExactDigest() {
			t.Fatalf("layered seed %d: round trip changed hashes", seed)
		}
		r := graph.RandomDAG("rd", 10+int(seed)*3, 0.25, 4, 9, 5, seed)
		h = roundTrip(t, r)
		if h.Fingerprint() != r.Fingerprint() || h.ExactDigest() != r.ExactDigest() {
			t.Fatalf("random seed %d: round trip changed hashes", seed)
		}
	}
}

// TestReadMalformedTypedErrors: every malformed-input class returns a
// typed error and never panics.
func TestReadMalformedTypedErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"comment-only", "# nothing here\n"},
		{"node-before-header", "node 0 1 1\n"},
		{"edge-before-header", "edge 0 1\n"},
		{"short-header", "dag\n"},
		{"duplicate-header", "dag a 0 0\ndag b 0 0\n"},
		{"bad-counts", "dag x nope nope\n"},
		{"negative-counts", "dag x -1 0\n"},
		{"short-node", "dag x 1 0\nnode 0 1\n"},
		{"bad-node-id", "dag x 1 0\nnode zero 1 1\n"},
		{"out-of-order-node", "dag x 2 0\nnode 1 1 1\nnode 0 1 1\n"},
		{"bad-comp", "dag x 1 0\nnode 0 one 1\n"},
		{"bad-mem", "dag x 1 0\nnode 0 1 one\n"},
		{"negative-weight", "dag x 1 0\nnode 0 -1 1\n"},
		{"nan-weight", "dag x 1 0\nnode 0 NaN 1\n"},
		{"inf-weight", "dag x 1 0\nnode 0 1 +Inf\n"},
		{"short-edge", "dag x 2 1\nnode 0 1 1\nnode 1 1 1\nedge 0\n"},
		{"bad-edge-ids", "dag x 2 1\nnode 0 1 1\nnode 1 1 1\nedge zero 1\n"},
		{"dangling-edge", "dag x 2 1\nnode 0 1 1\nnode 1 1 1\nedge 0 5\n"},
		{"negative-edge", "dag x 2 1\nnode 0 1 1\nnode 1 1 1\nedge -1 1\n"},
		{"self-loop", "dag x 1 1\nnode 0 1 1\nedge 0 0\n"},
		{"unknown-directive", "dag x 0 0\nfrobnicate\n"},
		{"node-count-mismatch", "dag x 3 0\nnode 0 1 1\n"},
		{"edge-count-mismatch", "dag x 2 0\nnode 0 1 1\nnode 1 1 1\nedge 0 1\n"},
		{"duplicate-edge-collapse", "dag x 2 2\nnode 0 1 1\nnode 1 1 1\nedge 0 1\nedge 0 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Read panicked on %s: %v", tc.name, r)
				}
			}()
			_, err := graph.Read(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("Read accepted malformed input %q", tc.input)
			}
			var pe *graph.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("want *graph.ParseError, got %T: %v", err, err)
			}
		})
	}

	// Cycles are structural, not syntactic: they surface as ErrCyclic.
	cyclic := "dag x 2 2\nnode 0 1 1\nnode 1 1 1\nedge 0 1\nedge 1 0\n"
	if _, err := graph.Read(strings.NewReader(cyclic)); !errors.Is(err, graph.ErrCyclic) {
		t.Fatalf("want ErrCyclic for cyclic input, got %v", err)
	}
}
