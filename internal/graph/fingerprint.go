package graph

import (
	"math"
	"sort"
)

// Canonical DAG fingerprinting for the scheduling service.
//
// Fingerprint hashes the scheduling-relevant content of a DAG — topology
// plus the per-node weights (ω, μ) — into 64 bits, invariant to the order
// in which nodes and edges were inserted: any relabeling of the node ids
// that preserves the structure and weights yields the same value. It is
// the cache key prefix of internal/schedcache and the identity that later
// incremental-rescheduling work keys on. Names and node labels are
// excluded: they never influence a schedule.
//
// The construction is a two-direction Merkle pass. A forward pass over a
// topological order assigns each node a "down" hash from its weights and
// the sorted multiset of its parents' down hashes; a backward pass
// assigns an "up" hash from the weights and the sorted multiset of the
// children's up hashes. A node's combined hash mixes both directions, so
// it encodes the node's full ancestry and posterity, and the fingerprint
// is a hash of the sorted multiset of combined node hashes together with
// n and m. Sorting the multisets at every step is what buys relabeling
// invariance; like any hash, distinct DAGs may collide, so consumers that
// need exactness (the schedule cache) pair it with ExactDigest.
//
// ExactDigest hashes the same content labeling-sensitively: per-node
// weights in id order plus the sorted edge list. It is invariant to edge
// *insertion* order (two clients streaming the same graph with edges in a
// different order agree) but not to node relabeling, which is exactly the
// guard the cache needs before serving a stored schedule whose ops name
// node ids of the original request.

// Fingerprint returns the canonical structural fingerprint of the DAG:
// a 64-bit hash of topology and weights, invariant to node insertion
// order (relabeling) and edge insertion order.
func (g *DAG) Fingerprint() uint64 {
	n := g.N()
	order, err := g.TopoOrder()
	if err != nil {
		// Cyclic graphs never reach the schedulers; hash them by exact
		// content so the value is still deterministic.
		return g.ExactDigest() ^ 0xc96c5795d7870f42
	}
	down := make([]uint64, n)
	up := make([]uint64, n)
	scratch := make([]uint64, 0, 16)
	for _, v := range order {
		scratch = scratch[:0]
		for _, u := range g.in[v] {
			scratch = append(scratch, down[u])
		}
		down[v] = nodeHash(g.comp[v], g.mem[v], scratch)
	}
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		scratch = scratch[:0]
		for _, w := range g.out[v] {
			scratch = append(scratch, up[w])
		}
		up[v] = nodeHash(g.comp[v], g.mem[v], scratch)
	}
	combined := make([]uint64, n)
	for v := 0; v < n; v++ {
		combined[v] = mix64(down[v] ^ rotl(up[v], 23))
	}
	sortU64(combined)
	h := mix64(uint64(n)<<32 ^ uint64(g.edges))
	for _, c := range combined {
		h = mix64(h ^ c)
	}
	return h
}

// ExactDigest returns a labeling-sensitive digest of the DAG content:
// per-node (ω, μ) in id order plus the sorted edge list. Two DAGs with
// equal ExactDigest describe the same graph on the same node ids (up to
// hash collision); names and labels are excluded.
func (g *DAG) ExactDigest() uint64 {
	h := mix64(uint64(g.N())<<32 ^ uint64(g.edges))
	for v := 0; v < g.N(); v++ {
		h = mix64(h ^ floatBits(g.comp[v]))
		h = mix64(h ^ floatBits(g.mem[v]))
	}
	edges := make([]uint64, 0, g.edges)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.out[u] {
			edges = append(edges, uint64(u)<<32|uint64(uint32(v)))
		}
	}
	sortU64(edges)
	for _, e := range edges {
		h = mix64(h ^ e)
	}
	return h
}

// nodeHash combines a node's weights with the sorted multiset of its
// neighbors' hashes. neighbor is clobbered.
func nodeHash(comp, mem float64, neighbor []uint64) uint64 {
	sortU64(neighbor)
	h := mix64(floatBits(comp) ^ rotl(floatBits(mem), 17))
	for _, nh := range neighbor {
		h = mix64(h ^ nh)
	}
	return h
}

// mix64 is the splitmix64 finalizer: a fast bijective mixer with full
// avalanche, the same primitive the fault-injection and perturbation
// seeds use.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// floatBits maps a float64 to hashable bits, collapsing -0 and 0.
func floatBits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	return math.Float64bits(f)
}

func sortU64(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
