package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is line based:
//
//	# comment
//	dag <name> <n> <m>
//	node <id> <comp> <mem> [label]
//	edge <u> <v>
//
// Nodes must be declared before edges that use them, ids must be the dense
// sequence 0..n-1 in order.

// Write serializes the DAG in the text format.
func Write(w io.Writer, g *DAG) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "dag %s %d %d\n", sanitizeName(g.Name()), g.N(), g.M())
	for v := 0; v < g.N(); v++ {
		if g.Label(v) != "" {
			fmt.Fprintf(bw, "node %d %g %g %s\n", v, g.Comp(v), g.Mem(v), sanitizeName(g.Label(v)))
		} else {
			fmt.Fprintf(bw, "node %d %g %g\n", v, g.Comp(v), g.Mem(v))
		}
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Children(u) {
			fmt.Fprintf(bw, "edge %d %d\n", u, v)
		}
	}
	return bw.Flush()
}

func sanitizeName(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.ReplaceAll(s, " ", "_")
}

// Read parses a DAG from the text format.
func Read(r io.Reader) (*DAG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var g *DAG
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "dag":
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: malformed dag header", line)
			}
			g = New(fields[1])
		case "node":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: node before dag header", line)
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("graph: line %d: malformed node line", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node id: %v", line, err)
			}
			comp, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad compute weight: %v", line, err)
			}
			mem, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad memory weight: %v", line, err)
			}
			label := ""
			if len(fields) >= 5 {
				label = fields[4]
			}
			got := g.AddNodeLabeled(label, comp, mem)
			if got != id {
				return nil, fmt.Errorf("graph: line %d: node id %d out of order (expected %d)", line, id, got)
			}
		case "edge":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before dag header", line)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: malformed edge line", line)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge source: %v", line, err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge target: %v", line, err)
			}
			if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
				return nil, fmt.Errorf("graph: line %d: edge (%d,%d) references unknown node", line, u, v)
			}
			g.AddEdge(u, v)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// DOT renders the DAG in Graphviz DOT format, for visual inspection.
func DOT(w io.Writer, g *DAG) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", sanitizeName(g.Name()))
	for v := 0; v < g.N(); v++ {
		label := g.Label(v)
		if label == "" {
			label = strconv.Itoa(v)
		}
		fmt.Fprintf(bw, "  n%d [label=\"%s\\nω=%g μ=%g\"];\n", v, label, g.Comp(v), g.Mem(v))
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Children(u) {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", u, v)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
