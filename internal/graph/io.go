package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParseError is the typed error Read returns for malformed input. The
// text format is an untrusted network input path (the scheduling server
// accepts it as the request body), so every syntactic or structural
// defect surfaces as a *ParseError — never a panic — and callers can
// detect it with errors.As to map it to a 4xx response.
type ParseError struct {
	Line int    // 1-based input line, 0 when the whole input is at fault
	Msg  string // what was wrong
}

func (e *ParseError) Error() string {
	if e.Line == 0 {
		return "graph: " + e.Msg
	}
	return fmt.Sprintf("graph: line %d: %s", e.Line, e.Msg)
}

func parseErrf(line int, format string, args ...interface{}) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// The text format is line based:
//
//	# comment
//	dag <name> <n> <m>
//	node <id> <comp> <mem> [label]
//	edge <u> <v>
//
// Nodes must be declared before edges that use them, ids must be the dense
// sequence 0..n-1 in order.

// Write serializes the DAG in the text format.
func Write(w io.Writer, g *DAG) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "dag %s %d %d\n", sanitizeName(g.Name()), g.N(), g.M())
	for v := 0; v < g.N(); v++ {
		if g.Label(v) != "" {
			fmt.Fprintf(bw, "node %d %g %g %s\n", v, g.Comp(v), g.Mem(v), sanitizeName(g.Label(v)))
		} else {
			fmt.Fprintf(bw, "node %d %g %g\n", v, g.Comp(v), g.Mem(v))
		}
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Children(u) {
			fmt.Fprintf(bw, "edge %d %d\n", u, v)
		}
	}
	return bw.Flush()
}

func sanitizeName(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.ReplaceAll(s, " ", "_")
}

// Read parses a DAG from the text format. Malformed input — syntax
// errors, out-of-order node ids, dangling or self-loop edges, non-finite
// or negative weights, header counts that disagree with the body — is
// rejected with a *ParseError (cycles with ErrCyclic), never a panic.
func Read(r io.Reader) (*DAG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var g *DAG
	wantN, wantM := -1, -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "dag":
			if len(fields) < 2 {
				return nil, parseErrf(line, "malformed dag header")
			}
			if g != nil {
				return nil, parseErrf(line, "duplicate dag header")
			}
			g = New(fields[1])
			if len(fields) >= 4 {
				n, err1 := strconv.Atoi(fields[2])
				m, err2 := strconv.Atoi(fields[3])
				if err1 != nil || err2 != nil || n < 0 || m < 0 {
					return nil, parseErrf(line, "bad node/edge counts %q %q", fields[2], fields[3])
				}
				wantN, wantM = n, m
			}
		case "node":
			if g == nil {
				return nil, parseErrf(line, "node before dag header")
			}
			if len(fields) < 4 {
				return nil, parseErrf(line, "malformed node line")
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, parseErrf(line, "bad node id: %v", err)
			}
			comp, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, parseErrf(line, "bad compute weight: %v", err)
			}
			mem, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, parseErrf(line, "bad memory weight: %v", err)
			}
			if comp < 0 || mem < 0 || !isFinite(comp) || !isFinite(mem) {
				return nil, parseErrf(line, "node %d has unusable weights (ω=%g, μ=%g)", id, comp, mem)
			}
			label := ""
			if len(fields) >= 5 {
				label = fields[4]
			}
			got := g.AddNodeLabeled(label, comp, mem)
			if got != id {
				return nil, parseErrf(line, "node id %d out of order (expected %d)", id, got)
			}
		case "edge":
			if g == nil {
				return nil, parseErrf(line, "edge before dag header")
			}
			if len(fields) < 3 {
				return nil, parseErrf(line, "malformed edge line")
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, parseErrf(line, "bad edge source: %v", err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, parseErrf(line, "bad edge target: %v", err)
			}
			if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
				return nil, parseErrf(line, "edge (%d,%d) references unknown node", u, v)
			}
			if u == v {
				// AddEdge panics on self-loops (a caller bug in library
				// use); on the wire it is just malformed input.
				return nil, parseErrf(line, "self-loop edge on node %d", u)
			}
			g.AddEdge(u, v)
		default:
			return nil, parseErrf(line, "unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, &ParseError{Msg: "empty input"}
	}
	if wantN >= 0 && (g.N() != wantN || g.M() != wantM) {
		return nil, &ParseError{Msg: fmt.Sprintf(
			"header declares n=%d m=%d but body has n=%d m=%d (duplicate edges collapse)",
			wantN, wantM, g.N(), g.M())}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func isFinite(f float64) bool { return !math.IsInf(f, 0) && !math.IsNaN(f) }

// DOT renders the DAG in Graphviz DOT format, for visual inspection.
func DOT(w io.Writer, g *DAG) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", sanitizeName(g.Name()))
	for v := 0; v < g.N(); v++ {
		label := g.Label(v)
		if label == "" {
			label = strconv.Itoa(v)
		}
		fmt.Fprintf(bw, "  n%d [label=\"%s\\nω=%g μ=%g\"];\n", v, label, g.Comp(v), g.Mem(v))
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Children(u) {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", u, v)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
