// Package graph provides the weighted computational DAG underlying MBSP
// scheduling: nodes carry a compute weight ω (time to execute the
// operation) and a memory weight μ (size of the node's output value),
// directed edges are data dependencies.
//
// The package also contains structural utilities (topological orders,
// level structure, quotient graphs, induced subDAGs) and the gadget
// constructions used by the paper's proofs.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// DAG is a directed acyclic graph with per-node compute and memory weights.
// The zero value is an empty DAG ready for use. Nodes are dense integers
// starting at 0, in insertion order.
type DAG struct {
	name   string
	comp   []float64 // ω: compute weight per node
	mem    []float64 // μ: memory weight per node
	out    [][]int   // children per node
	in     [][]int   // parents per node
	labels []string  // optional human-readable node labels
	edges  int
}

// New returns an empty DAG with the given name.
func New(name string) *DAG {
	return &DAG{name: name}
}

// Name returns the DAG's name.
func (g *DAG) Name() string { return g.name }

// SetName sets the DAG's name.
func (g *DAG) SetName(name string) { g.name = name }

// N returns the number of nodes.
func (g *DAG) N() int { return len(g.comp) }

// M returns the number of edges.
func (g *DAG) M() int { return g.edges }

// AddNode adds a node with compute weight comp and memory weight mem and
// returns its id.
func (g *DAG) AddNode(comp, mem float64) int {
	g.comp = append(g.comp, comp)
	g.mem = append(g.mem, mem)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.labels = append(g.labels, "")
	return len(g.comp) - 1
}

// AddNodeLabeled adds a labeled node.
func (g *DAG) AddNodeLabeled(label string, comp, mem float64) int {
	v := g.AddNode(comp, mem)
	g.labels[v] = label
	return v
}

// Label returns the label of node v (may be empty).
func (g *DAG) Label(v int) string { return g.labels[v] }

// SetLabel sets the label of node v.
func (g *DAG) SetLabel(v int, label string) { g.labels[v] = label }

// AddEdge adds the dependency edge u -> v. Duplicate edges are ignored.
// Adding an edge that would create a cycle is not detected here; use
// Validate after construction.
func (g *DAG) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on node %d", u))
	}
	for _, w := range g.out[u] {
		if w == v {
			return
		}
	}
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.edges++
}

// Comp returns the compute weight ω(v).
func (g *DAG) Comp(v int) float64 { return g.comp[v] }

// Mem returns the memory weight μ(v).
func (g *DAG) Mem(v int) float64 { return g.mem[v] }

// SetComp sets ω(v).
func (g *DAG) SetComp(v int, w float64) { g.comp[v] = w }

// SetMem sets μ(v).
func (g *DAG) SetMem(v int, w float64) { g.mem[v] = w }

// Children returns the children of v. The returned slice must not be
// modified.
func (g *DAG) Children(v int) []int { return g.out[v] }

// Parents returns the parents of v. The returned slice must not be
// modified.
func (g *DAG) Parents(v int) []int { return g.in[v] }

// InDegree returns the number of parents of v.
func (g *DAG) InDegree(v int) int { return len(g.in[v]) }

// OutDegree returns the number of children of v.
func (g *DAG) OutDegree(v int) int { return len(g.out[v]) }

// IsSource reports whether v has no parents. Source nodes represent the
// inputs of the computation: they are never computed, only loaded from
// slow memory.
func (g *DAG) IsSource(v int) bool { return len(g.in[v]) == 0 }

// IsSink reports whether v has no children. Sink nodes are the outputs of
// the computation and must reside in slow memory at the end of a schedule.
func (g *DAG) IsSink(v int) bool { return len(g.out[v]) == 0 }

// Sources returns all source nodes in increasing order.
func (g *DAG) Sources() []int {
	var s []int
	for v := 0; v < g.N(); v++ {
		if g.IsSource(v) {
			s = append(s, v)
		}
	}
	return s
}

// Sinks returns all sink nodes in increasing order.
func (g *DAG) Sinks() []int {
	var s []int
	for v := 0; v < g.N(); v++ {
		if g.IsSink(v) {
			s = append(s, v)
		}
	}
	return s
}

// TotalComp returns the total compute weight of all nodes.
func (g *DAG) TotalComp() float64 {
	var t float64
	for _, w := range g.comp {
		t += w
	}
	return t
}

// TotalMem returns the total memory weight of all nodes.
func (g *DAG) TotalMem() float64 {
	var t float64
	for _, w := range g.mem {
		t += w
	}
	return t
}

// ErrCyclic is returned by Validate when the graph contains a cycle.
var ErrCyclic = errors.New("graph: not acyclic")

// Validate checks that the graph is acyclic and that all weights are
// non-negative.
func (g *DAG) Validate() error {
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if g.comp[v] < 0 || g.mem[v] < 0 {
			return fmt.Errorf("graph: node %d has negative weight (ω=%g, μ=%g)", v, g.comp[v], g.mem[v])
		}
	}
	return nil
}

// TopoOrder returns a topological order of the nodes (Kahn's algorithm,
// smallest-id-first for determinism), or ErrCyclic.
func (g *DAG) TopoOrder() ([]int, error) {
	n := g.N()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.in[v])
	}
	// Min-heap behaviour via sorted ready list keeps the order
	// deterministic across runs.
	ready := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, w := range g.out[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCyclic
	}
	return order, nil
}

// Levels returns, for each node, its level: sources are level 0 and
// level(v) = 1 + max level over parents. Returns ErrCyclic if the graph
// is not acyclic.
func (g *DAG) Levels() ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	lvl := make([]int, g.N())
	for _, v := range order {
		l := 0
		for _, u := range g.in[v] {
			if lvl[u]+1 > l {
				l = lvl[u] + 1
			}
		}
		lvl[v] = l
	}
	return lvl, nil
}

// BottomLevels returns for each node the ω-weighted length of the longest
// path from the node to any sink (including the node's own ω). This is the
// classical "bottom level" priority used by list schedulers. Returns
// ErrCyclic if the graph is not acyclic.
func (g *DAG) BottomLevels() ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	bl := make([]float64, g.N())
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		best := 0.0
		for _, w := range g.out[v] {
			if bl[w] > best {
				best = bl[w]
			}
		}
		bl[v] = best + g.comp[v]
	}
	return bl, nil
}

// CriticalPath returns the ω-weighted length of the longest path in the
// DAG. Returns ErrCyclic if the graph is not acyclic.
func (g *DAG) CriticalPath() (float64, error) {
	bls, err := g.BottomLevels()
	if err != nil {
		return 0, err
	}
	best := 0.0
	for _, b := range bls {
		if b > best {
			best = b
		}
	}
	return best, nil
}

// MinCache returns r0, the minimal fast-memory capacity that admits a
// valid MBSP schedule: the maximum, over all non-source nodes v, of
// μ(v) + Σ_{u ∈ parents(v)} μ(u), and over all source nodes of μ(v).
func (g *DAG) MinCache() float64 {
	r0 := 0.0
	for v := 0; v < g.N(); v++ {
		need := g.mem[v]
		for _, u := range g.in[v] {
			need += g.mem[u]
		}
		if need > r0 {
			r0 = need
		}
	}
	return r0
}

// Clone returns a deep copy of the DAG.
func (g *DAG) Clone() *DAG {
	c := &DAG{
		name:   g.name,
		comp:   append([]float64(nil), g.comp...),
		mem:    append([]float64(nil), g.mem...),
		labels: append([]string(nil), g.labels...),
		edges:  g.edges,
	}
	c.out = make([][]int, len(g.out))
	c.in = make([][]int, len(g.in))
	for v := range g.out {
		c.out[v] = append([]int(nil), g.out[v]...)
		c.in[v] = append([]int(nil), g.in[v]...)
	}
	return c
}

// SubDAG returns the DAG induced by the given nodes along with the mapping
// orig[i] = original id of new node i. Edges between selected nodes are
// kept; edges to unselected nodes are dropped.
func (g *DAG) SubDAG(nodes []int) (*DAG, []int) {
	idx := make(map[int]int, len(nodes))
	orig := make([]int, 0, len(nodes))
	sub := New(g.name + "/sub")
	for _, v := range nodes {
		if _, dup := idx[v]; dup {
			continue
		}
		idx[v] = sub.AddNodeLabeled(g.labels[v], g.comp[v], g.mem[v])
		orig = append(orig, v)
	}
	for _, v := range nodes {
		for _, w := range g.out[v] {
			if j, ok := idx[w]; ok {
				sub.AddEdge(idx[v], j)
			}
		}
	}
	return sub, orig
}

// Quotient contracts the DAG according to part (a node→part map with parts
// 0..k-1) and returns the quotient DAG: one node per part with summed ω
// and μ, and an edge i→j whenever some edge of g crosses from part i to
// part j. It also returns the number of crossing edges (counted per
// original edge).
func (g *DAG) Quotient(part []int, k int) (*DAG, int) {
	q := New(g.name + "/quotient")
	for i := 0; i < k; i++ {
		q.AddNode(0, 0)
	}
	for v := 0; v < g.N(); v++ {
		p := part[v]
		q.comp[p] += g.comp[v]
		q.mem[p] += g.mem[v]
	}
	cut := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.out[u] {
			if part[u] != part[v] {
				q.AddEdge(part[u], part[v])
				cut++
			}
		}
	}
	return q, cut
}

// IsAcyclicPartition reports whether contracting by part yields an acyclic
// quotient graph.
func (g *DAG) IsAcyclicPartition(part []int, k int) bool {
	q, _ := g.Quotient(part, k)
	_, err := q.TopoOrder()
	return err == nil
}

// Ancestors returns the set of ancestors of v (excluding v) as a boolean
// slice.
func (g *DAG) Ancestors(v int) []bool {
	seen := make([]bool, g.N())
	stack := append([]int(nil), g.in[v]...)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			continue
		}
		seen[u] = true
		stack = append(stack, g.in[u]...)
	}
	return seen
}

// Descendants returns the set of descendants of v (excluding v) as a
// boolean slice.
func (g *DAG) Descendants(v int) []bool {
	seen := make([]bool, g.N())
	stack := append([]int(nil), g.out[v]...)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			continue
		}
		seen[u] = true
		stack = append(stack, g.out[u]...)
	}
	return seen
}

// String returns a short description of the DAG.
func (g *DAG) String() string {
	return fmt.Sprintf("DAG(%s: n=%d, m=%d)", g.name, g.N(), g.M())
}
