// Crash-only persistence for the schedule cache: journal-on-store,
// snapshot-on-drain, recover-on-boot, over internal/persist's
// checksummed record log. See DESIGN.md ("Crash-only serving").
//
// The soundness argument for serving recovered bytes is two-layered.
// The persist layer guarantees every recovered record is byte-identical
// to one this (or an earlier) server committed, and that the recovered
// set is a prefix of the committed stream. But a record being intact
// does not make it *valid for this server*: the process may have been
// restarted with a different seed or node limit, under which the same
// request must recompute rather than replay. So every recovered entry
// is re-validated against the cache key the *current* configuration
// would assign it — canonical fingerprint × exact digest × (P, r, g, L)
// × cost model × (seed, node limit), rebuilt from the response's own
// fields — plus the full-fidelity requirements (rung "portfolio", no
// degraded candidates, not interrupted) that gate live caching.
// Entries that fail re-validation are dropped and counted, never
// served.
package server

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"mbsp/internal/persist"
	"mbsp/internal/portfolio"
	"mbsp/internal/schedcache"
	"mbsp/internal/wire"
)

// persistedEntry is the journal/snapshot record payload: the cache key
// alongside the unstamped response it maps to.
type persistedEntry struct {
	Key      string         `json:"key"`
	Response *wire.Response `json:"response"`
}

// cachePersister owns the store handle and the persistence counters.
type cachePersister struct {
	mu    sync.Mutex // serializes journal appends and rotation
	store *persist.Store
	logf  func(format string, args ...interface{})

	recovered int64 // entries re-validated and restored at boot
	rejected  int64 // intact records that failed re-validation
	corrupt   int64 // invalid records dropped by the recovery scanner
	appendErr int64 // journal appends that failed (entry not durable)
}

// openPersistence recovers the store at path into the cache and hooks
// journaling into the cache's store path. Corruption on disk degrades
// to counted cold starts; only real I/O errors fail the boot.
func openPersistence(path string, opts persist.Options, cache *schedcache.Cache[*wire.Response],
	validate func(key string, resp *wire.Response) bool,
	logf func(format string, args ...interface{})) (*cachePersister, error) {

	store, rec, err := persist.Open(path, opts)
	if err != nil {
		return nil, fmt.Errorf("server: opening cache store %s: %w", path, err)
	}
	p := &cachePersister{store: store, logf: logf, corrupt: int64(rec.Stats.CorruptRecords)}
	// Snapshot first, then journal: later records win, as they did live.
	for _, payload := range append(rec.Snapshot, rec.Journal...) {
		var e persistedEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			// An intact checksum over bytes that do not decode is a
			// format change, not disk corruption; same degradation.
			p.rejected++
			continue
		}
		if !validate(e.Key, e.Response) {
			p.rejected++
			continue
		}
		cache.Restore(e.Key, e.Response)
		p.recovered++
	}
	if p.recovered+p.rejected > 0 || rec.Stats.CorruptRecords > 0 {
		logf("server: cache recovery from %s: %d restored, %d rejected, %d corrupt (%d bytes truncated)",
			path, p.recovered, p.rejected, rec.Stats.CorruptRecords, rec.Stats.TruncatedBytes)
	}
	cache.OnStore(p.journalStore)
	return p, nil
}

// journalStore appends one stored entry to the journal (the OnStore
// hook). Append failures lose only warm-restart coverage for that
// entry — they are counted and logged, never propagated into the
// request path.
func (p *cachePersister) journalStore(key string, resp *wire.Response) {
	payload, err := json.Marshal(persistedEntry{Key: key, Response: resp})
	if err != nil {
		p.mu.Lock()
		p.appendErr++
		p.mu.Unlock()
		p.logf("server: marshaling cache entry for journal: %v", err)
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.store.Append(payload); err != nil {
		p.appendErr++
		p.logf("server: journaling cache entry: %v", err)
	}
}

// drain rotates the cache contents into a snapshot (compacting the
// journal) and closes the store: the graceful-shutdown path. The
// journal already holds every stored entry, so a failed rotation —
// like no rotation at all on SIGKILL — costs nothing but recovery
// time.
func (p *cachePersister) drain(cache *schedcache.Cache[*wire.Response]) {
	dump := cache.Dump()
	payloads := make([][]byte, 0, len(dump))
	for _, kv := range dump {
		payload, err := json.Marshal(persistedEntry{Key: kv.Key, Response: kv.Val})
		if err != nil {
			p.logf("server: marshaling cache entry for snapshot: %v", err)
			continue
		}
		payloads = append(payloads, payload)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.store.Rotate(payloads); err != nil {
		p.logf("server: snapshot rotation failed (journal still authoritative): %v", err)
	}
	if err := p.store.Close(); err != nil {
		p.logf("server: closing cache store: %v", err)
	}
}

// PersistenceStats is the /v1/stats persistence section. Enabled false
// means no -cache-path was configured and every other field is zero.
type PersistenceStats struct {
	Enabled bool `json:"enabled"`
	// SnapshotAgeSeconds is the age of the on-disk snapshot, -1 when no
	// snapshot has been written yet.
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// JournalRecords/JournalBytes describe the live journal (records
	// appended since boot or the last rotation; bytes include the file
	// header).
	JournalRecords int64 `json:"journal_records"`
	JournalBytes   int64 `json:"journal_bytes"`
	// RecoveredRecords counts boot-time entries re-validated and
	// restored; RejectedRecords intact records that failed
	// re-validation; CorruptRecords invalid records the recovery
	// scanner dropped; JournalErrors failed appends since boot.
	RecoveredRecords int64 `json:"recovered_records"`
	RejectedRecords  int64 `json:"rejected_records"`
	CorruptRecords   int64 `json:"corrupt_records"`
	JournalErrors    int64 `json:"journal_errors"`
}

func (p *cachePersister) stats() PersistenceStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PersistenceStats{
		Enabled:            true,
		SnapshotAgeSeconds: -1,
		JournalRecords:     p.store.JournalRecords(),
		JournalBytes:       p.store.JournalBytes(),
		RecoveredRecords:   p.recovered,
		RejectedRecords:    p.rejected,
		CorruptRecords:     p.corrupt,
		JournalErrors:      p.appendErr,
	}
	if snap := p.store.SnapshotTime(); !snap.IsZero() {
		st.SnapshotAgeSeconds = time.Since(snap).Seconds()
	}
	return st
}

// validateRecovered is the boot-time admission check for recovered
// entries (see the file comment). It is deliberately the dual of
// cacheable() plus the key equation: everything the live store path
// guarantees, recomputed from the untrusted record.
func (s *Server) validateRecovered(key string, resp *wire.Response) bool {
	if resp == nil || resp.Schedule == "" || resp.Cache != nil {
		return false
	}
	cert := resp.Certificate
	if cert == nil || cert.Rung != portfolio.RungPortfolio || cert.Interrupted || len(cert.Degraded) > 0 {
		return false
	}
	expect := keyString(resp.DAG.Fingerprint, resp.DAG.Digest,
		resp.Arch.P, resp.Arch.R, resp.Arch.G, resp.Arch.L,
		resp.Model, s.cfg.Seed, s.cfg.ILPNodeLimit, s.cfg.MaxModelRows)
	return key == expect
}
