package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/portfolio"
	"mbsp/internal/wire"
	"mbsp/internal/workloads"
)

// testConfig is the deterministic fast configuration the suite uses:
// a small node budget keeps cold runs quick while remaining node-limited
// (and therefore cacheable). MaxModelRows pins the dense-era cap: the
// sparse LU core admits the suite's spmv_N6 P=2 model (3215 rows) into
// tree search, which costs ~10s of CPU per cold run — fine for a real
// server, far too slow for a suite full of cold runs.
func testConfig() Config {
	return Config{
		CacheEntries: 64,
		MaxInflight:  2,
		Seed:         1,
		ILPNodeLimit: 200,
		MaxModelRows: 3000,
	}
}

// mustNew constructs a Server, failing the test on the (persistence-
// only) error path.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return srv
}

func dagBody(t *testing.T, name string) *bytes.Buffer {
	t.Helper()
	inst, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graph.Write(&buf, inst.DAG); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// tryPost is the goroutine-safe request helper (no testing.T calls).
func tryPost(ts *httptest.Server, query string, body *bytes.Buffer) (*http.Response, []byte, error) {
	resp, err := ts.Client().Post(ts.URL+"/v1/schedule?"+query, "text/plain", bytes.NewReader(body.Bytes()))
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	return resp, data, nil
}

func post(t *testing.T, ts *httptest.Server, query string, body *bytes.Buffer) (*http.Response, []byte) {
	t.Helper()
	resp, data, err := tryPost(ts, query, body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decode(t *testing.T, data []byte) *wire.Response {
	t.Helper()
	var r wire.Response
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, data)
	}
	return &r
}

// stripCache re-marshals a response without its per-request cache
// stamp, for whole-body byte comparisons.
func stripCache(t *testing.T, data []byte) []byte {
	t.Helper()
	r := decode(t, data)
	r.Cache = nil
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// waitForGoroutines polls until the goroutine count drops back to (near)
// the baseline — the repo's goroutine-accounting pattern.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", n, base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCacheHitByteIdentical: the second identical request is a cache hit
// whose schedule and certificate — in fact the whole body minus the
// provenance stamp — are byte-identical to the cold run, and to a cold
// run on a completely fresh server (the determinism leg of the cache
// contract).
func TestCacheHitByteIdentical(t *testing.T) {
	srv := mustNew(t, testConfig())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const query = "p=2&rfactor=3&g=1&l=10"
	resp1, body1 := post(t, ts, query, dagBody(t, "spmv_N6"))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold run: %d %s", resp1.StatusCode, body1)
	}
	r1 := decode(t, body1)
	if r1.Cache == nil || r1.Cache.Hit || r1.Cache.Provenance != "cold" {
		t.Fatalf("cold run provenance: %+v", r1.Cache)
	}
	if r1.Certificate == nil || r1.Certificate.Rung != "portfolio" {
		t.Fatalf("cold run certificate: %+v", r1.Certificate)
	}
	if r1.Schedule == "" {
		t.Fatal("cold run has no schedule text")
	}

	resp2, body2 := post(t, ts, query, dagBody(t, "spmv_N6"))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second run: %d %s", resp2.StatusCode, body2)
	}
	r2 := decode(t, body2)
	if r2.Cache == nil || !r2.Cache.Hit || r2.Cache.Provenance != "hit" {
		t.Fatalf("second run should be a cache hit: %+v", r2.Cache)
	}
	if r2.Schedule != r1.Schedule {
		t.Fatalf("cache hit schedule differs from cold run:\n%s\nvs\n%s", r2.Schedule, r1.Schedule)
	}
	if !reflect.DeepEqual(r2.Certificate, r1.Certificate) {
		t.Fatalf("cache hit certificate differs:\n%+v\nvs\n%+v", r2.Certificate, r1.Certificate)
	}
	if !bytes.Equal(stripCache(t, body2), stripCache(t, body1)) {
		t.Fatal("cache hit body differs from cold run beyond the provenance stamp")
	}

	// Fresh server, same request: the cold run must reproduce the same
	// bytes, so a hit is indistinguishable from recomputation.
	srv2 := mustNew(t, testConfig())
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp3, body3 := post(t, ts2, query, dagBody(t, "spmv_N6"))
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("fresh server: %d %s", resp3.StatusCode, body3)
	}
	if !bytes.Equal(stripCache(t, body3), stripCache(t, body1)) {
		t.Fatal("fresh deterministic run differs from the cached response")
	}

	st := srv.Stats()
	if st.Cache.Hits < 1 || st.Cache.Misses < 1 || st.Cache.Runs != 1 {
		t.Fatalf("unexpected cache stats %+v", st.Cache)
	}
}

// blockingCompute returns a Compute stub that signals each invocation,
// blocks until released (or ctx expires), then delegates to the real
// anytime portfolio with the server's deterministic options.
func blockingCompute(invocations *atomic.Int32, started chan<- struct{}, release <-chan struct{}) Compute {
	return func(ctx context.Context, g *graph.DAG, arch mbsp.Arch, opts portfolio.Options) (*portfolio.Result, error) {
		invocations.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return portfolio.RunAnytime(ctx, g, arch, opts)
	}
}

// TestSingleFlightCollapsesConcurrentRequests: N concurrent identical
// requests run the portfolio once; every response carries the same
// schedule bytes.
func TestSingleFlightCollapsesConcurrentRequests(t *testing.T) {
	var invocations atomic.Int32
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	cfg := testConfig()
	cfg.Compute = blockingCompute(&invocations, started, release)
	srv := mustNew(t, cfg)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 8
	const query = "p=2&rfactor=3"
	body := dagBody(t, "spmv_N6")
	bodies := make([][]byte, n)
	status := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data, err := tryPost(ts, query, body)
			if err != nil {
				errs[i] = err
				return
			}
			status[i], bodies[i] = resp.StatusCode, data
		}(i)
	}

	<-started // the leader is inside the (stub) portfolio
	// Wait until the other n-1 requests joined the flight, then let the
	// single computation finish.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Cache.Coalesced < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers did not coalesce: %+v", srv.Stats().Cache)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := invocations.Load(); got != 1 {
		t.Fatalf("portfolio ran %d times for %d identical requests", got, n)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	want := stripCache(t, bodies[0])
	for i := 0; i < n; i++ {
		if status[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status[i], bodies[i])
		}
		if !bytes.Equal(stripCache(t, bodies[i]), want) {
			t.Fatalf("request %d got different bytes", i)
		}
		prov := decode(t, bodies[i]).Cache.Provenance
		if prov != "cold" && prov != "coalesced" {
			t.Fatalf("request %d provenance %q", i, prov)
		}
	}
	if st := srv.Stats(); st.Cache.Runs != 1 || st.Cache.Coalesced != n-1 {
		t.Fatalf("unexpected flight stats %+v", st.Cache)
	}
}

// TestAdmissionControlSheds: with the in-flight cap saturated, a request
// for a new key is shed with 429 + Retry-After instead of queueing;
// cache hits keep being served.
func TestAdmissionControlSheds(t *testing.T) {
	var invocations atomic.Int32
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	cfg := testConfig()
	cfg.MaxInflight = 1
	cfg.Compute = blockingCompute(&invocations, started, release)
	srv := mustNew(t, cfg)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Saturate the single slot.
	body := dagBody(t, "spmv_N6")
	firstDone := make(chan []byte, 1)
	firstErr := make(chan error, 1)
	go func() {
		_, data, err := tryPost(ts, "p=2&rfactor=3", body)
		if err != nil {
			firstErr <- err
			return
		}
		firstDone <- data
	}()
	<-started

	// A different key cannot be admitted: 429, Retry-After, shed counter.
	resp, data := post(t, ts, "p=3&rfactor=3", dagBody(t, "spmv_N6"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429 at capacity, got %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if st := srv.Stats(); st.Admission.Shed != 1 || st.Admission.Inflight != 1 {
		t.Fatalf("unexpected admission stats %+v", st.Admission)
	}

	// Release the slot; the saturating request completes and its key now
	// serves from cache even though the cap is 1.
	close(release)
	var first *wire.Response
	select {
	case err := <-firstErr:
		t.Fatalf("saturating request: %v", err)
	case data := <-firstDone:
		first = decode(t, data)
	}
	if first.Cache == nil || first.Cache.Provenance != "cold" {
		t.Fatalf("saturating request: %+v", first.Cache)
	}
	resp2, data2 := post(t, ts, "p=2&rfactor=3", dagBody(t, "spmv_N6"))
	if resp2.StatusCode != http.StatusOK || !decode(t, data2).Cache.Hit {
		t.Fatalf("cache hit after release: %d %s", resp2.StatusCode, data2)
	}
	// The shed key was never cached and can now be admitted.
	resp3, data3 := post(t, ts, "p=3&rfactor=3", dagBody(t, "spmv_N6"))
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("retry after shed: %d %s", resp3.StatusCode, data3)
	}
	if got := invocations.Load(); got != 2 {
		t.Fatalf("want 2 portfolio runs (shed request must not compute), got %d", got)
	}
}

// TestDeadlineDegradesNever500: a per-request deadline that fires before
// the computation finishes yields a 200 anytime response on a degraded
// rung — never a 500 — and the degraded answer is not cached.
func TestDeadlineDegradesNever500(t *testing.T) {
	var invocations atomic.Int32
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	cfg := testConfig()
	cfg.Compute = blockingCompute(&invocations, started, release)
	srv := mustNew(t, cfg)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := post(t, ts, "p=2&rfactor=3&deadline_ms=40", dagBody(t, "spmv_N6"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline must degrade, not fail: %d %s", resp.StatusCode, data)
	}
	r := decode(t, data)
	if r.Cache == nil || r.Cache.Provenance != "deadline-degraded" {
		t.Fatalf("provenance %+v", r.Cache)
	}
	if r.Certificate == nil || r.Certificate.Rung == "portfolio" || !r.Certificate.FallbackUsed {
		t.Fatalf("want a degraded-rung certificate, got %+v", r.Certificate)
	}
	if r.Schedule == "" {
		t.Fatal("degraded response carries no schedule")
	}
	if st := srv.Stats(); st.Requests.Degraded != 1 {
		t.Fatalf("degraded counter: %+v", st.Requests)
	}

	// The degraded answer must not poison the cache; once the background
	// computation finishes, the full-fidelity result is served.
	close(release)
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp2, data2 := post(t, ts, "p=2&rfactor=3", dagBody(t, "spmv_N6"))
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("follow-up: %d %s", resp2.StatusCode, data2)
		}
		r2 := decode(t, data2)
		if r2.Cache.Hit {
			if r2.Certificate.Rung != "portfolio" {
				t.Fatalf("cached rung %q — a degraded result was cached", r2.Certificate.Rung)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background computation never populated the cache")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestBadRequests: malformed DAGs and parameters map to 4xx typed
// responses, never a panic or a 500.
func TestBadRequests(t *testing.T) {
	cfg := testConfig()
	cfg.MaxRequestBytes = 1 << 16
	srv := mustNew(t, cfg)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		query  string
		body   string
		status int
	}{
		{"empty-body", "p=2", "", http.StatusBadRequest},
		{"malformed", "p=2", "dag x 1 0\nnode zero 1 1\n", http.StatusBadRequest},
		{"self-loop", "p=2", "dag x 1 1\nnode 0 1 1\nedge 0 0\n", http.StatusBadRequest},
		{"cyclic", "p=2", "dag x 2 2\nnode 0 1 1\nnode 1 1 1\nedge 0 1\nedge 1 0\n", http.StatusBadRequest},
		{"bad-p", "p=zero", "dag x 1 0\nnode 0 1 1\n", http.StatusBadRequest},
		{"zero-p", "p=0", "dag x 1 0\nnode 0 1 1\n", http.StatusBadRequest},
		{"bad-model", "p=2&model=psync", "dag x 1 0\nnode 0 1 1\n", http.StatusBadRequest},
		{"bad-deadline", "p=2&deadline_ms=-5", "dag x 1 0\nnode 0 1 1\n", http.StatusBadRequest},
		{"oversized", "p=2", "# " + strings.Repeat("x", 1<<17) + "\n", http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := bytes.NewBufferString(tc.body)
			resp, data := post(t, ts, tc.query, buf)
			if resp.StatusCode != tc.status {
				t.Fatalf("want %d, got %d: %s", tc.status, resp.StatusCode, data)
			}
			var e map[string]string
			if err := json.Unmarshal(data, &e); err != nil || e["error"] == "" {
				t.Fatalf("error payload not JSON: %s", data)
			}
		})
	}

	// An instance that admits no valid schedule at all (cache smaller
	// than a value) is a 422, not a 500.
	resp, data := post(t, ts, "p=2&r=0.5", dagBody(t, "spmv_N6"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unschedulable instance: want 422, got %d: %s", resp.StatusCode, data)
	}
}

// TestHealthAndStats: the liveness and stats endpoints respond, and the
// stats shape includes the counter groups the smoke script greps for.
func TestHealthAndStats(t *testing.T) {
	srv := mustNew(t, testConfig())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %v %v", err, resp)
	}
	var st StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	resp.Body.Close()
	if st.Admission.MaxInflight != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestNoGoroutineLeaksAcrossShutdown: a full lifecycle — requests
// served, a computation still in flight — then shutdown: Close cancels
// the background run, and no goroutine outlives the server.
func TestNoGoroutineLeaksAcrossShutdown(t *testing.T) {
	base := runtime.NumGoroutine()

	var invocations atomic.Int32
	started := make(chan struct{}, 1)
	release := make(chan struct{}) // never closed: only ctx cancellation frees the stub
	cfg := testConfig()
	cfg.Compute = blockingCompute(&invocations, started, release)
	srv := mustNew(t, cfg)
	ts := httptest.NewServer(srv.Handler())

	// One request that completes via its deadline while its computation
	// stays in flight.
	resp, data := post(t, ts, "p=2&rfactor=3&deadline_ms=30", dagBody(t, "spmv_N6"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request: %d %s", resp.StatusCode, data)
	}
	<-started
	if st := srv.Stats(); st.Admission.Inflight != 1 {
		t.Fatalf("expected one in-flight computation, got %+v", st.Admission)
	}

	// Drain handlers, then cancel and join the background computation.
	ts.Close()
	srv.Close()
	if st := srv.Stats(); st.Admission.Inflight != 0 {
		t.Fatalf("in-flight computation survived Close: %+v", st.Admission)
	}
	waitForGoroutines(t, base)
}

// TestDifferentKeysDifferentEntries: the cache key separates
// architectures, models and DAG content — no false sharing.
func TestDifferentKeysDifferentEntries(t *testing.T) {
	srv := mustNew(t, testConfig())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := []string{
		"p=2&rfactor=3",
		"p=3&rfactor=3",
		"p=2&rfactor=3&model=async",
		"p=2&rfactor=3&g=2",
	}
	for _, q := range queries {
		resp, data := post(t, ts, q, dagBody(t, "spmv_N6"))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", q, resp.StatusCode, data)
		}
		if decode(t, data).Cache.Hit {
			t.Fatalf("%s: spurious cache hit across keys", q)
		}
	}
	// A different DAG with the same parameters is its own entry.
	resp, data := post(t, ts, "p=2&rfactor=3", dagBody(t, "spmv_N7"))
	if resp.StatusCode != http.StatusOK || decode(t, data).Cache.Hit {
		t.Fatalf("different DAG hit the cache: %d %s", resp.StatusCode, data)
	}
	if st := srv.Stats(); st.Cache.Runs != int64(len(queries)+1) {
		t.Fatalf("want %d distinct computations, got %+v", len(queries)+1, st.Cache)
	}
}
