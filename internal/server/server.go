// Package server implements the persistent scheduling service: an
// HTTP/JSON surface over the anytime scheduler portfolio with a
// fingerprint-keyed schedule cache, single-flight request coalescing,
// and admission control.
//
// Endpoints:
//
//	POST /v1/schedule   body: DAG in the graph.Write text format;
//	                    query: p, r | rfactor, g, l, model, deadline_ms
//	GET  /v1/stats      cache / admission / request counters as JSON
//	GET  /healthz       liveness
//
// A request is resolved in this order: cache hit (microseconds, no
// compute), joining an identical in-flight computation (single-flight),
// or a fresh portfolio run admitted against the in-flight cap. When the
// cap is reached the request is shed with 429 + Retry-After instead of
// queueing unboundedly. A per-request deadline maps onto the portfolio's
// anytime contract: if it fires before the (shared) computation
// finishes, the request degrades to the synchronous two-stage fallback
// ladder and returns a valid schedule with a degraded-rung certificate —
// never a 500 — while the computation keeps running to populate the
// cache.
//
// The server always runs the portfolio in its deterministic
// configuration (fixed seed, node-limited search, sealed incumbent, no
// per-candidate wall clocks), and only full-fidelity results — rung
// "portfolio", no degraded candidates, not interrupted — are cached, so
// a cache hit is byte-identical to a fresh run with the same options;
// see DESIGN.md ("Scheduling as a service").
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mbsp/internal/faultinject"
	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/mip"
	"mbsp/internal/persist"
	"mbsp/internal/portfolio"
	"mbsp/internal/schedcache"
	"mbsp/internal/wire"
)

// Compute runs the scheduling portfolio for one admitted request. It is
// a Config hook so tests can substitute slow or failing computations.
type Compute func(ctx context.Context, g *graph.DAG, arch mbsp.Arch, opts portfolio.Options) (*portfolio.Result, error)

// Config configures a Server.
type Config struct {
	// CacheEntries bounds the schedule cache (0: schedcache default;
	// negative: disable caching, keep single-flight).
	CacheEntries int
	// CachePath, when set, makes the schedule cache durable: every
	// stored entry is journaled to this directory (fsync-on-append), a
	// graceful drain rotates the contents into a snapshot, and boot
	// recovers whatever a crash or kill left behind — re-validated
	// against the current configuration before being served. Empty
	// keeps the cache memory-only.
	CachePath string
	// PersistInject threads the deterministic filesystem fault modes
	// (torn/short/flip) into the persistence writers: chaos harnesses
	// and tests. nil injects nothing.
	PersistInject *faultinject.Injector
	// MaxInflight bounds concurrently admitted portfolio runs; excess
	// cold requests are shed with 429. 0 selects GOMAXPROCS.
	MaxInflight int
	// ComputeTimeout is the server-side budget for one admitted
	// portfolio run (independent of any per-request deadline, so a
	// short-deadline request cannot starve the cache of the full-fidelity
	// result its computation was already paying for). Default 60s.
	ComputeTimeout time.Duration
	// MaxRequestBytes caps the request body. Default 8 MiB.
	MaxRequestBytes int64
	// MaxDeadline caps the per-request deadline_ms parameter. Default
	// ComputeTimeout.
	MaxDeadline time.Duration

	// Seed, ILPNodeLimit, MaxModelRows, MIPWorkers and Workers pin the
	// deterministic portfolio configuration; Seed, ILPNodeLimit and
	// MaxModelRows are part of the cache key (worker counts never change
	// results). Seed defaults to 1; ILPNodeLimit to DefaultNodeLimit (it
	// must be > 0 — wall-clock-budgeted searches are not cacheable);
	// MaxModelRows to mip.DefaultMaxModelRows. Since the sparse LU core
	// the default admits holistic models of thousands of rows, whose
	// tree searches take seconds of CPU per cold request — set
	// MaxModelRows lower (the dense-era 3000 is a good latency-bound
	// choice) when cold-request latency matters more than schedule
	// quality on mid-size DAGs; oversized models fall back to the
	// warm-start + local-search path as before.
	Seed         int64
	ILPNodeLimit int
	MaxModelRows int
	MIPWorkers   int
	Workers      int

	// Compute overrides the portfolio runner (tests). Default
	// portfolio.RunAnytime.
	Compute Compute
	// Logf receives progress and error messages. Default: discard.
	Logf func(format string, args ...interface{})
}

// DefaultNodeLimit is the branch-and-bound node budget used when
// Config.ILPNodeLimit is 0: deep enough to close the registry-scale
// instances, small enough to bound a cold request's latency.
const DefaultNodeLimit = 20000

func (c Config) withDefaults() Config {
	if c.MaxInflight == 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if c.MaxInflight < 1 {
		c.MaxInflight = 1
	}
	if c.ComputeTimeout <= 0 {
		c.ComputeTimeout = 60 * time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = c.ComputeTimeout
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ILPNodeLimit <= 0 {
		c.ILPNodeLimit = DefaultNodeLimit
	}
	if c.MaxModelRows <= 0 {
		c.MaxModelRows = mip.DefaultMaxModelRows
	}
	if c.Compute == nil {
		c.Compute = portfolio.RunAnytime
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// Server is the scheduling service. Create with New, expose via
// Handler, stop with Close (after http.Server.Shutdown has drained the
// handlers).
type Server struct {
	cfg     Config
	cache   *schedcache.Cache[*wire.Response]
	persist *cachePersister // nil when CachePath is empty

	admit chan struct{} // admission semaphore, cap MaxInflight

	baseCtx  context.Context // cancels in-flight computes on Close
	stop     context.CancelFunc
	computes sync.WaitGroup // outstanding background computations

	start time.Time

	requests  atomic.Int64 // POST /v1/schedule requests accepted for processing
	shed      atomic.Int64 // requests rejected with 429
	degraded  atomic.Int64 // responses served via the deadline fallback
	errored   atomic.Int64 // 4xx/5xx responses other than 429
	inflight  atomic.Int64 // currently admitted portfolio runs
	completed atomic.Int64 // 200 responses

	// coldEWMA holds the float64 bits of an exponentially-weighted
	// moving average of recent cold-run durations (seconds); 0 means no
	// sample yet. It feeds the Retry-After header on 429s.
	coldEWMA atomic.Uint64
}

// New returns a Server ready to serve. The only error source is the
// durable-cache store (Config.CachePath): opening or recovering it can
// fail on real I/O errors. On-disk corruption is not an error — it
// degrades to a counted cold start.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		cache:   schedcache.New[*wire.Response](schedcache.Config{Entries: cfg.CacheEntries}),
		admit:   make(chan struct{}, cfg.MaxInflight),
		baseCtx: ctx,
		stop:    stop,
		start:   time.Now(),
	}
	if cfg.CachePath != "" {
		p, err := openPersistence(cfg.CachePath, persist.Options{Inject: cfg.PersistInject},
			s.cache, s.validateRecovered, cfg.Logf)
		if err != nil {
			stop()
			return nil, err
		}
		s.persist = p
	}
	return s, nil
}

// Close cancels and waits for any background computations, then drains
// the durable cache (snapshot rotation + store close) if one is
// configured. Call it after http.Server.Shutdown has drained the
// handlers; Close does not drain them itself.
func (s *Server) Close() {
	s.stop()
	s.computes.Wait()
	if s.persist != nil {
		s.persist.drain(s.cache)
	}
}

// Handler returns the HTTP handler for all endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return mux
}

// errOverloaded marks a flight that was never admitted: every request
// sharing it is shed with 429.
var errOverloaded = errors.New("server: at in-flight capacity")

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	if status != http.StatusTooManyRequests {
		s.errored.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// request is one parsed scheduling request.
type request struct {
	g        *graph.DAG
	arch     mbsp.Arch
	model    mbsp.CostModel
	deadline time.Duration
	key      string
}

// parseRequest reads the DAG body and the architecture query parameters.
func (s *Server) parseRequest(r *http.Request) (*request, error) {
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxRequestBytes)
	g, err := graph.Read(body)
	if err != nil {
		var pe *graph.ParseError
		switch {
		case errors.As(err, &pe), errors.Is(err, graph.ErrCyclic):
			return nil, &httpError{http.StatusBadRequest, "bad DAG: " + err.Error()}
		default:
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				return nil, &httpError{http.StatusRequestEntityTooLarge,
					fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxRequestBytes)}
			}
			return nil, &httpError{http.StatusBadRequest, "reading DAG: " + err.Error()}
		}
	}
	q := r.URL.Query()
	num := func(name string, def float64) (float64, error) {
		v := q.Get(name)
		if v == "" {
			return def, nil
		}
		var f float64
		if _, err := fmt.Sscanf(v, "%g", &f); err != nil {
			return 0, &httpError{http.StatusBadRequest, fmt.Sprintf("bad %s=%q", name, v)}
		}
		return f, nil
	}
	p, err := num("p", 4)
	if err != nil {
		return nil, err
	}
	gcost, err := num("g", 1)
	if err != nil {
		return nil, err
	}
	lcost, err := num("l", 10)
	if err != nil {
		return nil, err
	}
	rfac, err := num("rfactor", 3)
	if err != nil {
		return nil, err
	}
	rabs, err := num("r", 0)
	if err != nil {
		return nil, err
	}
	rv := rfac * g.MinCache()
	if rabs > 0 {
		rv = rabs
	}
	arch := mbsp.Arch{P: int(p), R: rv, G: gcost, L: lcost}
	if err := arch.Validate(); err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	model := mbsp.Sync
	switch q.Get("model") {
	case "", "sync":
	case "async":
		model = mbsp.Async
	default:
		return nil, &httpError{http.StatusBadRequest, fmt.Sprintf("bad model=%q (sync|async)", q.Get("model"))}
	}
	var deadline time.Duration
	if v := q.Get("deadline_ms"); v != "" {
		ms, err := num("deadline_ms", 0)
		if err != nil || ms < 0 {
			return nil, &httpError{http.StatusBadRequest, fmt.Sprintf("bad deadline_ms=%q", v)}
		}
		deadline = time.Duration(ms * float64(time.Millisecond))
		if deadline > s.cfg.MaxDeadline {
			deadline = s.cfg.MaxDeadline
		}
	}
	req := &request{g: g, arch: arch, model: model, deadline: deadline}
	req.key = s.cacheKey(req)
	return req, nil
}

// cacheKey is the canonical identity of a request: DAG fingerprint and
// exact digest, architecture, cost model, and the salient deterministic
// portfolio options. The per-request deadline is deliberately absent —
// it changes how long a requester waits, never the full-fidelity result.
func (s *Server) cacheKey(req *request) string {
	return keyString(
		fmt.Sprintf("%016x", req.g.Fingerprint()), fmt.Sprintf("%016x", req.g.ExactDigest()),
		req.arch.P, req.arch.R, req.arch.G, req.arch.L,
		wire.ModelName(req.model), s.cfg.Seed, s.cfg.ILPNodeLimit, s.cfg.MaxModelRows)
}

// keyString is the single definition of the cache-key equation, shared
// by the live request path (cacheKey) and boot-time re-validation of
// recovered entries (validateRecovered) so the two cannot drift apart.
// MaxModelRows is part of the key: it decides whether a mid-size model
// gets tree search or the fallback path, so servers with different caps
// must not share entries.
func keyString(fingerprint, digest string, p int, r, g, l float64, model string, seed int64, nodeLimit, maxRows int) string {
	return fmt.Sprintf("%s/%s/p%d,r%g,g%g,L%g/%s/seed%d,nodes%d,rows%d",
		fingerprint, digest, p, r, g, l, model, seed, nodeLimit, maxRows)
}

// portfolioOptions is the deterministic configuration every computation
// runs under (see the package comment for why wall clocks are disabled).
func (s *Server) portfolioOptions(model mbsp.CostModel) portfolio.Options {
	return portfolio.Options{
		Model:            model,
		Workers:          s.cfg.Workers,
		MIPWorkers:       s.cfg.MIPWorkers,
		Seed:             s.cfg.Seed,
		ILPNodeLimit:     s.cfg.ILPNodeLimit,
		MaxModelRows:     s.cfg.MaxModelRows,
		SchedulerTimeout: -1, // the compute context is the only wall clock
		ILPTimeLimit:     s.cfg.ComputeTimeout,
		Logf:             s.cfg.Logf,
	}
}

// cacheable reports whether a computed result is a full-fidelity
// deterministic answer: produced by the portfolio itself, with no
// candidate cut mid-search and no interruption. Anything else is
// timing-dependent and must not be served to future requests.
func cacheable(res *portfolio.Result) bool {
	cert := res.Certificate
	return cert != nil && cert.Rung == portfolio.RungPortfolio &&
		!cert.Interrupted && len(cert.Degraded) == 0
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	req, err := s.parseRequest(r)
	if err != nil {
		var he *httpError
		if errors.As(err, &he) {
			s.writeError(w, he.status, "%s", he.msg)
		} else {
			s.writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	s.requests.Add(1)

	// Fast path: a cached full-fidelity response, served before any
	// admission or deadline machinery so hits stay microseconds even
	// under overload.
	if resp, ok := s.cache.Get(req.key); ok {
		s.respond(w, started, resp, req.key, "hit", true)
		return
	}

	// Request context: caller disconnect plus the optional deadline.
	rctx := r.Context()
	if req.deadline > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(rctx, req.deadline)
		defer cancel()
	}

	flight, leader := s.cache.Flight(req.key)
	provenance := "coalesced"
	if leader {
		provenance = "cold"
		select {
		case s.admit <- struct{}{}:
			s.startCompute(req, flight)
		default:
			// At capacity: shed this flight. Followers waiting on it are
			// shed too — they would otherwise queue unboundedly behind a
			// computation that is not running.
			s.cache.Finish(req.key, flight, nil, errOverloaded)
		}
	}

	select {
	case <-flight.Done():
		resp, ferr := flight.Result()
		switch {
		case ferr == nil:
			s.respond(w, started, resp, req.key, provenance, false)
		case errors.Is(ferr, errOverloaded):
			s.shed.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
			s.writeError(w, http.StatusTooManyRequests, "%v", ferr)
		default:
			// The portfolio returns an error only when the instance
			// admits no valid schedule at all: a client problem.
			s.writeError(w, http.StatusUnprocessableEntity, "scheduling failed: %v", ferr)
		}
	case <-rctx.Done():
		// The per-request deadline (or a client disconnect) fired before
		// the shared computation finished. Anytime contract: degrade to
		// the synchronous fallback ladder — the expired context makes
		// RunAnytime skip the race and walk the deterministic two-stage
		// rungs directly — while the flight keeps computing for the
		// cache.
		s.respondDegraded(w, started, req, rctx)
	}
}

// startCompute runs the portfolio for req in the background under the
// server's compute budget, finishing the flight (and populating the
// cache) when done. It owns releasing the admission slot.
func (s *Server) startCompute(req *request, flight *schedcache.Flight[*wire.Response]) {
	s.computes.Add(1)
	s.inflight.Add(1)
	go func() {
		defer s.computes.Done()
		defer s.inflight.Add(-1)
		defer func() { <-s.admit }()
		ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.ComputeTimeout)
		defer cancel()
		computeStart := time.Now()
		res, err := s.cfg.Compute(ctx, req.g, req.arch, s.portfolioOptions(req.model))
		s.observeCold(time.Since(computeStart))
		if err != nil {
			s.cfg.Logf("server: compute %s failed: %v", req.key, err)
			s.cache.Finish(req.key, flight, nil, err)
			return
		}
		resp, werr := wire.FromResult(req.g, req.arch, req.model, res)
		if werr != nil {
			s.cache.Finish(req.key, flight, nil, werr)
			return
		}
		if !cacheable(res) {
			// Serve the anytime result to the requests waiting on this
			// flight, but keep it out of the cache: it is not the
			// deterministic full-fidelity answer.
			s.cfg.Logf("server: %s computed non-cacheable (rung=%s)", req.key, rungOf(res))
			s.cache.FinishNoStore(req.key, flight, resp, nil)
			return
		}
		s.cache.Finish(req.key, flight, resp, nil)
	}()
}

// observeCold folds one cold-run duration into the EWMA behind the
// Retry-After header. 0.8/0.2 blending: a few recent runs dominate, so
// the hint tracks the current workload mix rather than boot-time
// history. Lock-free CAS loop; a lost race just drops one sample.
func (s *Server) observeCold(d time.Duration) {
	secs := d.Seconds()
	for {
		old := s.coldEWMA.Load()
		next := secs
		if old != 0 {
			next = 0.8*math.Float64frombits(old) + 0.2*secs
		}
		if s.coldEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfterSecs derives the Retry-After hint for a shed request from
// the cold-run EWMA, rounded up and clamped to [1, 30] seconds: long
// enough that a retry has a chance of finding a free slot, short enough
// that clients do not park for minutes because one huge instance
// happened by. No samples yet (cold boot straight into overload) falls
// back to 1s, the old hard-coded hint.
func (s *Server) retryAfterSecs() int {
	bits := s.coldEWMA.Load()
	if bits == 0 {
		return 1
	}
	secs := int(math.Ceil(math.Float64frombits(bits)))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

func rungOf(res *portfolio.Result) string {
	if res.Certificate != nil {
		return res.Certificate.Rung
	}
	return "?"
}

// respondDegraded serves the anytime fallback for a request whose
// deadline fired mid-computation. The fallback ladder is synchronous,
// deterministic and cheap (two greedy passes), so even a deadline of a
// millisecond yields a valid certified schedule.
func (s *Server) respondDegraded(w http.ResponseWriter, started time.Time, req *request, rctx context.Context) {
	res, err := portfolio.RunAnytime(rctx, req.g, req.arch, s.portfolioOptions(req.model))
	if err != nil {
		// Only reachable when the instance admits no valid schedule.
		s.writeError(w, http.StatusUnprocessableEntity, "scheduling failed: %v", err)
		return
	}
	resp, werr := wire.FromResult(req.g, req.arch, req.model, res)
	if werr != nil {
		s.writeError(w, http.StatusInternalServerError, "%v", werr)
		return
	}
	s.degraded.Add(1)
	s.respond(w, started, resp, req.key, "deadline-degraded", false)
}

// respond writes a 200 response, stamping per-request cache provenance
// and the elapsed-time header (kept out of the body so cached bodies
// are byte-identical).
func (s *Server) respond(w http.ResponseWriter, started time.Time, resp *wire.Response, key, provenance string, hit bool) {
	stamped := *resp
	stamped.Cache = &wire.CacheInfo{Hit: hit, Provenance: provenance, Key: key}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Mbsp-Elapsed-Ms", fmt.Sprintf("%.3f", float64(time.Since(started))/float64(time.Millisecond)))
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&stamped); err != nil {
		s.cfg.Logf("server: writing response: %v", err)
		return
	}
	s.completed.Add(1)
}

// StatsSnapshot is the GET /v1/stats payload.
type StatsSnapshot struct {
	Cache     schedcache.Stats `json:"cache"`
	Admission struct {
		MaxInflight int   `json:"max_inflight"`
		Inflight    int64 `json:"inflight"`
		Shed        int64 `json:"shed"`
		// RetryAfterSeconds is the hint the next shed request would
		// receive (EWMA of recent cold-run durations, clamped [1,30]).
		RetryAfterSeconds int `json:"retry_after_seconds"`
	} `json:"admission"`
	Persistence PersistenceStats `json:"persistence"`
	Requests struct {
		Accepted  int64 `json:"accepted"`
		Completed int64 `json:"completed"`
		Degraded  int64 `json:"degraded"`
		Errored   int64 `json:"errored"`
	} `json:"requests"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Stats returns a point-in-time snapshot of the server counters.
func (s *Server) Stats() StatsSnapshot {
	var st StatsSnapshot
	st.Cache = s.cache.Stats()
	st.Admission.MaxInflight = s.cfg.MaxInflight
	st.Admission.Inflight = s.inflight.Load()
	st.Admission.Shed = s.shed.Load()
	st.Admission.RetryAfterSeconds = s.retryAfterSecs()
	if s.persist != nil {
		st.Persistence = s.persist.stats()
	}
	st.Requests.Accepted = s.requests.Load()
	st.Requests.Completed = s.completed.Load()
	st.Requests.Degraded = s.degraded.Load()
	st.Requests.Errored = s.errored.Load()
	st.UptimeSeconds = time.Since(s.start).Seconds()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}
