package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mbsp/internal/faultinject"
)

// persistConfig is testConfig plus a durable cache rooted at dir.
func persistConfig(dir string) Config {
	cfg := testConfig()
	cfg.CachePath = dir
	return cfg
}

// copyDir copies every regular file in src into a fresh temp dir: the
// crash-consistent disk image of a store whose owner is still running
// (journal appends are fsynced, so what copyDir sees is exactly what a
// kill -9 at this instant would leave behind).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestWarmRestartByteIdentical: graceful-shutdown lifecycle. A server
// populates its durable cache, drains (snapshot rotation), and a fresh
// server on the same directory serves the request as a warm hit whose
// body is byte-identical to the original cold run.
func TestWarmRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	const query = "p=2&rfactor=3&g=1&l=10"

	srv1 := mustNew(t, persistConfig(dir))
	ts1 := httptest.NewServer(srv1.Handler())
	resp1, body1 := post(t, ts1, query, dagBody(t, "spmv_N6"))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold run: %d %s", resp1.StatusCode, body1)
	}
	if st := srv1.Stats().Persistence; !st.Enabled || st.JournalRecords != 1 {
		t.Fatalf("after one store: %+v", st)
	}
	ts1.Close()
	srv1.Close() // snapshot rotation + store close

	srv2 := mustNew(t, persistConfig(dir))
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if st := srv2.Stats().Persistence; st.RecoveredRecords != 1 || st.RejectedRecords != 0 ||
		st.CorruptRecords != 0 || st.SnapshotAgeSeconds < 0 {
		t.Fatalf("recovery stats after graceful restart: %+v", st)
	}
	resp2, body2 := post(t, ts2, query, dagBody(t, "spmv_N6"))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm run: %d %s", resp2.StatusCode, body2)
	}
	r2 := decode(t, body2)
	if r2.Cache == nil || !r2.Cache.Hit {
		t.Fatalf("restarted server missed a recovered entry: %+v", r2.Cache)
	}
	if !bytes.Equal(stripCache(t, body2), stripCache(t, body1)) {
		t.Fatal("warm-restart hit differs from the original cold run")
	}
}

// TestCrashRestartByteIdentical is the Go-level kill -9 test. Server A
// is never shut down: its cache directory is copied while it is live —
// journal appends are fsynced before the cold response is written, so
// the copy is exactly the image a kill -9 after the response would
// leave (no snapshot, journal only). Server B boots on the copy and
// must serve the warm byte-identical hit.
func TestCrashRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	const query = "p=2&rfactor=3&g=1&l=10"

	srvA := mustNew(t, persistConfig(dir))
	tsA := httptest.NewServer(srvA.Handler())
	respA, bodyA := post(t, tsA, query, dagBody(t, "spmv_N6"))
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("cold run: %d %s", respA.StatusCode, bodyA)
	}

	crashImage := copyDir(t, dir) // "kill -9": no drain, no snapshot
	tsA.Close()
	// srvA is deliberately never Close()d beyond the compute join below;
	// its store is abandoned like a dead process's.
	defer srvA.Close()

	srvB := mustNew(t, persistConfig(crashImage))
	defer srvB.Close()
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	st := srvB.Stats().Persistence
	if st.RecoveredRecords != 1 || st.SnapshotAgeSeconds != -1 {
		t.Fatalf("crash recovery stats (want 1 journal-only record): %+v", st)
	}
	respB, bodyB := post(t, tsB, query, dagBody(t, "spmv_N6"))
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("post-crash run: %d %s", respB.StatusCode, bodyB)
	}
	rB := decode(t, bodyB)
	if rB.Cache == nil || !rB.Cache.Hit {
		t.Fatalf("post-crash server missed the journaled entry: %+v", rB.Cache)
	}
	if !bytes.Equal(stripCache(t, bodyB), stripCache(t, bodyA)) {
		t.Fatal("post-crash warm hit differs from the pre-crash cold run")
	}
}

// TestTornJournalTailRecovers: a crash image whose journal lost its
// tail mid-record (what a kill -9 mid-append leaves). The first entry
// survives byte-identical; the torn one degrades to a counted cold
// recompute that — determinism — reproduces the original bytes.
func TestTornJournalTailRecovers(t *testing.T) {
	dir := t.TempDir()
	const q1 = "p=2&rfactor=3&g=1&l=10"
	const q2 = "p=3&rfactor=3&g=1&l=10"

	srvA := mustNew(t, persistConfig(dir))
	defer srvA.Close()
	tsA := httptest.NewServer(srvA.Handler())
	_, bodyA1 := post(t, tsA, q1, dagBody(t, "spmv_N6"))
	respA2, bodyA2 := post(t, tsA, q2, dagBody(t, "spmv_N6"))
	if respA2.StatusCode != http.StatusOK {
		t.Fatalf("second cold run: %d %s", respA2.StatusCode, bodyA2)
	}
	crashImage := copyDir(t, dir)
	tsA.Close()

	// Tear the journal mid-record: drop the last 7 bytes of the second
	// append, as a crash between write and completion would.
	jPath := filepath.Join(crashImage, "journal")
	info, err := os.Stat(jPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jPath, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	srvB := mustNew(t, persistConfig(crashImage))
	defer srvB.Close()
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	st := srvB.Stats().Persistence
	if st.RecoveredRecords != 1 || st.CorruptRecords != 1 {
		t.Fatalf("torn-tail recovery stats: %+v", st)
	}
	// Entry 1 survived the tear: warm byte-identical hit.
	_, bodyB1 := post(t, tsB, q1, dagBody(t, "spmv_N6"))
	if r := decode(t, bodyB1); r.Cache == nil || !r.Cache.Hit {
		t.Fatalf("pre-tear entry lost: %+v", r.Cache)
	}
	if !bytes.Equal(stripCache(t, bodyB1), stripCache(t, bodyA1)) {
		t.Fatal("recovered entry differs from its original bytes")
	}
	// Entry 2 was torn: cold recompute, reproducing the same bytes.
	respB2, bodyB2 := post(t, tsB, q2, dagBody(t, "spmv_N6"))
	if respB2.StatusCode != http.StatusOK {
		t.Fatalf("recompute of torn entry: %d %s", respB2.StatusCode, bodyB2)
	}
	if r := decode(t, bodyB2); r.Cache == nil || r.Cache.Hit {
		t.Fatalf("torn entry should have been a miss: %+v", r.Cache)
	}
	if !bytes.Equal(stripCache(t, bodyB2), stripCache(t, bodyA2)) {
		t.Fatal("recomputed torn entry differs from the original deterministic run")
	}
}

// TestConfigMismatchRejected: intact records journaled under one
// deterministic configuration must not be served under another — the
// key re-validation drops them as rejected, and the request recomputes.
func TestConfigMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	const query = "p=2&rfactor=3&g=1&l=10"

	srv1 := mustNew(t, persistConfig(dir))
	ts1 := httptest.NewServer(srv1.Handler())
	post(t, ts1, query, dagBody(t, "spmv_N6"))
	ts1.Close()
	srv1.Close()

	cfg := persistConfig(dir)
	cfg.Seed = 2 // different portfolio seed: recovered schedule is stale
	srv2 := mustNew(t, cfg)
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	st := srv2.Stats().Persistence
	if st.RecoveredRecords != 0 || st.RejectedRecords != 1 {
		t.Fatalf("seed-mismatch recovery stats: %+v", st)
	}
	_, body := post(t, ts2, query, dagBody(t, "spmv_N6"))
	if r := decode(t, body); r.Cache == nil || r.Cache.Hit {
		t.Fatalf("stale entry served under a different seed: %+v", r.Cache)
	}
}

// TestInjectedPersistFaultsServeOn: with every journal write's checksum
// deterministically flipped, the server keeps serving correct responses
// (persistence failure is loss of warmth, never of answers), and the
// next boot counts the corruption and cold-starts cleanly.
func TestInjectedPersistFaultsServeOn(t *testing.T) {
	dir := t.TempDir()
	const query = "p=2&rfactor=3&g=1&l=10"

	cfg := persistConfig(dir)
	cfg.PersistInject = faultinject.New(99, 1.0, 0, faultinject.ChecksumFlip)
	srv1 := mustNew(t, cfg)
	ts1 := httptest.NewServer(srv1.Handler())
	resp1, body1 := post(t, ts1, query, dagBody(t, "spmv_N6"))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("request under injection: %d %s", resp1.StatusCode, body1)
	}
	// Same server: the in-memory entry still hits.
	_, body1b := post(t, ts1, query, dagBody(t, "spmv_N6"))
	if r := decode(t, body1b); r.Cache == nil || !r.Cache.Hit {
		t.Fatalf("in-memory hit lost under persist injection: %+v", r.Cache)
	}
	ts1.Close()
	srv1.Close() // snapshot rotation is injected too: every record flipped

	srv2 := mustNew(t, persistConfig(dir)) // clean reopen, no injection
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	st := srv2.Stats().Persistence
	if st.RecoveredRecords != 0 || st.CorruptRecords < 1 {
		t.Fatalf("recovery from fully-flipped store: %+v", st)
	}
	resp2, body2 := post(t, ts2, query, dagBody(t, "spmv_N6"))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cold start after corruption: %d %s", resp2.StatusCode, body2)
	}
	if r := decode(t, body2); r.Cache.Hit {
		t.Fatal("corrupt store produced a warm hit")
	}
	if !bytes.Equal(stripCache(t, body2), stripCache(t, body1)) {
		t.Fatal("cold start after corruption diverged from the original run")
	}
}

// TestRetryAfterEWMA: the 429 hint follows the cold-run EWMA, rounded
// up and clamped to [1, 30], with 1 as the no-samples fallback.
func TestRetryAfterEWMA(t *testing.T) {
	srv := mustNew(t, testConfig())
	defer srv.Close()
	if got := srv.retryAfterSecs(); got != 1 {
		t.Fatalf("no samples: want 1, got %d", got)
	}
	srv.observeCold(200 * time.Millisecond)
	if got := srv.retryAfterSecs(); got != 1 {
		t.Fatalf("sub-second EWMA must clamp up to 1, got %d", got)
	}
	srv.observeCold(10 * time.Second) // EWMA = 0.8*0.2 + 0.2*10 = 2.16
	if got := srv.retryAfterSecs(); got != 3 {
		t.Fatalf("blended EWMA: want ceil(2.16)=3, got %d", got)
	}
	for i := 0; i < 50; i++ {
		srv.observeCold(10 * time.Minute)
	}
	if got := srv.retryAfterSecs(); got != 30 {
		t.Fatalf("huge EWMA must clamp to 30, got %d", got)
	}
}
