// Package wire defines the machine-readable result shape shared by the
// scheduling server (POST /v1/schedule responses) and the mbsp-sched
// CLI's -json mode, so the two surfaces are diffable: the same DAG,
// architecture and options produce the same bytes whether scheduled
// over HTTP or on the command line.
//
// Every field is deterministic for a deterministic run — there are no
// wall-clock timings in the response body (the server reports elapsed
// time in a header instead) — which is what lets the schedule cache
// store a Response and serve it byte-identically on a hit.
package wire

import (
	"fmt"
	"strings"

	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/portfolio"
)

// DAGInfo identifies the scheduled DAG.
type DAGInfo struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	M    int    `json:"m"`
	// Fingerprint is the canonical structural fingerprint (topology +
	// weights, relabeling-invariant); Digest is the labeling-sensitive
	// exact digest. Together they form the cache identity of the request.
	Fingerprint string `json:"fingerprint"`
	Digest      string `json:"digest"`
}

// ArchInfo mirrors mbsp.Arch.
type ArchInfo struct {
	P int     `json:"p"`
	R float64 `json:"r"`
	G float64 `json:"g"`
	L float64 `json:"l"`
}

// OpsInfo counts schedule operations by kind.
type OpsInfo struct {
	Computes int `json:"computes"`
	Saves    int `json:"saves"`
	Loads    int `json:"loads"`
	Deletes  int `json:"deletes"`
}

// FailureInfo is one candidate's classified failure.
type FailureInfo struct {
	Candidate string `json:"candidate"`
	Kind      string `json:"kind"`
	Error     string `json:"error"`
}

// CertificateInfo mirrors portfolio.Certificate.
type CertificateInfo struct {
	Cost         float64       `json:"cost"`
	Bound        float64       `json:"bound"`
	Gap          float64       `json:"gap"`
	Rung         string        `json:"rung"`
	Completed    []string      `json:"completed,omitempty"`
	Degraded     []string      `json:"degraded,omitempty"`
	Failed       []FailureInfo `json:"failed,omitempty"`
	FallbackUsed bool          `json:"fallback_used,omitempty"`
	Interrupted  bool          `json:"interrupted,omitempty"`
}

// CandidateInfo is one portfolio candidate's deterministic outcome
// (costs and status; no timings).
type CandidateInfo struct {
	Name      string  `json:"name"`
	Cost      float64 `json:"cost,omitempty"`
	SyncCost  float64 `json:"sync_cost,omitempty"`
	AsyncCost float64 `json:"async_cost,omitempty"`
	Degraded  bool    `json:"degraded,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// CacheInfo is the server-side provenance of a response. Absent in CLI
// output and in the stored cache value; the server stamps it per
// request.
type CacheInfo struct {
	// Hit reports that the schedule came from the fingerprint cache.
	Hit bool `json:"hit"`
	// Provenance is one of "cold" (computed by this request), "hit"
	// (served from cache), "coalesced" (shared another request's
	// in-flight computation), or "deadline-degraded" (the per-request
	// deadline fired first; the response is the anytime fallback and was
	// not cached).
	Provenance string `json:"provenance"`
	// Key is the cache key the request mapped to.
	Key string `json:"key"`
}

// Response is the full scheduling result.
type Response struct {
	DAG         DAGInfo          `json:"dag"`
	Arch        ArchInfo         `json:"arch"`
	Model       string           `json:"model"`
	Winner      string           `json:"winner"`
	Cost        float64          `json:"cost"`
	SyncCost    float64          `json:"sync_cost"`
	AsyncCost   float64          `json:"async_cost"`
	Supersteps  int              `json:"supersteps"`
	Ops         OpsInfo          `json:"ops"`
	Certificate *CertificateInfo `json:"certificate,omitempty"`
	Candidates  []CandidateInfo  `json:"candidates,omitempty"`
	// Schedule is the full schedule in the mbsp text format
	// (mbsp.WriteSchedule); byte-identity of two responses' Schedule
	// fields is byte-identity of the schedules.
	Schedule string     `json:"schedule"`
	Cache    *CacheInfo `json:"cache,omitempty"`
}

// ModelName renders a cost model for the wire.
func ModelName(m mbsp.CostModel) string {
	if m == mbsp.Async {
		return "async"
	}
	return "sync"
}

// FromSchedule builds a Response for a bare schedule (no portfolio
// context): the CLI's single-method path.
func FromSchedule(g *graph.DAG, arch mbsp.Arch, model mbsp.CostModel, winner string, s *mbsp.Schedule) (*Response, error) {
	resp := &Response{
		DAG: DAGInfo{
			Name:        g.Name(),
			N:           g.N(),
			M:           g.M(),
			Fingerprint: fmt.Sprintf("%016x", g.Fingerprint()),
			Digest:      fmt.Sprintf("%016x", g.ExactDigest()),
		},
		Arch:       ArchInfo{P: arch.P, R: arch.R, G: arch.G, L: arch.L},
		Model:      ModelName(model),
		Winner:     winner,
		Cost:       s.Cost(model),
		SyncCost:   s.SyncCost(),
		AsyncCost:  s.AsyncCost(),
		Supersteps: s.NumSupersteps(),
	}
	resp.Ops.Computes, resp.Ops.Saves, resp.Ops.Loads, resp.Ops.Deletes = s.Ops()
	var b strings.Builder
	if err := mbsp.WriteSchedule(&b, s); err != nil {
		return nil, fmt.Errorf("wire: serializing schedule: %w", err)
	}
	resp.Schedule = b.String()
	return resp, nil
}

// FromResult builds a Response from a portfolio result, including the
// anytime certificate and the per-candidate ledger.
func FromResult(g *graph.DAG, arch mbsp.Arch, model mbsp.CostModel, res *portfolio.Result) (*Response, error) {
	if res == nil || res.Best == nil {
		return nil, fmt.Errorf("wire: result has no schedule")
	}
	resp, err := FromSchedule(g, arch, model, res.BestName, res.Best)
	if err != nil {
		return nil, err
	}
	for i := range res.Candidates {
		c := &res.Candidates[i]
		ci := CandidateInfo{Name: c.Name, Degraded: c.Degraded}
		if c.Err != nil {
			ci.Error = c.Err.Error()
		} else {
			ci.Cost, ci.SyncCost, ci.AsyncCost = c.Cost, c.SyncCost, c.AsyncCost
		}
		resp.Candidates = append(resp.Candidates, ci)
	}
	if cert := res.Certificate; cert != nil {
		wc := &CertificateInfo{
			Cost:         cert.BestCost,
			Bound:        cert.BestBound,
			Gap:          cert.Gap,
			Rung:         cert.Rung,
			Completed:    cert.Completed,
			Degraded:     cert.Degraded,
			FallbackUsed: cert.FallbackUsed,
			Interrupted:  cert.Interrupted,
		}
		for _, f := range cert.Failed {
			fi := FailureInfo{Candidate: f.Candidate, Kind: f.Kind.String()}
			if f.Err != nil {
				fi.Error = f.Err.Error()
			}
			wc.Failed = append(wc.Failed, fi)
		}
		resp.Certificate = wc
	}
	return resp, nil
}
