// Package bounds computes simple lower bounds on the cost of any valid
// MBSP schedule. They serve as soundness nets in tests (no scheduler may
// ever report a cost below them) and as optimality-gap indicators in the
// experiment harness.
package bounds

import (
	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
)

// Report carries the individual bounds; Best is their maximum.
type Report struct {
	WorkPerProc  float64 // Σω / P: someone must do the work
	CriticalPath float64 // ω-weighted longest path: dependences serialize
	SinkSave     float64 // g·max sink μ: the largest sink must be saved
	SourceLoad   float64 // g·max consumed-source μ: that source must be loaded
	Sync         float64 // L per superstep (at least one superstep)
	Best         float64
}

// LowerBound computes lower bounds valid for both the synchronous and
// asynchronous cost of any valid schedule of g on arch:
//
//   - every non-source node is computed at least once, so some processor
//     carries at least Σω/P compute time;
//   - a node's compute finishes after its parents' (directly on the same
//     processor, or through a save whose Γ gates the load), so the
//     ω-weighted critical path is a lower bound;
//   - every sink must receive a blue pebble, paying at least g·μ(sink)
//     in some save phase — the largest sink gives a bound;
//   - every source with a consumer must be loaded at least once;
//   - the synchronous cost additionally pays L for the at least one
//     superstep any non-empty schedule has.
//
// The asynchronous bound is Best without the Sync term.
//
// Returns graph.ErrCyclic (with a zero Report) for a cyclic input graph.
func LowerBound(g *graph.DAG, arch mbsp.Arch) (Report, error) {
	var r Report
	order, err := g.TopoOrder()
	if err != nil {
		return r, err
	}
	// Source nodes are inputs, never computed: their ω does not count.
	var totalComp float64
	for v := 0; v < g.N(); v++ {
		if !g.IsSource(v) {
			totalComp += g.Comp(v)
		}
	}
	r.WorkPerProc = totalComp / float64(arch.P)
	// ω-weighted longest path over computed nodes only.
	bl := make([]float64, g.N())
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		best := 0.0
		for _, w := range g.Children(v) {
			if bl[w] > best {
				best = bl[w]
			}
		}
		if g.IsSource(v) {
			bl[v] = best
		} else {
			bl[v] = best + g.Comp(v)
		}
		if bl[v] > r.CriticalPath {
			r.CriticalPath = bl[v]
		}
	}
	for _, v := range g.Sinks() {
		if !g.IsSource(v) && arch.G*g.Mem(v) > r.SinkSave {
			r.SinkSave = arch.G * g.Mem(v)
		}
	}
	for _, v := range g.Sources() {
		if g.OutDegree(v) > 0 && arch.G*g.Mem(v) > r.SourceLoad {
			r.SourceLoad = arch.G * g.Mem(v)
		}
	}
	hasWork := false
	for v := 0; v < g.N(); v++ {
		if !g.IsSource(v) {
			hasWork = true
			break
		}
	}
	if hasWork {
		r.Sync = arch.L
	}
	r.Best = max(r.WorkPerProc, r.CriticalPath, r.SinkSave, r.SourceLoad)
	return r, nil
}

// SyncLB returns the synchronous lower bound. A cyclic graph (which
// admits no valid schedule) yields the trivial bound 0; call sites sit
// behind graph/schedule validation, so the bound stays sound.
func SyncLB(g *graph.DAG, arch mbsp.Arch) float64 {
	r, err := LowerBound(g, arch)
	if err != nil {
		return 0
	}
	return max(r.Best, r.Sync)
}

// AsyncLB returns the asynchronous lower bound (0 for a cyclic graph,
// like SyncLB).
func AsyncLB(g *graph.DAG, arch mbsp.Arch) float64 {
	r, err := LowerBound(g, arch)
	if err != nil {
		return 0
	}
	return r.Best
}
