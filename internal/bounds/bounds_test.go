package bounds

import (
	"testing"
	"testing/quick"

	"mbsp/internal/bsp"
	"mbsp/internal/exact"
	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/memmgr"
	"mbsp/internal/twostage"
	"mbsp/internal/workloads"
)

func TestLowerBoundChain(t *testing.T) {
	g := graph.Chain(5) // source + 4 unit computes
	arch := mbsp.Arch{P: 2, R: 100, G: 2, L: 3}
	r, err := LowerBound(g, arch)
	if err != nil {
		t.Fatal(err)
	}
	if r.CriticalPath != 4 {
		t.Fatalf("critical path %g want 4", r.CriticalPath)
	}
	if r.WorkPerProc != 2 {
		t.Fatalf("work/proc %g want 2", r.WorkPerProc)
	}
	if r.SinkSave != 2 || r.SourceLoad != 2 {
		t.Fatalf("io bounds %g/%g want 2/2", r.SinkSave, r.SourceLoad)
	}
	if SyncLB(g, arch) != 4 || AsyncLB(g, arch) != 4 {
		t.Fatalf("LBs %g/%g want 4", SyncLB(g, arch), AsyncLB(g, arch))
	}
}

func TestLowerBoundEmptyWork(t *testing.T) {
	g := graph.New("only-sources")
	g.AddNode(0, 1)
	arch := mbsp.Arch{P: 1, R: 10, G: 1, L: 7}
	if lb := SyncLB(g, arch); lb != 0 {
		t.Fatalf("no-work LB %g want 0", lb)
	}
}

// Every baseline pipeline's cost must respect the lower bound on every
// tiny instance and a spread of architectures.
func TestAllPipelinesRespectLowerBound(t *testing.T) {
	for _, inst := range workloads.Tiny() {
		for _, p := range []int{1, 2, 4} {
			for _, rf := range []float64{1, 3} {
				arch := mbsp.Arch{P: p, R: rf * inst.DAG.MinCache(), G: 1, L: 10}
				var s *mbsp.Schedule
				var err error
				if p == 1 {
					s, err = twostage.DFSClairvoyant().Run(inst.DAG, arch)
				} else {
					s, err = twostage.BSPgClairvoyant(arch.G, arch.L).Run(inst.DAG, arch)
				}
				if err != nil {
					t.Fatal(err)
				}
				if s.SyncCost() < SyncLB(inst.DAG, arch)-1e-9 {
					t.Fatalf("%s P=%d rf=%g: sync cost %g below LB %g",
						inst.Name, p, rf, s.SyncCost(), SyncLB(inst.DAG, arch))
				}
				if s.AsyncCost() < AsyncLB(inst.DAG, arch)-1e-9 {
					t.Fatalf("%s P=%d rf=%g: async cost %g below LB %g",
						inst.Name, p, rf, s.AsyncCost(), AsyncLB(inst.DAG, arch))
				}
			}
		}
	}
}

// The exact P=1 optimum must also respect the bound — and this validates
// the bound's soundness against a true optimum rather than a heuristic.
func TestExactOptimumRespectsLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomDAG("p", 8, 0.3, 3, 3, 2, seed)
		arch := mbsp.Arch{P: 1, R: 1.5 * g.MinCache(), G: 2, L: 0}
		res, err := exact.Solve(g, arch.R, arch.G)
		if err != nil {
			return false
		}
		return res.Cost >= SyncLB(g, arch)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: random DAGs, random architectures, Cilk+LRU pipeline.
func TestRandomSchedulesRespectLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomLayered("p", 3, 4, 0.4, 5, 4, seed)
		p := 1 + int(seed%4+4)%4
		arch := mbsp.Arch{P: p, R: 2 * g.MinCache(), G: 1, L: 5}
		b, berr := bsp.Cilk(g, p, seed)
		if berr != nil {
			return false
		}
		s, err := twostage.Convert(b, arch, memmgr.LRU{})
		if err != nil {
			return false
		}
		if s.Validate() != nil {
			return false
		}
		return s.SyncCost() >= SyncLB(g, arch)-1e-9 &&
			s.AsyncCost() >= AsyncLB(g, arch)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
