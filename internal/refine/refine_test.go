package refine

import (
	"testing"

	"mbsp/internal/mbsp"
	"mbsp/internal/twostage"
	"mbsp/internal/workloads"
)

func TestImproveNeverWorse(t *testing.T) {
	for _, inst := range workloads.Tiny()[:8] {
		arch := mbsp.Arch{P: 4, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
		base, err := twostage.BSPgClairvoyant(1, 10).Run(inst.DAG, arch)
		if err != nil {
			t.Fatal(err)
		}
		res := Improve(base, Options{Budget: 400, Seed: 1})
		if res.Cost > base.SyncCost()+1e-9 {
			t.Fatalf("%s: refined cost %g worse than base %g", inst.Name, res.Cost, base.SyncCost())
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
	}
}

func TestImproveFindsImprovementSomewhere(t *testing.T) {
	// Across the tiny set with a reasonable budget, local search should
	// improve at least one instance — otherwise it is inert.
	improved := 0
	for _, inst := range workloads.Tiny() {
		arch := mbsp.Arch{P: 4, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
		base, err := twostage.BSPgClairvoyant(1, 10).Run(inst.DAG, arch)
		if err != nil {
			t.Fatal(err)
		}
		res := Improve(base, Options{Budget: 800, Seed: 42})
		if res.Improved {
			improved++
		}
	}
	if improved == 0 {
		t.Fatal("local search never improved any tiny instance")
	}
	t.Logf("improved %d/15 instances", improved)
}

func TestImproveP1NoOp(t *testing.T) {
	inst, err := workloads.ByName("spmv_N6")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 1, R: 3 * inst.DAG.MinCache(), G: 1, L: 0}
	base, err := twostage.DFSClairvoyant().Run(inst.DAG, arch)
	if err != nil {
		t.Fatal(err)
	}
	res := Improve(base, Options{Budget: 100, Seed: 1})
	if res.Evals != 0 || res.Schedule != base {
		t.Fatalf("P=1 should be a no-op, got evals=%d", res.Evals)
	}
}

func TestInitialAssignment(t *testing.T) {
	inst, err := workloads.ByName("spmv_N6")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 2, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	base, err := twostage.BSPgClairvoyant(1, 10).Run(inst.DAG, arch)
	if err != nil {
		t.Fatal(err)
	}
	proc := InitialAssignment(base)
	for v := 0; v < inst.DAG.N(); v++ {
		if inst.DAG.IsSource(v) {
			if proc[v] != -1 {
				t.Fatalf("source %d assigned to %d", v, proc[v])
			}
		} else if proc[v] < 0 || proc[v] >= arch.P {
			t.Fatalf("node %d unassigned (%d)", v, proc[v])
		}
	}
}

func TestImproveRespectsBudget(t *testing.T) {
	inst, err := workloads.ByName("kNN_N4_K3")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 4, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	base, err := twostage.BSPgClairvoyant(1, 10).Run(inst.DAG, arch)
	if err != nil {
		t.Fatal(err)
	}
	res := Improve(base, Options{Budget: 50, Seed: 3})
	if res.Evals > 50 {
		t.Fatalf("evals=%d exceeds budget", res.Evals)
	}
}

func TestImproveDeterministic(t *testing.T) {
	inst, err := workloads.ByName("exp_N4_K2")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 4, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	base, err := twostage.BSPgClairvoyant(1, 10).Run(inst.DAG, arch)
	if err != nil {
		t.Fatal(err)
	}
	a := Improve(base, Options{Budget: 300, Seed: 9})
	b := Improve(base, Options{Budget: 300, Seed: 9})
	if a.Cost != b.Cost || a.Evals != b.Evals {
		t.Fatalf("nondeterministic: (%g,%d) vs (%g,%d)", a.Cost, a.Evals, b.Cost, b.Evals)
	}
}

func TestImproveFromGraph(t *testing.T) {
	inst, err := workloads.ByName("k-means")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 4, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	res, err := ImproveFromGraph(inst.DAG, arch, Options{Budget: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}
