// Package refine implements a holistic local search over MBSP schedules:
// it perturbs the processor assignment of individual nodes, re-derives
// superstep structure and cache management, and keeps changes that lower
// the exact MBSP cost. It serves as a primal heuristic inside the ILP
// scheduler (modern MILP solvers run comparable heuristics alongside the
// tree search) and as a standalone schedule polisher.
//
// Unlike the two-stage baseline — whose stage 1 never sees the memory
// constraint — every candidate here is evaluated with the full MBSP cost,
// so the search is holistic in exactly the paper's sense.
package refine

import (
	"math/rand"

	"mbsp/internal/bsp"
	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/memmgr"
	"mbsp/internal/twostage"
)

// Options tunes the search.
type Options struct {
	Budget int   // max candidate evaluations (conversions); default 4000
	Seed   int64 // RNG seed
	Model  mbsp.CostModel
	Policy memmgr.Policy // eviction policy for candidate conversion; default clairvoyant
	// ExtraSave lists nodes that must be saved to slow memory when
	// produced (divide-and-conquer boundary values).
	ExtraSave []int
	// Cancel stops the search early when closed; the best schedule found
	// so far is still returned.
	Cancel <-chan struct{}
}

// Result reports the outcome.
type Result struct {
	Schedule *mbsp.Schedule
	Cost     float64
	Evals    int
	Improved bool
}

// InitialAssignment extracts a node→processor assignment from an MBSP
// schedule: each node goes to the processor that computes it first.
// Source nodes map to −1.
func InitialAssignment(s *mbsp.Schedule) []int {
	g := s.Graph
	proc := make([]int, g.N())
	for v := range proc {
		proc[v] = -1
	}
	for i := range s.Steps {
		for p := range s.Steps[i].Procs {
			for _, op := range s.Steps[i].Procs[p].Comp {
				if op.Kind == mbsp.OpCompute && proc[op.Node] == -1 {
					proc[op.Node] = p
				}
			}
		}
	}
	return proc
}

// Improve runs hill-climbing over processor assignments starting from the
// given schedule, returning the best schedule found (possibly the input).
func Improve(start *mbsp.Schedule, opts Options) Result {
	if opts.Budget == 0 {
		opts.Budget = 4000
	}
	if opts.Policy == nil {
		opts.Policy = memmgr.Clairvoyant{}
	}
	g := start.Graph
	arch := start.Arch
	best := start
	bestCost := start.Cost(opts.Model)
	res := Result{Schedule: best, Cost: bestCost}
	if arch.P < 2 {
		// Single processor: assignment moves do not exist.
		return res
	}

	proc := InitialAssignment(start)
	// Candidate evaluation: assignment → BSP schedule → MBSP conversion.
	eval := func(pr []int) (*mbsp.Schedule, float64, bool) {
		res.Evals++
		b, berr := bsp.FromAssignment(g, arch.P, pr)
		if berr != nil {
			return nil, 0, false
		}
		s, err := twostage.ConvertExtra(b, arch, opts.Policy, opts.ExtraSave)
		if err != nil || s.Validate() != nil {
			return nil, 0, false
		}
		return s, s.Cost(opts.Model), true
	}
	// The re-derived schedule for the initial assignment may itself
	// already differ from (even beat) the input.
	if s, c, ok := eval(proc); ok && c < bestCost {
		best, bestCost = s, c
		res.Improved = true
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	var movable []int
	for v := 0; v < g.N(); v++ {
		if !g.IsSource(v) {
			movable = append(movable, v)
		}
	}
	if len(movable) == 0 {
		res.Schedule, res.Cost = best, bestCost
		return res
	}
	cur := append([]int(nil), proc...)
	curCost := bestCost
	stale := 0
	for res.Evals < opts.Budget && stale < 6*len(movable) {
		if opts.Cancel != nil {
			select {
			case <-opts.Cancel:
				res.Schedule, res.Cost = best, bestCost
				return res
			default:
			}
		}
		v := movable[rng.Intn(len(movable))]
		move := rng.Intn(3)
		trial := append([]int(nil), cur...)
		switch move {
		case 0: // move one node to a random other processor
			q := rng.Intn(arch.P)
			if q == trial[v] {
				q = (q + 1) % arch.P
			}
			trial[v] = q
		case 1: // move a node and all its same-proc children
			q := rng.Intn(arch.P)
			if q == trial[v] {
				q = (q + 1) % arch.P
			}
			old := trial[v]
			trial[v] = q
			for _, w := range g.Children(v) {
				if !g.IsSource(w) && trial[w] == old {
					trial[w] = q
				}
			}
		default: // swap processors of two nodes
			w := movable[rng.Intn(len(movable))]
			trial[v], trial[w] = trial[w], trial[v]
		}
		s, c, ok := eval(trial)
		if ok && c < curCost-1e-9 {
			cur, curCost = trial, c
			stale = 0
			if c < bestCost {
				best, bestCost = s, c
				res.Improved = true
			}
		} else {
			stale++
		}
	}
	res.Schedule, res.Cost = best, bestCost
	return res
}

// ImproveFromGraph is a convenience wrapper that builds the baseline
// schedule itself and then improves it.
func ImproveFromGraph(g *graph.DAG, arch mbsp.Arch, opts Options) (Result, error) {
	base, err := twostage.BSPgClairvoyant(arch.G, arch.L).Run(g, arch)
	if err != nil {
		return Result{}, err
	}
	return Improve(base, opts), nil
}
