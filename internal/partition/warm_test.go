package partition

import (
	"testing"
	"time"

	"mbsp/internal/workloads"
)

// TestWarmColdBipartitionAgreeOnRegistry cross-checks the warm-started
// solver against the cold-start ablation on the branch-and-bound trees
// registry workloads actually search (the DnC partitioning ILPs): both
// must find partitions of equal proven-optimal cut size, and the warm
// path must spend strictly fewer simplex iterations in total. This is
// the tree-level half of the solver cross-check; the LP-level half
// (sparse vs dense reference on random LPs, warm vs cold after bound
// changes) lives in internal/lp, and the full-pipeline half in
// internal/ilpsched.
func TestWarmColdBipartitionAgreeOnRegistry(t *testing.T) {
	totWarm, totCold := 0, 0
	for _, inst := range workloads.Tiny() {
		if inst.DAG.N() < 24 {
			continue // a single sub-ILP window covers the whole DAG
		}
		var warmStats, coldStats SolverStats
		_, warmCut, warmOpt, err := Bipartition(inst.DAG, BipartitionOptions{
			TimeLimit: 30 * time.Second, Stats: &warmStats,
		})
		if err != nil {
			t.Fatalf("%s: warm: %v", inst.Name, err)
		}
		_, coldCut, coldOpt, err := Bipartition(inst.DAG, BipartitionOptions{
			TimeLimit: 30 * time.Second, ColdStartLP: true, Stats: &coldStats,
		})
		if err != nil {
			t.Fatalf("%s: cold: %v", inst.Name, err)
		}
		// A proven-optimal cut size is solver-independent; the chosen
		// partition may differ between alternate optima.
		if warmOpt && coldOpt && warmCut != coldCut {
			t.Fatalf("%s: warm optimal cut=%d vs cold optimal cut=%d", inst.Name, warmCut, coldCut)
		}
		if warmStats.WarmLPs == 0 && warmStats.Nodes > 2 {
			t.Fatalf("%s: no warm re-solves in a %d-node tree", inst.Name, warmStats.Nodes)
		}
		totWarm += warmStats.SimplexIters
		totCold += coldStats.SimplexIters
	}
	if totWarm == 0 || totCold == 0 {
		t.Fatal("no bipartition trees were searched")
	}
	t.Logf("registry bipartition trees: warm=%d cold=%d simplex iterations (%.2fx)",
		totWarm, totCold, float64(totCold)/float64(totWarm))
	if totWarm >= totCold {
		t.Fatalf("warm-started trees used %d iterations, cold %d — warm start is not winning", totWarm, totCold)
	}
}
