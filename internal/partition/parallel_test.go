package partition

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"mbsp/internal/workloads"
)

// matrixFixtures picks a representative slice of the registry
// partitioning fixtures — the branch-and-bound trees the DnC pipeline
// actually searches — keeping the matrix affordable under -race.
func matrixFixtures(t *testing.T) []workloads.Instance {
	t.Helper()
	var out []workloads.Instance
	want := map[string]bool{
		"spmv_N10": true, "CG_N3_K1": true, "exp_N6_K4": true, "kNN_N5_K3": true,
	}
	for _, inst := range workloads.Tiny() {
		if want[inst.Name] {
			out = append(out, inst)
		}
	}
	if len(out) != len(want) {
		t.Fatalf("registry fixtures missing: got %d of %d", len(out), len(want))
	}
	return out
}

// TestBipartitionParallelDeterminismMatrix is the registry-partitioning
// half of the parallel determinism matrix (the random-MILP half lives in
// internal/mip): on real bipartition ILPs, Workers ∈ {1, 2, 8} ×
// GOMAXPROCS ∈ {1, 4} must produce the identical partition, cut,
// optimality proof and solver counters — both for completed searches and
// under a node limit that truncates mid-tree. Run with -race
// (scripts/verify.sh does).
func TestBipartitionParallelDeterminismMatrix(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, inst := range matrixFixtures(t) {
		for _, nodeLimit := range []int{0, 60} {
			var want string
			for _, procs := range []int{1, 4} {
				runtime.GOMAXPROCS(procs)
				for _, workers := range []int{1, 2, 8} {
					var stats SolverStats
					part, cut, opt, err := Bipartition(inst.DAG, BipartitionOptions{
						TimeLimit: time.Minute, NodeLimit: nodeLimit,
						Workers: workers, Stats: &stats,
					})
					if err != nil {
						t.Fatalf("%s (limit=%d workers=%d): %v", inst.Name, nodeLimit, workers, err)
					}
					got := fmt.Sprintf("part=%v cut=%d opt=%v stats=%+v", part, cut, opt, stats)
					if want == "" {
						want = got
						continue
					}
					if got != want {
						t.Fatalf("%s (limit=%d): diverged at GOMAXPROCS=%d Workers=%d\nfirst: %s\nthis:  %s",
							inst.Name, nodeLimit, procs, workers, want, got)
					}
				}
			}
		}
	}
}

// TestRecursiveParallelDeterminism pins the full partitioning stage: the
// recursive splitter over worker-pooled bipartition ILPs must emit the
// identical part vector and counters for any worker count.
func TestRecursiveParallelDeterminism(t *testing.T) {
	inst, err := workloads.ByName("CG_N4_K1")
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, workers := range []int{1, 4} {
		res, err := Recursive(inst.DAG, RecursiveOptions{
			MaxPartSize: 24, TimeLimit: time.Minute, NodeLimit: 2000, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := fmt.Sprintf("%+v", res)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("Recursive diverged at Workers=%d\nfirst: %s\nthis:  %s", workers, want, got)
		}
	}
}
