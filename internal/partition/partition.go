// Package partition implements acyclic DAG partitioning for the
// divide-and-conquer ILP scheduler (Section 6.3): an exact ILP
// formulation of acyclic bipartitioning with balance constraints and a
// cut-minimizing objective, a greedy topological fallback, and a
// recursive splitter that keeps bisecting until every part is small
// enough for the scheduling sub-ILPs.
package partition

import (
	"fmt"
	"time"

	"mbsp/internal/faultinject"
	"mbsp/internal/graph"
	"mbsp/internal/lp"
	"mbsp/internal/mip"
)

// BipartitionOptions configures one exact bipartition solve.
type BipartitionOptions struct {
	// MinFraction is the minimum fraction of nodes per side (the paper
	// uses 1/3). Default 1/3.
	MinFraction float64
	TimeLimit   time.Duration // default 5s
	NodeLimit   int           // default 20000
	// ColdStartLP disables the warm-started dual re-solves inside the
	// branch-and-bound tree (solver ablation benchmarks).
	ColdStartLP bool
	// Workers bounds the goroutines solving branch-and-bound node
	// relaxations concurrently (mip.Options.Workers). The partition — and
	// every solver counter — is identical for any value; see DESIGN.md.
	Workers int
	// Stats, when non-nil, accumulates solver counters across solves.
	Stats *SolverStats
	// Inject, when non-nil, threads the deterministic fault-injection
	// harness into the bipartition ILP's branch-and-bound tree
	// (mip.Options.Inject).
	Inject *faultinject.Injector
	// LUStats, when non-nil, accumulates the LP factorization counters of
	// the tree search (mip.Options.LUStats). Observability only — never
	// folded into SolverStats, whose fields must stay byte-identical
	// across Workers values while factorization reuse depends on worker
	// scheduling.
	LUStats *lp.FactorStats
}

// SolverStats accumulates branch-and-bound solver counters across
// bipartition solves (the solver benchmark reads them).
type SolverStats struct {
	Nodes        int
	LPs          int
	SimplexIters int
	WarmLPs      int
	ColdLPs      int
	PerturbedLPs int
	CleanupIters int
}

func (st *SolverStats) add(res mip.Result) {
	if st == nil {
		return
	}
	st.Nodes += res.Nodes
	st.LPs += res.LPs
	st.SimplexIters += res.SimplexIters
	st.WarmLPs += res.WarmLPs
	st.ColdLPs += res.ColdLPs
	st.PerturbedLPs += res.PerturbedLPs
	st.CleanupIters += res.CleanupIters
}

// Bipartition splits g into two parts {0,1} such that the quotient graph
// is acyclic (every edge goes 0→0, 1→1 or 0→1), both sides hold at least
// MinFraction of the nodes, and the number of cut edges is minimized. It
// solves the ILP
//
//	min Σ_(u,v)∈E c_uv
//	s.t. part_u ≤ part_v            for every edge (u,v)   (acyclicity)
//	     c_uv ≥ part_v − part_u     for every edge (u,v)   (cut indicator)
//	     ⌈f·n⌉ ≤ Σ part_v ≤ ⌊(1−f)·n⌋                      (balance)
//
// and reports whether the solution is proven optimal.
func Bipartition(g *graph.DAG, opts BipartitionOptions) (part []int, cut int, optimal bool, err error) {
	if opts.MinFraction == 0 {
		opts.MinFraction = 1.0 / 3.0
	}
	if opts.TimeLimit == 0 {
		opts.TimeLimit = 5 * time.Second
	}
	if opts.NodeLimit == 0 {
		opts.NodeLimit = 20000
	}
	n := g.N()
	if n < 2 {
		return nil, 0, false, fmt.Errorf("partition: need at least 2 nodes, have %d", n)
	}
	lo := int(opts.MinFraction*float64(n) + 0.999999)
	hi := n - lo
	if lo > hi {
		return nil, 0, false, fmt.Errorf("partition: balance bounds infeasible for n=%d", n)
	}

	m := mip.NewModel()
	pv := make([]int, n)
	for v := 0; v < n; v++ {
		pv[v] = m.AddBinary("part", 0)
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Children(u) {
			// Acyclicity: part_u ≤ part_v.
			m.AddLE(0, lp.Coef{Var: pv[u], Val: 1}, lp.Coef{Var: pv[v], Val: -1})
			// Cut indicator.
			c := m.AddBinary("cut", 1)
			m.AddGE(0, lp.Coef{Var: c, Val: 1}, lp.Coef{Var: pv[v], Val: -1}, lp.Coef{Var: pv[u], Val: 1})
		}
	}
	var bal []lp.Coef
	for v := 0; v < n; v++ {
		bal = append(bal, lp.Coef{Var: pv[v], Val: 1})
	}
	m.AddRow(bal, lp.GE, float64(lo))
	m.AddRow(bal, lp.LE, float64(hi))

	// Warm start: topological prefix split.
	ws := make([]float64, m.NumVars())
	order, oerr := g.TopoOrder()
	if oerr != nil {
		return nil, 0, false, fmt.Errorf("partition: %w", oerr)
	}
	wsPart := make([]int, n)
	for i, v := range order {
		if i >= n-lo {
			wsPart[v] = 1
		}
	}
	for v := 0; v < n; v++ {
		ws[pv[v]] = float64(wsPart[v])
	}
	// Cut indicators for the warm start.
	ci := 0
	for u := 0; u < n; u++ {
		for _, v := range g.Children(u) {
			_ = v
			ci++
		}
	}
	// Re-scan to fill cut warm values (cut vars interleave with part
	// vars; identify them by name).
	cutIdx := make([]int, 0, g.M())
	for j := 0; j < m.NumVars(); j++ {
		if m.Name(j) == "cut" {
			cutIdx = append(cutIdx, j)
		}
	}
	k := 0
	for u := 0; u < n; u++ {
		for _, v := range g.Children(u) {
			if wsPart[u] != wsPart[v] {
				ws[cutIdx[k]] = 1
			}
			k++
		}
	}

	res := m.Solve(mip.Options{
		TimeLimit: opts.TimeLimit, NodeLimit: opts.NodeLimit,
		WarmStart: ws, ColdStart: opts.ColdStartLP, Workers: opts.Workers,
		Inject: opts.Inject, LUStats: opts.LUStats,
	})
	opts.Stats.add(res)
	if res.X == nil {
		return nil, 0, false, fmt.Errorf("partition: solver found no solution (%v)", res.Status)
	}
	part = make([]int, n)
	for v := 0; v < n; v++ {
		if res.X[pv[v]] > 0.5 {
			part[v] = 1
		}
	}
	cut = 0
	for u := 0; u < n; u++ {
		for _, v := range g.Children(u) {
			if part[u] != part[v] {
				cut++
			}
		}
	}
	return part, cut, res.Status == mip.Optimal, nil
}

// GreedyBipartition is the heuristic fallback: a topological prefix split
// at the position minimizing the cut subject to the balance bound.
// Returns graph.ErrCyclic for a cyclic input graph.
func GreedyBipartition(g *graph.DAG, minFraction float64) ([]int, int, error) {
	if minFraction == 0 {
		minFraction = 1.0 / 3.0
	}
	n := g.N()
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	lo := int(minFraction*float64(n) + 0.999999)
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	bestSplit, bestCut := -1, 1<<30
	for split := lo; split <= n-lo; split++ {
		cut := 0
		for u := 0; u < n; u++ {
			for _, v := range g.Children(u) {
				if pos[u] < split && pos[v] >= split {
					cut++
				}
			}
		}
		if cut < bestCut {
			bestCut, bestSplit = cut, split
		}
	}
	part := make([]int, n)
	for i, v := range order {
		if i >= bestSplit {
			part[v] = 1
		}
	}
	return part, bestCut, nil
}

// RecursiveOptions configures Recursive.
type RecursiveOptions struct {
	// MaxPartSize: parts at or below this size stop splitting (the paper
	// uses 60 with a commercial solver; our default is 24).
	MaxPartSize int
	// MinFraction per split; default 1/3 (as the paper).
	MinFraction float64
	// UseILP selects the exact bipartitioner (default true); the greedy
	// fallback is always used when the ILP fails or for ablation.
	UseILP    bool
	TimeLimit time.Duration // per bipartition
	// NodeLimit bounds each bipartition's branch-and-bound tree. Unlike
	// the wall-clock TimeLimit it binds deterministically: set it (with a
	// generous TimeLimit) when the partitioning must be byte-identical
	// across runs and machines. 0 keeps the Bipartition default.
	NodeLimit int
	// ColdStartLP disables warm-started dual re-solves in the bipartition
	// trees (solver ablation benchmarks).
	ColdStartLP bool
	// Workers bounds each bipartition tree's relaxation-solving worker
	// pool; the partitioning is identical for any value.
	Workers int
	// Inject threads the deterministic fault-injection harness into every
	// bipartition tree.
	Inject *faultinject.Injector
	// LUStats, when non-nil, accumulates LP factorization counters across
	// every bipartition tree (see BipartitionOptions.LUStats).
	LUStats     *lp.FactorStats
	greedyForce bool
}

// Result of a recursive partitioning.
type Result struct {
	Part      []int // node -> part id, 0..K-1, topologically numbered
	K         int
	CutEdges  int
	ILPSolves int
	Optimal   int         // bipartitions proven optimal
	Solver    SolverStats // branch-and-bound counters across all bipartition ILPs
}

// Recursive splits g into acyclic parts of at most MaxPartSize nodes by
// recursive bipartitioning. Part ids are assigned so that the quotient
// graph respects a topological order of the parts.
func Recursive(g *graph.DAG, opts RecursiveOptions) (Result, error) {
	if opts.MaxPartSize == 0 {
		opts.MaxPartSize = 24
	}
	if opts.MinFraction == 0 {
		opts.MinFraction = 1.0 / 3.0
	}
	res := Result{Part: make([]int, g.N())}
	type job struct {
		nodes []int
	}
	all := make([]int, g.N())
	for v := range all {
		all[v] = v
	}
	var finished [][]int
	queue := []job{{nodes: all}}
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		if len(j.nodes) <= opts.MaxPartSize {
			finished = append(finished, j.nodes)
			continue
		}
		sub, orig := g.SubDAG(j.nodes)
		var part []int
		if opts.UseILP && !opts.greedyForce {
			p, _, opt, err := Bipartition(sub, BipartitionOptions{
				MinFraction: opts.MinFraction, TimeLimit: opts.TimeLimit,
				NodeLimit: opts.NodeLimit, ColdStartLP: opts.ColdStartLP,
				Workers: opts.Workers, Stats: &res.Solver,
				Inject: opts.Inject, LUStats: opts.LUStats,
			})
			res.ILPSolves++
			if err == nil {
				part = p
				if opt {
					res.Optimal++
				}
			}
		}
		if part == nil {
			if p, _, gerr := GreedyBipartition(sub, opts.MinFraction); gerr == nil {
				part = p
			}
		}
		var a, b []int
		if part != nil {
			for i, v := range orig {
				if part[i] == 0 {
					a = append(a, v)
				} else {
					b = append(b, v)
				}
			}
		}
		if len(a) == 0 || len(b) == 0 {
			// Degenerate split; fall back to a hard topological halving.
			half := len(j.nodes) / 2
			a, b = j.nodes[:half], j.nodes[half:]
		}
		queue = append(queue, job{a}, job{b})
	}
	// Topologically order the parts via the quotient graph.
	tmp := make([]int, g.N())
	for id, nodes := range finished {
		for _, v := range nodes {
			tmp[v] = id
		}
	}
	q, cut := g.Quotient(tmp, len(finished))
	res.CutEdges = cut
	order, err := q.TopoOrder()
	if err != nil {
		return res, fmt.Errorf("partition: quotient not acyclic: %w", err)
	}
	rank := make([]int, len(finished))
	for i, id := range order {
		rank[id] = i
	}
	for v := 0; v < g.N(); v++ {
		res.Part[v] = rank[tmp[v]]
	}
	res.K = len(finished)
	return res, nil
}

// Parts groups node ids by part id, ordered by part.
func Parts(part []int, k int) [][]int {
	out := make([][]int, k)
	for v, p := range part {
		out[p] = append(out[p], v)
	}
	return out
}
