package partition

import (
	"testing"
	"time"

	"mbsp/internal/graph"
	"mbsp/internal/workloads"
)

func TestBipartitionChain(t *testing.T) {
	g := graph.Chain(9)
	part, cut, optimal, err := Bipartition(g, BipartitionOptions{TimeLimit: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Fatalf("chain cut=%d want 1", cut)
	}
	if !optimal {
		t.Fatal("chain bipartition should be proven optimal")
	}
	if !g.IsAcyclicPartition(part, 2) {
		t.Fatal("partition not acyclic")
	}
	// Balance.
	ones := 0
	for _, p := range part {
		ones += p
	}
	if ones < 3 || ones > 6 {
		t.Fatalf("unbalanced: %d of 9 in part 1", ones)
	}
}

func TestBipartitionRespectsAcyclicity(t *testing.T) {
	for _, inst := range workloads.Tiny()[:5] {
		part, _, _, err := Bipartition(inst.DAG, BipartitionOptions{TimeLimit: 5 * time.Second})
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if !inst.DAG.IsAcyclicPartition(part, 2) {
			t.Fatalf("%s: cyclic quotient", inst.Name)
		}
	}
}

func TestBipartitionBeatsOrMatchesGreedy(t *testing.T) {
	for _, inst := range workloads.Tiny()[:6] {
		_, gcut, gerr := GreedyBipartition(inst.DAG, 1.0/3)
		if gerr != nil {
			t.Fatalf("%s: %v", inst.Name, gerr)
		}
		_, icut, _, err := Bipartition(inst.DAG, BipartitionOptions{TimeLimit: 5 * time.Second})
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if icut > gcut {
			t.Fatalf("%s: ILP cut %d worse than greedy %d", inst.Name, icut, gcut)
		}
	}
}

func TestGreedyBipartitionBalanced(t *testing.T) {
	g := workloads.SpMV(10, 3)
	part, cut, err := GreedyBipartition(g, 1.0/3)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsAcyclicPartition(part, 2) {
		t.Fatal("greedy produced cyclic quotient")
	}
	if cut < 0 {
		t.Fatal("negative cut?")
	}
	ones := 0
	for _, p := range part {
		ones += p
	}
	n := g.N()
	if ones < n/3 || ones > n-n/3 {
		t.Fatalf("unbalanced: %d of %d", ones, n)
	}
}

func TestRecursiveSplitsToSize(t *testing.T) {
	for _, inst := range workloads.Small()[:3] {
		res, err := Recursive(inst.DAG, RecursiveOptions{
			MaxPartSize: 30, UseILP: true, TimeLimit: 2 * time.Second,
		})
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		parts := Parts(res.Part, res.K)
		for i, nodes := range parts {
			if len(nodes) == 0 {
				t.Fatalf("%s: empty part %d", inst.Name, i)
			}
			if len(nodes) > 30 {
				t.Fatalf("%s: part %d has %d nodes", inst.Name, i, len(nodes))
			}
		}
		if !inst.DAG.IsAcyclicPartition(res.Part, res.K) {
			t.Fatalf("%s: quotient cyclic", inst.Name)
		}
		// Parts must be numbered topologically: every edge goes to an
		// equal or higher part id.
		for u := 0; u < inst.DAG.N(); u++ {
			for _, v := range inst.DAG.Children(u) {
				if res.Part[u] > res.Part[v] {
					t.Fatalf("%s: edge (%d,%d) goes from part %d to %d",
						inst.Name, u, v, res.Part[u], res.Part[v])
				}
			}
		}
	}
}

func TestRecursiveGreedyOnly(t *testing.T) {
	inst, err := workloads.ByName("exp_N10_K8")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Recursive(inst.DAG, RecursiveOptions{MaxPartSize: 25, UseILP: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.ILPSolves != 0 {
		t.Fatalf("greedy-only run used %d ILP solves", res.ILPSolves)
	}
	if !inst.DAG.IsAcyclicPartition(res.Part, res.K) {
		t.Fatal("quotient cyclic")
	}
}

func TestRecursiveSmallInputNoSplit(t *testing.T) {
	g := graph.Diamond()
	res, err := Recursive(g, RecursiveOptions{MaxPartSize: 10, UseILP: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Fatalf("K=%d want 1", res.K)
	}
}
