// Package dnc implements the paper's divide-and-conquer ILP scheduler
// (Section 6.3 / Appendix C.2) for DAGs too large for the full ILP:
//
//  1. the DAG is split by recursive ILP-based acyclic bipartitioning into
//     parts of bounded size;
//  2. a high-level plan orders the parts topologically (we schedule the
//     parts sequentially, each with the full processor set — the paper's
//     "close to sequential" case; its multi-processor quotient plan is a
//     refinement on top of this);
//  3. each part becomes an MBSP subproblem: nodes of earlier parts that
//     feed the part appear as loadable inputs, and values consumed by
//     later parts must be saved to slow memory (NeedBlue); each
//     subproblem is solved with the ILP scheduler, warm-started from a
//     two-stage sub-baseline;
//  4. the subschedules are concatenated, caches are flushed at part
//     borders, and a streamlining pass merges adjacent supersteps and
//     cancels delete/load pairs introduced by the split.
//
// As in the paper, this is a heuristic: each sub-ILP optimizes its own
// window, so the concatenation can be worse than the plain two-stage
// baseline on graphs that do not partition well.
package dnc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mbsp/internal/bsp"
	"mbsp/internal/faultinject"
	"mbsp/internal/graph"
	"mbsp/internal/ilpsched"
	"mbsp/internal/lp"
	"mbsp/internal/mbsp"
	"mbsp/internal/memmgr"
	"mbsp/internal/mip"
	"mbsp/internal/partition"
	"mbsp/internal/twostage"
)

// Options configures the divide-and-conquer scheduler.
type Options struct {
	// Context, when non-nil, cancels the run: each sub-ILP is cancelled
	// in place, and Solve returns ctx.Err() if cancellation strikes
	// between parts (a partial concatenation is never a valid schedule).
	Context context.Context
	Model   mbsp.CostModel
	// MaxPartSize bounds subproblem DAG size (the paper splits to parts
	// of at most 60 nodes). Default 45.
	MaxPartSize int
	// SubTimeLimit bounds each sub-ILP solve (the paper uses 30 minutes
	// per subproblem with a commercial solver). Default 3s.
	SubTimeLimit time.Duration
	// SubNodeLimit bounds each sub-ILP's branch-and-bound tree. Node
	// limits bind deterministically where wall-clock limits do not; set
	// both SubNodeLimit and PartitionNodeLimit (with generous time
	// limits) for byte-identical divide-and-conquer schedules. 0 keeps
	// the ilpsched default.
	SubNodeLimit int
	// PartitionTimeLimit bounds each bipartition ILP. Default 2s, or a
	// generous 1 minute when PartitionNodeLimit is set (so the node
	// limit, not the clock, is what binds).
	PartitionTimeLimit time.Duration
	// PartitionNodeLimit bounds each bipartition ILP's tree size — the
	// node-limit knob that lets the partitioning stage join the
	// byte-identical determinism guarantee. 0 keeps the partition
	// default (wall-clock budgeted only).
	PartitionNodeLimit int
	// GreedyPartition switches to the heuristic partitioner (ablation).
	GreedyPartition bool
	// MaxModelRows caps each part's scheduling sub-ILP model size
	// (ilpsched.Options.MaxModelRows). 0 keeps the ilpsched default.
	MaxModelRows int
	// MIPWorkers bounds the relaxation-solving worker pool of every
	// branch-and-bound tree this run searches — the bipartition ILPs of
	// the partitioning stage and each part's scheduling sub-ILP. The
	// schedule is identical for any value (deterministic node
	// accounting), so the knob only trades goroutines for throughput.
	MIPWorkers int
	// LocalSearchBudget for each sub-ILP's primal heuristic.
	LocalSearchBudget int
	// Incumbent, when non-nil, is the portfolio-wide shared bound on the
	// full-schedule cost under Model. Subschedule costs are additive
	// across parts, so once the concatenated prefix alone reaches the
	// bound the run cannot win and Solve returns ErrIncumbentCutoff.
	// (Streamlining can recover a little cost afterwards, so the cutoff
	// is a heuristic: it may abandon a run that would have finished
	// within a streamline-win of the bound — acceptable for a portfolio
	// candidate whose result would at best tie.)
	Incumbent *mip.Incumbent
	// Inject threads the deterministic fault-injection harness into every
	// branch-and-bound tree this run searches — the bipartition ILPs and
	// each part's scheduling sub-ILP.
	Inject *faultinject.Injector
	// LUStats, when non-nil, accumulates the LP factorization counters of
	// every tree this run searches — the partitioning-stage bipartition
	// ILPs and each part's scheduling sub-ILP. Observability only; not
	// part of Stats (see mip.Options.LUStats).
	LUStats *lp.FactorStats
	Seed    int64
	Logf    func(format string, args ...interface{})
}

func (o Options) withDefaults() Options {
	if o.MaxPartSize == 0 {
		o.MaxPartSize = 45
	}
	if o.SubTimeLimit == 0 {
		o.SubTimeLimit = 3 * time.Second
	}
	if o.PartitionTimeLimit == 0 {
		if o.PartitionNodeLimit > 0 {
			o.PartitionTimeLimit = time.Minute
		} else {
			o.PartitionTimeLimit = 2 * time.Second
		}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
	return o
}

// ErrIncumbentCutoff reports that a divide-and-conquer run stopped early
// because the schedule prefix already cost at least the shared incumbent
// bound: the concatenation could not have beaten the portfolio's best.
var ErrIncumbentCutoff = errors.New("dnc: cut off by shared incumbent bound")

// Stats reports what the divide-and-conquer run did.
type Stats struct {
	Parts       int
	CutEdges    int
	SubILPStats []ilpsched.Stats
	// PartitionSolver holds the branch-and-bound counters of the
	// partitioning-stage bipartition ILPs; SimplexIters is the total
	// across those trees plus every sub-ILP tree.
	PartitionSolver partition.SolverStats
	SimplexIters    int
	FinalCost       float64
	StreamlineWin   float64 // cost reduction achieved by streamlining
}

// Solve schedules g on arch with the divide-and-conquer ILP method.
func Solve(g *graph.DAG, arch mbsp.Arch, opts Options) (*mbsp.Schedule, Stats, error) {
	opts = opts.withDefaults()
	var stats Stats
	if g.MinCache() > arch.R {
		return nil, stats, twostage.ErrCacheTooSmall
	}

	pres, err := partition.Recursive(g, partition.RecursiveOptions{
		MaxPartSize: opts.MaxPartSize,
		UseILP:      !opts.GreedyPartition,
		TimeLimit:   opts.PartitionTimeLimit,
		NodeLimit:   opts.PartitionNodeLimit,
		Workers:     opts.MIPWorkers,
		Inject:      opts.Inject,
		LUStats:     opts.LUStats,
	})
	if err != nil {
		return nil, stats, fmt.Errorf("dnc: partitioning: %w", err)
	}
	stats.Parts = pres.K
	stats.CutEdges = pres.CutEdges
	stats.PartitionSolver = pres.Solver
	stats.SimplexIters += pres.Solver.SimplexIters
	parts := partition.Parts(pres.Part, pres.K)

	out := mbsp.NewSchedule(g, arch)
	for k, nodes := range parts {
		if opts.Context != nil && opts.Context.Err() != nil {
			return nil, stats, fmt.Errorf("dnc: cancelled before part %d: %w", k, opts.Context.Err())
		}
		// Early cutoff: superstep costs are additive under concatenation,
		// so a prefix that already reaches the portfolio-wide bound
		// cannot produce a winning schedule.
		if k > 0 && opts.Incumbent != nil {
			if partial := out.Cost(opts.Model); partial >= opts.Incumbent.Get() {
				return nil, stats, fmt.Errorf("%w: prefix cost %g after %d/%d parts (bound %g)",
					ErrIncumbentCutoff, partial, k, len(parts), opts.Incumbent.Get())
			}
		}
		sub, schedErr := schedulePart(g, arch, opts, pres.Part, k, nodes, &stats)
		if schedErr != nil {
			return nil, stats, fmt.Errorf("dnc: part %d: %w", k, schedErr)
		}
		out.Steps = append(out.Steps, sub.Steps...)
	}
	if err := out.Validate(); err != nil {
		return nil, stats, fmt.Errorf("dnc: concatenated schedule invalid: %w", err)
	}
	before := out.Cost(opts.Model)
	streamline(out, opts.Model)
	stats.StreamlineWin = before - out.Cost(opts.Model)
	stats.FinalCost = out.Cost(opts.Model)
	return out, stats, nil
}

// schedulePart builds and solves the subproblem of part k and returns its
// subschedule translated to global node ids, ending with a cache flush.
func schedulePart(g *graph.DAG, arch mbsp.Arch, opts Options, part []int, k int, nodes []int, stats *Stats) (*mbsp.Schedule, error) {
	// Sub-DAG: the part plus boundary inputs from earlier parts (which
	// become sources of the sub-DAG, i.e. loadable values).
	inSet := map[int]bool{}
	for _, v := range nodes {
		inSet[v] = true
	}
	var boundary []int
	bSet := map[int]bool{}
	for _, v := range nodes {
		for _, u := range g.Parents(v) {
			if !inSet[u] && !bSet[u] {
				bSet[u] = true
				boundary = append(boundary, u)
			}
		}
	}
	// Build the sub-DAG manually: boundary inputs become bare sources
	// (edges between two boundary nodes are dropped — both values are
	// already in slow memory, so inside this window they are plain
	// inputs).
	sub := graph.New(fmt.Sprintf("%s/part%d", g.Name(), k))
	orig := make([]int, 0, len(boundary)+len(nodes))
	toSub := make(map[int]int, len(boundary)+len(nodes))
	for _, u := range boundary {
		toSub[u] = sub.AddNodeLabeled(g.Label(u), g.Comp(u), g.Mem(u))
		orig = append(orig, u)
	}
	for _, v := range nodes {
		toSub[v] = sub.AddNodeLabeled(g.Label(v), g.Comp(v), g.Mem(v))
		orig = append(orig, v)
	}
	for _, v := range nodes {
		for _, u := range g.Parents(v) {
			sub.AddEdge(toSub[u], toSub[v])
		}
	}
	// A part-k node with all parents outside the part would look like a
	// sub-source (never computed). Parts are built from non-trivial DAGs,
	// so give such nodes a zero-weight anchor edge from a boundary or
	// in-part parent — impossible by construction: a non-source global
	// node always has parents, which are all in toSub. A global source
	// inside the part stays a source, which is correct.
	for _, v := range nodes {
		if !g.IsSource(v) && sub.IsSource(toSub[v]) {
			return nil, fmt.Errorf("internal: node %d lost its parents in the sub-DAG", v)
		}
	}
	// Values needed by later parts (or globally sinks) must end blue.
	var needBlue []int
	extraSave := map[int]bool{}
	for _, v := range nodes {
		if g.IsSource(v) {
			continue
		}
		needed := g.IsSink(v)
		for _, w := range g.Children(v) {
			if part[w] > k {
				needed = true
			}
		}
		if needed && !sub.IsSink(toSub[v]) {
			needBlue = append(needBlue, toSub[v])
			extraSave[toSub[v]] = true
		} else if needed {
			// Sub-sinks are saved by construction; still force the save
			// in the warm start for safety.
			extraSave[toSub[v]] = true
		}
	}

	// Warm start: two-stage baseline on the sub-DAG with forced saves.
	var warm *mbsp.Schedule
	var err error
	var extraSaveList []int
	for v := range extraSave {
		extraSaveList = append(extraSaveList, v)
	}
	if arch.P == 1 {
		warm, err = twostage.ConvertExtra(bsp.DFS(sub), arch, memmgr.Clairvoyant{}, extraSaveList)
	} else {
		b, berr := bsp.BSPg(sub, arch.P, bsp.BSPgOptions{G: arch.G, L: arch.L})
		if berr != nil {
			return nil, fmt.Errorf("sub-baseline: %w", berr)
		}
		warm, err = twostage.ConvertExtra(b, arch, memmgr.Clairvoyant{}, extraSaveList)
	}
	if err != nil {
		return nil, fmt.Errorf("sub-baseline: %w", err)
	}
	if len(warm.Steps) == 0 {
		// Every node of the part is a global source (already blue) and
		// nothing needs saving: the empty subschedule is optimal, and the
		// sub-ILP cannot warm-start from zero supersteps. Wall-clock
		// partition budgets can produce such parts.
		return mbsp.NewSchedule(g, arch), nil
	}

	subSched, subStats, err := ilpsched.Solve(sub, arch, ilpsched.Options{
		Context:           opts.Context,
		Model:             opts.Model,
		WarmStart:         warm,
		NeedBlue:          needBlue,
		TimeLimit:         opts.SubTimeLimit,
		NodeLimit:         opts.SubNodeLimit,
		MIPWorkers:        opts.MIPWorkers,
		LocalSearchBudget: opts.LocalSearchBudget,
		Inject:            opts.Inject,
		LUStats:           opts.LUStats,
		MaxModelRows:      opts.MaxModelRows,
		Seed:              opts.Seed + int64(k),
		Logf:              opts.Logf,
	})
	if err != nil {
		return nil, err
	}
	stats.SubILPStats = append(stats.SubILPStats, subStats)
	stats.SimplexIters += subStats.SimplexIters

	// Translate to global ids.
	glob := mbsp.NewSchedule(g, arch)
	for i := range subSched.Steps {
		st := glob.AddSuperstep()
		for p := range subSched.Steps[i].Procs {
			src := &subSched.Steps[i].Procs[p]
			dst := &st.Procs[p]
			for _, op := range src.Comp {
				dst.Comp = append(dst.Comp, mbsp.Op{Kind: op.Kind, Node: orig[op.Node]})
			}
			for _, v := range src.Save {
				dst.Save = append(dst.Save, orig[v])
			}
			for _, v := range src.Del {
				dst.Del = append(dst.Del, orig[v])
			}
			for _, v := range src.Load {
				dst.Load = append(dst.Load, orig[v])
			}
		}
	}
	// Flush all remaining red pebbles so the next part starts from a
	// clean cache (streamlining later cancels flush/reload pairs).
	reds, err := subSched.FinalRedSets()
	if err != nil {
		return nil, fmt.Errorf("replaying subschedule: %w", err)
	}
	if len(glob.Steps) > 0 {
		last := &glob.Steps[len(glob.Steps)-1]
		for p, vs := range reds {
			for _, v := range vs {
				already := false
				for _, d := range last.Procs[p].Del {
					if d == orig[v] {
						already = true
					}
				}
				if !already {
					last.Procs[p].Del = append(last.Procs[p].Del, orig[v])
				}
			}
		}
	}
	return glob, nil
}

// streamline merges adjacent supersteps when valid and not more
// expensive, and cancels delete/load pairs at part borders: if processor
// p deletes v in superstep i and loads v in superstep j > i with no
// intervening activity on v at p, both operations are dropped when the
// schedule stays valid.
func streamline(s *mbsp.Schedule, model mbsp.CostModel) {
	cancelDeleteLoadPairs(s)
	cost := s.Cost(model)
	for i := 0; i+1 < len(s.Steps); {
		trial := s.Clone()
		mergeSteps(trial, i)
		if trial.Validate() == nil {
			if c := trial.Cost(model); c <= cost+1e-9 {
				*s = *trial
				cost = c
				continue
			}
		}
		i++
	}
}

func cancelDeleteLoadPairs(s *mbsp.Schedule) {
	type key struct{ p, v int }
	pendingDel := map[key][2]int{} // -> (superstep, del index)
	for i := range s.Steps {
		for p := range s.Steps[i].Procs {
			ps := &s.Steps[i].Procs[p]
			// Any activity on v cancels a pending deletion match.
			for _, op := range ps.Comp {
				delete(pendingDel, key{p, op.Node})
			}
			for _, v := range ps.Save {
				delete(pendingDel, key{p, v})
			}
			for li, v := range ps.Load {
				if rec, ok := pendingDel[key{p, v}]; ok {
					trial := s.Clone()
					dst := &trial.Steps[rec[0]].Procs[p]
					dst.Del = append(dst.Del[:rec[1]], dst.Del[rec[1]+1:]...)
					lst := &trial.Steps[i].Procs[p]
					lst.Load = append(lst.Load[:li], lst.Load[li+1:]...)
					if trial.Validate() == nil {
						*s = *trial
						// Indices changed; restart the scan.
						cancelDeleteLoadPairs(s)
						return
					}
					delete(pendingDel, key{p, v})
				}
			}
			for di, v := range ps.Del {
				pendingDel[key{p, v}] = [2]int{i, di}
			}
		}
	}
}

func mergeSteps(s *mbsp.Schedule, i int) {
	a, b := &s.Steps[i], &s.Steps[i+1]
	for p := range a.Procs {
		a.Procs[p].Comp = append(a.Procs[p].Comp, b.Procs[p].Comp...)
		a.Procs[p].Save = append(a.Procs[p].Save, b.Procs[p].Save...)
		a.Procs[p].Del = append(a.Procs[p].Del, b.Procs[p].Del...)
		a.Procs[p].Load = append(a.Procs[p].Load, b.Procs[p].Load...)
	}
	s.Steps = append(s.Steps[:i+1], s.Steps[i+2:]...)
}
