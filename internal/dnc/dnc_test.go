package dnc

import (
	"testing"
	"time"

	"mbsp/internal/mbsp"
	"mbsp/internal/twostage"
	"mbsp/internal/workloads"
)

func TestSolveValidOnSmallInstances(t *testing.T) {
	for _, inst := range workloads.Small()[:4] {
		arch := mbsp.Arch{P: 4, R: 5 * inst.DAG.MinCache(), G: 1, L: 10}
		s, stats, err := Solve(inst.DAG, arch, Options{
			MaxPartSize:        20,
			SubTimeLimit:       500 * time.Millisecond,
			PartitionTimeLimit: time.Second,
			LocalSearchBudget:  50,
		})
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if err := s.CheckComputesAll(); err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if stats.Parts < 2 {
			t.Fatalf("%s: expected multiple parts, got %d", inst.Name, stats.Parts)
		}
		t.Logf("%s: parts=%d cut=%d cost=%g (streamline won %g)",
			inst.Name, stats.Parts, stats.CutEdges, stats.FinalCost, stats.StreamlineWin)
	}
}

func TestSolveComparableToBaseline(t *testing.T) {
	// The D&C heuristic may win or lose vs the two-stage baseline (the
	// paper reports both), but it must stay within a sane factor.
	inst, err := workloads.ByName("spmv_N25")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 4, R: 5 * inst.DAG.MinCache(), G: 1, L: 10}
	base, err := twostage.BSPgClairvoyant(1, 10).Run(inst.DAG, arch)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := Solve(inst.DAG, arch, Options{
		SubTimeLimit:       500 * time.Millisecond,
		PartitionTimeLimit: time.Second,
		LocalSearchBudget:  1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := s.SyncCost() / base.SyncCost()
	t.Logf("dnc/base ratio = %.3f", ratio)
	// The D&C heuristic may lose to the baseline (the paper reports
	// losses up to 1.29x at 30-minute sub-solves; our budgets are three
	// orders of magnitude smaller), but it must stay within a sane band.
	if ratio > 2.0 {
		t.Fatalf("D&C cost %g more than 2x baseline %g", s.SyncCost(), base.SyncCost())
	}
}

func TestSolveGreedyPartitionAblation(t *testing.T) {
	inst, err := workloads.ByName("exp_N10_K8")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 4, R: 5 * inst.DAG.MinCache(), G: 1, L: 10}
	s, stats, err := Solve(inst.DAG, arch, Options{
		MaxPartSize:     20,
		GreedyPartition: true,
		SubTimeLimit:    300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, sub := range stats.SubILPStats {
		if sub.FinalCost > sub.WarmCost+1e-9 {
			t.Fatalf("sub-ILP made things worse: %+v", sub)
		}
	}
}

func TestSolveTinyDAGSinglePart(t *testing.T) {
	inst, err := workloads.ByName("spmv_N6")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 2, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	s, stats, err := Solve(inst.DAG, arch, Options{
		MaxPartSize:  100, // whole DAG in one part
		SubTimeLimit: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Parts != 1 {
		t.Fatalf("parts=%d want 1", stats.Parts)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveRejectsTooSmallCache(t *testing.T) {
	inst, err := workloads.ByName("spmv_N6")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 2, R: inst.DAG.MinCache() - 1, G: 1, L: 10}
	if _, _, err := Solve(inst.DAG, arch, Options{}); err == nil {
		t.Fatal("expected cache error")
	}
}
