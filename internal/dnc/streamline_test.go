package dnc

import (
	"testing"

	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
)

// buildFlushReloadSchedule constructs a schedule with an artificial
// delete/load pair across a "part border": v is computed, saved, deleted,
// then reloaded for a later consumer on the same processor.
func buildFlushReloadSchedule(t *testing.T) *mbsp.Schedule {
	t.Helper()
	g := graph.New("x")
	s0 := g.AddNode(0, 1)
	v := g.AddNode(1, 1)
	w := g.AddNode(1, 1)
	g.AddEdge(s0, v)
	g.AddEdge(v, w)
	arch := mbsp.Arch{P: 1, R: 10, G: 1, L: 5}
	s := mbsp.NewSchedule(g, arch)
	st0 := s.AddSuperstep()
	st0.Procs[0].Load = []int{s0}
	st1 := s.AddSuperstep()
	st1.Procs[0].Comp = []mbsp.Op{{Kind: mbsp.OpCompute, Node: v}}
	st1.Procs[0].Save = []int{v}
	st1.Procs[0].Del = []int{v} // artificial border flush
	st2 := s.AddSuperstep()
	st2.Procs[0].Load = []int{v} // reload after the flush
	st3 := s.AddSuperstep()
	st3.Procs[0].Comp = []mbsp.Op{{Kind: mbsp.OpCompute, Node: w}}
	st3.Procs[0].Save = []int{w}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCancelDeleteLoadPairs(t *testing.T) {
	s := buildFlushReloadSchedule(t)
	_, _, loadsBefore, delsBefore := s.Ops()
	cancelDeleteLoadPairs(s)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	_, _, loadsAfter, delsAfter := s.Ops()
	if loadsAfter != loadsBefore-1 || delsAfter != delsBefore-1 {
		t.Fatalf("pair not cancelled: loads %d→%d dels %d→%d",
			loadsBefore, loadsAfter, delsBefore, delsAfter)
	}
}

func TestCancelRespectsInterveningActivity(t *testing.T) {
	// If the value is saved between the delete and the load... a save
	// requires red, so instead test an intervening *compute* of the same
	// node (recomputation): the pair must then not be cancelled blindly.
	g := graph.New("x")
	s0 := g.AddNode(0, 1)
	v := g.AddNode(1, 1)
	g.AddEdge(s0, v)
	arch := mbsp.Arch{P: 1, R: 10, G: 1, L: 0}
	s := mbsp.NewSchedule(g, arch)
	st0 := s.AddSuperstep()
	st0.Procs[0].Load = []int{s0}
	st1 := s.AddSuperstep()
	st1.Procs[0].Comp = []mbsp.Op{{Kind: mbsp.OpCompute, Node: v}}
	st1.Procs[0].Save = []int{v}
	st1.Procs[0].Del = []int{v}
	st2 := s.AddSuperstep()
	st2.Procs[0].Comp = []mbsp.Op{{Kind: mbsp.OpCompute, Node: v}} // recompute cancels the match
	st2.Procs[0].Del = []int{v}
	st3 := s.AddSuperstep()
	st3.Procs[0].Load = []int{v}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	before := s.Clone()
	cancelDeleteLoadPairs(s)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The delete in superstep 1 must still be there (activity at
	// superstep 2 broke the pair); the (superstep 2 delete, superstep 3
	// load) pair may legitimately cancel.
	if len(s.Steps[1].Procs[0].Del) != len(before.Steps[1].Procs[0].Del) {
		t.Fatal("delete before intervening recompute was removed")
	}
}

func TestStreamlineMergesAndKeepsValidity(t *testing.T) {
	s := buildFlushReloadSchedule(t)
	costBefore := s.SyncCost()
	streamline(s, mbsp.Sync)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.SyncCost() > costBefore+1e-9 {
		t.Fatalf("streamline increased cost: %g → %g", costBefore, s.SyncCost())
	}
	// The flush/reload pair plus merges should strictly help here (fewer
	// supersteps → less L).
	if s.SyncCost() == costBefore {
		t.Fatalf("streamline found nothing on an obviously wasteful schedule:\n%s", s)
	}
}

func TestMergeStepsFoldsOps(t *testing.T) {
	s := buildFlushReloadSchedule(t)
	n := len(s.Steps)
	mergeSteps(s, 0)
	if len(s.Steps) != n-1 {
		t.Fatalf("steps %d want %d", len(s.Steps), n-1)
	}
}
