package portfolio

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"mbsp/internal/faultinject"
	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/workloads"
)

// This file is the chaos suite for the anytime contract: every
// fault-injection mode, short deadlines, candidate panics and pre-expired
// contexts must all still yield a validated schedule with a populated
// certificate — and injected faults must not break the byte-identical
// determinism guarantee. scripts/verify.sh runs it under -race.

// chaosCert asserts the certificate invariants every anytime result must
// satisfy: present, internally consistent, and agreeing with the result.
func chaosCert(t *testing.T, res *Result, label string) {
	t.Helper()
	cert := res.Certificate
	if cert == nil {
		t.Fatalf("%s: nil certificate", label)
	}
	if cert.BestCost != res.BestCost {
		t.Fatalf("%s: certificate cost %g != result cost %g", label, cert.BestCost, res.BestCost)
	}
	if cert.BestBound <= 0 || cert.BestBound > cert.BestCost {
		t.Fatalf("%s: bound %g not in (0, %g]", label, cert.BestBound, cert.BestCost)
	}
	if cert.Gap < 0 || cert.Gap > 1 {
		t.Fatalf("%s: gap %g outside [0,1]", label, cert.Gap)
	}
	if cert.FallbackUsed != (cert.Rung != RungPortfolio) {
		t.Fatalf("%s: FallbackUsed=%v inconsistent with rung %q", label, cert.FallbackUsed, cert.Rung)
	}
	for _, name := range cert.Degraded {
		found := false
		for _, c := range cert.Completed {
			if c == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: degraded candidate %s not listed as completed", label, name)
		}
	}
}

// TestChaosEveryModeOnRegistry is the acceptance gate: with a 50ms
// deadline and each injection mode enabled in turn, the anytime portfolio
// on every registry workload returns a valid schedule with a populated
// certificate — never an error.
func TestChaosEveryModeOnRegistry(t *testing.T) {
	for _, mode := range faultinject.AllModes() {
		inj := faultinject.New(42, 0, 0, mode)
		for _, inst := range workloads.Tiny() {
			label := fmt.Sprintf("%s/%s", mode, inst.Name)
			arch := baseArch(inst.DAG)
			opts := testOpts()
			opts.Workers = 4
			opts.Inject = inj
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			res, err := RunAnytime(ctx, inst.DAG, arch, opts)
			cancel()
			if err != nil {
				t.Fatalf("%s: anytime run errored: %v", label, err)
			}
			if res.Best == nil {
				t.Fatalf("%s: no schedule", label)
			}
			if verr := res.Best.Validate(); verr != nil {
				t.Fatalf("%s: invalid schedule: %v", label, verr)
			}
			if res.Best.Cost(opts.Model) != res.BestCost {
				t.Fatalf("%s: BestCost %g != schedule cost %g", label, res.BestCost, res.Best.Cost(opts.Model))
			}
			chaosCert(t, res, label)
		}
	}
}

// TestChaosModeWorkerMatrix crosses every injection mode with serial and
// parallel worker pools on representative instances (including one large
// enough for the DnC candidate), asserting the same anytime invariants.
func TestChaosModeWorkerMatrix(t *testing.T) {
	for _, name := range []string{"spmv_N6", "CG_N2_K2", "k-means"} {
		inst, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		arch := baseArch(inst.DAG)
		for _, mode := range faultinject.AllModes() {
			for _, workers := range []int{1, 4} {
				label := fmt.Sprintf("%s/%s/workers=%d", name, mode, workers)
				opts := testOpts()
				opts.Workers = workers
				opts.MIPWorkers = workers
				opts.Inject = faultinject.New(7, 0.5, 50*time.Microsecond, mode)
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				res, err := RunAnytime(ctx, inst.DAG, arch, opts)
				cancel()
				if err != nil {
					t.Fatalf("%s: anytime run errored: %v", label, err)
				}
				if verr := res.Best.Validate(); verr != nil {
					t.Fatalf("%s: invalid schedule: %v", label, verr)
				}
				chaosCert(t, res, label)
			}
		}
	}
}

// chaosSnapshot extends the determinism snapshot with the certificate, so
// byte-identity covers the anytime ledger too.
func chaosSnapshot(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(snapshot(t, res))
	fmt.Fprintf(&buf, "certificate %v\n", res.Certificate)
	return buf.Bytes()
}

// TestChaosDeterministicByteIdentical pins the harness's headline
// property: under node limits (the deterministic budget) a fixed fault
// seed yields byte-identical runs — same schedules, same certificate —
// across repeats and worker-pool widths, with every injection mode live.
// Injected latency may slow a run down but must not change any byte.
func TestChaosDeterministicByteIdentical(t *testing.T) {
	for _, name := range []string{"spmv_N6", "CG_N2_K2"} {
		inst, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		arch := baseArch(inst.DAG)
		var want []byte
		for _, workers := range []int{1, 4} {
			for rep := 0; rep < 2; rep++ {
				opts := deterministicOpts(workers)
				opts.Inject = faultinject.New(99, 0.5, 50*time.Microsecond)
				res, err := RunAnytime(context.Background(), inst.DAG, arch, opts)
				if err != nil {
					t.Fatalf("%s (workers=%d rep=%d): %v", name, workers, rep, err)
				}
				got := chaosSnapshot(t, res)
				if want == nil {
					want = got
					continue
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("%s: chaos run diverged at workers=%d rep=%d\nfirst:\n%s\nthis:\n%s",
						name, workers, rep, want, got)
				}
			}
		}
		// A different fault seed must be allowed to change the outcome but
		// never its validity; run one to make sure seed reaches the harness.
		opts := deterministicOpts(4)
		opts.Inject = faultinject.New(100, 0.5, 50*time.Microsecond)
		res, err := RunAnytime(context.Background(), inst.DAG, arch, opts)
		if err != nil {
			t.Fatalf("%s (seed 100): %v", name, err)
		}
		if verr := res.Best.Validate(); verr != nil {
			t.Fatalf("%s (seed 100): invalid schedule: %v", name, verr)
		}
	}
}

// TestChaosPanicContainment injects a candidate that panics outright: the
// portfolio must contain it, race on, return the surviving candidate's
// schedule, and ledger the panic as a classified *PanicError with the
// offending candidate's name and a captured stack.
func TestChaosPanicContainment(t *testing.T) {
	inst, err := workloads.ByName("spmv_N6")
	if err != nil {
		t.Fatal(err)
	}
	arch := baseArch(inst.DAG)
	opts := testOpts()
	opts.Workers = 2
	opts.Candidates = append(DefaultCandidates(inst.DAG, arch), Candidate{
		Name: "bomb",
		Run: func(context.Context, *graph.DAG, mbsp.Arch, Options) (*mbsp.Schedule, error) {
			panic("injected test panic")
		},
	})
	base := runtime.NumGoroutine()
	res, err := RunAnytime(context.Background(), inst.DAG, arch, opts)
	if err != nil {
		t.Fatalf("panic escaped the anytime contract: %v", err)
	}
	if verr := res.Best.Validate(); verr != nil {
		t.Fatalf("invalid schedule: %v", verr)
	}
	chaosCert(t, res, "panic-containment")
	var rec *FailureRecord
	for i := range res.Certificate.Failed {
		if res.Certificate.Failed[i].Candidate == "bomb" {
			rec = &res.Certificate.Failed[i]
		}
	}
	if rec == nil {
		t.Fatal("panicking candidate missing from the failure ledger")
	}
	if rec.Kind != FailPanic {
		t.Fatalf("panic classified as %v", rec.Kind)
	}
	var pe *PanicError
	if !errors.As(rec.Err, &pe) {
		t.Fatalf("ledger error %T is not a *PanicError", rec.Err)
	}
	if pe.Candidate != "bomb" || pe.Value != "injected test panic" || len(pe.Stack) == 0 {
		t.Fatalf("panic error lost detail: %+v", pe)
	}
	waitForGoroutines(t, base)
}

// TestChaosPreExpiredDeadlineDegrades runs with an already-expired
// context: no candidate can start, so the degradation ladder must produce
// the synchronously recomputed baseline — still valid, still certified.
func TestChaosPreExpiredDeadlineDegrades(t *testing.T) {
	inst, err := workloads.ByName("spmv_N7")
	if err != nil {
		t.Fatal(err)
	}
	arch := baseArch(inst.DAG)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := RunAnytime(ctx, inst.DAG, arch, testOpts())
	if err != nil {
		t.Fatalf("pre-expired deadline broke the anytime contract: %v", err)
	}
	if verr := res.Best.Validate(); verr != nil {
		t.Fatalf("fallback schedule invalid: %v", verr)
	}
	chaosCert(t, res, "pre-expired")
	cert := res.Certificate
	if !cert.FallbackUsed || cert.Rung != RungBaseline {
		t.Fatalf("expected baseline fallback, got rung %q (fallback=%v)", cert.Rung, cert.FallbackUsed)
	}
	if res.BestName != "fallback/"+RungBaseline {
		t.Fatalf("unexpected winner %q", res.BestName)
	}
	if len(cert.Completed) != 0 {
		t.Fatalf("candidates completed under a pre-expired context: %v", cert.Completed)
	}
}

// TestChaosCancelMidWaveNoLeak cancels an anytime run whose ILP candidate
// is mid-way through a multi-worker wave with every fault mode injecting:
// the run must still return a valid schedule (at worst the fallback),
// and no candidate or wave worker may outlive it.
func TestChaosCancelMidWaveNoLeak(t *testing.T) {
	inst, err := workloads.ByName("k-means")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 1, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	opts := testOpts()
	opts.ILPTimeLimit = time.Minute
	opts.ILPNodeLimit = 1 << 30
	opts.MIPWorkers = 4
	opts.Inject = faultinject.New(13, 0.5, 100*time.Microsecond)
	opts.Candidates = []Candidate{ILPCandidate()}

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(150*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	start := time.Now()
	res, err := RunAnytime(ctx, inst.DAG, arch, opts)
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("RunAnytime took %v after cancellation", elapsed)
	}
	if err != nil {
		t.Fatalf("mid-wave cancel broke the anytime contract: %v", err)
	}
	if verr := res.Best.Validate(); verr != nil {
		t.Fatalf("invalid schedule: %v", verr)
	}
	chaosCert(t, res, "cancel-mid-wave")
	waitForGoroutines(t, base)
}

// TestClassify pins the failure taxonomy mapping.
func TestClassify(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want FailureKind
	}{
		{context.DeadlineExceeded, FailTimeout},
		{fmt.Errorf("wrapped: %w", context.DeadlineExceeded), FailTimeout},
		{context.Canceled, FailCancelled},
		{&PanicError{Candidate: "x", Value: "boom"}, FailPanic},
		{fmt.Errorf("bad: %w: details", errInvalidSchedule), FailInvalid},
		{errors.New("solver exploded"), FailScheduler},
	} {
		if got := classify(tc.err); got != tc.want {
			t.Fatalf("classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
