// Package portfolio races a set of MBSP schedulers ("candidates")
// concurrently over a bounded worker pool and returns the cheapest valid
// schedule. The paper evaluates many schedulers — two-stage baselines
// (BSPg/Cilk/DFS × clairvoyant/LRU), the holistic ILP and its
// divide-and-conquer variant — with no single winner across workloads
// and architectures; a portfolio turns that diversity into a strategy:
// run everything applicable in parallel, validate each result with the
// model checker, keep the best.
//
// The runner introduces no nondeterminism of its own: every candidate
// derives its seed from the portfolio seed and its name (never from
// worker identity or completion order), results are collected in
// candidate order, and ties are broken by that order. Candidates whose
// budgets bind deterministically (the two-stage pipelines always; the
// ILP under Options.ILPNodeLimit) therefore produce identical schedules
// under any GOMAXPROCS or worker count; wall-clock budgets
// (ILPTimeLimit, the DnC partitioning stage) cut wherever the solver
// happened to be and are only reproducible on an idle machine.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"mbsp/internal/faultinject"
	"mbsp/internal/graph"
	"mbsp/internal/lp"
	"mbsp/internal/mbsp"
	"mbsp/internal/mip"
	"mbsp/internal/twostage"
)

// Options configures a portfolio run.
type Options struct {
	// Model selects the objective used to rank candidates.
	Model mbsp.CostModel
	// Workers bounds the number of schedulers running concurrently.
	// Default GOMAXPROCS (and never more than the candidate count).
	Workers int
	// SchedulerTimeout is the per-candidate wall-clock budget; a candidate
	// that exceeds it is cancelled in place. The ILP candidate then
	// returns its best-so-far schedule (at minimum the warm start); the
	// divide-and-conquer candidate returns an error when cut between
	// parts, because a partial concatenation is never a valid schedule.
	// Default 30s; negative disables.
	SchedulerTimeout time.Duration
	// ILPTimeLimit bounds the branch-and-bound search of ILP-based
	// candidates. Default 2s.
	ILPTimeLimit time.Duration
	// ILPNodeLimit bounds the branch-and-bound tree size. Unlike a
	// wall-clock limit, a node limit binds deterministically: set it (with
	// a generous ILPTimeLimit) when reproducible schedules matter more
	// than squeezing the budget. 0 keeps the ilpsched default.
	ILPNodeLimit int
	// MaxModelRows caps the holistic scheduling ILP's model size: a
	// model with more rows skips tree search and keeps the warm-start +
	// local-search path (ilpsched.Options.MaxModelRows; the dnc
	// candidate's per-part sub-ILPs inherit it too). Since the sparse LU
	// core the default (mip.DefaultMaxModelRows, 0 here) admits
	// thousands-of-rows models, whose tree searches take seconds —
	// latency-sensitive callers (the serving layer) set a smaller cap.
	MaxModelRows int
	// MIPWorkers bounds the relaxation-solving worker pool inside each
	// ILP-based candidate's branch-and-bound trees (mip.Options.Workers).
	// 0 budgets automatically: the portfolio splits GOMAXPROCS between
	// candidate-level parallelism (the Workers pool racing schedulers)
	// and tree-level parallelism, giving each candidate's trees
	// max(1, GOMAXPROCS/Workers) LP workers — capped at mip.MaxWorkers,
	// the engine's wave width — so the two layers together approach the
	// machine width instead of oversubscribing it. The solver's
	// deterministic node accounting makes each candidate's schedule
	// identical for any budget, so auto-sizing adds no nondeterminism of
	// its own; the portfolio-level guarantee is the usual one (see
	// ILPNodeLimit): byte-identical results need the sealed incumbent,
	// because *live* incumbent updates land at timing-dependent points
	// whatever the worker counts. Negative disables tree-level
	// parallelism (1 worker per tree).
	MIPWorkers int
	// LocalSearchBudget bounds the local-search heuristic of ILP-based
	// candidates. Default 2000.
	LocalSearchBudget int
	// Seed drives every randomized candidate; each candidate mixes it
	// with its name so the portfolio is reproducible end to end.
	Seed int64
	// Candidates overrides the scheduler set. Nil selects
	// DefaultCandidates(g, arch).
	Candidates []Candidate
	// Inject threads the deterministic fault-injection harness
	// (internal/faultinject) into every ILP-based candidate's solver
	// stack: forced cold fallbacks and singular refactorizations in warm
	// LP re-solves, injected node latency, and spurious branch-and-bound
	// cancellations. Injection decisions are pure functions of (instance
	// fingerprint, node sequence, seed), so node-limited chaos runs stay
	// byte-identical. Nil disables injection.
	Inject *faultinject.Injector
	// LUStats, when non-nil, accumulates the LP factorization counters of
	// every ILP-based candidate's solver stack. Candidates race
	// concurrently, so Run hands each candidate a private accumulator and
	// sums them after the pool drains; the counters are observability
	// only and never influence candidate selection.
	LUStats *lp.FactorStats
	// DisableSharedIncumbent turns off the portfolio-wide shared
	// incumbent. By default every candidate's validated cost — and, for
	// the ILP, every incumbent found mid-search — feeds a monotone atomic
	// bound that the ILP and DnC candidates prune against, so losing
	// candidates cut off early. Under a node-limited deterministic run
	// (ILPNodeLimit > 0) the incumbent is sealed at the memoized
	// baseline cost before any candidate starts, keeping the
	// byte-identical guarantee (see DESIGN.md).
	DisableSharedIncumbent bool
	// Logf receives progress messages.
	Logf func(format string, args ...interface{})

	// shared carries the per-run shared state (incumbent, memoized warm
	// start) from Run to the candidates; external candidates ignore it.
	shared *sharedState
}

// sharedState is the per-run state Run hands to every candidate: the
// portfolio-wide incumbent and the memoized two-stage baseline that both
// the baseline candidate and the ILP warm start would otherwise each
// recompute.
type sharedState struct {
	inc      *mip.Incumbent
	warm     *mbsp.Schedule // nil when the baseline pipeline failed
	warmCost float64
}

// baselineCandidateName names the candidate whose schedule equals the
// memoized warm start on this architecture.
func baselineCandidateName(arch mbsp.Arch) string {
	if arch.P == 1 {
		return "dfs+clairvoyant"
	}
	return "bspg+clairvoyant"
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.SchedulerTimeout == 0 {
		o.SchedulerTimeout = 30 * time.Second
	}
	if o.ILPTimeLimit == 0 {
		o.ILPTimeLimit = 2 * time.Second
	}
	if o.LocalSearchBudget == 0 {
		o.LocalSearchBudget = 2000
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
	return o
}

// CandidateResult reports one scheduler's outcome.
type CandidateResult struct {
	Name      string
	Cost      float64 // under Options.Model; NaN when Err != nil
	SyncCost  float64
	AsyncCost float64
	Elapsed   time.Duration
	Schedule  *mbsp.Schedule
	Err       error
	// Degraded records that the candidate's budget or the caller's
	// context fired before its search finished: the schedule is a valid
	// best-so-far result, not the candidate's full-budget answer.
	Degraded bool
}

// Result is a full portfolio outcome.
type Result struct {
	// Best is the cheapest valid schedule; BestName/BestCost identify it.
	Best     *mbsp.Schedule
	BestName string
	BestCost float64
	// Candidates holds per-scheduler results in candidate order,
	// independent of completion order.
	Candidates []CandidateResult
	// Workers is the effective worker-pool size the run used (after
	// defaulting and clamping to the candidate count).
	Workers int
	// Interrupted records that the parent context was cancelled before
	// every candidate finished; Best is then the best among those that
	// did (best-so-far semantics).
	Interrupted bool
	Elapsed     time.Duration
	// Certificate is the anytime-quality certificate: cost, proven lower
	// bound, gap, degradation rung and per-candidate ledger. Populated by
	// RunAnytime; nil after plain Run.
	Certificate *Certificate
}

// ErrNoSchedule is returned when no candidate produced a valid schedule.
var ErrNoSchedule = errors.New("portfolio: no candidate produced a valid schedule")

// Run races the candidates over a bounded worker pool and returns the
// best valid schedule under opts.Model. Every candidate schedule is
// re-validated with mbsp.Validate before it may win. On context
// cancellation Run still waits for in-flight candidates (they are
// cancelled in place, so no goroutine outlives the call) and returns the
// best schedule completed so far, or ErrNoSchedule joined with the
// context error if there is none.
func Run(ctx context.Context, g *graph.DAG, arch mbsp.Arch, opts Options) (*Result, error) {
	start := time.Now()
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	cands := opts.Candidates
	if cands == nil {
		cands = DefaultCandidates(g, arch)
	}
	if len(cands) == 0 {
		return nil, errors.New("portfolio: no candidates")
	}

	// Shared per-run state: memoize the two-stage baseline once — it is
	// both a candidate and the ILP's warm start — and seed the
	// portfolio-wide incumbent with its cost. Skipped when the context
	// is already cancelled: the candidates will all report the context
	// error without running, so the baseline would be wasted work that
	// delays the prompt return.
	sh := &sharedState{}
	if !opts.DisableSharedIncumbent {
		sh.inc = mip.NewIncumbent()
	}
	if ctx.Err() == nil {
		pl := twostage.BSPgClairvoyant(arch.G, arch.L)
		if arch.P == 1 {
			pl = twostage.DFSClairvoyant()
		}
		if w, err := pl.Run(g, arch); err == nil && w.Validate() == nil {
			sh.warm = w
			sh.warmCost = w.Cost(opts.Model)
			sh.inc.Offer(sh.warmCost)
		} else if err != nil {
			opts.Logf("portfolio: baseline warm start unavailable: %v", err)
		}
	}
	if opts.ILPNodeLimit > 0 {
		// Deterministic mode: freeze the incumbent at its deterministic
		// seed value. Live updates land at timing-dependent points and
		// would perturb the node-limited searches' deterministic node
		// accounting (see DESIGN.md).
		sh.inc.Seal()
	}
	opts.shared = sh

	res := &Result{Candidates: make([]CandidateResult, len(cands))}
	workers := opts.Workers
	if workers > len(cands) {
		workers = len(cands)
	}
	res.Workers = workers
	// Budget the machine between the two parallelism layers: candidates
	// racing in the pool above, LP workers inside each candidate's
	// branch-and-bound trees below. Tree-level worker counts never change
	// results (deterministic node accounting in package mip), so the
	// budget is free to depend on GOMAXPROCS.
	switch {
	case opts.MIPWorkers < 0:
		opts.MIPWorkers = 1
	case opts.MIPWorkers == 0:
		opts.MIPWorkers = min(mip.MaxWorkers, max(1, runtime.GOMAXPROCS(0)/max(1, workers)))
	}
	// Per-candidate factorization accumulators: candidates race, so the
	// shared opts.LUStats pointer must not be written concurrently; each
	// candidate gets a private struct, summed after the pool drains.
	var luPer []lp.FactorStats
	if opts.LUStats != nil {
		luPer = make([]lp.FactorStats, len(cands))
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				copts := opts
				if luPer != nil {
					copts.LUStats = &luPer[i]
				}
				res.Candidates[i] = runCandidate(ctx, g, arch, copts, cands[i])
			}
		}()
	}
	for i := range cands {
		// Stop feeding once cancelled; remaining candidates report the
		// context error without running.
		if err := ctx.Err(); err != nil {
			res.Candidates[i] = CandidateResult{Name: cands[i].Name, Cost: math.NaN(), Err: err}
			continue
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i := range luPer {
		opts.LUStats.Add(luPer[i])
	}
	res.Interrupted = ctx.Err() != nil
	res.Elapsed = time.Since(start)

	// Deterministic selection: lowest cost, ties broken by candidate
	// order.
	best := -1
	for i := range res.Candidates {
		c := &res.Candidates[i]
		if c.Err != nil || c.Schedule == nil {
			continue
		}
		if best < 0 || c.Cost < res.Candidates[best].Cost-1e-12 {
			best = i
		}
	}
	if best < 0 {
		err := ErrNoSchedule
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = fmt.Errorf("%w (cancelled: %v)", ErrNoSchedule, ctxErr)
		}
		return res, err
	}
	b := &res.Candidates[best]
	res.Best, res.BestName, res.BestCost = b.Schedule, b.Name, b.Cost
	return res, nil
}

// runCandidate executes one scheduler under its per-candidate timeout and
// validates the outcome.
func runCandidate(ctx context.Context, g *graph.DAG, arch mbsp.Arch, opts Options, c Candidate) CandidateResult {
	cctx := ctx
	if opts.SchedulerTimeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, opts.SchedulerTimeout)
		defer cancel()
	}
	start := time.Now()
	out := CandidateResult{Name: c.Name, Cost: math.NaN()}
	s, err := func() (s *mbsp.Schedule, err error) {
		// Panic containment: a panicking candidate becomes a classified
		// per-candidate failure (*PanicError) instead of unwinding the
		// worker goroutine and killing the process; the race continues on
		// the surviving candidates.
		defer func() {
			if r := recover(); r != nil {
				s, err = nil, &PanicError{Candidate: c.Name, Value: r, Stack: debug.Stack()}
			}
		}()
		return c.Run(cctx, g, arch, opts)
	}()
	out.Elapsed = time.Since(start)
	switch {
	case err != nil:
		out.Err = fmt.Errorf("portfolio: %s: %w", c.Name, err)
	case s == nil:
		out.Err = fmt.Errorf("portfolio: %s returned no schedule", c.Name)
	default:
		if verr := s.Validate(); verr != nil {
			out.Err = fmt.Errorf("portfolio: %s produced %w: %v", c.Name, errInvalidSchedule, verr)
			break
		}
		out.Schedule = s
		out.SyncCost = s.SyncCost()
		out.AsyncCost = s.AsyncCost()
		out.Cost = s.Cost(opts.Model)
		// A candidate that returned a valid schedule after its context
		// fired was cut mid-search: best-so-far, not its full answer.
		out.Degraded = cctx.Err() != nil
		if opts.shared != nil {
			// Feed the portfolio-wide bound so still-running candidates
			// prune against this result (no-op when sealed).
			opts.shared.inc.Offer(out.Cost)
		}
	}
	if out.Err != nil {
		opts.Logf("portfolio: candidate %s failed after %v: %v", c.Name, out.Elapsed, out.Err)
	} else {
		opts.Logf("portfolio: candidate %s: cost %g in %v", c.Name, out.Cost, out.Elapsed)
	}
	return out
}

// candidateSeed mixes the portfolio seed with the candidate name, so a
// candidate's randomness is independent of its position in the set and
// of scheduling order.
func candidateSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64()&math.MaxInt64)
}
