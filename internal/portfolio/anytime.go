package portfolio

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"mbsp/internal/bounds"
	"mbsp/internal/dnc"
	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/twostage"
)

// This file implements the portfolio's anytime contract: under deadline,
// cancellation, node-limit exhaustion, scheduler failure, or a panic in
// any candidate, RunAnytime still returns the best validated schedule it
// can produce — falling down a deterministic degradation ladder
// (portfolio race → two-stage baseline recomputed synchronously) — plus a
// Certificate stating what completed, what failed and how tight the
// result provably is. An error escapes only when no valid schedule for
// the instance exists at all (e.g. the cache cannot hold the largest
// value, or the graph is cyclic).

// FailureKind classifies why a candidate produced no usable schedule.
type FailureKind int8

// Failure classes, from the taxonomy in DESIGN.md.
const (
	// FailTimeout: the candidate's deadline expired (context.DeadlineExceeded).
	FailTimeout FailureKind = iota
	// FailCancelled: the caller's context was cancelled (context.Canceled).
	FailCancelled
	// FailPanic: the candidate panicked; recovered into a *PanicError.
	FailPanic
	// FailInvalid: the candidate returned a schedule that failed validation.
	FailInvalid
	// FailCutoff: the candidate stopped because the shared incumbent proved
	// it could not win (dnc.ErrIncumbentCutoff) — a loss, not a fault.
	FailCutoff
	// FailScheduler: any other scheduler error (no progress, deadlock,
	// cache too small, cyclic graph, ...).
	FailScheduler
)

func (k FailureKind) String() string {
	switch k {
	case FailTimeout:
		return "timeout"
	case FailCancelled:
		return "cancelled"
	case FailPanic:
		return "panic"
	case FailInvalid:
		return "invalid-schedule"
	case FailCutoff:
		return "incumbent-cutoff"
	case FailScheduler:
		return "scheduler-error"
	}
	return fmt.Sprintf("FailureKind(%d)", int8(k))
}

// FailureRecord is one candidate's classified failure.
type FailureRecord struct {
	Candidate string
	Kind      FailureKind
	Err       error
}

// PanicError wraps a panic recovered from a portfolio candidate. The
// stack is captured at the panic site for diagnosis; the portfolio
// treats the candidate as failed and races on.
type PanicError struct {
	Candidate string
	Value     interface{}
	Stack     []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("candidate %s panicked: %v", e.Candidate, e.Value)
}

// errInvalidSchedule marks validation failures so classify can tell them
// apart from scheduler errors without string matching the full message.
var errInvalidSchedule = errors.New("invalid schedule")

// classify maps a candidate error to its failure class.
func classify(err error) FailureKind {
	var pe *PanicError
	switch {
	case errors.As(err, &pe):
		return FailPanic
	case errors.Is(err, context.DeadlineExceeded):
		return FailTimeout
	case errors.Is(err, context.Canceled):
		return FailCancelled
	case errors.Is(err, errInvalidSchedule):
		return FailInvalid
	case errors.Is(err, dnc.ErrIncumbentCutoff):
		return FailCutoff
	}
	return FailScheduler
}

// Ladder rungs reported in Certificate.Rung, ordered from best to worst.
const (
	// RungPortfolio: the racing portfolio itself produced the winner.
	RungPortfolio = "portfolio"
	// RungBaseline: every candidate failed; the winner is the two-stage
	// baseline (BSPg+clairvoyant, DFS on one processor) recomputed
	// synchronously, ignoring the expired context.
	RungBaseline = "baseline"
	// RungDFS: even the BSPg baseline failed; the winner is the
	// single-processor DFS+clairvoyant schedule, the ladder's floor.
	RungDFS = "dfs"
)

// Certificate states what an anytime run is worth: the returned
// schedule's cost, a sound lower bound on ANY valid schedule of the
// instance (from package bounds — independent of how much of the search
// completed), the relative gap between them, which degradation rung
// produced the winner, and the per-candidate completion/failure ledger.
type Certificate struct {
	// BestCost is the returned schedule's cost under Options.Model.
	BestCost float64
	// BestBound is a proven lower bound on the cost of any valid schedule
	// (work/critical-path/IO bounds; sound regardless of failures).
	BestBound float64
	// Gap is the relative optimality gap (BestCost−BestBound)/BestCost,
	// in [0,1]; 0 when BestCost is 0.
	Gap float64
	// Rung identifies the degradation-ladder rung that produced the
	// schedule: RungPortfolio, RungBaseline or RungDFS.
	Rung string
	// Completed lists candidates that returned a validated schedule,
	// in candidate order; Degraded is the subset of Completed that was
	// interrupted mid-search and returned a best-so-far schedule.
	Completed []string
	Degraded  []string
	// Failed lists candidates that produced no usable schedule, with the
	// failure class and underlying error, in candidate order.
	Failed []FailureRecord
	// FallbackUsed records that the ladder fell past the portfolio
	// (Rung != RungPortfolio).
	FallbackUsed bool
	// Interrupted mirrors Result.Interrupted: the caller's context fired
	// before every candidate finished.
	Interrupted bool
}

// String renders the certificate on one line for logs and CLIs.
func (c *Certificate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cost=%g bound=%g gap=%.1f%% rung=%s completed=%d degraded=%d failed=%d",
		c.BestCost, c.BestBound, 100*c.Gap, c.Rung, len(c.Completed), len(c.Degraded), len(c.Failed))
	if c.Interrupted {
		b.WriteString(" interrupted")
	}
	return b.String()
}

// buildCertificate fills the ledger from the per-candidate results and
// the already-selected winner.
func buildCertificate(g *graph.DAG, arch mbsp.Arch, opts Options, res *Result, rung string) *Certificate {
	cert := &Certificate{
		BestCost:     res.BestCost,
		Rung:         rung,
		FallbackUsed: rung != RungPortfolio,
		Interrupted:  res.Interrupted,
	}
	if opts.Model == mbsp.Sync {
		cert.BestBound = bounds.SyncLB(g, arch)
	} else {
		cert.BestBound = bounds.AsyncLB(g, arch)
	}
	if cert.BestCost > 0 {
		cert.Gap = (cert.BestCost - cert.BestBound) / cert.BestCost
		if cert.Gap < 0 {
			cert.Gap = 0
		}
	}
	for i := range res.Candidates {
		c := &res.Candidates[i]
		switch {
		case c.Err != nil:
			cert.Failed = append(cert.Failed, FailureRecord{
				Candidate: c.Name, Kind: classify(c.Err), Err: c.Err,
			})
		case c.Schedule != nil:
			cert.Completed = append(cert.Completed, c.Name)
			if c.Degraded {
				cert.Degraded = append(cert.Degraded, c.Name)
			}
		}
	}
	return cert
}

// RunAnytime is Run with the anytime contract: it returns the best
// validated schedule obtainable under the circumstances — never an error
// for deadlines, cancellations, exhausted node budgets, panics or
// individual scheduler failures — together with a populated
// Result.Certificate. When every candidate fails (e.g. the context was
// already expired before any could start), it walks the degradation
// ladder synchronously, ignoring the context: the BSPg+clairvoyant
// two-stage baseline, then DFS+clairvoyant. Both are deterministic
// greedy passes that complete in microseconds-to-milliseconds, so a
// valid schedule is always produced; an error escapes only when the
// instance admits no valid schedule at all.
func RunAnytime(ctx context.Context, g *graph.DAG, arch mbsp.Arch, opts Options) (*Result, error) {
	res, err := Run(ctx, g, arch, opts)
	if err == nil {
		res.Certificate = buildCertificate(g, arch, opts, res, RungPortfolio)
		return res, nil
	}
	if !errors.Is(err, ErrNoSchedule) {
		// Pre-flight failures (invalid architecture, empty candidate set)
		// are caller bugs, not runtime faults: no schedule to degrade to.
		return res, err
	}
	if res == nil {
		res = &Result{}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	// Degradation ladder, off-context: the portfolio produced nothing, so
	// compute the cheapest reliable schedule synchronously. Rung order is
	// fixed and the pipelines are deterministic, so the fallback schedule
	// is reproducible no matter which fault felled the portfolio.
	type rung struct {
		name     string
		pipeline twostage.Pipeline
	}
	var ladder []rung
	if arch.P > 1 {
		ladder = append(ladder, rung{RungBaseline, twostage.BSPgClairvoyant(arch.G, arch.L)})
	}
	ladder = append(ladder, rung{RungDFS, twostage.DFSClairvoyant()})
	var lastErr error
	for _, r := range ladder {
		s, rerr := r.pipeline.Run(g, arch)
		if rerr != nil {
			logf("portfolio: fallback %s failed: %v", r.name, rerr)
			lastErr = rerr
			continue
		}
		if verr := s.Validate(); verr != nil {
			logf("portfolio: fallback %s produced invalid schedule: %v", r.name, verr)
			lastErr = fmt.Errorf("%s: %w: %v", r.name, errInvalidSchedule, verr)
			continue
		}
		res.Best = s
		res.BestName = "fallback/" + r.name
		res.BestCost = s.Cost(opts.Model)
		res.Certificate = buildCertificate(g, arch, opts, res, r.name)
		logf("portfolio: degraded to %s fallback: cost %g", r.name, res.BestCost)
		return res, nil
	}
	// The ladder floor failed: the instance admits no valid schedule
	// (cache smaller than a value, cyclic graph, ...). Not an anytime
	// outcome — surface the real cause.
	return res, fmt.Errorf("%w; fallback failed: %v", ErrNoSchedule, lastErr)
}
