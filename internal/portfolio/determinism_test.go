package portfolio

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"mbsp/internal/mbsp"
	"mbsp/internal/workloads"
)

// deterministicOpts replaces the wall-clock ILP budget with a node limit:
// tree-size limits bind at the same point on every run, while time limits
// cut the search wherever the scheduler happened to be.
func deterministicOpts(workers int) Options {
	return Options{
		Model:             mbsp.Sync,
		Workers:           workers,
		ILPTimeLimit:      time.Minute,
		ILPNodeLimit:      200,
		LocalSearchBudget: 200,
		Seed:              7,
	}
}

// snapshot serializes every candidate schedule plus the winner, capturing
// the full observable outcome of a run. Candidate errors (e.g. a
// deterministic incumbent cutoff of the DnC run) serialize by message.
func snapshot(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "best=%s cost=%.9g\n", res.BestName, res.BestCost)
	for _, c := range res.Candidates {
		if c.Err != nil {
			fmt.Fprintf(&buf, "candidate %s err=%v\n", c.Name, c.Err)
			continue
		}
		fmt.Fprintf(&buf, "candidate %s cost=%.9g\n", c.Name, c.Cost)
		if err := mbsp.WriteSchedule(&buf, c.Schedule); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestPortfolioDeterministicAcrossGOMAXPROCS asserts byte-identical
// schedules for identical seeds under GOMAXPROCS 1, 2 and 8, and under
// different worker-pool widths. Run with -race (scripts/verify.sh does).
// Under Options.ILPNodeLimit every candidate — including dnc-ilp, whose
// partitioning and sub-ILP stages are node-limited through the knob, and
// the warm-started dual-simplex ILP path — must land in the guarantee;
// the sealed shared incumbent must not break it either.
func TestPortfolioDeterministicAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, name := range []string{"spmv_N6", "CG_N2_K2", "k-means"} {
		inst, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		arch := baseArch(inst.DAG)
		var want []byte
		for _, procs := range []int{1, 2, 8} {
			runtime.GOMAXPROCS(procs)
			for _, workers := range []int{1, 4} {
				opts := deterministicOpts(workers)
				res, err := Run(context.Background(), inst.DAG, arch, opts)
				if err != nil {
					t.Fatalf("%s (GOMAXPROCS=%d workers=%d): %v", name, procs, workers, err)
				}
				got := snapshot(t, res)
				if want == nil {
					want = got
					continue
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("%s: schedules differ at GOMAXPROCS=%d workers=%d\nfirst run:\n%s\nthis run:\n%s",
						name, procs, workers, want, got)
				}
			}
		}
	}
}

// TestDeterministicModeSealsIncumbent pins the mechanism behind the
// guarantee: a node-limited run must produce the same bytes whether the
// shared incumbent is enabled (sealed at the deterministic baseline
// cost) or disabled entirely — live sharing must not leak into
// node-limited searches.
func TestDeterministicModeSealsIncumbent(t *testing.T) {
	inst, err := workloads.ByName("CG_N2_K2")
	if err != nil {
		t.Fatal(err)
	}
	arch := baseArch(inst.DAG)
	withInc := deterministicOpts(4)
	resInc, err := Run(context.Background(), inst.DAG, arch, withInc)
	if err != nil {
		t.Fatal(err)
	}
	without := deterministicOpts(4)
	without.DisableSharedIncumbent = true
	resNo, err := Run(context.Background(), inst.DAG, arch, without)
	if err != nil {
		t.Fatal(err)
	}
	if resInc.BestName != resNo.BestName || resInc.BestCost != resNo.BestCost {
		t.Fatalf("sealed incumbent changed the outcome: %s/%g vs %s/%g",
			resInc.BestName, resInc.BestCost, resNo.BestName, resNo.BestCost)
	}
}

// TestCandidateSeedStable pins the per-candidate seed derivation: it must
// depend only on the portfolio seed and the candidate name, never on
// position or scheduling order.
func TestCandidateSeedStable(t *testing.T) {
	if candidateSeed(1, "ilp") != candidateSeed(1, "ilp") {
		t.Fatal("candidateSeed not a pure function")
	}
	if candidateSeed(1, "ilp") == candidateSeed(1, "cilk+lru") {
		t.Fatal("different candidates share a seed")
	}
	if candidateSeed(1, "ilp") == candidateSeed(2, "ilp") {
		t.Fatal("portfolio seed ignored")
	}
}
