package portfolio

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"mbsp/internal/dnc"
	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/workloads"
)

// testOpts returns budgets sized for the test suite: small enough to run
// the full candidate set on every instance, large enough for the ILP to
// do real work.
func testOpts() Options {
	return Options{
		Model:             mbsp.Sync,
		ILPTimeLimit:      150 * time.Millisecond,
		LocalSearchBudget: 200,
		Seed:              1,
	}
}

func baseArch(g *graph.DAG) mbsp.Arch {
	return mbsp.Arch{P: 4, R: 3 * g.MinCache(), G: 1, L: 10}
}

// TestPortfolioValidAndBestOnTiny is the core cross-scheduler validation
// suite: on every tiny-dataset workload, every candidate produces a
// schedule that passes mbsp.Validate and yields finite positive values
// under both cost functions, and the portfolio's winner is no worse than
// any individual candidate run on its own.
func TestPortfolioValidAndBestOnTiny(t *testing.T) {
	for _, inst := range workloads.Tiny() {
		arch := baseArch(inst.DAG)
		opts := testOpts()
		res, err := Run(context.Background(), inst.DAG, arch, opts)
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if res.Best == nil || res.BestName == "" {
			t.Fatalf("%s: no best schedule", inst.Name)
		}
		for _, c := range res.Candidates {
			if errors.Is(c.Err, dnc.ErrIncumbentCutoff) {
				// A losing candidate cutting off against the shared
				// incumbent is the portfolio working as intended, not a
				// failure.
				continue
			}
			if c.Err != nil {
				t.Fatalf("%s: candidate %s failed: %v", inst.Name, c.Name, c.Err)
			}
			if err := c.Schedule.Validate(); err != nil {
				t.Fatalf("%s: candidate %s invalid: %v", inst.Name, c.Name, err)
			}
			for _, cost := range []float64{c.SyncCost, c.AsyncCost} {
				if math.IsNaN(cost) || math.IsInf(cost, 0) || cost <= 0 {
					t.Fatalf("%s: candidate %s has degenerate cost %g", inst.Name, c.Name, cost)
				}
			}
			if res.BestCost > c.Cost+1e-9 {
				t.Fatalf("%s: best %g (%s) worse than candidate %s at %g",
					inst.Name, res.BestCost, res.BestName, c.Name, c.Cost)
			}
		}
		// Re-running a single candidate individually with the portfolio's
		// own options must never beat the portfolio.
		for _, cand := range DefaultCandidates(inst.DAG, arch) {
			s, err := cand.Run(context.Background(), inst.DAG, arch, opts)
			if err != nil {
				t.Fatalf("%s: individual %s: %v", inst.Name, cand.Name, err)
			}
			if c := s.Cost(opts.Model); res.BestCost > c+1e-9 {
				t.Fatalf("%s: individual %s cost %g beats portfolio best %g",
					inst.Name, cand.Name, c, res.BestCost)
			}
		}
	}
}

// TestPortfolioAllRegistryDatasets runs the two-stage candidate subset
// (cheap, deterministic) across every dataset in the workload registry,
// validating each schedule under both cost functions. The ILP-based
// candidates are covered on the tiny dataset above; here the point is
// that every registered workload — including the paper-scale ones — is
// schedulable by every applicable pipeline.
func TestPortfolioAllRegistryDatasets(t *testing.T) {
	datasets := map[string][]workloads.Instance{
		"tiny":  workloads.Tiny(),
		"small": workloads.Small(),
	}
	if !testing.Short() {
		datasets["paper-tiny"] = workloads.PaperTiny()
		datasets["paper-small"] = workloads.PaperSmall()
	}
	for dname, insts := range datasets {
		for _, inst := range insts {
			arch := baseArch(inst.DAG)
			opts := testOpts()
			var cheap []Candidate
			for _, c := range DefaultCandidates(inst.DAG, arch) {
				if c.Name != "ilp" && c.Name != "dnc-ilp" {
					cheap = append(cheap, c)
				}
			}
			opts.Candidates = cheap
			res, err := Run(context.Background(), inst.DAG, arch, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", dname, inst.Name, err)
			}
			for _, c := range res.Candidates {
				if c.Err != nil {
					t.Fatalf("%s/%s: candidate %s failed: %v", dname, inst.Name, c.Name, c.Err)
				}
				if err := c.Schedule.Validate(); err != nil {
					t.Fatalf("%s/%s: candidate %s invalid: %v", dname, inst.Name, c.Name, err)
				}
				if c.SyncCost <= 0 || c.AsyncCost <= 0 {
					t.Fatalf("%s/%s: candidate %s degenerate costs %g/%g",
						dname, inst.Name, c.Name, c.SyncCost, c.AsyncCost)
				}
			}
		}
	}
}

// TestPortfolioSingleProcessor checks the P=1 candidate set (DFS
// pipelines + ILP with the exact-pebbler backend).
func TestPortfolioSingleProcessor(t *testing.T) {
	inst, err := workloads.ByName("spmv_N6")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 1, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	res, err := Run(context.Background(), inst.DAG, arch, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.Err != nil {
			t.Fatalf("candidate %s failed: %v", c.Name, c.Err)
		}
	}
	if len(res.Candidates) < 3 {
		t.Fatalf("expected at least dfs×2 + ilp for P=1, got %d candidates", len(res.Candidates))
	}
}
