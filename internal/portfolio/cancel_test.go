package portfolio

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"mbsp/internal/graph"
	"mbsp/internal/mbsp"
	"mbsp/internal/twostage"
	"mbsp/internal/workloads"
)

// waitForGoroutines polls until the goroutine count drops back to (near)
// the baseline, failing the test if workers leak past the run.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		// A small slack absorbs runtime/testing housekeeping goroutines.
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", n, base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPortfolioCancelMidRun cancels the context while schedulers are in
// flight: Run must return promptly with best-so-far results, mark the
// run interrupted, and leak no goroutines. A candidate that blocks until
// cancellation guarantees the cancel strikes mid-run.
func TestPortfolioCancelMidRun(t *testing.T) {
	inst, err := workloads.ByName("spmv_N10")
	if err != nil {
		t.Fatal(err)
	}
	arch := baseArch(inst.DAG)
	opts := testOpts()
	opts.Workers = 2
	opts.Candidates = []Candidate{
		pipelineCandidate("bspg+clairvoyant", func(Options) twostage.Pipeline {
			return twostage.BSPgClairvoyant(arch.G, arch.L)
		}),
		{Name: "blocker", Run: func(ctx context.Context, _ *graph.DAG, _ mbsp.Arch, _ Options) (*mbsp.Schedule, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}},
	}

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(100*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	start := time.Now()
	res, err := Run(ctx, inst.DAG, arch, opts)
	elapsed := time.Since(start)
	if elapsed > 15*time.Second {
		t.Fatalf("Run took %v after cancellation — cancellation did not propagate", elapsed)
	}
	if !res.Interrupted {
		t.Fatal("result not marked interrupted")
	}
	// Best-so-far: the fast baseline completed before the cancel.
	if err != nil {
		t.Fatalf("expected best-so-far result, got %v", err)
	}
	if res.BestName != "bspg+clairvoyant" {
		t.Fatalf("unexpected winner %s", res.BestName)
	}
	if verr := res.Best.Validate(); verr != nil {
		t.Fatalf("best-so-far schedule invalid: %v", verr)
	}
	waitForGoroutines(t, base)
}

// TestPortfolioCancelStopsILP cancels a run whose only candidate is the
// ILP with effectively unbounded budgets: the branch-and-bound loop must
// notice the cancellation and return its best-so-far schedule quickly.
func TestPortfolioCancelStopsILP(t *testing.T) {
	// P=1 k-means is the grinding case: the ILP model fits the solver
	// (under ~2600 rows) but branch-and-bound runs into any time budget.
	inst, err := workloads.ByName("k-means")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 1, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	opts := testOpts()
	opts.ILPTimeLimit = time.Minute
	opts.ILPNodeLimit = 1 << 30
	opts.Candidates = []Candidate{ILPCandidate()}

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(100*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	start := time.Now()
	res, err := Run(ctx, inst.DAG, arch, opts)
	elapsed := time.Since(start)
	if elapsed > 15*time.Second {
		t.Fatalf("Run took %v after cancellation — solver ignored the cancel", elapsed)
	}
	if elapsed < 100*time.Millisecond {
		t.Fatalf("Run finished in %v, before the cancel even fired — not a mid-run cancel", elapsed)
	}
	if !res.Interrupted {
		t.Fatal("result not marked interrupted")
	}
	// The ILP candidate's best-so-far is at minimum its warm start.
	if err != nil {
		if !errors.Is(err, ErrNoSchedule) {
			t.Fatalf("unexpected error: %v", err)
		}
	} else if verr := res.Best.Validate(); verr != nil {
		t.Fatalf("best-so-far schedule invalid: %v", verr)
	}
	waitForGoroutines(t, base)
}

// TestPortfolioCancelMidTreeParallel cancels a run whose ILP candidate is
// searching its tree with a multi-worker relaxation pool: the wave
// workers inside the branch-and-bound engine must notice the cancel, the
// candidate must still return its best-so-far schedule, and — the
// goroutine-leak coverage this test exists for — no tree-level worker may
// outlive the run. The pre-parallel suite only ever cancelled serial
// trees, so a leaked wave worker (blocked in an LP solve that ignores the
// cancel, or a wave that never joins) went unobserved.
func TestPortfolioCancelMidTreeParallel(t *testing.T) {
	// P=1 k-means: the grinding scheduling ILP whose node relaxations run
	// long enough that the cancel reliably strikes mid-wave.
	inst, err := workloads.ByName("k-means")
	if err != nil {
		t.Fatal(err)
	}
	arch := mbsp.Arch{P: 1, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	opts := testOpts()
	opts.ILPTimeLimit = time.Minute
	opts.ILPNodeLimit = 1 << 30
	opts.MIPWorkers = 4
	opts.Candidates = []Candidate{ILPCandidate()}

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(150*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	start := time.Now()
	res, err := Run(ctx, inst.DAG, arch, opts)
	elapsed := time.Since(start)
	if elapsed > 15*time.Second {
		t.Fatalf("Run took %v after cancellation — parallel tree search ignored the cancel", elapsed)
	}
	if elapsed < 150*time.Millisecond {
		t.Fatalf("Run finished in %v, before the cancel even fired — not a mid-tree cancel", elapsed)
	}
	if !res.Interrupted {
		t.Fatal("result not marked interrupted")
	}
	if err != nil {
		if !errors.Is(err, ErrNoSchedule) {
			t.Fatalf("unexpected error: %v", err)
		}
	} else if verr := res.Best.Validate(); verr != nil {
		t.Fatalf("best-so-far schedule invalid: %v", verr)
	}
	// The leak assertion: candidate workers AND the mip wave workers must
	// all be gone.
	waitForGoroutines(t, base)
}

// TestPortfolioPreCancelled runs with an already-cancelled context: no
// candidate may execute, and the error must wrap ErrNoSchedule.
func TestPortfolioPreCancelled(t *testing.T) {
	inst, err := workloads.ByName("spmv_N6")
	if err != nil {
		t.Fatal(err)
	}
	arch := baseArch(inst.DAG)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, inst.DAG, arch, testOpts())
	if !errors.Is(err, ErrNoSchedule) {
		t.Fatalf("want ErrNoSchedule, got %v", err)
	}
	for _, c := range res.Candidates {
		if c.Err == nil {
			t.Fatalf("candidate %s ran under a pre-cancelled context", c.Name)
		}
	}
	waitForGoroutines(t, base)
}

// TestPortfolioSchedulerTimeout gives each candidate a tiny wall-clock
// budget with a huge solver budget: the per-candidate timeout must cut
// ILP-based candidates down to their warm starts, and the run must still
// produce a valid best schedule quickly.
func TestPortfolioSchedulerTimeout(t *testing.T) {
	inst, err := workloads.ByName("spmv_N7")
	if err != nil {
		t.Fatal(err)
	}
	arch := baseArch(inst.DAG)
	opts := testOpts()
	opts.SchedulerTimeout = 50 * time.Millisecond
	opts.ILPTimeLimit = time.Minute
	opts.LocalSearchBudget = 1 << 30

	base := runtime.NumGoroutine()
	start := time.Now()
	res, err := Run(context.Background(), inst.DAG, arch, opts)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("Run took %v — per-scheduler timeout did not bind", elapsed)
	}
	if res.Interrupted {
		t.Fatal("per-candidate timeouts must not mark the portfolio interrupted")
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("best schedule invalid: %v", err)
	}
	if res.Best.Cost(mbsp.Sync) != res.BestCost {
		t.Fatalf("BestCost %g does not match schedule cost %g", res.BestCost, res.Best.Cost(mbsp.Sync))
	}
	waitForGoroutines(t, base)
}
