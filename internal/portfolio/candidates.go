package portfolio

import (
	"context"

	"mbsp/internal/bsp"
	"mbsp/internal/dnc"
	"mbsp/internal/graph"
	"mbsp/internal/ilpsched"
	"mbsp/internal/mbsp"
	"mbsp/internal/memmgr"
	"mbsp/internal/twostage"
)

// Candidate is one scheduler in the portfolio. Run must be safe for
// concurrent use with other candidates on the same DAG (schedulers never
// mutate the input graph) and should honor ctx where it can; fast greedy
// candidates may ignore it.
type Candidate struct {
	Name string
	Run  func(ctx context.Context, g *graph.DAG, arch mbsp.Arch, opts Options) (*mbsp.Schedule, error)
}

// DNCMinNodes gates the divide-and-conquer candidate: below this size a
// single holistic ILP window covers the whole DAG, so the split only adds
// boundary traffic. Exported so the solver benchmark measures the same
// instance set the portfolio's DnC gate selects.
const DNCMinNodes = 24

// DefaultCandidates returns every scheduler applicable to g on arch:
// the two-stage baselines (stage-1 BSPg/Cilk/DFS × clairvoyant/LRU
// eviction), the holistic ILP, and — for DAGs large enough to split —
// its divide-and-conquer variant. For P=1 the multiprocessor stage-1
// schedulers reduce to DFS, so only the DFS pipelines and the ILP run.
func DefaultCandidates(g *graph.DAG, arch mbsp.Arch) []Candidate {
	var cands []Candidate
	if arch.P > 1 {
		cands = append(cands,
			pipelineCandidate("bspg+clairvoyant", func(opts Options) twostage.Pipeline {
				return twostage.BSPgClairvoyant(arch.G, arch.L)
			}),
			pipelineCandidate("bspg+lru", func(opts Options) twostage.Pipeline {
				return twostage.Pipeline{
					Name: "BSPg+LRU",
					Stage1: func(g *graph.DAG, p int) (*bsp.Schedule, error) {
						return bsp.BSPg(g, p, bsp.BSPgOptions{G: arch.G, L: arch.L})
					},
					Policy: memmgr.LRU{},
				}
			}),
			pipelineCandidate("cilk+clairvoyant", func(opts Options) twostage.Pipeline {
				return twostage.Pipeline{
					Name: "Cilk+clairvoyant",
					Stage1: func(g *graph.DAG, p int) (*bsp.Schedule, error) {
						return bsp.Cilk(g, p, candidateSeed(opts.Seed, "cilk+clairvoyant"))
					},
					Policy: memmgr.Clairvoyant{},
				}
			}),
			pipelineCandidate("cilk+lru", func(opts Options) twostage.Pipeline {
				return twostage.Pipeline{
					Name: "Cilk+LRU",
					Stage1: func(g *graph.DAG, p int) (*bsp.Schedule, error) {
						return bsp.Cilk(g, p, candidateSeed(opts.Seed, "cilk+lru"))
					},
					Policy: memmgr.LRU{},
				}
			}),
		)
	}
	cands = append(cands,
		// DFS runs everything on one processor: on P>1 architectures it
		// wins when synchronization and communication dominate compute.
		pipelineCandidate("dfs+clairvoyant", func(opts Options) twostage.Pipeline {
			return twostage.DFSClairvoyant()
		}),
		pipelineCandidate("dfs+lru", func(opts Options) twostage.Pipeline {
			return twostage.Pipeline{
				Name:   "DFS+LRU",
				Stage1: func(g *graph.DAG, p int) (*bsp.Schedule, error) { return bsp.DFS(g), nil },
				Policy: memmgr.LRU{},
			}
		}),
		ILPCandidate(),
	)
	if g.N() >= DNCMinNodes {
		cands = append(cands, DNCCandidate(0))
	}
	return cands
}

// pipelineCandidate wraps a two-stage pipeline as a candidate. The
// pipelines are greedy and fast, so they only consult ctx up front. The
// baseline pipeline (BSPg+clairvoyant; DFS+clairvoyant on P=1) returns
// the run's memoized warm start instead of recomputing it.
func pipelineCandidate(name string, mk func(opts Options) twostage.Pipeline) Candidate {
	return Candidate{Name: name, Run: func(ctx context.Context, g *graph.DAG, arch mbsp.Arch, opts Options) (*mbsp.Schedule, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if sh := opts.shared; sh != nil && sh.warm != nil && name == baselineCandidateName(arch) {
			return sh.warm, nil
		}
		return mk(opts).Run(g, arch)
	}}
}

// ILPCandidate is the holistic ILP scheduler under the portfolio's time
// budget. Cancellation returns its best-so-far schedule (at minimum the
// warm start), never an error. It reuses the run's memoized baseline as
// its warm start and prunes against (and publishes to) the shared
// incumbent.
func ILPCandidate() Candidate {
	return Candidate{Name: "ilp", Run: func(ctx context.Context, g *graph.DAG, arch mbsp.Arch, opts Options) (*mbsp.Schedule, error) {
		ilpOpts := ilpsched.Options{
			Context:           ctx,
			Model:             opts.Model,
			TimeLimit:         opts.ILPTimeLimit,
			NodeLimit:         opts.ILPNodeLimit,
			MIPWorkers:        opts.MIPWorkers,
			LocalSearchBudget: opts.LocalSearchBudget,
			Inject:            opts.Inject,
			LUStats:           opts.LUStats,
			MaxModelRows:      opts.MaxModelRows,
			Seed:              candidateSeed(opts.Seed, "ilp"),
		}
		if sh := opts.shared; sh != nil {
			ilpOpts.WarmStart = sh.warm
			ilpOpts.Incumbent = sh.inc
		}
		s, _, err := ilpsched.Solve(g, arch, ilpOpts)
		return s, err
	}}
}

// DNCCandidate is the divide-and-conquer ILP scheduler; maxPart ≤ 0
// selects the dnc default part size. Under Options.ILPNodeLimit both the
// partitioning ILPs and the per-part scheduling ILPs run node-limited, so
// dnc-ilp joins the byte-identical determinism guarantee; the shared
// incumbent cuts hopeless runs off between parts.
func DNCCandidate(maxPart int) Candidate {
	return Candidate{Name: "dnc-ilp", Run: func(ctx context.Context, g *graph.DAG, arch mbsp.Arch, opts Options) (*mbsp.Schedule, error) {
		dncOpts := dnc.Options{
			Context:            ctx,
			Model:              opts.Model,
			MaxPartSize:        maxPart,
			SubTimeLimit:       opts.ILPTimeLimit,
			SubNodeLimit:       opts.ILPNodeLimit,
			PartitionNodeLimit: opts.ILPNodeLimit,
			MIPWorkers:         opts.MIPWorkers,
			LocalSearchBudget:  opts.LocalSearchBudget / 4,
			Inject:             opts.Inject,
			LUStats:            opts.LUStats,
			MaxModelRows:       opts.MaxModelRows,
			Seed:               candidateSeed(opts.Seed, "dnc-ilp"),
		}
		if sh := opts.shared; sh != nil {
			dncOpts.Incumbent = sh.inc
		}
		s, _, err := dnc.Solve(g, arch, dncOpts)
		return s, err
	}}
}
