// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index E1–E11 and the
// ablations). Each benchmark regenerates the corresponding rows/series
// and reports the headline ratio as a custom metric; absolute costs are
// logged with -v. Budgets are bench-friendly; EXPERIMENTS.md records a
// longer reference run.
package mbsp

import (
	"context"
	"math"
	"testing"
	"time"

	"mbsp/internal/exact"
	"mbsp/internal/experiments"
	"mbsp/internal/graph"
	"mbsp/internal/ilpsched"
	"mbsp/internal/lp"
	model "mbsp/internal/mbsp"
	"mbsp/internal/partition"
	"mbsp/internal/portfolio"
	"mbsp/internal/twostage"
	"mbsp/internal/workloads"
)

// benchCfg returns solver budgets sized for benchmarking.
func benchCfg() experiments.Config {
	cfg := experiments.Base()
	cfg.ILPTimeLimit = 500 * time.Millisecond
	cfg.LocalSearchBudget = 1500
	return cfg
}

func logTable(b *testing.B, t *experiments.Table) {
	b.Helper()
	for _, r := range t.Rows {
		b.Logf("%-20s %v", r.Instance, r.Costs)
	}
}

// E1 — Table 1 and Figure 4's "base" column: two-stage baseline vs the
// holistic ILP scheduler on the tiny dataset (P=4, r=3·r0, g=1, L=10).
func BenchmarkTable1MainComparison(b *testing.B) {
	insts := workloads.Tiny()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table1(insts, cfg)
		if err != nil {
			b.Fatal(err)
		}
		gm := experiments.GeoMean(t.Ratio("ilp", "base"))
		b.ReportMetric(gm, "geomean-ratio")
		if gm > 1.0 {
			b.Fatalf("ILP geomean ratio %g above 1 — warm start guarantee broken", gm)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// E2 — Table 3: the full baseline matrix (BSPg+clairvoyant, our ILP,
// Cilk+LRU, BSP-ILP+clairvoyant, our ILP from the stronger start).
func BenchmarkTable3BaselineMatrix(b *testing.B) {
	insts := workloads.Tiny()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table3(insts, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.GeoMean(t.Ratio("ilp", "base")), "ilp/base")
		b.ReportMetric(experiments.GeoMean(t.Ratio("ilp", "cilk+lru")), "ilp/cilk")
		b.ReportMetric(experiments.GeoMean(t.Ratio("bsp-ilp+ilp", "bsp-ilp")), "ilp/bsp-ilp")
		if i == 0 {
			logTable(b, t)
		}
	}
}

// E3 — Table 4: the parameter sweep (r=5r0, r=r0, P=8, L=0, async).
func BenchmarkTable4ParameterSweep(b *testing.B) {
	insts := workloads.Tiny()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Table4(insts, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range experiments.Table4Variants() {
			gm := experiments.GeoMean(tables[v.Label].Ratio("ilp", "base"))
			b.ReportMetric(gm, v.Label)
			if gm > 1.0 {
				b.Fatalf("variant %s: geomean %g above 1", v.Label, gm)
			}
		}
	}
}

// E4 — Figure 4: the distribution (five-number summaries) of the
// ILP/baseline cost ratios across configurations.
func BenchmarkFigure4Distribution(b *testing.B) {
	insts := workloads.Tiny()
	cfg := benchCfg()
	cfg.ILPTimeLimit = 300 * time.Millisecond
	for i := 0; i < b.N; i++ {
		boxes, err := experiments.Figure4(insts, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, box := range boxes {
			b.ReportMetric(box.Median, "median-"+box.Label)
			if i == 0 {
				b.Logf("%-8s min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f geomean=%.3f",
					box.Label, box.Min, box.Q1, box.Median, box.Q3, box.Max, box.GeoMean)
			}
		}
	}
}

// E5 — Table 2: the divide-and-conquer ILP on the small dataset
// (r=5·r0). The paper's shape: wins on coarse-grained and SpMV
// instances, may lose on exp/kNN.
func BenchmarkTable2DivideAndConquer(b *testing.B) {
	insts := workloads.Small()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table2(insts, cfg, 45, 500*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.GeoMean(t.Ratio("dnc-ilp", "base")), "dnc/base")
		// Partition-friendly families specifically.
		var friendly []float64
		for j, r := range t.Rows {
			switch r.Instance {
			case "simple_pagerank", "snni_graphchall.", "spmv_N25", "spmv_N35":
				friendly = append(friendly, t.Rows[j].Costs[1]/t.Rows[j].Costs[0])
			}
		}
		b.ReportMetric(experiments.GeoMean(friendly), "dnc/base-partition-friendly")
		if i == 0 {
			logTable(b, t)
		}
	}
}

// E6 — the single-processor experiment: red-blue pebbling with compute
// costs; DFS+clairvoyant is a strong baseline the ILP rarely beats.
func BenchmarkSingleProcessorPebbling(b *testing.B) {
	insts := workloads.Tiny()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := experiments.SingleProcessor(insts, cfg)
		if err != nil {
			b.Fatal(err)
		}
		gm := experiments.GeoMean(t.Ratio("ilp", "base"))
		b.ReportMetric(gm, "p1-ilp/base")
		improved := 0
		for _, r := range t.Rows {
			if r.Costs[1] < r.Costs[0]-1e-9 {
				improved++
			}
		}
		b.ReportMetric(float64(improved), "p1-improved-count")
	}
}

// E7 — no-recomputation ablation: prohibiting recomputation can increase
// cost (the paper observes up to 1.4×). Measured on the zipper gadget
// where recomputation provably pays off.
func BenchmarkNoRecomputationAblation(b *testing.B) {
	z := graph.NewZipperGadget(2, 2)
	arch := model.Arch{P: 1, R: 4, G: 6, L: 0}
	warm, err := twostage.DFSClairvoyant().Run(z.DAG, arch)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		with, _, err := ilpsched.Solve(z.DAG, arch, ilpsched.Options{
			WarmStart: warm, TimeLimit: 3 * time.Second, ExtraSteps: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		without, _, err := ilpsched.Solve(z.DAG, arch, ilpsched.Options{
			WarmStart: warm, TimeLimit: 3 * time.Second, ExtraSteps: 4, NoRecompute: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(without.SyncCost()/with.SyncCost(), "norecompute/recompute")
	}
}

// E8 — Theorem 4.1: the two-stage/holistic cost ratio grows linearly in
// the gadget parameter d.
func BenchmarkTheorem41Gap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var prev float64
		for _, d := range []int{3, 6, 12} {
			two, holo, err := TwoStageGapCosts(d, 3*d)
			if err != nil {
				b.Fatal(err)
			}
			ratio := two / holo
			if ratio <= prev {
				b.Fatalf("gap ratio not growing: d=%d ratio=%g prev=%g", d, ratio, prev)
			}
			prev = ratio
			b.ReportMetric(ratio, "ratio-d"+itoa(d))
		}
	}
}

// E9 — Lemmas 5.3/5.4: the synchronous and asynchronous optima diverge;
// the gadget ratios approach P/2 and 4/3.
func BenchmarkSyncAsyncGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r53 := syncGapRatio(b, 6, 200)
		b.ReportMetric(r53, "lemma53-ratio")
		if r53 < 2.0 { // P/2 = 3 as Z→∞; must clearly exceed 2 at Z=200
			b.Fatalf("Lemma 5.3 ratio %g too small", r53)
		}
		r54 := asyncGapRatio(b, 200)
		b.ReportMetric(r54, "lemma54-ratio")
		if r54 < 1.25 { // approaches 4/3
			b.Fatalf("Lemma 5.4 ratio %g too small", r54)
		}
	}
}

// E10 — Lemma 6.1: empty ILP steps do not certify optimality; a longer
// horizon finds strictly cheaper schedules on the zipper gadget.
func BenchmarkEmptyStepLemma(b *testing.B) {
	z := graph.NewZipperGadget(3, 2)
	arch := model.Arch{P: 1, R: 4, G: 6, L: 0}
	for i := 0; i < b.N; i++ {
		res, err := exact.Solve(z.DAG, 4, 6)
		if err != nil {
			b.Fatal(err)
		}
		base, err := twostage.DFSClairvoyant().Run(z.DAG, arch)
		if err != nil {
			b.Fatal(err)
		}
		// The exact optimum uses recomputation and beats the
		// no-recompute baseline — the cost drop a longer ILP horizon can
		// realize.
		b.ReportMetric(base.SyncCost()/res.Cost, "horizon-gain")
		if res.Cost > base.SyncCost() {
			b.Fatal("exact above baseline")
		}
	}
}

// E11 — acyclic bipartitioning ILPs solve to proven optimality quickly
// (the paper: "almost always found the optimum in negligible time").
func BenchmarkAcyclicBipartition(b *testing.B) {
	insts := workloads.Tiny()
	for i := 0; i < b.N; i++ {
		optimal := 0
		for _, inst := range insts {
			_, _, opt, err := partition.Bipartition(inst.DAG, partition.BipartitionOptions{
				TimeLimit: 5 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			if opt {
				optimal++
			}
		}
		b.ReportMetric(float64(optimal)/float64(len(insts)), "proven-optimal-frac")
	}
}

// Ablation: step merging on vs off. The merged formulation reaches the
// same cost with a much smaller model (fewer time steps and rows).
func BenchmarkStepMergingAblation(b *testing.B) {
	g := graph.Diamond()
	arch := model.Arch{P: 1, R: 3 * g.MinCache(), G: 1, L: 0}
	for i := 0; i < b.N; i++ {
		merged, sm, err := ilpsched.Solve(g, arch, ilpsched.Options{TimeLimit: 2 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		base, sb, err := ilpsched.Solve(g, arch, ilpsched.Options{TimeLimit: 2 * time.Second, NoStepMerging: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sm.ModelRows), "rows-merged")
		b.ReportMetric(float64(sb.ModelRows), "rows-unmerged")
		b.ReportMetric(base.SyncCost()/merged.SyncCost(), "unmerged/merged-cost")
		if sm.ModelRows >= sb.ModelRows {
			b.Fatalf("merging did not shrink the model: %d vs %d", sm.ModelRows, sb.ModelRows)
		}
	}
}

// Ablation: warm start on vs off for the MIP search on a micro model.
func BenchmarkWarmStartAblation(b *testing.B) {
	g := graph.Diamond()
	arch := model.Arch{P: 2, R: 3 * g.MinCache(), G: 1, L: 0}
	warm, err := twostage.BSPgClairvoyant(1, 0).Run(g, arch)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		with, sWith, err := ilpsched.Solve(g, arch, ilpsched.Options{
			WarmStart: warm, TimeLimit: 2 * time.Second, DisableLocalSearch: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = with
		b.ReportMetric(float64(sWith.ILPNodes), "nodes-with-warm")
	}
}

// Ablation: clairvoyant vs LRU inside the two-stage converter.
func BenchmarkEvictionPolicyAblation(b *testing.B) {
	insts := workloads.Tiny()
	for i := 0; i < b.N; i++ {
		var cl, lru float64
		for _, inst := range insts {
			arch := model.Arch{P: 4, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
			sc, err := twostage.BSPgClairvoyant(1, 10).Run(inst.DAG, arch)
			if err != nil {
				b.Fatal(err)
			}
			sl, err := twostage.CilkLRU(1).Run(inst.DAG, arch)
			if err != nil {
				b.Fatal(err)
			}
			cl += sc.SyncCost()
			lru += sl.SyncCost()
		}
		b.ReportMetric(cl/lru, "bspg-clair/cilk-lru")
	}
}

// Ablation: ILP vs greedy partitioner inside divide-and-conquer.
func BenchmarkPartitionerAblation(b *testing.B) {
	inst, err := workloads.ByName("spmv_N25")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ri, err := partition.Recursive(inst.DAG, partition.RecursiveOptions{
			MaxPartSize: 45, UseILP: true, TimeLimit: 2 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		rg, err := partition.Recursive(inst.DAG, partition.RecursiveOptions{
			MaxPartSize: 45, UseILP: false,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(ri.CutEdges), "ilp-cut")
		b.ReportMetric(float64(rg.CutEdges), "greedy-cut")
		if ri.CutEdges > rg.CutEdges {
			b.Logf("note: ILP cut %d above greedy %d (time-limited)", ri.CutEdges, rg.CutEdges)
		}
	}
}

// E12 — the concurrent scheduler portfolio: racing every applicable
// scheduler must never lose to the main baseline, and the win comes from
// diversity (different schedulers win on different instances).
func BenchmarkPortfolio(b *testing.B) {
	insts := workloads.Tiny()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		var ratios []float64
		winners := map[string]bool{}
		for _, inst := range insts {
			arch := cfg.Arch(inst.DAG)
			res, err := portfolio.Run(context.Background(), inst.DAG, arch, portfolio.Options{
				Model:             cfg.Model,
				ILPTimeLimit:      cfg.ILPTimeLimit,
				LocalSearchBudget: cfg.LocalSearchBudget,
				Seed:              cfg.Seed,
			})
			if err != nil {
				b.Fatal(err)
			}
			base, err := experiments.Baseline().Run(inst.DAG, arch, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.BestCost > base.Cost(cfg.Model)+1e-9 {
				b.Fatalf("%s: portfolio %g worse than baseline %g", inst.Name, res.BestCost, base.Cost(cfg.Model))
			}
			ratios = append(ratios, res.BestCost/base.Cost(cfg.Model))
			winners[res.BestName] = true
			if i == 0 {
				b.Logf("%-20s best=%-16s cost=%g", inst.Name, res.BestName, res.BestCost)
			}
		}
		gm := experiments.GeoMean(ratios)
		b.ReportMetric(gm, "portfolio/base")
		b.ReportMetric(float64(len(winners)), "distinct-winners")
		if gm > 1.0 {
			b.Fatalf("portfolio geomean ratio %g above 1 — best-of-all guarantee broken", gm)
		}
	}
}

// E13 — solver core micro-benchmark: one cold LP solve of a structured
// assignment-with-side-constraints program, per pricing rule, plus the
// preserved dense reference. Reports simplex iterations as a metric so
// pricing regressions surface without timing noise.
func BenchmarkLPSolve(b *testing.B) {
	p := benchLP(28, 9)
	for _, bc := range []struct {
		name  string
		solve func() lp.Result
	}{
		{"devex", func() lp.Result { return lp.Solve(p, lp.Options{Pricing: lp.PricingDevex}) }},
		{"dantzig", func() lp.Result { return lp.Solve(p, lp.Options{Pricing: lp.PricingDantzig}) }},
		{"dense-reference", func() lp.Result { return lp.SolveDense(p, lp.Options{}) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := bc.solve()
				if res.Status != lp.Optimal {
					b.Fatalf("status=%v", res.Status)
				}
				b.ReportMetric(float64(res.Iters), "simplex-iters")
			}
		})
	}
}

// benchLP builds an n-task × k-machine assignment relaxation with
// capacity side constraints — dense enough to make pricing matter,
// structured like the partitioning/scheduling models.
func benchLP(n, k int) *lp.Problem {
	p := lp.NewProblem(n * k)
	for t := 0; t < n; t++ {
		var row []lp.Coef
		for m := 0; m < k; m++ {
			j := t*k + m
			p.Ub[j] = 1
			p.Obj[j] = float64((t*7+m*13)%11 + 1)
			row = append(row, lp.Coef{Var: j, Val: 1})
		}
		p.AddRow(row, lp.EQ, 1)
	}
	for m := 0; m < k; m++ {
		var row []lp.Coef
		for t := 0; t < n; t++ {
			row = append(row, lp.Coef{Var: t*k + m, Val: float64((t+m)%3 + 1)})
		}
		p.AddRow(row, lp.LE, float64(2*n/k+2))
	}
	return p
}

// E14 — branch-and-bound node throughput on a real partitioning ILP
// (spmv_N10), warm-started versus the cold-start ablation. The headline
// metrics are simplex iterations per node and the warm/cold iteration
// ratio — the quantity BENCH_solver.json tracks across PRs.
func BenchmarkMIPNode(b *testing.B) {
	inst, err := workloads.ByName("spmv_N10")
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		cold bool
	}{{"warm", false}, {"cold", true}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var stats partition.SolverStats
				_, _, _, err := partition.Bipartition(inst.DAG, partition.BipartitionOptions{
					TimeLimit: 30 * time.Second, ColdStartLP: bc.cold, Stats: &stats,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.SimplexIters), "simplex-iters")
				if stats.Nodes > 0 {
					b.ReportMetric(float64(stats.SimplexIters)/float64(stats.Nodes), "iters/node")
				}
			}
		})
	}
}

func itoa(d int) string {
	if d == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for d > 0 {
		i--
		buf[i] = byte('0' + d%10)
		d /= 10
	}
	return string(buf[i:])
}

// syncGapRatio builds the Lemma 5.3 gadget, evaluates the
// asynchronous-optimal superstep placement under the synchronous cost,
// and compares with the aligned placement.
func syncGapRatio(b *testing.B, p int, z float64) float64 {
	b.Helper()
	gg := graph.NewSyncGapGadget(p, z)
	mis, err := buildSyncGapSchedule(gg, false)
	if err != nil {
		b.Fatal(err)
	}
	ali, err := buildSyncGapSchedule(gg, true)
	if err != nil {
		b.Fatal(err)
	}
	// Sanity: asynchronously the two placements tie (they only differ in
	// alignment).
	if math.Abs(mis.AsyncCost()-ali.AsyncCost()) > 1e-9 {
		b.Fatalf("async costs differ: %g vs %g", mis.AsyncCost(), ali.AsyncCost())
	}
	return mis.SyncCost() / ali.SyncCost()
}

func asyncGapRatio(b *testing.B, z float64) float64 {
	b.Helper()
	gg := graph.NewAsyncGapGadget(z)
	syncOpt, err := buildAsyncGapSchedule(gg, true)
	if err != nil {
		b.Fatal(err)
	}
	asyncOpt, err := buildAsyncGapSchedule(gg, false)
	if err != nil {
		b.Fatal(err)
	}
	return syncOpt.AsyncCost() / asyncOpt.AsyncCost()
}
