package mbsp

import (
	"math"
	"testing"

	"mbsp/internal/bsp"
	"mbsp/internal/graph"
	model "mbsp/internal/mbsp"
)

// realizeBSP turns an explicit (processor, superstep) placement into an
// MBSP schedule while preserving the superstep alignment exactly (the
// operational two-stage converter would compress deliberate idling, which
// the Lemma 5.3/5.4 constructions rely on). It assumes r is large enough
// to keep every value resident: no deletions, every computed value is
// saved, and every processor loads a value in the superstep before its
// first local use.
func realizeBSP(b *bsp.Schedule, arch model.Arch) (*model.Schedule, error) {
	g := b.Graph
	s := model.NewSchedule(g, arch)
	order := b.ComputeOrder()
	// needAt[p][t]: values that must be red on p before superstep t's
	// computes (1-based MBSP supersteps; superstep 0 is load-only).
	numSteps := b.NumSteps
	red := make([]map[int]bool, arch.P)
	for p := range red {
		red[p] = map[int]bool{}
	}
	// Superstep 0: load all source values each processor ever consumes.
	st0 := s.AddSuperstep()
	for p := 0; p < arch.P; p++ {
		seen := map[int]bool{}
		for t := 0; t < numSteps; t++ {
			for _, v := range order[p][t] {
				for _, u := range g.Parents(v) {
					if g.IsSource(u) && !seen[u] {
						seen[u] = true
						st0.Procs[p].Load = append(st0.Procs[p].Load, u)
						red[p][u] = true
					}
				}
			}
		}
	}
	for t := 0; t < numSteps; t++ {
		st := s.AddSuperstep()
		for p := 0; p < arch.P; p++ {
			for _, v := range order[p][t] {
				st.Procs[p].Comp = append(st.Procs[p].Comp, model.Op{Kind: model.OpCompute, Node: v})
				red[p][v] = true
			}
			// Save everything computed this superstep (r is unbounded
			// and the lemma architectures have g=0, so this is free and
			// keeps every cross-processor consumer satisfiable).
			for _, v := range order[p][t] {
				st.Procs[p].Save = append(st.Procs[p].Save, v)
			}
		}
		// Load phase: fetch parents needed by the next superstep.
		if t+1 < numSteps {
			for p := 0; p < arch.P; p++ {
				for _, v := range order[p][t+1] {
					for _, u := range g.Parents(v) {
						if !red[p][u] {
							st.Procs[p].Load = append(st.Procs[p].Load, u)
							red[p][u] = true
						}
					}
				}
			}
		}
	}
	return s, s.Validate()
}

// buildSyncGapSchedule realizes the Lemma 5.3 schedules: pair i's chains
// run on processors i and P'+i; with aligned=false every pair computes
// position j in superstep j (the asynchronous optimum), with aligned=true
// pair i starts P'−1−i supersteps later so all heavy nodes share one
// superstep. Architecture: r effectively unbounded, g=0, L=0.
func buildSyncGapSchedule(gg *graph.SyncGapGadget, aligned bool) (*model.Schedule, error) {
	g := gg.DAG
	pp := gg.P / 2
	b := bsp.NewSchedule(g, gg.P)
	for i := 0; i < pp; i++ {
		shift := 0
		if aligned {
			shift = pp - 1 - i
		}
		for j := 0; j < pp; j++ {
			b.Assign(gg.U[i][j], i, shift+j)
			b.Assign(gg.V[i][j], pp+i, shift+j)
		}
	}
	arch := model.Arch{P: gg.P, R: g.TotalMem() + 1, G: 0, L: 0}
	return realizeBSP(b, arch)
}

// buildAsyncGapSchedule realizes the Lemma 5.4 schedules on P=5:
// syncOptimal=true places w with u1,u2 and v1 with u3,u4 (the
// synchronous optimum, cost 4Z−2 in both models); syncOptimal=false
// places v1 and w in the first superstep (asynchronous cost 3Z−1).
func buildAsyncGapSchedule(gg *graph.AsyncGapGadget, syncOptimal bool) (*model.Schedule, error) {
	g := gg.DAG
	b := bsp.NewSchedule(g, 5)
	if syncOptimal {
		b.Assign(gg.U1, 0, 0)
		b.Assign(gg.U2, 1, 0)
		b.Assign(gg.W, 2, 0)
		b.Assign(gg.U3, 0, 1)
		b.Assign(gg.U4, 1, 1)
		b.Assign(gg.V1, 2, 1)
		b.Assign(gg.V2, 2, 2)
		b.Assign(gg.V3, 3, 2)
		b.Assign(gg.V4, 4, 2)
	} else {
		b.Assign(gg.U1, 0, 0)
		b.Assign(gg.U2, 1, 0)
		b.Assign(gg.V1, 2, 0)
		b.Assign(gg.W, 3, 0)
		b.Assign(gg.U3, 0, 1)
		b.Assign(gg.U4, 1, 1)
		b.Assign(gg.V2, 2, 1)
		b.Assign(gg.V3, 3, 1)
		b.Assign(gg.V4, 4, 1)
	}
	arch := model.Arch{P: 5, R: g.TotalMem() + 1, G: 0, L: 0}
	return realizeBSP(b, arch)
}

// TestLemma53SyncAsyncDivergence verifies the Lemma 5.3 construction: the
// two alignments tie asynchronously, but the misaligned one costs ≈ P'·Z
// synchronously against ≈ Z for the aligned one, so the ratio approaches
// P/2 as Z grows.
func TestLemma53SyncAsyncDivergence(t *testing.T) {
	for _, z := range []float64{20, 100, 500} {
		gg := graph.NewSyncGapGadget(6, z)
		mis, err := buildSyncGapSchedule(gg, false)
		if err != nil {
			t.Fatal(err)
		}
		ali, err := buildSyncGapSchedule(gg, true)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mis.AsyncCost()-ali.AsyncCost()) > 1e-9 {
			t.Fatalf("z=%g: async costs differ: %g vs %g", z, mis.AsyncCost(), ali.AsyncCost())
		}
		pp := 3.0
		wantMis := pp * z
		if math.Abs(mis.SyncCost()-wantMis) > 1e-9 {
			t.Fatalf("z=%g: misaligned sync cost %g want %g", z, mis.SyncCost(), wantMis)
		}
		wantAli := z + 2*pp - 2
		if math.Abs(ali.SyncCost()-wantAli) > 1e-9 {
			t.Fatalf("z=%g: aligned sync cost %g want %g", z, ali.SyncCost(), wantAli)
		}
	}
	// Ratio approaches P/2 = 3.
	gg := graph.NewSyncGapGadget(6, 1e6)
	mis, _ := buildSyncGapSchedule(gg, false)
	ali, _ := buildSyncGapSchedule(gg, true)
	if r := mis.SyncCost() / ali.SyncCost(); r < 2.99 {
		t.Fatalf("ratio %g should approach 3", r)
	}
}

// TestLemma54SyncAsyncDivergence verifies the Lemma 5.4 construction: the
// synchronous optimum is a 4/3−ε factor from the asynchronous optimum.
func TestLemma54SyncAsyncDivergence(t *testing.T) {
	z := 1000.0
	gg := graph.NewAsyncGapGadget(z)
	syncOpt, err := buildAsyncGapSchedule(gg, true)
	if err != nil {
		t.Fatal(err)
	}
	asyncOpt, err := buildAsyncGapSchedule(gg, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(syncOpt.SyncCost()-(4*z-2)) > 1e-9 {
		t.Fatalf("sync-optimal sync cost %g want %g", syncOpt.SyncCost(), 4*z-2)
	}
	if math.Abs(syncOpt.AsyncCost()-(4*z-2)) > 1e-9 {
		t.Fatalf("sync-optimal async cost %g want %g", syncOpt.AsyncCost(), 4*z-2)
	}
	if math.Abs(asyncOpt.AsyncCost()-(3*z-1)) > 1e-9 {
		t.Fatalf("async-optimal async cost %g want %g", asyncOpt.AsyncCost(), 3*z-1)
	}
	// The sync-optimal placement also wins synchronously.
	if asyncOpt.SyncCost() <= syncOpt.SyncCost() {
		t.Fatalf("placement B sync cost %g should exceed A's %g", asyncOpt.SyncCost(), syncOpt.SyncCost())
	}
	ratio := syncOpt.AsyncCost() / asyncOpt.AsyncCost()
	if ratio < 4.0/3-0.01 || ratio > 4.0/3+0.01 {
		t.Fatalf("ratio %g should be near 4/3", ratio)
	}
}

// TestTheorem41GapGrowsLinearly asserts the empirical Theorem 4.1 ratio
// grows with d.
func TestTheorem41GapGrowsLinearly(t *testing.T) {
	var ratios []float64
	for _, d := range []int{3, 6, 12} {
		two, holo, err := TwoStageGapCosts(d, 3*d)
		if err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, two/holo)
	}
	for i := 1; i < len(ratios); i++ {
		if ratios[i] <= ratios[i-1] {
			t.Fatalf("gap ratios not increasing: %v", ratios)
		}
	}
	// Doubling d should substantially grow the ratio (linear trend).
	if ratios[2] < 1.5*ratios[0] {
		t.Fatalf("gap growth too weak for a linear trend: %v", ratios)
	}
}
