// Command mbsp-sched schedules a computational DAG on an MBSP
// architecture and prints the schedule and its cost.
//
// Usage:
//
//	mbsp-sched -dag file.dag | -instance spmv_N6
//	           [-method base|cilk|ilp|dnc|exact]
//	           [-portfolio] [-workers 0] [-mip-workers 0]
//	           [-incumbent] [-solver-stats]
//	           [-p 4] [-rfactor 3] [-r 0] [-g 1] [-l 10]
//	           [-model sync|async] [-timeout 5s] [-print] [-json]
//
// With -portfolio, every applicable scheduler races concurrently over a
// bounded worker pool and the cheapest valid schedule wins; -method is
// then ignored. -incumbent (default on) shares a portfolio-wide bound so
// losing candidates cut off early; -solver-stats prints the solver-core
// counters (simplex iterations, warm vs cold LP re-solves) for the
// ILP-based methods. -mip-workers sizes the worker pool *inside* each
// branch-and-bound tree (parallel node relaxations): schedules are
// byte-identical for any value thanks to the solver's deterministic node
// accounting, so the knob trades goroutines for throughput only. 0 picks
// GOMAXPROCS for -method ilp/dnc and an automatic candidate/tree split
// under -portfolio. The DAG comes either from a text file (see
// internal/graph format) or from a named benchmark instance.
//
// With -json, stdout carries a single JSON document in the same shape as
// the scheduling server's POST /v1/schedule response (modulo the
// server-only cache stamp); the human-readable progress lines move to
// stderr. A deterministic run (-portfolio with a node limit, or any
// single method with a fixed seed) emits byte-identical JSON on every
// invocation, which is what makes CLI and server output diffable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"mbsp"
)

func main() {
	var (
		dagFile   = flag.String("dag", "", "DAG file in the text format")
		instance  = flag.String("instance", "", "named benchmark instance (e.g. spmv_N6)")
		method    = flag.String("method", "ilp", "scheduler: base, cilk, ilp, dnc, exact")
		p         = flag.Int("p", 4, "number of processors")
		rfactor   = flag.Float64("rfactor", 3, "fast memory capacity as a multiple of r0")
		rabs      = flag.Float64("r", 0, "absolute fast memory capacity (overrides -rfactor)")
		gcost     = flag.Float64("g", 1, "communication cost per memory unit")
		lcost     = flag.Float64("l", 10, "synchronization cost per superstep")
		model     = flag.String("model", "sync", "cost model: sync or async")
		timeout   = flag.Duration("timeout", 5*time.Second, "solver time limit")
		print     = flag.Bool("print", false, "print the full schedule")
		seed      = flag.Int64("seed", 1, "random seed for heuristics")
		pfolio    = flag.Bool("portfolio", false, "race all applicable schedulers concurrently and keep the best")
		workers   = flag.Int("workers", 0, "portfolio worker pool size (0: GOMAXPROCS)")
		mipWork   = flag.Int("mip-workers", 0, "worker pool size inside each branch-and-bound tree; results are identical for any value (0: GOMAXPROCS for -method ilp/dnc, automatic budget under -portfolio)")
		incumbent = flag.Bool("incumbent", true, "share a portfolio-wide incumbent bound between schedulers so losing candidates cut off early")
		solvStats = flag.Bool("solver-stats", false, "print solver-core counters (simplex iterations, warm/cold LP re-solves) for ILP-based methods")
		deadline  = flag.Duration("deadline", 0, "overall wall-clock deadline; under -portfolio the run degrades gracefully and still prints the best schedule found (0: none)")
		faultSeed = flag.Uint64("fault-seed", 0, "enable the deterministic fault-injection harness with this seed (0: off); same seed, same faults")
		faultMode = flag.String("fault-modes", "all", "comma-separated injected fault classes: cold, singular, latency, cancel, or all")
		faultRate = flag.Float64("fault-rate", 0, "per-decision injection probability (0: default)")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON on stdout (the server response shape); progress lines go to stderr")
	)
	flag.Parse()

	// Under -json, stdout is reserved for the single JSON document.
	var info io.Writer = os.Stdout
	if *jsonOut {
		info = os.Stderr
	}

	g, err := loadDAG(*dagFile, *instance)
	if err != nil {
		fatal(err)
	}
	r := *rfactor * g.MinCache()
	if *rabs > 0 {
		r = *rabs
	}
	arch := mbsp.Arch{P: *p, R: r, G: *gcost, L: *lcost}
	costModel := mbsp.Sync
	if *model == "async" {
		costModel = mbsp.Async
	}
	fmt.Fprintf(info, "dag %s: n=%d m=%d r0=%g\n", g.Name(), g.N(), g.M(), g.MinCache())
	fmt.Fprintf(info, "arch %v, model %v\n", arch, costModel)

	var inject *mbsp.FaultInjector
	if *faultSeed != 0 {
		modes, merr := mbsp.ParseFaultModes(*faultMode)
		if merr != nil {
			fatal(merr)
		}
		inject = mbsp.NewFaultInjector(*faultSeed, *faultRate, 0, modes...)
		fmt.Fprintf(info, "fault injection: %v\n", inject)
	}
	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	var s *mbsp.Schedule
	var res *mbsp.PortfolioResult
	winner := *method
	if *pfolio {
		var perr error
		res, perr = mbsp.SchedulePortfolio(ctx, g, arch, mbsp.PortfolioOptions{
			Model:                  costModel,
			Workers:                *workers,
			MIPWorkers:             *mipWork,
			ILPTimeLimit:           *timeout,
			Seed:                   *seed,
			Inject:                 inject,
			DisableSharedIncumbent: !*incumbent,
		})
		if perr != nil {
			// Anytime contract: only an instance that admits no valid
			// schedule at all (or unusable options) reaches this fatal.
			fatal(perr)
		}
		fmt.Fprintf(info, "portfolio: %d candidates, %d workers, %.2fs total\n",
			len(res.Candidates), res.Workers, res.Elapsed.Seconds())
		for _, c := range res.Candidates {
			if c.Err != nil {
				fmt.Fprintf(info, "  %-18s failed: %v\n", c.Name, c.Err)
				continue
			}
			marker := " "
			if c.Name == res.BestName {
				marker = "*"
			}
			note := ""
			if c.Degraded {
				note = " [degraded]"
			}
			fmt.Fprintf(info, "  %s %-16s cost %-12g (sync %g, async %g) in %.3fs%s\n",
				marker, c.Name, c.Cost, c.SyncCost, c.AsyncCost, c.Elapsed.Seconds(), note)
		}
		if cert := res.Certificate; cert != nil {
			fmt.Fprintf(info, "certificate: %v\n", cert)
			for _, f := range cert.Failed {
				fmt.Fprintf(info, "  failure %-16s %s\n", f.Candidate, f.Kind)
			}
		}
		s = res.Best
		winner = res.BestName
	} else {
		mw := *mipWork
		if mw == 0 {
			mw = runtime.GOMAXPROCS(0)
		}
		s, err = runMethod(info, *method, g, arch, costModel, *timeout, *seed, mw, *solvStats)
		if err != nil {
			fatal(err)
		}
	}
	if err := s.Validate(); err != nil {
		fatal(fmt.Errorf("produced schedule invalid: %w", err))
	}
	fmt.Fprintf(info, "supersteps: %d\n", s.NumSupersteps())
	comp, save, load, del := s.Ops()
	fmt.Fprintf(info, "ops: %d computes, %d saves, %d loads, %d deletes\n", comp, save, load, del)
	fmt.Fprintf(info, "sync cost:  %g\n", s.SyncCost())
	fmt.Fprintf(info, "async cost: %g\n", s.AsyncCost())
	if *jsonOut {
		var resp *mbsp.ScheduleResponse
		if res != nil {
			resp, err = mbsp.NewPortfolioResponse(g, arch, costModel, res)
		} else {
			resp, err = mbsp.NewScheduleResponse(g, arch, costModel, winner, s)
		}
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil {
			fatal(err)
		}
	} else if *print {
		fmt.Print(s)
	}
}

func runMethod(info io.Writer, method string, g *mbsp.DAG, arch mbsp.Arch, costModel mbsp.CostModel, timeout time.Duration, seed int64, mipWorkers int, solvStats bool) (*mbsp.Schedule, error) {
	var s *mbsp.Schedule
	var err error
	switch method {
	case "base":
		s, err = mbsp.ScheduleBaseline(g, arch)
	case "cilk":
		s, err = mbsp.ScheduleCilkLRU(g, arch, seed)
	case "ilp":
		var stats mbsp.ILPStats
		s, stats, err = mbsp.ScheduleILP(g, arch, mbsp.ILPOptions{
			Model: costModel, TimeLimit: timeout, Seed: seed, MIPWorkers: mipWorkers,
		})
		if err == nil {
			fmt.Fprintf(info, "ilp: vars=%d rows=%d status=%s nodes=%d warm=%g final=%g source=%s\n",
				stats.ModelVars, stats.ModelRows, stats.ILPStatus, stats.ILPNodes,
				stats.WarmCost, stats.FinalCost, stats.Source)
			if solvStats {
				fmt.Fprintf(info, "solver: simplex-iters=%d lp-resolves warm=%d cold=%d\n",
					stats.SimplexIters, stats.WarmLPs, stats.ColdLPs)
			}
		}
	case "dnc":
		var stats mbsp.DNCStats
		s, stats, err = mbsp.ScheduleDNC(g, arch, mbsp.DNCOptions{
			Model: costModel, SubTimeLimit: timeout, Seed: seed, MIPWorkers: mipWorkers,
		})
		if err == nil {
			fmt.Fprintf(info, "dnc: parts=%d cut=%d streamline-win=%g\n",
				stats.Parts, stats.CutEdges, stats.StreamlineWin)
			if solvStats {
				warm, cold := stats.PartitionSolver.WarmLPs, stats.PartitionSolver.ColdLPs
				for _, st := range stats.SubILPStats {
					warm += st.WarmLPs
					cold += st.ColdLPs
				}
				fmt.Fprintf(info, "solver: simplex-iters=%d (partition %d) lp-resolves warm=%d cold=%d\n",
					stats.SimplexIters, stats.PartitionSolver.SimplexIters, warm, cold)
			}
		}
	case "exact":
		var res mbsp.ExactResult
		res, err = mbsp.SolveExactP1(g, arch.R, arch.G)
		if err == nil {
			s = res.Schedule
			fmt.Fprintf(info, "exact: optimal cost %g (%d states explored)\n", res.Cost, res.States)
		}
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
	return s, err
}

func loadDAG(file, instance string) (*mbsp.DAG, error) {
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return mbsp.ReadDAG(f)
	case instance != "":
		inst, err := mbsp.InstanceByName(instance)
		if err != nil {
			return nil, err
		}
		return inst.DAG, nil
	default:
		return nil, fmt.Errorf("provide -dag or -instance")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbsp-sched:", err)
	os.Exit(1)
}
