// Command mbsp-bench reproduces the paper's evaluation: Tables 1–4,
// Figure 4, and the single-processor experiment, on the bundled datasets.
//
// Usage:
//
//	mbsp-bench [-experiment all|table1|table2|table3|table4|figure4|p1|portfolio|solver|chaos]
//	           [-dataset tiny|paper-tiny|paper-small] [-timeout 2s] [-budget 2000]
//	           [-workers 0] [-mip-workers 0] [-incumbent]
//	           [-deadline 0] [-fault-seed 0] [-fault-modes all] [-fault-rate 0]
//	           [-checkpoint cells.ckpt] [-csv out.csv] [-json out.json]
//	           [-baseline old.json]
//
// The experiment grid (instances × methods) runs concurrently over
// -workers goroutines (0: GOMAXPROCS) with deterministic, ordered result
// collection; the default is sequential because concurrent solvers share
// the wall clock, making time-limited ILP numbers incomparable with
// sequential runs. -mip-workers additionally parallelizes the node
// relaxations *inside* each branch-and-bound tree; unlike -workers it
// never changes any result (deterministic node accounting in the
// solver). -checkpoint journals every completed grid cell to a
// crash-safe record log (internal/persist) and resumes completed cells
// on rerun: a killed grid run picks up where it left off and renders
// the identical merged table. The portfolio experiment races every applicable scheduler
// per instance and reports per-scheduler cost/timing; -json writes its
// results as JSON (scripts/verify.sh tracks BENCH_portfolio.json across
// PRs). The solver experiment measures the warm-started solver core:
// total simplex iterations across the branch-and-bound trees the
// registry workloads search, warm-started versus cold-started, failing
// if the warm path stops winning or proven-optimal results diverge — and
// the chaos experiment runs the anytime portfolio under a short -deadline
// with every fault-injection mode enabled in turn (-fault-seed seeds the
// deterministic harness), failing unless every instance still yields a
// valid schedule with a populated certificate — and
// the parallel engine: the same trees re-searched serially versus with a
// -mip-workers pool (default 4), failing on any divergence in partition,
// node count or iteration count, and on a node-throughput regression
// against -baseline (scripts/bench.sh tracks BENCH_solver.json). Budgets
// default to second-scale runs; raise -timeout and -budget (and use
// -dataset paper-tiny or paper-small) for runs closer to the paper's
// 60-minute solver budget.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"slices"
	"time"

	"mbsp/internal/experiments"
	"mbsp/internal/faultinject"
	"mbsp/internal/ilpsched"
	"mbsp/internal/lp"
	"mbsp/internal/mbsp"
	"mbsp/internal/partition"
	"mbsp/internal/portfolio"
	"mbsp/internal/workloads"
)

func main() {
	var (
		exp       = flag.String("experiment", "all", "which experiment: all, table1, table2, table3, table4, figure4, p1, portfolio, solver, chaos")
		dataset   = flag.String("dataset", "tiny", "dataset for table1/3/4/figure4/portfolio/solver: tiny, paper-tiny or paper-small")
		timeout   = flag.Duration("timeout", 2*time.Second, "ILP time limit per instance")
		budget    = flag.Int("budget", 2000, "local-search evaluation budget")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 1, "concurrent grid cells / portfolio schedulers (0: GOMAXPROCS); default sequential — concurrent solvers share the wall clock, so parallel table numbers are not comparable with sequential runs")
		mipWork   = flag.Int("mip-workers", 0, "worker pool size inside each branch-and-bound tree; never changes results (0: serial for the grid, automatic budget for portfolio, 4 for the solver experiment's parallel leg)")
		incumbent = flag.Bool("incumbent", true, "share a portfolio-wide incumbent bound between schedulers so losing candidates cut off early")
		deadline  = flag.Duration("deadline", 0, "wall-clock deadline per portfolio/chaos instance; runs degrade gracefully instead of failing (0: none)")
		faultSeed = flag.Uint64("fault-seed", 0, "seed for the deterministic fault-injection harness (0: off for portfolio, 1 for chaos); same seed, same faults")
		faultMode = flag.String("fault-modes", "all", "comma-separated injected fault classes: cold, singular, latency, cancel, torn, short, flip, solver, fs, or all")
		faultRate = flag.Float64("fault-rate", 0, "per-decision injection probability (0: default)")
		chkpt     = flag.String("checkpoint", "", "journal completed (instance, method) grid cells to this file and resume them on rerun; tables render identically whether a cell was computed or resumed")
		csvOut    = flag.String("csv", "", "also write the last table as CSV to this file")
		jsonOut   = flag.String("json", "", "write portfolio/solver experiment results as JSON to this file")
		baseline  = flag.String("baseline", "", "previous solver-experiment JSON: fail if the parallel node-throughput speedup regresses against it")
	)
	flag.Parse()

	cfg := experiments.Base()
	cfg.ILPTimeLimit = *timeout
	cfg.LocalSearchBudget = *budget
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.MIPWorkers = *mipWork

	if *chkpt != "" {
		cp, err := experiments.OpenCheckpoint(*chkpt)
		if err != nil {
			fatal(err)
		}
		defer cp.Close()
		if cp.Restored() > 0 || cp.Corrupt() > 0 {
			fmt.Printf("checkpoint %s: resuming %d completed cells (%d corrupt records dropped)\n",
				*chkpt, cp.Restored(), cp.Corrupt())
		}
		cfg.Checkpoint = cp
	}

	var insts []workloads.Instance
	switch *dataset {
	case "tiny":
		insts = workloads.Tiny()
	case "paper-tiny":
		insts = workloads.PaperTiny()
	case "paper-small":
		insts = workloads.PaperSmall()
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}

	var last *experiments.Table
	run := func(name string, f func() (*experiments.Table, error)) {
		start := time.Now()
		t, err := f()
		if err != nil {
			fatal(err)
		}
		t.Render(os.Stdout)
		fmt.Printf("(%s took %.1fs)\n\n", name, time.Since(start).Seconds())
		last = t
	}

	switch *exp {
	case "all":
		run("table1", func() (*experiments.Table, error) { return experiments.Table1(insts, cfg) })
		run("table3", func() (*experiments.Table, error) { return experiments.Table3(insts, cfg) })
		runTable4(insts, cfg)
		runFigure4(insts, cfg)
		run("table2", func() (*experiments.Table, error) {
			return experiments.Table2(workloads.Small(), cfg, 45, *timeout)
		})
		run("p1", func() (*experiments.Table, error) { return experiments.SingleProcessor(insts, cfg) })
	case "table1":
		run("table1", func() (*experiments.Table, error) { return experiments.Table1(insts, cfg) })
	case "table2":
		run("table2", func() (*experiments.Table, error) {
			return experiments.Table2(workloads.Small(), cfg, 45, *timeout)
		})
	case "table3":
		run("table3", func() (*experiments.Table, error) { return experiments.Table3(insts, cfg) })
	case "table4":
		runTable4(insts, cfg)
	case "figure4":
		runFigure4(insts, cfg)
	case "p1":
		run("p1", func() (*experiments.Table, error) { return experiments.SingleProcessor(insts, cfg) })
	case "portfolio":
		var inj *faultinject.Injector
		if *faultSeed != 0 {
			inj = mustInjector(*faultSeed, *faultRate, *faultMode)
		}
		runPortfolio(insts, cfg, *dataset, *workers, *mipWork, *incumbent, *deadline, inj, *jsonOut)
	case "solver":
		runSolver(insts, *dataset, *timeout, *mipWork, *jsonOut, *baseline)
	case "chaos":
		seed := *faultSeed
		if seed == 0 {
			seed = 1
		}
		runChaos(insts, cfg, *workers, *mipWork, *deadline, seed, *faultRate, *faultMode)
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}

	if *csvOut != "" && last != nil {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := last.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *csvOut)
	}
}

func runTable4(insts []workloads.Instance, cfg experiments.Config) {
	start := time.Now()
	tables, err := experiments.Table4(insts, cfg)
	if err != nil {
		fatal(err)
	}
	for _, v := range experiments.Table4Variants() {
		tables[v.Label].Render(os.Stdout)
		fmt.Println()
	}
	fmt.Printf("(table4 took %.1fs)\n\n", time.Since(start).Seconds())
}

func runFigure4(insts []workloads.Instance, cfg experiments.Config) {
	start := time.Now()
	boxes, err := experiments.Figure4(insts, cfg)
	if err != nil {
		fatal(err)
	}
	experiments.RenderBoxes(os.Stdout, boxes)
	fmt.Printf("(figure4 took %.1fs)\n\n", time.Since(start).Seconds())
}

// portfolioJSON is the schema of -json output: one entry per instance
// plus aggregate timing, consumed by scripts/verify.sh to track the
// portfolio's performance trajectory across PRs.
type portfolioJSON struct {
	Dataset      string                  `json:"dataset"`
	Workers      int                     `json:"workers"`
	ILPTimeLimit string                  `json:"ilp_time_limit"`
	Seed         int64                   `json:"seed"`
	TotalSec     float64                 `json:"total_seconds"`
	Instances    []portfolioInstanceJSON `json:"instances"`
}

type portfolioInstanceJSON struct {
	Instance   string               `json:"instance"`
	Best       string               `json:"best"`
	BestCost   float64              `json:"best_cost"`
	ElapsedSec float64              `json:"elapsed_seconds"`
	Rung       string               `json:"rung,omitempty"`
	Gap        float64              `json:"gap,omitempty"`
	Failed     int                  `json:"failed,omitempty"`
	Candidates []portfolioCandsJSON `json:"candidates"`
}

type portfolioCandsJSON struct {
	Name       string  `json:"name"`
	Cost       float64 `json:"cost,omitempty"`
	ElapsedSec float64 `json:"elapsed_seconds"`
	Error      string  `json:"error,omitempty"`
}

// runPortfolio races the full scheduler portfolio on every instance under
// the anytime contract and reports per-scheduler cost and timing plus the
// win distribution; with -deadline or -fault-seed set, degraded runs still
// produce a schedule and the certificate ledger is reported.
func runPortfolio(insts []workloads.Instance, cfg experiments.Config, dataset string, workers, mipWorkers int, incumbent bool, deadline time.Duration, inj *faultinject.Injector, jsonPath string) {
	start := time.Now()
	out := portfolioJSON{
		Dataset:      dataset,
		ILPTimeLimit: cfg.ILPTimeLimit.String(), Seed: cfg.Seed,
	}
	wins := map[string]int{}
	fmt.Println("Portfolio: best-of-all-schedulers per instance")
	if inj != nil {
		fmt.Printf("fault injection: %v\n", inj)
	}
	fmt.Printf("%-20s%-18s%14s%10s\n", "Instance", "winner", "cost", "time")
	for _, inst := range insts {
		arch := cfg.Arch(inst.DAG)
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if deadline > 0 {
			ctx, cancel = context.WithTimeout(ctx, deadline)
		}
		res, err := portfolio.RunAnytime(ctx, inst.DAG, arch, portfolio.Options{
			Model:                  cfg.Model,
			Workers:                workers,
			MIPWorkers:             mipWorkers,
			ILPTimeLimit:           cfg.ILPTimeLimit,
			LocalSearchBudget:      cfg.LocalSearchBudget,
			Seed:                   cfg.Seed,
			Inject:                 inj,
			DisableSharedIncumbent: !incumbent,
		})
		cancel()
		if err != nil {
			fatal(fmt.Errorf("portfolio on %s: %w", inst.Name, err))
		}
		out.Workers = res.Workers
		wins[res.BestName]++
		fmt.Printf("%-20s%-18s%14.4g%9.2fs\n", inst.Name, res.BestName, res.BestCost, res.Elapsed.Seconds())
		entry := portfolioInstanceJSON{
			Instance: inst.Name, Best: res.BestName, BestCost: res.BestCost,
			ElapsedSec: res.Elapsed.Seconds(),
		}
		if cert := res.Certificate; cert != nil {
			entry.Rung = cert.Rung
			entry.Gap = cert.Gap
			entry.Failed = len(cert.Failed)
			if cert.FallbackUsed || len(cert.Failed) > 0 {
				fmt.Printf("  certificate: %v\n", cert)
			}
		}
		for _, c := range res.Candidates {
			cj := portfolioCandsJSON{Name: c.Name, ElapsedSec: c.Elapsed.Seconds()}
			if c.Err != nil {
				cj.Error = c.Err.Error()
			} else {
				cj.Cost = c.Cost
			}
			entry.Candidates = append(entry.Candidates, cj)
		}
		out.Instances = append(out.Instances, entry)
	}
	out.TotalSec = time.Since(start).Seconds()
	fmt.Printf("wins by scheduler: %v\n", wins)
	fmt.Printf("(portfolio took %.1fs)\n\n", out.TotalSec)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", jsonPath)
	}
}

// mustInjector builds a fault injector from the CLI flags or exits.
func mustInjector(seed uint64, rate float64, modeList string) *faultinject.Injector {
	modes, err := faultinject.ParseModes(modeList)
	if err != nil {
		fatal(err)
	}
	return faultinject.New(seed, rate, 0, modes...)
}

// runChaos is the acceptance harness for the anytime contract: for every
// enabled fault-injection mode in turn (and once with all modes at once
// when more than one is enabled), it runs the anytime portfolio on every
// instance under a short wall-clock deadline and fails unless each run
// returns a valid schedule with a populated certificate — never an error.
// The injector is seeded, so a failing (mode, instance, seed) triple
// reproduces exactly.
func runChaos(insts []workloads.Instance, cfg experiments.Config, workers, mipWorkers int, deadline time.Duration, seed uint64, rate float64, modeList string) {
	if deadline <= 0 {
		deadline = 50 * time.Millisecond
	}
	parsed, err := faultinject.ParseModes(modeList)
	if err != nil {
		fatal(err)
	}
	// The portfolio never consults the filesystem modes (those belong to
	// internal/persist, exercised by crash_smoke.sh and the persist
	// tests), so legs injecting only them would assert nothing here.
	var modes []faultinject.Mode
	for _, m := range parsed {
		switch m {
		case faultinject.TornWrite, faultinject.ShortWrite, faultinject.ChecksumFlip:
			fmt.Printf("note: skipping filesystem fault mode %v (not consumed by the portfolio; see crash_smoke.sh)\n", m)
		default:
			modes = append(modes, m)
		}
	}
	if len(modes) == 0 {
		fatal(fmt.Errorf("chaos experiment: no solver fault modes selected (got %q)", modeList))
	}
	legs := make([][]faultinject.Mode, 0, len(modes)+1)
	for _, m := range modes {
		legs = append(legs, []faultinject.Mode{m})
	}
	if len(modes) > 1 {
		legs = append(legs, modes)
	}
	start := time.Now()
	failures := 0
	fmt.Printf("Chaos: anytime portfolio under %v deadline, fault seed %d\n", deadline, seed)
	for _, leg := range legs {
		inj := faultinject.New(seed, rate, 0, leg...)
		fmt.Printf("-- injecting %v\n", inj)
		for _, inst := range insts {
			arch := cfg.Arch(inst.DAG)
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			res, err := portfolio.RunAnytime(ctx, inst.DAG, arch, portfolio.Options{
				Model:        cfg.Model,
				Workers:      workers,
				MIPWorkers:   mipWorkers,
				ILPTimeLimit: cfg.ILPTimeLimit,
				Seed:         cfg.Seed,
				Inject:       inj,
			})
			cancel()
			switch {
			case err != nil:
				fmt.Printf("%-20s ANYTIME VIOLATION: error %v\n", inst.Name, err)
				failures++
				continue
			case res.Best == nil:
				fmt.Printf("%-20s ANYTIME VIOLATION: nil schedule\n", inst.Name)
				failures++
				continue
			case res.Certificate == nil:
				fmt.Printf("%-20s ANYTIME VIOLATION: nil certificate\n", inst.Name)
				failures++
				continue
			}
			if verr := res.Best.Validate(); verr != nil {
				fmt.Printf("%-20s ANYTIME VIOLATION: invalid schedule: %v\n", inst.Name, verr)
				failures++
				continue
			}
			fmt.Printf("%-20s%-18s %v\n", inst.Name, res.BestName, res.Certificate)
		}
	}
	fmt.Printf("(chaos took %.1fs)\n\n", time.Since(start).Seconds())
	if failures > 0 {
		fatal(fmt.Errorf("chaos experiment: %d anytime-contract violations", failures))
	}
}

// solverJSON is the schema of the solver experiment's -json output
// (scripts/bench.sh tracks BENCH_solver.json across PRs): total simplex
// iterations across the branch-and-bound trees the dataset's workloads
// search — the warm-started dual-simplex path versus the cold-start
// ablation — plus the parallel tree-search leg: the same trees searched
// serially versus with a bounded worker pool, which must agree node for
// node (deterministic node accounting) while lifting node throughput.
type solverJSON struct {
	Dataset                string               `json:"dataset"`
	WarmIters              int                  `json:"warm_simplex_iters"`
	ColdIters              int                  `json:"cold_simplex_iters"`
	SpeedupIters           float64              `json:"iteration_speedup"`
	WarmSeconds            float64              `json:"warm_seconds"`
	ColdSeconds            float64              `json:"cold_seconds"`
	WarmLPs                int                  `json:"warm_lps"`
	ColdRestartLPs         int                  `json:"cold_restart_lps"`
	GoMaxProcs             int                  `json:"gomaxprocs"`
	ParallelWorkers        int                  `json:"parallel_workers"`
	BBNodes                int                  `json:"bb_nodes"`
	SerialSeconds          float64              `json:"serial_seconds"`
	ParallelSeconds        float64              `json:"parallel_seconds"`
	SerialNodeThroughput   float64              `json:"serial_node_throughput"`
	ParallelNodeThroughput float64              `json:"parallel_node_throughput"`
	ParallelSpeedup        float64              `json:"parallel_speedup"`
	Degenerate             *degenerateJSON      `json:"degenerate,omitempty"`
	LU                     *luJSON              `json:"lu,omitempty"`
	Instances              []solverInstanceJSON `json:"instances"`
}

// degenerateJSON records the degenerate-model leg: the P=1 k-means
// scheduling ILP whose massively degenerate relaxations used to stall
// the warm dual re-solves into cold fallbacks (the ROADMAP open item
// fixed by the Harris/BFRT ratio tests + EXPAND perturbation in
// internal/lp). The node limit binds, so every count is deterministic;
// the no-perturbation ablation re-searches the same tree with
// perturbation off to keep the before/after ratio visible across PRs.
type degenerateJSON struct {
	Instance       string  `json:"instance"`
	BBNodes        int     `json:"bb_nodes"`
	SimplexIters   int     `json:"simplex_iters"`
	CleanupIters   int     `json:"cleanup_iters"`
	WarmLPs        int     `json:"warm_lps"`
	ColdLPs        int     `json:"cold_lps"`
	PerturbedLPs   int     `json:"perturbed_lps"`
	NoPerturbIters int     `json:"noperturb_simplex_iters"`
	NoPerturbCold  int     `json:"noperturb_cold_lps"`
	Seconds        float64 `json:"seconds"`
}

// luJSON records the sparse-LU leg: a registry scheduling model beyond
// the former dense-inverse row ceiling (3000) enters tree search under a
// binding node limit, and the factorization counters — fill-in,
// refactorization count, eta updates, hot/replay reuse, and the share of
// wall time spent in triangular solves — are tracked across PRs. The
// node limit binds, so every count except the timings is deterministic.
type luJSON struct {
	Instance      string  `json:"instance"`
	ModelRows     int     `json:"model_rows"`
	BBNodes       int     `json:"bb_nodes"`
	SimplexIters  int     `json:"simplex_iters"`
	Refactors     int64   `json:"refactors"`
	Replays       int64   `json:"replays"`
	HotSolves     int64   `json:"hot_solves"`
	EtaPivots     int64   `json:"eta_pivots"`
	Ftrans        int64   `json:"ftrans"`
	Btrans        int64   `json:"btrans"`
	FillNnz       int64   `json:"fill_nnz"`
	BasisNnz      int64   `json:"basis_nnz"`
	FillRatio     float64 `json:"fill_ratio"`
	FactorSeconds float64 `json:"factor_seconds"`
	SolveSeconds  float64 `json:"solve_seconds"` // FTRAN + BTRAN time
	FtranShare    float64 `json:"ftran_time_share"`
	Seconds       float64 `json:"seconds"`
}

type solverInstanceJSON struct {
	Instance  string  `json:"instance"`
	Nodes     int     `json:"nodes"`
	WarmIters int     `json:"warm_simplex_iters"`
	ColdIters int     `json:"cold_simplex_iters"`
	Ratio     float64 `json:"iteration_ratio"`
	WarmCut   int     `json:"warm_cut"`
	ColdCut   int     `json:"cold_cut"`
	Optimal   bool    `json:"both_proven_optimal"`
	// Parallel leg: identical trees by construction, so only size and
	// timing are recorded.
	BBNodes         int     `json:"bb_nodes"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// runSolver measures the warm-started solver core on the branch-and-bound
// trees the dataset's workloads actually search — the DnC partitioning
// ILPs — and cross-checks the two paths: proven-optimal cut sizes must
// agree, and the warm path must use fewer total simplex iterations. It
// then re-searches the same trees with a parallel worker pool, using the
// warm leg — which is exactly the serial engine — as the baseline: the
// two runs must agree bit for bit (partition, node count, iteration
// count — the deterministic-node-accounting gate), and the parallel
// run's node throughput is recorded and compared against -baseline. Any
// divergence or regression exits nonzero, so scripts/verify.sh can gate
// on it.
func runSolver(insts []workloads.Instance, dataset string, timeout time.Duration, mipWorkers int, jsonPath, baselinePath string) {
	if mipWorkers <= 0 {
		mipWorkers = 4
	}
	out := solverJSON{Dataset: dataset, GoMaxProcs: runtime.GOMAXPROCS(0), ParallelWorkers: mipWorkers}
	fmt.Println("Solver core: warm-started vs cold-started branch and bound")
	fmt.Printf("%-20s%6s%12s%12s%8s%10s\n", "Instance", "n", "warm-iters", "cold-iters", "ratio", "cut w/c")
	diverged := false
	parDiverged := false
	// The regression gate only compares instances both paths solved to
	// proven optimality: a TimeLimit-truncated run reports a truncated
	// iteration count for a different tree, which would make the
	// comparison meaningless either way.
	gateWarm, gateCold := 0, 0
	for _, inst := range insts {
		if inst.DAG.N() < portfolio.DNCMinNodes {
			continue // below the portfolio's DnC gate; no partitioning tree
		}
		var warmStats, coldStats partition.SolverStats
		warmStart := time.Now()
		warmPart, warmCut, warmOpt, err := partition.Bipartition(inst.DAG, partition.BipartitionOptions{
			TimeLimit: timeout, Stats: &warmStats,
		})
		if err != nil {
			fatal(fmt.Errorf("solver experiment on %s (warm): %w", inst.Name, err))
		}
		warmElapsed := time.Since(warmStart)
		out.WarmSeconds += warmElapsed.Seconds()
		coldStart := time.Now()
		_, coldCut, coldOpt, err := partition.Bipartition(inst.DAG, partition.BipartitionOptions{
			TimeLimit: timeout, ColdStartLP: true, Stats: &coldStats,
		})
		if err != nil {
			fatal(fmt.Errorf("solver experiment on %s (cold): %w", inst.Name, err))
		}
		out.ColdSeconds += time.Since(coldStart).Seconds()
		entry := solverInstanceJSON{
			Instance: inst.Name, Nodes: inst.DAG.N(),
			WarmIters: warmStats.SimplexIters, ColdIters: coldStats.SimplexIters,
			WarmCut: warmCut, ColdCut: coldCut, Optimal: warmOpt && coldOpt,
		}
		if entry.WarmIters > 0 {
			entry.Ratio = float64(entry.ColdIters) / float64(entry.WarmIters)
		}
		out.WarmIters += entry.WarmIters
		out.ColdIters += entry.ColdIters
		out.WarmLPs += warmStats.WarmLPs
		out.ColdRestartLPs += warmStats.ColdLPs
		if entry.Optimal {
			gateWarm += entry.WarmIters
			gateCold += entry.ColdIters
		}

		// Parallel leg: the warm run above already *is* the serial engine
		// (Workers≤1, warm-started, node-limit bound), so it doubles as
		// the serial baseline — only the worker-pool run re-searches the
		// tree, under the same -timeout wall clock (the default node
		// limit is what binds deterministically; the clock is a
		// backstop). Everything the two searches report must agree
		// exactly — unless a leg actually ran into the clock, in which
		// case the trees were cut at nondeterministic wall-clock points
		// and comparing them would misreport the documented time-cut
		// nondeterminism as a node-accounting bug.
		var parStats partition.SolverStats
		parStart := time.Now()
		parPart, parCut, parOpt, err := partition.Bipartition(inst.DAG, partition.BipartitionOptions{
			TimeLimit: timeout, Workers: mipWorkers, Stats: &parStats,
		})
		if err != nil {
			fatal(fmt.Errorf("solver experiment on %s (parallel): %w", inst.Name, err))
		}
		parElapsed := time.Since(parStart)
		entry.SerialSeconds = warmElapsed.Seconds()
		entry.ParallelSeconds = parElapsed.Seconds()
		entry.BBNodes = warmStats.Nodes
		if entry.ParallelSeconds > 0 {
			entry.ParallelSpeedup = entry.SerialSeconds / entry.ParallelSeconds
		}
		if clockCut := timeout * 9 / 10; warmElapsed > clockCut || parElapsed > clockCut {
			// The two legs searched different, wall-clock-cut trees:
			// neither the divergence check nor the throughput totals (the
			// speedup gates' input) can use this instance.
			fmt.Printf("  note: %s ran into the %s wall-clock backstop, divergence check and throughput totals skip it (time cuts are nondeterministic by contract)\n",
				inst.Name, timeout)
		} else {
			out.BBNodes += warmStats.Nodes
			out.SerialSeconds += entry.SerialSeconds
			out.ParallelSeconds += entry.ParallelSeconds
			if !slices.Equal(warmPart, parPart) || warmCut != parCut || warmOpt != parOpt ||
				warmStats != parStats {
				fmt.Printf("  PARALLEL DIVERGENCE: serial cut=%d nodes=%d iters=%d vs %d-worker cut=%d nodes=%d iters=%d\n",
					warmCut, warmStats.Nodes, warmStats.SimplexIters,
					mipWorkers, parCut, parStats.Nodes, parStats.SimplexIters)
				parDiverged = true
			}
		}

		out.Instances = append(out.Instances, entry)
		fmt.Printf("%-20s%6d%12d%12d%8.2f%7d/%d\n",
			inst.Name, entry.Nodes, entry.WarmIters, entry.ColdIters, entry.Ratio, warmCut, coldCut)
		if warmOpt && coldOpt && warmCut != coldCut {
			fmt.Printf("  DIVERGENCE: both proven optimal but cuts differ (%d vs %d)\n", warmCut, coldCut)
			diverged = true
		}
	}
	if len(out.Instances) == 0 {
		fatal(fmt.Errorf("solver experiment: dataset %q has no partitionable instances", dataset))
	}
	runDegenerateLeg(&out)
	runLULeg(&out)
	if out.WarmIters > 0 {
		out.SpeedupIters = float64(out.ColdIters) / float64(out.WarmIters)
	}
	if out.SerialSeconds > 0 {
		out.SerialNodeThroughput = float64(out.BBNodes) / out.SerialSeconds
	}
	if out.ParallelSeconds > 0 {
		out.ParallelNodeThroughput = float64(out.BBNodes) / out.ParallelSeconds
		out.ParallelSpeedup = out.SerialSeconds / out.ParallelSeconds
	}
	fmt.Printf("total: warm=%d cold=%d simplex iterations (%.2fx fewer), warm %.2fs vs cold %.2fs\n",
		out.WarmIters, out.ColdIters, out.SpeedupIters, out.WarmSeconds, out.ColdSeconds)
	fmt.Printf("parallel: %d B&B nodes per tree set, serial %.2fs (%.0f nodes/s) vs %d workers %.2fs (%.0f nodes/s): %.2fx node throughput on GOMAXPROCS=%d\n",
		out.BBNodes, out.SerialSeconds, out.SerialNodeThroughput,
		out.ParallelWorkers, out.ParallelSeconds, out.ParallelNodeThroughput,
		out.ParallelSpeedup, out.GoMaxProcs)

	if diverged {
		fatal(fmt.Errorf("solver experiment: warm/cold divergence on proven-optimal instances"))
	}
	if parDiverged {
		fatal(fmt.Errorf("solver experiment: Workers=%d output diverged from Workers=1 — deterministic node accounting is broken", mipWorkers))
	}
	if gateCold > 0 && gateWarm >= gateCold {
		fatal(fmt.Errorf("solver experiment: warm path used %d iterations vs %d cold on proven-optimal instances — warm start regressed",
			gateWarm, gateCold))
	}
	// Throughput gates. Wall-clock speedup needs real CPUs — on a runtime
	// narrower than the pool the parallel leg still proves determinism,
	// but a speedup gate would only measure scheduler overhead — and a
	// workload big enough to amortize per-wave spawn/join overhead, so
	// the absolute gate arms only when both hold; below the workload
	// floor (the tiny dataset's trees are ~10 nodes each, and even many
	// nodes searched in under two seconds are noise-dominated) a weak
	// speedup is reported loudly but the hard gate is the
	// baseline-relative regression check below.
	switch {
	case out.GoMaxProcs < 4:
		fmt.Printf("note: GOMAXPROCS=%d < 4, absolute speedup gate skipped (determinism gate still enforced)\n", out.GoMaxProcs)
	case out.SerialSeconds < 2 || out.BBNodes < 5000:
		if out.ParallelSpeedup < 1.5 {
			fmt.Printf("warning: %d workers lifted node throughput only %.2fx on a %d-wide runtime — workload too small (%d nodes, %.2fs serial) for the absolute gate\n",
				out.ParallelWorkers, out.ParallelSpeedup, out.GoMaxProcs, out.BBNodes, out.SerialSeconds)
		}
	case out.ParallelSpeedup < 1.5:
		fatal(fmt.Errorf("solver experiment: %d workers lifted node throughput only %.2fx on a %d-wide runtime — parallel tree search regressed",
			out.ParallelWorkers, out.ParallelSpeedup, out.GoMaxProcs))
	}
	if baselinePath != "" {
		if prev, err := readSolverBaseline(baselinePath); err != nil {
			fmt.Printf("note: baseline %s not comparable: %v\n", baselinePath, err)
		} else {
			if prev.ParallelSpeedup > 0 && out.ParallelSpeedup > 0 &&
				prev.GoMaxProcs == out.GoMaxProcs && prev.Dataset == out.Dataset &&
				prev.ParallelWorkers == out.ParallelWorkers &&
				out.ParallelSpeedup < 0.6*prev.ParallelSpeedup {
				fatal(fmt.Errorf("solver experiment: parallel node-throughput speedup regressed: %.2fx vs %.2fx in %s",
					out.ParallelSpeedup, prev.ParallelSpeedup, baselinePath))
			}
			// Degenerate-model regression gate: the fixture's node limit
			// binds, so its counts are deterministic — any rise in
			// iterations or cold fallbacks is a real anti-degeneracy
			// regression, not noise. Baselines predating the leg skip it.
			if prev.Degenerate != nil && out.Degenerate != nil &&
				prev.Degenerate.Instance == out.Degenerate.Instance {
				if out.Degenerate.SimplexIters > prev.Degenerate.SimplexIters*5/4 {
					fatal(fmt.Errorf("solver experiment: degenerate leg regressed: %d simplex iterations vs %d in %s",
						out.Degenerate.SimplexIters, prev.Degenerate.SimplexIters, baselinePath))
				}
				if out.Degenerate.ColdLPs > prev.Degenerate.ColdLPs+1 {
					fatal(fmt.Errorf("solver experiment: degenerate leg regressed: %d cold fallbacks vs %d in %s",
						out.Degenerate.ColdLPs, prev.Degenerate.ColdLPs, baselinePath))
				}
			}
			// LU-leg regression gates: the node limit binds, so iteration,
			// refactorization and fill counts are deterministic — any drift
			// is a real factorization change, not noise. Baselines
			// predating the leg skip it.
			if prev.LU != nil && out.LU != nil && prev.LU.Instance == out.LU.Instance {
				if out.LU.SimplexIters > prev.LU.SimplexIters*5/4 {
					fatal(fmt.Errorf("solver experiment: LU leg regressed: %d simplex iterations vs %d in %s",
						out.LU.SimplexIters, prev.LU.SimplexIters, baselinePath))
				}
				if out.LU.FillNnz > prev.LU.FillNnz*3/2 {
					fatal(fmt.Errorf("solver experiment: LU leg regressed: fill-in %d nnz vs %d in %s",
						out.LU.FillNnz, prev.LU.FillNnz, baselinePath))
				}
				if out.LU.Refactors > prev.LU.Refactors*5/4+1 {
					fatal(fmt.Errorf("solver experiment: LU leg regressed: %d refactorizations vs %d in %s",
						out.LU.Refactors, prev.LU.Refactors, baselinePath))
				}
			}
		}
	}
	// The JSON lands only after every gate passed: a failing run must not
	// overwrite the tracked file, or rerunning the bench would compare
	// the regression against itself and wave it through.
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", jsonPath)
	}
}

// runDegenerateLeg measures the anti-degeneracy machinery on the P=1
// k-means scheduling ILP — the fixture whose relaxations are degenerate
// enough that, before the Harris/BFRT ratio tests and EXPAND
// perturbation, warm dual re-solves exhausted their pivot budget and
// fell back to cold solves. The leg runs the tree search twice over the
// same 20-node limit (binding, hence deterministic counts): once with
// perturbation on (the default) and once with the NoPerturb ablation.
// Hard gates here catch wiring breaks (perturbation not reaching the
// tree search, clean-up dominating); the trajectory gate against
// -baseline lives with the other baseline checks in runSolver.
func runDegenerateLeg(out *solverJSON) {
	inst, err := workloads.ByName("k-means")
	if err != nil {
		fatal(fmt.Errorf("solver experiment (degenerate leg): %w", err))
	}
	arch := mbsp.Arch{P: 1, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	// The node limit binds; the time limit is a generous backstop kept
	// independent of -timeout so the counts stay deterministic.
	opts := ilpsched.Options{
		Model:             mbsp.Sync,
		TimeLimit:         2 * time.Minute,
		NodeLimit:         20,
		LocalSearchBudget: 1,
		Seed:              7,
	}
	start := time.Now()
	_, stats, err := ilpsched.Solve(inst.DAG, arch, opts)
	if err != nil {
		fatal(fmt.Errorf("solver experiment (degenerate leg): %w", err))
	}
	opts.NoPerturb = true
	_, ablation, err := ilpsched.Solve(inst.DAG, arch, opts)
	if err != nil {
		fatal(fmt.Errorf("solver experiment (degenerate ablation): %w", err))
	}
	out.Degenerate = &degenerateJSON{
		Instance: "k-means-P1", BBNodes: stats.ILPNodes,
		SimplexIters: stats.SimplexIters, CleanupIters: stats.CleanupIters,
		WarmLPs: stats.WarmLPs, ColdLPs: stats.ColdLPs, PerturbedLPs: stats.PerturbedLPs,
		NoPerturbIters: ablation.SimplexIters, NoPerturbCold: ablation.ColdLPs,
		Seconds: time.Since(start).Seconds(),
	}
	d := out.Degenerate
	fmt.Printf("degenerate leg (k-means P=1, %d nodes): %d simplex iters (%d clean-up), warm/cold=%d/%d; NoPerturb ablation: %d iters, %d cold\n",
		d.BBNodes, d.SimplexIters, d.CleanupIters, d.WarmLPs, d.ColdLPs, d.NoPerturbIters, d.NoPerturbCold)
	if !stats.UsedILP {
		fatal(fmt.Errorf("solver experiment: degenerate fixture no longer enters the tree search (rows=%d)", stats.ModelRows))
	}
	if d.PerturbedLPs == 0 {
		fatal(fmt.Errorf("solver experiment: degenerate leg reports no perturbed relaxations — EXPAND perturbation is not reaching the tree search"))
	}
	if d.CleanupIters > d.SimplexIters/10 {
		fatal(fmt.Errorf("solver experiment: degenerate leg spends %d of %d iterations in shift-removal clean-up", d.CleanupIters, d.SimplexIters))
	}
}

// runLULeg measures the sparse LU core on a model the dense inverse
// could not carry: the spmv_N7 P=4 holistic scheduling ILP (4856 rows —
// beyond the former 3000-row DefaultMaxModelRows) enters tree search
// under a binding node limit, and the factorization counters are
// recorded. Hard gates pin the structural wins — the model actually
// enters the search, fill-in stays within a small multiple of the basis
// nonzeros, and warm nodes reuse factors (hot or replayed) instead of
// refactorizing from scratch; the trajectory gates against -baseline
// live with the other baseline checks in runSolver.
func runLULeg(out *solverJSON) {
	inst, err := workloads.ByName("spmv_N7")
	if err != nil {
		fatal(fmt.Errorf("solver experiment (LU leg): %w", err))
	}
	arch := mbsp.Arch{P: 4, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	var lu lp.FactorStats
	opts := ilpsched.Options{
		Model:             mbsp.Sync,
		TimeLimit:         2 * time.Minute, // backstop; the node limit binds
		NodeLimit:         4,
		LocalSearchBudget: 1,
		Seed:              7,
		LUStats:           &lu,
	}
	start := time.Now()
	_, stats, err := ilpsched.Solve(inst.DAG, arch, opts)
	if err != nil {
		fatal(fmt.Errorf("solver experiment (LU leg): %w", err))
	}
	elapsed := time.Since(start)
	l := &luJSON{
		Instance: "spmv_N7-P4", ModelRows: stats.ModelRows,
		BBNodes: stats.ILPNodes, SimplexIters: stats.SimplexIters,
		Refactors: lu.Refactors, Replays: lu.Replays, HotSolves: lu.HotSolves,
		EtaPivots: lu.EtaPivots, Ftrans: lu.Ftrans, Btrans: lu.Btrans,
		FillNnz: lu.FillNnz, BasisNnz: lu.BasisNnz,
		FactorSeconds: float64(lu.FactorNanos) / 1e9,
		SolveSeconds:  float64(lu.SolveNanos) / 1e9,
		Seconds:       elapsed.Seconds(),
	}
	if l.BasisNnz > 0 {
		l.FillRatio = float64(l.FillNnz) / float64(l.BasisNnz)
	}
	if l.Seconds > 0 {
		l.FtranShare = l.SolveSeconds / l.Seconds
	}
	out.LU = l
	fmt.Printf("LU leg (%s, %d rows, %d nodes): %d simplex iters, %d refactors, %d etas, hot/replay=%d/%d, fill %d/%d (%.2fx), factor %.2fs + solves %.2fs of %.2fs (%.0f%% in FTRAN/BTRAN)\n",
		l.Instance, l.ModelRows, l.BBNodes, l.SimplexIters, l.Refactors, l.EtaPivots,
		l.HotSolves, l.Replays, l.FillNnz, l.BasisNnz, l.FillRatio,
		l.FactorSeconds, l.SolveSeconds, l.Seconds, 100*l.FtranShare)
	if !stats.UsedILP {
		fatal(fmt.Errorf("solver experiment: LU leg no longer enters the tree search (rows=%d, status=%s) — the dense-ceiling unlock regressed", stats.ModelRows, stats.ILPStatus))
	}
	if stats.ModelRows <= 3000 {
		fatal(fmt.Errorf("solver experiment: LU leg fixture has %d rows — no longer beyond the former dense ceiling, the leg proves nothing", stats.ModelRows))
	}
	if l.FillRatio > 4 {
		fatal(fmt.Errorf("solver experiment: LU leg fill ratio %.2fx — factor storage is no longer sparse", l.FillRatio))
	}
	if l.Refactors < 1 {
		fatal(fmt.Errorf("solver experiment: LU leg reports no refactorizations — the counters are not wired"))
	}
	if l.HotSolves+l.Replays < 1 {
		fatal(fmt.Errorf("solver experiment: LU leg reports no hot or replayed warm starts — warm nodes are refactorizing from scratch"))
	}
}

// readSolverBaseline parses a previous solver-experiment JSON for the
// regression gate.
func readSolverBaseline(path string) (solverJSON, error) {
	var prev solverJSON
	b, err := os.ReadFile(path)
	if err != nil {
		return prev, err
	}
	if err := json.Unmarshal(b, &prev); err != nil {
		return prev, err
	}
	return prev, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbsp-bench:", err)
	os.Exit(1)
}
