// Command mbsp-bench reproduces the paper's evaluation: Tables 1–4,
// Figure 4, and the single-processor experiment, on the bundled datasets.
//
// Usage:
//
//	mbsp-bench [-experiment all|table1|table2|table3|table4|figure4|p1|portfolio]
//	           [-dataset tiny|paper-tiny] [-timeout 2s] [-budget 2000]
//	           [-workers 0] [-csv out.csv] [-json out.json]
//
// The experiment grid (instances × methods) runs concurrently over
// -workers goroutines (0: GOMAXPROCS) with deterministic, ordered result
// collection; the default is sequential because concurrent solvers share
// the wall clock, making time-limited ILP numbers incomparable with
// sequential runs. The portfolio experiment races every applicable scheduler
// per instance and reports per-scheduler cost/timing; -json writes its
// results as JSON (scripts/verify.sh tracks BENCH_portfolio.json across
// PRs). Budgets default to second-scale runs; raise -timeout and -budget
// (and use -dataset paper-tiny) for runs closer to the paper's 60-minute
// solver budget.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mbsp/internal/experiments"
	"mbsp/internal/portfolio"
	"mbsp/internal/workloads"
)

func main() {
	var (
		exp     = flag.String("experiment", "all", "which experiment: all, table1, table2, table3, table4, figure4, p1, portfolio")
		dataset = flag.String("dataset", "tiny", "dataset for table1/3/4/figure4/portfolio: tiny or paper-tiny")
		timeout = flag.Duration("timeout", 2*time.Second, "ILP time limit per instance")
		budget  = flag.Int("budget", 2000, "local-search evaluation budget")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 1, "concurrent grid cells / portfolio schedulers (0: GOMAXPROCS); default sequential — concurrent solvers share the wall clock, so parallel table numbers are not comparable with sequential runs")
		csvOut  = flag.String("csv", "", "also write the last table as CSV to this file")
		jsonOut = flag.String("json", "", "write portfolio experiment results as JSON to this file")
	)
	flag.Parse()

	cfg := experiments.Base()
	cfg.ILPTimeLimit = *timeout
	cfg.LocalSearchBudget = *budget
	cfg.Seed = *seed
	cfg.Workers = *workers

	var insts []workloads.Instance
	switch *dataset {
	case "tiny":
		insts = workloads.Tiny()
	case "paper-tiny":
		insts = workloads.PaperTiny()
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}

	var last *experiments.Table
	run := func(name string, f func() (*experiments.Table, error)) {
		start := time.Now()
		t, err := f()
		if err != nil {
			fatal(err)
		}
		t.Render(os.Stdout)
		fmt.Printf("(%s took %.1fs)\n\n", name, time.Since(start).Seconds())
		last = t
	}

	switch *exp {
	case "all":
		run("table1", func() (*experiments.Table, error) { return experiments.Table1(insts, cfg) })
		run("table3", func() (*experiments.Table, error) { return experiments.Table3(insts, cfg) })
		runTable4(insts, cfg)
		runFigure4(insts, cfg)
		run("table2", func() (*experiments.Table, error) {
			return experiments.Table2(workloads.Small(), cfg, 45, *timeout)
		})
		run("p1", func() (*experiments.Table, error) { return experiments.SingleProcessor(insts, cfg) })
	case "table1":
		run("table1", func() (*experiments.Table, error) { return experiments.Table1(insts, cfg) })
	case "table2":
		run("table2", func() (*experiments.Table, error) {
			return experiments.Table2(workloads.Small(), cfg, 45, *timeout)
		})
	case "table3":
		run("table3", func() (*experiments.Table, error) { return experiments.Table3(insts, cfg) })
	case "table4":
		runTable4(insts, cfg)
	case "figure4":
		runFigure4(insts, cfg)
	case "p1":
		run("p1", func() (*experiments.Table, error) { return experiments.SingleProcessor(insts, cfg) })
	case "portfolio":
		runPortfolio(insts, cfg, *dataset, *workers, *jsonOut)
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}

	if *csvOut != "" && last != nil {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := last.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *csvOut)
	}
}

func runTable4(insts []workloads.Instance, cfg experiments.Config) {
	start := time.Now()
	tables, err := experiments.Table4(insts, cfg)
	if err != nil {
		fatal(err)
	}
	for _, v := range experiments.Table4Variants() {
		tables[v.Label].Render(os.Stdout)
		fmt.Println()
	}
	fmt.Printf("(table4 took %.1fs)\n\n", time.Since(start).Seconds())
}

func runFigure4(insts []workloads.Instance, cfg experiments.Config) {
	start := time.Now()
	boxes, err := experiments.Figure4(insts, cfg)
	if err != nil {
		fatal(err)
	}
	experiments.RenderBoxes(os.Stdout, boxes)
	fmt.Printf("(figure4 took %.1fs)\n\n", time.Since(start).Seconds())
}

// portfolioJSON is the schema of -json output: one entry per instance
// plus aggregate timing, consumed by scripts/verify.sh to track the
// portfolio's performance trajectory across PRs.
type portfolioJSON struct {
	Dataset      string                  `json:"dataset"`
	Workers      int                     `json:"workers"`
	ILPTimeLimit string                  `json:"ilp_time_limit"`
	Seed         int64                   `json:"seed"`
	TotalSec     float64                 `json:"total_seconds"`
	Instances    []portfolioInstanceJSON `json:"instances"`
}

type portfolioInstanceJSON struct {
	Instance   string               `json:"instance"`
	Best       string               `json:"best"`
	BestCost   float64              `json:"best_cost"`
	ElapsedSec float64              `json:"elapsed_seconds"`
	Candidates []portfolioCandsJSON `json:"candidates"`
}

type portfolioCandsJSON struct {
	Name       string  `json:"name"`
	Cost       float64 `json:"cost,omitempty"`
	ElapsedSec float64 `json:"elapsed_seconds"`
	Error      string  `json:"error,omitempty"`
}

// runPortfolio races the full scheduler portfolio on every instance and
// reports per-scheduler cost and timing plus the win distribution.
func runPortfolio(insts []workloads.Instance, cfg experiments.Config, dataset string, workers int, jsonPath string) {
	start := time.Now()
	out := portfolioJSON{
		Dataset:      dataset,
		ILPTimeLimit: cfg.ILPTimeLimit.String(), Seed: cfg.Seed,
	}
	wins := map[string]int{}
	fmt.Println("Portfolio: best-of-all-schedulers per instance")
	fmt.Printf("%-20s%-18s%14s%10s\n", "Instance", "winner", "cost", "time")
	for _, inst := range insts {
		arch := cfg.Arch(inst.DAG)
		res, err := portfolio.Run(context.Background(), inst.DAG, arch, portfolio.Options{
			Model:             cfg.Model,
			Workers:           workers,
			ILPTimeLimit:      cfg.ILPTimeLimit,
			LocalSearchBudget: cfg.LocalSearchBudget,
			Seed:              cfg.Seed,
		})
		if err != nil {
			fatal(fmt.Errorf("portfolio on %s: %w", inst.Name, err))
		}
		out.Workers = res.Workers
		wins[res.BestName]++
		fmt.Printf("%-20s%-18s%14.4g%9.2fs\n", inst.Name, res.BestName, res.BestCost, res.Elapsed.Seconds())
		entry := portfolioInstanceJSON{
			Instance: inst.Name, Best: res.BestName, BestCost: res.BestCost,
			ElapsedSec: res.Elapsed.Seconds(),
		}
		for _, c := range res.Candidates {
			cj := portfolioCandsJSON{Name: c.Name, ElapsedSec: c.Elapsed.Seconds()}
			if c.Err != nil {
				cj.Error = c.Err.Error()
			} else {
				cj.Cost = c.Cost
			}
			entry.Candidates = append(entry.Candidates, cj)
		}
		out.Instances = append(out.Instances, entry)
	}
	out.TotalSec = time.Since(start).Seconds()
	fmt.Printf("wins by scheduler: %v\n", wins)
	fmt.Printf("(portfolio took %.1fs)\n\n", out.TotalSec)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", jsonPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbsp-bench:", err)
	os.Exit(1)
}
