// Command mbsp-bench reproduces the paper's evaluation: Tables 1–4,
// Figure 4, and the single-processor experiment, on the bundled datasets.
//
// Usage:
//
//	mbsp-bench [-experiment all|table1|table2|table3|table4|figure4|p1]
//	           [-dataset tiny|paper-tiny] [-timeout 2s] [-budget 2000]
//	           [-csv out.csv]
//
// Budgets default to second-scale runs; raise -timeout and -budget (and
// use -dataset paper-tiny) for runs closer to the paper's 60-minute
// solver budget.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mbsp/internal/experiments"
	"mbsp/internal/workloads"
)

func main() {
	var (
		exp     = flag.String("experiment", "all", "which experiment: all, table1, table2, table3, table4, figure4, p1")
		dataset = flag.String("dataset", "tiny", "dataset for table1/3/4/figure4: tiny or paper-tiny")
		timeout = flag.Duration("timeout", 2*time.Second, "ILP time limit per instance")
		budget  = flag.Int("budget", 2000, "local-search evaluation budget")
		seed    = flag.Int64("seed", 1, "random seed")
		csvOut  = flag.String("csv", "", "also write the last table as CSV to this file")
	)
	flag.Parse()

	cfg := experiments.Base()
	cfg.ILPTimeLimit = *timeout
	cfg.LocalSearchBudget = *budget
	cfg.Seed = *seed

	var insts []workloads.Instance
	switch *dataset {
	case "tiny":
		insts = workloads.Tiny()
	case "paper-tiny":
		insts = workloads.PaperTiny()
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}

	var last *experiments.Table
	run := func(name string, f func() (*experiments.Table, error)) {
		start := time.Now()
		t, err := f()
		if err != nil {
			fatal(err)
		}
		t.Render(os.Stdout)
		fmt.Printf("(%s took %.1fs)\n\n", name, time.Since(start).Seconds())
		last = t
	}

	switch *exp {
	case "all":
		run("table1", func() (*experiments.Table, error) { return experiments.Table1(insts, cfg) })
		run("table3", func() (*experiments.Table, error) { return experiments.Table3(insts, cfg) })
		runTable4(insts, cfg)
		runFigure4(insts, cfg)
		run("table2", func() (*experiments.Table, error) {
			return experiments.Table2(workloads.Small(), cfg, 45, *timeout)
		})
		run("p1", func() (*experiments.Table, error) { return experiments.SingleProcessor(insts, cfg) })
	case "table1":
		run("table1", func() (*experiments.Table, error) { return experiments.Table1(insts, cfg) })
	case "table2":
		run("table2", func() (*experiments.Table, error) {
			return experiments.Table2(workloads.Small(), cfg, 45, *timeout)
		})
	case "table3":
		run("table3", func() (*experiments.Table, error) { return experiments.Table3(insts, cfg) })
	case "table4":
		runTable4(insts, cfg)
	case "figure4":
		runFigure4(insts, cfg)
	case "p1":
		run("p1", func() (*experiments.Table, error) { return experiments.SingleProcessor(insts, cfg) })
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}

	if *csvOut != "" && last != nil {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := last.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *csvOut)
	}
}

func runTable4(insts []workloads.Instance, cfg experiments.Config) {
	start := time.Now()
	tables, err := experiments.Table4(insts, cfg)
	if err != nil {
		fatal(err)
	}
	for _, v := range experiments.Table4Variants() {
		tables[v.Label].Render(os.Stdout)
		fmt.Println()
	}
	fmt.Printf("(table4 took %.1fs)\n\n", time.Since(start).Seconds())
}

func runFigure4(insts []workloads.Instance, cfg experiments.Config) {
	start := time.Now()
	boxes, err := experiments.Figure4(insts, cfg)
	if err != nil {
		fatal(err)
	}
	experiments.RenderBoxes(os.Stdout, boxes)
	fmt.Printf("(figure4 took %.1fs)\n\n", time.Since(start).Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbsp-bench:", err)
	os.Exit(1)
}
