// Command mbsp-smoke is the end-to-end smoke client for mbsp-served,
// driven by scripts/serve_smoke.sh as part of scripts/verify.sh. It
// exercises the serving contract against a live server:
//
//  1. /healthz answers;
//  2. a cold POST /v1/schedule returns a full-fidelity (rung
//     "portfolio") response;
//  3. an identical second POST is a cache hit with a byte-identical
//     schedule and certificate, well inside its request deadline;
//  4. /v1/stats reflects the hit;
//  5. SIGTERM while a request is in flight drains gracefully: the
//     request still completes with 200 and the process exits cleanly
//     (the exit code is asserted by the driving script).
//
// Exits nonzero with a diagnostic on the first violated assertion.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"reflect"
	"strconv"
	"syscall"
	"time"

	"mbsp"
	"mbsp/internal/wire"
)

func main() {
	var (
		base     = flag.String("base", "", "server base URL (http://host:port)")
		pid      = flag.Int("pid", 0, "server process id; when set, the drain leg SIGTERMs it mid-request")
		instance = flag.String("instance", "spmv_N6", "registry instance to schedule")
	)
	flag.Parse()
	if *base == "" {
		fatal(fmt.Errorf("-base is required"))
	}

	inst, err := mbsp.InstanceByName(*instance)
	if err != nil {
		fatal(err)
	}
	var dag bytes.Buffer
	if err := mbsp.WriteDAG(&dag, inst.DAG); err != nil {
		fatal(err)
	}

	client := &http.Client{Timeout: 30 * time.Second}

	// 1. Liveness.
	waitHealthy(client, *base)
	fmt.Println("smoke: healthz ok")

	// 2. Cold run.
	cold := postSchedule(client, *base, "p=2&rfactor=3", dag.Bytes())
	if cold.Cache == nil || cold.Cache.Provenance != "cold" {
		fatal(fmt.Errorf("first request not cold: %+v", cold.Cache))
	}
	if cold.Certificate == nil || cold.Certificate.Rung != "portfolio" {
		fatal(fmt.Errorf("cold run not full-fidelity: %+v", cold.Certificate))
	}
	fmt.Printf("smoke: cold run ok (winner %s, cost %g)\n", cold.Winner, cold.Cost)

	// 3. Cache hit: byte-identical and fast.
	const deadlineMS = 2000
	start := time.Now()
	hit := postSchedule(client, *base, fmt.Sprintf("p=2&rfactor=3&deadline_ms=%d", deadlineMS), dag.Bytes())
	elapsed := time.Since(start)
	if hit.Cache == nil || !hit.Cache.Hit || hit.Cache.Provenance != "hit" {
		fatal(fmt.Errorf("second request not a cache hit: %+v", hit.Cache))
	}
	if hit.Schedule != cold.Schedule {
		fatal(fmt.Errorf("cache hit schedule differs from cold run"))
	}
	if !reflect.DeepEqual(hit.Certificate, cold.Certificate) {
		fatal(fmt.Errorf("cache hit certificate differs from cold run"))
	}
	if elapsed >= deadlineMS*time.Millisecond {
		fatal(fmt.Errorf("cache hit took %v, deadline %dms", elapsed, deadlineMS))
	}
	fmt.Printf("smoke: cache hit ok (identical bytes, %v)\n", elapsed)

	// 4. Stats reflect the traffic.
	var stats struct {
		Cache struct {
			Hits int64 `json:"hits"`
			Runs int64 `json:"runs"`
		} `json:"cache"`
	}
	getJSON(client, *base+"/v1/stats", &stats)
	if stats.Cache.Hits < 1 || stats.Cache.Runs != 1 {
		fatal(fmt.Errorf("stats disagree with traffic: %+v", stats.Cache))
	}
	fmt.Println("smoke: stats ok")

	// 5. Graceful drain: a request for a fresh key races a SIGTERM. The
	// HTTP server must finish serving it before exiting.
	if *pid > 0 {
		type outcome struct {
			resp *wire.Response
			err  error
		}
		done := make(chan outcome, 1)
		go func() {
			r, err := tryPostSchedule(client, *base, "p=3&rfactor=3", dag.Bytes())
			done <- outcome{r, err}
		}()
		time.Sleep(100 * time.Millisecond)
		if err := syscall.Kill(*pid, syscall.SIGTERM); err != nil {
			fatal(fmt.Errorf("signaling server: %w", err))
		}
		o := <-done
		if o.err != nil {
			fatal(fmt.Errorf("in-flight request not drained: %w", o.err))
		}
		if o.resp.Schedule == "" {
			fatal(fmt.Errorf("drained request returned no schedule"))
		}
		fmt.Println("smoke: graceful drain ok")
	}
	fmt.Println("smoke: OK")
}

func waitHealthy(client *http.Client, base string) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("server never became healthy: %v", err))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func tryPostSchedule(client *http.Client, base, query string, dag []byte) (*wire.Response, error) {
	resp, err := client.Post(base+"/v1/schedule?"+query, "text/plain", bytes.NewReader(dag))
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST %s: %d: %s", query, resp.StatusCode, data)
	}
	var r wire.Response
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("POST %s: bad JSON: %w", query, err)
	}
	if ms := resp.Header.Get("X-Mbsp-Elapsed-Ms"); ms != "" {
		if _, err := strconv.ParseFloat(ms, 64); err != nil {
			return nil, fmt.Errorf("bad X-Mbsp-Elapsed-Ms %q", ms)
		}
	}
	return &r, nil
}

func postSchedule(client *http.Client, base, query string, dag []byte) *wire.Response {
	r, err := tryPostSchedule(client, base, query, dag)
	if err != nil {
		fatal(err)
	}
	return r
}

func getJSON(client *http.Client, url string, v interface{}) {
	resp, err := client.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET %s: %d", url, resp.StatusCode))
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		fatal(fmt.Errorf("GET %s: bad JSON: %w", url, err))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbsp-smoke: FAIL:", err)
	os.Exit(1)
}
