// Command mbsp-smoke is the end-to-end smoke client for mbsp-served,
// driven by scripts/serve_smoke.sh and scripts/crash_smoke.sh as part
// of scripts/verify.sh. The default phase exercises the serving
// contract against a live server:
//
//  1. /healthz answers;
//  2. a cold POST /v1/schedule returns a full-fidelity (rung
//     "portfolio") response;
//  3. an identical second POST is a cache hit with a byte-identical
//     schedule and certificate, well inside its request deadline;
//  4. /v1/stats reflects the hit, and the persistence counter section
//     is present (with -persist: enabled and journaling);
//  5. SIGTERM while a request is in flight drains gracefully: the
//     request still completes with 200 and the process exits cleanly
//     (the exit code is asserted by the driving script).
//
// The crash phases split the contract across a kill -9
// (scripts/crash_smoke.sh):
//
//	-phase populate  POST two distinct requests, assert both journaled,
//	                 and save their cache-stamp-stripped bodies under
//	                 -state for the verify phase;
//	-phase verify    against a server restarted on the (torn) crash
//	                 image: assert recovery counters (one entry
//	                 recovered, the torn one counted corrupt), a warm
//	                 byte-identical hit for the survivor, and a cold
//	                 byte-identical recompute for the lost entry.
//
// Exits nonzero with a diagnostic on the first violated assertion.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"syscall"
	"time"

	"mbsp"
	"mbsp/internal/wire"
)

// queryA/queryB are the two cache keys the crash phases populate and
// verify; queryA's entry is the journal's first record (survives the
// torn tail), queryB's is the last (lost to it).
const (
	queryA = "p=2&rfactor=3"
	queryB = "p=3&rfactor=3"
)

func main() {
	var (
		base     = flag.String("base", "", "server base URL (http://host:port)")
		pid      = flag.Int("pid", 0, "server process id; when set, the drain leg SIGTERMs it mid-request")
		instance = flag.String("instance", "spmv_N6", "registry instance to schedule")
		persist  = flag.Bool("persist", false, "assert the server is journaling to a durable cache")
		phase    = flag.String("phase", "", "crash-smoke phase: populate or verify (default: the full serving smoke)")
		state    = flag.String("state", "", "directory for cross-phase state (saved response bodies)")
	)
	flag.Parse()
	if *base == "" {
		fatal(fmt.Errorf("-base is required"))
	}

	inst, err := mbsp.InstanceByName(*instance)
	if err != nil {
		fatal(err)
	}
	var dag bytes.Buffer
	if err := mbsp.WriteDAG(&dag, inst.DAG); err != nil {
		fatal(err)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	waitHealthy(client, *base)
	fmt.Println("smoke: healthz ok")

	switch *phase {
	case "populate":
		runPopulate(client, *base, *state, dag.Bytes())
	case "verify":
		runVerify(client, *base, *state, dag.Bytes())
	case "":
		runServeSmoke(client, *base, *pid, *persist, dag.Bytes())
	default:
		fatal(fmt.Errorf("unknown -phase %q (want populate, verify, or empty)", *phase))
	}
	fmt.Println("smoke: OK")
}

// statsJSON is the /v1/stats subset the smoke asserts on.
type statsJSON struct {
	Cache struct {
		Hits int64 `json:"hits"`
		Runs int64 `json:"runs"`
	} `json:"cache"`
	Persistence struct {
		Enabled          bool  `json:"enabled"`
		JournalRecords   int64 `json:"journal_records"`
		RecoveredRecords int64 `json:"recovered_records"`
		RejectedRecords  int64 `json:"rejected_records"`
		CorruptRecords   int64 `json:"corrupt_records"`
	} `json:"persistence"`
}

// assertPersistenceShape asserts the persistence counter section is
// present in the raw stats payload with every documented key — the
// counters a fleet's monitoring would scrape.
func assertPersistenceShape(client *http.Client, base string) {
	var raw map[string]json.RawMessage
	getJSON(client, base+"/v1/stats", &raw)
	section, ok := raw["persistence"]
	if !ok {
		fatal(fmt.Errorf("/v1/stats has no persistence section"))
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(section, &fields); err != nil {
		fatal(fmt.Errorf("persistence section not an object: %w", err))
	}
	for _, key := range []string{"enabled", "snapshot_age_seconds", "journal_records",
		"journal_bytes", "recovered_records", "rejected_records", "corrupt_records",
		"journal_errors"} {
		if _, ok := fields[key]; !ok {
			fatal(fmt.Errorf("/v1/stats persistence section missing %q", key))
		}
	}
	fmt.Println("smoke: persistence counters present")
}

// runServeSmoke is the classic serving contract (doc comment items 2-5).
func runServeSmoke(client *http.Client, base string, pid int, persist bool, dag []byte) {
	cold := postSchedule(client, base, queryA, dag)
	if cold.Cache == nil || cold.Cache.Provenance != "cold" {
		fatal(fmt.Errorf("first request not cold: %+v", cold.Cache))
	}
	if cold.Certificate == nil || cold.Certificate.Rung != "portfolio" {
		fatal(fmt.Errorf("cold run not full-fidelity: %+v", cold.Certificate))
	}
	fmt.Printf("smoke: cold run ok (winner %s, cost %g)\n", cold.Winner, cold.Cost)

	// Cache hit: byte-identical and fast.
	const deadlineMS = 2000
	start := time.Now()
	hit := postSchedule(client, base, fmt.Sprintf("%s&deadline_ms=%d", queryA, deadlineMS), dag)
	elapsed := time.Since(start)
	if hit.Cache == nil || !hit.Cache.Hit || hit.Cache.Provenance != "hit" {
		fatal(fmt.Errorf("second request not a cache hit: %+v", hit.Cache))
	}
	if hit.Schedule != cold.Schedule {
		fatal(fmt.Errorf("cache hit schedule differs from cold run"))
	}
	if !reflect.DeepEqual(hit.Certificate, cold.Certificate) {
		fatal(fmt.Errorf("cache hit certificate differs from cold run"))
	}
	if elapsed >= deadlineMS*time.Millisecond {
		fatal(fmt.Errorf("cache hit took %v, deadline %dms", elapsed, deadlineMS))
	}
	fmt.Printf("smoke: cache hit ok (identical bytes, %v)\n", elapsed)

	// Stats reflect the traffic; the persistence section is always
	// present (enabled and journaling when the server has -cache-path).
	var stats statsJSON
	getJSON(client, base+"/v1/stats", &stats)
	if stats.Cache.Hits < 1 || stats.Cache.Runs != 1 {
		fatal(fmt.Errorf("stats disagree with traffic: %+v", stats.Cache))
	}
	assertPersistenceShape(client, base)
	if persist {
		if !stats.Persistence.Enabled || stats.Persistence.JournalRecords != 1 {
			fatal(fmt.Errorf("durable cache not journaling: %+v", stats.Persistence))
		}
		fmt.Println("smoke: durable cache journaling ok")
	}
	fmt.Println("smoke: stats ok")

	// Graceful drain: a request for a fresh key races a SIGTERM. The
	// HTTP server must finish serving it before exiting.
	if pid > 0 {
		type outcome struct {
			resp *wire.Response
			err  error
		}
		done := make(chan outcome, 1)
		go func() {
			r, err := tryPostSchedule(client, base, queryB, dag)
			done <- outcome{r, err}
		}()
		time.Sleep(100 * time.Millisecond)
		if err := syscall.Kill(pid, syscall.SIGTERM); err != nil {
			fatal(fmt.Errorf("signaling server: %w", err))
		}
		o := <-done
		if o.err != nil {
			fatal(fmt.Errorf("in-flight request not drained: %w", o.err))
		}
		if o.resp.Schedule == "" {
			fatal(fmt.Errorf("drained request returned no schedule"))
		}
		fmt.Println("smoke: graceful drain ok")
	}
}

// stripBody re-marshals a response without its per-request cache stamp:
// the byte-comparison form shared by populate and verify.
func stripBody(r *wire.Response) []byte {
	clone := *r
	clone.Cache = nil
	out, err := json.Marshal(&clone)
	if err != nil {
		fatal(err)
	}
	return out
}

// runPopulate stores two full-fidelity entries in the durable cache and
// saves their stripped bodies for the post-crash verify phase. The
// driving script kill -9s the server right after this phase returns,
// then tears the journal's tail as a crash mid-append would.
func runPopulate(client *http.Client, base, state string, dag []byte) {
	if state == "" {
		fatal(fmt.Errorf("-phase populate requires -state"))
	}
	for i, q := range []string{queryA, queryB} {
		r := postSchedule(client, base, q, dag)
		if r.Cache == nil || r.Cache.Provenance != "cold" {
			fatal(fmt.Errorf("populate %s: not cold: %+v", q, r.Cache))
		}
		if r.Certificate == nil || r.Certificate.Rung != "portfolio" {
			fatal(fmt.Errorf("populate %s: not full-fidelity: %+v", q, r.Certificate))
		}
		name := filepath.Join(state, fmt.Sprintf("body-%d.json", i))
		if err := os.WriteFile(name, stripBody(r), 0o644); err != nil {
			fatal(err)
		}
	}
	var stats statsJSON
	getJSON(client, base+"/v1/stats", &stats)
	if !stats.Persistence.Enabled || stats.Persistence.JournalRecords != 2 {
		fatal(fmt.Errorf("populate: both entries must be journaled before the kill: %+v", stats.Persistence))
	}
	fmt.Println("smoke: populate ok (2 entries journaled)")
}

// runVerify asserts the post-crash recovery contract: the journal's
// intact prefix (entry A) is recovered and served warm byte-identical;
// the torn tail (entry B) is counted corrupt and recomputed cold to the
// same bytes — corruption degrades to a cold start, never a wrong or
// missing answer.
func runVerify(client *http.Client, base, state string, dag []byte) {
	if state == "" {
		fatal(fmt.Errorf("-phase verify requires -state"))
	}
	assertPersistenceShape(client, base)
	var stats statsJSON
	getJSON(client, base+"/v1/stats", &stats)
	p := stats.Persistence
	if !p.Enabled || p.RecoveredRecords != 1 || p.CorruptRecords < 1 || p.RejectedRecords != 0 {
		fatal(fmt.Errorf("recovery counters after torn-tail restart: %+v", p))
	}
	fmt.Printf("smoke: recovery counters ok (1 recovered, %d corrupt)\n", p.CorruptRecords)

	wantA, err := os.ReadFile(filepath.Join(state, "body-0.json"))
	if err != nil {
		fatal(err)
	}
	wantB, err := os.ReadFile(filepath.Join(state, "body-1.json"))
	if err != nil {
		fatal(err)
	}

	a := postSchedule(client, base, queryA, dag)
	if a.Cache == nil || !a.Cache.Hit {
		fatal(fmt.Errorf("recovered entry not served warm: %+v", a.Cache))
	}
	if !bytes.Equal(stripBody(a), wantA) {
		fatal(fmt.Errorf("warm-restart hit differs from the pre-crash response"))
	}
	fmt.Println("smoke: warm byte-identical hit ok")

	b := postSchedule(client, base, queryB, dag)
	if b.Cache == nil || b.Cache.Hit {
		fatal(fmt.Errorf("torn entry must recompute cold: %+v", b.Cache))
	}
	if !bytes.Equal(stripBody(b), wantB) {
		fatal(fmt.Errorf("recomputed torn entry differs from the original deterministic run"))
	}
	fmt.Println("smoke: torn entry recomputed byte-identical ok")
}

func waitHealthy(client *http.Client, base string) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("server never became healthy: %v", err))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func tryPostSchedule(client *http.Client, base, query string, dag []byte) (*wire.Response, error) {
	resp, err := client.Post(base+"/v1/schedule?"+query, "text/plain", bytes.NewReader(dag))
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST %s: %d: %s", query, resp.StatusCode, data)
	}
	var r wire.Response
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("POST %s: bad JSON: %w", query, err)
	}
	if ms := resp.Header.Get("X-Mbsp-Elapsed-Ms"); ms != "" {
		if _, err := strconv.ParseFloat(ms, 64); err != nil {
			return nil, fmt.Errorf("bad X-Mbsp-Elapsed-Ms %q", ms)
		}
	}
	return &r, nil
}

func postSchedule(client *http.Client, base, query string, dag []byte) *wire.Response {
	r, err := tryPostSchedule(client, base, query, dag)
	if err != nil {
		fatal(err)
	}
	return r
}

func getJSON(client *http.Client, url string, v interface{}) {
	resp, err := client.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET %s: %d", url, resp.StatusCode))
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		fatal(fmt.Errorf("GET %s: bad JSON: %w", url, err))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbsp-smoke: FAIL:", err)
	os.Exit(1)
}
