// Command mbsp-served is the persistent scheduling service: a long-lived
// HTTP server over the anytime scheduler portfolio with a
// fingerprint-keyed schedule cache, single-flight deduplication and
// admission control.
//
// Usage:
//
//	mbsp-served [-addr :8035] [-cache-entries 1024] [-cache-path DIR]
//	            [-max-inflight 0] [-compute-timeout 60s] [-max-body 8388608]
//	            [-seed 1] [-node-limit 20000] [-workers 0] [-mip-workers 0]
//	            [-drain-timeout 30s] [-persist-fault-seed 0]
//	            [-persist-fault-rate 0.25] [-quiet]
//
// Endpoints:
//
//	POST /v1/schedule   body: DAG in the text format (see internal/graph);
//	                    query: p, r | rfactor, g, l, model=sync|async,
//	                    deadline_ms
//	GET  /v1/stats      cache, admission, persistence and request counters
//	GET  /healthz       liveness
//
// Repeat submissions of the same DAG and parameters are served from the
// schedule cache in microseconds, byte-identical to the original
// deterministic run. With -cache-path the cache is durable (crash-only:
// journal-on-store, snapshot-on-drain, recover-on-boot), so even a
// kill -9 restart comes back warm.
//
// SIGINT/SIGTERM drains in-flight requests before exiting (bounded by
// -drain-timeout); a second SIGINT/SIGTERM during the drain forces an
// immediate close and a nonzero exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mbsp/internal/faultinject"
	"mbsp/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8035", "listen address (host:port; port 0 picks a free port)")
		cacheEntries = flag.Int("cache-entries", 1024, "schedule cache capacity in entries (negative disables caching)")
		cachePath    = flag.String("cache-path", "", "directory for the durable schedule cache (empty: memory-only); recovered on boot, journaled on store, snapshotted on drain")
		maxInflight  = flag.Int("max-inflight", 0, "max concurrently computing portfolio runs; excess requests get 429 (0: GOMAXPROCS)")
		computeTO    = flag.Duration("compute-timeout", 60*time.Second, "server-side budget for one cold portfolio run")
		maxBody      = flag.Int64("max-body", 8<<20, "max request body bytes")
		seed         = flag.Int64("seed", 1, "portfolio seed (part of the cache key)")
		nodeLimit    = flag.Int("node-limit", server.DefaultNodeLimit, "branch-and-bound node budget; must be > 0 so results are deterministic and cacheable (part of the cache key)")
		maxRows      = flag.Int("max-model-rows", 0, "holistic-ILP model row cap: larger models skip tree search for the warm-start + local-search fallback (0: the solver default; part of the cache key). Lower it (e.g. 3000) to bound cold-request latency on mid-size DAGs")
		workers      = flag.Int("workers", 0, "portfolio candidate worker pool size (0: GOMAXPROCS); never changes results")
		mipWork      = flag.Int("mip-workers", 0, "worker pool inside each branch-and-bound tree (0: automatic); never changes results")
		drainTO      = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for draining in-flight requests")
		pfSeed       = flag.Uint64("persist-fault-seed", 0, "seed for deterministic filesystem fault injection into the durable cache (0: off); chaos testing only")
		pfRate       = flag.Float64("persist-fault-rate", faultinject.DefaultRate, "per-write injection probability when -persist-fault-seed is set")
		quiet        = flag.Bool("quiet", false, "suppress per-request portfolio logging")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "mbsp-served: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...interface{}) {}
	}

	var inject *faultinject.Injector
	if *pfSeed != 0 {
		inject = faultinject.New(*pfSeed, *pfRate, 0, faultinject.FSModes()...)
		logger.Printf("persistence fault injection: %s", inject)
	}

	srv, err := server.New(server.Config{
		CacheEntries:    *cacheEntries,
		CachePath:       *cachePath,
		PersistInject:   inject,
		MaxInflight:     *maxInflight,
		ComputeTimeout:  *computeTO,
		MaxRequestBytes: *maxBody,
		Seed:            *seed,
		ILPNodeLimit:    *nodeLimit,
		MaxModelRows:    *maxRows,
		Workers:         *workers,
		MIPWorkers:      *mipWork,
		Logf:            logf,
	})
	if err != nil {
		logger.Fatalf("opening server: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	// The resolved address is printed unconditionally (and first) so
	// scripts starting the server on port 0 can discover the port.
	logger.Printf("listening on %s", ln.Addr())

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	// Manual signal channel (not NotifyContext): the second signal during
	// the drain must remain observable.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case sig := <-sigc:
		logger.Printf("received %v", sig)
	}

	logger.Printf("shutting down: draining in-flight requests (budget %v)", *drainTO)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- httpSrv.Shutdown(shutdownCtx) }()
	select {
	case err := <-drained:
		if err != nil {
			logger.Printf("shutdown path: drain incomplete (%v)", err)
		} else {
			logger.Printf("shutdown path: graceful drain complete")
		}
	case sig := <-sigc:
		// Impatient operator (or supervisor escalating): close now. The
		// durable cache is crash-only, so skipping the graceful drain
		// costs a snapshot rotation, never correctness.
		logger.Printf("shutdown path: second %v during drain, forcing immediate close", sig)
		httpSrv.Close()
		srv.Close()
		os.Exit(1)
	}
	srv.Close() // cancel + join background computations, drain the durable cache

	st := srv.Stats()
	logger.Printf("drained: %d requests served (%d cache hits, %d misses, %d coalesced, %d shed, %d degraded)",
		st.Requests.Completed, st.Cache.Hits, st.Cache.Misses, st.Cache.Coalesced,
		st.Admission.Shed, st.Requests.Degraded)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("serve: %v", err)
	}
	fmt.Fprintln(os.Stderr, "mbsp-served: bye")
}
