// Command daggen generates benchmark DAG instances in the text format.
//
// Usage:
//
//	daggen -instance spmv_N6 > spmv.dag
//	daggen -list
//	daggen -instance kNN_N5_K3 -dot > knn.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"mbsp"
	"mbsp/internal/workloads"
)

func main() {
	var (
		instance = flag.String("instance", "", "named benchmark instance")
		list     = flag.Bool("list", false, "list all known instances")
		dot      = flag.Bool("dot", false, "emit Graphviz DOT instead of the text format")
	)
	flag.Parse()

	if *list {
		for _, set := range [][]workloads.Instance{workloads.Tiny(), workloads.Small()} {
			for _, inst := range set {
				fmt.Printf("%-20s n=%3d m=%3d r0=%g\n",
					inst.Name, inst.DAG.N(), inst.DAG.M(), inst.DAG.MinCache())
			}
		}
		return
	}
	if *instance == "" {
		fmt.Fprintln(os.Stderr, "daggen: provide -instance or -list")
		os.Exit(1)
	}
	inst, err := mbsp.InstanceByName(*instance)
	if err != nil {
		fmt.Fprintln(os.Stderr, "daggen:", err)
		os.Exit(1)
	}
	if *dot {
		err = mbsp.WriteDOT(os.Stdout, inst.DAG)
	} else {
		err = mbsp.WriteDAG(os.Stdout, inst.DAG)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "daggen:", err)
		os.Exit(1)
	}
}
