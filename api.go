// Package mbsp is a library for multiprocessor scheduling of
// computational DAGs under memory constraints, reproducing "Multiprocessor
// Scheduling with Memory Constraints: Fundamental Properties and Finding
// Optimal Solutions" (Papp, Böhnlein, Yzelman — ICPP 2025).
//
// The model (MBSP scheduling) executes a weighted DAG on P processors,
// each with a private fast memory of capacity r, over a shared unbounded
// slow memory, with BSP parameters g (cost per transferred unit) and L
// (synchronization cost). It generalizes multiprocessor red-blue pebbling
// to weighted DAGs and restricts Multi-BSP to two levels.
//
// The package re-exports the library's public surface:
//
//   - DAG construction and the benchmark workload generators;
//   - schedule representation, validation and both cost functions;
//   - the two-stage baselines (BSPg/Cilk/DFS × clairvoyant/LRU);
//   - the holistic ILP scheduler and its divide-and-conquer variant;
//   - an exact single-processor pebbler for ground truth;
//   - the experiment harness reproducing the paper's tables and figures.
//
// See examples/ for runnable end-to-end programs.
package mbsp

import (
	"context"
	"io"

	"mbsp/internal/bsp"
	"mbsp/internal/dnc"
	"mbsp/internal/exact"
	"mbsp/internal/experiments"
	"mbsp/internal/faultinject"
	"mbsp/internal/graph"
	"mbsp/internal/ilpsched"
	model "mbsp/internal/mbsp"
	"mbsp/internal/memmgr"
	"mbsp/internal/portfolio"
	"mbsp/internal/refine"
	"mbsp/internal/twostage"
	"mbsp/internal/wire"
	"mbsp/internal/workloads"
)

// Core model types.
type (
	// DAG is a computational DAG with per-node compute weights ω and
	// memory weights μ.
	DAG = graph.DAG
	// Arch is a computing architecture (P, r, g, L).
	Arch = model.Arch
	// Schedule is a full MBSP schedule (supersteps of pebbling phases).
	Schedule = model.Schedule
	// CostModel selects the synchronous or asynchronous objective.
	CostModel = model.CostModel
	// Instance is a named benchmark DAG.
	Instance = workloads.Instance
	// BSPSchedule is a stage-1 (memory-oblivious) BSP schedule.
	BSPSchedule = bsp.Schedule
)

// Cost models.
const (
	Sync  = model.Sync
	Async = model.Async
)

// NewDAG returns an empty DAG with the given name.
func NewDAG(name string) *DAG { return graph.New(name) }

// ReadDAG parses a DAG from the text format (see internal/graph).
func ReadDAG(r io.Reader) (*DAG, error) { return graph.Read(r) }

// WriteDAG serializes a DAG in the text format.
func WriteDAG(w io.Writer, g *DAG) error { return graph.Write(w, g) }

// WriteDOT renders a DAG in Graphviz DOT format.
func WriteDOT(w io.Writer, g *DAG) error { return graph.DOT(w, g) }

// DAGParseError is the typed error ReadDAG returns for malformed input:
// syntax errors, bad counts, non-finite or negative weights, self-loops.
// Malformed input never panics. Cyclic inputs are reported as
// ErrCyclicDAG instead. The canonical DAG identity used by the
// scheduling service — (*DAG).Fingerprint (relabeling-invariant) and
// (*DAG).ExactDigest (labeling-sensitive) — is preserved exactly across
// a WriteDAG/ReadDAG round trip.
type DAGParseError = graph.ParseError

// ErrCyclicDAG reports that a parsed or constructed graph contains a
// cycle.
var ErrCyclicDAG = graph.ErrCyclic

// Benchmark datasets (see DESIGN.md for the sizing note).
var (
	// Tiny returns the 15-instance counterpart of the paper's smallest
	// dataset.
	Tiny = workloads.Tiny
	// Small returns the 10-instance counterpart of the paper's second
	// dataset.
	Small = workloads.Small
	// PaperTiny and PaperSmall return paper-scale instances for long
	// offline runs.
	PaperTiny  = workloads.PaperTiny
	PaperSmall = workloads.PaperSmall
	// InstanceByName looks an instance up in any dataset.
	InstanceByName = workloads.ByName
)

// ILPOptions configures the holistic ILP scheduler; see
// internal/ilpsched.Options for field documentation.
type ILPOptions = ilpsched.Options

// ILPStats reports what the ILP scheduler did.
type ILPStats = ilpsched.Stats

// ScheduleBaseline runs the paper's main two-stage baseline
// (BSPg + clairvoyant eviction; DFS + clairvoyant for P=1).
func ScheduleBaseline(g *DAG, arch Arch) (*Schedule, error) {
	if arch.P == 1 {
		return twostage.DFSClairvoyant().Run(g, arch)
	}
	return twostage.BSPgClairvoyant(arch.G, arch.L).Run(g, arch)
}

// ScheduleCilkLRU runs the application-oriented baseline: Cilk-style work
// stealing plus LRU eviction.
func ScheduleCilkLRU(g *DAG, arch Arch, seed int64) (*Schedule, error) {
	return twostage.CilkLRU(seed).Run(g, arch)
}

// ScheduleILP runs the holistic ILP-based scheduler (warm-started from
// the baseline unless opts.WarmStart is set). The result is never worse
// than the warm start under opts.Model.
func ScheduleILP(g *DAG, arch Arch, opts ILPOptions) (*Schedule, ILPStats, error) {
	return ilpsched.Solve(g, arch, opts)
}

// Portfolio scheduling re-exports.
type (
	// PortfolioOptions configures the concurrent scheduler portfolio; see
	// internal/portfolio.Options for field documentation.
	PortfolioOptions = portfolio.Options
	// PortfolioResult carries the winning schedule plus per-scheduler
	// timing and cost stats in deterministic candidate order.
	PortfolioResult = portfolio.Result
	// PortfolioCandidate is one scheduler in a portfolio.
	PortfolioCandidate = portfolio.Candidate
	// PortfolioCandidateResult is one scheduler's outcome.
	PortfolioCandidateResult = portfolio.CandidateResult
	// AnytimeCertificate states what an anytime portfolio run is worth:
	// cost, proven lower bound, relative gap, degradation rung, and the
	// per-candidate completion/failure ledger.
	AnytimeCertificate = portfolio.Certificate
	// SchedulerFailure is one candidate's classified failure.
	SchedulerFailure = portfolio.FailureRecord
	// SchedulerFailureKind classifies why a candidate failed (timeout,
	// cancellation, panic, invalid schedule, incumbent cutoff, error).
	SchedulerFailureKind = portfolio.FailureKind
	// SchedulerPanicError wraps a panic recovered from a candidate.
	SchedulerPanicError = portfolio.PanicError
	// FaultInjector is the seeded deterministic fault-injection harness
	// (PortfolioOptions.Inject and the solver Options it threads to).
	FaultInjector = faultinject.Injector
	// FaultMode is one injectable fault class.
	FaultMode = faultinject.Mode
)

// Fault-injection constructors (see internal/faultinject).
var (
	// NewFaultInjector builds an injector from a seed, per-decision rate
	// (0 selects the default), injected latency (0 selects the default)
	// and mode set (none selects all modes).
	NewFaultInjector = faultinject.New
	// ParseFaultModes parses a comma-separated mode list ("cold,singular",
	// "latency", "cancel", or "all").
	ParseFaultModes = faultinject.ParseModes
)

// DefaultCandidates returns every scheduler applicable to g on arch: the
// two-stage baselines (BSPg/Cilk/DFS × clairvoyant/LRU), the holistic
// ILP, and the divide-and-conquer ILP for DAGs large enough to split.
func DefaultCandidates(g *DAG, arch Arch) []PortfolioCandidate {
	return portfolio.DefaultCandidates(g, arch)
}

// SchedulePortfolio races every applicable scheduler concurrently over a
// bounded worker pool, validates each result, and returns the cheapest
// valid schedule with per-scheduler stats. Concurrency adds no
// nondeterminism: for a fixed opts.Seed, results are identical under any
// GOMAXPROCS whenever the candidate budgets bind deterministically (use
// opts.ILPNodeLimit instead of the wall-clock ILPTimeLimit for
// byte-identical schedules).
//
// SchedulePortfolio is anytime: under deadlines, cancellation, exhausted
// node budgets, candidate panics or individual scheduler failures it
// still returns the best validated schedule obtainable — degrading, when
// every candidate fails, to the synchronously recomputed two-stage
// baseline — together with a populated Result.Certificate stating the
// cost, a proven lower bound, the gap, and which candidates completed,
// degraded or failed. An error is returned only when the instance admits
// no valid schedule at all (or the options are unusable).
func SchedulePortfolio(ctx context.Context, g *DAG, arch Arch, opts PortfolioOptions) (*PortfolioResult, error) {
	return portfolio.RunAnytime(ctx, g, arch, opts)
}

// SchedulePortfolioStrict is SchedulePortfolio without the anytime
// fallback ladder: when no candidate produces a valid schedule it
// returns portfolio.ErrNoSchedule (and no certificate) instead of
// degrading to the baseline. Use it when a degraded schedule is worse
// than no schedule.
func SchedulePortfolioStrict(ctx context.Context, g *DAG, arch Arch, opts PortfolioOptions) (*PortfolioResult, error) {
	return portfolio.Run(ctx, g, arch, opts)
}

// Machine-readable results (the scheduling service's response shape,
// shared with mbsp-sched -json so both surfaces emit diffable bytes).
type (
	// ScheduleResponse is the full machine-readable scheduling result:
	// DAG identity (fingerprint + digest), architecture, costs, the
	// anytime certificate, the per-candidate ledger and the schedule
	// text. It contains no wall-clock timings, so two deterministic runs
	// produce byte-identical responses.
	ScheduleResponse = wire.Response
	// ScheduleCertificateInfo is the certificate section of a
	// ScheduleResponse.
	ScheduleCertificateInfo = wire.CertificateInfo
	// ScheduleCacheInfo is the per-request cache provenance the server
	// stamps on responses (absent in CLI output).
	ScheduleCacheInfo = wire.CacheInfo
)

// ScheduleResponse builders.
var (
	// NewScheduleResponse builds a response for a bare schedule produced
	// by a single method.
	NewScheduleResponse = wire.FromSchedule
	// NewPortfolioResponse builds a response from a portfolio result,
	// including the anytime certificate and candidate ledger.
	NewPortfolioResponse = wire.FromResult
	// CostModelName renders a cost model for the wire ("sync"/"async").
	CostModelName = wire.ModelName
)

// DNCOptions configures the divide-and-conquer ILP scheduler.
type DNCOptions = dnc.Options

// DNCStats reports a divide-and-conquer run.
type DNCStats = dnc.Stats

// ScheduleDNC runs the divide-and-conquer ILP scheduler for larger DAGs.
func ScheduleDNC(g *DAG, arch Arch, opts DNCOptions) (*Schedule, DNCStats, error) {
	return dnc.Solve(g, arch, opts)
}

// ExactResult is the outcome of the exact single-processor solver.
type ExactResult = exact.Result

// SolveExactP1 computes the optimal single-processor pebbling (red-blue
// pebble game with compute costs) for small DAGs by shortest path over
// configurations.
func SolveExactP1(g *DAG, r, gFac float64) (ExactResult, error) {
	return exact.Solve(g, r, gFac)
}

// RefineOptions configures the holistic local-search polisher.
type RefineOptions = refine.Options

// RefineResult reports a local-search run.
type RefineResult = refine.Result

// Refine improves a schedule by holistic local search over processor
// assignments.
func Refine(s *Schedule, opts RefineOptions) RefineResult {
	return refine.Improve(s, opts)
}

// Eviction policies for the two-stage pipelines.
type (
	// Clairvoyant evicts the value with the furthest next use (Bélády).
	Clairvoyant = memmgr.Clairvoyant
	// LRU evicts the least recently used value.
	LRU = memmgr.LRU
)

// Experiment harness re-exports.
type (
	// ExperimentConfig carries model and budget parameters.
	ExperimentConfig = experiments.Config
	// ResultTable is a rendered experiment table.
	ResultTable = experiments.Table
	// BoxSummary is a five-number ratio summary (Figure 4).
	BoxSummary = experiments.BoxSummary
)

// Experiment entry points; see internal/experiments.
var (
	BaseConfig      = experiments.Base
	RunTable1       = experiments.Table1
	RunTable2       = experiments.Table2
	RunTable3       = experiments.Table3
	RunTable4       = experiments.Table4
	RunFigure4      = experiments.Figure4
	RunP1Experiment = experiments.SingleProcessor
	GeoMean         = experiments.GeoMean
)
