#!/usr/bin/env sh
# End-to-end smoke of the scheduling service (see cmd/mbsp-smoke for the
# assertions): build mbsp-served, start it on an ephemeral port with a
# durable cache, run the smoke client against it (cold run,
# byte-identical cache hit inside its deadline, stats including the
# persistence counters, SIGTERM mid-request), and assert the server
# drains and exits cleanly.
#
# Usage: scripts/serve_smoke.sh
set -eu

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/mbsp-served" ./cmd/mbsp-served
go build -o "$tmp/mbsp-smoke" ./cmd/mbsp-smoke

# A modest node budget keeps the cold run fast; results stay
# deterministic and cacheable for any value > 0. -cache-path makes the
# smoke assert the persistence counters too.
"$tmp/mbsp-served" -addr 127.0.0.1:0 -node-limit 500 -max-model-rows 3000 -cache-path "$tmp/cache" 2> "$tmp/served.log" &
pid=$!

# The server prints its resolved address first thing; poll for it.
addr=""
i=0
while [ "$i" -lt 100 ]; do
    addr="$(sed -n 's/.*listening on //p' "$tmp/served.log" | head -n 1)"
    [ -n "$addr" ] && break
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve smoke: server never listened" >&2
    cat "$tmp/served.log" >&2
    exit 1
fi

if ! "$tmp/mbsp-smoke" -base "http://$addr" -pid "$pid" -persist; then
    echo "serve smoke: client assertions failed" >&2
    cat "$tmp/served.log" >&2
    kill "$pid" 2>/dev/null || true
    exit 1
fi

# The client SIGTERMed the server mid-request; a clean drain means exit
# code 0 and the drained-stats line in the log.
if ! wait "$pid"; then
    echo "serve smoke: server exited nonzero after SIGTERM" >&2
    cat "$tmp/served.log" >&2
    exit 1
fi
if ! grep -q "drained:" "$tmp/served.log"; then
    echo "serve smoke: no drain log line" >&2
    cat "$tmp/served.log" >&2
    exit 1
fi
if ! grep -q "shutdown path: graceful drain complete" "$tmp/served.log"; then
    echo "serve smoke: drain did not log its shutdown path" >&2
    cat "$tmp/served.log" >&2
    exit 1
fi

echo "serve smoke: OK"
