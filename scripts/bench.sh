#!/usr/bin/env sh
# Solver-core benchmark: emits BENCH_solver.json so the warm-start
# speedup (total simplex iterations across the branch-and-bound trees the
# registry workloads search, warm vs cold) and the parallel tree-search
# speedup (node throughput of the same trees, serial vs a 4-worker pool)
# are tracked across PRs.
#
# Usage: scripts/bench.sh [outdir]
#
#   1. BenchmarkLPSolve / BenchmarkMIPNode micro-benchmarks (one
#      iteration: pricing-rule and warm-vs-cold iteration counts);
#   2. the solver experiment on the tiny registry dataset, which fails on
#      warm/cold divergence, a warm-start regression, any Workers=4 vs
#      Workers=1 divergence (the deterministic-node-accounting gate), or
#      a parallel node-throughput regression against the previous
#      BENCH_solver.json, and writes the new BENCH_solver.json. The
#      experiment also runs the degenerate-model leg — the P=1 k-means
#      scheduling ILP that used to stall the warm dual re-solves — with
#      hard gates on the anti-degeneracy wiring (perturbation reaching
#      the tree search, cheap shift-removal clean-up) and a
#      baseline-relative gate on its deterministic iteration and
#      cold-fallback counts (skipped when the baseline predates the leg),
#      and the sparse-LU leg — a >3000-row scheduling ILP (spmv P=4)
#      that the old dense-inverse core refused to factor — with hard
#      gates on the unlock itself (the model must enter tree search),
#      on factorization quality (fill-in bounded relative to the basis,
#      at least one refactorization, warm factor reuse firing) and
#      baseline-relative gates on its iteration count, fill-in and
#      refactorization count (also skipped for pre-LU baselines).
set -eu

cd "$(dirname "$0")/.."
outdir="${1:-.}"

echo "== micro-benchmarks: BenchmarkLPSolve, BenchmarkMIPNode (1 iteration)"
go test -run '^$' -bench 'BenchmarkLPSolve|BenchmarkMIPNode' -benchtime 1x .

# Snapshot the previous results before the run overwrites them: the
# regression gate compares dimensionless speedups against this baseline.
baseline=""
if [ -f "${outdir}/BENCH_solver.json" ]; then
    baseline="${outdir}/BENCH_solver.json.baseline"
    cp "${outdir}/BENCH_solver.json" "${baseline}"
    # Snapshot removal must survive a gate failure aborting the script.
    trap 'rm -f "${baseline}"' EXIT
fi

echo "== solver experiment -> ${outdir}/BENCH_solver.json"
go run ./cmd/mbsp-bench -experiment solver -dataset tiny -timeout 10s \
    -json "${outdir}/BENCH_solver.json" ${baseline:+-baseline "${baseline}"}

echo "bench: OK"
