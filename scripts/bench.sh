#!/usr/bin/env sh
# Solver-core benchmark: emits BENCH_solver.json so the warm-start
# speedup (total simplex iterations across the branch-and-bound trees the
# registry workloads search, warm vs cold) is tracked across PRs.
#
# Usage: scripts/bench.sh [outdir]
#
#   1. BenchmarkLPSolve / BenchmarkMIPNode micro-benchmarks (one
#      iteration: pricing-rule and warm-vs-cold iteration counts);
#   2. the solver experiment on the tiny registry dataset, which fails on
#      warm/cold divergence or a warm-start regression and writes
#      BENCH_solver.json.
set -eu

cd "$(dirname "$0")/.."
outdir="${1:-.}"

echo "== micro-benchmarks: BenchmarkLPSolve, BenchmarkMIPNode (1 iteration)"
go test -run '^$' -bench 'BenchmarkLPSolve|BenchmarkMIPNode' -benchtime 1x .

echo "== solver experiment -> ${outdir}/BENCH_solver.json"
go run ./cmd/mbsp-bench -experiment solver -dataset tiny -timeout 10s \
    -json "${outdir}/BENCH_solver.json"

echo "bench: OK"
