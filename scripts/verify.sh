#!/usr/bin/env sh
# Tier-1 verification plus the perf-trajectory smoke.
#
# Usage: scripts/verify.sh [outdir]
#
#   1. go build ./...
#   2. go vet ./...
#   2b. staticcheck ./...  (skipped with a warning when the binary is
#       not installed — the container image does not ship it);
#   3. go test -race ./...  (includes the solver cross-check tests: the
#      sparse/warm-started simplex against the dense cold-start
#      reference, the GOMAXPROCS/worker-count determinism suite, and the
#      parallel branch-and-bound determinism matrix)
#   4. the chaos leg: the anytime portfolio on the tiny dataset under a
#      50ms deadline with the seeded fault-injection harness live,
#      under -race, one leg per injection mode plus all modes at once,
#      for two distinct fault seeds (different seeds inject different
#      fault sequences; one seed only proves one trajectory) — exits
#      nonzero on any non-anytime error, missing certificate or invalid
#      schedule (the graceful-degradation gate);
#   4b. the serving smoke (scripts/serve_smoke.sh): start mbsp-served on
#      an ephemeral port with a durable cache, POST a registry DAG twice
#      and assert the second response is a cache hit with a
#      byte-identical schedule inside its deadline, check /healthz and
#      /v1/stats (including the persistence counters), then SIGTERM the
#      server mid-request and assert it drains and exits cleanly;
#   4c. the crash smoke (scripts/crash_smoke.sh): populate the durable
#      cache, kill -9 the server and tear the journal's tail mid-record,
#      restart on the same directory, and assert the recovery counters
#      plus a warm byte-identical cache hit for the surviving entry and
#      a cold byte-identical recompute for the torn one;
#   5. a short benchmark smoke: the portfolio experiment on the tiny
#      dataset, emitting BENCH_portfolio.json (per-scheduler cost and
#      timing per instance) so the portfolio's performance trajectory is
#      comparable across PRs;
#   6. the solver bench smoke (scripts/bench.sh): micro-benchmarks plus
#      the solver experiment emitting BENCH_solver.json — the
#      parallel-solver gate. It exits nonzero on warm/cold solver
#      divergence, if the warm-started path stops beating the cold path,
#      if Workers=4 output diverges from Workers=1 in any way (partition,
#      node accounting, iteration counts), if parallel node throughput
#      regresses against the committed BENCH_solver.json (wall-clock
#      speedup gates scale to GOMAXPROCS; the determinism gate is
#      unconditional), or if the degenerate-model leg — the P=1 k-means
#      stall fixture — loses its EXPAND perturbation wiring or regresses
#      its deterministic iteration / cold-fallback counts against the
#      committed baseline, or if the sparse-LU leg — a >3000-row
#      scheduling ILP the dense core refused — stops entering tree
#      search or regresses its fill-in / refactorization counts.
set -eu

cd "$(dirname "$0")/.."
outdir="${1:-.}"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck ./..."
    staticcheck ./...
else
    echo "== staticcheck: not installed, skipping"
fi

echo "== go test -race ./..."
go test -race ./...

echo "== chaos leg: anytime portfolio under fault injection (-race)"
for fault_seed in 42 1337; do
    echo "== chaos leg: fault seed ${fault_seed}"
    go run -race ./cmd/mbsp-bench -experiment chaos -dataset tiny \
        -deadline 50ms -fault-seed "${fault_seed}"
done

echo "== serving smoke: mbsp-served cache hit + graceful drain"
sh scripts/serve_smoke.sh

echo "== crash smoke: durable cache survives kill -9 + torn journal"
sh scripts/crash_smoke.sh

echo "== bench smoke: BenchmarkPortfolio (1 iteration)"
go test -run '^$' -bench '^BenchmarkPortfolio$' -benchtime 1x .

echo "== portfolio experiment -> ${outdir}/BENCH_portfolio.json"
go run ./cmd/mbsp-bench -experiment portfolio -dataset tiny \
    -timeout 200ms -budget 300 -json "${outdir}/BENCH_portfolio.json"

echo "== solver bench -> ${outdir}/BENCH_solver.json"
sh scripts/bench.sh "${outdir}"

echo "verify: OK"
