#!/usr/bin/env sh
# Crash-recovery smoke of the durable schedule cache (verify.sh leg 4c):
# start mbsp-served with -cache-path, populate two cache entries (both
# fsync-journaled before their responses return), then kill -9 the
# server and tear the journal's tail mid-record — the on-disk image a
# kill arriving mid-append leaves. Restart on the same directory and
# assert, via mbsp-smoke -phase verify:
#
#   - recovery counters: 1 entry recovered, the torn record counted
#     corrupt, nothing rejected;
#   - the surviving entry is served as a warm cache hit byte-identical
#     to its pre-crash response;
#   - the torn entry recomputes cold to the same bytes (determinism).
#
# Finally SIGTERM the restarted server and assert a graceful drain
# (snapshot rotation) so the whole crash-only lifecycle is exercised.
#
# Usage: scripts/crash_smoke.sh
set -eu

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/mbsp-served" ./cmd/mbsp-served
go build -o "$tmp/mbsp-smoke" ./cmd/mbsp-smoke

cache="$tmp/cache"
state="$tmp/state"
mkdir -p "$state"

start_server() {
    log="$1"
    "$tmp/mbsp-served" -addr 127.0.0.1:0 -node-limit 500 -max-model-rows 3000 -cache-path "$cache" 2> "$log" &
    pid=$!
    addr=""
    i=0
    while [ "$i" -lt 100 ]; do
        addr="$(sed -n 's/.*listening on //p' "$log" | head -n 1)"
        [ -n "$addr" ] && break
        i=$((i + 1))
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "crash smoke: server never listened" >&2
        cat "$log" >&2
        exit 1
    fi
}

# Phase 1: populate two entries; both are journaled (fsync per append)
# before their responses return.
start_server "$tmp/served1.log"
if ! "$tmp/mbsp-smoke" -base "http://$addr" -phase populate -state "$state"; then
    echo "crash smoke: populate failed" >&2
    cat "$tmp/served1.log" >&2
    kill -9 "$pid" 2>/dev/null || true
    exit 1
fi

# The crash: kill -9 (no drain, no snapshot), then tear the journal's
# tail mid-record — the second entry's append loses its last bytes,
# exactly what a kill landing mid-write leaves behind.
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
journal="$cache/journal"
if [ ! -f "$journal" ]; then
    echo "crash smoke: no journal at $journal" >&2
    exit 1
fi
truncate -s -7 "$journal"

# Phase 2: restart on the torn image and verify recovery.
start_server "$tmp/served2.log"
if ! "$tmp/mbsp-smoke" -base "http://$addr" -phase verify -state "$state"; then
    echo "crash smoke: verify failed" >&2
    cat "$tmp/served2.log" >&2
    kill -9 "$pid" 2>/dev/null || true
    exit 1
fi
if ! grep -q "cache recovery from" "$tmp/served2.log"; then
    echo "crash smoke: no recovery log line" >&2
    cat "$tmp/served2.log" >&2
    kill -9 "$pid" 2>/dev/null || true
    exit 1
fi

# Graceful close of the recovered server: drain rotates the journal
# into a snapshot, completing the crash-only lifecycle.
kill -TERM "$pid"
if ! wait "$pid"; then
    echo "crash smoke: recovered server exited nonzero on SIGTERM" >&2
    cat "$tmp/served2.log" >&2
    exit 1
fi
if ! grep -q "shutdown path: graceful drain complete" "$tmp/served2.log"; then
    echo "crash smoke: no graceful-drain log line" >&2
    cat "$tmp/served2.log" >&2
    exit 1
fi
if [ ! -f "$cache/snapshot" ]; then
    echo "crash smoke: graceful drain wrote no snapshot" >&2
    exit 1
fi

echo "crash smoke: OK"
