package mbsp

import (
	"fmt"

	"mbsp/internal/bsp"
	"mbsp/internal/graph"
	model "mbsp/internal/mbsp"
	"mbsp/internal/memmgr"
	"mbsp/internal/twostage"
)

// TwoStageGapCosts builds the Theorem 4.1 construction (two groups of d
// sources, two chains of length m with alternating group dependencies)
// with cache r = d+2, P = 2, g = 1, L = 0, and returns the synchronous
// costs of
//
//   - the two-stage approach: the optimal BSP schedule (one chain per
//     processor) converted with the clairvoyant eviction policy, which is
//     forced into Θ(d·m) loads; and
//   - the holistic schedule from the proof: each processor owns one
//     source group and computes that group's chain children, exchanging
//     the two per-step chain values through slow memory.
//
// The ratio grows linearly in d, demonstrating the theorem empirically.
func TwoStageGapCosts(d, m int) (twoStage, holistic float64, err error) {
	gd := graph.NewTwoStageGapGadget(d, m)
	g := gd.DAG
	arch := model.Arch{P: 2, R: float64(d) + 2, G: 1, L: 0}

	// Stage 1 optimum: chain V on processor 0, chain U on processor 1,
	// everything in one BSP superstep (no cross-chain edges).
	b := bsp.NewSchedule(g, 2)
	for _, v := range gd.V {
		b.Assign(v, 0, 0)
	}
	for _, u := range gd.U {
		b.Assign(u, 1, 0)
	}
	ts, err := twostage.Convert(b, arch, memmgr.Clairvoyant{})
	if err != nil {
		return 0, 0, fmt.Errorf("two-stage conversion: %w", err)
	}
	if err := ts.Validate(); err != nil {
		return 0, 0, fmt.Errorf("two-stage schedule invalid: %w", err)
	}

	holo, err := buildGapHolistic(gd, arch)
	if err != nil {
		return 0, 0, err
	}
	return ts.SyncCost(), holo.SyncCost(), nil
}

// buildGapHolistic constructs the proof's optimal MBSP schedule: each
// processor keeps one source group resident; in superstep k it computes
// the chain node depending on its group, saves it, drops it together with
// the loaded chain parent, and loads the value the other processor just
// saved.
func buildGapHolistic(gd *graph.TwoStageGapGadget, arch model.Arch) (*model.Schedule, error) {
	g := gd.DAG
	s := model.NewSchedule(g, arch)

	// Superstep 0: processor 0 loads H1, processor 1 loads H2.
	st := s.AddSuperstep()
	st.Procs[0].Load = append([]int(nil), gd.H1...)
	st.Procs[1].Load = append([]int(nil), gd.H2...)

	// owner(k): which processor computes u_k / v_k. u_k depends on H1
	// for odd k (1-based) — processor 0 — and on H2 for even k; v_k is
	// the mirror image.
	uOwner := func(k int) int {
		if k%2 == 1 {
			return 0
		}
		return 1
	}
	for k := 1; k <= gd.M; k++ {
		st := s.AddSuperstep()
		u, v := gd.U[k-1], gd.V[k-1]
		up, vp := -1, -1
		if k > 1 {
			up, vp = gd.U[k-2], gd.V[k-2]
		}
		place := func(node, parent, p int) {
			ps := &st.Procs[p]
			ps.Comp = append(ps.Comp, model.Op{Kind: model.OpCompute, Node: node})
			ps.Save = append(ps.Save, node)
			ps.Del = append(ps.Del, node)
			if parent >= 0 {
				ps.Del = append(ps.Del, parent)
			}
		}
		place(u, up, uOwner(k))
		place(v, vp, 1-uOwner(k))
		if k < gd.M {
			// Prefetch the chain parents for the next superstep: the
			// next u/v computations happen on the opposite processors.
			st.Procs[1-uOwner(k)].Load = append(st.Procs[1-uOwner(k)].Load, u)
			st.Procs[uOwner(k)].Load = append(st.Procs[uOwner(k)].Load, v)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("holistic gap schedule invalid: %w", err)
	}
	return s, nil
}
