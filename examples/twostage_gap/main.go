// Two-stage gap example: builds the Theorem 4.1 construction (Figure 1 of
// the paper) and shows empirically that the two-stage approach — optimal
// BSP schedule first, optimal-ish eviction second — lands a factor Θ(n)
// away from a holistic schedule as the construction grows.
//
// Run with: go run ./examples/twostage_gap
package main

import (
	"fmt"
	"log"

	"mbsp"
)

func main() {
	fmt.Println("Theorem 4.1: the two-stage approach can be Θ(n) from optimal.")
	fmt.Printf("%6s%6s%14s%14s%10s\n", "d", "m", "two-stage", "holistic", "ratio")
	for _, d := range []int{3, 5, 8, 12} {
		m := 3 * d // m > d keeps the BSP optimum at one-chain-per-processor
		two, holo, err := mbsp.TwoStageGapCosts(d, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d%6d%14.0f%14.0f%10.2f\n", d, m, two, holo, two/holo)
	}
	fmt.Println("\nThe ratio grows linearly with d: stage-1 scheduling that ignores")
	fmt.Println("the memory bound pins both H-groups' children across processors,")
	fmt.Println("forcing d loads per chain node, while the holistic split needs")
	fmt.Println("only two I/O transfers per chain node.")
}
