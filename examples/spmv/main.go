// SpMV example: schedule the fine-grained sparse matrix–vector product
// workload (the paper's motivating kernel family) and sweep the cache
// size r from r0 to 5·r0 to see how memory pressure drives the cost and
// the baseline-vs-holistic gap — the paper's Table 4 in miniature.
//
// Run with: go run ./examples/spmv
package main

import (
	"fmt"
	"log"
	"time"

	"mbsp"
)

func main() {
	inst, err := mbsp.InstanceByName("spmv_N7")
	if err != nil {
		log.Fatal(err)
	}
	g := inst.DAG
	r0 := g.MinCache()
	fmt.Printf("%s: n=%d m=%d r0=%g\n\n", g.Name(), g.N(), g.M(), r0)
	fmt.Printf("%8s%12s%12s%10s\n", "r", "baseline", "holistic", "ratio")

	for _, rf := range []float64{1, 2, 3, 5} {
		arch := mbsp.Arch{P: 4, R: rf * r0, G: 1, L: 10}
		base, err := mbsp.ScheduleBaseline(g, arch)
		if err != nil {
			log.Fatal(err)
		}
		holo, _, err := mbsp.ScheduleILP(g, arch, mbsp.ILPOptions{
			TimeLimit: time.Second,
			WarmStart: base,
			Seed:      7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.0f·r0%12.1f%12.1f%10.3f\n",
			rf, base.SyncCost(), holo.SyncCost(), holo.SyncCost()/base.SyncCost())
	}
	fmt.Println("\nTighter caches force more I/O; the holistic scheduler recovers")
	fmt.Println("part of that cost by co-optimizing placement and eviction.")
}
