// Pebbling example: single-processor red-blue pebbling with compute
// costs (the P=1 case of MBSP). Compares the DFS+clairvoyant baseline,
// the holistic ILP scheduler, and the exact optimum found by shortest
// path over pebbling configurations — the paper's P=1 experiment, where
// the baseline is already near-optimal.
//
// Run with: go run ./examples/pebbling
package main

import (
	"fmt"
	"log"
	"time"

	"mbsp"
)

func main() {
	// A small two-chain DAG with a shared input: with a tight cache the
	// scheduler must decide what to spill, reload or recompute.
	g := mbsp.NewDAG("pebbling")
	x := g.AddNodeLabeled("x", 0, 1)
	var prevA, prevB = x, x
	for i := 0; i < 3; i++ {
		a := g.AddNodeLabeled(fmt.Sprintf("a%d", i), 1, 1)
		b := g.AddNodeLabeled(fmt.Sprintf("b%d", i), 1, 1)
		g.AddEdge(prevA, a)
		g.AddEdge(prevB, b)
		prevA, prevB = a, b
	}
	sink := g.AddNodeLabeled("out", 1, 1)
	g.AddEdge(prevA, sink)
	g.AddEdge(prevB, sink)

	r := g.MinCache() // the tightest cache that admits any schedule
	gFac := 3.0
	arch := mbsp.Arch{P: 1, R: r, G: gFac, L: 0}
	fmt.Printf("%s: n=%d, r=r0=%g, g=%g\n\n", g.Name(), g.N(), r, gFac)

	base, err := mbsp.ScheduleBaseline(g, arch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DFS + clairvoyant: cost %g\n", base.SyncCost())

	ilp, _, err := mbsp.ScheduleILP(g, arch, mbsp.ILPOptions{TimeLimit: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("holistic ILP:      cost %g\n", ilp.SyncCost())

	ex, err := mbsp.SolveExactP1(g, r, gFac)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact optimum:     cost %g (%d states explored)\n\n", ex.Cost, ex.States)

	if base.SyncCost() == ex.Cost {
		fmt.Println("The DFS baseline is optimal here — matching the paper's")
		fmt.Println("observation that at P=1 the ILP rarely improves on it.")
	} else {
		fmt.Printf("Gap to optimal: baseline %.1f%%, ILP %.1f%%\n",
			100*(base.SyncCost()/ex.Cost-1), 100*(ilp.SyncCost()/ex.Cost-1))
	}
}
