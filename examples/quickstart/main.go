// Quickstart: build a small computational DAG, schedule it with the
// two-stage baseline and with the holistic ILP method, and compare costs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mbsp"
)

func main() {
	// A toy computation: two inputs feed a small reduction.
	//
	//	x0  x1        (inputs, loaded from slow memory)
	//	| \/ |
	//	a    b        (ω=2 each)
	//	 \  /
	//	  c           (ω=1, the output)
	g := mbsp.NewDAG("quickstart")
	x0 := g.AddNodeLabeled("x0", 0, 2)
	x1 := g.AddNodeLabeled("x1", 0, 2)
	a := g.AddNodeLabeled("a", 2, 1)
	b := g.AddNodeLabeled("b", 2, 1)
	c := g.AddNodeLabeled("c", 1, 1)
	g.AddEdge(x0, a)
	g.AddEdge(x1, a)
	g.AddEdge(x0, b)
	g.AddEdge(x1, b)
	g.AddEdge(a, c)
	g.AddEdge(b, c)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	// Two processors, each with a cache of 3·r0, unit communication cost
	// and synchronization cost 2.
	arch := mbsp.Arch{P: 2, R: 3 * g.MinCache(), G: 1, L: 2}
	fmt.Printf("%s: n=%d, r0=%g, %v\n\n", g.Name(), g.N(), g.MinCache(), arch)

	base, err := mbsp.ScheduleBaseline(g, arch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-stage baseline:  sync cost %5.1f  (%d supersteps)\n",
		base.SyncCost(), base.NumSupersteps())

	ilp, stats, err := mbsp.ScheduleILP(g, arch, mbsp.ILPOptions{
		TimeLimit: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("holistic ILP:        sync cost %5.1f  (%d supersteps, %s)\n\n",
		ilp.SyncCost(), ilp.NumSupersteps(), stats.ILPStatus)

	fmt.Println("ILP schedule:")
	fmt.Print(ilp)
}
