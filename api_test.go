package mbsp

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func buildAPIDAG(t *testing.T) *DAG {
	t.Helper()
	g := NewDAG("api")
	x := g.AddNode(0, 2)
	a := g.AddNode(3, 1)
	b := g.AddNode(2, 1)
	c := g.AddNode(1, 1)
	g.AddEdge(x, a)
	g.AddEdge(x, b)
	g.AddEdge(a, c)
	g.AddEdge(b, c)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicBaseline(t *testing.T) {
	g := buildAPIDAG(t)
	arch := Arch{P: 2, R: 3 * g.MinCache(), G: 1, L: 5}
	s, err := ScheduleBaseline(g, arch)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.SyncCost() <= 0 || s.AsyncCost() <= 0 {
		t.Fatal("degenerate costs")
	}
}

func TestPublicILPNeverWorse(t *testing.T) {
	g := buildAPIDAG(t)
	arch := Arch{P: 2, R: 3 * g.MinCache(), G: 1, L: 5}
	base, err := ScheduleBaseline(g, arch)
	if err != nil {
		t.Fatal(err)
	}
	s, stats, err := ScheduleILP(g, arch, ILPOptions{TimeLimit: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if s.SyncCost() > base.SyncCost()+1e-9 {
		t.Fatalf("ILP %g worse than baseline %g (stats=%+v)", s.SyncCost(), base.SyncCost(), stats)
	}
}

func TestPublicCilkLRU(t *testing.T) {
	g := buildAPIDAG(t)
	arch := Arch{P: 2, R: 3 * g.MinCache(), G: 1, L: 5}
	s, err := ScheduleCilkLRU(g, arch, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicExactP1(t *testing.T) {
	g := buildAPIDAG(t)
	res, err := SolveExactP1(g, 3*g.MinCache(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// load x (2) + compute a,b,c (6) + save c (1) = 9.
	if res.Cost != 9 {
		t.Fatalf("exact cost %g want 9", res.Cost)
	}
	arch := Arch{P: 1, R: 3 * g.MinCache(), G: 1, L: 0}
	base, err := ScheduleBaseline(g, arch)
	if err != nil {
		t.Fatal(err)
	}
	if base.SyncCost() < res.Cost {
		t.Fatal("baseline below exact optimum")
	}
}

func TestPublicRefine(t *testing.T) {
	inst, err := InstanceByName("kNN_N4_K3")
	if err != nil {
		t.Fatal(err)
	}
	arch := Arch{P: 4, R: 3 * inst.DAG.MinCache(), G: 1, L: 10}
	base, err := ScheduleBaseline(inst.DAG, arch)
	if err != nil {
		t.Fatal(err)
	}
	res := Refine(base, RefineOptions{Budget: 300, Seed: 1})
	if res.Cost > base.SyncCost() {
		t.Fatal("refine made things worse")
	}
}

func TestPublicDNC(t *testing.T) {
	inst, err := InstanceByName("spmv_N25")
	if err != nil {
		t.Fatal(err)
	}
	arch := Arch{P: 4, R: 5 * inst.DAG.MinCache(), G: 1, L: 10}
	s, stats, err := ScheduleDNC(inst.DAG, arch, DNCOptions{
		SubTimeLimit:      300 * time.Millisecond,
		LocalSearchBudget: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.Parts < 2 {
		t.Fatalf("parts=%d", stats.Parts)
	}
}

func TestPublicDAGIO(t *testing.T) {
	g := buildAPIDAG(t)
	var buf bytes.Buffer
	if err := WriteDAG(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadDAG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatal("round trip mismatch")
	}
	buf.Reset()
	if err := WriteDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") {
		t.Fatal("DOT output")
	}
}

func TestPublicDatasets(t *testing.T) {
	if len(Tiny()) != 15 || len(Small()) != 10 {
		t.Fatalf("dataset sizes: %d, %d", len(Tiny()), len(Small()))
	}
	if len(PaperTiny()) != 15 || len(PaperSmall()) != 10 {
		t.Fatal("paper dataset sizes")
	}
}

func TestPublicExperimentConfig(t *testing.T) {
	cfg := BaseConfig()
	if cfg.P != 4 || cfg.RFactor != 3 || cfg.G != 1 || cfg.L != 10 {
		t.Fatalf("base config %+v", cfg)
	}
	if g := GeoMean([]float64{2, 8}); g != 4 {
		t.Fatalf("geomean %g", g)
	}
}

func TestTwoStageGapCostsAPI(t *testing.T) {
	two, holo, err := TwoStageGapCosts(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if two <= holo {
		t.Fatalf("two-stage %g should exceed holistic %g", two, holo)
	}
}

func TestPublicSchedulePortfolio(t *testing.T) {
	g := buildAPIDAG(t)
	arch := Arch{P: 2, R: 3 * g.MinCache(), G: 1, L: 5}
	res, err := SchedulePortfolio(context.Background(), g, arch, PortfolioOptions{
		ILPTimeLimit: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	// The portfolio contains the baseline and the ILP, so it can be worse
	// than neither.
	base, err := ScheduleBaseline(g, arch)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost > base.SyncCost()+1e-9 {
		t.Fatalf("portfolio best %g worse than baseline %g", res.BestCost, base.SyncCost())
	}
	if len(res.Candidates) != len(DefaultCandidates(g, arch)) {
		t.Fatalf("expected %d candidate results, got %d", len(DefaultCandidates(g, arch)), len(res.Candidates))
	}
	for _, c := range res.Candidates {
		if c.Err != nil {
			t.Fatalf("candidate %s failed: %v", c.Name, c.Err)
		}
	}
}
