module mbsp

go 1.24
